// Package faults implements a deterministic fault-injection catalog and
// assessment harness for the recognition stack. Where internal/attacks
// models an adversary transforming the *program*, this package models the
// environment failing around it: corrupted trace bit-strings, damaged
// key files, exhausted interpreter budgets, crashing scan workers, and
// cancelled contexts. Every fault is seeded and reproducible, and the
// harness guarantees the tri-state failure contract — each injection ends
// in a surviving recognition, a degraded recognition with a confidence
// score, or a typed error; never a panic and never a hang.
package faults

import (
	"bytes"
	"context"
	"math/rand"

	"pathmark/internal/bitstring"
	"pathmark/internal/wm"
)

// Kind classifies where in the stack a fault strikes.
type Kind int

const (
	// KindTrace faults corrupt the decoded trace bit-string between the
	// trace and scan stages.
	KindTrace Kind = iota
	// KindKeyfile faults damage the serialized key before loading.
	KindKeyfile
	// KindRuntime faults constrain or sabotage the pipeline's execution:
	// fuel budgets, induced worker panics, cancelled contexts.
	KindRuntime
)

func (k Kind) String() string {
	switch k {
	case KindTrace:
		return "trace"
	case KindKeyfile:
		return "keyfile"
	default:
		return "runtime"
	}
}

// Fault is one catalog entry. Exactly one of Bits, Keyfile, or Opts is
// non-nil; the harness applies it to the corresponding pipeline input.
// Implementations never mutate their arguments.
type Fault struct {
	// Name identifies the fault in reports and on the pathmark inject CLI.
	Name string
	// Description is the one-line catalog documentation.
	Description string
	// Kind locates the fault in the stack.
	Kind Kind
	// Expect is the worst acceptable outcome: assessments must classify at
	// or below it (Survive < Degrade < Fail). The catalog test enforces
	// this bound for every entry.
	Expect Outcome
	// Bits corrupts a copy of the decoded trace bit-string.
	Bits func(rng *rand.Rand, b *bitstring.Bits) *bitstring.Bits
	// Keyfile corrupts the serialized key bytes.
	Keyfile func(rng *rand.Rand, data []byte) []byte
	// Opts sabotages the recognition options (budgets, hooks, contexts).
	Opts func(rng *rand.Rand, o *wm.RecognizeOpts)
}

// cancelledContext is pre-cancelled at package init so the catalog entry
// needs no deferred cancel and injections are perfectly deterministic.
var cancelledContext = func() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}()

// Catalog returns the full fault catalog in a stable order, mirroring
// internal/attacks.Catalog. Names are stable identifiers: the CLI, the
// EXPERIMENTS.md table, and the obs counters (inject.<name>.<outcome>)
// all key on them.
func Catalog() []Fault {
	return []Fault{
		{
			Name:        "trace-bitflip",
			Description: "flip ~0.01% of trace bits (at least one)",
			Kind:        KindTrace, Expect: Degrade,
			Bits: bitflip(10_000),
		},
		{
			Name:        "trace-bitflip-heavy",
			Description: "flip ~2% of trace bits",
			Kind:        KindTrace, Expect: Degrade,
			Bits: bitflip(50),
		},
		{
			Name:        "trace-truncate",
			Description: "keep only the first 3/4 of the trace",
			Kind:        KindTrace, Expect: Degrade,
			Bits: truncateTo(3, 4),
		},
		{
			Name:        "trace-truncate-heavy",
			Description: "keep only the first 1/20 of the trace",
			Kind:        KindTrace, Expect: Degrade,
			Bits: truncateTo(1, 20),
		},
		{
			Name:        "trace-dup-segment",
			Description: "append a duplicate of a random 1/8 segment",
			Kind:        KindTrace, Expect: Degrade,
			Bits: dupSegment,
		},
		{
			Name:        "trace-zero-segment",
			Description: "zero out a random 1/16 segment",
			Kind:        KindTrace, Expect: Degrade,
			Bits: zeroSegment,
		},
		{
			Name:        "key-truncate",
			Description: "truncate the key file to its first third",
			Kind:        KindKeyfile, Expect: Fail,
			Keyfile: func(rng *rand.Rand, data []byte) []byte {
				return append([]byte(nil), data[:len(data)/3]...)
			},
		},
		{
			Name:        "key-field-cipher",
			Description: "damage the cipher field name (required field lost)",
			Kind:        KindKeyfile, Expect: Fail,
			Keyfile: renameField("cipher"),
		},
		{
			Name:        "key-field-primes",
			Description: "damage the primes field name (required field lost)",
			Kind:        KindKeyfile, Expect: Fail,
			Keyfile: renameField("primes"),
		},
		{
			Name:        "key-field-input",
			Description: "damage the input field name (secret input lost)",
			Kind:        KindKeyfile, Expect: Degrade,
			Keyfile: renameField("input"),
		},
		{
			Name:        "key-flip-byte",
			Description: "XOR one random key-file byte with 0x20",
			Kind:        KindKeyfile, Expect: Fail,
			Keyfile: func(rng *rand.Rand, data []byte) []byte {
				out := append([]byte(nil), data...)
				if len(out) > 0 {
					out[rng.Intn(len(out))] ^= 0x20
				}
				return out
			},
		},
		{
			Name:        "vm-fuel",
			Description: "starve the tracing run to a 100-step budget",
			Kind:        KindRuntime, Expect: Fail,
			Opts: func(rng *rand.Rand, o *wm.RecognizeOpts) { o.StepLimit = 100 },
		},
		{
			Name:        "vm-heap",
			Description: "starve the tracing run to a 16-cell heap budget",
			Kind:        KindRuntime, Expect: Fail,
			Opts: func(rng *rand.Rand, o *wm.RecognizeOpts) { o.MaxHeap = 16 },
		},
		{
			Name:        "worker-panic",
			Description: "crash whichever scan worker pulls the first chunk",
			Kind:        KindRuntime, Expect: Degrade,
			Opts: func(rng *rand.Rand, o *wm.RecognizeOpts) {
				o.Workers = 4
				o.ScanHook = func(worker, chunk int) {
					if chunk == 0 {
						panic("faults: injected worker crash")
					}
				}
			},
		},
		{
			Name:        "cancelled-context",
			Description: "run the pipeline under an already-cancelled context",
			Kind:        KindRuntime, Expect: Fail,
			Opts: func(rng *rand.Rand, o *wm.RecognizeOpts) { o.Ctx = cancelledContext },
		},
	}
}

// Find returns the named catalog entry.
func Find(name string) (Fault, bool) {
	for _, f := range Catalog() {
		if f.Name == name {
			return f, true
		}
	}
	return Fault{}, false
}

// bitflip flips max(1, n/div) bits at seeded positions.
func bitflip(div int) func(rng *rand.Rand, b *bitstring.Bits) *bitstring.Bits {
	return func(rng *rand.Rand, b *bitstring.Bits) *bitstring.Bits {
		n := b.Len()
		if n == 0 {
			return b.Clone()
		}
		flips := n / div
		if flips < 1 {
			flips = 1
		}
		out := b.Clone()
		for i := 0; i < flips; i++ {
			pos := rng.Intn(n)
			out.Set(pos, !out.Bit(pos))
		}
		return out
	}
}

// truncateTo keeps the first num/den of the bit-string.
func truncateTo(num, den int) func(rng *rand.Rand, b *bitstring.Bits) *bitstring.Bits {
	return func(rng *rand.Rand, b *bitstring.Bits) *bitstring.Bits {
		out := b.Clone()
		// Truncate only shrinks, so the error path is unreachable here;
		// ignore it rather than fail the injection.
		_ = out.Truncate(b.Len() * num / den)
		return out
	}
}

// dupSegment appends a duplicate of a random 1/8 segment to the end —
// the redundancy-friendly corruption: duplicated pieces only add votes.
func dupSegment(rng *rand.Rand, b *bitstring.Bits) *bitstring.Bits {
	n := b.Len()
	out := b.Clone()
	if n == 0 {
		return out
	}
	seg := n / 8
	if seg < 1 {
		seg = n
	}
	start := rng.Intn(n - seg + 1)
	for i := 0; i < seg; i++ {
		out.Append(b.Bit(start + i))
	}
	return out
}

// zeroSegment clears a random 1/16 segment in place (on the copy).
func zeroSegment(rng *rand.Rand, b *bitstring.Bits) *bitstring.Bits {
	n := b.Len()
	out := b.Clone()
	if n == 0 {
		return out
	}
	seg := n / 16
	if seg < 1 {
		seg = n
	}
	start := rng.Intn(n - seg + 1)
	for i := 0; i < seg; i++ {
		out.Set(start+i, false)
	}
	return out
}

// renameField damages a JSON field's key so the loader sees it as
// missing (required fields) or absent (optional ones). The replacement
// preserves length, keeping all other offsets intact.
func renameField(name string) func(rng *rand.Rand, data []byte) []byte {
	return func(rng *rand.Rand, data []byte) []byte {
		old := []byte(`"` + name + `"`)
		damaged := append([]byte(nil), old...)
		damaged[1] ^= 0x20 // flip the case of the first letter
		return bytes.Replace(append([]byte(nil), data...), old, damaged, 1)
	}
}
