package faults

import (
	"bytes"
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"pathmark/internal/bitstring"
	"pathmark/internal/feistel"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

// Outcome is the tri-state result of one injection, ordered from best to
// worst so catalog expectations can be phrased as upper bounds.
type Outcome int

const (
	// Survive: the watermark was fully recovered despite the fault.
	Survive Outcome = iota
	// Degrade: the pipeline completed and returned a (possibly partial)
	// Recognition with a confidence score, but not the full watermark.
	Degrade
	// Fail: the pipeline returned a typed error and no Recognition.
	Fail
)

func (o Outcome) String() string {
	switch o {
	case Survive:
		return "survive"
	case Degrade:
		return "degrade"
	default:
		return "fail"
	}
}

// Report is the result of assessing one fault.
type Report struct {
	Fault   string
	Kind    Kind
	Outcome Outcome
	// Err is the typed error the pipeline surfaced, if any. Survive and
	// Degrade outcomes may carry one too (e.g. a recovered worker panic
	// alongside a successful recognition).
	Err error
	// Rec is the Recognition the pipeline returned, nil on Fail.
	Rec *wm.Recognition
	// Confidence mirrors Rec.Confidence (0 on Fail) for callers that
	// only need the score.
	Confidence float64
	// Recovered reports that the harness itself caught a panic escaping
	// the pipeline — a contract violation the catalog test fails on.
	Recovered bool
	// Elapsed is the wall time of the injection.
	Elapsed time.Duration
}

// Host is the known-good embedding a fault is injected into: a marked
// program, its key (in memory and serialized), the embedded watermark,
// and the clean decoded trace.
type Host struct {
	Prog      *vm.Program
	Key       *wm.Key
	KeyJSON   []byte
	Watermark *big.Int
	Bits      *bitstring.Bits
}

// NewHost embeds a watermark into the given program and pre-computes the
// clean trace, so assessments corrupt copies of a verified-good baseline.
func NewHost(prog *vm.Program, input []int64, wBits int, seed int64) (*Host, error) {
	key, err := wm.NewKey(input, feistel.KeyFromUint64(uint64(seed), ^uint64(seed)), wBits)
	if err != nil {
		return nil, err
	}
	w := wm.RandomWatermark(wBits, uint64(seed)+1)
	pieces := 3 * len(key.Params.Primes())
	marked, _, err := wm.Embed(prog, w, key, wm.EmbedOptions{Pieces: pieces, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("faults: embedding host watermark: %w", err)
	}
	rec, err := wm.Recognize(marked, key)
	if err != nil || !rec.Matches(w) {
		return nil, fmt.Errorf("faults: host baseline does not recognize (err=%v)", err)
	}
	tr, _, err := vm.Collect(marked, key.Input, 1)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := wm.SaveKey(&buf, key); err != nil {
		return nil, err
	}
	return &Host{
		Prog: marked, Key: key, KeyJSON: buf.Bytes(),
		Watermark: w, Bits: tr.DecodeBits(),
	}, nil
}

// DefaultHost builds the standard assessment host: the MiniCalc
// interpreter workload summing two numbers, carrying a 64-bit watermark.
func DefaultHost(seed int64) (*Host, error) {
	return NewHost(workloads.MiniCalc(), workloads.CalcSum(10, 20), 64, seed)
}

// Options tunes an assessment.
type Options struct {
	// Seed drives the fault's randomness; the same (host, fault, seed)
	// triple always reproduces the same injection.
	Seed int64
	// Timeout bounds the whole injection (default 30s). It backs the
	// no-hang guarantee: the pipeline's context plumbing cuts every stage
	// off once the deadline passes.
	Timeout time.Duration
	// Workers overrides the scan worker count (0 = pipeline default).
	Workers int
	// Obs, when non-nil, receives inject.<fault>.<outcome> counters and
	// an inject.<fault> span per assessment.
	Obs *obs.Registry
}

// Assess injects one fault into the host and classifies the outcome.
// The harness itself never panics: a panic escaping the pipeline — a
// violation of the graceful-degradation contract — is recovered, marked
// Recovered, and classified Fail.
func Assess(h *Host, f Fault, opts Options) (rep Report) {
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	span := opts.Obs.Start("inject." + f.Name)
	start := time.Now()
	rep = Report{Fault: f.Name, Kind: f.Kind}
	defer func() {
		if r := recover(); r != nil {
			rep.Recovered = true
			rep.Outcome = Fail
			rep.Err = fmt.Errorf("faults: panic escaped the pipeline: %v", r)
		}
		rep.Elapsed = time.Since(start)
		if rep.Rec != nil {
			rep.Confidence = rep.Rec.Confidence
		}
		span.Set("outcome", int64(rep.Outcome)).
			Set("confidence_bp", int64(rep.Confidence*10_000)).Finish()
		opts.Obs.Counter("inject." + f.Name + "." + rep.Outcome.String()).Add(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()
	ropts := wm.RecognizeOpts{Ctx: ctx, Workers: opts.Workers, Obs: opts.Obs}

	key := h.Key
	if f.Keyfile != nil {
		damaged := f.Keyfile(rng, h.KeyJSON)
		loaded, err := wm.LoadKey(bytes.NewReader(damaged))
		if err != nil {
			rep.Outcome, rep.Err = Fail, err
			return rep
		}
		key = loaded
	}
	if f.Opts != nil {
		f.Opts(rng, &ropts)
	}

	var rec *wm.Recognition
	var err error
	if f.Bits != nil {
		rec, err = wm.RecognizeBits(f.Bits(rng, h.Bits), key, ropts)
	} else {
		rec, err = wm.RecognizeWithOpts(h.Prog, key, ropts)
	}
	rep.Rec, rep.Err = rec, err
	switch {
	case rec.Matches(h.Watermark):
		rep.Outcome = Survive
	case rec != nil:
		rep.Outcome = Degrade
	default:
		rep.Outcome = Fail
	}
	return rep
}

// AssessAll runs the whole catalog against the host in order.
func AssessAll(h *Host, opts Options) []Report {
	catalog := Catalog()
	reports := make([]Report, 0, len(catalog))
	for _, f := range catalog {
		reports = append(reports, Assess(h, f, opts))
	}
	return reports
}
