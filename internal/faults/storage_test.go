package faults

import (
	"testing"

	"pathmark/internal/iofault"
)

// TestStorageChaos is the storage durability property: for every named
// storage scenario and a pair of randomized schedules, a job hammered by
// injected disk faults across kill/restart lifetimes must end in exactly
// one of the two contract states — a result manifest byte-identical to
// the uninterrupted reference, or a clean quarantine with the corrupt
// log preserved as evidence. AssessStorage classifies anything else as
// a violation; this test fails on any.
func TestStorageChaos(t *testing.T) {
	h, err := DefaultHost(1)
	if err != nil {
		t.Fatal(err)
	}
	reports := AssessAllStorage(h, 2, Options{Seed: 42})
	if len(reports) != len(StorageCatalog())+2 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, rep := range reports {
		t.Logf("%-22s %-12s lifetimes=%d fired=%v err=%v",
			rep.Fault, rep.Outcome, rep.Lifetimes, rep.Fired, rep.Err)
		if rep.Outcome == StorageViolated {
			t.Errorf("%s: durability contract violated: %v", rep.Fault, rep.Err)
		}
	}

	// The write-side scenarios must not merely avoid violation — they
	// must actually fire their faults and still converge byte-identically.
	byName := map[string]StorageReport{}
	for _, rep := range reports {
		byName[rep.Fault] = rep
	}
	for _, name := range []string{"enospc-journal", "short-write-journal", "fsync-fail-journal", "torn-rename-result"} {
		rep := byName[name]
		if rep.Outcome != StorageResumed {
			t.Errorf("%s: outcome %s, want resumed byte-identical", name, rep.Outcome)
		}
		if len(rep.Fired) == 0 {
			t.Errorf("%s: schedule never fired — the scenario tested nothing", name)
		}
	}
	// The read-rot scenario must at least fire; whether it lands as a
	// truncated-tail resume or a proven-corruption quarantine depends on
	// which line the deterministic flip hits — both are contract-clean.
	if rep := byName["read-flip-journal"]; len(rep.Fired) == 0 {
		t.Error("read-flip-journal: schedule never fired")
	}
}

// TestStorageQuarantineEnding pins the quarantine ending deterministically:
// a schedule that rots the journal header on the resume read (the header
// is never the last line, so corruption is always proven, never torn)
// must end quarantined with the evidence moved aside.
func TestStorageQuarantineEnding(t *testing.T) {
	h, err := DefaultHost(2)
	if err != nil {
		t.Fatal(err)
	}
	// KindReadFlip's position depends on path and length; aim a whole
	// volley of read flips so successive resume reads keep re-rotting the
	// journal until one flip lands in a proven-corrupt position. If every
	// flip happens to land in the torn tail, the campaign legitimately
	// resumes — so only assert when quarantine happened that it was clean.
	sf := StorageFault{
		Name: "read-flip-volley",
		Schedule: []iofault.Fault{
			{Op: iofault.OpRead, Kind: iofault.KindReadFlip, Path: "journal.jsonl"},
			{Op: iofault.OpRead, Kind: iofault.KindReadFlip, Path: "journal.jsonl", After: 1},
		},
	}
	rep := AssessStorage(h, sf, Options{Seed: 7})
	t.Logf("%s: %s lifetimes=%d err=%v", rep.Fault, rep.Outcome, rep.Lifetimes, rep.Err)
	switch rep.Outcome {
	case StorageQuarantined:
		if rep.Quarantined == "" || !iofault.IsCorrupt(rep.Err) {
			t.Errorf("quarantined without evidence: dir=%q err=%v", rep.Quarantined, rep.Err)
		}
	case StorageResumed:
		// Flips landed in truncatable positions: allowed by the contract.
	default:
		t.Errorf("outcome %s: %v", rep.Outcome, rep.Err)
	}
}
