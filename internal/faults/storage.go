package faults

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pathmark/internal/iofault"
	"pathmark/internal/jobs"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// The storage fault class. Where the recognition catalog (faults.go)
// corrupts the *inputs* to the pipeline — traces, keys, programs — this
// class corrupts the *disk under the journaled job engine*: ENOSPC and
// short writes mid-append, failed fsyncs, torn renames, read-side bit
// rot. Each assessment is a kill/restart campaign: a reference run, then
// faulted process lifetimes over one job directory, then recovery with
// the faults disarmed. The durability contract admits exactly two
// endings — the resumed job's result manifest is byte-identical to the
// uninterrupted reference, or the damage is proven by a record checksum
// and the job lands in quarantine with the evidence intact. Anything
// else is a contract violation.

// StorageOutcome classifies one storage-fault campaign.
type StorageOutcome int

const (
	// StorageResumed: the job survived every fault and kill; the final
	// result manifest is byte-identical to the uninterrupted reference.
	StorageResumed StorageOutcome = iota
	// StorageQuarantined: replay proved mid-log corruption (checksum
	// mismatch with verified records after it) and the directory was
	// quarantined cleanly, evidence preserved.
	StorageQuarantined
	// StorageViolated: neither ending — a wrong result, an unclassified
	// terminal error, or a failed quarantine. The chaos test fails on it.
	StorageViolated
)

func (o StorageOutcome) String() string {
	switch o {
	case StorageResumed:
		return "resumed"
	case StorageQuarantined:
		return "quarantined"
	default:
		return "VIOLATED"
	}
}

// StorageFault is one named storage scenario: a deterministic iofault
// schedule applied to every filesystem operation of a journaled job.
type StorageFault struct {
	Name        string
	Description string
	Schedule    []iofault.Fault
}

// StorageCatalog enumerates the named storage scenarios, one per failure
// mode the iofault seam can inject, aimed at the artifacts the job engine
// writes.
func StorageCatalog() []StorageFault {
	return []StorageFault{
		{
			Name:        "enospc-journal",
			Description: "journal append fails with ENOSPC mid-job",
			Schedule:    []iofault.Fault{{Op: iofault.OpWrite, Kind: iofault.KindENOSPC, After: 2, Path: "journal.jsonl"}},
		},
		{
			Name:        "short-write-journal",
			Description: "journal append tears a record in half, then ENOSPC",
			Schedule:    []iofault.Fault{{Op: iofault.OpWrite, Kind: iofault.KindShortWrite, After: 1, Path: "journal.jsonl"}},
		},
		{
			Name:        "fsync-fail-journal",
			Description: "journal fsync fails with EIO; the handle is poisoned",
			Schedule:    []iofault.Fault{{Op: iofault.OpSync, Kind: iofault.KindSyncFail, After: 2, Path: "journal.jsonl"}},
		},
		{
			Name:        "torn-rename-result",
			Description: "the result manifest's publishing rename fails",
			Schedule:    []iofault.Fault{{Op: iofault.OpRename, Kind: iofault.KindTornRename, Path: "result.json"}},
		},
		{
			Name:        "read-flip-journal",
			Description: "a resume reads the journal with one bit flipped (media rot)",
			Schedule:    []iofault.Fault{{Op: iofault.OpRead, Kind: iofault.KindReadFlip, Path: "journal.jsonl"}},
		},
		{
			Name:        "enospc-open",
			Description: "a file open/create fails with ENOSPC",
			Schedule:    []iofault.Fault{{Op: iofault.OpOpen, Kind: iofault.KindOpenFail, After: 3}},
		},
		{
			Name:        "compound-sick-disk",
			Description: "short write, failed fsync and read rot across one job",
			Schedule: []iofault.Fault{
				{Op: iofault.OpWrite, Kind: iofault.KindShortWrite, After: 4},
				{Op: iofault.OpSync, Kind: iofault.KindSyncFail, After: 5},
				{Op: iofault.OpRead, Kind: iofault.KindReadFlip, Path: "journal.jsonl"},
			},
		},
	}
}

// RandomStorageFault derives a randomized schedule from seed — the
// fuzzing leg of the storage chaos harness. The same seed always yields
// the same campaign.
func RandomStorageFault(seed int64, n int) StorageFault {
	return StorageFault{
		Name:        fmt.Sprintf("random-%d", seed),
		Description: fmt.Sprintf("%d faults derived from seed %d", n, seed),
		Schedule:    iofault.Schedule(seed, n),
	}
}

// StorageReport is the result of one storage-fault campaign.
type StorageReport struct {
	Fault     string
	Outcome   StorageOutcome
	Fired     []iofault.Fault // the scheduled faults that actually triggered
	Lifetimes int             // process lifetimes simulated (reference excluded)
	// Quarantined is the destination directory when Outcome is
	// StorageQuarantined.
	Quarantined string
	// Err is the terminal error for quarantined/violated campaigns.
	Err     error
	Elapsed time.Duration
}

// storageSpec builds the job the campaign runs: one marked suspect
// against the host key twice (two grades, so a kill can land between
// them). The per-record fsync stays ON — sync is exactly what several
// scheduled faults target.
func storageSpec(h *Host, opts Options, fs iofault.FS) jobs.Spec {
	return jobs.Spec{
		Suspects: []*vm.Program{h.Prog},
		Keys:     []*wm.Key{h.Key, h.Key},
		Opts: jobs.Options{
			Workers:            1,
			Obs:                opts.Obs,
			FS:                 fs,
			DeterministicTrace: true,
		},
	}
}

// AssessStorage runs one storage-fault campaign: a clean reference run,
// then up to four process lifetimes over a single job directory — the
// first killed after its first grade commits, the first two with the
// fault schedule armed, the rest on a healed disk — and classifies the
// ending against the durability contract.
func AssessStorage(h *Host, sf StorageFault, opts Options) (rep StorageReport) {
	start := time.Now()
	rep = StorageReport{Fault: sf.Name}
	defer func() {
		rep.Elapsed = time.Since(start)
		opts.Obs.Counter("inject.storage." + rep.Outcome.String()).Add(1)
	}()
	violate := func(err error) StorageReport {
		rep.Outcome, rep.Err = StorageViolated, err
		return rep
	}

	root, err := os.MkdirTemp("", "pathmark-inject-storage-*")
	if err != nil {
		return violate(err)
	}
	defer os.RemoveAll(root)
	refDir := filepath.Join(root, "ref")
	jobDir := filepath.Join(root, "job")

	// Reference: the uninterrupted run on a healthy disk.
	if _, err := jobs.Execute(context.Background(), refDir, storageSpec(h, opts, nil)); err != nil {
		return violate(fmt.Errorf("reference run failed: %w", err))
	}
	want, err := os.ReadFile(jobs.ResultPath(refDir))
	if err != nil {
		return violate(err)
	}

	ffs := iofault.NewFaultFS(iofault.OS, sf.Schedule)
	var terminal error
	for life := 0; life < 4; life++ {
		if life == 2 {
			ffs.Disarm() // the disk heals; recovery runs on real semantics
		}
		spec := storageSpec(h, opts, ffs)
		ctx := context.Background()
		if life == 0 {
			// First lifetime dies (kill -9) right after its first grade
			// commits, forcing every later lifetime through journal replay.
			c, cancel := context.WithCancel(ctx)
			defer cancel()
			ctx = c
			spec.Opts.OnGrade = func(done int) {
				if done >= 1 {
					cancel()
				}
			}
		}
		_, terminal = jobs.Execute(ctx, jobDir, spec)
		rep.Lifetimes++
		if life > 0 && (terminal == nil || iofault.IsCorrupt(terminal)) {
			break
		}
	}
	rep.Fired = ffs.Fired()

	switch {
	case iofault.IsCorrupt(terminal):
		// Proven mid-log corruption: the clean ending is quarantine.
		dst, qerr := jobs.Quarantine(nil, root, jobDir, terminal)
		if qerr != nil {
			return violate(fmt.Errorf("quarantine after %v: %w", terminal, qerr))
		}
		if _, err := os.Stat(filepath.Join(dst, "reason.json")); err != nil {
			return violate(fmt.Errorf("quarantine left no reason record: %w", err))
		}
		if _, err := os.Stat(jobs.JournalPath(dst)); err != nil {
			return violate(fmt.Errorf("quarantine lost the corrupt journal evidence: %w", err))
		}
		rep.Outcome, rep.Err, rep.Quarantined = StorageQuarantined, terminal, dst
		return rep
	case terminal != nil:
		return violate(fmt.Errorf("recovery lifetime still failing: %w", terminal))
	}
	got, err := os.ReadFile(jobs.ResultPath(jobDir))
	if err != nil {
		return violate(fmt.Errorf("no result manifest after recovery: %w", err))
	}
	if string(got) != string(want) {
		return violate(fmt.Errorf("resumed result differs from the uninterrupted reference (%d vs %d bytes)", len(got), len(want)))
	}
	rep.Outcome = StorageResumed
	return rep
}

// AssessAllStorage runs the named storage catalog plus extra randomized
// schedules derived from opts.Seed.
func AssessAllStorage(h *Host, randomized int, opts Options) []StorageReport {
	catalog := StorageCatalog()
	reports := make([]StorageReport, 0, len(catalog)+randomized)
	for _, sf := range catalog {
		reports = append(reports, AssessStorage(h, sf, opts))
	}
	for i := 0; i < randomized; i++ {
		sf := RandomStorageFault(opts.Seed+int64(i), 3)
		reports = append(reports, AssessStorage(h, sf, opts))
	}
	return reports
}
