package faults

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pathmark/internal/obs"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

var (
	hostOnce sync.Once
	hostVal  *Host
	hostErr  error
)

// sharedHost builds the default host once: embedding plus the baseline
// recognition dominate the package's test time.
func sharedHost(t *testing.T) *Host {
	t.Helper()
	hostOnce.Do(func() { hostVal, hostErr = DefaultHost(7) })
	if hostErr != nil {
		t.Fatal(hostErr)
	}
	return hostVal
}

// TestCatalogContract is the headline acceptance test: every catalog
// fault, injected into the default host, must end in Survive, Degrade
// (with a confidence score), or a typed error — never a panic escaping
// the pipeline and never a hang.
func TestCatalogContract(t *testing.T) {
	h := sharedHost(t)
	for _, f := range Catalog() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			rep := Assess(h, f, Options{Seed: 11, Timeout: 30 * time.Second})
			if rep.Recovered {
				t.Fatalf("panic escaped the pipeline: %v", rep.Err)
			}
			if rep.Outcome > f.Expect {
				t.Errorf("outcome %v exceeds the catalog bound %v (err=%v)", rep.Outcome, f.Expect, rep.Err)
			}
			switch rep.Outcome {
			case Fail:
				if rep.Err == nil {
					t.Error("Fail outcome must carry a typed error")
				}
				if rep.Rec != nil {
					t.Error("Fail outcome must not carry a Recognition")
				}
			case Degrade:
				if rep.Rec == nil {
					t.Error("Degrade outcome must carry a Recognition")
				}
				if rep.Confidence < 0 || rep.Confidence > 1 {
					t.Errorf("confidence %v outside [0,1]", rep.Confidence)
				}
			case Survive:
				if !rep.Rec.Matches(h.Watermark) {
					t.Error("Survive outcome must fully match the watermark")
				}
			}
			// Typed-error discipline: whatever surfaced must be one of the
			// stack's error types, not an anonymous failure.
			if rep.Err != nil {
				var se *wm.StageError
				var kfe *wm.KeyFileError
				var re *vm.ResourceError
				if !errors.As(rep.Err, &se) && !errors.As(rep.Err, &kfe) && !errors.As(rep.Err, &re) {
					t.Errorf("untyped error: %T: %v", rep.Err, rep.Err)
				}
			}
		})
	}
}

// TestCatalogDeterminism re-runs a trace fault with the same seed and
// checks the injection reproduces bit-for-bit.
func TestCatalogDeterminism(t *testing.T) {
	h := sharedHost(t)
	f, ok := Find("trace-bitflip-heavy")
	if !ok {
		t.Fatal("catalog entry missing")
	}
	a := Assess(h, f, Options{Seed: 3})
	b := Assess(h, f, Options{Seed: 3})
	if a.Outcome != b.Outcome || a.Confidence != b.Confidence {
		t.Errorf("same seed diverged: %v/%v vs %v/%v", a.Outcome, a.Confidence, b.Outcome, b.Confidence)
	}
	if a.Rec != nil && b.Rec != nil && a.Rec.ValidStatements != b.Rec.ValidStatements {
		t.Errorf("same seed, different scans: %d vs %d valid statements",
			a.Rec.ValidStatements, b.Rec.ValidStatements)
	}
}

// TestFaultSpecificContracts pins the exact typed error each runtime
// fault must surface.
func TestFaultSpecificContracts(t *testing.T) {
	h := sharedHost(t)
	t.Run("worker-panic", func(t *testing.T) {
		f, _ := Find("worker-panic")
		rep := Assess(h, f, Options{Seed: 1})
		var se *wm.StageError
		if rep.Err == nil || !errors.As(rep.Err, &se) {
			t.Fatalf("want *wm.StageError, got %v", rep.Err)
		}
		if se.Stage != "scan" {
			t.Errorf("want scan stage, got %q", se.Stage)
		}
		if rep.Rec == nil {
			t.Fatal("worker panic must preserve the partial Recognition")
		}
	})
	t.Run("vm-fuel", func(t *testing.T) {
		f, _ := Find("vm-fuel")
		rep := Assess(h, f, Options{Seed: 1})
		var re *vm.ResourceError
		if !errors.As(rep.Err, &re) || !errors.Is(rep.Err, vm.ErrStepLimit) {
			t.Fatalf("want ResourceError wrapping ErrStepLimit, got %v", rep.Err)
		}
	})
	t.Run("vm-heap", func(t *testing.T) {
		f, _ := Find("vm-heap")
		rep := Assess(h, f, Options{Seed: 1})
		if !errors.Is(rep.Err, vm.ErrHeapLimit) {
			t.Fatalf("want ErrHeapLimit, got %v", rep.Err)
		}
	})
	t.Run("cancelled-context", func(t *testing.T) {
		f, _ := Find("cancelled-context")
		rep := Assess(h, f, Options{Seed: 1})
		if !errors.Is(rep.Err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", rep.Err)
		}
	})
	t.Run("key-truncate", func(t *testing.T) {
		f, _ := Find("key-truncate")
		rep := Assess(h, f, Options{Seed: 1})
		var kfe *wm.KeyFileError
		if !errors.As(rep.Err, &kfe) {
			t.Fatalf("want *wm.KeyFileError, got %v", rep.Err)
		}
	})
}

// TestLightFaultsPreserveRecognition checks the redundancy claim: the
// gentle trace corruptions leave enough pieces for full recovery.
func TestLightFaultsPreserveRecognition(t *testing.T) {
	h := sharedHost(t)
	for _, name := range []string{"trace-bitflip", "trace-dup-segment"} {
		f, ok := Find(name)
		if !ok {
			t.Fatalf("catalog entry %q missing", name)
		}
		rep := Assess(h, f, Options{Seed: 5})
		if rep.Outcome != Survive {
			t.Errorf("%s: expected the redundancy to absorb the fault, got %v (confidence %v, err %v)",
				name, rep.Outcome, rep.Confidence, rep.Err)
		}
	}
}

// TestAssessAllRecordsCounters checks the obs wiring: every assessment
// lands exactly one inject.<fault>.<outcome> counter.
func TestAssessAllRecordsCounters(t *testing.T) {
	h := sharedHost(t)
	reg := obs.NewRegistry()
	reports := AssessAll(h, Options{Seed: 2, Obs: reg})
	if len(reports) != len(Catalog()) {
		t.Fatalf("got %d reports for %d catalog entries", len(reports), len(Catalog()))
	}
	for _, rep := range reports {
		name := "inject." + rep.Fault + "." + rep.Outcome.String()
		if v := reg.Counter(name).Value(); v != 1 {
			t.Errorf("counter %q = %d, want 1", name, v)
		}
	}
}
