package isa

import (
	"encoding/binary"
	"fmt"
)

// Memory layout constants (Linux-IA-32-flavored).
const (
	TextBase  uint32 = 0x08048000
	dataAlign uint32 = 0x1000
	StackTop  uint32 = 0x0c000000
)

// Image is an assembled, loadable binary.
type Image struct {
	Text     []byte
	Data     []byte
	TextBase uint32
	DataBase uint32
	Entry    uint32
	// Labels maps every label to its resolved text address.
	Labels map[string]uint32
	// InstrAddrs[i] is the address of Unit.Instrs[i], in assembly order.
	InstrAddrs []uint32
}

// DataAddr returns the absolute address of a data-section offset.
func DataAddr(u *Unit, off int) uint32 {
	return TextBase + alignUp(u.TextSize(), dataAlign) + uint32(off)
}

func alignUp(v, a uint32) uint32 { return (v + a - 1) &^ (a - 1) }

// Assemble resolves labels and encodes the unit. The entry point is the
// first instruction.
func Assemble(u *Unit) (*Image, error) {
	img := &Image{
		TextBase: TextBase,
		Labels:   make(map[string]uint32),
		Entry:    TextBase,
	}
	// Pass 1: addresses.
	addr := TextBase
	img.InstrAddrs = make([]uint32, len(u.Instrs))
	for i, in := range u.Instrs {
		img.InstrAddrs[i] = addr
		if in.Label != "" {
			if _, dup := img.Labels[in.Label]; dup {
				return nil, fmt.Errorf("isa: duplicate label %q", in.Label)
			}
			img.Labels[in.Label] = addr
		}
		addr += in.Size()
	}
	img.DataBase = TextBase + alignUp(addr-TextBase, dataAlign)
	// Pass 2: encode.
	for i, in := range u.Instrs {
		enc, err := encodeIns(in, img.InstrAddrs[i], img.Labels)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d (%s): %w", i, in, err)
		}
		img.Text = append(img.Text, enc...)
	}
	img.Data = append([]byte(nil), u.Data...)
	return img, nil
}

func encodeIns(in Ins, addr uint32, labels map[string]uint32) ([]byte, error) {
	if in.Op >= opCount {
		return nil, fmt.Errorf("invalid opcode %d", in.Op)
	}
	buf := []byte{byte(in.Op)}
	imm32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	switch in.Op {
	case ONop, OHlt, ORet, OPushF, OPopF:
	case OPush, OPop, ONeg, ONot, OIn, OOut, OJmpReg:
		buf = append(buf, in.R1)
	case OMovReg, OAdd, OSub, OAnd, OOr, OXor, OMul, OUDiv, OUMod, OCmp:
		buf = append(buf, in.R1, in.R2)
	case OShlImm, OShrImm:
		buf = append(buf, in.R1, byte(in.Imm))
	case OMovImm:
		buf = append(buf, in.R1)
		imm32(uint32(in.Imm))
	case OLoadAbs, OStoreAbs:
		buf = append(buf, in.R1)
		imm32(uint32(in.Imm))
	case OJmpInd:
		buf = append(buf, 0)
		imm32(uint32(in.Imm))
	case OLoad, OStore:
		buf = append(buf, in.R1, in.R2)
		imm32(uint32(in.Imm))
	case OAddImm, OSubImm, OAndImm, OOrImm, OXorImm, OMulImm, OCmpImm:
		buf = append(buf, in.R1, 0)
		imm32(uint32(in.Imm))
	case OLoadIdx, OStoreIdx:
		buf = append(buf, in.R1, in.R2, in.Scale)
		imm32(uint32(in.Imm))
	case OJmp, OJe, OJne, OJl, OJge, OJg, OJle, OCall:
		var target uint32
		if in.Target != "" {
			t, ok := labels[in.Target]
			if !ok {
				return nil, fmt.Errorf("undefined label %q", in.Target)
			}
			target = t
		} else {
			target = uint32(int64(addr) + int64(in.Size()) + in.Imm)
		}
		rel := int32(target - (addr + in.Size()))
		imm32(uint32(rel))
	default:
		return nil, fmt.Errorf("unhandled opcode %v", in.Op)
	}
	if uint32(len(buf)) != in.Size() {
		return nil, fmt.Errorf("encoded %d bytes, expected %d", len(buf), in.Size())
	}
	return buf, nil
}

// Decoded is a disassembled instruction with its address and raw length.
type Decoded struct {
	Addr uint32
	Len  uint32
	Ins  Ins // Target empty; relative targets materialized in AbsTarget
	// AbsTarget is the absolute destination of jmp/jcc/call instructions.
	AbsTarget uint32
}

// Disassemble decodes the image's text section.
func Disassemble(img *Image) ([]Decoded, error) {
	var out []Decoded
	addr := img.TextBase
	for off := uint32(0); off < uint32(len(img.Text)); {
		d, err := DecodeAt(img.Text, img.TextBase, addr)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
		off += d.Len
		addr += d.Len
	}
	return out, nil
}

// DecodeAt decodes a single instruction at the given address.
func DecodeAt(text []byte, textBase, addr uint32) (Decoded, error) {
	off := addr - textBase
	if off >= uint32(len(text)) {
		return Decoded{}, fmt.Errorf("isa: decode address %#x outside text", addr)
	}
	op := Op(text[off])
	if op >= opCount {
		return Decoded{}, fmt.Errorf("isa: invalid opcode %d at %#x", op, addr)
	}
	in := Ins{Op: op}
	size := in.Size()
	if off+size > uint32(len(text)) {
		return Decoded{}, fmt.Errorf("isa: truncated instruction at %#x", addr)
	}
	b := text[off : off+size]
	u32 := func(i int) uint32 { return binary.LittleEndian.Uint32(b[i:]) }
	d := Decoded{Addr: addr, Len: size}
	switch op {
	case ONop, OHlt, ORet, OPushF, OPopF:
	case OPush, OPop, ONeg, ONot, OIn, OOut, OJmpReg:
		in.R1 = b[1]
	case OMovReg, OAdd, OSub, OAnd, OOr, OXor, OMul, OUDiv, OUMod, OCmp:
		in.R1, in.R2 = b[1], b[2]
	case OShlImm, OShrImm:
		in.R1, in.Imm = b[1], int64(b[2])
	case OMovImm, OLoadAbs, OStoreAbs:
		in.R1, in.Imm = b[1], int64(u32(2))
	case OJmpInd:
		in.Imm = int64(u32(2))
	case OLoad, OStore:
		in.R1, in.R2, in.Imm = b[1], b[2], int64(int32(u32(3)))
	case OAddImm, OSubImm, OAndImm, OOrImm, OXorImm, OMulImm, OCmpImm:
		in.R1, in.Imm = b[1], int64(u32(3))
	case OLoadIdx, OStoreIdx:
		in.R1, in.R2, in.Scale, in.Imm = b[1], b[2], b[3], int64(u32(4))
	case OJmp, OJe, OJne, OJl, OJge, OJg, OJle, OCall:
		rel := int32(u32(1))
		d.AbsTarget = uint32(int64(addr) + int64(size) + int64(rel))
		in.Imm = int64(rel)
	}
	d.Ins = in
	return d, nil
}
