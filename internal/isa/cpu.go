package isa

import (
	"errors"
	"fmt"
)

// Flag bits in the flags register.
const (
	FlagZF uint32 = 1 << 0
	FlagLT uint32 = 1 << 1 // signed less-than from the last cmp/arith
)

// Fault describes a trapped execution error; attacked binaries that fault
// are classified as broken.
type Fault struct {
	Addr uint32
	Msg  string
}

func (f *Fault) Error() string { return fmt.Sprintf("isa: fault at %#x: %s", f.Addr, f.Msg) }

// ErrStepLimit marks step-limit exhaustion.
var ErrStepLimit = errors.New("step limit exceeded")

// CPU simulates the machine. Create with NewCPU, then Run or Step.
type CPU struct {
	Regs  [numRegs]uint32
	EIP   uint32
	Flags uint32

	img    *Image
	mem    map[uint32]byte // sparse stack/heap memory outside text+data
	data   []byte          // mutable copy of the data section
	input  []int64
	inPos  int
	Output []int64
	Steps  int64
	halted bool

	// Hook, when set, runs before each instruction with its decoding.
	Hook func(cpu *CPU, d Decoded)
	// Profile, when non-nil, counts executions per instruction address.
	Profile map[uint32]int64
}

// NewCPU loads the image and prepares an execution with the given input
// sequence.
func NewCPU(img *Image, input []int64) *CPU {
	cpu := &CPU{
		img:   img,
		mem:   make(map[uint32]byte),
		data:  append([]byte(nil), img.Data...),
		input: input,
		EIP:   img.Entry,
	}
	cpu.Regs[ESP] = StackTop
	return cpu
}

// Halted reports whether the CPU has executed hlt.
func (c *CPU) Halted() bool { return c.halted }

func (c *CPU) fault(msg string) error { return &Fault{Addr: c.EIP, Msg: msg} }

// ReadMem reads one byte of memory (text, data, or stack/heap).
func (c *CPU) ReadMem(addr uint32) (byte, error) {
	switch {
	case addr >= c.img.TextBase && addr < c.img.TextBase+uint32(len(c.img.Text)):
		return c.img.Text[addr-c.img.TextBase], nil
	case addr >= c.img.DataBase && addr < c.img.DataBase+uint32(len(c.data)):
		return c.data[addr-c.img.DataBase], nil
	case addr >= c.img.DataBase+uint32(len(c.data)) && addr < StackTop:
		return c.mem[addr], nil
	}
	return 0, fmt.Errorf("read of unmapped address %#x", addr)
}

// WriteMem writes one byte; the text section is read-only.
func (c *CPU) WriteMem(addr uint32, v byte) error {
	switch {
	case addr >= c.img.TextBase && addr < c.img.TextBase+uint32(len(c.img.Text)):
		return fmt.Errorf("write to read-only text at %#x", addr)
	case addr >= c.img.DataBase && addr < c.img.DataBase+uint32(len(c.data)):
		c.data[addr-c.img.DataBase] = v
		return nil
	case addr >= c.img.DataBase+uint32(len(c.data)) && addr < StackTop:
		c.mem[addr] = v
		return nil
	}
	return fmt.Errorf("write to unmapped address %#x", addr)
}

// ReadWord reads a 32-bit little-endian word.
func (c *CPU) ReadWord(addr uint32) (uint32, error) {
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, err := c.ReadMem(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// WriteWord writes a 32-bit little-endian word.
func (c *CPU) WriteWord(addr uint32, v uint32) error {
	for i := uint32(0); i < 4; i++ {
		if err := c.WriteMem(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

func (c *CPU) push(v uint32) error {
	c.Regs[ESP] -= 4
	return c.WriteWord(c.Regs[ESP], v)
}

func (c *CPU) pop() (uint32, error) {
	v, err := c.ReadWord(c.Regs[ESP])
	if err != nil {
		return 0, err
	}
	c.Regs[ESP] += 4
	return v, nil
}

func (c *CPU) setFlags(result uint32, lt bool) {
	c.Flags = 0
	if result == 0 {
		c.Flags |= FlagZF
	}
	if lt {
		c.Flags |= FlagLT
	}
}

// Step executes a single instruction.
func (c *CPU) Step() error {
	if c.halted {
		return errors.New("isa: step after halt")
	}
	d, err := DecodeAt(c.img.Text, c.img.TextBase, c.EIP)
	if err != nil {
		return c.fault(err.Error())
	}
	if c.Hook != nil {
		c.Hook(c, d)
	}
	if c.Profile != nil {
		c.Profile[c.EIP]++
	}
	c.Steps++
	in := d.Ins
	next := c.EIP + d.Len
	reg := func(r byte) (uint32, error) {
		if r >= numRegs {
			return 0, c.fault(fmt.Sprintf("invalid register %d", r))
		}
		return c.Regs[r], nil
	}
	setReg := func(r byte, v uint32) error {
		if r >= numRegs {
			return c.fault(fmt.Sprintf("invalid register %d", r))
		}
		c.Regs[r] = v
		return nil
	}

	switch in.Op {
	case ONop:
	case OHlt:
		c.halted = true
		return nil
	case OMovImm:
		if err := setReg(in.R1, uint32(in.Imm)); err != nil {
			return err
		}
	case OMovReg:
		v, err := reg(in.R2)
		if err != nil {
			return err
		}
		if err := setReg(in.R1, v); err != nil {
			return err
		}
	case OLoad:
		base, err := reg(in.R2)
		if err != nil {
			return err
		}
		v, err := c.ReadWord(base + uint32(in.Imm))
		if err != nil {
			return c.fault(err.Error())
		}
		if err := setReg(in.R1, v); err != nil {
			return err
		}
	case OStore:
		base, err := reg(in.R1)
		if err != nil {
			return err
		}
		v, err := reg(in.R2)
		if err != nil {
			return err
		}
		if err := c.WriteWord(base+uint32(in.Imm), v); err != nil {
			return c.fault(err.Error())
		}
	case OLoadAbs:
		v, err := c.ReadWord(uint32(in.Imm))
		if err != nil {
			return c.fault(err.Error())
		}
		if err := setReg(in.R1, v); err != nil {
			return err
		}
	case OStoreAbs:
		v, err := reg(in.R1)
		if err != nil {
			return err
		}
		if err := c.WriteWord(uint32(in.Imm), v); err != nil {
			return c.fault(err.Error())
		}
	case OLoadIdx:
		idx, err := reg(in.R2)
		if err != nil {
			return err
		}
		v, err := c.ReadWord(uint32(in.Imm) + idx*uint32(in.Scale))
		if err != nil {
			return c.fault(err.Error())
		}
		if err := setReg(in.R1, v); err != nil {
			return err
		}
	case OStoreIdx:
		idx, err := reg(in.R2)
		if err != nil {
			return err
		}
		v, err := reg(in.R1)
		if err != nil {
			return err
		}
		if err := c.WriteWord(uint32(in.Imm)+idx*uint32(in.Scale), v); err != nil {
			return c.fault(err.Error())
		}
	case OPush:
		v, err := reg(in.R1)
		if err != nil {
			return err
		}
		if err := c.push(v); err != nil {
			return c.fault(err.Error())
		}
	case OPop:
		v, err := c.pop()
		if err != nil {
			return c.fault(err.Error())
		}
		if err := setReg(in.R1, v); err != nil {
			return err
		}
	case OPushF:
		if err := c.push(c.Flags); err != nil {
			return c.fault(err.Error())
		}
	case OPopF:
		v, err := c.pop()
		if err != nil {
			return c.fault(err.Error())
		}
		c.Flags = v
	case OAdd, OSub, OAnd, OOr, OXor, OMul, OUDiv, OUMod, OCmp:
		a, err := reg(in.R1)
		if err != nil {
			return err
		}
		b, err := reg(in.R2)
		if err != nil {
			return err
		}
		v, write, err := c.alu(in.Op, a, b)
		if err != nil {
			return err
		}
		if write {
			if err := setReg(in.R1, v); err != nil {
				return err
			}
		}
	case OAddImm, OSubImm, OAndImm, OOrImm, OXorImm, OMulImm, OCmpImm:
		a, err := reg(in.R1)
		if err != nil {
			return err
		}
		var aluOp Op
		switch in.Op {
		case OAddImm:
			aluOp = OAdd
		case OSubImm:
			aluOp = OSub
		case OAndImm:
			aluOp = OAnd
		case OOrImm:
			aluOp = OOr
		case OXorImm:
			aluOp = OXor
		case OMulImm:
			aluOp = OMul
		case OCmpImm:
			aluOp = OCmp
		}
		v, write, err := c.alu(aluOp, a, uint32(in.Imm))
		if err != nil {
			return err
		}
		if write {
			if err := setReg(in.R1, v); err != nil {
				return err
			}
		}
	case OShlImm:
		a, err := reg(in.R1)
		if err != nil {
			return err
		}
		v := a << (uint(in.Imm) & 31)
		c.setFlags(v, int32(v) < 0)
		if err := setReg(in.R1, v); err != nil {
			return err
		}
	case OShrImm:
		a, err := reg(in.R1)
		if err != nil {
			return err
		}
		v := a >> (uint(in.Imm) & 31)
		c.setFlags(v, false)
		if err := setReg(in.R1, v); err != nil {
			return err
		}
	case ONeg:
		a, err := reg(in.R1)
		if err != nil {
			return err
		}
		v := -a
		c.setFlags(v, int32(v) < 0)
		if err := setReg(in.R1, v); err != nil {
			return err
		}
	case ONot:
		a, err := reg(in.R1)
		if err != nil {
			return err
		}
		if err := setReg(in.R1, ^a); err != nil {
			return err
		}
	case OJmp:
		next = d.AbsTarget
	case OJe, OJne, OJl, OJge, OJg, OJle:
		if c.cond(in.Op) {
			next = d.AbsTarget
		}
	case OCall:
		if err := c.push(next); err != nil {
			return c.fault(err.Error())
		}
		next = d.AbsTarget
	case ORet:
		v, err := c.pop()
		if err != nil {
			return c.fault(err.Error())
		}
		next = v
	case OJmpInd:
		v, err := c.ReadWord(uint32(in.Imm))
		if err != nil {
			return c.fault(err.Error())
		}
		next = v
	case OJmpReg:
		v, err := reg(in.R1)
		if err != nil {
			return err
		}
		next = v
	case OIn:
		var v int64
		if c.inPos < len(c.input) {
			v = c.input[c.inPos]
			c.inPos++
		}
		if err := setReg(in.R1, uint32(v)); err != nil {
			return err
		}
	case OOut:
		v, err := reg(in.R1)
		if err != nil {
			return err
		}
		c.Output = append(c.Output, int64(int32(v)))
	default:
		return c.fault(fmt.Sprintf("unimplemented opcode %v", in.Op))
	}
	c.EIP = next
	return nil
}

func (c *CPU) alu(op Op, a, b uint32) (v uint32, write bool, err error) {
	write = true
	switch op {
	case OAdd:
		v = a + b
	case OSub:
		v = a - b
	case OAnd:
		v = a & b
	case OOr:
		v = a | b
	case OXor:
		v = a ^ b
	case OMul:
		v = a * b
	case OUDiv:
		if b == 0 {
			return 0, false, c.fault("division by zero")
		}
		v = a / b
	case OUMod:
		if b == 0 {
			return 0, false, c.fault("division by zero")
		}
		v = a % b
	case OCmp:
		v = a - b
		write = false
		c.setFlags(v, int32(a) < int32(b))
		return v, write, nil
	}
	c.setFlags(v, int32(v) < 0)
	return v, write, nil
}

func (c *CPU) cond(op Op) bool {
	zf := c.Flags&FlagZF != 0
	lt := c.Flags&FlagLT != 0
	switch op {
	case OJe:
		return zf
	case OJne:
		return !zf
	case OJl:
		return lt
	case OJge:
		return !lt
	case OJg:
		return !lt && !zf
	case OJle:
		return lt || zf
	}
	return false
}

// RunResult summarizes a completed native execution.
type RunResult struct {
	Output []int64
	Steps  int64
}

// Run executes until hlt or the step limit (0 = 50M default).
func (c *CPU) Run(stepLimit int64) (*RunResult, error) {
	if stepLimit == 0 {
		stepLimit = 50_000_000
	}
	for !c.halted {
		if c.Steps >= stepLimit {
			return nil, &Fault{Addr: c.EIP, Msg: ErrStepLimit.Error()}
		}
		if err := c.Step(); err != nil {
			return nil, err
		}
	}
	return &RunResult{Output: c.Output, Steps: c.Steps}, nil
}

// Execute assembles and runs a unit on the given input; a convenience for
// tests and the experiment harness.
func Execute(u *Unit, input []int64, stepLimit int64) (*RunResult, error) {
	img, err := Assemble(u)
	if err != nil {
		return nil, err
	}
	return NewCPU(img, input).Run(stepLimit)
}

// SameOutput reports observational equivalence of two runs.
func SameOutput(a, b *RunResult) bool {
	if a == nil || b == nil {
		return false
	}
	if len(a.Output) != len(b.Output) {
		return false
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			return false
		}
	}
	return true
}
