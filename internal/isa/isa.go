// Package isa implements the IA-32-flavored native substrate for the
// paper's §4: a 32-bit byte-addressed machine with variable-length
// instruction encodings, a stack-based call/ret discipline that passes the
// return address on the stack (the property branch functions exploit), a
// data section for the perfect-hash and XOR tables, indirect jumps through
// memory (the tamper-proofing hook), an assembler that resolves symbolic
// labels to relative displacements, a disassembler, a single-stepping CPU
// simulator, and an execution profiler.
//
// Programs are authored and transformed as Units — instruction lists with
// symbolic branch targets, the representation a binary rewriter like PLTO
// works on — and assembled into Images with concrete addresses. Attacks
// reassemble Units: like a real rewriter they fix every *visible* relative
// target but cannot know that words in the data section encode text
// addresses, which is exactly why address-shifting attacks break
// branch-function watermarks (§4.3, §5.2.2).
package isa

import "fmt"

// Op is a native opcode.
type Op byte

// The native instruction set. Loads and stores move 32-bit little-endian
// words. Conditions use the ZF/LT flags set by Cmp/CmpImm (and by
// arithmetic ops, which set them from their result).
const (
	ONop Op = iota
	OHlt

	OMovImm // R1 <- Imm
	OMovReg // R1 <- R2
	OLoad   // R1 <- mem[R2 + Imm]
	OStore  // mem[R1 + Imm] <- R2
	OLoadAbs
	OStoreAbs
	OLoadIdx  // R1 <- mem[Imm + R2*Scale]
	OStoreIdx // mem[Imm + R2*Scale] <- R1

	OPush
	OPop
	OPushF
	OPopF

	OAdd
	OSub
	OAnd
	OOr
	OXor
	OMul
	OUDiv
	OUMod
	OCmp
	OAddImm
	OSubImm
	OAndImm
	OOrImm
	OXorImm
	OMulImm
	OCmpImm
	OShlImm
	OShrImm
	ONeg
	ONot

	OJmp
	OJe
	OJne
	OJl
	OJge
	OJg
	OJle
	OCall
	ORet
	OJmpInd // jmp through mem[Imm]
	OJmpReg // jmp through R1

	OIn  // R1 <- next input value (0 when exhausted)
	OOut // append R1 to the program output

	opCount
)

var opNames = [...]string{
	ONop: "nop", OHlt: "hlt",
	OMovImm: "mov", OMovReg: "movr", OLoad: "load", OStore: "store",
	OLoadAbs: "loadabs", OStoreAbs: "storeabs", OLoadIdx: "loadidx", OStoreIdx: "storeidx",
	OPush: "push", OPop: "pop", OPushF: "pushf", OPopF: "popf",
	OAdd: "add", OSub: "sub", OAnd: "and", OOr: "or", OXor: "xor",
	OMul: "mul", OUDiv: "udiv", OUMod: "umod", OCmp: "cmp",
	OAddImm: "addi", OSubImm: "subi", OAndImm: "andi", OOrImm: "ori",
	OXorImm: "xori", OMulImm: "muli", OCmpImm: "cmpi",
	OShlImm: "shl", OShrImm: "shr", ONeg: "neg", ONot: "not",
	OJmp: "jmp", OJe: "je", OJne: "jne", OJl: "jl", OJge: "jge",
	OJg: "jg", OJle: "jle", OCall: "call", ORet: "ret",
	OJmpInd: "jmpind", OJmpReg: "jmpreg",
	OIn: "in", OOut: "out",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// IsJcc reports whether the opcode is a conditional jump.
func (o Op) IsJcc() bool { return o >= OJe && o <= OJle }

// IsUncond reports whether the opcode unconditionally leaves the
// instruction (no fall-through): jmp, ret, hlt, indirect jumps.
func (o Op) IsUncond() bool {
	switch o {
	case OJmp, ORet, OHlt, OJmpInd, OJmpReg:
		return true
	}
	return false
}

// HasRelTarget reports whether the opcode encodes a label-relative target.
func (o Op) HasRelTarget() bool { return o.IsJcc() || o == OJmp || o == OCall }

// NegateJcc flips a conditional jump's sense.
func NegateJcc(o Op) Op {
	switch o {
	case OJe:
		return OJne
	case OJne:
		return OJe
	case OJl:
		return OJge
	case OJge:
		return OJl
	case OJg:
		return OJle
	case OJle:
		return OJg
	}
	panic("isa: NegateJcc on non-conditional opcode")
}

// Registers.
const (
	EAX byte = iota
	EBX
	ECX
	EDX
	ESI
	EDI
	EBP
	ESP
	numRegs
)

var regNames = [...]string{"eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp"}

// RegName returns the register's assembly name.
func RegName(r byte) string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d", r)
}

// Ins is one instruction in Unit (pre-assembly) form. Branch-type
// instructions carry a symbolic Target resolved at assembly time; Label
// optionally names the instruction's own position.
type Ins struct {
	Op     Op
	R1, R2 byte
	Scale  byte
	Imm    int64  // immediate / displacement / absolute address
	Target string // symbolic target for jmp/jcc/call
	Label  string // symbolic name of this instruction's address
}

func (in Ins) String() string {
	switch in.Op {
	case ONop, OHlt, ORet, OPushF, OPopF:
		return in.Op.String()
	case OMovImm, OAddImm, OSubImm, OAndImm, OOrImm, OXorImm, OMulImm, OCmpImm, OShlImm, OShrImm:
		return fmt.Sprintf("%s %s, %d", in.Op, RegName(in.R1), in.Imm)
	case OMovReg, OAdd, OSub, OAnd, OOr, OXor, OMul, OUDiv, OUMod, OCmp:
		return fmt.Sprintf("%s %s, %s", in.Op, RegName(in.R1), RegName(in.R2))
	case OLoad:
		return fmt.Sprintf("load %s, [%s%+d]", RegName(in.R1), RegName(in.R2), in.Imm)
	case OStore:
		return fmt.Sprintf("store [%s%+d], %s", RegName(in.R1), in.Imm, RegName(in.R2))
	case OLoadAbs:
		return fmt.Sprintf("loadabs %s, [%#x]", RegName(in.R1), uint32(in.Imm))
	case OStoreAbs:
		return fmt.Sprintf("storeabs [%#x], %s", uint32(in.Imm), RegName(in.R1))
	case OLoadIdx:
		return fmt.Sprintf("loadidx %s, [%#x + %s*%d]", RegName(in.R1), uint32(in.Imm), RegName(in.R2), in.Scale)
	case OStoreIdx:
		return fmt.Sprintf("storeidx [%#x + %s*%d], %s", uint32(in.Imm), RegName(in.R2), in.Scale, RegName(in.R1))
	case OPush, OPop, ONeg, ONot, OIn, OOut, OJmpReg:
		return fmt.Sprintf("%s %s", in.Op, RegName(in.R1))
	case OJmpInd:
		return fmt.Sprintf("jmpind [%#x]", uint32(in.Imm))
	case OJmp, OJe, OJne, OJl, OJge, OJg, OJle, OCall:
		if in.Target != "" {
			return fmt.Sprintf("%s %s", in.Op, in.Target)
		}
		return fmt.Sprintf("%s %+d", in.Op, in.Imm)
	}
	return in.Op.String()
}

// Size returns the encoded byte length of the instruction — variable by
// opcode, so code insertion shifts the addresses of everything after it.
func (in Ins) Size() uint32 {
	switch in.Op {
	case ONop, OHlt, ORet, OPushF, OPopF:
		return 1
	case OPush, OPop, ONeg, ONot, OIn, OOut, OJmpReg:
		return 2
	case OMovReg, OAdd, OSub, OAnd, OOr, OXor, OMul, OUDiv, OUMod, OCmp, OShlImm, OShrImm:
		return 3
	case OJmp, OJe, OJne, OJl, OJge, OJg, OJle, OCall:
		return 5
	case OMovImm, OLoadAbs, OStoreAbs, OJmpInd:
		return 6
	case OLoad, OStore, OAddImm, OSubImm, OAndImm, OOrImm, OXorImm, OMulImm, OCmpImm:
		return 7
	case OLoadIdx, OStoreIdx:
		return 8
	}
	panic(fmt.Sprintf("isa: Size of invalid opcode %d", in.Op))
}

// Unit is a relocatable program: instructions with symbolic targets plus
// an initial data-section image. This is the representation transformers
// (the watermark embedder and the attack suite) operate on.
type Unit struct {
	Instrs []Ins
	Data   []byte
}

// Clone deep-copies the unit.
func (u *Unit) Clone() *Unit {
	return &Unit{
		Instrs: append([]Ins(nil), u.Instrs...),
		Data:   append([]byte(nil), u.Data...),
	}
}

// FindLabel returns the index of the instruction carrying the label, or -1.
func (u *Unit) FindLabel(label string) int {
	for i, in := range u.Instrs {
		if in.Label == label {
			return i
		}
	}
	return -1
}

// TextSize returns the total encoded size of the instruction stream.
func (u *Unit) TextSize() uint32 {
	var n uint32
	for _, in := range u.Instrs {
		n += in.Size()
	}
	return n
}

// CondBranchCount counts conditional jumps.
func (u *Unit) CondBranchCount() int {
	n := 0
	for _, in := range u.Instrs {
		if in.Op.IsJcc() {
			n++
		}
	}
	return n
}
