package isa

// Basic-block analysis over Unit instruction indices. The watermark
// embedder uses it to find tamper-proofing candidates: cold unconditional
// jumps dominated by the begin block and not inside a natural loop
// (paper §4.3).

// NBlock is a native basic block over instruction indices [Start, End).
type NBlock struct {
	Index      int
	Start, End int
}

// NCFG is the unit-level control flow graph. Instructions reached only
// through computed control flow (ret, jmpind, jmpreg) contribute no edges;
// blocks after unconditional terminators start new blocks.
type NCFG struct {
	Blocks  []NBlock
	blockOf []int
	Succs   [][]int
	Preds   [][]int
}

// BuildCFG constructs the unit's CFG. Call instructions are treated as
// straight-line (the callee returns), like a binary rewriter's intra-
// procedural view.
func BuildCFG(u *Unit) *NCFG {
	n := len(u.Instrs)
	labelIdx := make(map[string]int, n)
	for i, in := range u.Instrs {
		if in.Label != "" {
			labelIdx[in.Label] = i
		}
	}
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for i, in := range u.Instrs {
		if in.Op.HasRelTarget() && in.Op != OCall {
			if t, ok := labelIdx[in.Target]; ok {
				leader[t] = true
			}
		}
		if (in.Op.IsUncond() || in.Op.IsJcc()) && i+1 < n {
			leader[i+1] = true
		}
	}
	cfg := &NCFG{blockOf: make([]int, n)}
	start := -1
	for i := 0; i <= n; i++ {
		if i == n || leader[i] {
			if start >= 0 {
				cfg.Blocks = append(cfg.Blocks, NBlock{Index: len(cfg.Blocks), Start: start, End: i})
			}
			start = i
		}
	}
	for bi, b := range cfg.Blocks {
		for i := b.Start; i < b.End; i++ {
			cfg.blockOf[i] = bi
		}
	}
	cfg.Succs = make([][]int, len(cfg.Blocks))
	cfg.Preds = make([][]int, len(cfg.Blocks))
	addEdge := func(from, to int) {
		cfg.Succs[from] = append(cfg.Succs[from], to)
		cfg.Preds[to] = append(cfg.Preds[to], from)
	}
	for bi, b := range cfg.Blocks {
		last := u.Instrs[b.End-1]
		switch {
		case last.Op == OJmp:
			if t, ok := labelIdx[last.Target]; ok {
				addEdge(bi, cfg.blockOf[t])
			}
		case last.Op.IsJcc():
			if t, ok := labelIdx[last.Target]; ok {
				addEdge(bi, cfg.blockOf[t])
			}
			if b.End < n {
				addEdge(bi, cfg.blockOf[b.End])
			}
		case last.Op.IsUncond():
			// ret/hlt/jmpind/jmpreg: no static successors.
		default:
			if b.End < n {
				addEdge(bi, cfg.blockOf[b.End])
			}
		}
	}
	return cfg
}

// BlockOf returns the block index containing instruction i.
func (c *NCFG) BlockOf(i int) int { return c.blockOf[i] }

// Dominators computes the immediate-dominator-based dominance sets via the
// standard iterative bit-set algorithm; dom[b] reports, for every block a,
// whether a dominates b. Unreachable blocks are dominated by everything
// (the conventional convention) and excluded by callers via Reachable.
func (c *NCFG) Dominators() [][]bool {
	nb := len(c.Blocks)
	dom := make([][]bool, nb)
	for i := range dom {
		dom[i] = make([]bool, nb)
		for j := range dom[i] {
			dom[i][j] = true
		}
	}
	if nb == 0 {
		return dom
	}
	for j := range dom[0] {
		dom[0][j] = j == 0
	}
	changed := true
	for changed {
		changed = false
		for b := 1; b < nb; b++ {
			if len(c.Preds[b]) == 0 {
				continue
			}
			newSet := make([]bool, nb)
			for j := range newSet {
				newSet[j] = true
			}
			for _, p := range c.Preds[b] {
				for j := range newSet {
					newSet[j] = newSet[j] && dom[p][j]
				}
			}
			newSet[b] = true
			for j := range newSet {
				if newSet[j] != dom[b][j] {
					dom[b] = newSet
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// Reachable returns the set of blocks reachable from the entry block via
// static edges.
func (c *NCFG) Reachable() []bool {
	seen := make([]bool, len(c.Blocks))
	if len(c.Blocks) == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.Succs[b] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// InLoop returns, per block, whether it belongs to a natural loop: it can
// reach itself through static edges.
func (c *NCFG) InLoop() []bool {
	nb := len(c.Blocks)
	out := make([]bool, nb)
	for b := 0; b < nb; b++ {
		// DFS from b's successors back to b.
		seen := make([]bool, nb)
		stack := append([]int(nil), c.Succs[b]...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if x == b {
				out[b] = true
				break
			}
			if seen[x] {
				continue
			}
			seen[x] = true
			stack = append(stack, c.Succs[x]...)
		}
	}
	return out
}

// CollectProfile assembles and runs the unit on a training input,
// returning per-instruction-index execution counts (PLTO's profiling
// mode).
func CollectProfile(u *Unit, input []int64, stepLimit int64) (map[int]int64, error) {
	img, err := Assemble(u)
	if err != nil {
		return nil, err
	}
	cpu := NewCPU(img, input)
	cpu.Profile = make(map[uint32]int64)
	if _, err := cpu.Run(stepLimit); err != nil {
		return nil, err
	}
	addrToIdx := make(map[uint32]int, len(img.InstrAddrs))
	for i, a := range img.InstrAddrs {
		addrToIdx[a] = i
	}
	counts := make(map[int]int64, len(cpu.Profile))
	for addr, n := range cpu.Profile {
		if i, ok := addrToIdx[addr]; ok {
			counts[i] = n
		}
	}
	return counts, nil
}
