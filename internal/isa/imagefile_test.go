package isa

import (
	"bytes"
	"strings"
	"testing"
)

func TestImageFileRoundTrip(t *testing.T) {
	u := buildCountdown(4)
	u.Data = append(u.Data, 0xde, 0xad, 0xbe, 0xef)
	img, err := Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Text, img.Text) || !bytes.Equal(got.Data, img.Data) {
		t.Fatal("sections changed in round trip")
	}
	if got.TextBase != img.TextBase || got.DataBase != img.DataBase || got.Entry != img.Entry {
		t.Fatal("layout changed in round trip")
	}
	if len(got.Labels) != len(img.Labels) {
		t.Fatalf("labels: %d vs %d", len(got.Labels), len(img.Labels))
	}
	for name, addr := range img.Labels {
		if got.Labels[name] != addr {
			t.Fatalf("label %q: %#x vs %#x", name, got.Labels[name], addr)
		}
	}
	// The loaded image must execute identically.
	r1, err := NewCPU(img, nil).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewCPU(got, nil).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !SameOutput(r1, r2) {
		t.Fatal("loaded image behaves differently")
	}
}

func TestReadImageRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"ELF\x7f",
		"PMRKxxxx",
		"PMRK\x01\x00\x00\x00", // truncated after version
	}
	for i, src := range cases {
		if _, err := ReadImage(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: accepted garbage", i)
		}
	}
	// Wrong version.
	u := buildCountdown(1)
	img, _ := Assemble(u)
	var buf bytes.Buffer
	if err := WriteImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // version
	if _, err := ReadImage(bytes.NewReader(raw)); err == nil {
		t.Error("accepted wrong version")
	}
	// Truncated text length.
	raw[4] = 1
	if _, err := ReadImage(bytes.NewReader(raw[:20])); err == nil {
		t.Error("accepted truncated image")
	}
}
