package isa

import (
	"strings"
	"testing"
)

const asmCountdown = `
; count down from 5, emitting each value
  mov eax, 5
loop:
  cmp eax, 0
  je done
  out eax
  sub eax, 1
  jmp loop
done:
  hlt
`

func TestParseAsmCountdown(t *testing.T) {
	u, err := ParseAsm(asmCountdown)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(u, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 4, 3, 2, 1}
	if len(res.Output) != len(want) {
		t.Fatalf("output %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output %v, want %v", res.Output, want)
		}
	}
}

func TestParseAsmAllForms(t *testing.T) {
	src := `
data 16
  mov eax, 100
  mov ebx, eax
  add ebx, 1
  add ebx, eax
  sub esp, 16
  store [esp+4], ebx
  load ecx, [esp+4]
  out ecx
  push ecx
  pop edx
  xor edx, edx
  not edx
  neg edx
  shl eax, 2
  shr eax, 1
  mul eax, 3
  udiv eax, ebx
  umod eax, ebx
  and eax, 255
  or eax, 1
  in esi
  call sub1
  out eax
  hlt
sub1:
  add eax, 7
  ret
`
	u, err := ParseAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(u, []int64{3}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestParseAsmIndexedAndIndirect(t *testing.T) {
	// Indexed addressing against the data section plus an indirect jump.
	src := `
data 32
  mov ebx, 2
  mov ecx, 77
  store [BASE + ebx*4], ecx
  load edx, [BASE + ebx*4]
  out edx
  hlt
`
	u, err := ParseAsm(strings.ReplaceAll(src, "BASE", "0"))
	if err != nil {
		t.Fatal(err)
	}
	base := DataAddr(u, 0)
	for i := range u.Instrs {
		if u.Instrs[i].Op == OLoadIdx || u.Instrs[i].Op == OStoreIdx {
			u.Instrs[i].Imm = int64(base)
		}
	}
	res, err := Execute(u, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 77 {
		t.Fatalf("output %v, want [77]", res.Output)
	}
}

func TestParseAsmErrors(t *testing.T) {
	bad := []string{
		"  bogus eax, 1\n  hlt\n",
		"  mov eax\n  hlt\n",
		"  mov zzz, 1\n  hlt\n",
		"  jmp nowhere\n  hlt\n",
		"lonely:\n",
		"a:\nb:\n  hlt\n",
		"  load eax, esp\n  hlt\n",
		"  movr eax, 5\n  hlt\n", // movr has no immediate form
	}
	for i, src := range bad {
		if _, err := ParseAsm(src); err == nil {
			t.Errorf("case %d: accepted bad source", i)
		}
	}
}

func TestDumpAsmRoundTrip(t *testing.T) {
	u, err := ParseAsm(asmCountdown)
	if err != nil {
		t.Fatal(err)
	}
	dumped := DumpAsm(u)
	u2, err := ParseAsm(dumped)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, dumped)
	}
	r1, err := Execute(u, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(u2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !SameOutput(r1, r2) {
		t.Error("dump/parse changed behavior")
	}
}

func TestDumpAsmRoundTripBuilderPrograms(t *testing.T) {
	u := buildCountdown(4)
	dumped := DumpAsm(u)
	u2, err := ParseAsm(dumped)
	if err != nil {
		t.Fatalf("reparse builder output: %v\n%s", err, dumped)
	}
	r1, _ := Execute(u, nil, 0)
	r2, err := Execute(u2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !SameOutput(r1, r2) {
		t.Error("builder dump/parse changed behavior")
	}
}
