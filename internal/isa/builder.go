package isa

import "encoding/binary"

// Builder provides a fluent API for authoring Units (the native workload
// kernels and test programs are written with it).
type Builder struct {
	u         *Unit
	nextLabel string
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{u: &Unit{}} }

// Unit finalizes and returns the built unit.
func (b *Builder) Unit() *Unit { return b.u }

// Label attaches a name to the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	b.nextLabel = name
	return b
}

// Raw appends an arbitrary instruction.
func (b *Builder) Raw(in Ins) *Builder {
	if b.nextLabel != "" {
		in.Label = b.nextLabel
		b.nextLabel = ""
	}
	b.u.Instrs = append(b.u.Instrs, in)
	return b
}

// AllocData reserves n bytes of data section and returns the offset.
func (b *Builder) AllocData(n int) int {
	off := len(b.u.Data)
	b.u.Data = append(b.u.Data, make([]byte, n)...)
	return off
}

// AllocWords reserves n 32-bit words, returning the byte offset.
func (b *Builder) AllocWords(n int) int { return b.AllocData(4 * n) }

// SetDataWord patches a word into the data image at a byte offset.
func (b *Builder) SetDataWord(off int, v uint32) {
	binary.LittleEndian.PutUint32(b.u.Data[off:], v)
}

func (b *Builder) Nop() *Builder   { return b.Raw(Ins{Op: ONop}) }
func (b *Builder) Hlt() *Builder   { return b.Raw(Ins{Op: OHlt}) }
func (b *Builder) Ret() *Builder   { return b.Raw(Ins{Op: ORet}) }
func (b *Builder) PushF() *Builder { return b.Raw(Ins{Op: OPushF}) }
func (b *Builder) PopF() *Builder  { return b.Raw(Ins{Op: OPopF}) }

func (b *Builder) MovImm(r byte, v uint32) *Builder {
	return b.Raw(Ins{Op: OMovImm, R1: r, Imm: int64(v)})
}
func (b *Builder) MovReg(dst, src byte) *Builder {
	return b.Raw(Ins{Op: OMovReg, R1: dst, R2: src})
}
func (b *Builder) Load(dst, base byte, disp int32) *Builder {
	return b.Raw(Ins{Op: OLoad, R1: dst, R2: base, Imm: int64(disp)})
}
func (b *Builder) Store(base byte, disp int32, src byte) *Builder {
	return b.Raw(Ins{Op: OStore, R1: base, R2: src, Imm: int64(disp)})
}
func (b *Builder) LoadAbs(dst byte, addr uint32) *Builder {
	return b.Raw(Ins{Op: OLoadAbs, R1: dst, Imm: int64(addr)})
}
func (b *Builder) StoreAbs(addr uint32, src byte) *Builder {
	return b.Raw(Ins{Op: OStoreAbs, R1: src, Imm: int64(addr)})
}
func (b *Builder) LoadIdx(dst byte, base uint32, idx byte, scale byte) *Builder {
	return b.Raw(Ins{Op: OLoadIdx, R1: dst, R2: idx, Scale: scale, Imm: int64(base)})
}
func (b *Builder) StoreIdx(base uint32, idx byte, scale byte, src byte) *Builder {
	return b.Raw(Ins{Op: OStoreIdx, R1: src, R2: idx, Scale: scale, Imm: int64(base)})
}

func (b *Builder) Push(r byte) *Builder { return b.Raw(Ins{Op: OPush, R1: r}) }
func (b *Builder) Pop(r byte) *Builder  { return b.Raw(Ins{Op: OPop, R1: r}) }

func (b *Builder) Add(dst, src byte) *Builder  { return b.Raw(Ins{Op: OAdd, R1: dst, R2: src}) }
func (b *Builder) Sub(dst, src byte) *Builder  { return b.Raw(Ins{Op: OSub, R1: dst, R2: src}) }
func (b *Builder) And(dst, src byte) *Builder  { return b.Raw(Ins{Op: OAnd, R1: dst, R2: src}) }
func (b *Builder) Or(dst, src byte) *Builder   { return b.Raw(Ins{Op: OOr, R1: dst, R2: src}) }
func (b *Builder) Xor(dst, src byte) *Builder  { return b.Raw(Ins{Op: OXor, R1: dst, R2: src}) }
func (b *Builder) Mul(dst, src byte) *Builder  { return b.Raw(Ins{Op: OMul, R1: dst, R2: src}) }
func (b *Builder) UDiv(dst, src byte) *Builder { return b.Raw(Ins{Op: OUDiv, R1: dst, R2: src}) }
func (b *Builder) UMod(dst, src byte) *Builder { return b.Raw(Ins{Op: OUMod, R1: dst, R2: src}) }
func (b *Builder) Cmp(a, c byte) *Builder      { return b.Raw(Ins{Op: OCmp, R1: a, R2: c}) }

func (b *Builder) AddImm(r byte, v uint32) *Builder {
	return b.Raw(Ins{Op: OAddImm, R1: r, Imm: int64(v)})
}
func (b *Builder) SubImm(r byte, v uint32) *Builder {
	return b.Raw(Ins{Op: OSubImm, R1: r, Imm: int64(v)})
}
func (b *Builder) AndImm(r byte, v uint32) *Builder {
	return b.Raw(Ins{Op: OAndImm, R1: r, Imm: int64(v)})
}
func (b *Builder) OrImm(r byte, v uint32) *Builder {
	return b.Raw(Ins{Op: OOrImm, R1: r, Imm: int64(v)})
}
func (b *Builder) XorImm(r byte, v uint32) *Builder {
	return b.Raw(Ins{Op: OXorImm, R1: r, Imm: int64(v)})
}
func (b *Builder) MulImm(r byte, v uint32) *Builder {
	return b.Raw(Ins{Op: OMulImm, R1: r, Imm: int64(v)})
}
func (b *Builder) CmpImm(r byte, v uint32) *Builder {
	return b.Raw(Ins{Op: OCmpImm, R1: r, Imm: int64(v)})
}
func (b *Builder) ShlImm(r byte, v byte) *Builder {
	return b.Raw(Ins{Op: OShlImm, R1: r, Imm: int64(v)})
}
func (b *Builder) ShrImm(r byte, v byte) *Builder {
	return b.Raw(Ins{Op: OShrImm, R1: r, Imm: int64(v)})
}
func (b *Builder) Neg(r byte) *Builder { return b.Raw(Ins{Op: ONeg, R1: r}) }
func (b *Builder) Not(r byte) *Builder { return b.Raw(Ins{Op: ONot, R1: r}) }

func (b *Builder) Jmp(target string) *Builder { return b.Raw(Ins{Op: OJmp, Target: target}) }
func (b *Builder) Je(target string) *Builder  { return b.Raw(Ins{Op: OJe, Target: target}) }
func (b *Builder) Jne(target string) *Builder { return b.Raw(Ins{Op: OJne, Target: target}) }
func (b *Builder) Jl(target string) *Builder  { return b.Raw(Ins{Op: OJl, Target: target}) }
func (b *Builder) Jge(target string) *Builder { return b.Raw(Ins{Op: OJge, Target: target}) }
func (b *Builder) Jg(target string) *Builder  { return b.Raw(Ins{Op: OJg, Target: target}) }
func (b *Builder) Jle(target string) *Builder { return b.Raw(Ins{Op: OJle, Target: target}) }
func (b *Builder) Call(target string) *Builder {
	return b.Raw(Ins{Op: OCall, Target: target})
}
func (b *Builder) JmpInd(addr uint32) *Builder { return b.Raw(Ins{Op: OJmpInd, Imm: int64(addr)}) }
func (b *Builder) JmpReg(r byte) *Builder      { return b.Raw(Ins{Op: OJmpReg, R1: r}) }

func (b *Builder) In(r byte) *Builder  { return b.Raw(Ins{Op: OIn, R1: r}) }
func (b *Builder) Out(r byte) *Builder { return b.Raw(Ins{Op: OOut, R1: r}) }
