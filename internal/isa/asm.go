package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseAsm assembles the textual native assembly format into a Unit:
//
//	; comments run to end of line
//	data 64              ; reserve 64 bytes of data section
//	start:
//	  mov eax, 5
//	  cmp eax, ebx       ; register-register ALU
//	  je done
//	  load ecx, [esp+8]  ; base+displacement addressing
//	  store [esp+8], ecx
//	  loadabs edx, [0x804a000]
//	  loadidx edx, [0x804a000 + ecx*4]
//	  jmpind [0x804a000]
//	  call helper
//	  out eax
//	done:
//	  hlt
//
// Immediate-form ALU ops use the same mnemonic as their register form and
// are selected by the operand ("add eax, 5" vs "add eax, ebx"); shifts
// take an immediate count. Labels attach to the next instruction.
func ParseAsm(src string) (*Unit, error) {
	u := &Unit{}
	pending := ""
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("isa: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t") {
			if pending != "" {
				return nil, errf("two labels (%s, %s) without an instruction", pending, line)
			}
			pending = strings.TrimSuffix(line, ":")
			continue
		}
		mnemonic, rest, _ := strings.Cut(line, " ")
		ins, err := parseIns(mnemonic, strings.TrimSpace(rest))
		if err != nil {
			return nil, errf("%v", err)
		}
		if mnemonic == "data" {
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil || n < 0 {
				return nil, errf("bad data size %q", rest)
			}
			u.Data = append(u.Data, make([]byte, n)...)
			continue
		}
		ins.Label = pending
		pending = ""
		u.Instrs = append(u.Instrs, ins)
	}
	if pending != "" {
		return nil, fmt.Errorf("isa: trailing label %q", pending)
	}
	if _, err := Assemble(u); err != nil {
		return nil, err
	}
	return u, nil
}

var asmRegs = func() map[string]byte {
	m := make(map[string]byte, numRegs)
	for r := byte(0); r < numRegs; r++ {
		m[RegName(r)] = r
	}
	return m
}()

func parseReg(s string) (byte, error) {
	if r, ok := asmRegs[strings.TrimSpace(s)]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("unknown register %q", s)
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(strings.TrimSpace(s), 0, 64)
}

// parseMem parses "[reg+disp]", "[reg-disp]", "[reg]", "[addr]", or
// "[addr + reg*scale]" forms.
func parseMem(s string) (base byte, hasBase bool, addr int64, idx byte, scale byte, hasIdx bool, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, false, 0, 0, 0, false, fmt.Errorf("bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	// addr + reg*scale
	if i := strings.IndexByte(inner, '*'); i >= 0 {
		parts := strings.Split(inner, "+")
		if len(parts) != 2 {
			return 0, false, 0, 0, 0, false, fmt.Errorf("bad indexed operand %q", s)
		}
		addr, err = parseImm(parts[0])
		if err != nil {
			return
		}
		regScale := strings.Split(parts[1], "*")
		if len(regScale) != 2 {
			return 0, false, 0, 0, 0, false, fmt.Errorf("bad index expression %q", parts[1])
		}
		idx, err = parseReg(regScale[0])
		if err != nil {
			return
		}
		var sc int64
		sc, err = parseImm(regScale[1])
		if err != nil {
			return
		}
		return 0, false, addr, idx, byte(sc), true, nil
	}
	// reg+disp / reg-disp / reg
	if r, rerr := parseReg(splitBaseDisp(inner)); rerr == nil {
		base = r
		hasBase = true
		rest := strings.TrimSpace(inner[len(splitBaseDisp(inner)):])
		if rest == "" {
			return base, true, 0, 0, 0, false, nil
		}
		addr, err = parseImm(strings.ReplaceAll(rest, " ", ""))
		return base, true, addr, 0, 0, false, err
	}
	// absolute
	addr, err = parseImm(inner)
	return 0, false, addr, 0, 0, false, err
}

func splitBaseDisp(s string) string {
	for i, r := range s {
		if r == '+' || r == '-' || r == ' ' {
			return s[:i]
		}
	}
	return s
}

func parseIns(mnemonic, rest string) (Ins, error) {
	split2 := func() (string, string, error) {
		a, b, ok := strings.Cut(rest, ",")
		if !ok {
			return "", "", fmt.Errorf("%s wants two operands", mnemonic)
		}
		return strings.TrimSpace(a), strings.TrimSpace(b), nil
	}
	switch mnemonic {
	case "data":
		return Ins{}, nil // handled by the caller
	case "nop":
		return Ins{Op: ONop}, nil
	case "hlt":
		return Ins{Op: OHlt}, nil
	case "ret":
		return Ins{Op: ORet}, nil
	case "pushf":
		return Ins{Op: OPushF}, nil
	case "popf":
		return Ins{Op: OPopF}, nil
	case "push", "pop", "neg", "not", "in", "out", "jmpreg":
		r, err := parseReg(rest)
		if err != nil {
			return Ins{}, err
		}
		ops := map[string]Op{"push": OPush, "pop": OPop, "neg": ONeg, "not": ONot,
			"in": OIn, "out": OOut, "jmpreg": OJmpReg}
		return Ins{Op: ops[mnemonic], R1: r}, nil
	case "jmp", "je", "jne", "jl", "jge", "jg", "jle", "call":
		ops := map[string]Op{"jmp": OJmp, "je": OJe, "jne": OJne, "jl": OJl,
			"jge": OJge, "jg": OJg, "jle": OJle, "call": OCall}
		if rest == "" {
			return Ins{}, fmt.Errorf("%s wants a label", mnemonic)
		}
		return Ins{Op: ops[mnemonic], Target: rest}, nil
	case "jmpind":
		_, _, addr, _, _, _, err := parseMem(rest)
		if err != nil {
			return Ins{}, err
		}
		return Ins{Op: OJmpInd, Imm: addr}, nil
	case "mov", "movr", "add", "sub", "and", "or", "xor", "mul", "udiv", "umod", "cmp":
		a, b, err := split2()
		if err != nil {
			return Ins{}, err
		}
		r1, err := parseReg(a)
		if err != nil {
			return Ins{}, err
		}
		if r2, rerr := parseReg(b); rerr == nil {
			regOps := map[string]Op{"mov": OMovReg, "movr": OMovReg, "add": OAdd,
				"sub": OSub, "and": OAnd, "or": OOr, "xor": OXor, "mul": OMul,
				"udiv": OUDiv, "umod": OUMod, "cmp": OCmp}
			return Ins{Op: regOps[mnemonic], R1: r1, R2: r2}, nil
		}
		imm, err := parseImm(b)
		if err != nil {
			return Ins{}, fmt.Errorf("operand %q is neither register nor immediate", b)
		}
		immOps := map[string]Op{"mov": OMovImm, "add": OAddImm, "sub": OSubImm,
			"and": OAndImm, "or": OOrImm, "xor": OXorImm, "mul": OMulImm, "cmp": OCmpImm}
		op, ok := immOps[mnemonic]
		if !ok {
			return Ins{}, fmt.Errorf("%s has no immediate form", mnemonic)
		}
		return Ins{Op: op, R1: r1, Imm: imm}, nil
	case "shl", "shr":
		a, b, err := split2()
		if err != nil {
			return Ins{}, err
		}
		r1, err := parseReg(a)
		if err != nil {
			return Ins{}, err
		}
		imm, err := parseImm(b)
		if err != nil {
			return Ins{}, err
		}
		op := OShlImm
		if mnemonic == "shr" {
			op = OShrImm
		}
		return Ins{Op: op, R1: r1, Imm: imm}, nil
	case "load", "loadabs", "loadidx":
		a, b, err := split2()
		if err != nil {
			return Ins{}, err
		}
		r1, err := parseReg(a)
		if err != nil {
			return Ins{}, err
		}
		base, hasBase, addr, idx, scale, hasIdx, err := parseMem(b)
		if err != nil {
			return Ins{}, err
		}
		switch {
		case hasIdx:
			return Ins{Op: OLoadIdx, R1: r1, R2: idx, Scale: scale, Imm: addr}, nil
		case hasBase:
			return Ins{Op: OLoad, R1: r1, R2: base, Imm: addr}, nil
		default:
			return Ins{Op: OLoadAbs, R1: r1, Imm: addr}, nil
		}
	case "store", "storeabs", "storeidx":
		a, b, err := split2()
		if err != nil {
			return Ins{}, err
		}
		src, err := parseReg(b)
		if err != nil {
			return Ins{}, err
		}
		base, hasBase, addr, idx, scale, hasIdx, err := parseMem(a)
		if err != nil {
			return Ins{}, err
		}
		switch {
		case hasIdx:
			return Ins{Op: OStoreIdx, R1: src, R2: idx, Scale: scale, Imm: addr}, nil
		case hasBase:
			return Ins{Op: OStore, R1: base, R2: src, Imm: addr}, nil
		default:
			return Ins{Op: OStoreAbs, R1: src, Imm: addr}, nil
		}
	}
	return Ins{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
}

// DumpAsm renders the unit in re-parseable textual form. Relative branch
// targets must be symbolic (which Builder- and ParseAsm-produced units
// guarantee).
func DumpAsm(u *Unit) string {
	var sb strings.Builder
	if len(u.Data) > 0 {
		fmt.Fprintf(&sb, "data %d\n", len(u.Data))
	}
	for _, in := range u.Instrs {
		if in.Label != "" {
			fmt.Fprintf(&sb, "%s:\n", in.Label)
		}
		switch in.Op {
		case OMovReg:
			fmt.Fprintf(&sb, "  mov %s, %s\n", RegName(in.R1), RegName(in.R2))
		case OMovImm:
			fmt.Fprintf(&sb, "  mov %s, %d\n", RegName(in.R1), int32(in.Imm))
		case OAddImm, OSubImm, OAndImm, OOrImm, OXorImm, OMulImm, OCmpImm:
			names := map[Op]string{OAddImm: "add", OSubImm: "sub", OAndImm: "and",
				OOrImm: "or", OXorImm: "xor", OMulImm: "mul", OCmpImm: "cmp"}
			fmt.Fprintf(&sb, "  %s %s, %d\n", names[in.Op], RegName(in.R1), int32(in.Imm))
		case OLoad:
			fmt.Fprintf(&sb, "  load %s, [%s%+d]\n", RegName(in.R1), RegName(in.R2), int32(in.Imm))
		case OStore:
			fmt.Fprintf(&sb, "  store [%s%+d], %s\n", RegName(in.R1), int32(in.Imm), RegName(in.R2))
		case OLoadAbs:
			fmt.Fprintf(&sb, "  load %s, [%#x]\n", RegName(in.R1), uint32(in.Imm))
		case OStoreAbs:
			fmt.Fprintf(&sb, "  store [%#x], %s\n", uint32(in.Imm), RegName(in.R1))
		case OLoadIdx:
			fmt.Fprintf(&sb, "  load %s, [%#x + %s*%d]\n", RegName(in.R1), uint32(in.Imm), RegName(in.R2), in.Scale)
		case OStoreIdx:
			fmt.Fprintf(&sb, "  store [%#x + %s*%d], %s\n", uint32(in.Imm), RegName(in.R2), in.Scale, RegName(in.R1))
		case OJmpInd:
			fmt.Fprintf(&sb, "  jmpind [%#x]\n", uint32(in.Imm))
		case OJmp, OJe, OJne, OJl, OJge, OJg, OJle, OCall:
			fmt.Fprintf(&sb, "  %s %s\n", in.Op, in.Target)
		default:
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	return sb.String()
}
