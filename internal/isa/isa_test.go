package isa

import (
	"testing"
)

// buildCountdown: out(n), n-- until 0, then hlt.
func buildCountdown(n uint32) *Unit {
	b := NewBuilder()
	b.MovImm(EAX, n)
	b.Label("loop").CmpImm(EAX, 0)
	b.Je("done")
	b.Out(EAX)
	b.SubImm(EAX, 1)
	b.Jmp("loop")
	b.Label("done").Hlt()
	return b.Unit()
}

func TestCountdown(t *testing.T) {
	res, err := Execute(buildCountdown(5), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 4, 3, 2, 1}
	if len(res.Output) != len(want) {
		t.Fatalf("output %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output %v, want %v", res.Output, want)
		}
	}
}

func TestArithmeticAndFlags(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
		want  int64
	}{
		{"add", func(b *Builder) { b.MovImm(EAX, 7).MovImm(EBX, 3).Add(EAX, EBX) }, 10},
		{"sub", func(b *Builder) { b.MovImm(EAX, 7).MovImm(EBX, 3).Sub(EAX, EBX) }, 4},
		{"mul", func(b *Builder) { b.MovImm(EAX, 7).MovImm(EBX, 3).Mul(EAX, EBX) }, 21},
		{"udiv", func(b *Builder) { b.MovImm(EAX, 7).MovImm(EBX, 3).UDiv(EAX, EBX) }, 2},
		{"umod", func(b *Builder) { b.MovImm(EAX, 7).MovImm(EBX, 3).UMod(EAX, EBX) }, 1},
		{"and", func(b *Builder) { b.MovImm(EAX, 12).AndImm(EAX, 10) }, 8},
		{"or", func(b *Builder) { b.MovImm(EAX, 12).OrImm(EAX, 10) }, 14},
		{"xor", func(b *Builder) { b.MovImm(EAX, 12).XorImm(EAX, 10) }, 6},
		{"shl", func(b *Builder) { b.MovImm(EAX, 3).ShlImm(EAX, 4) }, 48},
		{"shr", func(b *Builder) { b.MovImm(EAX, 48).ShrImm(EAX, 4) }, 3},
		{"neg", func(b *Builder) { b.MovImm(EAX, 5).Neg(EAX) }, -5},
		{"not", func(b *Builder) { b.MovImm(EAX, 0).Not(EAX) }, -1},
		{"movr", func(b *Builder) { b.MovImm(EBX, 42).MovReg(EAX, EBX) }, 42},
	}
	for _, c := range cases {
		b := NewBuilder()
		c.build(b)
		b.Out(EAX).Hlt()
		res, err := Execute(b.Unit(), nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Output[0] != c.want {
			t.Errorf("%s = %d, want %d", c.name, res.Output[0], c.want)
		}
	}
}

func TestConditionalJumps(t *testing.T) {
	// Each case: cmp a, b then jcc; output 1 if taken else 0.
	cases := []struct {
		op    Op
		a, b  uint32
		taken bool
	}{
		{OJe, 3, 3, true}, {OJe, 3, 4, false},
		{OJne, 3, 4, true}, {OJne, 3, 3, false},
		{OJl, 3, 4, true}, {OJl, 4, 4, false},
		{OJl, ^uint32(0), 1, true}, // -1 < 1 signed
		{OJge, 4, 4, true}, {OJge, 3, 4, false},
		{OJg, 5, 4, true}, {OJg, 4, 4, false},
		{OJle, 4, 4, true}, {OJle, 5, 4, false},
	}
	for i, c := range cases {
		b := NewBuilder()
		b.MovImm(EAX, c.a).MovImm(EBX, c.b).Cmp(EAX, EBX)
		b.Raw(Ins{Op: c.op, Target: "yes"})
		b.MovImm(ECX, 0).Out(ECX).Hlt()
		b.Label("yes").MovImm(ECX, 1).Out(ECX).Hlt()
		res, err := Execute(b.Unit(), nil, 0)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want := int64(0)
		if c.taken {
			want = 1
		}
		if res.Output[0] != want {
			t.Errorf("case %d (%v %d,%d): taken=%d want %d", i, c.op, c.a, c.b, res.Output[0], want)
		}
	}
}

func TestCallRetAndStack(t *testing.T) {
	b := NewBuilder()
	b.MovImm(EAX, 6)
	b.Call("double")
	b.Out(EAX)
	b.Hlt()
	b.Label("double").Add(EAX, EAX)
	b.Ret()
	res, err := Execute(b.Unit(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 12 {
		t.Errorf("got %d, want 12", res.Output[0])
	}
}

func TestPushPopPushF(t *testing.T) {
	b := NewBuilder()
	b.MovImm(EAX, 11).Push(EAX)
	b.MovImm(EAX, 99)
	b.CmpImm(EAX, 99) // set ZF
	b.PushF()
	b.MovImm(EBX, 1).CmpImm(EBX, 2) // clobber flags
	b.PopF()
	b.Je("zf") // restored ZF must be set
	b.MovImm(ECX, 0).Jmp("join")
	b.Label("zf").MovImm(ECX, 1)
	b.Label("join").Pop(EAX)
	b.Out(EAX).Out(ECX).Hlt()
	res, err := Execute(b.Unit(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 11 || res.Output[1] != 1 {
		t.Errorf("got %v, want [11 1]", res.Output)
	}
}

func TestDataSectionAndIndexedAccess(t *testing.T) {
	b := NewBuilder()
	off := b.AllocWords(4)
	u := b.Unit()
	// Fill data after the text is final (addresses depend on text size).
	b.MovImm(EBX, 2)
	b.LoadIdx(EAX, 0, EBX, 4) // base patched below
	b.Out(EAX)
	b.MovImm(ECX, 77)
	b.Raw(Ins{Op: OStoreIdx, R1: ECX, R2: EBX, Scale: 4, Imm: 0}) // patched
	b.LoadIdx(EDX, 0, EBX, 4)                                     // patched
	b.Out(EDX)
	b.Hlt()
	base := DataAddr(u, off)
	for i := range u.Instrs {
		if u.Instrs[i].Op == OLoadIdx || u.Instrs[i].Op == OStoreIdx {
			u.Instrs[i].Imm = int64(base)
		}
	}
	for i := 0; i < 4; i++ {
		b.SetDataWord(off+4*i, uint32(10*i))
	}
	res, err := Execute(u, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 20 || res.Output[1] != 77 {
		t.Errorf("got %v, want [20 77]", res.Output)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	b := NewBuilder()
	// Use stack memory through ESP-relative addressing.
	b.SubImm(ESP, 16)
	b.MovImm(EAX, 1234)
	b.Store(ESP, 4, EAX)
	b.Load(EBX, ESP, 4)
	b.Out(EBX)
	b.Hlt()
	res, err := Execute(b.Unit(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 1234 {
		t.Errorf("got %d, want 1234", res.Output[0])
	}
}

func TestInputSequence(t *testing.T) {
	b := NewBuilder()
	b.In(EAX).In(EBX).Add(EAX, EBX).Out(EAX).In(ECX).Out(ECX).Hlt()
	res, err := Execute(b.Unit(), []int64{30, 12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != 42 || res.Output[1] != 0 {
		t.Errorf("got %v, want [42 0]", res.Output)
	}
}

func TestJmpIndAndJmpReg(t *testing.T) {
	b := NewBuilder()
	slot := b.AllocWords(1)
	u := b.Unit()
	b.Jmp("start")
	b.Label("secret").MovImm(EAX, 7).Out(EAX).Hlt()
	b.Label("start").JmpInd(0) // patched below
	b.Hlt()
	img, err := Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the slot with the address of "secret" and the jmpind operand
	// with the slot's address.
	for i := range u.Instrs {
		if u.Instrs[i].Op == OJmpInd {
			u.Instrs[i].Imm = int64(DataAddr(u, slot))
		}
	}
	b.SetDataWord(slot, img.Labels["secret"])
	res, err := Execute(u, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 7 {
		t.Errorf("jmpind output %v, want [7]", res.Output)
	}

	// jmpreg variant.
	b2 := NewBuilder()
	u2 := b2.Unit()
	b2.Jmp("start")
	b2.Label("target").MovImm(EAX, 9).Out(EAX).Hlt()
	b2.Label("start").MovImm(EBX, 0) // patched
	b2.JmpReg(EBX)
	b2.Hlt()
	img2, err := Assemble(u2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u2.Instrs {
		if u2.Instrs[i].Op == OMovImm && u2.Instrs[i].R1 == EBX {
			u2.Instrs[i].Imm = int64(img2.Labels["target"])
		}
	}
	res2, err := Execute(u2, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Output) != 1 || res2.Output[0] != 9 {
		t.Errorf("jmpreg output %v, want [9]", res2.Output)
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"div-zero", func(b *Builder) { b.MovImm(EAX, 1).MovImm(EBX, 0).UDiv(EAX, EBX) }},
		{"mod-zero", func(b *Builder) { b.MovImm(EAX, 1).MovImm(EBX, 0).UMod(EAX, EBX) }},
		{"unmapped-read", func(b *Builder) { b.LoadAbs(EAX, 0x100) }},
		{"unmapped-write", func(b *Builder) { b.MovImm(EAX, 1).StoreAbs(0x100, EAX) }},
		{"text-write", func(b *Builder) { b.MovImm(EAX, 1).StoreAbs(TextBase, EAX) }},
		{"wild-jmpreg", func(b *Builder) { b.MovImm(EAX, 0x1000).JmpReg(EAX) }},
	}
	for _, c := range cases {
		b := NewBuilder()
		c.build(b)
		b.Hlt()
		if _, err := Execute(b.Unit(), nil, 1000); err == nil {
			t.Errorf("%s: expected fault", c.name)
		}
	}
}

func TestStepLimit(t *testing.T) {
	b := NewBuilder()
	b.Label("spin").Jmp("spin")
	if _, err := Execute(b.Unit(), nil, 100); err == nil {
		t.Error("expected step-limit fault")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	u := buildCountdown(3)
	img, err := Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(u.Instrs) {
		t.Fatalf("decoded %d instructions, want %d", len(decoded), len(u.Instrs))
	}
	for i, d := range decoded {
		if d.Ins.Op != u.Instrs[i].Op {
			t.Errorf("instr %d: op %v, want %v", i, d.Ins.Op, u.Instrs[i].Op)
		}
		if d.Addr != img.InstrAddrs[i] {
			t.Errorf("instr %d: addr %#x, want %#x", i, d.Addr, img.InstrAddrs[i])
		}
	}
	// Branch targets resolve to label addresses.
	for i, d := range decoded {
		if d.Ins.Op.HasRelTarget() {
			want := img.Labels[u.Instrs[i].Target]
			if d.AbsTarget != want {
				t.Errorf("instr %d: target %#x, want %#x", i, d.AbsTarget, want)
			}
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere").Hlt()
	if _, err := Assemble(b.Unit()); err == nil {
		t.Error("undefined label accepted")
	}
	b2 := NewBuilder()
	b2.Label("x").Nop()
	b2.Label("x").Hlt()
	if _, err := Assemble(b2.Unit()); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestVariableLengthSizes(t *testing.T) {
	// Inserting a nop shifts the addresses of everything after it — the
	// property the tamper-proofing experiments rely on.
	u := buildCountdown(2)
	img1, err := Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	u2 := u.Clone()
	u2.Instrs = append([]Ins{{Op: ONop}}, u2.Instrs...)
	img2, err := Assemble(u2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img1.InstrAddrs {
		if img2.InstrAddrs[i+1] != img1.InstrAddrs[i]+1 {
			t.Fatalf("nop insertion did not shift addresses: %#x vs %#x",
				img2.InstrAddrs[i+1], img1.InstrAddrs[i])
		}
	}
}

func TestCFGAndDominators(t *testing.T) {
	u := buildCountdown(3)
	cfg := BuildCFG(u)
	if len(cfg.Blocks) < 3 {
		t.Fatalf("blocks = %d, want >= 3", len(cfg.Blocks))
	}
	dom := cfg.Dominators()
	// Entry dominates everything reachable.
	reach := cfg.Reachable()
	for b := range cfg.Blocks {
		if reach[b] && !dom[b][0] {
			t.Errorf("entry does not dominate reachable block %d", b)
		}
	}
	// The loop head is in a loop; the final hlt block is not.
	inLoop := cfg.InLoop()
	anyLoop := false
	for _, l := range inLoop {
		anyLoop = anyLoop || l
	}
	if !anyLoop {
		t.Error("no loop detected in countdown")
	}
	hltBlock := cfg.BlockOf(len(u.Instrs) - 1)
	if inLoop[hltBlock] {
		t.Error("hlt block reported as in a loop")
	}
}

func TestCollectProfile(t *testing.T) {
	u := buildCountdown(5)
	counts, err := CollectProfile(u, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The loop condition (instr 1) executes 6 times; the out (instr 3) 5.
	if counts[1] != 6 {
		t.Errorf("loop head count = %d, want 6", counts[1])
	}
	if counts[3] != 5 {
		t.Errorf("body count = %d, want 5", counts[3])
	}
	if counts[0] != 1 {
		t.Errorf("entry count = %d, want 1", counts[0])
	}
}

func TestNegateJcc(t *testing.T) {
	for _, o := range []Op{OJe, OJne, OJl, OJge, OJg, OJle} {
		if NegateJcc(NegateJcc(o)) != o {
			t.Errorf("NegateJcc not involutive for %v", o)
		}
	}
}

func TestSignedOutput(t *testing.T) {
	b := NewBuilder()
	b.MovImm(EAX, 0).SubImm(EAX, 5).Out(EAX).Hlt()
	res, err := Execute(b.Unit(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != -5 {
		t.Errorf("got %d, want -5", res.Output[0])
	}
}
