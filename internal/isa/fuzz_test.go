package isa

import "testing"

// FuzzDecodeAt feeds arbitrary bytes to the decoder: it must either
// decode or error, never panic, and decoding must stay within the text.
func FuzzDecodeAt(f *testing.F) {
	img, err := Assemble(buildCountdown(3))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img.Text, uint32(0))
	f.Add([]byte{0xff, 0x00, 0x01}, uint32(0))
	f.Add([]byte{byte(OJmp), 0, 0, 0, 0}, uint32(0))
	f.Fuzz(func(t *testing.T, text []byte, off uint32) {
		d, err := DecodeAt(text, TextBase, TextBase+off)
		if err != nil {
			return
		}
		if d.Len == 0 || int(off)+int(d.Len) > len(text) {
			t.Fatalf("decoded length %d escapes text of %d bytes at offset %d", d.Len, len(text), off)
		}
	})
}

// FuzzParseAsm checks the textual assembler never panics and that accepted
// programs assemble.
func FuzzParseAsm(f *testing.F) {
	f.Add(asmCountdown)
	f.Add("  mov eax, 1\n  hlt\n")
	f.Add("data 4\nx:\n  jmp x\n")
	f.Add("\x00\xff:")
	f.Fuzz(func(t *testing.T, src string) {
		u, err := ParseAsm(src)
		if err != nil {
			return
		}
		if _, err := Assemble(u); err != nil {
			t.Fatalf("ParseAsm accepted a unit Assemble rejects: %v", err)
		}
	})
}

// FuzzCPUOnRandomText loads arbitrary bytes as a text section and runs the
// CPU: it must halt, fault, or hit the step limit — never panic.
func FuzzCPUOnRandomText(f *testing.F) {
	img, err := Assemble(buildCountdown(2))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img.Text)
	f.Add([]byte{byte(OHlt)})
	f.Add([]byte{byte(ORet), 0xab, 0x12})
	f.Fuzz(func(t *testing.T, text []byte) {
		if len(text) == 0 {
			return
		}
		fake := &Image{
			Text:     append([]byte(nil), text...),
			TextBase: TextBase,
			DataBase: TextBase + alignUp(uint32(len(text)), dataAlign),
			Entry:    TextBase,
		}
		cpu := NewCPU(fake, []int64{1, 2})
		_, _ = cpu.Run(10_000) // result or clean error; panics fail the fuzz
	})
}
