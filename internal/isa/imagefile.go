package isa

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Image container format — a minimal ELF-like envelope so watermarked
// binaries can be written to disk, shipped, attacked and traced as files:
//
//	magic   "PMRK"            4 bytes
//	version u32               currently 1
//	textBase, dataBase, entry u32 each
//	textLen u32, text bytes
//	dataLen u32, data bytes
//	nLabels u32, then per label: nameLen u32, name, addr u32
//
// Instruction addresses are not stored: they are recovered by
// disassembly, exactly as a real binary's would be.

var imageMagic = [4]byte{'P', 'M', 'R', 'K'}

const imageVersion = 1

// WriteImage serializes the image.
func WriteImage(w io.Writer, img *Image) error {
	var buf bytes.Buffer
	buf.Write(imageMagic[:])
	le := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	le(imageVersion)
	le(img.TextBase)
	le(img.DataBase)
	le(img.Entry)
	le(uint32(len(img.Text)))
	buf.Write(img.Text)
	le(uint32(len(img.Data)))
	buf.Write(img.Data)
	names := make([]string, 0, len(img.Labels))
	for name := range img.Labels {
		names = append(names, name)
	}
	sort.Strings(names)
	le(uint32(len(names)))
	for _, name := range names {
		le(uint32(len(name)))
		buf.WriteString(name)
		le(img.Labels[name])
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadImage deserializes an image written by WriteImage.
func ReadImage(r io.Reader) (*Image, error) {
	all, err := io.ReadAll(io.LimitReader(r, 1<<28))
	if err != nil {
		return nil, err
	}
	b := bytes.NewReader(all)
	var magic [4]byte
	if _, err := io.ReadFull(b, magic[:]); err != nil || magic != imageMagic {
		return nil, errors.New("isa: not a PMRK image")
	}
	u32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(b, binary.LittleEndian, &v)
		return v, err
	}
	version, err := u32()
	if err != nil || version != imageVersion {
		return nil, fmt.Errorf("isa: unsupported image version %d", version)
	}
	img := &Image{Labels: make(map[string]uint32)}
	if img.TextBase, err = u32(); err != nil {
		return nil, err
	}
	if img.DataBase, err = u32(); err != nil {
		return nil, err
	}
	if img.Entry, err = u32(); err != nil {
		return nil, err
	}
	readBlob := func() ([]byte, error) {
		n, err := u32()
		if err != nil {
			return nil, err
		}
		if int64(n) > int64(b.Len()) {
			return nil, errors.New("isa: truncated image")
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(b, blob); err != nil {
			return nil, err
		}
		return blob, nil
	}
	if img.Text, err = readBlob(); err != nil {
		return nil, err
	}
	if img.Data, err = readBlob(); err != nil {
		return nil, err
	}
	nLabels, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nLabels; i++ {
		name, err := readBlob()
		if err != nil {
			return nil, err
		}
		addr, err := u32()
		if err != nil {
			return nil, err
		}
		img.Labels[string(name)] = addr
	}
	// Sanity: text must decode from the entry.
	if img.Entry < img.TextBase || img.Entry >= img.TextBase+uint32(len(img.Text)) {
		return nil, errors.New("isa: entry point outside text")
	}
	return img, nil
}
