// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic substrates. Each Figure*/Table*
// function returns structured data plus a Render method that prints rows
// shaped like the paper's plots; cmd/experiments drives them and
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathmark/internal/obs"
)

// Config scales the experiment suite.
type Config struct {
	// Quick shrinks sweeps and trial counts for CI-speed runs.
	Quick bool
	// Seed drives all randomized parts; experiments are reproducible.
	Seed int64
	// Jobs bounds the worker pool independent sweep points run on:
	// 0 picks runtime.GOMAXPROCS(0), 1 forces the serial path. Every
	// randomized point derives its seed from Seed and its own identity —
	// pointSeed(Seed, table, index) for Monte-Carlo points, Seed plus the
	// sweep parameter for figure-8 points — never from a shared rand.Rand,
	// so tables are identical at every job count.
	Jobs int
	// Ctx, when non-nil, cancels a sweep between points: workers check it
	// before pulling the next point, so a deadline abandons the remaining
	// points promptly (already-started points run to completion). Tables
	// built from a cancelled sweep are incomplete; callers should check
	// Ctx.Err() before trusting them.
	Ctx context.Context
	// Obs, when non-nil, receives per-sweep-point timing histograms
	// (exp.<table>.point_us, a timing histogram) and point counters
	// (exp.<table>.points). Table contents never depend on Obs.
	Obs *obs.Registry
}

// jobs resolves the effective worker count.
func (cfg Config) jobs() int {
	if cfg.Jobs > 0 {
		return cfg.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(i) for every i in [0, n) on a bounded pool of cfg.Jobs
// workers. fn must confine its writes to index-i slots of pre-sized
// result slices; callers then assemble rows in index order, keeping
// output deterministic regardless of scheduling.
//
// table names the sweep for observability: when cfg.Obs is set, each
// point's wall time lands in the exp.<table>.point_us timing histogram
// (Observe is atomic-free but mutex-cheap, negligible against a sweep
// point's seconds of work) and the point count in exp.<table>.points.
func (cfg Config) forEach(table string, n int, fn func(i int)) {
	run := fn
	if cfg.Obs != nil {
		hist := cfg.Obs.TimingHistogram("exp." + table + ".point_us")
		points := cfg.Obs.Counter("exp." + table + ".points")
		run = func(i int) {
			t0 := time.Now()
			fn(i)
			hist.Observe(time.Since(t0).Microseconds())
			points.Add(1)
		}
	}
	workers := cfg.jobs()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
				return
			}
			run(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}

// pointSeed derives the deterministic RNG seed for sweep point `point` of
// the named table: a hash of (base seed, table name, point index). Points
// are seeded independently of execution order, which is what lets the
// pool run them concurrently without changing any table.
func pointSeed(base int64, table string, point int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/%d", base, table, point)
	return int64(h.Sum64() & (1<<63 - 1))
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func pct(f float64) string  { return fmt.Sprintf("%.1f%%", f*100) }
func prob(f float64) string { return fmt.Sprintf("%.3f", f) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func f64(v float64) string  { return fmt.Sprintf("%.2f", v) }
func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
