// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic substrates. Each Figure*/Table*
// function returns structured data plus a Render method that prints rows
// shaped like the paper's plots; cmd/experiments drives them and
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"strings"
)

// Config scales the experiment suite.
type Config struct {
	// Quick shrinks sweeps and trial counts for CI-speed runs.
	Quick bool
	// Seed drives all randomized parts; experiments are reproducible.
	Seed int64
}

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func pct(f float64) string  { return fmt.Sprintf("%.1f%%", f*100) }
func prob(f float64) string { return fmt.Sprintf("%.3f", f) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func f64(v float64) string  { return fmt.Sprintf("%.2f", v) }
func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
