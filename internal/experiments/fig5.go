package experiments

import (
	"math/rand"

	"pathmark/internal/crt"
	"pathmark/internal/stats"
	"pathmark/internal/wm"
)

// Fig5Point is one x-position of Figure 5: with `Intact` of the watermark
// statements surviving, the probability that the full 768-bit watermark is
// reconstructible.
type Fig5Point struct {
	Intact      int
	Empirical   float64
	Theoretical float64
}

// Figure5 reproduces Figure 5: empirical probability of recovering a
// 768-bit watermark from a random subset of intact pieces, against the
// formula (1) approximation. The statement graph is K_r over the key's
// prime basis; a subset of edges (pair statements) survives and recovery
// succeeds exactly when reconstruction reaches the full modulus.
func Figure5(cfg Config) ([]Fig5Point, *Table) {
	key, err := wm.NewKey(nil, cipherKey(), 768)
	if err != nil {
		panic(err)
	}
	w := wm.RandomWatermark(768, uint64(cfg.Seed)+7)
	stmts, err := key.Params.Split(w)
	if err != nil {
		panic(err)
	}
	r := len(key.Params.Primes())
	total := key.Params.NumPairs()

	trials := 200
	step := total / 24
	if cfg.Quick {
		trials = 40
		step = total / 8
	}
	if step == 0 {
		step = 1
	}

	maxW := key.Params.MaxWatermark()
	var intacts []int
	for intact := 0; intact <= total; intact += step {
		intacts = append(intacts, intact)
	}
	// Monte-Carlo points are independent: each x-position gets its own
	// point-derived RNG and runs on the pool.
	points := make([]Fig5Point, len(intacts))
	cfg.forEach("fig5", len(intacts), func(pi int) {
		intact := intacts[pi]
		rng := rand.New(rand.NewSource(pointSeed(cfg.Seed, "fig5", pi)))
		hits := 0
		for t := 0; t < trials; t++ {
			idx := rng.Perm(total)[:intact]
			subset := make([]crt.Statement, 0, intact)
			for _, i := range idx {
				subset = append(subset, stmts[i])
			}
			if len(subset) == 0 {
				continue
			}
			v, m, err := key.Params.Reconstruct(subset)
			if err == nil && m.Cmp(maxW) == 0 && v.Cmp(w) == 0 {
				hits++
			}
		}
		points[pi] = Fig5Point{
			Intact:      intact,
			Empirical:   float64(hits) / float64(trials),
			Theoretical: stats.RecoveryProbability(r, intact),
		}
	})

	table := &Table{
		Title:   "Figure 5: pieces recovered intact vs. probability of successful recovery (768-bit W)",
		Columns: []string{"intact", "of", "empirical", "formula(1)"},
		Notes: []string{
			"prime basis r=" + itoa(r) + ", pieces=r(r-1)/2=" + itoa(total),
			"success = reconstruction reaches the full modulus and yields W",
		},
	}
	for _, p := range points {
		table.Rows = append(table.Rows, []string{
			itoa(p.Intact), itoa(total), prob(p.Empirical), prob(p.Theoretical),
		})
	}
	return points, table
}
