package experiments

import (
	"fmt"
	"math/rand"

	"pathmark/internal/isa"
	"pathmark/internal/nativeattacks"
	"pathmark/internal/nativewm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

func paddedKernels(cfg Config) []workloads.NativeKernel {
	// 20k padding instructions ≈ a 110 KB text section — small for SPEC
	// but large enough that watermark size costs land in the paper's
	// regime rather than being inflated by a toy-sized denominator.
	pad := 20000
	if cfg.Quick {
		pad = 800
	}
	return workloads.PaddedNativeKernels(pad)
}

func nativeWBitSweep(cfg Config) []int {
	if cfg.Quick {
		return []int{128}
	}
	return []int{128, 256, 512}
}

// Fig9Point is one (program, watermark-size) measurement of Figure 9.
type Fig9Point struct {
	Program      string
	WBits        int
	SizeIncrease float64
	Slowdown     float64
}

// Figure9 reproduces Figures 9(a) and 9(b): per-SPEC-program size increase
// and runtime slowdown of branch-function watermarking for 128/256/512-bit
// marks. Profiling uses train inputs, evaluation uses ref inputs (§5.2).
func Figure9(cfg Config) ([]Fig9Point, *Table, *Table) {
	var points []Fig9Point
	sizeTable := &Table{
		Title:   "Figure 9(a): space cost of watermarking native code",
		Columns: []string{"program", "128-bit", "256-bit", "512-bit"},
		Notes:   []string{"cell = (text+data) size increase; paper's means are 10.8%-11.4%"},
	}
	timeTable := &Table{
		Title:   "Figure 9(b): time cost of watermarking native code (ref inputs)",
		Columns: []string{"program", "128-bit", "256-bit", "512-bit"},
		Notes:   []string{"cell = instruction-count slowdown; the paper's means are -0.65%..0.85%"},
	}
	wbitsList := nativeWBitSweep(cfg)
	kernels := paddedKernels(cfg)
	// Per-kernel runs are independent (each owns its unit): fan them out
	// on the job pool and assemble rows in kernel order afterward.
	type kernelResult struct {
		points           []Fig9Point
		sizeRow, timeRow []string
	}
	results := make([]kernelResult, len(kernels))
	cfg.forEach("fig9", len(kernels), func(ki int) {
		k := kernels[ki]
		base, err := isa.Execute(k.Unit, k.RefInput, 0)
		if err != nil {
			panic(fmt.Sprintf("%s baseline: %v", k.Name, err))
		}
		r := kernelResult{
			sizeRow: []string{k.Name, "-", "-", "-"},
			timeRow: []string{k.Name, "-", "-", "-"},
		}
		for wi, wbits := range []int{128, 256, 512} {
			inSweep := false
			for _, b := range wbitsList {
				if b == wbits {
					inSweep = true
				}
			}
			if !inSweep {
				continue
			}
			w := wm.RandomWatermark(wbits, uint64(cfg.Seed)+uint64(wbits))
			marked, report, err := nativewm.Embed(k.Unit, w, wbits, nativewm.EmbedOptions{
				Seed: cfg.Seed, TamperProof: true, TrainInput: k.TrainInput,
				LabelPrefix: "w1_", HelperDepth: 1,
			})
			if err != nil {
				panic(fmt.Sprintf("%s embed %d bits: %v", k.Name, wbits, err))
			}
			res, err := isa.Execute(marked, k.RefInput, 0)
			if err != nil {
				panic(fmt.Sprintf("%s marked run: %v", k.Name, err))
			}
			if !isa.SameOutput(base, res) {
				panic(fmt.Sprintf("%s: watermarking changed behavior", k.Name))
			}
			p := Fig9Point{
				Program:      k.Name,
				WBits:        wbits,
				SizeIncrease: report.SizeIncrease(),
				Slowdown:     float64(res.Steps-base.Steps) / float64(base.Steps),
			}
			r.points = append(r.points, p)
			r.sizeRow[1+wi] = pct(p.SizeIncrease)
			r.timeRow[1+wi] = pct(p.Slowdown)
		}
		results[ki] = r
	})
	for _, r := range results {
		points = append(points, r.points...)
		sizeTable.Rows = append(sizeTable.Rows, r.sizeRow)
		timeTable.Rows = append(timeTable.Rows, r.timeRow)
	}
	// Mean rows.
	for wi, wbits := range []int{128, 256, 512} {
		var sSum, tSum float64
		n := 0
		for _, p := range points {
			if p.WBits == wbits {
				sSum += p.SizeIncrease
				tSum += p.Slowdown
				n++
			}
		}
		if n == 0 {
			continue
		}
		if wi == 0 {
			sizeTable.Rows = append(sizeTable.Rows, []string{"Mean", "-", "-", "-"})
			timeTable.Rows = append(timeTable.Rows, []string{"Mean", "-", "-", "-"})
		}
		sizeTable.Rows[len(sizeTable.Rows)-1][1+wi] = pct(sSum / float64(n))
		timeTable.Rows[len(timeTable.Rows)-1][1+wi] = pct(tSum / float64(n))
	}
	return points, sizeTable, timeTable
}

// NativeAttackRow is one row of the §5.2.2 resilience table.
type NativeAttackRow struct {
	Attack string
	// Broken counts programs that malfunction after the attack.
	Broken, Total int
	// Extra describes tracer outcomes for the rerouting attack.
	Extra string
}

// NativeAttacksTable reproduces §5.2.2: no-op insertion, branch-sense
// inversion, double watermarking and branch-function bypass break every
// watermarked test program; rerouting keeps programs working and defeats
// only the simple tracer.
func NativeAttacksTable(cfg Config) ([]NativeAttackRow, *Table) {
	kernels := paddedKernels(cfg)
	if cfg.Quick {
		kernels = kernels[:3]
	}
	const wbits = 128
	rows := map[string]*NativeAttackRow{}
	order := []string{"no-op insertion", "branch sense inversion", "double watermarking",
		"bypass branch function", "reroute entries"}
	for _, name := range order {
		rows[name] = &NativeAttackRow{Attack: name}
	}
	// Each kernel's attack round is independent (seeds derive from the
	// kernel index); kernels run on the job pool, each collecting its own
	// verdicts, merged in kernel order afterward.
	type kernelVerdicts struct {
		broken, total                map[string]int
		rerouteFooled, rerouteSmart int
	}
	verdicts := make([]kernelVerdicts, len(kernels))
	cfg.forEach("nativeattacks", len(kernels), func(ki int) {
		k := kernels[ki]
		v := kernelVerdicts{broken: map[string]int{}, total: map[string]int{}}
		w := wm.RandomWatermark(wbits, uint64(cfg.Seed)+uint64(ki))
		marked, report, err := nativewm.Embed(k.Unit, w, wbits, nativewm.EmbedOptions{
			Seed: cfg.Seed + int64(ki), TamperProof: true,
			TrainInput: k.TrainInput, LabelPrefix: "w1_",
		})
		if err != nil {
			panic(fmt.Sprintf("%s: %v", k.Name, err))
		}
		img, err := isa.Assemble(marked)
		if err != nil {
			panic(err)
		}
		judge := func(name string, attacked *isa.Image) {
			v.total[name]++
			if nativeattacks.Judge(img, attacked, k.RefInput, 0) == nativeattacks.Broken {
				v.broken[name]++
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(ki)*17))

		// A single no-op ahead of the text shifts every address (§5.2.2:
		// "every one of our test programs breaks when even a single
		// no-op is added").
		nopped := nativeattacks.InsertNopAt(marked, 0)
		judge("no-op insertion", mustAssemble(nopped))

		inverted := nativeattacks.InvertBranchSenses(marked, rng, 1.0)
		judge("branch sense inversion", mustAssemble(inverted))

		double, _, err := nativewm.Embed(marked, wm.RandomWatermark(wbits, 999), wbits,
			nativewm.EmbedOptions{Seed: cfg.Seed + 77, TamperProof: true,
				TrainInput: k.TrainInput, LabelPrefix: "w2_"})
		if err != nil {
			panic(err)
		}
		judge("double watermarking", mustAssemble(double))

		events, err := nativewm.TraceMisReturns(img, k.TrainInput, 0)
		if err != nil {
			panic(err)
		}
		bypassed, err := nativeattacks.Bypass(img, events)
		if err != nil {
			panic(err)
		}
		judge("bypass branch function", bypassed)

		rerouted, err := nativeattacks.Reroute(img, events)
		if err != nil {
			panic(err)
		}
		judge("reroute entries", rerouted)
		if simple, err := nativewm.Extract(rerouted, k.TrainInput, report.Mark, nativewm.SimpleTracer, 0); err != nil || simple.Watermark.Cmp(w) != 0 {
			v.rerouteFooled++
		}
		if smart, err := nativewm.Extract(rerouted, k.TrainInput, report.Mark, nativewm.SmartTracer, 0); err == nil && smart.Watermark.Cmp(w) == 0 {
			v.rerouteSmart++
		}
		verdicts[ki] = v
	})
	var rerouteSimpleFooled, rerouteSmartOK int
	for _, v := range verdicts {
		for _, name := range order {
			rows[name].Broken += v.broken[name]
			rows[name].Total += v.total[name]
		}
		rerouteSimpleFooled += v.rerouteFooled
		rerouteSmartOK += v.rerouteSmart
	}
	table := &Table{
		Title:   "§5.2.2: native attack resilience (128-bit W, tamper-proofed)",
		Columns: []string{"attack", "programs broken", "paper"},
	}
	paperSays := map[string]string{
		"no-op insertion":        "every program breaks",
		"branch sense inversion": "every program breaks",
		"double watermarking":    "every program breaks",
		"bypass branch function": "execution breaks (tamper-proofing)",
		"reroute entries":        "program works; simple tracer disabled, smart tracer recovers",
	}
	var out []NativeAttackRow
	for _, name := range order {
		r := rows[name]
		if name == "reroute entries" {
			r.Extra = fmt.Sprintf("simple tracer fooled %d/%d, smart tracer recovered %d/%d",
				rerouteSimpleFooled, r.Total, rerouteSmartOK, r.Total)
		}
		out = append(out, *r)
		cell := fmt.Sprintf("%d/%d", r.Broken, r.Total)
		if r.Extra != "" {
			cell += " (" + r.Extra + ")"
		}
		table.Rows = append(table.Rows, []string{name, cell, paperSays[name]})
	}
	return out, table
}

func mustAssemble(u *isa.Unit) *isa.Image {
	img, err := isa.Assemble(u)
	if err != nil {
		panic(err)
	}
	return img
}
