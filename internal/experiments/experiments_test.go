package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"pathmark/internal/attacks"
)

var quick = Config{Quick: true, Seed: 42}

func TestFigure5ShapeAndAgreement(t *testing.T) {
	points, table := Figure5(quick)
	if len(points) < 5 {
		t.Fatalf("only %d points", len(points))
	}
	if points[0].Intact != 0 || points[0].Empirical != 0 {
		t.Errorf("zero intact pieces should never recover: %+v", points[0])
	}
	last := points[len(points)-1]
	if last.Empirical < 0.9 {
		t.Errorf("nearly all pieces intact should recover: %+v", last)
	}
	// Monotone-ish empirical curve and agreement with formula (1).
	for _, p := range points {
		if diff := p.Empirical - p.Theoretical; diff > 0.25 || diff < -0.25 {
			t.Errorf("intact=%d: empirical %.3f vs theoretical %.3f diverge", p.Intact, p.Empirical, p.Theoretical)
		}
	}
	if !strings.Contains(table.Render(), "Figure 5") {
		t.Error("table render broken")
	}
}

func TestFigure8aShape(t *testing.T) {
	points, _ := Figure8a(quick)
	if len(points) == 0 {
		t.Fatal("no points")
	}
	// Jess must stay cheap relative to CaffeineMark at the largest piece
	// count (the paper's central §5.1.1 contrast).
	var cafMax, jessMax float64
	for _, p := range points {
		if p.Workload == "CaffeineMark" && p.Slowdown > cafMax {
			cafMax = p.Slowdown
		}
		if p.Workload == "Jess" && p.Slowdown > jessMax {
			jessMax = p.Slowdown
		}
	}
	if cafMax <= jessMax {
		t.Errorf("CaffeineMark max slowdown %.3f not above Jess %.3f", cafMax, jessMax)
	}
	for _, p := range points {
		if p.Slowdown < 0 {
			t.Errorf("negative slowdown: %+v", p)
		}
	}
}

func TestFigure8bShape(t *testing.T) {
	points, _ := Figure8b(quick)
	// Size grows linearly: cost per piece roughly constant and small.
	for _, p := range points {
		if p.InstrPerPiece < 5 || p.InstrPerPiece > 700 {
			t.Errorf("instrs/piece = %.1f out of plausible band: %+v", p.InstrPerPiece, p)
		}
		if p.SizeIncrease <= 0 {
			t.Errorf("non-positive size increase: %+v", p)
		}
	}
	// More pieces, more size, same workload.
	byWorkload := map[string][]Fig8bPoint{}
	for _, p := range points {
		byWorkload[p.Workload] = append(byWorkload[p.Workload], p)
	}
	for wl, ps := range byWorkload {
		for i := 1; i < len(ps); i++ {
			if ps[i].Pieces > ps[i-1].Pieces && ps[i].SizeIncrease <= ps[i-1].SizeIncrease {
				t.Errorf("%s: size increase not monotone in pieces", wl)
			}
		}
	}
}

func TestFigure8cShape(t *testing.T) {
	points, _ := Figure8c(quick)
	if len(points) < 2 {
		t.Fatalf("too few points: %d", len(points))
	}
	// More pieces must survive at least as much insertion (within one
	// watermark size).
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		if a.WBits == b.WBits && b.Pieces > a.Pieces &&
			b.SurvivableBranchPct < a.SurvivableBranchPct {
			t.Errorf("survivability regressed with more pieces: %+v -> %+v", a, b)
		}
	}
	// The largest configuration must survive something.
	last := points[len(points)-1]
	if last.SurvivableBranchPct <= 0 {
		t.Errorf("no branch insertion survived at %d pieces", last.Pieces)
	}
}

func TestFigure8dShape(t *testing.T) {
	points, _ := Figure8d(quick)
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		if a.Workload == b.Workload && b.BranchIncrease > a.BranchIncrease && b.Slowdown < a.Slowdown {
			t.Errorf("attack slowdown not monotone: %+v -> %+v", a, b)
		}
	}
	// Inserting branches costs something.
	anyCost := false
	for _, p := range points {
		if p.BranchIncrease > 0 && p.Slowdown > 0 {
			anyCost = true
		}
	}
	if !anyCost {
		t.Error("branch insertion attack reported as free")
	}
}

func TestJavaAttacksTableMatchesPaper(t *testing.T) {
	rows, _ := JavaAttacksTable(quick)
	if len(rows) < 20 {
		t.Fatalf("only %d attacks evaluated", len(rows))
	}
	for _, r := range rows {
		if r.ExpectedToDestroy == r.Survived {
			t.Errorf("%s: survived=%v but paper expects destroys=%v", r.Attack, r.Survived, r.ExpectedToDestroy)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	points, sizeTable, timeTable := Figure9(quick)
	if len(points) != 10 {
		t.Fatalf("%d points, want 10 (quick = one wbits per kernel)", len(points))
	}
	for _, p := range points {
		if p.SizeIncrease <= 0 || p.SizeIncrease > 1.0 {
			t.Errorf("%s: size increase %.3f outside modest band", p.Program, p.SizeIncrease)
		}
		if p.Slowdown < -0.05 || p.Slowdown > 0.40 {
			t.Errorf("%s: slowdown %.3f outside near-zero band", p.Program, p.Slowdown)
		}
	}
	if !strings.Contains(sizeTable.Render(), "bzip2") || !strings.Contains(timeTable.Render(), "vpr") {
		t.Error("figure 9 tables incomplete")
	}
}

func TestNativeAttacksTableMatchesPaper(t *testing.T) {
	rows, _ := NativeAttacksTable(quick)
	byName := map[string]NativeAttackRow{}
	for _, r := range rows {
		byName[r.Attack] = r
	}
	for _, name := range []string{"no-op insertion", "branch sense inversion",
		"double watermarking", "bypass branch function"} {
		r := byName[name]
		if r.Broken != r.Total || r.Total == 0 {
			t.Errorf("%s: %d/%d broken, want all", name, r.Broken, r.Total)
		}
	}
	rr := byName["reroute entries"]
	if rr.Broken != 0 {
		t.Errorf("reroute: %d/%d broken, want none", rr.Broken, rr.Total)
	}
	if !strings.Contains(rr.Extra, "smart tracer recovered") {
		t.Errorf("reroute extra missing tracer outcomes: %q", rr.Extra)
	}
}

// TestJobsDeterminism is the concurrency engine's core guarantee: every
// table renders byte-for-byte identically at any job count, because sweep
// points seed their RNGs from their own index rather than a shared
// rand.Rand.
// TestFleetIdentification checks the §1 fingerprinting experiment: every
// leaked copy identifies as its own customer, the clean control stays
// clean, suspects are traced once per input (not once per key), and a
// warm corpus re-grade needs zero new decrypts.
func TestFleetIdentification(t *testing.T) {
	points, table := FleetIdentification(quick)
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		if p.Identified != p.FleetSize {
			t.Errorf("fleet %d: only %d/%d copies identified", p.FleetSize, p.Identified, p.FleetSize)
		}
		if !p.CleanOK {
			t.Errorf("fleet %d: clean control matched a customer or a decoy key matched", p.FleetSize)
		}
		if p.TracesRun >= p.Pairs {
			t.Errorf("fleet %d: %d traces for %d pairs — no amortization", p.FleetSize, p.TracesRun, p.Pairs)
		}
		if p.WarmDecrypts != 0 {
			t.Errorf("fleet %d: warm re-grade decrypted %d windows, want 0", p.FleetSize, p.WarmDecrypts)
		}
		if p.ColdDecrypts == 0 {
			t.Errorf("fleet %d: cold pass decrypted nothing", p.FleetSize)
		}
	}
	if !strings.Contains(table.Render(), "Fleet identification") {
		t.Error("table render broken")
	}
}

func TestJobsDeterminism(t *testing.T) {
	serial := Config{Quick: true, Seed: 42, Jobs: 1}
	pooled := Config{Quick: true, Seed: 42, Jobs: 4}
	render := func(cfg Config) []string {
		_, t5 := Figure5(cfg)
		_, t8b := Figure8b(cfg)
		_, t8d := Figure8d(cfg)
		return []string{t5.Render(), t8b.Render(), t8d.Render()}
	}
	a, b := render(serial), render(pooled)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("table %d differs between jobs=1 and jobs=4:\n--- serial ---\n%s\n--- pooled ---\n%s", i, a[i], b[i])
		}
	}
}

func TestPointSeedStableAndDistinct(t *testing.T) {
	if pointSeed(42, "fig5", 3) != pointSeed(42, "fig5", 3) {
		t.Error("pointSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, table := range []string{"fig5", "fig8a", "fig8b"} {
		for i := 0; i < 50; i++ {
			s := pointSeed(42, table, i)
			if s < 0 {
				t.Fatalf("pointSeed(%s,%d) = %d, want non-negative", table, i, s)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s/%d vs %s", table, i, prev)
			}
			seen[s] = fmt.Sprintf("%s/%d", table, i)
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"xxxxx", "y"}},
		Notes:   []string{"n"},
	}
	out := tbl.Render()
	if !strings.Contains(out, "== T ==") || !strings.Contains(out, "note: n") {
		t.Errorf("render output malformed:\n%s", out)
	}
}

func TestAblations(t *testing.T) {
	table := Ablations(quick)
	out := table.Render()
	checks := []string{
		"first-successor (paper)", "bit-string invariant under inversion",
		"naive taken/not-taken", "bit-string changes",
		"tamper-proofing on (§4.3)", "bypass breaks the program",
		"tamper-proofing off", "bypass succeeds",
		"redundant",
	}
	for _, c := range checks {
		if !strings.Contains(out, c) {
			t.Errorf("ablation table missing %q:\n%s", c, out)
		}
	}
	// Redundant pieces must survive at least as often as minimal.
	var minimalRow, redundantRow string
	for _, row := range table.Rows {
		if row[0] == "error correction" {
			if strings.Contains(row[1], "minimal") {
				minimalRow = row[2]
			} else {
				redundantRow = row[2]
			}
		}
	}
	if minimalRow == "" || redundantRow == "" {
		t.Fatal("error-correction rows missing")
	}
	if !strings.Contains(redundantRow, "3/3") {
		t.Errorf("redundant embedding did not reliably survive: %s", redundantRow)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		cfg := Config{Seed: 1, Jobs: jobs, Ctx: ctx}
		var ran atomic.Int64
		cfg.forEach("cancelled", 1000, func(i int) { ran.Add(1) })
		if n := ran.Load(); n != 0 {
			t.Errorf("jobs=%d: pre-cancelled sweep ran %d points, want 0", jobs, n)
		}
	}

	// Mid-sweep cancellation stops between points: with a serial pool the
	// point that cancels is the last one to run.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cfg := Config{Seed: 1, Jobs: 1, Ctx: ctx2}
	var ran atomic.Int64
	cfg.forEach("midcancel", 1000, func(i int) {
		if ran.Add(1) == 3 {
			cancel2()
		}
	})
	if n := ran.Load(); n != 3 {
		t.Errorf("serial sweep ran %d points after cancellation at the 3rd, want 3", n)
	}
}

func TestCollusionThreshold(t *testing.T) {
	points, table := CollusionThreshold(quick)
	if len(points) != 4 {
		t.Fatalf("want 4 grid points, got %d", len(points))
	}
	byMode := func(harden bool, mode attacks.CollusionMode) *CollusionPoint {
		for i := range points {
			if points[i].Harden == harden && points[i].Mode == mode {
				return &points[i]
			}
		}
		t.Fatalf("missing point harden=%v mode=%v", harden, mode)
		return nil
	}
	// The hardening claim: the strip coalition defeats the baseline fleet
	// at some k, and the hardened fleet's threshold is strictly higher
	// (here: never defeated up to the fleet size).
	baseStrip := byMode(false, attacks.CollusionStrip)
	hardStrip := byMode(true, attacks.CollusionStrip)
	if baseStrip.Threshold == 0 {
		t.Error("strip never defeated the baseline fleet; nothing to harden against")
	}
	if hardStrip.Threshold != 0 && hardStrip.Threshold <= baseStrip.Threshold {
		t.Errorf("hardening did not raise the strip threshold: baseline %d, hardened %d",
			baseStrip.Threshold, hardStrip.Threshold)
	}
	if !strings.Contains(table.Render(), "Colluder threshold") {
		t.Error("table render broken")
	}
}
