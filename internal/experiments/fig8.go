package experiments

import (
	"math/big"
	"math/rand"

	"pathmark/internal/attacks"
	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

func cipherKey() feistel.Key {
	return feistel.KeyFromUint64(0x70617468_6d61726b, 0x504c4449_32303034)
}

// namedProg pairs a workload with its display name; experiments iterate a
// slice (not a map) so row order is deterministic.
type namedProg struct {
	name string
	prog *vm.Program
}

// javaWorkloads returns the two §5.1 hosts: the hot CaffeineMark-like
// suite and the large cold Jess-like program. hotIters sizes Jess's hot
// kernel: timing experiments need a realistic dynamic baseline (real Jess
// runs billions of instructions, dwarfing per-piece emission cost), while
// resilience experiments only care about the static shape and use a small
// kernel to keep tracing fast.
func javaWorkloads(cfg Config, hotIters int) []namedProg {
	jessOpts := workloads.JessLikeOptions{Seed: cfg.Seed, HotIters: hotIters}
	if cfg.Quick {
		jessOpts.Methods = 40
		jessOpts.BlockSize = 120
	}
	return []namedProg{
		{"CaffeineMark", workloads.CaffeineMark()},
		{"Jess", workloads.JessLike(jessOpts)},
	}
}

// jessTimingHotIters gives the Jess-like host a dynamic baseline large
// enough that cold-piece emissions are negligible, as in the paper.
func jessTimingHotIters(cfg Config) int {
	if cfg.Quick {
		return 300_000
	}
	return 2_000_000
}

// pieceSweep returns the piece counts for a watermark key, skipping counts
// below the r-1 statements needed to cover the key's prime basis.
func pieceSweep(cfg Config, key *wm.Key) []int {
	sweep := []int{8, 32, 64, 128, 256, 384, 512}
	if cfg.Quick {
		sweep = []int{8, 32, 96}
	}
	minPieces := len(key.Params.Primes()) - 1
	var out []int
	for _, p := range sweep {
		if p >= minPieces {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		out = []int{minPieces}
	}
	return out
}

// Fig8aPoint is one measurement of Figure 8(a): runtime slowdown caused by
// inserting a number of watermark pieces.
type Fig8aPoint struct {
	Workload string
	WBits    int
	Pieces   int
	Slowdown float64 // (steps_marked - steps_orig) / steps_orig
}

// Figure8a reproduces Figure 8(a): slowdown vs. pieces inserted for the
// CaffeineMark-like and Jess-like workloads. The deterministic instruction
// count of the VM is the time metric. Baselines run once per workload;
// the (wbits, workload, pieces) sweep points are independent and run on
// the job pool.
func Figure8a(cfg Config) ([]Fig8aPoint, *Table) {
	table := &Table{
		Title:   "Figure 8(a): slowdown vs. number of pieces inserted",
		Columns: []string{"workload", "wbits", "pieces", "slowdown"},
		Notes: []string{
			"time metric = interpreted instruction count",
			"expected shape: CaffeineMark rises steeply once hot blocks are hit; Jess stays near zero",
		},
	}
	hosts := javaWorkloads(cfg, jessTimingHotIters(cfg))
	bases := make([]int64, len(hosts))
	cfg.forEach("fig8a", len(hosts), func(hi int) {
		res, err := vm.Run(hosts[hi].prog, vm.RunOptions{StepLimit: 2_000_000_000})
		if err != nil {
			panic(err)
		}
		bases[hi] = res.Steps
	})

	type job struct {
		host   int
		wbits  int
		key    *wm.Key
		w      *big.Int
		pieces int
	}
	var jobs []job
	for _, wbits := range []int{128, 256, 512} {
		if cfg.Quick && wbits != 128 {
			continue
		}
		key, err := wm.NewKey(nil, cipherKey(), wbits)
		if err != nil {
			panic(err)
		}
		w := wm.RandomWatermark(wbits, uint64(cfg.Seed)+uint64(wbits))
		for hi := range hosts {
			for _, pieces := range pieceSweep(cfg, key) {
				jobs = append(jobs, job{hi, wbits, key, w, pieces})
			}
		}
	}
	points := make([]Fig8aPoint, len(jobs))
	cfg.forEach("fig8a", len(jobs), func(ji int) {
		j := jobs[ji]
		marked, _, err := wm.Embed(hosts[j.host].prog, j.w, j.key, wm.EmbedOptions{
			Pieces: j.pieces, Seed: cfg.Seed + int64(j.pieces),
		})
		if err != nil {
			panic(err)
		}
		res, err := vm.Run(marked, vm.RunOptions{StepLimit: 2_000_000_000})
		if err != nil {
			panic(err)
		}
		points[ji] = Fig8aPoint{
			Workload: hosts[j.host].name, WBits: j.wbits, Pieces: j.pieces,
			Slowdown: float64(res.Steps-bases[j.host]) / float64(bases[j.host]),
		}
	})
	for _, p := range points {
		table.Rows = append(table.Rows, []string{p.Workload, itoa(p.WBits), itoa(p.Pieces), pct(p.Slowdown)})
	}
	return points, table
}

// Fig8bPoint is one measurement of Figure 8(b): program growth.
type Fig8bPoint struct {
	Workload      string
	Pieces        int
	SizeIncrease  float64
	InstrPerPiece float64
}

// Figure8b reproduces Figure 8(b): size increase vs. pieces inserted. The
// paper reports ~5% fixed cost plus ~25 bytes per piece; our unit is VM
// instructions and the rolled loop generator costs a comparable small
// constant per piece.
func Figure8b(cfg Config) ([]Fig8bPoint, *Table) {
	table := &Table{
		Title:   "Figure 8(b): size increase vs. number of pieces inserted",
		Columns: []string{"workload", "pieces", "size increase", "instrs/piece"},
		Notes:   []string{"expected shape: linear in pieces, independent of program size"},
	}
	key, err := wm.NewKey(nil, cipherKey(), 512)
	if err != nil {
		panic(err)
	}
	w := wm.RandomWatermark(512, uint64(cfg.Seed)+99)
	hosts := javaWorkloads(cfg, 0)
	sweep := pieceSweep(cfg, key)
	type job struct{ host, pieces int }
	var jobs []job
	for hi := range hosts {
		for _, pieces := range sweep {
			jobs = append(jobs, job{hi, pieces})
		}
	}
	points := make([]Fig8bPoint, len(jobs))
	cfg.forEach("fig8b", len(jobs), func(ji int) {
		j := jobs[ji]
		_, report, err := wm.Embed(hosts[j.host].prog, w, key, wm.EmbedOptions{
			Pieces: j.pieces, Seed: cfg.Seed + int64(j.pieces),
		})
		if err != nil {
			panic(err)
		}
		points[ji] = Fig8bPoint{
			Workload:      hosts[j.host].name,
			Pieces:        j.pieces,
			SizeIncrease:  report.SizeIncrease(),
			InstrPerPiece: float64(report.EmbeddedSize-report.OriginalSize) / float64(j.pieces),
		}
	})
	for _, p := range points {
		table.Rows = append(table.Rows, []string{p.Workload, itoa(p.Pieces), pct(p.SizeIncrease), f64(p.InstrPerPiece)})
	}
	return points, table
}

// Fig8cPoint is one measurement of Figure 8(c): the largest branch
// insertion the watermark survives.
type Fig8cPoint struct {
	WBits               int
	Pieces              int
	SurvivableBranchPct float64 // largest tested increase (fraction) survived
}

// Figure8c reproduces Figure 8(c): survivable random branch insertion vs.
// pieces inserted, per watermark size, on the Jess-like host. For each
// configuration the attack strength sweeps upward until recognition fails;
// the last surviving level is reported. Configurations are independent and
// run on the job pool; the attack stream at a given level is derived from
// (seed, level) so every configuration faces the same escalation.
func Figure8c(cfg Config) ([]Fig8cPoint, *Table) {
	table := &Table{
		Title:   "Figure 8(c): survivable branch insertion (%) vs. pieces inserted",
		Columns: []string{"wbits", "pieces", "survives up to"},
		Notes: []string{
			"attack: insert `if (x*(x-1)%2 != 0) x++` at random positions (Jess-like host)",
			"expected shape: survivable insertion grows with the number of pieces",
		},
	}
	jessOpts := workloads.JessLikeOptions{Seed: cfg.Seed}
	levels := []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0}
	sweeps := map[int][]int{
		128: {16, 48, 128, 256},
		256: {32, 96, 256},
		512: {64, 128, 512},
	}
	if cfg.Quick {
		jessOpts.Methods = 40
		jessOpts.BlockSize = 120
		levels = []float64{0.5, 1.5}
		sweeps = map[int][]int{128: {16, 96}}
	}
	prog := workloads.JessLike(jessOpts)
	type job struct {
		wbits  int
		key    *wm.Key
		w      *big.Int
		pieces int
	}
	var jobs []job
	for _, wbits := range []int{128, 256, 512} {
		pieceCounts, ok := sweeps[wbits]
		if !ok {
			continue
		}
		key, err := wm.NewKey(nil, cipherKey(), wbits)
		if err != nil {
			panic(err)
		}
		w := wm.RandomWatermark(wbits, uint64(cfg.Seed)+uint64(wbits)*3)
		for _, pieces := range pieceCounts {
			jobs = append(jobs, job{wbits, key, w, pieces})
		}
	}
	points := make([]Fig8cPoint, len(jobs))
	cfg.forEach("fig8c", len(jobs), func(ji int) {
		j := jobs[ji]
		marked, _, err := wm.Embed(prog, j.w, j.key, wm.EmbedOptions{
			Pieces: j.pieces, Seed: cfg.Seed + int64(j.pieces), Policy: wm.GenLoopOnly,
		})
		if err != nil {
			panic(err)
		}
		survived := 0.0
		for _, level := range levels {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(level*100)))
			attacked := attacks.InsertRandomBranches(marked, rng, level)
			rec, err := wm.Recognize(attacked, j.key)
			if err != nil {
				panic(err)
			}
			if rec.Matches(j.w) {
				survived = level
			} else {
				break
			}
		}
		points[ji] = Fig8cPoint{WBits: j.wbits, Pieces: j.pieces, SurvivableBranchPct: survived}
	})
	for _, p := range points {
		table.Rows = append(table.Rows, []string{itoa(p.WBits), itoa(p.Pieces), pct(p.SurvivableBranchPct)})
	}
	return points, table
}

// Fig8dPoint is one measurement of Figure 8(d): the runtime cost the
// attacker pays for branch insertion.
type Fig8dPoint struct {
	Workload       string
	BranchIncrease float64
	Slowdown       float64
}

// Figure8d reproduces Figure 8(d): slowdown caused by the branch insertion
// attack, as a function of the branch increase fraction.
func Figure8d(cfg Config) ([]Fig8dPoint, *Table) {
	table := &Table{
		Title:   "Figure 8(d): attack cost — slowdown vs. branch increase",
		Columns: []string{"workload", "branch increase", "slowdown"},
		Notes:   []string{"the paper's trade-off: destroying a large mark costs the attacker real slowdown"},
	}
	levels := []float64{0, 1, 2, 3, 4}
	if cfg.Quick {
		levels = []float64{0, 2}
	}
	hosts := javaWorkloads(cfg, 0)
	bases := make([]int64, len(hosts))
	cfg.forEach("fig8d", len(hosts), func(hi int) {
		res, err := vm.Run(hosts[hi].prog, vm.RunOptions{})
		if err != nil {
			panic(err)
		}
		bases[hi] = res.Steps
	})
	type job struct {
		host  int
		level float64
	}
	var jobs []job
	for hi := range hosts {
		for _, level := range levels {
			jobs = append(jobs, job{hi, level})
		}
	}
	points := make([]Fig8dPoint, len(jobs))
	cfg.forEach("fig8d", len(jobs), func(ji int) {
		j := jobs[ji]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(j.level)))
		attacked := attacks.InsertRandomBranches(hosts[j.host].prog, rng, j.level)
		res, err := vm.Run(attacked, vm.RunOptions{StepLimit: 2_000_000_000})
		if err != nil {
			panic(err)
		}
		points[ji] = Fig8dPoint{
			Workload:       hosts[j.host].name,
			BranchIncrease: j.level,
			Slowdown:       float64(res.Steps-bases[j.host]) / float64(bases[j.host]),
		}
	})
	for _, p := range points {
		table.Rows = append(table.Rows, []string{p.Workload, pct(p.BranchIncrease), pct(p.Slowdown)})
	}
	return points, table
}

// JavaAttackRow is one row of the §5.1.2 resilience evaluation.
type JavaAttackRow struct {
	Attack            string
	ExpectedToDestroy bool
	Survived          bool
}

// JavaAttacksTable reproduces the §5.1.2 finding: of the distortive attack
// catalog, only branch insertion and the class-encryption analog destroy
// the watermark. Attacks are independent (each gets a fresh RNG with the
// same derived seed, as before) and run on the job pool.
func JavaAttacksTable(cfg Config) ([]JavaAttackRow, *Table) {
	prog := workloads.CaffeineMark()
	wbits := 128
	key, err := wm.NewKey(nil, cipherKey(), wbits)
	if err != nil {
		panic(err)
	}
	w := wm.RandomWatermark(wbits, uint64(cfg.Seed)+5)
	marked, _, err := wm.Embed(prog, w, key, wm.EmbedOptions{Seed: cfg.Seed})
	if err != nil {
		panic(err)
	}
	table := &Table{
		Title:   "§5.1.2: Java-side attack resilience (watermarked CaffeineMark, 128-bit W)",
		Columns: []string{"attack", "destroys (paper)", "watermark survived"},
	}
	catalog := attacks.Catalog()
	rows := make([]JavaAttackRow, len(catalog))
	cfg.forEach("javaattacks", len(catalog), func(ai int) {
		a := catalog[ai]
		rng := rand.New(rand.NewSource(cfg.Seed + 31))
		attacked := a.Apply(marked, rng)
		rec, err := wm.Recognize(attacked, key)
		if err != nil {
			panic(err)
		}
		rows[ai] = JavaAttackRow{Attack: a.Name, ExpectedToDestroy: a.Destroys, Survived: rec.Matches(w)}
	})
	for _, row := range rows {
		table.Rows = append(table.Rows, []string{row.Attack, boolStr(row.ExpectedToDestroy), boolStr(row.Survived)})
	}
	return rows, table
}
