package experiments

import (
	"fmt"
	"math/big"
	"math/rand"

	"pathmark/internal/attacks"
	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

// CollusionPoint is one (fleet mode, collusion mode) cell of the colluder
// threshold experiment: the smallest coalition size k (victim included)
// that defeats identification of the victim copy, or 0 if no coalition up
// to the fleet size does.
type CollusionPoint struct {
	Harden    bool
	Mode      attacks.CollusionMode
	FleetSize int
	// Survived[i] reports whether the victim's watermark was still
	// recognized after a coalition of size i+2 attacked it.
	Survived  []bool
	Threshold int // smallest defeating k; 0 = never defeated
}

func collusionFleetSize(cfg Config) int {
	if cfg.Quick {
		return 4
	}
	return 6
}

// CollusionThreshold measures the §5.1.2 collusive attack the paper
// identifies as its open weakness — k customers diff their fingerprinted
// copies and strip or randomize every divergent site — against both a
// baseline fleet (per-copy placement) and a Harden'ed fleet (shared
// placement, coalition-safe generators). The reported threshold is the
// coalition size at which the victim can no longer be traced: the
// hardening claim is that this threshold strictly rises.
func CollusionThreshold(cfg Config) ([]CollusionPoint, *Table) {
	size := collusionFleetSize(cfg)
	grid := []struct {
		harden bool
		mode   attacks.CollusionMode
	}{
		{false, attacks.CollusionStrip},
		{true, attacks.CollusionStrip},
		{false, attacks.CollusionRandomize},
		{true, attacks.CollusionRandomize},
	}
	points := make([]CollusionPoint, len(grid))
	cfg.forEach("collusion", len(grid), func(gi int) {
		g := grid[gi]
		seed := pointSeed(cfg.Seed, "collusion", gi)
		host := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 12, BlockSize: 40})
		key, err := wm.NewKey(nil, feistel.KeyFromUint64(uint64(cfg.Seed)+2, 0x504c444932303034), 24)
		if err != nil {
			panic(err)
		}
		ws := make([]*big.Int, size)
		for i := range ws {
			ws[i] = wm.RandomWatermark(24, uint64(seed)+uint64(i))
		}
		copies, err := wm.EmbedBatch(host, ws, key, wm.BatchOptions{
			EmbedOptions: wm.EmbedOptions{
				Seed: seed, Pieces: len(key.Params.Primes()) - 1, Ctx: cfg.Ctx,
			},
			Harden: g.harden,
		})
		if err != nil {
			panic(fmt.Sprintf("collusion embed (harden=%v): %v", g.harden, err))
		}
		p := CollusionPoint{Harden: g.harden, Mode: g.mode, FleetSize: size}
		for k := 2; k <= size; k++ {
			coalition := make([]*vm.Program, k)
			for i := range coalition {
				coalition[i] = copies[i].Program
			}
			attacked, _, err := attacks.Collude(coalition, rand.New(rand.NewSource(seed+int64(k))), attacks.CollusionOptions{Mode: g.mode})
			if err != nil {
				panic(fmt.Sprintf("collusion k=%d: %v", k, err))
			}
			rec, err := wm.Recognize(attacked, key)
			if err != nil {
				panic(fmt.Sprintf("collusion recognize k=%d: %v", k, err))
			}
			survived := rec.Matches(ws[0])
			p.Survived = append(p.Survived, survived)
			if !survived && p.Threshold == 0 {
				p.Threshold = k
			}
		}
		points[gi] = p
	})

	t := &Table{
		Title:   "Colluder threshold: coalition size defeating identification (0 = never, up to fleet size)",
		Columns: []string{"fleet", "mode"},
		Notes: []string{
			"victim = copy 0; coalition of k diffs k fingerprinted copies and mutates every divergent site",
			"baseline shifts placement per copy; hardened shares placement so copies differ only in constants",
		},
	}
	for k := 2; k <= size; k++ {
		t.Columns = append(t.Columns, fmt.Sprintf("k=%d", k))
	}
	t.Columns = append(t.Columns, "threshold")
	for _, p := range points {
		fleet := "baseline"
		if p.Harden {
			fleet = "hardened"
		}
		row := []string{fleet, p.Mode.String()}
		for _, s := range p.Survived {
			if s {
				row = append(row, "survive")
			} else {
				row = append(row, "DEFEAT")
			}
		}
		th := "never"
		if p.Threshold > 0 {
			th = fmt.Sprintf("%d", p.Threshold)
		}
		row = append(row, th)
		t.Rows = append(t.Rows, row)
	}
	return points, t
}
