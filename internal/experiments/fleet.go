package experiments

import (
	"fmt"
	"math/big"

	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

// FleetPoint is one fleet-size measurement of the fingerprinting
// experiment (§1: a distinct watermark per shipped copy; a leaked copy is
// traced to its customer by the recovered W).
type FleetPoint struct {
	FleetSize  int
	Identified int // leaked copies traced to the right customer
	CleanOK    bool
	// TracesRun / Pairs quantifies the corpus-level trace amortization:
	// every suspect is traced once per secret input, not once per key.
	TracesRun, Pairs int
	// ColdDecrypts counts the distinct in-band windows the first corpus
	// pass had to decrypt; WarmDecrypts counts the cipher calls a full
	// re-scan of the same corpus needed with the caches kept warm (0: the
	// at-most-once guarantee makes re-grading free on the decrypt side).
	ColdDecrypts, WarmDecrypts int
}

func fleetSizes(cfg Config) []int {
	if cfg.Quick {
		return []int{4}
	}
	return []int{4, 8, 16}
}

// FleetIdentification runs the paper's §1 fingerprinting scenario at
// corpus scale: batch-embed a fleet of distinctly-watermarked copies of
// one host, then identify every copy (plus one unmarked control) against
// the real key and a decoy key with RecognizeCorpus. Reported per fleet
// size: identification accuracy, the trace amortization (traces actually
// run vs suspect×key pairs), and the decrypt-cache hit rate.
func FleetIdentification(cfg Config) ([]FleetPoint, *Table) {
	sizes := fleetSizes(cfg)
	points := make([]FleetPoint, len(sizes))
	cfg.forEach("fleet", len(sizes), func(si int) {
		n := sizes[si]
		seed := pointSeed(cfg.Seed, "fleet", si)
		host := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 30, BlockSize: 100})
		key, err := wm.NewKey(nil, feistel.KeyFromUint64(uint64(cfg.Seed)+1, 0x504c444932303034), 64)
		if err != nil {
			panic(err)
		}
		ws := make([]*big.Int, n)
		for i := range ws {
			ws[i] = wm.RandomWatermark(64, uint64(seed)+uint64(i))
		}
		copies, err := wm.EmbedBatch(host, ws, key, wm.BatchOptions{
			EmbedOptions: wm.EmbedOptions{
				Seed: seed, Pieces: len(key.Params.Primes()) - 1, Ctx: cfg.Ctx,
			},
		})
		if err != nil {
			panic(fmt.Sprintf("fleet %d: %v", n, err))
		}

		// Every customer's copy leaks, plus one unmarked control; matched
		// against the real fleet key and one decoy.
		suspects := make([]*vm.Program, 0, n+1)
		for _, c := range copies {
			suspects = append(suspects, c.Program)
		}
		suspects = append(suspects, host)
		decoy, err := wm.NewKey(nil, feistel.KeyFromUint64(uint64(seed)|1, 3), 64)
		if err != nil {
			panic(err)
		}
		keys := []*wm.Key{key, decoy}
		caches := wm.NewFleetCaches(0, 0)
		res, err := wm.RecognizeCorpus(suspects, keys, wm.CorpusOpts{
			Caches: caches, Ctx: cfg.Ctx, Obs: cfg.Obs,
		})
		if err != nil {
			panic(fmt.Sprintf("fleet %d corpus: %v", n, err))
		}
		// Re-grade the whole corpus with the caches warm — the "a new
		// customer was added, re-check every suspect" operation.
		warm, err := wm.RecognizeCorpus(suspects, keys, wm.CorpusOpts{
			Caches: caches, Ctx: cfg.Ctx, Obs: cfg.Obs,
		})
		if err != nil {
			panic(fmt.Sprintf("fleet %d warm corpus: %v", n, err))
		}

		// A suspect identifies as customer i when its recognition under the
		// real key recovers exactly ws[i]; the decoy key must never match.
		customer := func(s int) int {
			for i, w := range ws {
				if res.Recognitions[s][0].Matches(w) {
					return i
				}
			}
			return -1
		}
		p := FleetPoint{FleetSize: n, Pairs: len(suspects) * len(keys)}
		for i := range copies {
			if customer(i) == i {
				p.Identified++
			}
		}
		p.CleanOK = customer(n) == -1
		for s := range suspects {
			for _, w := range ws {
				if res.Recognitions[s][1].Matches(w) {
					p.CleanOK = false
				}
			}
		}
		p.TracesRun = int(res.TraceStats.Misses)
		p.ColdDecrypts = int(res.DecryptStats.Misses)
		p.WarmDecrypts = int(warm.DecryptStats.Misses)
		points[si] = p
	})

	table := &Table{
		Title: "Fleet identification: batch fingerprinting + corpus recognition (§1 scenario)",
		Columns: []string{"fleet size", "identified", "clean control",
			"traces run / pairs", "cold decrypts", "warm re-grade decrypts"},
		Notes: []string{
			"each customer's leaked copy must be traced to exactly its own watermark",
			"suspects are traced once per distinct (program, input), not once per key",
			"warm re-grade = full corpus re-scan with kept caches; the at-most-once",
			"decrypt guarantee makes it cipher-free (0 new decrypts)",
		},
	}
	for _, p := range points {
		table.Rows = append(table.Rows, []string{
			itoa(p.FleetSize),
			fmt.Sprintf("%d/%d", p.Identified, p.FleetSize),
			boolStr(p.CleanOK),
			fmt.Sprintf("%d/%d", p.TracesRun, p.Pairs),
			itoa(p.ColdDecrypts),
			itoa(p.WarmDecrypts),
		})
	}
	return points, table
}
