package experiments

import (
	"fmt"
	"math/rand"

	"pathmark/internal/attacks"
	"pathmark/internal/nativeattacks"
	"pathmark/internal/nativewm"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

// Ablations isolates the paper's three central design choices and shows
// each is load-bearing:
//
//  1. §3.1's first-successor decode rule vs. the naive taken/not-taken
//     rule, under branch-sense inversion;
//  2. §4.3 tamper-proofing on vs. off, under the bypass attack;
//  3. the recognizer's error correction (piece redundancy), by comparing
//     minimal vs. redundant embeddings under branch insertion.
func Ablations(cfg Config) *Table {
	table := &Table{
		Title:   "Ablations: each defense mechanism isolated",
		Columns: []string{"mechanism", "variant", "outcome"},
	}

	// 1. Decode rule under branch-sense inversion.
	prog := workloads.CaffeineMark()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var inverted *vm.Program
	for _, a := range attacks.Catalog() {
		if a.Name == "branch-sense-inversion" {
			inverted = a.Apply(prog, rng)
		}
	}
	t1, _, err := vm.Collect(prog, nil, 1)
	if err != nil {
		panic(err)
	}
	t2, _, err := vm.Collect(inverted, nil, 1)
	if err != nil {
		panic(err)
	}
	paperStable := t1.DecodeBits().String() == t2.DecodeBits().String()
	naiveStable := t1.DecodeBitsBranchSense().String() == t2.DecodeBitsBranchSense().String()
	table.Rows = append(table.Rows,
		[]string{"decode rule (§3.1)", "first-successor (paper)", stability(paperStable)},
		[]string{"decode rule (§3.1)", "naive taken/not-taken", stability(naiveStable)})

	// 2. Tamper-proofing under bypass.
	k := paddedKernels(cfg)[0]
	for _, tamper := range []bool{true, false} {
		w := wm.RandomWatermark(32, uint64(cfg.Seed))
		marked, _, err := nativewm.Embed(k.Unit, w, 32, nativewm.EmbedOptions{
			Seed: cfg.Seed, TamperProof: tamper, TrainInput: k.TrainInput, LabelPrefix: "ab_",
		})
		if err != nil {
			panic(err)
		}
		img := mustAssemble(marked)
		events, err := nativewm.TraceMisReturns(img, k.TrainInput, 0)
		if err != nil {
			panic(err)
		}
		bypassed, err := nativeattacks.Bypass(img, events)
		if err != nil {
			panic(err)
		}
		verdict := nativeattacks.Judge(img, bypassed, k.RefInput, 0)
		outcome := "bypass succeeds (mark removed cleanly)"
		if verdict == nativeattacks.Broken {
			outcome = "bypass breaks the program"
		}
		variant := "tamper-proofing off"
		if tamper {
			variant = "tamper-proofing on (§4.3)"
		}
		table.Rows = append(table.Rows, []string{"branch function", variant, outcome})
	}

	// 3. Redundancy under branch insertion.
	jessOpts := workloads.JessLikeOptions{Seed: cfg.Seed}
	if cfg.Quick {
		jessOpts.Methods = 40
		jessOpts.BlockSize = 120
	}
	host := workloads.JessLike(jessOpts)
	key, err := wm.NewKey(nil, cipherKey(), 128)
	if err != nil {
		panic(err)
	}
	w := wm.RandomWatermark(128, uint64(cfg.Seed)+17)
	minimal := len(key.Params.Primes()) - 1
	for _, pieces := range []int{minimal, minimal * 8} {
		marked, _, err := wm.Embed(host, w, key, wm.EmbedOptions{
			Pieces: pieces, Seed: cfg.Seed, Policy: wm.GenLoopOnly,
		})
		if err != nil {
			panic(err)
		}
		survived := 0
		const trials = 3
		for trial := 0; trial < trials; trial++ {
			arng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
			attacked := attacks.InsertRandomBranches(marked, arng, 1.0)
			rec, err := wm.Recognize(attacked, key)
			if err != nil {
				panic(err)
			}
			if rec.Matches(w) {
				survived++
			}
		}
		variant := fmt.Sprintf("%d pieces (minimal coverage)", pieces)
		if pieces > minimal {
			variant = fmt.Sprintf("%d pieces (redundant)", pieces)
		}
		table.Rows = append(table.Rows, []string{"error correction",
			variant, fmt.Sprintf("survives +100%% branches in %d/%d trials", survived, trials)})
	}

	// 4. Collusion (§5.1.2): diffing two fingerprinted copies localizes
	// the mark unless each copy was independently pre-obfuscated.
	colHost := workloads.JessLike(workloads.JessLikeOptions{Seed: cfg.Seed + 5, Methods: 30, BlockSize: 100})
	embedCopy := func(host *vm.Program, fpSeed uint64, embedSeed int64) *vm.Program {
		fp := wm.RandomWatermark(64, fpSeed)
		ck, err := wm.NewKey(nil, cipherKey(), 64)
		if err != nil {
			panic(err)
		}
		marked, _, err := wm.Embed(host, fp, ck, wm.EmbedOptions{
			Seed: embedSeed, Pieces: 8, Policy: wm.GenLoopOnly,
		})
		if err != nil {
			panic(err)
		}
		return marked
	}
	plain := attacks.CollusionSuspects(
		embedCopy(colHost, 1, cfg.Seed+100),
		embedCopy(colHost, 2, cfg.Seed+200))
	obf := attacks.CollusionSuspects(
		embedCopy(attacks.PreObfuscate(colHost, cfg.Seed+11, 4), 1, cfg.Seed+100),
		embedCopy(attacks.PreObfuscate(colHost, cfg.Seed+22, 4), 2, cfg.Seed+200))
	table.Rows = append(table.Rows,
		[]string{"collusion (§5.1.2)", "plain fingerprinted copies",
			fmt.Sprintf("diff flags %.0f%% of code (mark localized)", plain*100)},
		[]string{"collusion (§5.1.2)", "pre-obfuscated per copy",
			fmt.Sprintf("diff flags %.0f%% of code (mark hidden)", obf*100)})
	return table
}

func stability(stable bool) string {
	if stable {
		return "bit-string invariant under inversion"
	}
	return "bit-string changes (mark destroyed)"
}
