package nativewm

import (
	"context"
	"errors"
	"math/big"
	"testing"
	"time"

	"pathmark/internal/isa"
)

// cancelledCtx is pre-cancelled so tests exercise the prompt-return path
// without racing a timer.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestEmbedContextCancellation(t *testing.T) {
	u := buildHost()
	_, _, err := Embed(u, big.NewInt(0xBEEF), 16, EmbedOptions{
		Seed: 41, TrainInput: trainInput, LabelPrefix: "wc_", Ctx: cancelledCtx(),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestExtractContextCancellation(t *testing.T) {
	u := buildHost()
	w := big.NewInt(0xBEEF)
	marked, report, err := Embed(u, w, 16, defaultOpts(42))
	if err != nil {
		t.Fatal(err)
	}
	img, err := isa.Assemble(marked)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = ExtractContext(cancelledCtx(), img, trainInput, report.Mark, SmartTracer, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("extract: want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled extraction took %v", elapsed)
	}

	_, err = ExtractFramedContext(cancelledCtx(), img, trainInput, SmartTracer, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("framed extract: want context.Canceled, got %v", err)
	}

	// A nil context must not change behavior: the delegating wrappers
	// still extract the watermark.
	ext, err := Extract(img, trainInput, report.Mark, SmartTracer, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ext.Watermark.Cmp(w) != 0 {
		t.Fatalf("extracted %v, want %v", ext.Watermark, w)
	}
}
