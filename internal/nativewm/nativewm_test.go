package nativewm

import (
	"math/big"
	"testing"

	"pathmark/internal/isa"
)

// buildHost returns a small input-driven kernel with an executed cold
// unconditional jmp (the begin→end edge) and further cold jmps that can be
// tamper-proofed.
func buildHost() *isa.Unit {
	b := isa.NewBuilder()
	b.Jmp("start") // begin→end edge: executed exactly once
	b.Label("start").In(isa.EAX)
	b.MovImm(isa.EBX, 0)
	b.Label("loop").CmpImm(isa.EAX, 0)
	b.Je("endloop")
	b.Add(isa.EBX, isa.EAX)
	b.SubImm(isa.EAX, 1)
	b.Jmp("loop")
	b.Label("endloop").CmpImm(isa.EBX, 100)
	b.Jg("big")
	b.Out(isa.EBX)
	b.Jmp("done") // cold candidate
	b.Label("big").MovReg(isa.ECX, isa.EBX)
	b.ShrImm(isa.ECX, 1)
	b.Out(isa.ECX)
	b.Jmp("done") // cold candidate
	b.Label("done").MovImm(isa.EDX, 7)
	b.Out(isa.EDX)
	b.Hlt()
	return b.Unit()
}

var trainInput = []int64{5}
var evalInputs = [][]int64{{5}, {3}, {20}, {0}, {40}}

func defaultOpts(seed int64) EmbedOptions {
	return EmbedOptions{Seed: seed, TamperProof: true, TrainInput: trainInput, LabelPrefix: "w1_"}
}

func TestEmbedExtractRoundTrip(t *testing.T) {
	for _, bits := range []int{8, 32, 128} {
		w := big.NewInt(0)
		w.SetString("2718281828459045235360287471352662497757", 10)
		w.Mod(w, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		u := buildHost()
		marked, report, err := Embed(u, w, bits, defaultOpts(1))
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if len(report.Sites) != bits+1 {
			t.Fatalf("bits=%d: %d sites, want %d", bits, len(report.Sites), bits+1)
		}
		img, err := isa.Assemble(marked)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []TracerKind{SimpleTracer, SmartTracer} {
			ext, err := Extract(img, trainInput, report.Mark, kind, 0)
			if err != nil {
				t.Fatalf("bits=%d %v: %v", bits, kind, err)
			}
			if ext.Watermark.Cmp(w) != 0 {
				t.Errorf("bits=%d %v tracer: extracted %v, want %v", bits, kind, ext.Watermark, w)
			}
		}
	}
}

func TestEmbedPreservesSemantics(t *testing.T) {
	u := buildHost()
	w := big.NewInt(0xDEADBEEF)
	marked, _, err := Embed(u, w, 32, defaultOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range evalInputs {
		ref, err := isa.Execute(u, input, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := isa.Execute(marked, input, 0)
		if err != nil {
			t.Fatalf("input %v: watermarked run: %v", input, err)
		}
		if !isa.SameOutput(ref, got) {
			t.Errorf("input %v: output %v, want %v", input, got.Output, ref.Output)
		}
	}
}

func TestSiteOrderEncodesBits(t *testing.T) {
	u := buildHost()
	w := big.NewInt(0b10110010)
	_, report, err := Embed(u, w, 8, defaultOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		wantForward := w.Bit(i) == 1
		if (report.Sites[i+1] > report.Sites[i]) != wantForward {
			t.Errorf("bit %d: sites %#x -> %#x, want forward=%v",
				i, report.Sites[i], report.Sites[i+1], wantForward)
		}
	}
}

func TestHelperChainDepths(t *testing.T) {
	for depth := 0; depth <= 4; depth++ {
		u := buildHost()
		w := big.NewInt(0x5A5A)
		opts := defaultOpts(4)
		opts.HelperDepth = depth
		if err := VerifyRoundTrip(u, w, 16, trainInput, opts); err != nil {
			t.Errorf("helper depth %d: %v", depth, err)
		}
	}
}

func TestTamperProofingActive(t *testing.T) {
	u := buildHost()
	w := big.NewInt(0x1234)
	_, report, err := Embed(u, w, 16, defaultOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if report.TamperCount == 0 {
		t.Error("no tamper-proofing slots assigned despite candidates")
	}
}

func TestEmbedRejectsBadInput(t *testing.T) {
	u := buildHost()
	if _, _, err := Embed(u, big.NewInt(1), 0, defaultOpts(6)); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, _, err := Embed(u, big.NewInt(256), 8, defaultOpts(7)); err == nil {
		t.Error("oversize watermark accepted")
	}
	// A program with no executed unconditional jmp cannot host the mark.
	b := isa.NewBuilder()
	b.MovImm(isa.EAX, 1).Out(isa.EAX).Hlt()
	if _, _, err := Embed(b.Unit(), big.NewInt(1), 4, defaultOpts(8)); err == nil {
		t.Error("jmp-less program accepted")
	}
}

func TestDuplicatePrefixRejected(t *testing.T) {
	u := buildHost()
	marked, _, err := Embed(u, big.NewInt(5), 8, defaultOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	opts := defaultOpts(10)
	if _, _, err := Embed(marked, big.NewInt(6), 8, opts); err == nil {
		t.Error("same label prefix accepted twice")
	}
}

func TestSizeAccounting(t *testing.T) {
	u := buildHost()
	_, report, err := Embed(u, big.NewInt(0x77), 8, defaultOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	if report.EmbeddedBytes <= report.OriginalBytes {
		t.Error("embedding did not grow the binary")
	}
	if report.SizeIncrease() <= 0 {
		t.Error("SizeIncrease not positive")
	}
}

func TestBitsHelpers(t *testing.T) {
	w := big.NewInt(0b1011)
	bits := WatermarkBits(w, 6)
	want := []bool{true, true, false, true, false, false}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("WatermarkBits = %v, want %v", bits, want)
		}
	}
	if BitsToInt(bits).Cmp(w) != 0 {
		t.Error("BitsToInt does not invert WatermarkBits")
	}
}

func TestExtractWrongMarkFails(t *testing.T) {
	u := buildHost()
	w := big.NewInt(0xABCD)
	marked, report, err := Embed(u, w, 16, defaultOpts(12))
	if err != nil {
		t.Fatal(err)
	}
	img, err := isa.Assemble(marked)
	if err != nil {
		t.Fatal(err)
	}
	// A begin address that never executes yields no chain events.
	bad := report.Mark
	bad.Begin = report.Mark.Begin + 1
	if _, err := Extract(img, trainInput, bad, SmartTracer, 2_000_000); err == nil {
		t.Error("extraction with a wrong begin address succeeded")
	}
}
