// Package nativewm implements the paper's §4.2: embedding a watermark into
// a native binary as a chain of branch-function call sites whose address
// ordering encodes the bits (forward jump = 1, backward jump = 0), plus
// extraction by dynamic tracing (§4.2.3) with both the naive call-site
// tracer and the hash-input-tracking tracer of §5.2.2(5).
package nativewm

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"pathmark/internal/branchfn"
	"pathmark/internal/isa"
	"pathmark/internal/obs"
	"pathmark/internal/perfecthash"
)

// Mark is the information the extractor needs (supplied "manually" in the
// paper): the addresses bracketing the watermark chain and the bit count.
type Mark struct {
	Begin uint32
	End   uint32
	Bits  int
}

// EmbedOptions tunes native embedding.
type EmbedOptions struct {
	// Seed drives site placement, helper frames and M initialization.
	Seed int64
	// HelperDepth is the branch-function helper-chain length (§4.1).
	HelperDepth int
	// LabelPrefix namespaces the labels of this embedding; it must be
	// unique within the unit (double watermarking adds a second set).
	LabelPrefix string
	// TamperProof enables §4.3 (on by default via NewEmbedOptions; the
	// zero value disables it so tests can isolate the base scheme).
	TamperProof bool
	// TrainInput is the profiling input (the paper's SPEC training runs).
	TrainInput []int64
	// StepLimit bounds the profiling run.
	StepLimit int64
	// Ctx, when non-nil, cancels the embedding: it is checked at every
	// stage boundary (after profiling, before assembly, before
	// finalization), so a deadline cuts the pipeline off between stages.
	Ctx context.Context
	// Obs, when non-nil, receives per-stage spans (nativewm.profile/
	// sites/assemble/finalize) and counters. nil costs a pointer check.
	Obs *obs.Registry
}

// EmbedReport summarizes a native embedding.
type EmbedReport struct {
	Mark        Mark
	Sites       []uint32 // call-site addresses a_0..a_k in chain order
	TamperCount int
	// Size accounting for Figure 9(a): text+data bytes before and after.
	OriginalBytes int
	EmbeddedBytes int
}

// SizeIncrease returns the fractional growth of text+data.
func (r *EmbedReport) SizeIncrease() float64 {
	if r.OriginalBytes == 0 {
		return 0
	}
	return float64(r.EmbeddedBytes-r.OriginalBytes) / float64(r.OriginalBytes)
}

// WatermarkBits extracts the k low bits of w, least significant first.
func WatermarkBits(w *big.Int, k int) []bool {
	bits := make([]bool, k)
	for i := 0; i < k; i++ {
		bits[i] = w.Bit(i) == 1
	}
	return bits
}

// BitsToInt inverts WatermarkBits.
func BitsToInt(bits []bool) *big.Int {
	w := new(big.Int)
	for i, b := range bits {
		if b {
			w.SetBit(w, i, 1)
		}
	}
	return w
}

// site is a placed call site with its total-order key (gap, sub): gap is
// the instruction-list insertion index, sub orders sites within one gap.
// List order equals address order after assembly, which is what the
// forward/backward bit encoding needs.
type siteKey struct {
	gap int
	sub float64
}

func (a siteKey) less(b siteKey) bool {
	if a.gap != b.gap {
		return a.gap < b.gap
	}
	return a.sub < b.sub
}

// Embed inserts the k = bits low-order bits of w into a copy of the unit.
// It returns the watermarked unit and a report whose Mark field is the
// extraction key. The unit must contain at least one unconditional jmp
// that executes under TrainInput (the begin→end edge of §4.2.2).
func Embed(u *isa.Unit, w *big.Int, bits int, opts EmbedOptions) (*isa.Unit, *EmbedReport, error) {
	if bits <= 0 {
		return nil, nil, errors.New("nativewm: bits must be positive")
	}
	if w.BitLen() > bits {
		return nil, nil, fmt.Errorf("nativewm: watermark needs %d bits, budget is %d", w.BitLen(), bits)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	out := u.Clone()
	origBytes := int(u.TextSize()) + len(u.Data)
	total := opts.Obs.Start("nativewm.embed")
	defer total.Finish()
	opts.Obs.Counter("nativewm.embed.calls").Add(1)

	span := opts.Obs.Start("nativewm.profile")
	profile, err := isa.CollectProfile(out, opts.TrainInput, opts.StepLimit)
	if err != nil {
		span.Finish()
		return nil, nil, fmt.Errorf("nativewm: profiling: %w", err)
	}
	cfg := isa.BuildCFG(out)
	span.Set("text_instrs", int64(len(out.Instrs))).Finish()
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, nil, fmt.Errorf("nativewm: embedding cancelled after profiling: %w", err)
	}

	span = opts.Obs.Start("nativewm.sites")

	// Choose begin: the coldest executed unconditional jmp.
	beginIdx := -1
	var beginCount int64
	for i, in := range out.Instrs {
		if in.Op != isa.OJmp || in.Target == "" {
			continue
		}
		if c := profile[i]; c >= 1 && (beginIdx < 0 || c < beginCount) {
			beginIdx, beginCount = i, c
		}
	}
	if beginIdx < 0 {
		span.Finish()
		return nil, nil, errors.New("nativewm: no executed unconditional jmp to serve as the begin→end edge")
	}
	endLabel := out.Instrs[beginIdx].Target
	beginBlock := cfg.BlockOf(beginIdx)

	// Tamper-proofing candidates (§4.3): cold unconditional jmps dominated
	// by begin's block and not inside a loop.
	type tamperCand struct {
		idx         int
		targetLabel string
		mOff        int // data offset of the M cell
	}
	var tampers []tamperCand
	if opts.TamperProof {
		dom := cfg.Dominators()
		reach := cfg.Reachable()
		inLoop := cfg.InLoop()
		type scored struct {
			idx   int
			count int64
		}
		var cands []scored
		for i, in := range out.Instrs {
			if i == beginIdx || in.Op != isa.OJmp || in.Target == "" {
				continue
			}
			b := cfg.BlockOf(i)
			if !reach[b] || inLoop[b] || !dom[b][beginBlock] {
				continue
			}
			cands = append(cands, scored{idx: i, count: profile[i]})
		}
		// Prefer executed-but-cold candidates so tamper-proofing is live.
		sort.Slice(cands, func(a, b int) bool {
			ca, cb := cands[a].count, cands[b].count
			if (ca >= 1) != (cb >= 1) {
				return ca >= 1
			}
			if ca != cb {
				return ca < cb
			}
			return cands[a].idx < cands[b].idx
		})
		if len(cands) > bits+1 {
			cands = cands[:bits+1]
		}
		for _, c := range cands {
			mOff := len(out.Data)
			out.Data = append(out.Data, make([]byte, 4)...)
			tampers = append(tampers, tamperCand{idx: c.idx, targetLabel: out.Instrs[c.idx].Target, mOff: mOff})
			// Rewrite jmp -> jmpind through M; the absolute data address
			// is patched once the text is frozen (marker = offset).
			out.Instrs[c.idx] = isa.Ins{
				Op:    isa.OJmpInd,
				Imm:   jmpIndMarker + int64(mOff),
				Label: out.Instrs[c.idx].Label,
			}
		}
	}

	// The branch-function entry label is deterministic; sites can target
	// it before the function is reserved (reservation must come after the
	// island insertions so its data-patch indices stay valid).
	bfEntry := opts.LabelPrefix + "bf_entry"
	if out.FindLabel(bfEntry) >= 0 {
		span.Finish()
		return nil, nil, fmt.Errorf("nativewm: label prefix %q already used in this unit", opts.LabelPrefix)
	}

	// Place a_0 at begin: the jmp end becomes call bf.
	wBits := WatermarkBits(w, bits)
	siteLabel := func(i int) string { return fmt.Sprintf("%swm_a%d", opts.LabelPrefix, i) }
	a0Label := out.Instrs[beginIdx].Label
	if a0Label == "" {
		a0Label = siteLabel(0)
	}
	out.Instrs[beginIdx] = isa.Ins{Op: isa.OCall, Target: bfEntry, Label: a0Label}
	siteLabels := []string{a0Label}

	// Choose the total-order keys of a_1..a_k per the bits. a_0 sits at
	// (beginIdx, 1.5): islands in gap beginIdx precede the instruction at
	// beginIdx, so only sub < 1 island keys are generated and the
	// constants never collide.
	//
	// Islands cost one executed jmp whenever control falls through their
	// gap, so placement is restricted to zero-cost gaps — after an
	// unconditional transfer (the paper's "the instruction immediately
	// before a_i is an unconditional jump") or where the fall-through
	// predecessor never executes on the training input — falling back to
	// arbitrary gaps only when a bit's direction would otherwise be
	// unencodable.
	nGaps := len(out.Instrs) // valid insertion indices: 0..nGaps
	var allowedGaps []int
	for g := 0; g <= nGaps; g++ {
		if g == 0 || out.Instrs[g-1].Op.IsUncond() || profile[g-1] == 0 {
			allowedGaps = append(allowedGaps, g)
		}
	}
	cur := siteKey{gap: beginIdx, sub: 1.5}
	type island struct {
		key   siteKey
		label string
	}
	var islands []island
	for i, bit := range wBits {
		next, err := nextKeyAllowed(rng, cur, bit, allowedGaps, beginIdx)
		if err != nil {
			next, err = nextKey(rng, cur, bit, nGaps, beginIdx)
		}
		if err != nil {
			span.Finish()
			return nil, nil, err
		}
		lbl := siteLabel(i + 1)
		islands = append(islands, island{key: next, label: lbl})
		siteLabels = append(siteLabels, lbl)
		cur = next
	}

	// Materialize islands: group by gap, sort by sub, insert descending.
	sort.Slice(islands, func(a, b int) bool { return islands[b].key.less(islands[a].key) })
	for start := 0; start < len(islands); {
		end := start
		for end < len(islands) && islands[end].key.gap == islands[start].key.gap {
			end++
		}
		group := append([]island(nil), islands[start:end]...)
		// group is sub-descending; emit sub-ascending.
		var seq []isa.Ins
		for gi := len(group) - 1; gi >= 0; gi-- {
			skip := group[gi].label + "_skip"
			seq = append(seq,
				isa.Ins{Op: isa.OJmp, Target: skip},
				isa.Ins{Op: isa.OCall, Target: bfEntry, Label: group[gi].label},
				isa.Ins{Op: isa.ONop, Label: skip},
			)
		}
		insertAt(out, group[0].key.gap, seq)
		start = end
	}

	span.Set("allowed_gaps", int64(len(allowedGaps))).
		Set("islands", int64(len(islands))).
		Set("tamper_candidates", int64(len(tampers))).Finish()

	if err := ctxErr(opts.Ctx); err != nil {
		return nil, nil, fmt.Errorf("nativewm: embedding cancelled before assembly: %w", err)
	}

	// Reserve the branch function for k+1 = bits+1 call sites; its code is
	// appended after every island, so the data-patch indices stay stable.
	span = opts.Obs.Start("nativewm.assemble")
	bf, err := branchfn.Reserve(out, bits+1, branchfn.Options{
		LabelPrefix: opts.LabelPrefix,
		HelperDepth: opts.HelperDepth,
		Rng:         rng,
	})
	if err != nil {
		span.Finish()
		return nil, nil, err
	}

	// Text is frozen: patch data-address placeholders.
	bf.PatchAddrs(out)
	for i := range out.Instrs {
		if out.Instrs[i].Op == isa.OJmpInd && out.Instrs[i].Imm >= jmpIndMarker {
			off := out.Instrs[i].Imm - jmpIndMarker
			out.Instrs[i].Imm = int64(isa.DataAddr(out, int(off)))
		}
	}

	img, err := isa.Assemble(out)
	if err != nil {
		span.Finish()
		return nil, nil, fmt.Errorf("nativewm: assembling watermarked unit: %w", err)
	}
	span.Set("text_bytes", int64(len(img.Text))).
		Set("data_bytes", int64(len(out.Data))).Finish()

	if err := ctxErr(opts.Ctx); err != nil {
		return nil, nil, fmt.Errorf("nativewm: embedding cancelled before finalization: %w", err)
	}

	// Build the control transfer map: a_i -> a_{i+1}, a_k -> end.
	// (This span is the last stage, so a deferred Finish covers the
	// invariant-violation error returns below.)
	span = opts.Obs.Start("nativewm.finalize")
	defer span.Finish()
	keys := make([]uint32, bits+1)
	targets := make([]uint32, bits+1)
	sites := make([]uint32, bits+1)
	for i, lbl := range siteLabels {
		addr, ok := img.Labels[lbl]
		if !ok {
			return nil, nil, fmt.Errorf("nativewm: site label %q unresolved", lbl)
		}
		sites[i] = addr
		keys[i] = addr + branchfn.CallLen
	}
	for i := 0; i < bits; i++ {
		targets[i] = sites[i+1]
		// Validate the encoding invariant.
		if wBits[i] != (sites[i+1] > sites[i]) {
			return nil, nil, fmt.Errorf("nativewm: bit %d: site order %#x->%#x does not encode %v",
				i, sites[i], sites[i+1], wBits[i])
		}
	}
	endAddr, ok := img.Labels[endLabel]
	if !ok {
		return nil, nil, fmt.Errorf("nativewm: end label %q unresolved", endLabel)
	}
	targets[bits] = endAddr

	// Tamper slots: site i fixes candidate i.
	ph, err := perfecthash.Build(keys)
	if err != nil {
		return nil, nil, err
	}
	var slots []branchfn.TamperSlot
	for i, tc := range tampers {
		if i > bits {
			break
		}
		target, ok := img.Labels[tc.targetLabel]
		if !ok {
			return nil, nil, fmt.Errorf("nativewm: tamper target %q unresolved", tc.targetLabel)
		}
		// M starts at a random text address; the branch-function call
		// whose hash index matches fixes it to the real target.
		init := isa.TextBase + uint32(rng.Intn(len(img.Text)))
		putDataWord(out, tc.mOff, init)
		slots = append(slots, branchfn.TamperSlot{
			Idx:  ph.Lookup(keys[i]),
			M:    isa.DataAddr(out, tc.mOff),
			XVal: init ^ target,
		})
	}
	if err := bf.Finalize(out, keys, targets, slots); err != nil {
		return nil, nil, err
	}

	report := &EmbedReport{
		Mark:          Mark{Begin: sites[0], End: endAddr, Bits: bits},
		Sites:         sites,
		TamperCount:   len(slots),
		OriginalBytes: origBytes,
		EmbeddedBytes: int(out.TextSize()) + len(out.Data),
	}
	span.Set("tamper_slots", int64(len(slots))).
		Set("call_sites", int64(len(sites)))
	opts.Obs.Counter("nativewm.bits_total").Add(int64(bits))
	opts.Obs.Histogram("nativewm.size_increase_bp").
		Observe(int64(report.SizeIncrease() * 10_000))
	return out, report, nil
}

const jmpIndMarker = int64(1) << 41

func putDataWord(u *isa.Unit, off int, v uint32) {
	u.Data[off] = byte(v)
	u.Data[off+1] = byte(v >> 8)
	u.Data[off+2] = byte(v >> 16)
	u.Data[off+3] = byte(v >> 24)
}

// nextKeyAllowed samples the next site's key from the zero-cost gap set.
// Within a single gap, sub-ordering provides both directions, so even one
// allowed gap suffices once the chain is inside it.
func nextKeyAllowed(rng *rand.Rand, cur siteKey, forward bool, allowed []int, beginGap int) (siteKey, error) {
	var gapCands []int
	if forward {
		for _, g := range allowed {
			if g > cur.gap {
				gapCands = append(gapCands, g)
			}
		}
	} else {
		for _, g := range allowed {
			if g < cur.gap {
				gapCands = append(gapCands, g)
			}
		}
	}
	// Same-gap movement via sub-ordering; never applicable after a_0's
	// fixed sub for the forward direction (islands keep sub < 1).
	sameGapOK := false
	for _, g := range allowed {
		if g == cur.gap {
			sameGapOK = true
		}
	}
	if forward && cur.sub >= 1 {
		sameGapOK = false
	}
	if sameGapOK && (len(gapCands) == 0 || rng.Intn(10) == 0) {
		if forward {
			sub := cur.sub + (1-cur.sub)*rng.Float64()
			if sub > cur.sub && sub < 1 {
				return siteKey{gap: cur.gap, sub: sub}, nil
			}
		} else {
			sub := cur.sub * rng.Float64()
			if sub > 0 && sub < cur.sub && sub < 1 {
				return siteKey{gap: cur.gap, sub: sub}, nil
			}
		}
	}
	if len(gapCands) == 0 {
		return siteKey{}, errors.New("nativewm: no zero-cost gap in the required direction")
	}
	return siteKey{gap: gapCands[rng.Intn(len(gapCands))], sub: 0.999 * rng.Float64()}, nil
}

// nextKey samples the next site's total-order key strictly after (bit=1)
// or before (bit=0) cur. Island keys always use sub in (0,1), so within
// a_0's gap they sort before a_0's fixed sub of 1.5 — consistent with
// islands being inserted before the instruction occupying that index.
func nextKey(rng *rand.Rand, cur siteKey, forward bool, nGaps, beginGap int) (siteKey, error) {
	for try := 0; try < 10000; try++ {
		var k siteKey
		if forward {
			lo := cur.gap
			if cur.gap == beginGap && cur.sub >= 1 {
				lo = cur.gap + 1 // nothing after a_0 inside its own gap
			}
			if lo > nGaps {
				continue
			}
			k = siteKey{gap: lo + rng.Intn(nGaps-lo+1), sub: rng.Float64()}
			if k.gap == cur.gap && k.sub <= cur.sub {
				k.sub = cur.sub + (1-cur.sub)*rng.Float64()
				if k.sub <= cur.sub || k.sub >= 1 {
					continue
				}
			}
		} else {
			hi := cur.gap
			k = siteKey{gap: rng.Intn(hi + 1), sub: rng.Float64()}
			if k.gap == cur.gap && k.sub >= cur.sub {
				k.sub = cur.sub * rng.Float64()
				if k.sub <= 0 || k.sub >= cur.sub {
					continue
				}
			}
		}
		return k, nil
	}
	return siteKey{}, errors.New("nativewm: failed to place a call site (degenerate layout)")
}

// insertAt splices instructions before list index idx.
func insertAt(u *isa.Unit, idx int, seq []isa.Ins) {
	newInstrs := make([]isa.Ins, 0, len(u.Instrs)+len(seq))
	newInstrs = append(newInstrs, u.Instrs[:idx]...)
	newInstrs = append(newInstrs, seq...)
	newInstrs = append(newInstrs, u.Instrs[idx:]...)
	u.Instrs = newInstrs
}
