package nativewm

import (
	"math/big"
	"testing"

	"pathmark/internal/isa"
)

func TestFramedRoundTripWithoutMark(t *testing.T) {
	for _, bits := range []int{8, 32, 64} {
		u := buildHost()
		w := big.NewInt(0)
		w.SetString("1234567890123456789", 10)
		w.Mod(w, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		marked, report, err := EmbedFramed(u, w, bits, defaultOpts(31))
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if report.Mark.Bits != bits+frameMagicBits+frameLenBits {
			t.Errorf("bits=%d: framed chain length %d", bits, report.Mark.Bits)
		}
		img, err := isa.Assemble(marked)
		if err != nil {
			t.Fatal(err)
		}
		// Extraction needs no begin/end/bit-count knowledge at all.
		ext, err := ExtractFramed(img, trainInput, SmartTracer, 0)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if ext.Watermark.Cmp(w) != 0 {
			t.Errorf("bits=%d: extracted %v, want %v", bits, ext.Watermark, w)
		}
	}
}

func TestFramedPreservesSemantics(t *testing.T) {
	u := buildHost()
	w := big.NewInt(0x1CED)
	marked, _, err := EmbedFramed(u, w, 16, defaultOpts(32))
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range evalInputs {
		ref, err := isa.Execute(u, input, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := isa.Execute(marked, input, 0)
		if err != nil {
			t.Fatalf("input %v: %v", input, err)
		}
		if !isa.SameOutput(ref, got) {
			t.Errorf("input %v: behavior changed", input)
		}
	}
}

func TestFramedExtractionFailsOnCleanBinary(t *testing.T) {
	u := buildHost()
	img, err := isa.Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractFramed(img, trainInput, SmartTracer, 0); err == nil {
		t.Error("found a frame in an unwatermarked binary")
	}
}

func TestFramedRejectsBadSizes(t *testing.T) {
	u := buildHost()
	if _, _, err := EmbedFramed(u, big.NewInt(1), 0, defaultOpts(33)); err == nil {
		t.Error("accepted zero bits")
	}
	if _, _, err := EmbedFramed(u, big.NewInt(1), MaxFramedBits+1, defaultOpts(34)); err == nil {
		t.Error("accepted oversize payload")
	}
	if _, _, err := EmbedFramed(u, big.NewInt(256), 8, defaultOpts(35)); err == nil {
		t.Error("accepted watermark larger than the budget")
	}
}

func TestFramedAndManualExtractionAgree(t *testing.T) {
	u := buildHost()
	w := big.NewInt(0xFACE)
	marked, report, err := EmbedFramed(u, w, 16, defaultOpts(36))
	if err != nil {
		t.Fatal(err)
	}
	img, err := isa.Assemble(marked)
	if err != nil {
		t.Fatal(err)
	}
	manual, err := Extract(img, trainInput, report.Mark, SmartTracer, 0)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := ExtractFramed(img, trainInput, SmartTracer, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The manual extraction returns the full framed integer; its payload
	// field must equal the automatic extraction's result.
	payload := new(big.Int).Rsh(manual.Watermark, frameMagicBits+frameLenBits)
	if payload.Cmp(auto.Watermark) != 0 {
		t.Errorf("manual payload %v != framed extraction %v", payload, auto.Watermark)
	}
}
