package nativewm

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"pathmark/internal/isa"
)

// ctxCheckSteps is how often the single-stepping tracers poll their
// context: every few thousand machine steps, cheap enough to be invisible
// against the decode+step cost yet prompt enough (well under a
// millisecond of work) that cancellation and deadlines feel immediate.
const ctxCheckSteps = 4096

// ctxErr reports a nil-safe context error.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// TracerKind selects the §4.2.3 extraction strategy.
type TracerKind int

const (
	// SimpleTracer identifies each a_i as the address of the instruction
	// that transferred control into the branch function — the call site
	// for a direct call, but the trampoline for a rerouted entry, which is
	// exactly how §5.2.2(5) defeats it.
	SimpleTracer TracerKind = iota
	// SmartTracer tracks the value of the hash input (the return address
	// the call pushed) and derives a_i from it, surviving rerouting.
	SmartTracer
)

func (t TracerKind) String() string {
	if t == SimpleTracer {
		return "simple"
	}
	return "smart"
}

// MisReturn is one observed branch-function dispatch: a call whose ret
// transferred control somewhere other than the fall-through address.
type MisReturn struct {
	Site     uint32 // address of the call instruction
	Target   uint32 // the call's static target
	Expected uint32 // the pushed return address (the hash input)
	Actual   uint32 // where the ret really went (b_i)
}

// TraceMisReturns single-steps the image on the input and records every
// mis-returning call — the §4.2.3 observation that identifies the branch
// function. It stops at the step limit or when the machine halts. It is
// TraceMisReturnsContext with no cancellation.
func TraceMisReturns(img *isa.Image, input []int64, stepLimit int64) ([]MisReturn, error) {
	return TraceMisReturnsContext(nil, img, input, stepLimit)
}

// TraceMisReturnsContext is TraceMisReturns bounded by a context: the
// step loop polls ctx every ctxCheckSteps machine steps and returns the
// events observed so far together with the context's error once it is
// done. A nil ctx disables the checks.
func TraceMisReturnsContext(ctx context.Context, img *isa.Image, input []int64, stepLimit int64) ([]MisReturn, error) {
	if stepLimit == 0 {
		stepLimit = 50_000_000
	}
	cpu := isa.NewCPU(img, input)
	type frame struct {
		site, target, expect uint32
	}
	var shadow []frame
	var events []MisReturn
	for !cpu.Halted() && cpu.Steps < stepLimit {
		if ctx != nil && cpu.Steps%ctxCheckSteps == 0 {
			if err := ctx.Err(); err != nil {
				return events, fmt.Errorf("nativewm: trace cancelled after %d steps: %w", cpu.Steps, err)
			}
		}
		d, err := isa.DecodeAt(img.Text, img.TextBase, cpu.EIP)
		if err != nil {
			return events, err
		}
		isCall := d.Ins.Op == isa.OCall
		isRet := d.Ins.Op == isa.ORet
		site := cpu.EIP
		if err := cpu.Step(); err != nil {
			return events, err
		}
		if isCall {
			shadow = append(shadow, frame{site: site, target: d.AbsTarget, expect: site + d.Len})
		}
		if isRet && len(shadow) > 0 {
			top := shadow[len(shadow)-1]
			shadow = shadow[:len(shadow)-1]
			if cpu.EIP != top.expect {
				events = append(events, MisReturn{
					Site: top.site, Target: top.target,
					Expected: top.expect, Actual: cpu.EIP,
				})
			}
		}
	}
	return events, nil
}

// Extraction is the result of watermark extraction.
type Extraction struct {
	Bits      []bool
	Watermark *big.Int
	Sites     []uint32 // the a_i the tracer deduced
}

// Extract recovers the watermark from a (possibly attacked) image by
// dynamic tracing between mark.Begin and mark.End (§4.2.3). The input
// must drive execution through the begin→end edge. It is ExtractContext
// with no cancellation.
func Extract(img *isa.Image, input []int64, mark Mark, kind TracerKind, stepLimit int64) (*Extraction, error) {
	return ExtractContext(nil, img, input, mark, kind, stepLimit)
}

// ExtractContext is Extract bounded by a context: the step loop polls ctx
// every ctxCheckSteps machine steps, so an attacked image that spins
// without reaching the end marker degrades into a prompt cancellation
// error instead of burning the whole step budget. A nil ctx disables the
// checks.
func ExtractContext(ctx context.Context, img *isa.Image, input []int64, mark Mark, kind TracerKind, stepLimit int64) (*Extraction, error) {
	if stepLimit == 0 {
		stepLimit = 50_000_000
	}
	cpu := isa.NewCPU(img, input)
	type frame struct {
		site, target, expect uint32
	}
	var shadow []frame
	tracking := false
	type pair struct{ a, b uint32 }
	var events []pair
	for !cpu.Halted() && cpu.Steps < stepLimit {
		if ctx != nil && cpu.Steps%ctxCheckSteps == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("nativewm: extraction cancelled after %d steps: %w", cpu.Steps, err)
			}
		}
		if cpu.EIP == mark.Begin {
			tracking = true
		}
		d, err := isa.DecodeAt(img.Text, img.TextBase, cpu.EIP)
		if err != nil {
			return nil, fmt.Errorf("nativewm: extraction trace faulted: %w", err)
		}
		isCall := d.Ins.Op == isa.OCall
		isRet := d.Ins.Op == isa.ORet
		site := cpu.EIP
		if err := cpu.Step(); err != nil {
			return nil, fmt.Errorf("nativewm: extraction trace faulted: %w", err)
		}
		if isCall {
			shadow = append(shadow, frame{site: site, target: d.AbsTarget, expect: site + d.Len})
		}
		if isRet && len(shadow) > 0 {
			top := shadow[len(shadow)-1]
			shadow = shadow[:len(shadow)-1]
			if cpu.EIP != top.expect && tracking {
				a := deduceSite(img, top.site, top.target, top.expect, kind)
				events = append(events, pair{a: a, b: cpu.EIP})
			}
		}
		if tracking && cpu.EIP == mark.End && len(events) > 0 {
			break
		}
	}
	if len(events) < mark.Bits {
		return nil, fmt.Errorf("nativewm: trace yielded %d chain transfers, need %d", len(events), mark.Bits)
	}
	ext := &Extraction{}
	for i := 0; i < mark.Bits; i++ {
		// Forward jump encodes 1, backward 0 (§4.2.1).
		ext.Bits = append(ext.Bits, events[i].b > events[i].a)
		ext.Sites = append(ext.Sites, events[i].a)
	}
	ext.Watermark = BitsToInt(ext.Bits)
	return ext, nil
}

func deduceSite(img *isa.Image, callSite, callTarget, expect uint32, kind TracerKind) uint32 {
	switch kind {
	case SmartTracer:
		// The hash input is the pushed return address; the site precedes
		// it by the call length.
		return expect - 5
	default:
		// The simple tracer reports the address of the instruction that
		// transferred control into the branch function: the call itself
		// for a direct call, the trampoline when the call target is an
		// unconditional jmp (a rerouted entry).
		if d, err := isa.DecodeAt(img.Text, img.TextBase, callTarget); err == nil && d.Ins.Op == isa.OJmp {
			return callTarget
		}
		return callSite
	}
}

// VerifyRoundTrip embeds-then-extracts in-process; used by tests and the
// experiment harness to validate an embedding end to end.
func VerifyRoundTrip(u *isa.Unit, w *big.Int, bits int, input []int64, opts EmbedOptions) error {
	marked, report, err := Embed(u, w, bits, opts)
	if err != nil {
		return err
	}
	img, err := isa.Assemble(marked)
	if err != nil {
		return err
	}
	ext, err := Extract(img, input, report.Mark, SmartTracer, 0)
	if err != nil {
		return err
	}
	low := new(big.Int).Set(w)
	if ext.Watermark.Cmp(low) != 0 {
		return errors.New("nativewm: extracted watermark differs from embedded")
	}
	return nil
}
