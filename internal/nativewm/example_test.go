package nativewm_test

import (
	"fmt"
	"math/big"

	"pathmark/internal/isa"
	"pathmark/internal/nativewm"
	"pathmark/internal/workloads"
)

// Example embeds a 32-bit fingerprint into the bzip2-like kernel with
// branch functions and extracts it by dynamic tracing.
func Example() {
	k := workloads.NativeKernels()[0] // bzip2
	fingerprint := big.NewInt(0xFEED)

	marked, report, err := nativewm.Embed(k.Unit, fingerprint, 32, nativewm.EmbedOptions{
		Seed:        1,
		TamperProof: true,
		TrainInput:  k.TrainInput,
		LabelPrefix: "ex_",
	})
	if err != nil {
		panic(err)
	}
	img, err := isa.Assemble(marked)
	if err != nil {
		panic(err)
	}
	ext, err := nativewm.Extract(img, k.TrainInput, report.Mark, nativewm.SmartTracer, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sites=%d recovered=0x%x\n", len(report.Sites), ext.Watermark)
	// Output: sites=33 recovered=0xfeed
}
