package nativewm

import (
	"math/rand"
	"testing"
)

func TestSiteKeyOrdering(t *testing.T) {
	cases := []struct {
		a, b siteKey
		less bool
	}{
		{siteKey{1, 0.5}, siteKey{2, 0.1}, true},
		{siteKey{2, 0.1}, siteKey{1, 0.5}, false},
		{siteKey{3, 0.2}, siteKey{3, 0.7}, true},
		{siteKey{3, 0.7}, siteKey{3, 0.2}, false},
		{siteKey{3, 0.2}, siteKey{3, 0.2}, false},
	}
	for _, c := range cases {
		if got := c.a.less(c.b); got != c.less {
			t.Errorf("%v < %v = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestNextKeyAllowedRespectsDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	allowed := []int{0, 3, 7, 12}
	const beginGap = 3
	cur := siteKey{gap: beginGap, sub: 1.5} // a_0's fixed key
	for trial := 0; trial < 500; trial++ {
		fwd, err := nextKeyAllowed(rng, cur, true, allowed, beginGap)
		if err != nil {
			t.Fatal(err)
		}
		if !cur.less(fwd) {
			t.Fatalf("forward key %v not after %v", fwd, cur)
		}
		if fwd.gap == beginGap {
			t.Fatalf("forward from a_0 landed inside its own gap: %v", fwd)
		}
		back, err := nextKeyAllowed(rng, cur, false, allowed, beginGap)
		if err != nil {
			t.Fatal(err)
		}
		if !back.less(cur) {
			t.Fatalf("backward key %v not before %v", back, cur)
		}
	}
}

func TestNextKeyAllowedChainStaysOrdered(t *testing.T) {
	// A long alternating chain must always find a key, and consecutive
	// keys must encode their bits correctly.
	rng := rand.New(rand.NewSource(2))
	allowed := []int{0, 5, 9}
	cur := siteKey{gap: 5, sub: 1.5}
	for i := 0; i < 300; i++ {
		forward := i%2 == 0
		next, err := nextKeyAllowed(rng, cur, forward, allowed, 5)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if forward && !cur.less(next) {
			t.Fatalf("step %d: forward violated: %v -> %v", i, cur, next)
		}
		if !forward && !next.less(cur) {
			t.Fatalf("step %d: backward violated: %v -> %v", i, cur, next)
		}
		cur = next
	}
}

func TestNextKeyAllowedFailsWhenImpossible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Only gap 0 allowed, cursor in gap 0 with tiny sub: backward within
	// the gap still works (sub subdivides), but forward from beyond the
	// last allowed gap must fail.
	if _, err := nextKeyAllowed(rng, siteKey{gap: 9, sub: 0.5}, true, []int{0, 5}, -1); err == nil {
		t.Error("forward past the last allowed gap succeeded")
	}
	if _, err := nextKeyAllowed(rng, siteKey{gap: 0, sub: 0.0000001}, false, []int{0}, -1); err == nil {
		// Backward from an almost-zero sub within the only allowed gap:
		// still possible in principle (floats subdivide), but the sampler
		// may give up; accept either outcome — just require no panic.
		t.Log("backward at the float edge unexpectedly succeeded (fine)")
	}
}

func TestWatermarkBitsRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(96)
		bits := make([]bool, k)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		w := BitsToInt(bits)
		got := WatermarkBits(w, k)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("trial %d: bit %d mismatch", trial, i)
			}
		}
	}
}
