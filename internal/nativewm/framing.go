package nativewm

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"pathmark/internal/isa"
)

// Framing scheme — the paper's §4.2.3 future-work item: "currently, these
// [begin/end addresses] are supplied manually; however, we expect to
// augment the implementation ... to use a framing scheme that would allow
// these addresses to be identified automatically."
//
// A framed watermark prepends a self-describing header to the bit chain:
//
//	bits 0..15   magic 0xA5C3 (LSB-first)
//	bits 16..27  payload bit count, 12 bits
//	bits 28..    payload
//
// The extractor then needs no Mark at all: it traces the whole execution,
// turns every branch-function dispatch into a forward/backward bit, and
// scans the resulting bit sequence for the magic header at every offset.
// Mis-returning calls unrelated to the watermark merely shift the scan.

const (
	frameMagic     = 0xA5C3
	frameMagicBits = 16
	frameLenBits   = 12
	// MaxFramedBits is the largest payload the 12-bit length field can
	// describe.
	MaxFramedBits = 1<<frameLenBits - 1
)

// EmbedFramed embeds w with a framing header so extraction is fully
// automatic. The returned report's Mark still works with plain Extract
// (its Bits covers the whole framed chain).
func EmbedFramed(u *isa.Unit, w *big.Int, bits int, opts EmbedOptions) (*isa.Unit, *EmbedReport, error) {
	if bits <= 0 || bits > MaxFramedBits {
		return nil, nil, fmt.Errorf("nativewm: framed payload must be 1..%d bits", MaxFramedBits)
	}
	if w.BitLen() > bits {
		return nil, nil, fmt.Errorf("nativewm: watermark needs %d bits, budget is %d", w.BitLen(), bits)
	}
	framed := new(big.Int)
	// Assemble LSB-first: magic, then length, then payload.
	framed.SetUint64(frameMagic)
	lenField := new(big.Int).SetUint64(uint64(bits))
	lenField.Lsh(lenField, frameMagicBits)
	framed.Or(framed, lenField)
	payload := new(big.Int).Set(w)
	payload.Lsh(payload, frameMagicBits+frameLenBits)
	framed.Or(framed, payload)
	total := frameMagicBits + frameLenBits + bits
	return Embed(u, framed, total, opts)
}

// ExtractFramed recovers a framed watermark with no begin/end knowledge:
// it collects every branch-function dispatch in execution order and scans
// the bit sequence for the frame header. It is ExtractFramedContext with
// no cancellation.
func ExtractFramed(img *isa.Image, input []int64, kind TracerKind, stepLimit int64) (*Extraction, error) {
	return ExtractFramedContext(nil, img, input, kind, stepLimit)
}

// ExtractFramedContext is ExtractFramed bounded by a context: the tracing
// run polls ctx periodically, so a deadline converts a spinning (or
// attacked) image into a prompt error instead of a step-budget burn. A
// nil ctx disables the checks.
func ExtractFramedContext(ctx context.Context, img *isa.Image, input []int64, kind TracerKind, stepLimit int64) (*Extraction, error) {
	events, err := TraceMisReturnsContext(ctx, img, input, stepLimit)
	if err != nil && len(events) == 0 {
		return nil, fmt.Errorf("nativewm: framed extraction trace: %w", err)
	}
	bits := make([]bool, 0, len(events))
	for _, e := range events {
		a := e.Site
		if kind == SimpleTracer {
			if d, derr := isa.DecodeAt(img.Text, img.TextBase, e.Target); derr == nil && d.Ins.Op == isa.OJmp {
				a = e.Target
			}
		}
		bits = append(bits, e.Actual > a)
	}
	payload, _, ok := scanFrame(bits)
	if !ok {
		return nil, errors.New("nativewm: no frame header found in the trace")
	}
	return &Extraction{
		Bits:      payload,
		Watermark: BitsToInt(payload),
	}, nil
}

// scanFrame scans a bit sequence for a framed watermark: the first offset
// whose next 16 bits decode (LSB-first) to the frame magic, followed by a
// 12-bit length field describing a payload that fits in the remaining
// bits, wins. It returns the payload, the header's bit offset, and
// whether a frame was found. The scan is the decode half of EmbedFramed's
// header assembly and is shared by the extractor and the fuzz target; it
// never panics on any input shape.
func scanFrame(bits []bool) (payload []bool, off int, ok bool) {
	for off = 0; off+frameMagicBits+frameLenBits <= len(bits); off++ {
		magic := bitsToUint(bits[off : off+frameMagicBits])
		if magic != frameMagic {
			continue
		}
		n := int(bitsToUint(bits[off+frameMagicBits : off+frameMagicBits+frameLenBits]))
		start := off + frameMagicBits + frameLenBits
		if n == 0 || start+n > len(bits) {
			continue
		}
		return bits[start : start+n], off, true
	}
	return nil, -1, false
}

func bitsToUint(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
