package nativewm

import (
	"bytes"
	"testing"
)

// bytesToBits expands data into a bit sequence, LSB-first within each
// byte, truncated to n bits (n <= 8*len(data)).
func bytesToBits(data []byte, n int) []bool {
	if n > 8*len(data) {
		n = 8 * len(data)
	}
	bits := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		bits = append(bits, data[i/8]&(1<<uint(i%8)) != 0)
	}
	return bits
}

// frameBits assembles a well-formed frame header followed by the payload,
// mirroring EmbedFramed's LSB-first layout.
func frameBits(payload []bool) []bool {
	out := make([]bool, 0, frameMagicBits+frameLenBits+len(payload))
	for i := 0; i < frameMagicBits; i++ {
		out = append(out, frameMagic&(1<<uint(i)) != 0)
	}
	for i := 0; i < frameLenBits; i++ {
		out = append(out, len(payload)&(1<<uint(i)) != 0)
	}
	return append(out, payload...)
}

// FuzzFramingDecode drives scanFrame — the decode half of the §4.2.3
// framing scheme — with arbitrary bit sequences. Invariants checked:
//
//  1. scanFrame never panics, whatever the input shape;
//  2. when it reports a frame, the reported offset really holds the magic
//     and a length field matching the returned payload, which lies fully
//     inside the input;
//  3. a well-formed frame prepended to arbitrary noise is always found,
//     at offset 0, with the payload intact (encode/decode round trip).
func FuzzFramingDecode(f *testing.F) {
	f.Add([]byte{}, 0, false)
	f.Add([]byte{0xC3, 0xA5, 0x08, 0x00, 0xFF}, 40, false)
	f.Add(bytes.Repeat([]byte{0xA5, 0xC3}, 40), 640, true)
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08}, 64, true)

	f.Fuzz(func(t *testing.T, data []byte, n int, wrap bool) {
		if n < 0 {
			n = -n
		}
		if n > 8*len(data) {
			n = 8 * len(data)
		}
		noise := bytesToBits(data, n)

		// Invariants 1+2: arbitrary input.
		if payload, off, ok := scanFrame(noise); ok {
			if off < 0 || off+frameMagicBits+frameLenBits+len(payload) > len(noise) {
				t.Fatalf("frame [off %d, %d payload bits] overruns %d input bits", off, len(payload), len(noise))
			}
			if m := bitsToUint(noise[off : off+frameMagicBits]); m != frameMagic {
				t.Fatalf("reported offset %d holds %#x, not the magic", off, m)
			}
			if l := bitsToUint(noise[off+frameMagicBits : off+frameMagicBits+frameLenBits]); int(l) != len(payload) {
				t.Fatalf("length field says %d, payload has %d bits", l, len(payload))
			}
		} else if payload != nil || off != -1 {
			t.Fatalf("no-frame result must be (nil, -1): got (%v, %d)", payload, off)
		}

		// Invariant 3: a valid frame survives arbitrary trailing noise.
		if wrap {
			want := noise
			if len(want) > MaxFramedBits {
				want = want[:MaxFramedBits]
			}
			if len(want) == 0 {
				want = []bool{true}
			}
			framed := append(frameBits(want), noise...)
			got, off, ok := scanFrame(framed)
			if !ok || off != 0 {
				t.Fatalf("well-formed frame not found at offset 0 (ok=%v off=%d)", ok, off)
			}
			if len(got) != len(want) {
				t.Fatalf("payload length %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("payload bit %d flipped in round trip", i)
				}
			}
		}
	})
}
