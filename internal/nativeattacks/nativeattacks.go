// Package nativeattacks implements the five §5.2.2 attacks against
// branch-function watermarks, plus the break/survive harness.
//
// Unit-level attacks (no-op insertion, branch-sense inversion) model a
// binary rewriter: they reassemble the program, correctly fixing every
// visible relative branch — but the XOR table in the data section encodes
// absolute text addresses the rewriter cannot see, so watermarked binaries
// break. Image-level attacks (bypass, rerouting) are the byte patches of
// §5.2.2(4)-(5), applied after the attacker locates the branch function by
// dynamic tracing. Double watermarking is simply a second nativewm.Embed
// and lives in the experiment harness.
package nativeattacks

import (
	"errors"
	"fmt"
	"math/rand"

	"pathmark/internal/isa"
	"pathmark/internal/nativewm"
)

// InsertNops inserts n no-op instructions at random positions of the unit
// (§5.2.2(1)). Reassembly shifts every subsequent address.
func InsertNops(u *isa.Unit, rng *rand.Rand, n int) *isa.Unit {
	out := u.Clone()
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(out.Instrs) + 1)
		out.Instrs = append(out.Instrs[:pos],
			append([]isa.Ins{{Op: isa.ONop}}, out.Instrs[pos:]...)...)
	}
	return out
}

// InsertNopAt inserts a single no-op before instruction index pos; every
// later address shifts by one byte, which is all §5.2.2(1) needs to break
// a watermarked binary.
func InsertNopAt(u *isa.Unit, pos int) *isa.Unit {
	out := u.Clone()
	if pos < 0 {
		pos = 0
	}
	if pos > len(out.Instrs) {
		pos = len(out.Instrs)
	}
	out.Instrs = append(out.Instrs[:pos],
		append([]isa.Ins{{Op: isa.ONop}}, out.Instrs[pos:]...)...)
	return out
}

// InvertBranchSenses flips the sense of a fraction of conditional jumps,
// preserving semantics with an inserted jmp (§5.2.2(2)): `jcc T; next`
// becomes `j!cc L; jmp T; L: next`.
func InvertBranchSenses(u *isa.Unit, rng *rand.Rand, fraction float64) *isa.Unit {
	out := u.Clone()
	serial := 0
	for i := 0; i < len(out.Instrs); i++ {
		in := out.Instrs[i]
		if !in.Op.IsJcc() || in.Target == "" || rng.Float64() > fraction {
			continue
		}
		skip := fmt.Sprintf("__bsi%d", serial)
		serial++
		// Rewrite in place: negate, retarget to the skip label, and insert
		// the compensating jmp before the (possibly labeled) successor.
		out.Instrs[i].Op = isa.NegateJcc(in.Op)
		out.Instrs[i].Target = skip
		rest := append([]isa.Ins(nil), out.Instrs[i+1:]...)
		out.Instrs = append(out.Instrs[:i+1],
			isa.Ins{Op: isa.OJmp, Target: in.Target},
			isa.Ins{Op: isa.ONop, Label: skip})
		out.Instrs = append(out.Instrs, rest...)
		i += 2
	}
	return out
}

// Bypass overwrites calls to the branch function with same-size direct
// jumps to the destinations the attacker observed dynamically
// (§5.2.2(4)). The byte patch leaves all addresses unchanged; with
// tamper-proofing present, the skipped branch-function executions leave
// stale indirect-jump cells and the program breaks.
func Bypass(img *isa.Image, events []nativewm.MisReturn) (*isa.Image, error) {
	out := cloneImage(img)
	for _, e := range events {
		off := e.Site - out.TextBase
		if off+5 > uint32(len(out.Text)) {
			return nil, fmt.Errorf("nativeattacks: site %#x outside text", e.Site)
		}
		if isa.Op(out.Text[off]) != isa.OCall {
			// Already patched (a site appearing in several traversals).
			continue
		}
		rel := int32(e.Actual - (e.Site + 5))
		out.Text[off] = byte(isa.OJmp)
		putLE32(out.Text[off+1:], uint32(rel))
	}
	return out, nil
}

// Reroute implements §5.2.2(5): each call to the branch function becomes a
// call to a fresh trampoline `jmp bf` appended in the text section's
// alignment padding, so no existing address changes and the program keeps
// working — but a tracer that attributes sites to the instruction entering
// the branch function now sees the trampolines.
func Reroute(img *isa.Image, events []nativewm.MisReturn) (*isa.Image, error) {
	out := cloneImage(img)
	slack := out.DataBase - out.TextBase - uint32(len(out.Text))
	trampFor := make(map[uint32]uint32) // bf entry -> trampoline address
	for _, e := range events {
		off := e.Site - out.TextBase
		if off+5 > uint32(len(out.Text)) {
			return nil, fmt.Errorf("nativeattacks: site %#x outside text", e.Site)
		}
		if isa.Op(out.Text[off]) != isa.OCall {
			continue
		}
		bfEntry := e.Target
		tramp, ok := trampFor[bfEntry]
		if !ok {
			if slack < 5 {
				return nil, errors.New("nativeattacks: no alignment slack for trampoline")
			}
			tramp = out.TextBase + uint32(len(out.Text))
			rel := int32(bfEntry - (tramp + 5))
			out.Text = append(out.Text, byte(isa.OJmp), byte(rel), byte(rel>>8), byte(rel>>16), byte(rel>>24))
			slack -= 5
			trampFor[bfEntry] = tramp
		}
		rel := int32(tramp - (e.Site + 5))
		out.Text[off] = byte(isa.OCall)
		putLE32(out.Text[off+1:], uint32(rel))
	}
	return out, nil
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func cloneImage(img *isa.Image) *isa.Image {
	out := *img
	out.Text = append([]byte(nil), img.Text...)
	out.Data = append([]byte(nil), img.Data...)
	out.Labels = make(map[string]uint32, len(img.Labels))
	for k, v := range img.Labels {
		out.Labels[k] = v
	}
	out.InstrAddrs = append([]uint32(nil), img.InstrAddrs...)
	return &out
}

// Verdict classifies an attacked program against the original.
type Verdict int

const (
	// Broken: the attacked program faults or produces different output.
	Broken Verdict = iota
	// Working: observationally identical behavior.
	Working
)

func (v Verdict) String() string {
	if v == Broken {
		return "breaks"
	}
	return "works"
}

// Judge runs both images on the input and classifies the attack result.
func Judge(original, attacked *isa.Image, input []int64, stepLimit int64) Verdict {
	ref, err := isa.NewCPU(original, input).Run(stepLimit)
	if err != nil {
		// The original must run; treat a broken original as "broken
		// attack" so callers notice via tests.
		return Broken
	}
	got, err := isa.NewCPU(attacked, input).Run(stepLimit)
	if err != nil {
		return Broken
	}
	if !isa.SameOutput(ref, got) {
		return Broken
	}
	return Working
}
