package nativeattacks

import (
	"math/big"
	"math/rand"
	"testing"

	"pathmark/internal/isa"
	"pathmark/internal/nativewm"
)

func buildHost() *isa.Unit {
	b := isa.NewBuilder()
	b.Jmp("start")
	b.Label("start").In(isa.EAX)
	b.MovImm(isa.EBX, 0)
	b.Label("loop").CmpImm(isa.EAX, 0)
	b.Je("endloop")
	b.Add(isa.EBX, isa.EAX)
	b.SubImm(isa.EAX, 1)
	b.Jmp("loop")
	b.Label("endloop").CmpImm(isa.EBX, 100)
	b.Jg("big")
	b.Out(isa.EBX)
	b.Jmp("done")
	b.Label("big").MovReg(isa.ECX, isa.EBX)
	b.ShrImm(isa.ECX, 1)
	b.Out(isa.ECX)
	b.Jmp("done")
	b.Label("done").MovImm(isa.EDX, 7)
	b.Out(isa.EDX)
	b.Hlt()
	return b.Unit()
}

var trainInput = []int64{5}

func watermarked(t *testing.T, seed int64) (*isa.Unit, *isa.Image, *nativewm.EmbedReport, *big.Int) {
	t.Helper()
	u := buildHost()
	w := big.NewInt(0xBEEF_CAFE)
	marked, report, err := nativewm.Embed(u, w, 32, nativewm.EmbedOptions{
		Seed: seed, TamperProof: true, TrainInput: trainInput, LabelPrefix: "w1_",
	})
	if err != nil {
		t.Fatal(err)
	}
	img, err := isa.Assemble(marked)
	if err != nil {
		t.Fatal(err)
	}
	return marked, img, report, w
}

func mustImage(t *testing.T, u *isa.Unit) *isa.Image {
	t.Helper()
	img, err := isa.Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// --- semantic sanity on unwatermarked programs ---

func TestUnitAttacksPreserveSemanticsOnPlainPrograms(t *testing.T) {
	u := buildHost()
	rng := rand.New(rand.NewSource(1))
	ref, err := isa.Execute(u, trainInput, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, attacked := range map[string]*isa.Unit{
		"nops":   InsertNops(u, rng, 20),
		"invert": InvertBranchSenses(u, rng, 1.0),
	} {
		got, err := isa.Execute(attacked, trainInput, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !isa.SameOutput(ref, got) {
			t.Errorf("%s: changed behavior of a plain program", name)
		}
	}
}

// --- the §5.2.2 table ---

func TestNopInsertionBreaksWatermarked(t *testing.T) {
	marked, img, _, _ := watermarked(t, 1)
	rng := rand.New(rand.NewSource(2))
	// Even a single no-op breaks every test program (§5.2.2(1)).
	attacked := InsertNops(marked, rng, 1)
	if v := Judge(img, mustImage(t, attacked), trainInput, 2_000_000); v != Broken {
		t.Errorf("single no-op: %v, want breaks", v)
	}
}

func TestBranchInversionBreaksWatermarked(t *testing.T) {
	marked, img, _, _ := watermarked(t, 3)
	rng := rand.New(rand.NewSource(4))
	attacked := InvertBranchSenses(marked, rng, 1.0)
	if v := Judge(img, mustImage(t, attacked), trainInput, 2_000_000); v != Broken {
		t.Errorf("branch inversion: %v, want breaks", v)
	}
}

func TestDoubleWatermarkBreaks(t *testing.T) {
	marked, img, _, _ := watermarked(t, 5)
	second, _, err := nativewm.Embed(marked, big.NewInt(0x1234), 16, nativewm.EmbedOptions{
		Seed: 6, TamperProof: true, TrainInput: trainInput, LabelPrefix: "w2_",
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := Judge(img, mustImage(t, second), trainInput, 2_000_000); v != Broken {
		t.Errorf("double watermarking: %v, want breaks", v)
	}
}

func TestBypassBreaksTamperProofed(t *testing.T) {
	_, img, _, _ := watermarked(t, 7)
	events, err := nativewm.TraceMisReturns(img, trainInput, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no branch-function activity observed")
	}
	attacked, err := Bypass(img, events)
	if err != nil {
		t.Fatal(err)
	}
	if v := Judge(img, attacked, trainInput, 2_000_000); v != Broken {
		t.Errorf("bypass with tamper-proofing: %v, want breaks", v)
	}
}

func TestBypassSucceedsWithoutTamperProofing(t *testing.T) {
	// The §4.3 motivation: without tamper-proofing, bypassing the branch
	// function is a successful subtractive attack.
	u := buildHost()
	marked, _, err := nativewm.Embed(u, big.NewInt(0xAAAA), 16, nativewm.EmbedOptions{
		Seed: 8, TamperProof: false, TrainInput: trainInput, LabelPrefix: "w1_",
	})
	if err != nil {
		t.Fatal(err)
	}
	img := mustImage(t, marked)
	events, err := nativewm.TraceMisReturns(img, trainInput, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	attacked, err := Bypass(img, events)
	if err != nil {
		t.Fatal(err)
	}
	if v := Judge(img, attacked, trainInput, 2_000_000); v != Working {
		t.Errorf("bypass without tamper-proofing: %v, want works", v)
	}
}

func TestRerouteKeepsProgramWorkingFoolsSimpleTracerOnly(t *testing.T) {
	_, img, report, w := watermarked(t, 9)
	events, err := nativewm.TraceMisReturns(img, trainInput, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	attacked, err := Reroute(img, events)
	if err != nil {
		t.Fatal(err)
	}
	if v := Judge(img, attacked, trainInput, 2_000_000); v != Working {
		t.Fatalf("reroute: %v, want works", v)
	}
	smart, err := nativewm.Extract(attacked, trainInput, report.Mark, nativewm.SmartTracer, 2_000_000)
	if err != nil {
		t.Fatalf("smart tracer on rerouted: %v", err)
	}
	if smart.Watermark.Cmp(w) != 0 {
		t.Errorf("smart tracer extracted %v, want %v", smart.Watermark, w)
	}
	simple, err := nativewm.Extract(attacked, trainInput, report.Mark, nativewm.SimpleTracer, 2_000_000)
	if err == nil && simple.Watermark.Cmp(w) == 0 {
		t.Error("simple tracer survived rerouting; the paper's attack should defeat it")
	}
}

func TestExtractionSurvivesNoAttack(t *testing.T) {
	_, img, report, w := watermarked(t, 10)
	for _, kind := range []nativewm.TracerKind{nativewm.SimpleTracer, nativewm.SmartTracer} {
		ext, err := nativewm.Extract(img, trainInput, report.Mark, kind, 2_000_000)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if ext.Watermark.Cmp(w) != 0 {
			t.Errorf("%v tracer: %v, want %v", kind, ext.Watermark, w)
		}
	}
}

func TestJudgeDetectsOutputDifference(t *testing.T) {
	u := buildHost()
	img := mustImage(t, u)
	u2 := u.Clone()
	// Change a constant: different output.
	for i := range u2.Instrs {
		if u2.Instrs[i].Op == isa.OMovImm && u2.Instrs[i].Imm == 7 {
			u2.Instrs[i].Imm = 8
		}
	}
	if v := Judge(img, mustImage(t, u2), trainInput, 2_000_000); v != Broken {
		t.Errorf("Judge = %v, want breaks", v)
	}
	if v := Judge(img, mustImage(t, u.Clone()), trainInput, 2_000_000); v != Working {
		t.Errorf("Judge identical = %v, want works", v)
	}
}
