package workloads

import (
	"fmt"
	"math/rand"

	"pathmark/internal/isa"
)

// PadKernel appends `instrs` pseudo-instructions of never-executed cold
// code after the kernel's tail. Real SPEC binaries are hundreds of
// kilobytes of which a given input touches a small fraction; the padding
// gives the tiny synthetic kernels the same static/dynamic proportions so
// that watermark size overheads (Figure 9a) are measured against a
// realistically sized text section, and call-site islands spread across a
// large address range as they would in a real binary.
//
// The padding is structured like real code — arithmetic runs broken by
// unconditional jumps and rets — so the embedder finds no-fall-through
// points and cold-jump tamper candidates inside it.
func PadKernel(u *isa.Unit, instrs int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	regs := []byte{isa.EAX, isa.EBX, isa.ECX, isa.EDX, isa.ESI, isa.EDI, isa.EBP}
	serial := 0
	for emitted := 0; emitted < instrs; {
		// One cold "function": a run of arithmetic ending in ret, with
		// internal jumps over sub-blocks.
		blockLabel := fmt.Sprintf("__pad%d_%d", seed, serial)
		serial++
		u.Instrs = append(u.Instrs, isa.Ins{Op: isa.ONop, Label: blockLabel})
		lenBlock := 8 + rng.Intn(40)
		for j := 0; j < lenBlock; j++ {
			r := regs[rng.Intn(len(regs))]
			switch rng.Intn(6) {
			case 0:
				u.Instrs = append(u.Instrs, isa.Ins{Op: isa.OMovImm, R1: r, Imm: int64(rng.Intn(1 << 16))})
			case 1:
				u.Instrs = append(u.Instrs, isa.Ins{Op: isa.OAddImm, R1: r, Imm: int64(rng.Intn(1 << 12))})
			case 2:
				u.Instrs = append(u.Instrs, isa.Ins{Op: isa.OXor, R1: r, R2: regs[rng.Intn(len(regs))]})
			case 3:
				u.Instrs = append(u.Instrs, isa.Ins{Op: isa.OShlImm, R1: r, Imm: int64(1 + rng.Intn(7))})
			case 4:
				u.Instrs = append(u.Instrs, isa.Ins{Op: isa.OMovReg, R1: r, R2: regs[rng.Intn(len(regs))]})
			default:
				u.Instrs = append(u.Instrs, isa.Ins{Op: isa.OMulImm, R1: r, Imm: int64(rng.Intn(1<<8) | 1)})
			}
			emitted++
			// Sparse internal unconditional jumps (cold-jump candidates
			// and no-fall-through insertion points).
			if rng.Intn(16) == 0 {
				skip := fmt.Sprintf("__pad%d_%d_s", seed, serial)
				serial++
				u.Instrs = append(u.Instrs,
					isa.Ins{Op: isa.OJmp, Target: skip},
					isa.Ins{Op: isa.ONop, Label: skip})
				emitted += 2
			}
		}
		u.Instrs = append(u.Instrs, isa.Ins{Op: isa.ORet})
		emitted++
	}
}

// PaddedNativeKernels returns the kernel suite padded to a realistic text
// size (the default used by the Figure 9 experiments).
func PaddedNativeKernels(padInstrs int) []NativeKernel {
	ks := NativeKernels()
	for i := range ks {
		PadKernel(ks[i].Unit, padInstrs, int64(1000+i))
	}
	return ks
}
