package workloads

import (
	"testing"

	"pathmark/internal/isa"
	"pathmark/internal/vm"
)

func TestGCD(t *testing.T) {
	res, err := vm.Run(GCD(), vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Return != 5 || len(res.Output) != 1 || res.Output[0] != 5 {
		t.Errorf("gcd: return %d output %v, want 5 / [5]", res.Return, res.Output)
	}
}

func TestCaffeineMarkRunsAndIsDeterministic(t *testing.T) {
	p := CaffeineMark()
	if err := vm.Verify(p); err != nil {
		t.Fatal(err)
	}
	r1, err := vm.Run(p, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Six kernel scores plus the total.
	if len(r1.Output) != 7 {
		t.Fatalf("output has %d entries, want 7: %v", len(r1.Output), r1.Output)
	}
	// The sieve kernel counts 168 primes below 1000.
	if r1.Output[0] != 168 {
		t.Errorf("sieve score = %d, want 168", r1.Output[0])
	}
	// fib(17) = 1597.
	if r1.Output[4] != 1597 {
		t.Errorf("method score = %d, want 1597", r1.Output[4])
	}
	// Total is the sum of the six.
	var sum int64
	for _, v := range r1.Output[:6] {
		sum += v
	}
	if r1.Output[6] != sum || r1.Return != sum {
		t.Errorf("total %d (return %d), want %d", r1.Output[6], r1.Return, sum)
	}
	r2, err := vm.Run(p, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !vm.SameBehavior(r1, r2) {
		t.Error("CaffeineMark is not deterministic")
	}
	// The suite must be hot: most instructions execute many times.
	if r1.Steps < int64(p.CodeSize())*20 {
		t.Errorf("CaffeineMark not hot enough: %d steps for %d instructions", r1.Steps, p.CodeSize())
	}
}

func TestJessLikeShape(t *testing.T) {
	p := JessLike(JessLikeOptions{Seed: 1})
	if err := vm.Verify(p); err != nil {
		t.Fatal(err)
	}
	r1, err := vm.Run(p, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Output) != 1 {
		t.Fatalf("output %v, want one checksum", r1.Output)
	}
	// Large and mostly cold: far more instructions than CaffeineMark, and
	// a low dynamic/static ratio.
	cm := CaffeineMark()
	if p.CodeSize() < cm.CodeSize()*10 {
		t.Errorf("JessLike size %d not >> CaffeineMark size %d", p.CodeSize(), cm.CodeSize())
	}
	ratio := float64(r1.Steps) / float64(p.CodeSize())
	if ratio > 10 {
		t.Errorf("JessLike dynamic/static ratio %.1f, want mostly-cold (<10)", ratio)
	}
	// Deterministic per seed, different across seeds.
	p2 := JessLike(JessLikeOptions{Seed: 1})
	r2, err := vm.Run(p2, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !vm.SameBehavior(r1, r2) {
		t.Error("JessLike(seed=1) not deterministic")
	}
	p3 := JessLike(JessLikeOptions{Seed: 2})
	r3, err := vm.Run(p3, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vm.SameBehavior(r1, r3) {
		t.Error("JessLike ignores its seed")
	}
}

func TestJessLikeBranchDensity(t *testing.T) {
	p := JessLike(JessLikeOptions{Seed: 3})
	density := float64(p.CountCondBranches()) / float64(p.CodeSize())
	if density > 0.05 {
		t.Errorf("branch density %.3f too high for a Jess-like profile", density)
	}
	if density == 0 {
		t.Error("no conditional branches at all")
	}
}

func TestNativeKernelsRunOnBothInputs(t *testing.T) {
	kernels := NativeKernels()
	if len(kernels) != 10 {
		t.Fatalf("%d kernels, want 10", len(kernels))
	}
	seen := map[string]bool{}
	for _, k := range kernels {
		if seen[k.Name] {
			t.Errorf("duplicate kernel name %q", k.Name)
		}
		seen[k.Name] = true
		for _, input := range [][]int64{k.TrainInput, k.RefInput} {
			res, err := isa.Execute(k.Unit, input, 0)
			if err != nil {
				t.Fatalf("%s input %v: %v", k.Name, input, err)
			}
			if len(res.Output) < 2 {
				t.Errorf("%s: output %v, want checksum + tail marker", k.Name, res.Output)
			}
			// Deterministic.
			res2, err := isa.Execute(k.Unit, input, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !isa.SameOutput(res, res2) {
				t.Errorf("%s: nondeterministic", k.Name)
			}
		}
		// Ref input must be substantially more work than train.
		train, _ := isa.Execute(k.Unit, k.TrainInput, 0)
		ref, _ := isa.Execute(k.Unit, k.RefInput, 0)
		if ref.Steps < train.Steps*2 {
			t.Errorf("%s: ref steps %d not >> train steps %d", k.Name, ref.Steps, train.Steps)
		}
	}
}

func TestNativeKernelsHaveEmbeddingPrerequisites(t *testing.T) {
	for _, k := range NativeKernels() {
		profile, err := isa.CollectProfile(k.Unit, k.TrainInput, 0)
		if err != nil {
			t.Fatalf("%s: profile: %v", k.Name, err)
		}
		// At least one executed unconditional jmp (the begin→end edge).
		found := false
		for i, in := range k.Unit.Instrs {
			if in.Op == isa.OJmp && in.Target != "" && profile[i] >= 1 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no executed unconditional jmp for the begin edge", k.Name)
		}
	}
}

func TestNativeKernelShapesDiffer(t *testing.T) {
	// The kernels must be genuinely distinct workloads, not renames:
	// compare dynamic profiles coarsely.
	type shape struct {
		steps  int64
		output int64
	}
	seen := map[shape]string{}
	for _, k := range NativeKernels() {
		res, err := isa.Execute(k.Unit, k.TrainInput, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := shape{steps: res.Steps, output: res.Output[0]}
		if prev, dup := seen[s]; dup {
			t.Errorf("%s and %s have identical dynamic shape", k.Name, prev)
		}
		seen[s] = k.Name
	}
}
