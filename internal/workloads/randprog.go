package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"pathmark/internal/vm"
)

// RandProgOptions sizes RandomProgram.
type RandProgOptions struct {
	Methods    int // number of methods (default 6)
	Statements int // statements per method body (default 25)
	Seed       int64
}

func (o *RandProgOptions) defaults() {
	if o.Methods == 0 {
		o.Methods = 6
	}
	if o.Statements == 0 {
		o.Statements = 25
	}
}

// RandomProgram generates a pseudo-random, verified, always-terminating VM
// program for property-based testing: every attack transformation and
// every embedding must preserve its behavior and verifiability.
//
// Termination is guaranteed by construction: loops are counted with small
// constant bounds, the call graph is a DAG (method i only calls j > i),
// divisions have non-zero denominators, and array indices are masked to
// the array length.
type randProgGen struct {
	rng *rand.Rand
	sb  strings.Builder
	// per-method state
	method    int
	nLocals   int // locals random statements may touch
	label     int
	depth     int
	callsLeft int
}

// loopCounterSlots reserves one untouchable loop-counter local per nesting
// depth, guaranteeing counted loops terminate no matter what their bodies
// store.
const loopCounterSlots = 3

// RandomProgram builds the program described by opts.
func RandomProgram(opts RandProgOptions) *vm.Program {
	opts.defaults()
	g := &randProgGen{rng: rand.New(rand.NewSource(opts.Seed))}
	fmt.Fprintf(&g.sb, "statics %d\nentry m0\n", 2+g.rng.Intn(3))
	for m := 0; m < opts.Methods; m++ {
		g.method = m
		g.nLocals = 3 + g.rng.Intn(3)
		// At most two call statements per method, never inside a loop:
		// with a DAG call graph this bounds total activations by 2^methods
		// with small constants, keeping every generated program's runtime
		// far below the property tests' step limits.
		g.callsLeft = 2
		// Arity convention shared with emitCall: method m takes m%3 args.
		nArgs := 0
		if m > 0 {
			nArgs = calleeArity(m)
		}
		if g.nLocals < nArgs {
			g.nLocals = nArgs
		}
		fmt.Fprintf(&g.sb, "method m%d %d %d\n", m, nArgs, g.nLocals+loopCounterSlots)
		// Initialize non-argument locals deterministically.
		for l := nArgs; l < g.nLocals; l++ {
			fmt.Fprintf(&g.sb, "  const %d\n  store %d\n", g.rng.Intn(1000), l)
		}
		for s := 0; s < opts.Statements; s++ {
			g.statement(opts.Methods)
		}
		// Return a combination of locals.
		fmt.Fprintf(&g.sb, "  load %d\n  load %d\n  add\n  const 1048575\n  and\n  ret\n",
			g.rng.Intn(g.nLocals), g.rng.Intn(g.nLocals))
	}
	return vm.MustAssemble(g.sb.String())
}

func (g *randProgGen) local() int { return g.rng.Intn(g.nLocals) }
func (g *randProgGen) nextLabel() string {
	g.label++
	return fmt.Sprintf("L%d_%d", g.method, g.label)
}

// pushValue emits instructions leaving exactly one value on the stack.
func (g *randProgGen) pushValue() {
	switch g.rng.Intn(4) {
	case 0:
		fmt.Fprintf(&g.sb, "  const %d\n", g.rng.Intn(1<<16)-(1<<15))
	case 1:
		fmt.Fprintf(&g.sb, "  load %d\n", g.local())
	case 2:
		fmt.Fprintf(&g.sb, "  getstatic 0\n")
	default:
		fmt.Fprintf(&g.sb, "  load %d\n  const %d\n  xor\n", g.local(), g.rng.Intn(255))
	}
}

func (g *randProgGen) statement(nMethods int) {
	choice := g.rng.Intn(10)
	// Avoid deep nesting.
	if g.depth >= 2 && choice >= 7 {
		choice = g.rng.Intn(7)
	}
	switch choice {
	case 0, 1: // arithmetic: local = f(value, value)
		g.pushValue()
		g.pushValue()
		ops := []string{"add", "sub", "mul", "and", "or", "xor"}
		fmt.Fprintf(&g.sb, "  %s\n  store %d\n", ops[g.rng.Intn(len(ops))], g.local())
	case 2: // guarded division (denominator (x&7)+1 is never zero)
		g.pushValue()
		g.pushValue()
		fmt.Fprintf(&g.sb, "  const 7\n  and\n  const 1\n  add\n")
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "  div\n")
		} else {
			fmt.Fprintf(&g.sb, "  rem\n")
		}
		fmt.Fprintf(&g.sb, "  store %d\n", g.local())
	case 3: // static update
		g.pushValue()
		fmt.Fprintf(&g.sb, "  putstatic 0\n")
	case 4: // print
		g.pushValue()
		fmt.Fprintf(&g.sb, "  print\n")
	case 5: // shift with masked amount
		g.pushValue()
		fmt.Fprintf(&g.sb, "  const %d\n  shr\n  store %d\n", g.rng.Intn(8), g.local())
	case 6: // call a later method (the call graph is a DAG)
		if g.method+1 >= nMethods || g.depth > 0 || g.callsLeft == 0 {
			g.pushValue()
			fmt.Fprintf(&g.sb, "  pop\n")
			return
		}
		g.callsLeft--
		g.emitCall(nMethods)
	case 7: // if/else
		elseL, endL := g.nextLabel(), g.nextLabel()
		g.pushValue()
		conds := []string{"ifeq", "ifne", "iflt", "ifge", "ifgt", "ifle"}
		fmt.Fprintf(&g.sb, "  %s %s\n", conds[g.rng.Intn(len(conds))], elseL)
		g.depth++
		g.statement(nMethods)
		g.depth--
		fmt.Fprintf(&g.sb, "  goto %s\n%s:\n", endL, elseL)
		g.depth++
		g.statement(nMethods)
		g.depth--
		fmt.Fprintf(&g.sb, "%s:\n", endL)
	case 8: // counted loop, 1..6 iterations, on a reserved counter local
		loopVar := g.nLocals + g.depth
		headL, endL := g.nextLabel(), g.nextLabel()
		n := 1 + g.rng.Intn(6)
		fmt.Fprintf(&g.sb, "  const %d\n  store %d\n%s:\n  load %d\n  ifle %s\n",
			n, loopVar, headL, loopVar, endL)
		g.depth++
		g.statement(nMethods)
		g.depth--
		fmt.Fprintf(&g.sb, "  load %d\n  const 1\n  sub\n  store %d\n  goto %s\n%s:\n",
			loopVar, loopVar, headL, endL)
	default: // array round-trip with masked index
		arr := g.local()
		fmt.Fprintf(&g.sb, "  const 16\n  newarr\n  store %d\n", arr)
		fmt.Fprintf(&g.sb, "  load %d\n", arr)
		g.pushValue()
		fmt.Fprintf(&g.sb, "  const 15\n  and\n")
		g.pushValue()
		fmt.Fprintf(&g.sb, "  astore\n")
		fmt.Fprintf(&g.sb, "  load %d\n", arr)
		g.pushValue()
		fmt.Fprintf(&g.sb, "  const 15\n  and\n  aload\n  store %d\n", g.local())
	}
}

// emitCall invokes a later method under the arity convention: method m
// (m > 0) takes m%3 arguments (matching the generator's declaration).
func (g *randProgGen) emitCall(nMethods int) {
	if g.method+1 >= nMethods {
		return
	}
	callee := g.method + 1 + g.rng.Intn(nMethods-g.method-1)
	for a := 0; a < calleeArity(callee); a++ {
		g.pushValue()
	}
	fmt.Fprintf(&g.sb, "  call m%d\n", callee)
	fmt.Fprintf(&g.sb, "  store %d\n", g.local())
}

func calleeArity(m int) int { return m % 3 }
