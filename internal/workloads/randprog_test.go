package workloads

import (
	"testing"

	"pathmark/internal/vm"
)

func TestRandomProgramVerifiesAndTerminates(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := RandomProgram(RandProgOptions{Seed: seed})
		if err := vm.Verify(p); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		res, err := vm.Run(p, vm.RunOptions{StepLimit: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		// Deterministic.
		res2, err := vm.Run(p, vm.RunOptions{StepLimit: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !vm.SameBehavior(res, res2) {
			t.Fatalf("seed %d: nondeterministic", seed)
		}
	}
}

func TestRandomProgramDistinctPerSeed(t *testing.T) {
	a := RandomProgram(RandProgOptions{Seed: 1})
	b := RandomProgram(RandProgOptions{Seed: 2})
	if a.String() == b.String() {
		t.Error("different seeds produced identical programs")
	}
}

func TestRandomProgramSizes(t *testing.T) {
	small := RandomProgram(RandProgOptions{Seed: 3, Methods: 2, Statements: 5})
	big := RandomProgram(RandProgOptions{Seed: 3, Methods: 10, Statements: 60})
	if big.CodeSize() <= small.CodeSize()*3 {
		t.Errorf("size knobs ineffective: %d vs %d", small.CodeSize(), big.CodeSize())
	}
}

func TestRandomProgramDumpRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := RandomProgram(RandProgOptions{Seed: seed})
		p2, err := vm.Assemble(vm.Dump(p))
		if err != nil {
			t.Fatalf("seed %d: reassemble: %v", seed, err)
		}
		r1, err := vm.Run(p, vm.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := vm.Run(p2, vm.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !vm.SameBehavior(r1, r2) {
			t.Fatalf("seed %d: dump/assemble changed behavior", seed)
		}
	}
}
