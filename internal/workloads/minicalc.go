package workloads

import "pathmark/internal/vm"

// MiniCalc returns a stack-calculator interpreter written in VM assembly —
// the repository's closest analog to watermarking a real language
// interpreter (the paper's Jess is one): the *interpreted program arrives
// on the input stream*, so the dynamic branch trace genuinely depends on
// the secret input sequence — the property that makes dynamic watermarks
// keyed (§2: recognition executes the program on a particular secret input
// sequence).
//
// Input encoding (one int64 per token):
//
//	1 n  push literal n
//	2    add        3    sub        4    mul
//	5    dup        6    swap       9    drop
//	7    print      (emits the top of stack, which stays put)
//	8 k  loop: pop c; if c != 0, rewind the token cursor by k tokens
//	0    halt       (also on unknown opcode or exhausted input)
//
// The interpreter is defensive: the 64-slot operand stack saturates
// instead of overflowing, underflow pops yield 0, and a fuel counter
// bounds execution, so every input terminates. Loops rewind a recorded
// token history (the raw input stream cannot be re-read), giving
// interpreted programs real, input-dependent control flow.
func MiniCalc() *vm.Program {
	return vm.MustAssemble(miniCalcSrc)
}

// Interpreter state lives in statics so the helper methods can reach it:
// 0=stack ref, 1=sp, 2=fuel, 3=history ref, 4=hlen, 5=cursor.
const miniCalcSrc = `
statics 6
entry main

method main 0 2
  const 64
  newarr
  putstatic 0
  const 0
  putstatic 1
  const 20000
  putstatic 2
  const 4096
  newarr
  putstatic 3
  const 0
  putstatic 4
  const 0
  putstatic 5

loop:
  getstatic 2
  ifle halt
  getstatic 2
  const 1
  sub
  putstatic 2

  call nexttoken
  store 0

  load 0
  ifeq halt
  load 0
  const 1
  ifcmpeq do_push
  load 0
  const 2
  ifcmpeq do_add
  load 0
  const 3
  ifcmpeq do_sub
  load 0
  const 4
  ifcmpeq do_mul
  load 0
  const 5
  ifcmpeq do_dup
  load 0
  const 6
  ifcmpeq do_swap
  load 0
  const 7
  ifcmpeq do_print
  load 0
  const 8
  ifcmpeq do_loop
  load 0
  const 9
  ifcmpeq do_drop
  goto halt

do_push:
  call nexttoken
  call push
  pop
  goto loop

do_add:
  call popv
  call popv
  add
  call push
  pop
  goto loop

do_sub:
  call popv
  store 1
  call popv
  load 1
  sub
  call push
  pop
  goto loop

do_mul:
  call popv
  call popv
  mul
  call push
  pop
  goto loop

do_dup:
  call popv
  store 1
  load 1
  call push
  pop
  load 1
  call push
  pop
  goto loop

do_swap:
  call popv
  store 0
  call popv
  store 1
  load 0
  call push
  pop
  load 1
  call push
  pop
  goto loop

do_print:
  call popv
  dup
  print
  call push
  pop
  goto loop

do_loop:
  call nexttoken
  store 0
  call popv
  ifeq loop
  getstatic 5
  load 0
  sub
  putstatic 5
  getstatic 5
  ifge loop
  const 0
  putstatic 5
  goto loop

do_drop:
  call popv
  pop
  goto loop

halt:
  getstatic 1
  print
  getstatic 1
  ret

; push(v): saturating push; returns 0.
method push 1 1
  getstatic 1
  const 64
  ifcmpge pfull
  getstatic 0
  getstatic 1
  load 0
  astore
  getstatic 1
  const 1
  add
  putstatic 1
pfull:
  const 0
  ret

; popv(): pop, or 0 on underflow.
method popv 0 1
  getstatic 1
  ifle puscore
  getstatic 1
  const 1
  sub
  putstatic 1
  getstatic 0
  getstatic 1
  aload
  ret
puscore:
  const 0
  ret

; nexttoken(): replay recorded history at the cursor, else read fresh
; input, record it, advance. Returns the token.
method nexttoken 0 1
  getstatic 5
  getstatic 4
  ifcmplt replay
  in
  store 0
  getstatic 4
  const 4096
  ifcmpge nospace
  getstatic 3
  getstatic 4
  load 0
  astore
  getstatic 4
  const 1
  add
  putstatic 4
nospace:
  getstatic 4
  putstatic 5
  load 0
  ret
replay:
  getstatic 3
  getstatic 5
  aload
  store 0
  getstatic 5
  const 1
  add
  putstatic 5
  load 0
  ret
`

// CalcProgram helpers: token streams for MiniCalc.

// CalcSum returns a MiniCalc program computing and printing a+b.
func CalcSum(a, b int64) []int64 {
	return []int64{1, a, 1, b, 2, 7, 0}
}

// CalcFactorial returns a MiniCalc program printing n! as a straight-line
// multiply chain. Expected output: [n!, 1].
func CalcFactorial(n int64) []int64 {
	prog := []int64{1, 1} // acc = 1
	for i := int64(2); i <= n; i++ {
		prog = append(prog, 1, i, 4) // push i; mul
	}
	prog = append(prog, 7, 0)
	return prog
}

// CalcCountdown returns a MiniCalc program that prints n, n-1, ..., 1
// using the rewind loop. Expected output: [n, n-1, ..., 1, 1] (the final 1
// is the interpreter's stack-depth report at halt).
func CalcCountdown(n int64) []int64 {
	// push n; L: print; push 1; sub; dup; rewind 7 while tos != 0; halt.
	return []int64{1, n, 7, 1, 1, 3, 5, 8, 7, 0}
}
