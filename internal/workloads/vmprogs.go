// Package workloads provides the benchmark programs the experiments run:
//
//   - GCD: the paper's Figure 2 demonstration program;
//   - CaffeineMark: a microbenchmark suite shaped like the CaffeineMark
//     harness of §5.1 — small, with a high fraction of hot code;
//   - JessLike: a generated large program shaped like SpecJVM's Jess —
//     several hundred mostly-cold straight-line methods plus a small hot
//     kernel, giving the low branch-execution density that makes random
//     insertion points land in cold code;
//   - ten SPEC-int-2000-named native kernels (nativeprogs.go) with
//     distinct computational shapes and separate train/ref inputs.
package workloads

import (
	"fmt"
	"math/rand"
	"strings"

	"pathmark/internal/vm"
)

// GCD returns the Figure 2 greatest-common-divisor program; it prints and
// returns gcd(25, 10) = 5.
func GCD() *vm.Program {
	return vm.MustAssemble(`
statics 0
entry main
method main 0 2
  const 25
  store 0
  const 10
  store 1
loop:
  load 0
  load 1
  rem
  ifeq done
  load 1
  load 0
  load 1
  rem
  store 1
  store 0
  goto loop
done:
  load 1
  print
  load 1
  ret
`)
}

// CaffeineMark returns the microbenchmark suite: six kernels (sieve, loop,
// logic, string, method, float) whose scores are printed individually and
// summed. Nearly all of its code is hot, mirroring the real CaffeineMark's
// profile (§5.1.1: "a high percentage of the instructions ... are executed
// frequently").
func CaffeineMark() *vm.Program {
	return vm.MustAssemble(caffeineMarkSrc)
}

const caffeineMarkSrc = `
statics 1
entry main

method main 0 1
  call sieve
  dup
  print
  call loopmark
  dup
  print
  add
  call logic
  dup
  print
  add
  call stringmark
  dup
  print
  add
  call methodmark
  dup
  print
  add
  call floatmark
  dup
  print
  add
  dup
  print
  ret

; SieveMark: count primes below 1000.
method sieve 0 4
  const 1000
  newarr
  store 0
  const 2
  store 1
outer:
  load 1
  const 1000
  ifcmpge done
  load 0
  load 1
  aload
  ifne next
  load 3
  const 1
  add
  store 3
  load 1
  const 2
  mul
  store 2
inner:
  load 2
  const 1000
  ifcmpge next
  load 0
  load 2
  const 1
  astore
  load 2
  load 1
  add
  store 2
  goto inner
next:
  load 1
  const 1
  add
  store 1
  goto outer
done:
  load 3
  ret

; LoopMark: nested counted loops.
method loopmark 0 3
  const 0
  store 0
  const 0
  store 1
l1:
  load 1
  const 120
  ifcmpge end
  const 0
  store 2
l2:
  load 2
  const 80
  ifcmpge l1inc
  load 0
  load 1
  load 2
  mul
  add
  store 0
  load 2
  const 1
  add
  store 2
  goto l2
l1inc:
  load 1
  const 1
  add
  store 1
  goto l1
end:
  load 0
  const 1048575
  and
  ret

; LogicMark: boolean and shift operations.
method logic 0 2
  const 4660
  store 0
  const 0
  store 1
ll:
  load 1
  const 4000
  ifcmpge ldone
  load 0
  const 13
  xor
  load 1
  or
  store 0
  load 0
  const 1
  shl
  const 65535
  and
  store 0
  load 1
  const 1
  add
  store 1
  goto ll
ldone:
  load 0
  ret

; StringMark: build, reverse, and checksum a character array.
method stringmark 0 5
  const 256
  newarr
  store 0
  const 0
  store 1
build:
  load 1
  const 256
  ifcmpge rev
  load 0
  load 1
  load 1
  const 7
  mul
  const 31
  add
  const 255
  and
  astore
  load 1
  const 1
  add
  store 1
  goto build
rev:
  const 0
  store 1
  const 255
  store 2
revloop:
  load 1
  load 2
  ifcmpge sum
  load 0
  load 1
  aload
  store 3
  load 0
  load 1
  load 0
  load 2
  aload
  astore
  load 0
  load 2
  load 3
  astore
  load 1
  const 1
  add
  store 1
  load 2
  const 1
  sub
  store 2
  goto revloop
sum:
  const 0
  store 4
  const 0
  store 1
sumloop:
  load 1
  const 256
  ifcmpge sdone
  load 4
  load 0
  load 1
  aload
  add
  store 4
  load 1
  const 1
  add
  store 1
  goto sumloop
sdone:
  load 4
  ret

; MethodMark: recursive call overhead (fib).
method methodmark 0 0
  const 17
  call fib
  ret
method fib 1 1
  load 0
  const 2
  ifcmplt fbase
  load 0
  const 1
  sub
  call fib
  load 0
  const 2
  sub
  call fib
  add
  ret
fbase:
  load 0
  ret

; FloatMark: fixed-point (16.16) multiply-accumulate.
method floatmark 0 3
  const 65536
  store 0
  const 0
  store 1
  const 0
  store 2
fl:
  load 1
  const 3000
  ifcmpge fdone
  load 0
  const 65543
  mul
  const 16
  shr
  store 0
  load 0
  const 16777215
  and
  store 0
  load 2
  load 0
  add
  store 2
  load 1
  const 1
  add
  store 1
  goto fl
fdone:
  load 2
  const 1048575
  and
  ret
`

// JessLikeOptions sizes the generated large program.
type JessLikeOptions struct {
	Methods     int // number of cold straight-line methods (default 120)
	BlockSize   int // arithmetic instructions per method (default 220)
	HotIters    int // iterations of the small hot kernel (default 400)
	BranchEvery int // one data-dependent branch per this many instrs (default 45)
	Seed        int64
}

func (o *JessLikeOptions) defaults() {
	if o.Methods == 0 {
		o.Methods = 120
	}
	if o.BlockSize == 0 {
		o.BlockSize = 220
	}
	if o.HotIters == 0 {
		o.HotIters = 400
	}
	if o.BranchEvery == 0 {
		o.BranchEvery = 45
	}
}

// JessLike generates the large mostly-cold program. Every generated method
// executes exactly once (like Jess's rule-network setup code); only the
// small `hot` kernel loops. The program prints a deterministic checksum.
func JessLike(opts JessLikeOptions) *vm.Program {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	var sb strings.Builder
	sb.WriteString("statics 1\nentry main\n")

	// main: acc = 0; for each method m_i: acc += m_i(i); acc += hot(); print acc.
	sb.WriteString("method main 0 1\n  const 0\n  store 0\n")
	for i := 0; i < opts.Methods; i++ {
		fmt.Fprintf(&sb, "  load 0\n  const %d\n  call m%d\n  add\n  store 0\n", i*7+1, i)
	}
	sb.WriteString("  load 0\n  call hot\n  add\n  store 0\n  load 0\n  print\n  load 0\n  ret\n")

	// hot: small loop kernel.
	fmt.Fprintf(&sb, `method hot 0 3
  const 0
  store 0
  const 0
  store 1
hl:
  load 1
  const %d
  ifcmpge hdone
  load 0
  load 1
  const 3
  mul
  add
  const 1048575
  and
  store 0
  load 1
  const 1
  add
  store 1
  goto hl
hdone:
  load 0
  ret
`, opts.HotIters)

	// Cold methods: long straight-line arithmetic with sparse branches.
	for i := 0; i < opts.Methods; i++ {
		fmt.Fprintf(&sb, "method m%d 1 4\n", i)
		// Initialize locals from the argument.
		sb.WriteString("  load 0\n  store 1\n  load 0\n  const 3\n  mul\n  store 2\n  const 0\n  store 3\n")
		sinceBranch := 0
		branchSerial := 0
		for j := 0; j < opts.BlockSize; j++ {
			r := rng.Intn(6)
			v := rng.Intn(1 << 12)
			switch r {
			case 0:
				fmt.Fprintf(&sb, "  load 1\n  const %d\n  add\n  store 1\n", v)
			case 1:
				fmt.Fprintf(&sb, "  load 2\n  const %d\n  xor\n  store 2\n", v)
			case 2:
				fmt.Fprintf(&sb, "  load 1\n  load 2\n  add\n  const 16777215\n  and\n  store 1\n")
			case 3:
				fmt.Fprintf(&sb, "  load 2\n  const %d\n  mul\n  const 16777215\n  and\n  store 2\n", v|1)
			case 4:
				fmt.Fprintf(&sb, "  load 3\n  load 1\n  add\n  store 3\n")
			default:
				fmt.Fprintf(&sb, "  load 1\n  const %d\n  or\n  const 1\n  shr\n  store 1\n", v)
			}
			sinceBranch += 4
			if sinceBranch >= opts.BranchEvery {
				sinceBranch = 0
				// Data-dependent but deterministic branch.
				fmt.Fprintf(&sb, "  load 1\n  const %d\n  and\n  ifeq b%d_%d\n  load 3\n  const 1\n  add\n  store 3\nb%d_%d:\n",
					1<<uint(rng.Intn(8)), i, branchSerial, i, branchSerial)
				branchSerial++
			}
		}
		sb.WriteString("  load 1\n  load 2\n  add\n  load 3\n  add\n  const 1048575\n  and\n  ret\n")
	}
	return vm.MustAssemble(sb.String())
}
