package workloads

import (
	"pathmark/internal/isa"
)

// NativeKernel is one SPEC-int-2000-named benchmark for the native side,
// with separate training and reference inputs (the paper profiles with
// SPEC train inputs and evaluates with ref inputs, §5.2).
type NativeKernel struct {
	Name       string
	Unit       *isa.Unit
	TrainInput []int64
	RefInput   []int64
}

// heapBase is scratch memory above the data section used by the kernels.
const heapBase uint32 = 0x0a000000

// lcg advances reg through a linear congruential generator (the kernels'
// deterministic pseudo-random source).
func lcg(b *isa.Builder, reg byte) {
	b.MulImm(reg, 1664525)
	b.AddImm(reg, 1013904223)
}

// kernelEpilogue emits the shared cold tail: a data-dependent cold branch
// region whose unconditional jumps (tamper-proofing candidates) guard the
// program's output — corrupting them diverts control before anything is
// emitted, so a bypassed branch function visibly breaks the run. eax holds
// the checksum to report.
func kernelEpilogue(b *isa.Builder) {
	b.MovReg(isa.EBX, isa.EAX)
	b.AndImm(isa.EBX, 1)
	b.CmpImm(isa.EBX, 0)
	b.Je("even_tail")
	b.MovImm(isa.ECX, 111)
	b.Jmp("tail_emit") // cold unconditional jmp (candidate)
	b.Label("even_tail").MovImm(isa.ECX, 222)
	b.Jmp("tail_emit") // cold unconditional jmp (candidate)
	b.Label("tail_emit").Out(isa.EAX)
	b.Out(isa.ECX)
	b.Hlt()
}

// kernelPrologue emits the shared skeleton: the begin→end edge (an
// executed unconditional jmp) and the input read. esi := scale input.
func kernelPrologue(b *isa.Builder) {
	b.Jmp("start") // the begin→end edge the embedder splits
	b.Label("start").In(isa.ESI)
}

// Bzip2Like: run-length statistics over a pseudo-random small-alphabet
// buffer (compression-shaped: generate, scan runs, count).
func Bzip2Like() NativeKernel {
	b := isa.NewBuilder()
	kernelPrologue(b)
	b.MovImm(isa.EAX, 12345)
	b.MovImm(isa.ECX, 0)
	b.Label("gen").Cmp(isa.ECX, isa.ESI)
	b.Jge("genend")
	lcg(b, isa.EAX)
	b.MovReg(isa.EBX, isa.EAX)
	b.ShrImm(isa.EBX, 16)
	b.AndImm(isa.EBX, 3)
	b.StoreIdx(heapBase, isa.ECX, 4, isa.EBX)
	b.AddImm(isa.ECX, 1)
	b.Jmp("gen")
	b.Label("genend").MovImm(isa.EDX, 1) // run count
	b.MovImm(isa.ECX, 0)
	b.LoadIdx(isa.EDI, heapBase, isa.ECX, 4) // prev = buf[0]
	b.MovImm(isa.ECX, 1)
	b.Label("scan").Cmp(isa.ECX, isa.ESI)
	b.Jge("scanend")
	b.LoadIdx(isa.EBX, heapBase, isa.ECX, 4)
	b.Cmp(isa.EBX, isa.EDI)
	b.Je("same")
	b.AddImm(isa.EDX, 1)
	b.MovReg(isa.EDI, isa.EBX)
	b.Label("same").AddImm(isa.ECX, 1)
	b.Jmp("scan")
	b.Label("scanend").MovReg(isa.EAX, isa.EDX)
	kernelEpilogue(b)
	return NativeKernel{Name: "bzip2", Unit: b.Unit(),
		TrainInput: []int64{600}, RefInput: []int64{60000}}
}

// CraftyLike: bitboard population counts and shifted attacks
// (chess-engine-shaped: tight bit manipulation loops).
func CraftyLike() NativeKernel {
	b := isa.NewBuilder()
	kernelPrologue(b)
	b.MovImm(isa.EAX, 0) // checksum
	b.MovImm(isa.EDX, 0x9e3779b9)
	b.MovImm(isa.ECX, 0)
	b.Label("boards").Cmp(isa.ECX, isa.ESI)
	b.Jge("bdone")
	lcg(b, isa.EDX)
	b.MovReg(isa.EBX, isa.EDX) // bitboard
	// popcount: while ebx != 0 { ebx &= ebx-1; eax++ }
	b.Label("pop").CmpImm(isa.EBX, 0)
	b.Je("popdone")
	b.MovReg(isa.EDI, isa.EBX)
	b.SubImm(isa.EDI, 1)
	b.And(isa.EBX, isa.EDI)
	b.AddImm(isa.EAX, 1)
	b.Jmp("pop")
	b.Label("popdone").MovReg(isa.EBX, isa.EDX)
	// fold shifted "attack" masks into the checksum.
	b.ShlImm(isa.EBX, 7)
	b.Xor(isa.EAX, isa.EBX)
	b.MovReg(isa.EBX, isa.EDX)
	b.ShrImm(isa.EBX, 9)
	b.Xor(isa.EAX, isa.EBX)
	b.AndImm(isa.EAX, 0xffffff)
	b.AddImm(isa.ECX, 1)
	b.Jmp("boards")
	b.Label("bdone")
	kernelEpilogue(b)
	return NativeKernel{Name: "crafty", Unit: b.Unit(),
		TrainInput: []int64{400}, RefInput: []int64{40000}}
}

// GapLike: iterated permutation composition over a fixed group
// (computer-algebra-shaped).
func GapLike() NativeKernel {
	const n = 64
	b := isa.NewBuilder()
	kernelPrologue(b)
	// perm[i] = (i*13+7) mod 64 at heapBase; work[i] at heapBase+256.
	b.MovImm(isa.ECX, 0)
	b.Label("init").CmpImm(isa.ECX, n)
	b.Jge("initdone")
	b.MovReg(isa.EBX, isa.ECX)
	b.MulImm(isa.EBX, 13)
	b.AddImm(isa.EBX, 7)
	b.AndImm(isa.EBX, n-1)
	b.StoreIdx(heapBase, isa.ECX, 4, isa.EBX)
	b.StoreIdx(heapBase+4*n, isa.ECX, 4, isa.ECX) // identity
	b.AddImm(isa.ECX, 1)
	b.Jmp("init")
	b.Label("initdone").MovImm(isa.EDX, 0) // iteration
	b.Label("compose").Cmp(isa.EDX, isa.ESI)
	b.Jge("cdone")
	b.MovImm(isa.ECX, 0)
	b.Label("inner").CmpImm(isa.ECX, n)
	b.Jge("idone")
	b.LoadIdx(isa.EBX, heapBase+4*n, isa.ECX, 4) // work[i]
	b.LoadIdx(isa.EDI, heapBase, isa.EBX, 4)     // perm[work[i]]
	b.StoreIdx(heapBase+8*n, isa.ECX, 4, isa.EDI)
	b.AddImm(isa.ECX, 1)
	b.Jmp("inner")
	b.Label("idone").MovImm(isa.ECX, 0)
	b.Label("copy").CmpImm(isa.ECX, n)
	b.Jge("copydone")
	b.LoadIdx(isa.EDI, heapBase+8*n, isa.ECX, 4)
	b.StoreIdx(heapBase+4*n, isa.ECX, 4, isa.EDI)
	b.AddImm(isa.ECX, 1)
	b.Jmp("copy")
	b.Label("copydone").AddImm(isa.EDX, 1)
	b.Jmp("compose")
	b.Label("cdone").MovImm(isa.EAX, 0)
	b.MovImm(isa.ECX, 0)
	b.Label("sum").CmpImm(isa.ECX, n)
	b.Jge("sumdone")
	b.LoadIdx(isa.EBX, heapBase+4*n, isa.ECX, 4)
	b.MulImm(isa.EBX, 31)
	b.Add(isa.EAX, isa.EBX)
	b.AddImm(isa.ECX, 1)
	b.Jmp("sum")
	b.Label("sumdone")
	kernelEpilogue(b)
	return NativeKernel{Name: "gap", Unit: b.Unit(),
		TrainInput: []int64{50}, RefInput: []int64{5000}}
}

// GccLike: greedy graph coloring over a synthetic interference graph
// (compiler-shaped: irregular data-dependent control flow).
func GccLike() NativeKernel {
	const n = 48
	b := isa.NewBuilder()
	kernelPrologue(b)
	// adjacency bitmask rows at heapBase (n words); colors at +4n.
	b.MovImm(isa.EDX, 777)
	b.MovImm(isa.ECX, 0)
	b.Label("ginit").CmpImm(isa.ECX, n)
	b.Jge("ginitd")
	lcg(b, isa.EDX)
	b.MovReg(isa.EBX, isa.EDX)
	// Sparsify with the scale: row = lcg & (lcg >> input-dependent shift)
	b.MovReg(isa.EDI, isa.EBX)
	b.ShrImm(isa.EDI, 3)
	b.And(isa.EBX, isa.EDI)
	b.StoreIdx(heapBase, isa.ECX, 4, isa.EBX)
	b.AddImm(isa.ECX, 1)
	b.Jmp("ginit")
	b.Label("ginitd").MovImm(isa.EAX, 0) // checksum
	b.MovImm(isa.EBP, 0)                 // round counter
	b.Label("rounds").Cmp(isa.EBP, isa.ESI)
	b.Jge("rdone")
	b.MovImm(isa.ECX, 0)
	b.Label("color").CmpImm(isa.ECX, n)
	b.Jge("cdone2")
	b.LoadIdx(isa.EBX, heapBase, isa.ECX, 4) // neighbor mask
	// find lowest color bit not in mask: edi = 1; while edi & ebx: edi <<= 1
	b.MovImm(isa.EDI, 1)
	b.Label("probe").MovReg(isa.EDX, isa.EDI)
	b.And(isa.EDX, isa.EBX)
	b.CmpImm(isa.EDX, 0)
	b.Je("found")
	b.ShlImm(isa.EDI, 1)
	b.Jmp("probe")
	b.Label("found").StoreIdx(heapBase+4*n, isa.ECX, 4, isa.EDI)
	b.Add(isa.EAX, isa.EDI)
	b.AndImm(isa.EAX, 0xffffff)
	b.AddImm(isa.ECX, 1)
	b.Jmp("color")
	b.Label("cdone2").AddImm(isa.EBP, 1)
	b.Jmp("rounds")
	b.Label("rdone")
	kernelEpilogue(b)
	return NativeKernel{Name: "gcc", Unit: b.Unit(),
		TrainInput: []int64{40}, RefInput: []int64{4000}}
}

// GzipLike: rolling-hash match finding (LZ-shaped: hash, probe, count
// matches).
func GzipLike() NativeKernel {
	b := isa.NewBuilder()
	kernelPrologue(b)
	// buffer of esi pseudo-bytes at heapBase; 256-entry hash table at +heapBase2.
	const tableBase = heapBase + 0x40000
	b.MovImm(isa.EAX, 99)
	b.MovImm(isa.ECX, 0)
	b.Label("gen").Cmp(isa.ECX, isa.ESI)
	b.Jge("gend")
	lcg(b, isa.EAX)
	b.MovReg(isa.EBX, isa.EAX)
	b.ShrImm(isa.EBX, 20)
	b.AndImm(isa.EBX, 15)
	b.StoreIdx(heapBase, isa.ECX, 4, isa.EBX)
	b.AddImm(isa.ECX, 1)
	b.Jmp("gen")
	b.Label("gend").MovImm(isa.EDX, 0) // match count
	b.MovImm(isa.ECX, 2)
	b.Label("scan").Cmp(isa.ECX, isa.ESI)
	b.Jge("sdone")
	// h = (b[i-2]*17 + b[i-1]*5 + b[i]) & 255
	b.MovReg(isa.EBX, isa.ECX)
	b.SubImm(isa.EBX, 2)
	b.LoadIdx(isa.EDI, heapBase, isa.EBX, 4)
	b.MulImm(isa.EDI, 17)
	b.AddImm(isa.EBX, 1)
	b.LoadIdx(isa.EBP, heapBase, isa.EBX, 4)
	b.MulImm(isa.EBP, 5)
	b.Add(isa.EDI, isa.EBP)
	b.LoadIdx(isa.EBP, heapBase, isa.ECX, 4)
	b.Add(isa.EDI, isa.EBP)
	b.AndImm(isa.EDI, 255)
	// probe: if table[h] == current byte triple head, count a match
	b.LoadIdx(isa.EBX, tableBase, isa.EDI, 4)
	b.Cmp(isa.EBX, isa.EBP)
	b.Jne("nomatch")
	b.AddImm(isa.EDX, 1)
	b.Label("nomatch").StoreIdx(tableBase, isa.EDI, 4, isa.EBP)
	b.AddImm(isa.ECX, 1)
	b.Jmp("scan")
	b.Label("sdone").MovReg(isa.EAX, isa.EDX)
	kernelEpilogue(b)
	return NativeKernel{Name: "gzip", Unit: b.Unit(),
		TrainInput: []int64{600}, RefInput: []int64{60000}}
}

// McfLike: Bellman-Ford relaxation over a ring-with-chords graph
// (network-simplex-shaped: pointer-chasing-ish loads).
func McfLike() NativeKernel {
	const n = 64
	b := isa.NewBuilder()
	kernelPrologue(b)
	// dist[] at heapBase; init to large.
	b.MovImm(isa.ECX, 0)
	b.Label("dinit").CmpImm(isa.ECX, n)
	b.Jge("dinitd")
	b.MovImm(isa.EBX, 1<<20)
	b.StoreIdx(heapBase, isa.ECX, 4, isa.EBX)
	b.AddImm(isa.ECX, 1)
	b.Jmp("dinit")
	b.Label("dinitd").MovImm(isa.EBX, 0)
	b.MovImm(isa.ECX, 0)
	b.StoreIdx(heapBase, isa.ECX, 4, isa.EBX) // dist[0] = 0
	b.MovImm(isa.EBP, 0)
	b.Label("pass").Cmp(isa.EBP, isa.ESI)
	b.Jge("pdone")
	b.MovImm(isa.ECX, 0)
	b.Label("relax").CmpImm(isa.ECX, n)
	b.Jge("rdone2")
	b.LoadIdx(isa.EBX, heapBase, isa.ECX, 4) // d = dist[i]
	// ring edge i -> (i+1)%n, weight (i%7)+1
	b.MovReg(isa.EDI, isa.ECX)
	b.MovImm(isa.EDX, 7)
	b.UMod(isa.EDI, isa.EDX)
	b.AddImm(isa.EDI, 1)
	b.Add(isa.EDI, isa.EBX) // cand = d + w
	b.MovReg(isa.EDX, isa.ECX)
	b.AddImm(isa.EDX, 1)
	b.AndImm(isa.EDX, n-1)
	b.LoadIdx(isa.EBX, heapBase, isa.EDX, 4)
	b.Cmp(isa.EDI, isa.EBX)
	b.Jge("nochord")
	b.StoreIdx(heapBase, isa.EDX, 4, isa.EDI)
	b.Label("nochord")
	// chord edge i -> (i*3+1)%n, weight 9
	b.LoadIdx(isa.EBX, heapBase, isa.ECX, 4)
	b.MovReg(isa.EDI, isa.EBX)
	b.AddImm(isa.EDI, 9)
	b.MovReg(isa.EDX, isa.ECX)
	b.MulImm(isa.EDX, 3)
	b.AddImm(isa.EDX, 1)
	b.AndImm(isa.EDX, n-1)
	b.LoadIdx(isa.EBX, heapBase, isa.EDX, 4)
	b.Cmp(isa.EDI, isa.EBX)
	b.Jge("skipchord")
	b.StoreIdx(heapBase, isa.EDX, 4, isa.EDI)
	b.Label("skipchord").AddImm(isa.ECX, 1)
	b.Jmp("relax")
	b.Label("rdone2").AddImm(isa.EBP, 1)
	b.Jmp("pass")
	b.Label("pdone").MovImm(isa.EAX, 0)
	b.MovImm(isa.ECX, 0)
	b.Label("acc").CmpImm(isa.ECX, n)
	b.Jge("accd")
	b.LoadIdx(isa.EBX, heapBase, isa.ECX, 4)
	b.Add(isa.EAX, isa.EBX)
	b.AddImm(isa.ECX, 1)
	b.Jmp("acc")
	b.Label("accd").AndImm(isa.EAX, 0xffffff)
	kernelEpilogue(b)
	return NativeKernel{Name: "mcf", Unit: b.Unit(),
		TrainInput: []int64{30}, RefInput: []int64{3000}}
}

// ParserLike: a token-classifying state machine over pseudo-text
// (parser-shaped: dense unpredictable branching).
func ParserLike() NativeKernel {
	b := isa.NewBuilder()
	kernelPrologue(b)
	b.MovImm(isa.EAX, 0) // checksum
	b.MovImm(isa.EDX, 424242)
	b.MovImm(isa.EBP, 0) // state
	b.MovImm(isa.ECX, 0)
	b.Label("tok").Cmp(isa.ECX, isa.ESI)
	b.Jge("tdone")
	lcg(b, isa.EDX)
	b.MovReg(isa.EBX, isa.EDX)
	b.ShrImm(isa.EBX, 24)
	b.AndImm(isa.EBX, 127) // "character"
	// classify: letter (>=65), digit (48..57), space (32), other
	b.CmpImm(isa.EBX, 65)
	b.Jge("letter")
	b.CmpImm(isa.EBX, 48)
	b.Jl("space_or_other")
	b.CmpImm(isa.EBX, 58)
	b.Jge("space_or_other")
	// digit: state 2, checksum += char
	b.MovImm(isa.EBP, 2)
	b.Add(isa.EAX, isa.EBX)
	b.Jmp("next")
	b.Label("letter").CmpImm(isa.EBP, 1)
	b.Je("cont_word")
	b.MovImm(isa.EBP, 1)
	b.AddImm(isa.EAX, 1000) // new word
	b.Jmp("next")
	b.Label("cont_word").AddImm(isa.EAX, 1)
	b.Jmp("next")
	b.Label("space_or_other").CmpImm(isa.EBX, 32)
	b.Jne("other")
	b.MovImm(isa.EBP, 0)
	b.Jmp("next")
	b.Label("other").MovReg(isa.EDI, isa.EBX)
	b.ShlImm(isa.EDI, 2)
	b.Xor(isa.EAX, isa.EDI)
	b.Label("next").AndImm(isa.EAX, 0xffffff)
	b.AddImm(isa.ECX, 1)
	b.Jmp("tok")
	b.Label("tdone")
	kernelEpilogue(b)
	return NativeKernel{Name: "parser", Unit: b.Unit(),
		TrainInput: []int64{500}, RefInput: []int64{50000}}
}

// TwolfLike: annealing-style cost improvement with deterministic
// pseudo-random swaps (placement-shaped).
func TwolfLike() NativeKernel {
	const cells = 32
	b := isa.NewBuilder()
	kernelPrologue(b)
	// positions at heapBase: pos[i] = i initially.
	b.MovImm(isa.ECX, 0)
	b.Label("pinit").CmpImm(isa.ECX, cells)
	b.Jge("pinitd")
	b.StoreIdx(heapBase, isa.ECX, 4, isa.ECX)
	b.AddImm(isa.ECX, 1)
	b.Jmp("pinit")
	b.Label("pinitd").MovImm(isa.EDX, 31337)
	b.MovImm(isa.EBP, 0)
	b.Label("anneal").Cmp(isa.EBP, isa.ESI)
	b.Jge("adone")
	lcg(b, isa.EDX)
	b.MovReg(isa.EBX, isa.EDX)
	b.ShrImm(isa.EBX, 8)
	b.AndImm(isa.EBX, cells-1) // i
	b.MovReg(isa.ECX, isa.EDX)
	b.ShrImm(isa.ECX, 16)
	b.AndImm(isa.ECX, cells-1) // j
	// swap if pos[i] > pos[j] (sorting-by-annealing)
	b.LoadIdx(isa.EDI, heapBase, isa.EBX, 4)
	b.LoadIdx(isa.EAX, heapBase, isa.ECX, 4)
	b.Cmp(isa.EDI, isa.EAX)
	b.Jle("noswap")
	b.StoreIdx(heapBase, isa.EBX, 4, isa.EAX)
	b.StoreIdx(heapBase, isa.ECX, 4, isa.EDI)
	b.Label("noswap").AddImm(isa.EBP, 1)
	b.Jmp("anneal")
	b.Label("adone").MovImm(isa.EAX, 0)
	b.MovImm(isa.ECX, 0)
	b.Label("cost").CmpImm(isa.ECX, cells)
	b.Jge("costd")
	b.LoadIdx(isa.EBX, heapBase, isa.ECX, 4)
	b.MovReg(isa.EDI, isa.ECX)
	b.MulImm(isa.EDI, 3)
	b.Mul(isa.EBX, isa.EDI)
	b.Add(isa.EAX, isa.EBX)
	b.AddImm(isa.ECX, 1)
	b.Jmp("cost")
	b.Label("costd").AndImm(isa.EAX, 0xffffff)
	kernelEpilogue(b)
	return NativeKernel{Name: "twolf", Unit: b.Unit(),
		TrainInput: []int64{300}, RefInput: []int64{30000}}
}

// VortexLike: hash-table database insert/lookup mix (OO-database-shaped).
func VortexLike() NativeKernel {
	const slots = 128
	b := isa.NewBuilder()
	kernelPrologue(b)
	b.MovImm(isa.EDX, 55555)
	b.MovImm(isa.EAX, 0) // hit counter / checksum
	b.MovImm(isa.EBP, 0)
	b.Label("ops").Cmp(isa.EBP, isa.ESI)
	b.Jge("odone")
	lcg(b, isa.EDX)
	b.MovReg(isa.EBX, isa.EDX)
	b.ShrImm(isa.EBX, 10)
	b.AndImm(isa.EBX, slots-1) // slot
	b.MovReg(isa.EDI, isa.EDX)
	b.ShrImm(isa.EDI, 3)
	b.AndImm(isa.EDI, 1) // op: 0 = insert, 1 = lookup
	b.CmpImm(isa.EDI, 0)
	b.Jne("lookup")
	b.MovReg(isa.ECX, isa.EDX)
	b.ShrImm(isa.ECX, 18)
	b.AndImm(isa.ECX, 1023)
	b.StoreIdx(heapBase, isa.EBX, 4, isa.ECX)
	b.Jmp("opnext")
	b.Label("lookup").LoadIdx(isa.ECX, heapBase, isa.EBX, 4)
	b.CmpImm(isa.ECX, 0)
	b.Je("miss")
	b.AddImm(isa.EAX, 1)
	b.Add(isa.EAX, isa.ECX)
	b.AndImm(isa.EAX, 0xffffff)
	b.Jmp("opnext")
	b.Label("miss").AddImm(isa.EAX, 3)
	b.Label("opnext").AddImm(isa.EBP, 1)
	b.Jmp("ops")
	b.Label("odone")
	kernelEpilogue(b)
	return NativeKernel{Name: "vortex", Unit: b.Unit(),
		TrainInput: []int64{500}, RefInput: []int64{50000}}
}

// VprLike: grid placement wirelength improvement sweeps (FPGA-shaped).
func VprLike() NativeKernel {
	const grid = 16
	b := isa.NewBuilder()
	kernelPrologue(b)
	// net endpoints: net i connects cell i and cell (i*5+3)%(grid*grid).
	b.MovImm(isa.EAX, 0)
	b.MovImm(isa.EBP, 0)
	b.Label("sweep").Cmp(isa.EBP, isa.ESI)
	b.Jge("swdone")
	b.MovImm(isa.ECX, 0)
	b.Label("nets").CmpImm(isa.ECX, grid*grid)
	b.Jge("netsd")
	b.MovReg(isa.EBX, isa.ECX)
	b.MulImm(isa.EBX, 5)
	b.AddImm(isa.EBX, 3)
	b.AndImm(isa.EBX, grid*grid-1)
	// manhattan distance between (x1,y1) and (x2,y2)
	b.MovReg(isa.EDI, isa.ECX)
	b.AndImm(isa.EDI, grid-1) // x1
	b.MovReg(isa.EDX, isa.EBX)
	b.AndImm(isa.EDX, grid-1) // x2
	b.Cmp(isa.EDI, isa.EDX)
	b.Jge("dx_pos")
	b.Sub(isa.EDX, isa.EDI)
	b.Add(isa.EAX, isa.EDX)
	b.Jmp("dy")
	b.Label("dx_pos").Sub(isa.EDI, isa.EDX)
	b.Add(isa.EAX, isa.EDI)
	b.Label("dy").MovReg(isa.EDI, isa.ECX)
	b.ShrImm(isa.EDI, 4) // y1
	b.MovReg(isa.EDX, isa.EBX)
	b.ShrImm(isa.EDX, 4) // y2
	b.Cmp(isa.EDI, isa.EDX)
	b.Jge("dy_pos")
	b.Sub(isa.EDX, isa.EDI)
	b.Add(isa.EAX, isa.EDX)
	b.Jmp("netnext")
	b.Label("dy_pos").Sub(isa.EDI, isa.EDX)
	b.Add(isa.EAX, isa.EDI)
	b.Label("netnext").AndImm(isa.EAX, 0xffffff)
	b.AddImm(isa.ECX, 1)
	b.Jmp("nets")
	b.Label("netsd").AddImm(isa.EBP, 1)
	b.Jmp("sweep")
	b.Label("swdone")
	kernelEpilogue(b)
	return NativeKernel{Name: "vpr", Unit: b.Unit(),
		TrainInput: []int64{20}, RefInput: []int64{2000}}
}

// NativeKernels returns the ten-kernel suite in SPEC name order.
func NativeKernels() []NativeKernel {
	return []NativeKernel{
		Bzip2Like(),
		CraftyLike(),
		GapLike(),
		GccLike(),
		GzipLike(),
		McfLike(),
		ParserLike(),
		TwolfLike(),
		VortexLike(),
		VprLike(),
	}
}
