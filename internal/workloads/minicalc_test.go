package workloads

import (
	"testing"

	"pathmark/internal/vm"
)

func runCalc(t *testing.T, tokens []int64) *vm.Result {
	t.Helper()
	res, err := vm.Run(MiniCalc(), vm.RunOptions{Input: tokens})
	if err != nil {
		t.Fatalf("MiniCalc(%v): %v", tokens, err)
	}
	return res
}

func assertOutput(t *testing.T, got *vm.Result, want []int64) {
	t.Helper()
	if len(got.Output) != len(want) {
		t.Fatalf("output %v, want %v", got.Output, want)
	}
	for i := range want {
		if got.Output[i] != want[i] {
			t.Fatalf("output %v, want %v", got.Output, want)
		}
	}
}

func TestMiniCalcSum(t *testing.T) {
	res := runCalc(t, CalcSum(30, 12))
	assertOutput(t, res, []int64{42, 1})
}

func TestMiniCalcFactorial(t *testing.T) {
	res := runCalc(t, CalcFactorial(6))
	assertOutput(t, res, []int64{720, 1})
}

func TestMiniCalcCountdownLoop(t *testing.T) {
	res := runCalc(t, CalcCountdown(5))
	assertOutput(t, res, []int64{5, 4, 3, 2, 1, 1})
}

func TestMiniCalcOperators(t *testing.T) {
	cases := []struct {
		tokens []int64
		want   []int64
	}{
		{[]int64{1, 9, 1, 4, 3, 7, 0}, []int64{5, 1}},     // sub
		{[]int64{1, 9, 1, 4, 4, 7, 0}, []int64{36, 1}},    // mul
		{[]int64{1, 3, 5, 2, 7, 0}, []int64{6, 1}},        // dup+add
		{[]int64{1, 8, 1, 2, 6, 3, 7, 0}, []int64{-6, 1}}, // swap then 2-8
		{[]int64{1, 7, 1, 3, 9, 7, 0}, []int64{7, 1}},     // drop
		{[]int64{7, 0}, []int64{0, 1}},                    // print on empty stack
		{[]int64{0}, []int64{0}},                          // immediate halt: prints sp=0
		{nil, []int64{0}},                                 // empty input = halt
	}
	for i, c := range cases {
		res := runCalc(t, c.tokens)
		if len(res.Output) != len(c.want) {
			t.Errorf("case %d: output %v, want %v", i, res.Output, c.want)
			continue
		}
		for j := range c.want {
			if res.Output[j] != c.want[j] {
				t.Errorf("case %d: output %v, want %v", i, res.Output, c.want)
				break
			}
		}
	}
}

func TestMiniCalcDefensiveness(t *testing.T) {
	// Stack overflow saturates rather than faulting.
	var flood []int64
	for i := 0; i < 100; i++ {
		flood = append(flood, 1, int64(i))
	}
	flood = append(flood, 0)
	res := runCalc(t, flood)
	if res.Output[len(res.Output)-1] != 64 {
		t.Errorf("saturated sp = %d, want 64", res.Output[len(res.Output)-1])
	}
	// Infinite rewind loops run out of fuel instead of hanging:
	// push 1; L: dup; rewind 3 — tos stays 1 forever.
	res = runCalc(t, []int64{1, 1, 5, 8, 3, 0})
	if res.Steps > 5_000_000 {
		t.Errorf("fuel did not bound execution: %d steps", res.Steps)
	}
	// Unknown opcodes halt.
	res = runCalc(t, []int64{42, 42, 42})
	assertOutput(t, res, []int64{0})
}

func TestMiniCalcTraceDependsOnInput(t *testing.T) {
	// The interpreter's decoded bit-string must differ across interpreted
	// programs — the property that keys the watermark to the secret input.
	t1, _, err := vm.Collect(MiniCalc(), CalcSum(1, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := vm.Collect(MiniCalc(), CalcCountdown(9), 1)
	if err != nil {
		t.Fatal(err)
	}
	if t1.DecodeBits().String() == t2.DecodeBits().String() {
		t.Error("different interpreted programs produced identical traces")
	}
}
