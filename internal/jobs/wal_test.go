package jobs

import (
	"os"
	"path/filepath"
	"testing"

	"pathmark/internal/iofault"
)

// walLines decodes every framed line of a WAL file, failing the test on
// any torn or corrupt content — the invariant fail-stop recovery must
// uphold: whatever ends up on disk is a clean framed prefix.
func walLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := iofault.NewLogScanner(data, path)
	var lines []string
	for {
		payload, ok := sc.Next()
		if !ok {
			break
		}
		lines = append(lines, string(payload))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("journal corrupt after fail-stop recovery: %v", err)
	}
	if sc.Good() != int64(len(data)) {
		t.Fatalf("journal has a torn tail after fail-stop recovery: %d good of %d bytes", sc.Good(), len(data))
	}
	return lines
}

type walRec struct {
	N int `json:"n"`
}

// TestWALFailStopSync: a failed fsync poisons the handle. The failing
// append reports the error and commits nothing; the next append reopens
// the file, verifies its size against the committed prefix, and continues
// — and the record whose sync failed is NOT silently resurrected.
func TestWALFailStopSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	ffs := iofault.NewFaultFS(iofault.OS, []iofault.Fault{
		// Sync #0 is the header's; fail the second record's sync.
		{Op: iofault.OpSync, Kind: iofault.KindSyncFail, After: 2},
	})
	w, err := CreateWAL(ffs, path, walRec{N: 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRec{N: 1}); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	err = w.Append(walRec{N: 2})
	if err == nil {
		t.Fatal("append survived injected sync failure")
	}
	if !iofault.IsStorageFault(err) {
		t.Fatalf("sync failure not classified as storage fault: %v", err)
	}
	if got := w.Records(); got != 1 {
		t.Fatalf("failed append counted as committed: %d records", got)
	}
	// The record may be in the file (write succeeded, sync failed) but it
	// is not committed; recovery truncates it away before appending more.
	if err := w.Append(walRec{N: 3}); err != nil {
		t.Fatalf("append after fail-stop did not recover: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := walLines(t, path)
	want := []string{`{"n":100}`, `{"n":1}`, `{"n":3}`}
	if len(lines) != len(want) {
		t.Fatalf("journal lines = %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != w.Bytes() {
		t.Fatalf("committed bytes %d != file size %d", w.Bytes(), info.Size())
	}
}

// TestWALFailStopShortWrite: a short write leaves a torn half-record on
// disk. Recovery must truncate it back to the committed prefix so the
// next record never concatenates onto a partial line.
func TestWALFailStopShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	ffs := iofault.NewFaultFS(iofault.OS, []iofault.Fault{
		{Op: iofault.OpWrite, Kind: iofault.KindShortWrite, After: 1},
	})
	w, err := CreateWAL(ffs, path, walRec{N: 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRec{N: 1}); err == nil {
		t.Fatal("append survived injected short write")
	}
	// The torn half-line is on disk right now; prove recovery removes it.
	if err := w.Append(walRec{N: 2}); err != nil {
		t.Fatalf("append after short write did not recover: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := walLines(t, path)
	if len(lines) != 2 || lines[1] != `{"n":2}` {
		t.Fatalf("journal lines = %q, want header + {\"n\":2}", lines)
	}
}

// TestWALDoubleFault: recovery itself can fail (the disk is still sick).
// Append must keep returning errors without committing anything, then
// recover once the fault clears.
func TestWALDoubleFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	ffs := iofault.NewFaultFS(iofault.OS, []iofault.Fault{
		{Op: iofault.OpSync, Kind: iofault.KindSyncFail, After: 1},
		{Op: iofault.OpOpen, Kind: iofault.KindOpenFail, After: 1},
	})
	w, err := CreateWAL(ffs, path, walRec{N: 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRec{N: 1}); err == nil {
		t.Fatal("append survived injected sync failure")
	}
	// Reopen hits the open fault: still broken, still erroring.
	if err := w.Append(walRec{N: 2}); err == nil {
		t.Fatal("append survived failed reopen")
	}
	if got := w.Records(); got != 0 {
		t.Fatalf("records committed during double fault: %d", got)
	}
	// Faults are spent; the WAL heals on the next append.
	if err := w.Append(walRec{N: 3}); err != nil {
		t.Fatalf("append after faults cleared: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	lines := walLines(t, path)
	if len(lines) != 2 || lines[1] != `{"n":3}` {
		t.Fatalf("journal lines = %q, want header + {\"n\":3}", lines)
	}
}

// TestWALOpenTruncatesTornTail: OpenWAL trims the file back to the valid
// prefix the replayer reported before appending.
func TestWALOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w, err := CreateWAL(nil, path, walRec{N: 100}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRec{N: 1}); err != nil {
		t.Fatal(err)
	}
	good, records := w.Bytes(), w.Records()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("deadbeef {\"torn")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(nil, path, good, records, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(walRec{N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	lines := walLines(t, path)
	if len(lines) != 3 || lines[2] != `{"n":2}` {
		t.Fatalf("journal lines = %q", lines)
	}
}

// TestWALOpenRejectsShrunkenFile: a file shorter than the committed
// prefix means lost committed data — refuse to append, loudly.
func TestWALOpenRejectsShrunkenFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w, err := CreateWAL(nil, path, walRec{N: 100}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(nil, path, w.Bytes()+1000, 0, false); err == nil {
		t.Fatal("OpenWAL accepted a file shorter than its committed prefix")
	}
}

// TestWALAppendAfterClose: a deliberate Close is terminal, not a
// fail-stop — Append must not silently reopen a retired journal.
func TestWALAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	w, err := CreateWAL(nil, path, walRec{N: 100}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRec{N: 1}); err == nil {
		t.Fatal("append to a closed journal succeeded")
	}
}
