package jobs

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"pathmark/internal/bitstring"
	"pathmark/internal/cache"
	"pathmark/internal/iofault"
	"pathmark/internal/obs"
	"pathmark/internal/wm"
)

// A stream job is the online counterpart of a corpus job: instead of
// suspect programs to re-trace, it receives one suspect's decoded trace
// bit-string in chunks — uploaded live while the suspect runs — and
// feeds a wm.StreamRecognizer per candidate key. Chunks are journaled
// write-ahead to stream.jsonl (the same fsync'd JSONL WAL discipline as
// the grade journal), so a crashed daemon reopens the job, replays the
// journaled chunks into fresh recognizers, and resumes the upload at the
// committed bit offset with a final verdict identical to an
// uninterrupted stream's.

// streamJournalVersion versions the chunk journal format. v2 added the
// per-record checksum frame.
const streamJournalVersion = 2

// maxStreamChunkBits bounds one journaled chunk; larger uploads must be
// split by the caller. Keeps a single corrupt length field from
// allocating unbounded memory on replay.
const maxStreamChunkBits = 1 << 24

// StreamOptions tunes a stream job. Workers, probe cadence and settle
// thresholds pass through to each key's wm.StreamRecognizer.
type StreamOptions struct {
	// Workers is each recognizer's per-chunk scan fan-out (0 = GOMAXPROCS,
	// 1 = serial). Excluded from the digest: results are identical at any
	// count.
	Workers int
	// Filters / Prefilter select the scan's pre-decrypt filter stack with
	// the usual precedence (wm.ResolveFilters).
	Filters   *wm.FilterStack
	Prefilter *wm.PopcountBand
	// CheckEvery, SettleChecks and MinConfidence set the early-exit probe
	// cadence and settle rule (see wm.StreamOpts). These shape the
	// early verdict, so they are part of the job digest.
	CheckEvery    int
	SettleChecks  int
	MinConfidence float64
	// DecryptCacheWindows, when > 0, gives each key's recognizer a
	// decrypt memo table of that capacity (bit-identical on or off).
	DecryptCacheWindows int
	// NoSync, Trace, NoTrace, DeterministicTrace, FS and Obs mirror the
	// corpus job Options of the same names.
	NoSync             bool
	Trace              *obs.Trace
	NoTrace            bool
	DeterministicTrace bool
	FS                 iofault.FS
	Obs                *obs.Registry
}

// fs resolves the effective filesystem: StreamOptions.FS or the real one.
func (o *StreamOptions) fs() iofault.FS {
	if o.FS != nil {
		return o.FS
	}
	return iofault.OS
}

// StreamSpec is a stream job's identity: the candidate keys and the
// result-affecting options.
type StreamSpec struct {
	Keys []*wm.Key
	Opts StreamOptions
}

// digest content-addresses the stream spec. Scheduling knobs (Workers,
// cache capacity, sync mode) are excluded — they must not change
// results; the probe cadence and settle rule are included because they
// determine when and whether an early verdict latches.
func (sp *StreamSpec) digest() (cache.Digest, error) {
	parts := [][]byte{[]byte("pathmark.stream.v1")}
	num := func(v int64) { parts = append(parts, strconv.AppendInt(nil, v, 10)) }
	num(int64(len(sp.Keys)))
	for i, k := range sp.Keys {
		var buf bytes.Buffer
		if err := wm.SaveKey(&buf, k); err != nil {
			return cache.Digest{}, fmt.Errorf("jobs: digesting stream key %d: %w", i, err)
		}
		parts = append(parts, buf.Bytes())
	}
	f := wm.ResolveFilters(sp.Opts.Filters, sp.Opts.Prefilter)
	num(int64(f.Popcount.Lo))
	num(int64(f.Popcount.Hi))
	num(int64(f.Transitions.Lo))
	num(int64(f.Transitions.Hi))
	num(int64(f.Phase.Lo))
	num(int64(f.Phase.Hi))
	num(int64(sp.Opts.CheckEvery))
	num(int64(sp.Opts.SettleChecks))
	num(int64(sp.Opts.MinConfidence * 10_000)) // basis points
	return cache.DigestBytes(parts...), nil
}

// StreamSpecID returns the job ID a StreamSpec would get from OpenStream,
// without touching disk.
func StreamSpecID(spec StreamSpec) (string, error) {
	d, err := spec.digest()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(d[:]), nil
}

// streamHeader is the chunk journal's first line.
type streamHeader struct {
	V    int    `json:"v"`
	Type string `json:"type"` // "header"
	Job  string `json:"job"`  // hex spec digest
	Keys int    `json:"keys"`
}

// streamRecord journals one accepted chunk ("chunk") or the end of the
// upload ("final"). Off is the chunk's starting bit offset in the
// decoded trace string; Bits is its payload as '0'/'1' characters
// (already deduplicated and gap-checked, so replay appends records
// back to back).
type streamRecord struct {
	Type string `json:"type"`
	Off  int64  `json:"off"`
	Bits string `json:"bits,omitempty"`
}

// ErrStreamGap reports a chunk whose offset starts beyond the committed
// bit offset — accepting it would silently drop trace bits, so the
// caller must re-send from Committed().
var ErrStreamGap = errors.New("jobs: stream chunk begins past the committed offset")

// ErrStreamFinished reports a feed into a stream whose final chunk was
// already journaled.
var ErrStreamFinished = errors.New("jobs: stream already finished")

// StreamJob is a journaled live-trace recognition bound to a directory.
// Open it (replaying any existing chunk journal), Feed it chunks as they
// arrive, then Finish it for the batch-identical final verdicts.
type StreamJob struct {
	dir      string
	spec     StreamSpec
	digest   cache.Digest
	wal      *WAL
	trace    *obs.Trace
	ownTrace bool

	mu        sync.Mutex
	recs      []*wm.StreamRecognizer
	committed int64 // decoded bits journaled and fed so far
	chunks    int64
	finished  bool
	results   []*wm.Recognition
	errs      []error
}

// OpenStream binds a stream job to dir, creating the directory and chunk
// journal on first use and replaying an existing journal on resume: every
// journaled chunk is re-fed to fresh recognizers, so the in-memory scan
// state is exactly what an uninterrupted stream would hold at the
// committed offset. A journal written by a different spec fails with
// ErrJournalMismatch.
func OpenStream(dir string, spec StreamSpec) (*StreamJob, error) {
	if len(spec.Keys) == 0 {
		return nil, errors.New("jobs: a stream job needs at least one candidate key")
	}
	digest, err := spec.digest()
	if err != nil {
		return nil, err
	}
	fs := spec.Opts.fs()
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create job dir: %w", err)
	}
	sj := &StreamJob{dir: dir, spec: spec, digest: digest}
	for range spec.Keys {
		sj.recs = append(sj.recs, nil)
	}
	sj.resetRecognizers()

	path := StreamPath(dir)
	if _, statErr := fs.Stat(path); statErr == nil {
		if err := sj.replay(fs, path); err != nil {
			return nil, err
		}
	} else {
		w, err := CreateWAL(fs, path, streamHeader{
			V: streamJournalVersion, Type: "header", Job: sj.ID(), Keys: len(spec.Keys),
		}, !spec.Opts.NoSync)
		if err != nil {
			return nil, err
		}
		sj.wal = w
	}

	sj.trace = spec.Opts.Trace
	if sj.trace == nil && !spec.Opts.NoTrace {
		if tr, terr := obs.OpenTraceFileFS(fs, TracePath(dir), sj.ID(), spec.Opts.DeterministicTrace); terr == nil {
			sj.trace, sj.ownTrace = tr, true
		}
	}
	sj.trace.Event("stream.open", map[string]int64{
		"keys":      int64(len(spec.Keys)),
		"committed": sj.committed,
		"chunks":    sj.chunks,
		"finished":  boolInt64(sj.finished),
	}, nil)
	return sj, nil
}

func boolInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (sj *StreamJob) resetRecognizers() {
	opts := sj.spec.Opts
	for i, key := range sj.spec.Keys {
		so := wm.StreamOpts{
			Workers:       opts.Workers,
			Filters:       opts.Filters,
			Prefilter:     opts.Prefilter,
			CheckEvery:    opts.CheckEvery,
			SettleChecks:  opts.SettleChecks,
			MinConfidence: opts.MinConfidence,
		}
		if opts.DecryptCacheWindows > 0 {
			so.DecryptCache = cache.NewCache64(opts.DecryptCacheWindows)
		}
		sj.recs[i] = wm.NewStreamRecognizer(key, so)
	}
}

// replay decodes the chunk journal, re-feeds every chunk, and reopens
// the WAL for append with any torn tail truncated — the same recovery
// discipline as the grade journal. A checksum failure proven mid-log
// (not a torn tail) aborts the replay with a *iofault.CorruptError: the
// daemon quarantines the job rather than resuming over rotten bits.
func (sj *StreamJob) replay(fs iofault.FS, path string) error {
	data, err := fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("jobs: read stream journal: %w", err)
	}
	s := iofault.NewLogScanner(data, "stream.jsonl")
	line, ok := s.Next()
	if !ok {
		if cerr := s.Err(); cerr != nil {
			return fmt.Errorf("jobs: stream journal header: %w", cerr)
		}
		return errors.New("jobs: stream journal has no complete header line")
	}
	var h streamHeader
	if err := json.Unmarshal(line, &h); err != nil {
		return fmt.Errorf("jobs: stream journal header: %w", err)
	}
	switch {
	case h.Type != "header":
		return errors.New("jobs: stream journal does not start with a header record")
	case h.V != streamJournalVersion:
		return fmt.Errorf("jobs: stream journal version %d, want %d", h.V, streamJournalVersion)
	case h.Job != sj.ID() || h.Keys != len(sj.spec.Keys):
		return fmt.Errorf("%w: journal job %s (%d keys), spec job %s (%d keys)",
			ErrJournalMismatch, h.Job, h.Keys, sj.ID(), len(sj.spec.Keys))
	}
	good := s.Good()
	records := int64(0)
loop:
	for {
		line, ok := s.Next()
		if !ok {
			if cerr := s.Err(); cerr != nil {
				return fmt.Errorf("jobs: stream journal records: %w", cerr)
			}
			break // torn or absent tail — done
		}
		var r streamRecord
		if json.Unmarshal(line, &r) != nil {
			break // framed but foreign — discard the rest
		}
		switch {
		case r.Type == "chunk" && r.Off == sj.committed && len(r.Bits) <= maxStreamChunkBits:
			bits, err := bitstring.FromString(r.Bits)
			if err != nil {
				return fmt.Errorf("jobs: stream journal chunk at %d: %w", r.Off, err)
			}
			if err := sj.feedRecognizers(bits); err != nil {
				return err
			}
			sj.committed += int64(bits.Len())
			sj.chunks++
		case r.Type == "final" && r.Off == sj.committed:
			sj.finished = true
		default:
			// A record that does not extend the committed prefix cannot
			// belong to this stream's history; everything after is suspect.
			break loop
		}
		good = s.Good()
		records++
	}
	w, err := OpenWAL(fs, path, good, records, !sj.spec.Opts.NoSync)
	if err != nil {
		return err
	}
	sj.wal = w
	return nil
}

func (sj *StreamJob) feedRecognizers(bits *bitstring.Bits) error {
	for i, r := range sj.recs {
		if err := r.AppendBits(bits); err != nil {
			return fmt.Errorf("jobs: stream scan for key %d: %w", i, err)
		}
	}
	return nil
}

// ID is the stream job's content address in hex.
func (sj *StreamJob) ID() string { return hex.EncodeToString(sj.digest[:]) }

// Dir returns the job directory.
func (sj *StreamJob) Dir() string { return sj.dir }

// Trace returns the job's event stream (nil when tracing is off).
func (sj *StreamJob) Trace() *obs.Trace { return sj.trace }

// Committed returns the durable decoded-bit offset: every bit below it
// is journaled and fed, so an interrupted uploader resumes from here.
func (sj *StreamJob) Committed() int64 {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.committed
}

// Chunks returns how many chunk records the journal holds (replayed +
// new).
func (sj *StreamJob) Chunks() int64 {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.chunks
}

// Finished reports whether the stream's final chunk has been journaled.
func (sj *StreamJob) Finished() bool {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.finished
}

// Settled reports whether every key's recognizer has latched an early
// verdict (trivially false before any probe fires).
func (sj *StreamJob) Settled() bool {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	for _, r := range sj.recs {
		if !r.Settled() {
			return false
		}
	}
	return true
}

// SettledKeys returns how many keys' recognizers have latched an early
// verdict so far.
func (sj *StreamJob) SettledKeys() int {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	n := 0
	for _, r := range sj.recs {
		if r.Settled() {
			n++
		}
	}
	return n
}

// Feed accepts one uploaded chunk: bits is the chunk's payload as
// '0'/'1' characters and offset its starting position in the decoded
// trace string. Overlap with already-committed bits is trimmed (an
// uploader that re-sends after a timeout is idempotent); a chunk
// entirely below Committed() is a no-op; a chunk starting beyond it
// fails with ErrStreamGap. The surviving suffix is journaled
// write-ahead, then fed to every key's recognizer; once Feed returns
// the new Committed() offset, those bits survive kill -9.
func (sj *StreamJob) Feed(offset int64, bits string) (committed int64, err error) {
	if len(bits) > maxStreamChunkBits {
		return sj.Committed(), fmt.Errorf("jobs: stream chunk of %d bits exceeds limit %d",
			len(bits), maxStreamChunkBits)
	}
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.finished {
		return sj.committed, ErrStreamFinished
	}
	if offset > sj.committed {
		return sj.committed, fmt.Errorf("%w: chunk at %d, committed %d",
			ErrStreamGap, offset, sj.committed)
	}
	if trim := sj.committed - offset; trim > 0 {
		if trim >= int64(len(bits)) {
			return sj.committed, nil // full duplicate
		}
		bits = bits[trim:]
		offset = sj.committed
	}
	parsed, err := bitstring.FromString(bits)
	if err != nil {
		return sj.committed, fmt.Errorf("jobs: stream chunk: %w", err)
	}
	if parsed.Len() == 0 {
		return sj.committed, nil
	}
	if err := sj.wal.Append(streamRecord{Type: "chunk", Off: offset, Bits: bits}); err != nil {
		return sj.committed, err
	}
	if err := sj.feedRecognizers(parsed); err != nil {
		return sj.committed, err
	}
	sj.committed += int64(parsed.Len())
	sj.chunks++
	settled := 0
	for _, r := range sj.recs {
		if r.Settled() {
			settled++
		}
	}
	sj.trace.Event("stream.chunk", map[string]int64{
		"off":       offset,
		"bits":      int64(parsed.Len()),
		"committed": sj.committed,
		"settled":   int64(settled),
	}, nil)
	return sj.committed, nil
}

// StreamResult is a finished stream job: one recognition per candidate
// key over the complete uploaded trace.
type StreamResult struct {
	Job          string
	Bits         int64
	Recognitions []*wm.Recognition
	Errors       []error
}

// Finish seals the stream: the final marker is journaled (after which
// Feed refuses more chunks), every recognizer is flushed — each flush is
// bit-identical to batch RecognizeBits over the whole uploaded string —
// the per-key grade.* telemetry is emitted through the same event schema
// as corpus jobs (s=0, k=key index), and the result manifest is written
// atomically. Finish after a crash-resume replays to the identical
// result; calling it again returns the memoized one.
func (sj *StreamJob) Finish() (*StreamResult, error) {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	if sj.results != nil {
		return sj.assembleLocked(), nil
	}
	if !sj.finished {
		if err := sj.wal.Append(streamRecord{Type: "final", Off: sj.committed}); err != nil {
			return nil, err
		}
		sj.finished = true
	}
	sj.results = make([]*wm.Recognition, len(sj.recs))
	sj.errs = make([]error, len(sj.recs))
	for i, r := range sj.recs {
		rec, err := r.Flush()
		sj.results[i], sj.errs[i] = rec, err
		o := &outcome{rec: rec, attempts: 1}
		if err != nil {
			o.err, o.errStr = err, err.Error()
		}
		emitGradeEvents(sj.trace, sj.spec.Opts.Obs, 0, i, o)
	}
	res := sj.assembleLocked()
	b, err := encodeStreamResult(res)
	if err != nil {
		return nil, err
	}
	if err := iofault.WriteFileAtomic(sj.spec.Opts.fs(), ResultPath(sj.dir), b); err != nil {
		return nil, fmt.Errorf("jobs: write result: %w", err)
	}
	settled := 0
	for _, r := range sj.recs {
		if r.Settled() {
			settled++
		}
	}
	sj.trace.Event("stream.done", map[string]int64{
		"bits":    sj.committed,
		"chunks":  sj.chunks,
		"settled": int64(settled),
	}, nil)
	return res, nil
}

func (sj *StreamJob) assembleLocked() *StreamResult {
	res := &StreamResult{
		Job: sj.ID(), Bits: sj.committed,
		Recognitions: append([]*wm.Recognition(nil), sj.results...),
		Errors:       append([]error(nil), sj.errs...),
	}
	return res
}

// Close releases the chunk journal and the job-owned trace. The job
// directory and its contents stay.
func (sj *StreamJob) Close() error {
	if sj.ownTrace {
		_ = sj.trace.Close() // trace is telemetry; it never gates the job
	}
	return sj.wal.Close()
}

// streamResultFile is the canonical serialized StreamResult, the
// byte-compared artifact of crash-resume equivalence for stream jobs.
type streamResultFile struct {
	Version int           `json:"version"`
	Job     string        `json:"job"`
	Stream  bool          `json:"stream"`
	Bits    int64         `json:"bits"`
	Keys    int           `json:"keys"`
	Grades  []resultGrade `json:"grades"`
}

func encodeStreamResult(r *StreamResult) ([]byte, error) {
	rf := streamResultFile{
		Version: resultFileVersion, Job: r.Job, Stream: true,
		Bits: r.Bits, Keys: len(r.Recognitions),
	}
	for k, rec := range r.Recognitions {
		g := resultGrade{S: 0, K: k, Rec: encodeRecognition(rec)}
		if err := r.Errors[k]; err != nil {
			g.Err = err.Error()
		}
		rf.Grades = append(rf.Grades, g)
	}
	b, err := json.MarshalIndent(rf, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("jobs: encode stream result: %w", err)
	}
	return append(b, '\n'), nil
}
