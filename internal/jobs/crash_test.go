package jobs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"testing"

	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// This file is the assess-style robustness harness for the jobs layer:
// a deterministic fault plan (transient trace faults that clear on
// retry, persistent resource faults, terminal key-file faults) is
// combined with randomized checkpoint kills and journal-tail corruption,
// and every trial must satisfy the survive/degrade/fail contract:
//
//   - survive: cells with transient faults end clean — identical to an
//     unfaulted run of that cell;
//   - degrade: cells with persistent-but-typed faults end as recorded
//     hard failures (typed error in the matrix), never aborting the job;
//   - fail: only the job-level invariants may stop a run — and an
//     interrupted run, resumed, always converges to the same manifest.
//
// Everything is seeded: the same plan replays identically across the
// reference run, every crash trial, and every resume, which is what
// makes byte-equality the oracle.

// faultPlan is the deterministic injection schedule shared by reference
// and trials.
type faultPlan struct{}

func (faultPlan) hook(s, k, attempt int) error {
	switch {
	case s == 1 && k == 0 && attempt == 1:
		// Transient: first attempt fails retryably, retry clears it.
		return &wm.StageError{Stage: "scan", Worker: 0,
			Cause: errors.New("injected transient scan fault")}
	case s == 3 && k == 2:
		// Persistent resource fault: retried to exhaustion, recorded.
		return &wm.StageError{Stage: "trace", Worker: -1,
			Cause: &vm.ResourceError{Resource: "steps", Limit: 7, Used: 7, Cause: vm.ErrStepLimit}}
	case s == 4 && k == 1:
		// Terminal: key-file damage, never retried.
		return &wm.KeyFileError{Field: "input", Offset: 9, Msg: "injected key damage"}
	}
	return nil
}

func (faultPlan) spec(t testing.TB, workers int) Spec {
	spec := baseSpec(t)
	spec.Opts.Workers = workers
	spec.Opts.Retry = RetryPolicy{MaxAttempts: 2}
	spec.Opts.Breaker = BreakerPolicy{Threshold: 2, Wave: 2}
	spec.Opts.gradeHook = faultPlan{}.hook
	return spec
}

func TestCrashResumeUnderFaults(t *testing.T) {
	var plan faultPlan

	ref := mustExecute(t, t.TempDir(), plan.spec(t, 2))
	refBytes := mustEncode(t, ref)

	// The contract on the reference run itself.
	if ref.Corpus.Recognitions[1][0] == nil || ref.Corpus.Errors[1][0] != nil {
		t.Fatalf("transient cell (1,0) did not survive: err=%v", ref.Corpus.Errors[1][0])
	}
	if ref.Attempts[1][0] != 2 {
		t.Errorf("transient cell took %d attempts, want 2", ref.Attempts[1][0])
	}
	if !errors.Is(ref.Corpus.Errors[3][2], vm.ErrStepLimit) || ref.Attempts[3][2] != 2 {
		t.Errorf("persistent cell (3,2): err=%v attempts=%d, want typed failure after 2 attempts",
			ref.Corpus.Errors[3][2], ref.Attempts[3][2])
	}
	var kfe *wm.KeyFileError
	if !errors.As(ref.Corpus.Errors[4][1], &kfe) || ref.Attempts[4][1] != 1 {
		t.Errorf("terminal cell (4,1): err=%v attempts=%d, want KeyFileError after 1 attempt",
			ref.Corpus.Errors[4][1], ref.Attempts[4][1])
	}

	total := ref.Suspects * ref.Keys
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 4; trial++ {
		checkpoint := 1 + rng.Intn(total-1)
		dir := t.TempDir()
		abortAt(t, dir, plan.spec(t, 1+rng.Intn(3)), checkpoint)

		if trial%2 == 0 {
			// Half the trials additionally corrupt the journal tail with
			// random bytes, torn-write style.
			junk := make([]byte, 1+rng.Intn(40))
			rng.Read(junk)
			f, err := os.OpenFile(JournalPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write(junk)
			f.Close()
		}

		res, err := Execute(context.Background(), dir, plan.spec(t, 1+rng.Intn(3)))
		if err != nil {
			t.Fatalf("trial %d (checkpoint %d): resume failed: %v", trial, checkpoint, err)
		}
		if got := mustEncode(t, res); !bytes.Equal(got, refBytes) {
			t.Errorf("trial %d (checkpoint %d): manifest diverged from reference", trial, checkpoint)
		}
	}

	// Double interruption: kill, resume, kill again, resume — still
	// converges.
	dir := t.TempDir()
	abortAt(t, dir, plan.spec(t, 2), 3)
	abortAt(t, dir, plan.spec(t, 2), 9)
	res, err := Execute(context.Background(), dir, plan.spec(t, 2))
	if err != nil {
		t.Fatalf("after double interruption: %v", err)
	}
	if got := mustEncode(t, res); !bytes.Equal(got, refBytes) {
		t.Error("double-interrupted job diverged from reference")
	}
}
