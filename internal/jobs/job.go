package jobs

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathmark/internal/cache"
	"pathmark/internal/iofault"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// Options tunes one corpus job. The zero value is usable: default retry
// and breaker policies, GOMAXPROCS workers, fsync on every record.
type Options struct {
	// Workers bounds the grades running concurrently within a wave:
	// 0 picks runtime.GOMAXPROCS(0), 1 forces the serial path. Results
	// are bit-identical at any worker count.
	Workers int
	// ScanWorkers, StepLimit, MaxHeap, Filters and Prefilter are passed
	// through to every grade (see wm.CorpusOpts). ScanWorkers is a
	// floor, not a fixed value: when a wave has fewer pending grades
	// than Workers, the idle worker tier is folded into each grade's
	// scan fan-out (intra-suspect sharding), so a single huge suspect
	// still uses the whole tier. Scan results are bit-identical at any
	// scan worker count, so the adaptive fan-out never changes results.
	ScanWorkers int
	StepLimit   int64
	MaxHeap     int64
	Filters     *wm.FilterStack
	Prefilter   *wm.PopcountBand
	// Kernel selects the scan kernel for every grade (wm.KernelAuto =
	// batched). Results are bit-identical across kernels, so the knob is
	// excluded from the job digest.
	Kernel wm.ScanKernel
	// GradeTimeout, when > 0, deadlines each grade attempt. A timed-out
	// attempt surfaces as a retryable resource/stage error.
	GradeTimeout time.Duration
	// Retry and Breaker set the per-grade retry policy and the per-key
	// circuit breaker.
	Retry   RetryPolicy
	Breaker BreakerPolicy
	// Obs, when non-nil, receives the jobs.run span and the jobs.*
	// counters (grades, retries, breaker trips, journal traffic, resume
	// savings).
	Obs *obs.Registry
	// Caches, when non-nil, supplies long-lived fleet caches shared
	// across jobs; nil builds caches scoped to this job.
	Caches *wm.FleetCaches
	// NoSync skips the per-record fsync. Only for tests and throwaway
	// jobs: without the sync, a crash can lose the last grades (never
	// corrupt the journal — replay still recovers the synced prefix).
	NoSync bool
	// OnGrade, when non-nil, runs after each grade record has been
	// journaled, with the cumulative number of journaled grades
	// (restored + new). It exists for progress reporting and for
	// checkpoint fault injection — a hook that calls os.Exit simulates
	// kill -9 at an exact checkpoint, which is how the crash-resume
	// tests and the fleet grade -crash-after flag work.
	OnGrade func(completed int)
	// OnEvent, when non-nil, runs after each grade settles (journal
	// record durable, in-memory outcome recorded), with the grade's
	// telemetry payload. Unlike OnGrade it carries the recognition
	// itself, which is how the serve daemon aggregates per-layer reject
	// counts into live job status without re-reading the journal. Called
	// from worker goroutines; implementations synchronize themselves.
	OnEvent func(GradeEvent)
	// Trace, when non-nil, receives the job's lifecycle and per-grade
	// stage events. When nil (and NoTrace is unset), Open appends to
	// trace.jsonl in the job directory under the job ID as trace ID —
	// content-addressed, so every process lifetime of the same job
	// continues one stream under one ID.
	Trace *obs.Trace
	// NoTrace suppresses the automatic trace.jsonl.
	NoTrace bool
	// FS, when non-nil, is the filesystem every durable artifact of the
	// job flows through — journal, trace, result manifest. nil means the
	// real filesystem (iofault.OS); tests and the storage chaos harness
	// substitute an iofault.FaultFS to make writes, syncs, renames and
	// reads fail on a seeded schedule.
	FS iofault.FS
	// DeterministicTrace omits the schedule-dependent stampings
	// (sequence numbers, timestamps) and the cache-occupancy event from
	// the automatic trace, leaving only input-derived event content:
	// sorted trace.jsonl lines are then byte-identical at any worker
	// count. Ignored when Trace is supplied (the caller's trace keeps
	// its own mode).
	DeterministicTrace bool

	// gradeHook, when non-nil, runs before every grade attempt and may
	// return an error to inject in place of the real grade. In-package
	// fault-injection tests only.
	gradeHook func(s, k, attempt int) error
}

// fs resolves the effective filesystem: Options.FS or the real one.
func (o *Options) fs() iofault.FS {
	if o.FS != nil {
		return o.FS
	}
	return iofault.OS
}

// Spec is the job's identity: what to grade, against what, under which
// result-affecting options. Two Specs digest equal exactly when their
// suspects, keys, and result-affecting options (step/heap limits,
// effective filter stack, breaker policy) match — scheduling knobs like
// Workers, retry pacing, or the scan kernel are excluded, since they
// must not change results.
type Spec struct {
	Suspects []*vm.Program
	Keys     []*wm.Key
	Opts     Options
}

// digest content-addresses the spec; the journal header pins it so a
// resume over a journal from a different job is refused.
func (sp *Spec) digest(progDigests []cache.Digest) (cache.Digest, error) {
	// v2: the prefilter band ints were replaced by the six ints of the
	// effective filter stack (popcount, transitions, phase bands).
	parts := [][]byte{[]byte("pathmark.job.v2")}
	num := func(v int64) { parts = append(parts, strconv.AppendInt(nil, v, 10)) }
	num(int64(len(sp.Suspects)))
	num(int64(len(sp.Keys)))
	for _, d := range progDigests {
		parts = append(parts, append([]byte(nil), d[:]...))
	}
	for i, k := range sp.Keys {
		var buf bytes.Buffer
		if err := wm.SaveKey(&buf, k); err != nil {
			return cache.Digest{}, fmt.Errorf("jobs: digesting key %d: %w", i, err)
		}
		parts = append(parts, buf.Bytes())
	}
	num(sp.Opts.StepLimit)
	num(sp.Opts.MaxHeap)
	f := wm.ResolveFilters(sp.Opts.Filters, sp.Opts.Prefilter)
	num(int64(f.Popcount.Lo))
	num(int64(f.Popcount.Hi))
	num(int64(f.Transitions.Lo))
	num(int64(f.Transitions.Hi))
	num(int64(f.Phase.Lo))
	num(int64(f.Phase.Hi))
	num(int64(sp.Opts.Breaker.threshold()))
	num(int64(sp.Opts.Breaker.wave()))
	return cache.DigestBytes(parts...), nil
}

// SpecID returns the job ID (hex content digest) a Spec would get from
// Open, without touching disk — callers that name job directories after
// the ID need it first.
func SpecID(spec Spec) (string, error) {
	progDigests := make([]cache.Digest, len(spec.Suspects))
	for i, p := range spec.Suspects {
		progDigests[i] = wm.ProgramDigest(p)
	}
	d, err := spec.digest(progDigests)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(d[:]), nil
}

// GradeEvent is the telemetry payload delivered to Options.OnEvent when
// a grade settles. Rec is nil for hard failures and breaker skips; Err
// carries the final attempt's error message ("" on clean success).
type GradeEvent struct {
	S, K     int
	Attempts int
	Skipped  bool
	Err      string
	Rec      *wm.Recognition
}

// outcome is one settled grade.
type outcome struct {
	rec      *wm.Recognition
	err      error // live error when executed this process, else rebuilt from errStr
	errStr   string
	attempts int
	skipped  bool
}

// Job is a journaled corpus job bound to a directory. Open it, Run it
// (possibly across several processes — each Run picks up where the
// journal ends), then write the result manifest.
type Job struct {
	dir         string
	spec        Spec
	digest      cache.Digest
	progDigests []cache.Digest
	journal     *WAL
	caches      *wm.FleetCaches
	trace       *obs.Trace
	ownTrace    bool // trace opened by Open (vs caller-supplied): Close closes it

	mu        sync.Mutex
	outcomes  [][]*outcome
	completed int // journaled grades, restored + new
	reused    int // grades restored from the journal at Open
}

// Open binds a job to dir, creating the directory and journal on first
// use and replaying an existing journal on resume. A journal written by
// a different spec (other suspects, keys, or result-affecting options)
// fails with ErrJournalMismatch.
func Open(dir string, spec Spec) (*Job, error) {
	if len(spec.Suspects) == 0 {
		return nil, errors.New("jobs: a job needs at least one suspect")
	}
	if len(spec.Keys) == 0 {
		return nil, errors.New("jobs: a job needs at least one candidate key")
	}
	progDigests := make([]cache.Digest, len(spec.Suspects))
	for i, p := range spec.Suspects {
		progDigests[i] = wm.ProgramDigest(p)
	}
	digest, err := spec.digest(progDigests)
	if err != nil {
		return nil, err
	}
	fs := spec.Opts.fs()
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create job dir: %w", err)
	}

	j := &Job{
		dir: dir, spec: spec, digest: digest, progDigests: progDigests,
		caches: spec.Opts.Caches,
	}
	if j.caches == nil {
		j.caches = wm.NewFleetCaches(0, 0)
	}
	j.outcomes = make([][]*outcome, len(spec.Suspects))
	for s := range j.outcomes {
		j.outcomes[s] = make([]*outcome, len(spec.Keys))
	}

	path := JournalPath(dir)
	if _, statErr := fs.Stat(path); statErr == nil {
		jr, h, recs, err := openJournal(fs, path, !spec.Opts.NoSync)
		if err != nil {
			return nil, err
		}
		if h.Job != j.ID() || h.Suspects != len(spec.Suspects) || h.Keys != len(spec.Keys) {
			_ = jr.Close()
			return nil, fmt.Errorf("%w: journal job %s (%dx%d), spec job %s (%dx%d)",
				ErrJournalMismatch, h.Job, h.Suspects, h.Keys,
				j.ID(), len(spec.Suspects), len(spec.Keys))
		}
		for _, r := range recs {
			rec, err := decodeRecognition(r.Rec)
			if err != nil {
				_ = jr.Close()
				return nil, fmt.Errorf("jobs: journal grade (%d,%d): %w", r.S, r.K, err)
			}
			o := &outcome{rec: rec, errStr: r.Err, attempts: r.Attempts, skipped: r.Skipped}
			if r.Err != "" {
				o.err = errors.New(r.Err)
			}
			// Duplicates can only arise from journals stitched together
			// by hand; last record wins, matching append order.
			if j.outcomes[r.S][r.K] == nil {
				j.completed++
				j.reused++
			}
			j.outcomes[r.S][r.K] = o
		}
		j.journal = jr
	} else {
		jr, err := createJournal(fs, path, journalHeader{
			V: journalVersion, Type: "header", Job: j.ID(),
			Suspects: len(spec.Suspects), Keys: len(spec.Keys),
		}, !spec.Opts.NoSync)
		if err != nil {
			return nil, err
		}
		j.journal = jr
	}

	// The trace rides next to the journal but never gates it: a failed
	// trace open degrades to no telemetry, not a failed job. The trace
	// ID is the job ID, so a resumed job's second lifetime appends to
	// the same stream under the same ID.
	j.trace = spec.Opts.Trace
	if j.trace == nil && !spec.Opts.NoTrace {
		if tr, terr := obs.OpenTraceFileFS(fs, TracePath(dir), j.ID(), spec.Opts.DeterministicTrace); terr == nil {
			j.trace, j.ownTrace = tr, true
		}
	}
	j.trace.Event("job.open", map[string]int64{
		"suspects": int64(len(spec.Suspects)),
		"keys":     int64(len(spec.Keys)),
		"resumed":  int64(j.reused),
	}, nil)
	return j, nil
}

// Trace returns the job's event stream (nil when tracing is off).
func (j *Job) Trace() *obs.Trace { return j.trace }

// ID is the job's content address in hex — stable across processes for
// the same spec.
func (j *Job) ID() string { return hex.EncodeToString(j.digest[:]) }

// Dir returns the job's directory.
func (j *Job) Dir() string { return j.dir }

// Reused reports how many grades this process restored from the journal
// instead of executing — the resume savings.
func (j *Job) Reused() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reused
}

// Progress reports journaled grades vs the matrix size.
func (j *Job) Progress() (completed, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.completed, len(j.spec.Suspects) * len(j.spec.Keys)
}

// Close releases the journal and the job-owned trace. The job directory
// and its contents stay.
func (j *Job) Close() error {
	if j.ownTrace {
		_ = j.trace.Close() // trace is telemetry; it never gates the job
	}
	return j.journal.Close()
}

// settle journals one grade and records it in memory; the journal write
// comes first (write-ahead), so a crash between the two re-reads it from
// disk next time.
func (j *Job) settle(s, k int, o *outcome) error {
	rec := gradeRecord{
		Type: "grade", S: s, K: k,
		Attempts: o.attempts, Skipped: o.skipped, Err: o.errStr,
		Rec: encodeRecognition(o.rec),
	}
	if err := j.journal.Append(rec); err != nil {
		return err
	}
	j.mu.Lock()
	if j.outcomes[s][k] == nil {
		j.completed++
	}
	j.outcomes[s][k] = o
	n := j.completed
	j.mu.Unlock()
	j.emitGrade(s, k, o)
	if j.spec.Opts.OnGrade != nil {
		j.spec.Opts.OnGrade(n)
	}
	return nil
}

// emitGrade publishes one settled grade to every telemetry surface: the
// trace stream and registry (via the shared emitter) and the OnEvent
// callback. Grades restored from the journal at Open never pass through
// here: their events were emitted by the lifetime that ran them.
func (j *Job) emitGrade(s, k int, o *outcome) {
	emitGradeEvents(j.trace, j.spec.Opts.Obs, s, k, o)
	if j.spec.Opts.OnEvent != nil {
		j.spec.Opts.OnEvent(GradeEvent{
			S: s, K: k, Attempts: o.attempts, Skipped: o.skipped,
			Err: o.errStr, Rec: o.rec,
		})
	}
}

// emitGradeEvents publishes one settled (suspect, key) outcome to the
// trace stream (stage events traced → scanned → voted → done) and the
// registry (scan-layer counters — wm.GradePair runs each scan without a
// registry, so this is where per-layer rejects reach /metrics). Shared
// by corpus jobs and stream jobs so both speak the same grade.* event
// schema and any trace consumer (serve status aggregation, pathmark
// top) reads either without caring which engine produced the stream.
func emitGradeEvents(trace *obs.Trace, reg *obs.Registry, s, k int, o *outcome) {
	sk := map[string]int64{"s": int64(s), "k": int64(k)}
	attrs := func(extra map[string]int64) map[string]int64 {
		m := map[string]int64{"s": int64(s), "k": int64(k)}
		for key, v := range extra {
			m[key] = v
		}
		return m
	}
	switch {
	case o.skipped:
		trace.Event("grade.skipped", sk, nil)
	case o.rec != nil:
		rec := o.rec
		trace.Event("grade.trace", attrs(map[string]int64{
			"trace_bits": int64(rec.TraceBits),
		}), nil)
		trace.Event("grade.scan", attrs(map[string]int64{
			"windows":            int64(rec.Windows),
			"decrypted":          int64(rec.Decrypted),
			"valid":              int64(rec.ValidStatements),
			"reject_popcount":    int64(rec.RejectedByLayer.Popcount),
			"reject_transitions": int64(rec.RejectedByLayer.Transitions),
			"reject_phase":       int64(rec.RejectedByLayer.Phase),
			"reject_framing":     int64(rec.RejectedByLayer.Framing),
		}), nil)
		trace.Event("grade.vote", attrs(map[string]int64{
			"unique":        int64(rec.UniqueStatements),
			"voted_out":     int64(rec.VotedOut),
			"survivors":     int64(rec.Survivors),
			"confidence_bp": int64(rec.Confidence * 10000),
		}), nil)
		done := attrs(map[string]int64{"attempts": int64(o.attempts)})
		var labels map[string]string
		if o.errStr != "" {
			labels = map[string]string{"err": o.errStr}
		}
		trace.Event("grade.done", done, labels)

		reg.Counter("scan.reject.popcount").Add(int64(rec.RejectedByLayer.Popcount))
		reg.Counter("scan.reject.transitions").Add(int64(rec.RejectedByLayer.Transitions))
		reg.Counter("scan.reject.phase").Add(int64(rec.RejectedByLayer.Phase))
		reg.Counter("scan.reject.framing").Add(int64(rec.RejectedByLayer.Framing))
		reg.Counter("scan.decrypted").Add(int64(rec.Decrypted))
		reg.Counter("recognize.windows_total").Add(int64(rec.Windows))
		reg.Counter("recognize.valid_total").Add(int64(rec.ValidStatements))
		reg.Histogram("grade.trace_bits").Observe(int64(rec.TraceBits))
	default:
		trace.Event("grade.done", attrs(map[string]int64{
			"attempts": int64(o.attempts), "failed": 1,
		}), map[string]string{"err": o.errStr})
	}
}

// runGrade executes one grade with the retry policy: bounded attempts,
// exponential backoff with deterministic jitter, cached-failure
// invalidation before each retry (otherwise a retry would replay the
// memoized trace error instead of retracing). Returns nil when the job
// context was cancelled mid-grade — the grade is left unsettled and
// re-runs on resume.
func (j *Job) runGrade(ctx context.Context, s, k, scanWorkers int) *outcome {
	opts := j.spec.Opts
	maxAttempts := opts.Retry.attempts()
	var rec *wm.Recognition
	var err error
	attempt := 0
	for attempt = 1; ; attempt++ {
		gctx := ctx
		cancel := context.CancelFunc(nil)
		if opts.GradeTimeout > 0 {
			gctx, cancel = context.WithTimeout(ctx, opts.GradeTimeout)
		}
		if opts.gradeHook != nil {
			if herr := opts.gradeHook(s, k, attempt); herr != nil {
				rec, err = nil, herr
			} else {
				rec, err = j.gradeOnce(gctx, s, k, scanWorkers)
			}
		} else {
			rec, err = j.gradeOnce(gctx, s, k, scanWorkers)
		}
		if cancel != nil {
			cancel()
		}
		if err == nil {
			break
		}
		if ctx != nil && ctx.Err() != nil {
			return nil // interruption, not failure
		}
		if attempt >= maxAttempts || !Retryable(err) {
			break
		}
		if rec == nil {
			// The failure happened at (or before) the trace: drop the
			// memoized failure so the retry actually retraces.
			j.caches.ForgetTrace(j.traceKey(s, k))
		}
		opts.Obs.Counter("jobs.retries").Add(1)
		j.trace.Event("grade.retry", map[string]int64{
			"s": int64(s), "k": int64(k), "attempt": int64(attempt),
		}, map[string]string{"err": err.Error()})
		sleepCtx(ctx, opts.Retry.backoff(j.digest, s, k, attempt))
	}
	o := &outcome{rec: rec, err: err, attempts: attempt}
	if err != nil {
		o.errStr = err.Error()
	}
	return o
}

func (j *Job) gradeOnce(ctx context.Context, s, k, scanWorkers int) (*wm.Recognition, error) {
	opts := j.spec.Opts
	return wm.GradePair(j.spec.Suspects[s], j.progDigests[s], j.spec.Keys[k], j.caches, wm.CorpusOpts{
		ScanWorkers: scanWorkers,
		StepLimit:   opts.StepLimit,
		MaxHeap:     opts.MaxHeap,
		Filters:     opts.Filters,
		Prefilter:   opts.Prefilter,
		Kernel:      opts.Kernel,
		Ctx:         ctx,
	})
}

func (j *Job) traceKey(s, k int) wm.TraceKey {
	return wm.TraceKey{
		Program: j.progDigests[s],
		Input:   cache.DigestInt64s(j.spec.Keys[k].Input),
	}
}

// Run executes every grade the journal does not already hold and
// returns the assembled result. It is safe to call again after an
// interruption (in a new process via Open, or the same one): completed
// grades are never re-executed, and the final Result is bit-identical to
// an uninterrupted run's. The error is non-nil only when the run could
// not finish — cancellation (wrapping ctx.Err()) or journal I/O failure;
// per-grade failures land in the result matrices instead.
func (j *Job) Run(ctx context.Context) (*Result, error) {
	opts := j.spec.Opts
	span := opts.Obs.Start("jobs.run")
	defer span.Finish()

	M, K := len(j.spec.Suspects), len(j.spec.Keys)
	traceBefore := j.caches.TraceStats()
	decryptBefore := j.caches.DecryptStats()
	reused := j.Reused()
	opts.Obs.Counter("jobs.grades.total").Add(int64(M * K))
	opts.Obs.Counter("jobs.resume.reused").Add(int64(reused))
	// Touch the scan-layer counters so a scrape of /metrics lists them
	// from the first grade onward (at zero) instead of appearing late.
	for _, name := range []string{
		"scan.reject.popcount", "scan.reject.transitions",
		"scan.reject.phase", "scan.reject.framing",
		"scan.decrypted", "recognize.windows_total", "recognize.valid_total",
	} {
		opts.Obs.Counter(name)
	}

	br := newBreaker(K, opts.Breaker)
	wave := opts.Breaker.wave()
	var ran, skipped int64

	type cell struct{ s, k int }
	var appendErr error
	var appendOnce sync.Once
	fail := func(err error) {
		appendOnce.Do(func() { appendErr = err })
	}

	for lo := 0; lo < M; lo += wave {
		hi := lo + wave
		if hi > M {
			hi = M
		}
		// Breaker state is a pure function of the waves before this one,
		// walked in suspect order — deterministic at any worker count.
		br.observe(j.outcomes, max(lo-wave, 0), lo)

		var pending []cell
		for s := lo; s < hi; s++ {
			for k := 0; k < K; k++ {
				if j.outcomes[s][k] != nil {
					continue
				}
				if serr := br.skip(k); serr != nil {
					o := &outcome{err: serr, errStr: serr.Error(), skipped: true}
					if err := j.settle(s, k, o); err != nil {
						return nil, err
					}
					skipped++
					continue
				}
				pending = append(pending, cell{s, k})
			}
		}

		workers := opts.Workers
		if workers <= 0 {
			workers = defaultWorkers()
		}
		// Intra-suspect sharding: when the wave has fewer pending grades
		// than workers, fold the idle tier into each grade's scan fan-out.
		// A single huge suspect then shards its own window ranges across
		// the whole tier instead of scanning on one goroutine while the
		// rest idle. The boost is computed before clamping workers to the
		// pending count, and the scan's deterministic merge keeps results
		// bit-identical at every effective fan-out.
		scanWorkers := opts.ScanWorkers
		if scanWorkers <= 0 {
			scanWorkers = 1
		}
		if n := len(pending); n > 0 && n < workers {
			if boost := workers / n; boost > scanWorkers {
				scanWorkers = boost
			}
		}
		if workers > len(pending) {
			workers = len(pending)
		}
		if workers <= 1 {
			for _, c := range pending {
				if ctx != nil && ctx.Err() != nil {
					break
				}
				if o := j.runGrade(ctx, c.s, c.k, scanWorkers); o != nil {
					if err := j.settle(c.s, c.k, o); err != nil {
						fail(err)
						break
					}
					ran++
				}
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			var ranShard atomic.Int64
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if ctx != nil && ctx.Err() != nil {
							return
						}
						i := int(next.Add(1)) - 1
						if i >= len(pending) {
							return
						}
						c := pending[i]
						if o := j.runGrade(ctx, c.s, c.k, scanWorkers); o != nil {
							if err := j.settle(c.s, c.k, o); err != nil {
								fail(err)
								return
							}
							ranShard.Add(1)
						}
					}
				}()
			}
			wg.Wait()
			ran += ranShard.Load()
		}
		if appendErr != nil {
			return nil, appendErr
		}
		if ctx != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("jobs: job %s interrupted: %w", j.ID(), ctx.Err())
		}
	}

	opts.Obs.Counter("jobs.grades.run").Add(ran)
	opts.Obs.Counter("jobs.grades.skipped").Add(skipped)
	opts.Obs.Counter("jobs.breaker.trips").Add(int64(br.trips))
	opts.Obs.Counter("jobs.journal.bytes").Add(j.journal.Bytes())
	opts.Obs.Counter("jobs.journal.records").Add(j.journal.Records())

	res := j.assemble()
	res.Corpus.TraceStats = j.caches.TraceStats().Sub(traceBefore)
	res.Corpus.DecryptStats = j.caches.DecryptStats().Sub(decryptBefore)
	opts.Obs.Counter("jobs.grades.failed").Add(int64(res.Failed))
	j.trace.Event("job.done", map[string]int64{
		"ran":           ran,
		"reused":        int64(reused),
		"skipped":       skipped,
		"failed":        int64(res.Failed),
		"breaker_trips": int64(br.trips),
	}, nil)
	if !j.trace.Deterministic() {
		// Cache occupancy is schedule-dependent (concurrent grades race
		// for the same memo slots), so the deterministic stream omits it.
		j.trace.Event("job.caches", map[string]int64{
			"trace_hits":     res.Corpus.TraceStats.Hits,
			"trace_misses":   res.Corpus.TraceStats.Misses,
			"decrypt_hits":   res.Corpus.DecryptStats.Hits,
			"decrypt_misses": res.Corpus.DecryptStats.Misses,
		}, nil)
	}
	span.Set("suspects", int64(M)).
		Set("keys", int64(K)).
		Set("ran", ran).
		Set("reused", int64(reused)).
		Set("skipped", skipped).
		Set("breaker_trips", int64(br.trips))
	return res, nil
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Result is a finished job: the corpus matrices plus the job-level
// bookkeeping (attempts, skips, resume savings).
type Result struct {
	// Job is the spec's content digest in hex.
	Job string
	// Suspects and Keys are the matrix dimensions.
	Suspects, Keys int
	// Corpus carries the Recognitions/Errors matrices, bit-identical to
	// a RecognizeCorpus over the same spec except that breaker-skipped
	// cells hold a *BreakerOpenError, and cells restored from a journal
	// carry string-rebuilt errors (message preserved, chain gone). The
	// cache stats are this Run's deltas — on a resumed run they show
	// only the traces actually re-run.
	Corpus *wm.CorpusResult
	// Attempts[s][k] is how many attempts the grade took (0 for skips).
	Attempts [][]int
	// Skipped[s][k] marks breaker skips.
	Skipped [][]bool
	// Failed counts cells with no recognition (hard failures + skips);
	// Reused counts grades restored from the journal by this process.
	Failed int
	Reused int
}

func (j *Job) assemble() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	M, K := len(j.spec.Suspects), len(j.spec.Keys)
	res := &Result{
		Job: j.ID(), Suspects: M, Keys: K,
		Corpus: &wm.CorpusResult{
			Recognitions: make([][]*wm.Recognition, M),
			Errors:       make([][]error, M),
		},
		Attempts: make([][]int, M),
		Skipped:  make([][]bool, M),
		Reused:   j.reused,
	}
	for s := 0; s < M; s++ {
		res.Corpus.Recognitions[s] = make([]*wm.Recognition, K)
		res.Corpus.Errors[s] = make([]error, K)
		res.Attempts[s] = make([]int, K)
		res.Skipped[s] = make([]bool, K)
		for k, o := range j.outcomes[s] {
			if o == nil {
				continue
			}
			res.Corpus.Recognitions[s][k] = o.rec
			res.Corpus.Errors[s][k] = o.err
			res.Attempts[s][k] = o.attempts
			res.Skipped[s][k] = o.skipped
			if o.rec == nil {
				res.Failed++
			}
		}
	}
	return res
}

// resultFileVersion versions the result manifest format.
const resultFileVersion = 1

// resultFile is the canonical serialized Result. It deliberately
// excludes anything that may differ between an uninterrupted run and a
// crash-resumed one (attempt counts, resume savings, cache stats): the
// manifest is the artifact two such runs are byte-compared on.
type resultFile struct {
	Version  int           `json:"version"`
	Job      string        `json:"job"`
	Suspects int           `json:"suspects"`
	Keys     int           `json:"keys"`
	Grades   []resultGrade `json:"grades"`
}

type resultGrade struct {
	S       int              `json:"s"`
	K       int              `json:"k"`
	Skipped bool             `json:"skipped,omitempty"`
	Err     string           `json:"err,omitempty"`
	Rec     *recognitionJSON `json:"rec,omitempty"`
}

// EncodeResult renders the canonical result manifest: grades in (s,k)
// order, schedule-dependent fields excluded, so the bytes are identical
// for any two runs (interrupted or not) of the same job.
func EncodeResult(r *Result) ([]byte, error) {
	rf := resultFile{
		Version: resultFileVersion, Job: r.Job,
		Suspects: r.Suspects, Keys: r.Keys,
	}
	for s := 0; s < r.Suspects; s++ {
		for k := 0; k < r.Keys; k++ {
			g := resultGrade{
				S: s, K: k,
				Skipped: r.Skipped[s][k],
				Rec:     encodeRecognition(r.Corpus.Recognitions[s][k]),
			}
			if err := r.Corpus.Errors[s][k]; err != nil {
				g.Err = err.Error()
			}
			rf.Grades = append(rf.Grades, g)
		}
	}
	b, err := json.MarshalIndent(rf, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("jobs: encode result: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteResultFile publishes the result manifest atomically — temp file,
// write, sync, rename, parent-dir fsync (see iofault.WriteFileAtomic):
// a crash mid-write can never leave a torn manifest at path, and a crash
// right after the write can no longer lose the rename itself.
func WriteResultFile(path string, r *Result) error {
	return WriteResultFileFS(iofault.OS, path, r)
}

// WriteResultFileFS is WriteResultFile over an explicit filesystem.
func WriteResultFileFS(fs iofault.FS, path string, r *Result) error {
	b, err := EncodeResult(r)
	if err != nil {
		return err
	}
	if err := iofault.WriteFileAtomic(fs, path, b); err != nil {
		return fmt.Errorf("jobs: write result: %w", err)
	}
	return nil
}

// Execute is the one-shot convenience the CLI and daemon share: open
// (or resume) the job in dir, run it, write the result manifest, close.
func Execute(ctx context.Context, dir string, spec Spec) (*Result, error) {
	j, err := Open(dir, spec)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	res, err := j.Run(ctx)
	if err != nil {
		return nil, err
	}
	if err := WriteResultFileFS(spec.Opts.fs(), ResultPath(dir), res); err != nil {
		return nil, err
	}
	return res, nil
}
