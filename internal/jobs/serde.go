// Package jobs wraps corpus recognition into a crash-safe, journaled
// job: every (suspect, key) grade is appended to a write-ahead JSONL
// journal the moment it completes, so a process killed mid-scan resumes
// from the journal and produces a result bit-identical to an
// uninterrupted run — completed grades are never re-traced, in-flight
// ones are retried. Per-grade execution gets a bounded retry policy with
// deterministic backoff jitter, and a per-key circuit breaker stops
// burning trace budget on keys that fail hard across consecutive
// suspects. The pathmark serve daemon and the fleet grade CLI are thin
// shells over this package.
package jobs

import (
	"errors"
	"math/big"

	"pathmark/internal/crt"
	"pathmark/internal/wm"
)

// This file defines the canonical JSON form of a recognition — the shape
// stored in journal records and result manifests. The encoding must
// round-trip exactly: resume equivalence is judged on serialized bytes,
// so any field that decodes differently than it encoded would make a
// resumed run diverge from an uninterrupted one. big.Ints travel as
// decimal strings (JSON numbers would lose precision past 2^53), and
// errors travel as their strings (the journal cannot resurrect live Go
// values, only evidence).

// statementJSON is crt.Statement: watermark ≡ X (mod primes[I..J]).
type statementJSON struct {
	I int    `json:"i"`
	J int    `json:"j"`
	X uint64 `json:"x"`
}

// stageErrorJSON is a recovered wm.StageError; Cause is flattened to its
// message since a journal replay cannot rebuild the original error chain.
type stageErrorJSON struct {
	Stage  string `json:"stage"`
	Worker int    `json:"worker"`
	Cause  string `json:"cause,omitempty"`
}

// recognitionJSON is the canonical serialized wm.Recognition.
type recognitionJSON struct {
	Watermark         string           `json:"watermark,omitempty"` // decimal; "" = nil
	Modulus           string           `json:"modulus,omitempty"`   // decimal; "" = nil
	FullCoverage      bool             `json:"full_coverage,omitempty"`
	Windows           int              `json:"windows,omitempty"`
	ValidStatements   int              `json:"valid_statements,omitempty"`
	UniqueStatements  int              `json:"unique_statements,omitempty"`
	VotedOut          int              `json:"voted_out,omitempty"`
	Survivors         int              `json:"survivors,omitempty"`
	TraceBits         int              `json:"trace_bits,omitempty"`
	PrefilterRejected int              `json:"prefilter_rejected,omitempty"`
	RejectPopcount    int              `json:"reject_popcount,omitempty"`
	RejectTransitions int              `json:"reject_transitions,omitempty"`
	RejectPhase       int              `json:"reject_phase,omitempty"`
	RejectFraming     int              `json:"reject_framing,omitempty"`
	Decrypted         int              `json:"decrypted,omitempty"`
	Surviving         []statementJSON  `json:"surviving,omitempty"`
	Confidence        float64          `json:"confidence,omitempty"`
	Degraded          bool             `json:"degraded,omitempty"`
	StageErrors       []stageErrorJSON `json:"stage_errors,omitempty"`
}

func encodeRecognition(r *wm.Recognition) *recognitionJSON {
	if r == nil {
		return nil
	}
	j := &recognitionJSON{
		FullCoverage:      r.FullCoverage,
		Windows:           r.Windows,
		ValidStatements:   r.ValidStatements,
		UniqueStatements:  r.UniqueStatements,
		VotedOut:          r.VotedOut,
		Survivors:         r.Survivors,
		TraceBits:         r.TraceBits,
		PrefilterRejected: r.PrefilterRejected,
		RejectPopcount:    r.RejectedByLayer.Popcount,
		RejectTransitions: r.RejectedByLayer.Transitions,
		RejectPhase:       r.RejectedByLayer.Phase,
		RejectFraming:     r.RejectedByLayer.Framing,
		Decrypted:         r.Decrypted,
		Confidence:        r.Confidence,
		Degraded:          r.Degraded,
	}
	if r.Watermark != nil {
		j.Watermark = r.Watermark.String()
	}
	if r.Modulus != nil {
		j.Modulus = r.Modulus.String()
	}
	for _, s := range r.Surviving {
		j.Surviving = append(j.Surviving, statementJSON{I: s.I, J: s.J, X: s.X})
	}
	for _, se := range r.StageErrors {
		ej := stageErrorJSON{Stage: se.Stage, Worker: se.Worker}
		if se.Cause != nil {
			ej.Cause = se.Cause.Error()
		}
		j.StageErrors = append(j.StageErrors, ej)
	}
	return j
}

// decodeRecognition rebuilds a wm.Recognition from its canonical form.
// The result re-encodes to identical JSON; StageError causes come back
// as plain string errors (message preserved, chain gone).
func decodeRecognition(j *recognitionJSON) (*wm.Recognition, error) {
	if j == nil {
		return nil, nil
	}
	r := &wm.Recognition{
		FullCoverage:      j.FullCoverage,
		Windows:           j.Windows,
		ValidStatements:   j.ValidStatements,
		UniqueStatements:  j.UniqueStatements,
		VotedOut:          j.VotedOut,
		Survivors:         j.Survivors,
		TraceBits:         j.TraceBits,
		PrefilterRejected: j.PrefilterRejected,
		RejectedByLayer: wm.LayerRejects{
			Popcount:    j.RejectPopcount,
			Transitions: j.RejectTransitions,
			Phase:       j.RejectPhase,
			Framing:     j.RejectFraming,
		},
		Decrypted:  j.Decrypted,
		Confidence: j.Confidence,
		Degraded:   j.Degraded,
	}
	var err error
	if r.Watermark, err = decodeBig(j.Watermark); err != nil {
		return nil, errors.New("jobs: recognition watermark is not a decimal integer")
	}
	if r.Modulus, err = decodeBig(j.Modulus); err != nil {
		return nil, errors.New("jobs: recognition modulus is not a decimal integer")
	}
	for _, s := range j.Surviving {
		r.Surviving = append(r.Surviving, crt.Statement{I: s.I, J: s.J, X: s.X})
	}
	for _, se := range j.StageErrors {
		rse := &wm.StageError{Stage: se.Stage, Worker: se.Worker}
		if se.Cause != "" {
			rse.Cause = errors.New(se.Cause)
		}
		r.StageErrors = append(r.StageErrors, rse)
	}
	return r, nil
}

func decodeBig(s string) (*big.Int, error) {
	if s == "" {
		return nil, nil
	}
	v, ok := new(big.Int).SetString(s, 10)
	if !ok {
		return nil, errors.New("bad integer")
	}
	return v, nil
}
