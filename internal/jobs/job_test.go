package jobs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"testing"

	"pathmark/internal/obs"
	"pathmark/internal/wm"
)

// TestJobMatchesRecognizeCorpus is the parity contract: a journaled job
// over a spec produces Recognitions bit-identical to RecognizeCorpus
// over the same suspects, keys, and options — the jobs layer changes
// durability, never results.
func TestJobMatchesRecognizeCorpus(t *testing.T) {
	suspects, keys, ws := fixture(t)
	res := mustExecute(t, t.TempDir(), baseSpec(t))

	corpus, err := wm.RecognizeCorpus(suspects, keys, wm.CorpusOpts{})
	if err != nil {
		t.Fatalf("RecognizeCorpus: %v", err)
	}
	for s := range suspects {
		for k := range keys {
			if !sameRec(res.Corpus.Recognitions[s][k], corpus.Recognitions[s][k]) {
				t.Errorf("cell (%d,%d): job and corpus recognitions differ", s, k)
			}
			jobErr, corpusErr := res.Corpus.Errors[s][k], corpus.Errors[s][k]
			if (jobErr == nil) != (corpusErr == nil) {
				t.Errorf("cell (%d,%d): error presence differs: job %v, corpus %v", s, k, jobErr, corpusErr)
			}
		}
	}
	// Sanity: the fingerprinted copies actually recognize under the real
	// key and not under the decoys.
	for s := range ws {
		if !res.Corpus.Recognitions[s][0].Matches(ws[s]) {
			t.Errorf("copy %d does not recognize its watermark via the job path", s)
		}
		if res.Corpus.Recognitions[s][1].Matches(ws[s]) {
			t.Errorf("copy %d matches under the wrong-cipher decoy", s)
		}
	}
	if res.Failed != 0 || res.Reused != 0 {
		t.Errorf("clean run: Failed=%d Reused=%d, want 0,0", res.Failed, res.Reused)
	}
}

// TestJobDeterministicAcrossWorkers: the result manifest is
// byte-identical at any worker count.
func TestJobDeterministicAcrossWorkers(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 4} {
		spec := baseSpec(t)
		spec.Opts.Workers = workers
		b := mustEncode(t, mustExecute(t, t.TempDir(), spec))
		if ref == nil {
			ref = b
		} else if !bytes.Equal(ref, b) {
			t.Errorf("workers=%d: result manifest differs from workers=1", workers)
		}
	}
}

// abortAt runs the job in dir, cancelling the run once n grades have
// been journaled — the in-process stand-in for kill -9 at a checkpoint
// (the on-disk state is the same: a journal with >= n records and no
// result manifest). Returns the number of grades journaled at exit.
func abortAt(t *testing.T, dir string, spec Spec, n int) int {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec.Opts.OnGrade = func(done int) {
		if done >= n {
			cancel()
		}
	}
	j, err := Open(dir, spec)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	if _, err := j.Run(ctx); err == nil {
		t.Fatal("aborted run reported success")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted run: want context.Canceled in chain, got %v", err)
	}
	done, _ := j.Progress()
	return done
}

// TestJobCrashResumeBitIdentical is the acceptance property: interrupt a
// job at a randomized checkpoint, resume it in a fresh Job (fresh
// caches, as a new process would have), and the final result manifest is
// byte-identical to an uninterrupted run's — with completed grades never
// re-executed and each executed grade tracing exactly once.
func TestJobCrashResumeBitIdentical(t *testing.T) {
	refDir := t.TempDir()
	ref := mustExecute(t, refDir, baseSpec(t))
	refBytes := mustEncode(t, ref)
	onDisk, err := os.ReadFile(ResultPath(refDir))
	if err != nil || !bytes.Equal(onDisk, refBytes) {
		t.Fatalf("result manifest on disk differs from EncodeResult (err=%v)", err)
	}

	total := ref.Suspects * ref.Keys
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 3; trial++ {
		checkpoint := 1 + rng.Intn(total-1)
		dir := t.TempDir()
		spec := baseSpec(t)
		spec.Opts.Workers = 1 + rng.Intn(4)
		journaled := abortAt(t, dir, spec, checkpoint)

		if trial == 0 {
			// Harden one trial further: tear the journal tail, as a crash
			// mid-append would.
			f, err := os.OpenFile(JournalPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString(`{"type":"grade","s":0,"k":`)
			f.Close()
		}

		reg := obs.NewRegistry()
		resumeSpec := baseSpec(t)
		resumeSpec.Opts.Workers = 1 + rng.Intn(4)
		resumeSpec.Opts.Obs = reg
		res, err := Execute(context.Background(), dir, resumeSpec)
		if err != nil {
			t.Fatalf("trial %d: resume: %v", trial, err)
		}

		if got := mustEncode(t, res); !bytes.Equal(got, refBytes) {
			t.Errorf("trial %d (checkpoint %d): resumed result differs from uninterrupted run", trial, checkpoint)
		}
		if fileBytes, err := os.ReadFile(ResultPath(dir)); err != nil || !bytes.Equal(fileBytes, refBytes) {
			t.Errorf("trial %d: published manifest differs (err=%v)", trial, err)
		}

		// No duplicated grades: journal-restored + executed-this-run
		// covers the matrix exactly once.
		reused := int(reg.Counter("jobs.resume.reused").Value())
		ran := int(reg.Counter("jobs.grades.run").Value())
		if reused < checkpoint || reused > journaled {
			t.Errorf("trial %d: reused %d grades, journaled %d at checkpoint %d", trial, reused, journaled, checkpoint)
		}
		if reused+ran != total {
			t.Errorf("trial %d: reused %d + ran %d != total %d (grades duplicated or lost)", trial, reused, ran, total)
		}
		// No re-tracing of completed grades: every trace lookup this run
		// came from an executed grade (restored grades never touch the
		// trace cache), and lookups dedupe to at most one trace per
		// distinct (suspect, input) pair.
		ts := res.Corpus.TraceStats
		if ts.Lookups() != int64(ran) {
			t.Errorf("trial %d: %d trace lookups for %d executed grades — journaled grades were re-traced", trial, ts.Lookups(), ran)
		}
		if res.Reused != reused {
			t.Errorf("trial %d: Result.Reused=%d, counter says %d", trial, res.Reused, reused)
		}
	}
}

// TestJobResumeAfterCompletion: re-running a finished job executes
// nothing and reproduces the manifest.
func TestJobResumeAfterCompletion(t *testing.T) {
	dir := t.TempDir()
	refBytes := mustEncode(t, mustExecute(t, dir, baseSpec(t)))

	reg := obs.NewRegistry()
	spec := baseSpec(t)
	spec.Opts.Obs = reg
	res, err := Execute(context.Background(), dir, spec)
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if got := mustEncode(t, res); !bytes.Equal(got, refBytes) {
		t.Error("re-run of finished job changed the manifest")
	}
	if ran := reg.Counter("jobs.grades.run").Value(); ran != 0 {
		t.Errorf("re-run executed %d grades, want 0", ran)
	}
	if res.Corpus.TraceStats.Lookups() != 0 {
		t.Errorf("re-run touched the trace cache: %+v", res.Corpus.TraceStats)
	}
}

// TestJournalMismatchRefused: resuming over a journal written by a
// different spec fails with the typed error rather than mixing results.
func TestJournalMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	mustExecute(t, dir, baseSpec(t))

	// Different result-affecting option -> different job digest.
	other := baseSpec(t)
	other.Opts.StepLimit = 12345
	if _, err := Open(dir, other); !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("step-limit change: got %v, want ErrJournalMismatch", err)
	}

	// Different key set.
	fewer := baseSpec(t)
	fewer.Keys = fewer.Keys[:2]
	if _, err := Open(dir, fewer); !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("key-set change: got %v, want ErrJournalMismatch", err)
	}

	// Scheduling knobs are NOT part of the identity: same job, different
	// workers resumes fine.
	sched := baseSpec(t)
	sched.Opts.Workers = 7
	j, err := Open(dir, sched)
	if err != nil {
		t.Errorf("worker-count change refused: %v", err)
	} else {
		j.Close()
	}
}

// TestJobBreaker drives the circuit breaker with an injected poisoned
// key: after Threshold consecutive hard failures (in suspect order,
// evaluated at wave boundaries) the key's remaining grades are recorded
// as typed skips — deterministically at any worker count, and stably
// across crash/resume.
func TestJobBreaker(t *testing.T) {
	poison := func(s, k, attempt int) error {
		if k == 1 {
			return &wm.StageError{Stage: "trace", Worker: -1, Cause: errors.New("injected poison")}
		}
		return nil
	}
	mkSpec := func(workers int) Spec {
		spec := baseSpec(t)
		spec.Opts.Workers = workers
		spec.Opts.Retry = RetryPolicy{MaxAttempts: 1}
		spec.Opts.Breaker = BreakerPolicy{Threshold: 2, Wave: 2}
		spec.Opts.gradeHook = poison
		return spec
	}

	reg := obs.NewRegistry()
	spec := mkSpec(1)
	spec.Opts.Obs = reg
	res := mustExecute(t, t.TempDir(), spec)
	refBytes := mustEncode(t, res)

	// Waves of 2 suspects: suspects 0-1 fail key 1 (threshold reached),
	// so suspects 2..5 skip it — 4 skips, 2 hard failures.
	skips := 0
	for s := 0; s < res.Suspects; s++ {
		for k := 0; k < res.Keys; k++ {
			if res.Skipped[s][k] {
				skips++
				var boe *BreakerOpenError
				if !errors.As(res.Corpus.Errors[s][k], &boe) || boe.Key != 1 {
					t.Errorf("skip (%d,%d): want BreakerOpenError for key 1, got %v", s, k, res.Corpus.Errors[s][k])
				}
				if s < 2 || k != 1 {
					t.Errorf("unexpected skip at (%d,%d)", s, k)
				}
			}
		}
	}
	if skips != 4 {
		t.Errorf("got %d skips, want 4", skips)
	}
	if res.Corpus.Recognitions[0][1] != nil || res.Corpus.Errors[0][1] == nil {
		t.Error("poisoned grades before the trip must record their hard failure")
	}
	if trips := reg.Counter("jobs.breaker.trips").Value(); trips != 1 {
		t.Errorf("jobs.breaker.trips = %d, want 1", trips)
	}
	if skipped := reg.Counter("jobs.grades.skipped").Value(); skipped != 4 {
		t.Errorf("jobs.grades.skipped = %d, want 4", skipped)
	}

	// Deterministic at other worker counts.
	if b := mustEncode(t, mustExecute(t, t.TempDir(), mkSpec(4))); !bytes.Equal(b, refBytes) {
		t.Error("breaker outcome differs at workers=4")
	}

	// And across crash/resume: abort mid-run, resume, same bytes.
	dir := t.TempDir()
	abortAt(t, dir, mkSpec(2), 5)
	resumed, err := Execute(context.Background(), dir, mkSpec(3))
	if err != nil {
		t.Fatalf("resume with breaker: %v", err)
	}
	if b := mustEncode(t, resumed); !bytes.Equal(b, refBytes) {
		t.Error("breaker outcome differs after crash/resume")
	}
}

// TestBreakerDisabled: Threshold < 0 turns the breaker off — every grade
// runs, even against a fully poisoned key.
func TestBreakerDisabled(t *testing.T) {
	spec := baseSpec(t)
	spec.Opts.Retry = RetryPolicy{MaxAttempts: 1}
	spec.Opts.Breaker = BreakerPolicy{Threshold: -1, Wave: 2}
	spec.Opts.gradeHook = func(s, k, attempt int) error {
		if k == 1 {
			return &wm.StageError{Stage: "trace", Worker: -1, Cause: errors.New("injected poison")}
		}
		return nil
	}
	res := mustExecute(t, t.TempDir(), spec)
	for s := 0; s < res.Suspects; s++ {
		if res.Skipped[s][1] {
			t.Fatalf("disabled breaker still skipped (%d,1)", s)
		}
		if res.Corpus.Errors[s][1] == nil {
			t.Fatalf("poisoned grade (%d,1) lost its failure", s)
		}
	}
	if res.Failed != res.Suspects {
		t.Errorf("Failed = %d, want %d", res.Failed, res.Suspects)
	}
}

func TestOpenValidation(t *testing.T) {
	suspects, keys, _ := fixture(t)
	if _, err := Open(t.TempDir(), Spec{Keys: keys}); err == nil {
		t.Error("no suspects accepted")
	}
	if _, err := Open(t.TempDir(), Spec{Suspects: suspects}); err == nil {
		t.Error("no keys accepted")
	}
}
