package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"pathmark/internal/iofault"
)

// The journal is the job's write-ahead log: one CRC32C-framed JSON object
// per line, first a header identifying the job (content digest + matrix
// dimensions), then one grade record per completed (suspect, key) cell,
// appended and fsync'd the moment the grade finishes. Crash recovery is
// line-oriented: a process killed mid-append leaves at most one torn
// line at the tail, which replay discards (and truncates away before the
// next append, so the file never accretes garbage mid-stream). A record
// that fails its checksum while a later record verifies is not a torn
// tail but mid-log corruption — replay surfaces a typed
// *iofault.CorruptError and the daemon quarantines the job instead of
// resuming over rotten state. Records carry everything needed to
// reconstruct the grade's outcome — the serialized recognition, the
// error string, the attempt count — so a resumed run re-executes only
// the cells with no record. The storage mechanics (fsync'd appends,
// checksum framing, torn-tail truncation, fail-stop sync) live in the
// shared WAL type; this file owns the grade journal's schema and replay
// rules.

// journalVersion is bumped on any incompatible format change; replay
// refuses other versions rather than guessing. v2 added the per-record
// checksum frame.
const journalVersion = 2

// maxJournalDim bounds the suspect/key counts a journal header may
// declare. Replay allocates an outcome matrix from these dimensions, so
// an unvalidated header in a corrupted file could demand gigabytes; no
// realistic corpus comes near 2^20 on a side.
const maxJournalDim = 1 << 20

// journalHeader is the journal's first line.
type journalHeader struct {
	V        int    `json:"v"`
	Type     string `json:"type"` // "header"
	Job      string `json:"job"`  // hex spec digest
	Suspects int    `json:"suspects"`
	Keys     int    `json:"keys"`
}

// gradeRecord journals one completed grade. Skipped marks a breaker
// skip; Err is the final attempt's error message ("" = clean success).
type gradeRecord struct {
	Type     string           `json:"type"` // "grade"
	S        int              `json:"s"`
	K        int              `json:"k"`
	Attempts int              `json:"attempts,omitempty"`
	Skipped  bool             `json:"skipped,omitempty"`
	Err      string           `json:"err,omitempty"`
	Rec      *recognitionJSON `json:"rec,omitempty"`
}

// ErrJournalMismatch reports a journal whose header does not match the
// job spec being opened over it — a different corpus, key set, or
// grading options. Resuming over it would silently mix two jobs'
// results, so Open refuses.
var ErrJournalMismatch = errors.New("jobs: journal belongs to a different job")

// decodeJournal parses journal bytes into the header and grade records,
// tolerating a torn tail: parsing stops at the first torn or unverified
// line and good reports the byte length of the valid prefix. Grade
// records that verify their checksum but carry out-of-range coordinates
// also stop the replay (they cannot belong to this job, so everything
// after them is suspect). The error is non-nil in two cases: no usable
// header exists (partial grade data is recoverable state, a missing
// header is not), or the checksum walk proves mid-log corruption — a
// failed line with a verified line after it — in which case err wraps
// *iofault.CorruptError and the caller must not resume over the file.
func decodeJournal(data []byte) (h journalHeader, recs []gradeRecord, good int64, err error) {
	s := iofault.NewLogScanner(data, "journal.jsonl")
	line, ok := s.Next()
	if !ok {
		if cerr := s.Err(); cerr != nil {
			return h, nil, 0, fmt.Errorf("jobs: journal header: %w", cerr)
		}
		return h, nil, 0, errors.New("jobs: journal has no complete header line")
	}
	if err := json.Unmarshal(line, &h); err != nil {
		return h, nil, 0, fmt.Errorf("jobs: journal header: %w", err)
	}
	switch {
	case h.Type != "header":
		return h, nil, 0, errors.New("jobs: journal does not start with a header record")
	case h.V != journalVersion:
		return h, nil, 0, fmt.Errorf("jobs: journal version %d, want %d", h.V, journalVersion)
	case h.Suspects <= 0 || h.Suspects > maxJournalDim || h.Keys <= 0 || h.Keys > maxJournalDim:
		return h, nil, 0, fmt.Errorf("jobs: journal dimensions %dx%d out of range", h.Suspects, h.Keys)
	}
	good = s.Good()
	for {
		line, ok := s.Next()
		if !ok {
			if cerr := s.Err(); cerr != nil {
				return h, recs, good, fmt.Errorf("jobs: journal records: %w", cerr)
			}
			return h, recs, good, nil // torn or absent tail — done
		}
		var r gradeRecord
		if json.Unmarshal(line, &r) != nil || r.Type != "grade" ||
			r.S < 0 || r.S >= h.Suspects || r.K < 0 || r.K >= h.Keys {
			return h, recs, good, nil // framed but foreign — discard the rest
		}
		recs = append(recs, r)
		good = s.Good()
	}
}

// createJournal starts a fresh grade journal at path with the given
// header.
func createJournal(fs iofault.FS, path string, h journalHeader, syncEach bool) (*WAL, error) {
	return CreateWAL(fs, path, h, syncEach)
}

// openJournal replays an existing grade journal and reopens it for
// append, truncating any torn tail first. A corruption verdict from the
// decode (see decodeJournal) is passed through untouched so callers can
// classify it with iofault.IsCorrupt.
func openJournal(fs iofault.FS, path string, syncEach bool) (*WAL, journalHeader, []gradeRecord, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, journalHeader{}, nil, fmt.Errorf("jobs: read journal: %w", err)
	}
	h, recs, good, err := decodeJournal(data)
	if err != nil {
		return nil, h, nil, err
	}
	w, err := OpenWAL(fs, path, good, int64(len(recs)), syncEach)
	if err != nil {
		return nil, h, nil, err
	}
	return w, h, recs, nil
}

// JournalPath, ResultPath, TracePath and StreamPath name the files a job
// keeps in its directory: the write-ahead journal (correctness), the
// canonical result manifest (the artifact), the telemetry event stream
// (observability; losing it loses nothing but visibility), and — for
// stream jobs — the chunk journal of the live trace upload. These are
// the single source of artifact names for every campaign engine layered
// on the jobs directory contract (the tournament engine included), so
// the layers cannot silently diverge on file naming.
func JournalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }
func ResultPath(dir string) string  { return filepath.Join(dir, "result.json") }
func TracePath(dir string) string   { return filepath.Join(dir, "trace.jsonl") }
func StreamPath(dir string) string  { return filepath.Join(dir, "stream.jsonl") }
