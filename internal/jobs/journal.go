package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The journal is the job's write-ahead log: one JSON object per line,
// first a header identifying the job (content digest + matrix
// dimensions), then one grade record per completed (suspect, key) cell,
// appended and fsync'd the moment the grade finishes. Crash recovery is
// line-oriented: a process killed mid-append leaves at most one torn
// line at the tail, which replay discards (and truncates away before the
// next append, so the file never accretes garbage mid-stream). Records
// carry everything needed to reconstruct the grade's outcome — the
// serialized recognition, the error string, the attempt count — so a
// resumed run re-executes only the cells with no record.

// journalVersion is bumped on any incompatible format change; replay
// refuses other versions rather than guessing.
const journalVersion = 1

// maxJournalDim bounds the suspect/key counts a journal header may
// declare. Replay allocates an outcome matrix from these dimensions, so
// an unvalidated header in a corrupted file could demand gigabytes; no
// realistic corpus comes near 2^20 on a side.
const maxJournalDim = 1 << 20

// journalHeader is the journal's first line.
type journalHeader struct {
	V        int    `json:"v"`
	Type     string `json:"type"` // "header"
	Job      string `json:"job"`  // hex spec digest
	Suspects int    `json:"suspects"`
	Keys     int    `json:"keys"`
}

// gradeRecord journals one completed grade. Skipped marks a breaker
// skip; Err is the final attempt's error message ("" = clean success).
type gradeRecord struct {
	Type     string           `json:"type"` // "grade"
	S        int              `json:"s"`
	K        int              `json:"k"`
	Attempts int              `json:"attempts,omitempty"`
	Skipped  bool             `json:"skipped,omitempty"`
	Err      string           `json:"err,omitempty"`
	Rec      *recognitionJSON `json:"rec,omitempty"`
}

// ErrJournalMismatch reports a journal whose header does not match the
// job spec being opened over it — a different corpus, key set, or
// grading options. Resuming over it would silently mix two jobs'
// results, so Open refuses.
var ErrJournalMismatch = errors.New("jobs: journal belongs to a different job")

// decodeJournal parses journal bytes into the header and grade records,
// tolerating a torn tail: parsing stops at the first malformed or
// unterminated line and good reports the byte length of the valid
// prefix. Grade records with out-of-range coordinates also stop the
// replay (they cannot belong to this job, so everything after them is
// suspect). The error is non-nil only when no usable header exists —
// partial grade data is recoverable state, a missing header is not.
func decodeJournal(data []byte) (h journalHeader, recs []gradeRecord, good int64, err error) {
	line, rest, ok := cutLine(data)
	if !ok {
		return h, nil, 0, errors.New("jobs: journal has no complete header line")
	}
	if err := json.Unmarshal(line, &h); err != nil {
		return h, nil, 0, fmt.Errorf("jobs: journal header: %w", err)
	}
	switch {
	case h.Type != "header":
		return h, nil, 0, errors.New("jobs: journal does not start with a header record")
	case h.V != journalVersion:
		return h, nil, 0, fmt.Errorf("jobs: journal version %d, want %d", h.V, journalVersion)
	case h.Suspects <= 0 || h.Suspects > maxJournalDim || h.Keys <= 0 || h.Keys > maxJournalDim:
		return h, nil, 0, fmt.Errorf("jobs: journal dimensions %dx%d out of range", h.Suspects, h.Keys)
	}
	good = int64(len(data) - len(rest))
	data = rest
	for {
		line, rest, ok := cutLine(data)
		if !ok {
			return h, recs, good, nil // torn or absent tail — done
		}
		var r gradeRecord
		if json.Unmarshal(line, &r) != nil || r.Type != "grade" ||
			r.S < 0 || r.S >= h.Suspects || r.K < 0 || r.K >= h.Keys {
			return h, recs, good, nil // corruption — discard the rest
		}
		recs = append(recs, r)
		good += int64(len(data) - len(rest))
		data = rest
	}
}

// cutLine splits data at the first newline; ok is false when no complete
// (newline-terminated) line remains.
func cutLine(data []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil, nil, false
	}
	return data[:i], data[i+1:], true
}

// journal is the append side of the write-ahead log. Append is
// serialized by a mutex — grades from concurrent workers interleave at
// record granularity, never mid-line.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	sync    bool
	bytes   int64
	records int64
}

// createJournal starts a fresh journal at path with the given header.
// The header is synced before the first grade can be appended, so a
// journal on disk always identifies its job.
func createJournal(path string, h journalHeader, syncEach bool) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: create journal: %w", err)
	}
	j := &journal{f: f, sync: syncEach}
	if err := j.appendLine(h); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: sync journal header: %w", err)
	}
	return j, nil
}

// openJournal replays an existing journal and reopens it for append,
// truncating any torn tail first so new records never concatenate onto a
// partial line.
func openJournal(path string, syncEach bool) (*journal, journalHeader, []gradeRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, journalHeader{}, nil, fmt.Errorf("jobs: read journal: %w", err)
	}
	h, recs, good, err := decodeJournal(data)
	if err != nil {
		return nil, h, nil, err
	}
	if good < int64(len(data)) {
		if err := os.Truncate(path, good); err != nil {
			return nil, h, nil, fmt.Errorf("jobs: truncate torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, h, nil, fmt.Errorf("jobs: reopen journal: %w", err)
	}
	return &journal{f: f, sync: syncEach, bytes: good, records: int64(len(recs))}, h, recs, nil
}

// Append journals one grade record, fsync'ing before returning (unless
// the journal was opened with sync off). Once Append returns, the grade
// survives kill -9.
func (j *journal) Append(r gradeRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLine(r); err != nil {
		return err
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("jobs: sync journal: %w", err)
		}
	}
	j.records++
	return nil
}

func (j *journal) appendLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("jobs: encode journal record: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("jobs: append journal record: %w", err)
	}
	j.bytes += int64(len(b))
	return nil
}

// Bytes and Records report the journal's current size, for the
// jobs.journal.* observability counters.
func (j *journal) Bytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

func (j *journal) Records() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// JournalPath, ResultPath and TracePath name the files a job keeps in
// its directory: the write-ahead journal (correctness), the canonical
// result manifest (the artifact), and the telemetry event stream
// (observability; losing it loses nothing but visibility).
func JournalPath(dir string) string { return filepath.Join(dir, "journal.jsonl") }
func ResultPath(dir string) string  { return filepath.Join(dir, "result.json") }
func TracePath(dir string) string   { return filepath.Join(dir, "trace.jsonl") }
