package jobs

import (
	"errors"
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathmark/internal/crt"
	"pathmark/internal/iofault"
	"pathmark/internal/wm"
)

func testHeader() journalHeader {
	return journalHeader{V: journalVersion, Type: "header", Job: "deadbeef", Suspects: 3, Keys: 2}
}

func testRecords() []gradeRecord {
	return []gradeRecord{
		{Type: "grade", S: 0, K: 0, Attempts: 1, Rec: &recognitionJSON{Watermark: "12345", Modulus: "99991", FullCoverage: true, Windows: 100, Confidence: 1}},
		{Type: "grade", S: 0, K: 1, Attempts: 3, Err: "wm: trace stage: boom"},
		{Type: "grade", S: 2, K: 1, Attempts: 0, Skipped: true, Err: "jobs: key 1 skipped: circuit breaker open after 2 consecutive hard failures"},
	}
}

func writeTestJournal(t *testing.T, syncEach bool) (path string) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := createJournal(iofault.OS, path, testHeader(), syncEach)
	if err != nil {
		t.Fatalf("createJournal: %v", err)
	}
	for _, r := range testRecords() {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

func TestJournalRoundTrip(t *testing.T) {
	for _, syncEach := range []bool{false, true} {
		path := writeTestJournal(t, syncEach)
		j, h, recs, err := openJournal(iofault.OS, path, syncEach)
		if err != nil {
			t.Fatalf("openJournal: %v", err)
		}
		defer j.Close()
		if h != testHeader() {
			t.Errorf("header round trip: got %+v", h)
		}
		want := testRecords()
		if len(recs) != len(want) {
			t.Fatalf("got %d records, want %d", len(recs), len(want))
		}
		for i := range want {
			if recs[i].S != want[i].S || recs[i].K != want[i].K ||
				recs[i].Err != want[i].Err || recs[i].Skipped != want[i].Skipped ||
				recs[i].Attempts != want[i].Attempts {
				t.Errorf("record %d: got %+v want %+v", i, recs[i], want[i])
			}
		}
		if recs[0].Rec == nil || recs[0].Rec.Watermark != "12345" {
			t.Errorf("record 0 lost its recognition: %+v", recs[0].Rec)
		}
		// The reopened journal keeps appending where the old one stopped.
		if err := j.Append(gradeRecord{Type: "grade", S: 1, K: 0}); err != nil {
			t.Fatalf("append after reopen: %v", err)
		}
		j.Close()
		if _, _, recs2, err := openJournal(iofault.OS, path, syncEach); err != nil || len(recs2) != 4 {
			t.Errorf("after reopen+append: %d records, err %v; want 4, nil", len(recs2), err)
		}
	}
}

// TestJournalTornTail is the kill -9 mid-append scenario: a partial line
// at the tail (no newline, or garbage) is discarded on replay, the file
// is truncated back to the valid prefix, and subsequent appends produce
// a journal that replays cleanly.
func TestJournalTornTail(t *testing.T) {
	cases := []struct {
		name string
		tail string
	}{
		{"unterminated record", string(iofault.Frame([]byte(`{"type":"grade","s":1,"k":0,"attempts":1}`)))[:20]},
		{"terminated garbage", "{garbage}\n"},
		{"binary junk", "\x00\xff\x17torn"},
		{"unframed record", `{"type":"grade","s":1,"k":0}` + "\n"},
		{"framed wrong shape", string(iofault.Frame([]byte(`[1,2,3]`)))},
		{"framed out-of-range coordinates", string(iofault.Frame([]byte(`{"type":"grade","s":99,"k":0}`)))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTestJournal(t, false)
			clean, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, append(clean, tc.tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			j, _, recs, err := openJournal(iofault.OS, path, false)
			if err != nil {
				t.Fatalf("openJournal over torn tail: %v", err)
			}
			if len(recs) != len(testRecords()) {
				t.Errorf("got %d records, want %d (torn tail must be dropped, valid prefix kept)", len(recs), len(testRecords()))
			}
			if err := j.Append(gradeRecord{Type: "grade", S: 1, K: 1}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			j.Close()
			// The torn bytes are gone from disk: replay sees the original
			// records plus the new one, nothing else.
			if _, _, recs2, err := openJournal(iofault.OS, path, false); err != nil || len(recs2) != len(testRecords())+1 {
				t.Errorf("after recovery+append: %d records, err %v", len(recs2), err)
			}
		})
	}
}

func TestJournalHeaderValidation(t *testing.T) {
	framed := func(payload string) string { return string(iofault.Frame([]byte(payload))) }
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"no newline", framed(`{"v":2,"type":"header","job":"x","suspects":1,"keys":1}`)[:30]},
		{"not json", framed("hello")},
		{"unframed v1 header", `{"v":1,"type":"header","job":"x","suspects":1,"keys":1}` + "\n"},
		{"wrong type", framed(`{"v":2,"type":"grade","s":0,"k":0}`)},
		{"wrong version", framed(`{"v":99,"type":"header","job":"x","suspects":1,"keys":1}`)},
		{"zero dims", framed(`{"v":2,"type":"header","job":"x","suspects":0,"keys":1}`)},
		{"huge dims", framed(`{"v":2,"type":"header","job":"x","suspects":99999999,"keys":99999999}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := decodeJournal([]byte(tc.data)); err == nil {
				t.Errorf("unusable header accepted: %q", tc.data)
			}
		})
	}
}

// TestJournalCorruptHeader covers the satellite case of a corrupted
// *header* line (first line, not tail): a header that fails its checksum
// while later records verify is mid-log corruption, reported as a typed
// *iofault.CorruptError rather than the generic missing-header error.
func TestJournalCorruptHeader(t *testing.T) {
	path := writeTestJournal(t, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the header payload; its frame no longer
	// verifies, but every grade record after it still does.
	i := strings.IndexByte(string(data), '\n') - 2
	data[i] ^= 0x01
	_, _, _, derr := decodeJournal(data)
	if !iofault.IsCorrupt(derr) {
		t.Fatalf("corrupt header surfaced as %v, want *iofault.CorruptError", derr)
	}
}

func TestDecodeJournalDetectsMidLogCorruption(t *testing.T) {
	path := writeTestJournal(t, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle record. The records after it still verify, so
	// this cannot be a torn tail: decode keeps the prefix before the
	// damage but reports a typed corruption error.
	lines := strings.SplitAfter(string(data), "\n")
	lines[2] = "{torn}\n"
	h, recs, good, derr := decodeJournal([]byte(strings.Join(lines, "")))
	if !iofault.IsCorrupt(derr) {
		t.Fatalf("mid-log corruption surfaced as %v, want *iofault.CorruptError", derr)
	}
	if h != testHeader() || len(recs) != 1 {
		t.Errorf("got %d records before the corruption, want 1", len(recs))
	}
	wantGood := int64(len(lines[0]) + len(lines[1]))
	if good != wantGood {
		t.Errorf("good = %d, want %d", good, wantGood)
	}
}

// TestRecognitionSerdeRoundTrip pins the canonical-form invariant:
// encode → decode → encode is the identity on bytes, including big.Int
// watermarks past 2^53, surviving statements, and stage errors.
func TestRecognitionSerdeRoundTrip(t *testing.T) {
	w, _ := new(big.Int).SetString("123456789012345678901234567890", 10)
	rec := &wm.Recognition{
		Watermark:         w,
		Modulus:           new(big.Int).Lsh(big.NewInt(1), 100),
		FullCoverage:      false,
		Windows:           123456,
		ValidStatements:   77,
		UniqueStatements:  41,
		VotedOut:          3,
		Survivors:         38,
		TraceBits:         987654,
		PrefilterRejected: 1000,
		Surviving:         []crt.Statement{{I: 0, J: 2, X: 12345}, {I: 3, J: 3, X: ^uint64(0)}},
		Confidence:        0.625,
		Degraded:          true,
		StageErrors: []*wm.StageError{
			{Stage: "scan", Worker: 2, Cause: errors.New("recovered scan panic: boom")},
			{Stage: "vote", Worker: -1},
		},
	}
	enc := encodeRecognition(rec)
	back, err := decodeRecognition(enc)
	if err != nil {
		t.Fatalf("decodeRecognition: %v", err)
	}
	if !sameRec(rec, back) {
		t.Errorf("round trip not identity:\n enc  %+v\n back %+v", enc, encodeRecognition(back))
	}
	if back.Watermark.Cmp(w) != 0 {
		t.Errorf("watermark lost precision: %v", back.Watermark)
	}
	if len(back.StageErrors) != 2 || back.StageErrors[0].Cause.Error() != "recovered scan panic: boom" {
		t.Errorf("stage errors mangled: %+v", back.StageErrors)
	}
	if nilRec, err := decodeRecognition(nil); err != nil || nilRec != nil {
		t.Errorf("nil recognition must round trip to nil")
	}
	if _, err := decodeRecognition(&recognitionJSON{Watermark: "not-a-number"}); err == nil {
		t.Error("bad watermark accepted")
	}
}
