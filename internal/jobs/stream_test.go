package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathmark/internal/bitstring"
	"pathmark/internal/iofault"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// streamFixture returns the decoded trace bit-string of one marked
// suspect (as a '0'/'1' string) plus the fixture keys: the real key
// recognizes the trace, the decoys do not.
func streamFixture(t *testing.T) (string, []*wm.Key) {
	t.Helper()
	suspects, keys, _ := fixture(t)
	tr, _, err := vm.CollectWith(suspects[0], vm.RunOptions{
		Input: keys[0].Input, SnapshotLimit: 1, StepLimit: 100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr.DecodeBits().String(), keys
}

func feedAll(t *testing.T, sj *StreamJob, bits string, chunk int) {
	t.Helper()
	for lo := 0; lo < len(bits); lo += chunk {
		hi := lo + chunk
		if hi > len(bits) {
			hi = len(bits)
		}
		if _, err := sj.Feed(int64(lo), bits[lo:hi]); err != nil {
			t.Fatalf("feed at %d: %v", lo, err)
		}
	}
}

// TestStreamJobMatchesBatchRecognition pins the job layer end to end:
// chunked upload through the journal yields, per key, the batch
// RecognizeBits result, and the real key's watermark is recovered.
func TestStreamJobMatchesBatchRecognition(t *testing.T) {
	bits, keys := streamFixture(t)
	spec := StreamSpec{Keys: keys, Opts: StreamOptions{NoSync: true, NoTrace: true}}
	sj, err := OpenStream(t.TempDir(), spec)
	if err != nil {
		t.Fatal(err)
	}
	defer sj.Close()
	feedAll(t, sj, bits, 1024)
	res, err := sj.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != int64(len(bits)) {
		t.Fatalf("result bits %d != %d", res.Bits, len(bits))
	}
	if !res.Recognitions[0].FullCoverage {
		t.Fatal("real key did not reach full coverage over the streamed trace")
	}
	// The wrong-cipher decoy must fail. The wrong-input decoy shares the
	// real cipher and legitimately matches here: a stream job scans the
	// uploaded trace as-is — the key's secret input only matters when the
	// recognizer does the tracing itself.
	if res.Recognitions[1].FullCoverage {
		t.Fatal("wrong-cipher decoy reached full coverage")
	}
	// Cross-check against batch recognition under the same options.
	parsed, err := bitstring.FromString(bits)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := wm.RecognizeBits(parsed, keys[0], wm.RecognizeOpts{Kernel: wm.KernelScalar})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recognitions[0].Watermark.Cmp(batch.Watermark) != 0 ||
		res.Recognitions[0].Windows != batch.Windows {
		t.Fatalf("stream job diverged from batch: %+v vs %+v", res.Recognitions[0], batch)
	}
}

// TestStreamJobDuplicateAndGapChunks pins the upload contract: full
// duplicates are no-ops, overlapping re-sends are trimmed, and a chunk
// starting past the committed offset is refused with ErrStreamGap.
func TestStreamJobDuplicateAndGapChunks(t *testing.T) {
	bits, keys := streamFixture(t)
	spec := StreamSpec{Keys: keys[:1], Opts: StreamOptions{NoSync: true, NoTrace: true}}
	sj, err := OpenStream(t.TempDir(), spec)
	if err != nil {
		t.Fatal(err)
	}
	defer sj.Close()

	if _, err := sj.Feed(0, bits[:100]); err != nil {
		t.Fatal(err)
	}
	// Full duplicate: committed unchanged, no journal growth.
	recordsBefore := sj.wal.Records()
	if off, err := sj.Feed(0, bits[:100]); err != nil || off != 100 {
		t.Fatalf("duplicate chunk: off=%d err=%v", off, err)
	}
	if sj.wal.Records() != recordsBefore {
		t.Fatal("duplicate chunk was journaled")
	}
	// Overlapping re-send: only the new suffix lands.
	if off, err := sj.Feed(50, bits[50:200]); err != nil || off != 200 {
		t.Fatalf("overlapping chunk: off=%d err=%v", off, err)
	}
	// Gap: refused, offset reported.
	if _, err := sj.Feed(300, bits[300:400]); !errors.Is(err, ErrStreamGap) {
		t.Fatalf("gap chunk: err=%v, want ErrStreamGap", err)
	}
	if sj.Committed() != 200 {
		t.Fatalf("committed %d after gap refusal, want 200", sj.Committed())
	}
}

// TestStreamJobCrashResume is the crash-safety property: kill the job at
// an arbitrary chunk boundary (drop the in-memory state, reopen over the
// same directory), resume the upload from the reported committed offset,
// and require the final result manifest to be byte-identical to an
// uninterrupted stream's.
func TestStreamJobCrashResume(t *testing.T) {
	bits, keys := streamFixture(t)
	spec := StreamSpec{Keys: keys, Opts: StreamOptions{NoSync: true, NoTrace: true}}

	finish := func(dir string, upTo int, chunk int) string {
		sj, err := OpenStream(dir, spec)
		if err != nil {
			t.Fatal(err)
		}
		start := int(sj.Committed())
		for lo := start; lo < upTo; lo += chunk {
			hi := lo + chunk
			if hi > upTo {
				hi = upTo
			}
			if _, err := sj.Feed(int64(lo), bits[lo:hi]); err != nil {
				t.Fatalf("feed at %d: %v", lo, err)
			}
		}
		if upTo == len(bits) {
			if _, err := sj.Finish(); err != nil {
				t.Fatal(err)
			}
		}
		if err := sj.Close(); err != nil {
			t.Fatal(err)
		}
		if upTo < len(bits) {
			return ""
		}
		b, err := os.ReadFile(ResultPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	// Uninterrupted reference run.
	refDir := t.TempDir()
	want := finish(refDir, len(bits), 777)

	// Crash mid-stream, then resume in a "new process".
	crashDir := t.TempDir()
	finish(crashDir, len(bits)/2, 777) // first lifetime: half the trace, then "crash"
	got := finish(crashDir, len(bits), 777)
	if got != want {
		t.Fatal("crash-resumed stream result differs from uninterrupted run")
	}

	// Resume must also tolerate a torn tail: append garbage to the chunk
	// journal (a crash mid-append) and reopen.
	tornDir := t.TempDir()
	finish(tornDir, len(bits)/3, 500)
	f, err := os.OpenFile(StreamPath(tornDir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"chunk","off":`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got = finish(tornDir, len(bits), 500)
	if got != want {
		t.Fatal("torn-tail resume result differs from uninterrupted run")
	}
}

// TestStreamJobRejectsForeignJournal pins the identity check: a spec
// with different keys refuses to resume over another stream's journal.
func TestStreamJobRejectsForeignJournal(t *testing.T) {
	bits, keys := streamFixture(t)
	dir := t.TempDir()
	sj, err := OpenStream(dir, StreamSpec{Keys: keys, Opts: StreamOptions{NoSync: true, NoTrace: true}})
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, sj, bits[:512], 128)
	sj.Close()
	_, err = OpenStream(dir, StreamSpec{Keys: keys[:1], Opts: StreamOptions{NoSync: true, NoTrace: true}})
	if !errors.Is(err, ErrJournalMismatch) {
		t.Fatalf("foreign journal open: err=%v, want ErrJournalMismatch", err)
	}
}

// TestStreamJobFinishSealsStream pins the lifecycle: after Finish, Feed
// refuses with ErrStreamFinished, Finish is idempotent, and a reopened
// job sees the stream as finished.
func TestStreamJobFinishSealsStream(t *testing.T) {
	bits, keys := streamFixture(t)
	dir := t.TempDir()
	spec := StreamSpec{Keys: keys[:1], Opts: StreamOptions{NoSync: true, NoTrace: true}}
	sj, err := OpenStream(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, sj, bits, 4096)
	first, err := sj.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sj.Feed(sj.Committed(), "0101"); !errors.Is(err, ErrStreamFinished) {
		t.Fatalf("feed after finish: err=%v, want ErrStreamFinished", err)
	}
	again, err := sj.Finish()
	if err != nil || again.Recognitions[0] != first.Recognitions[0] {
		t.Fatalf("Finish not idempotent: %v", err)
	}
	sj.Close()

	re, err := OpenStream(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Finished() {
		t.Fatal("reopened stream not marked finished")
	}
	if _, err := re.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamPathHelpers pins the artifact naming contract all layers
// share.
func TestStreamPathHelpers(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{JournalPath("d"), filepath.Join("d", "journal.jsonl")},
		{ResultPath("d"), filepath.Join("d", "result.json")},
		{TracePath("d"), filepath.Join("d", "trace.jsonl")},
		{StreamPath("d"), filepath.Join("d", "stream.jsonl")},
	} {
		if tc.got != tc.want {
			t.Fatalf("path helper returned %q, want %q", tc.got, tc.want)
		}
	}
	if !strings.HasSuffix(StreamPath("d"), "stream.jsonl") {
		t.Fatal("unreachable")
	}
}

// TestStreamJournalCorruptHeader: a bit flip inside the stream journal's
// header line — with intact records after it, so this is mid-log
// corruption, not a torn tail — must refuse the resume with a typed
// *iofault.CorruptError, the signal the daemon quarantines on.
func TestStreamJournalCorruptHeader(t *testing.T) {
	bits, keys := streamFixture(t)
	dir := t.TempDir()
	spec := StreamSpec{Keys: keys, Opts: StreamOptions{NoSync: true, NoTrace: true}}
	sj, err := OpenStream(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, sj, bits[:1024], 256)
	sj.Close()

	path := StreamPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nl := strings.IndexByte(string(data), '\n')
	data[nl-2] ^= 0x40 // inside the header payload, after the frame prefix
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStream(dir, spec)
	if !iofault.IsCorrupt(err) {
		t.Fatalf("corrupt header resume: err=%v, want *iofault.CorruptError", err)
	}

	// A torn header (no complete first line at all) is a different story:
	// still refused, but as an unusable journal, not proven corruption.
	if err := os.WriteFile(path, data[:nl/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStream(dir, spec)
	if err == nil {
		t.Fatal("torn header accepted")
	}
	if iofault.IsCorrupt(err) {
		t.Fatalf("torn header misclassified as proven corruption: %v", err)
	}
}

// TestStreamJournalCorruptRecord: damage to a mid-log chunk record (with
// a valid record after it) is detected by the per-record checksum and
// surfaces as a typed corruption error rather than a silent bad resume.
func TestStreamJournalCorruptRecord(t *testing.T) {
	bits, keys := streamFixture(t)
	dir := t.TempDir()
	spec := StreamSpec{Keys: keys, Opts: StreamOptions{NoSync: true, NoTrace: true}}
	sj, err := OpenStream(dir, spec)
	if err != nil {
		t.Fatal(err)
	}
	feedAll(t, sj, bits[:2048], 256) // header + 8 chunk records
	sj.Close()

	path := StreamPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	mid := []byte(lines[3])
	mid[len(mid)/2] ^= 0x01
	lines[3] = string(mid)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStream(dir, spec)
	if !iofault.IsCorrupt(err) {
		t.Fatalf("corrupt chunk record resume: err=%v, want *iofault.CorruptError", err)
	}
}
