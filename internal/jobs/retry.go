package jobs

import (
	"context"
	"encoding/binary"
	"errors"
	"time"

	"pathmark/internal/cache"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// RetryPolicy bounds how hard the runner works to complete one grade.
// Failures split three ways at the retry boundary:
//
//   - retryable: pipeline-stage failures (*wm.StageError) and resource
//     exhaustion (*vm.ResourceError) — a slow trace hitting a per-grade
//     deadline, a scan worker lost to a fault. Deterministic cases (a
//     genuine step-limit overrun) retry to the same outcome, which the
//     bounded attempt count makes cheap and the journal makes harmless.
//   - terminal: malformed inputs (*wm.KeyFileError) and anything
//     untyped — retrying cannot fix a bad key.
//   - interruption: the job's own context is done. Not a failure at all:
//     the grade is not journaled and re-runs on resume.
type RetryPolicy struct {
	// MaxAttempts is the total tries per grade (first attempt included);
	// <= 0 means DefaultMaxAttempts.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; attempt n
	// waits BaseDelay·2^(n-2), jittered ±25%. 0 disables sleeping (the
	// retries still happen, back to back).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; 0 means 32×BaseDelay.
	MaxDelay time.Duration
}

// DefaultMaxAttempts is the per-grade attempt bound when the policy does
// not set one.
const DefaultMaxAttempts = 3

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return DefaultMaxAttempts
	}
	return p.MaxAttempts
}

// backoff returns the pause before attempt+1, with deterministic jitter:
// the ±25% spread is drawn from a hash of (job digest, cell, attempt),
// so two runs of the same job jitter identically — retry timing, like
// everything else here, replays.
func (p RetryPolicy) backoff(job cache.Digest, s, k, attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay << uint(attempt-1)
	max := p.MaxDelay
	if max <= 0 {
		max = 32 * p.BaseDelay
	}
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(s))
	binary.LittleEndian.PutUint64(buf[8:], uint64(k))
	binary.LittleEndian.PutUint64(buf[16:], uint64(attempt))
	h := cache.DigestBytes(job[:], buf[:])
	r := binary.LittleEndian.Uint64(h[:8])
	// jitter in [-25%, +25%): d/2 wide, centered on d.
	return d - d/4 + time.Duration(r%uint64(d/2+1))
}

// Backoff is the exported form of backoff for other campaign engines
// (the tournament's cell retries): id identifies the campaign, (a, b) the
// cell. The jitter is drawn from a hash of all four values, so retry
// timing replays exactly like the grades themselves.
func (p RetryPolicy) Backoff(id cache.Digest, a, b, attempt int) time.Duration {
	return p.backoff(id, a, b, attempt)
}

// Attempts is the effective per-cell attempt bound (MaxAttempts, or
// DefaultMaxAttempts when unset).
func (p RetryPolicy) Attempts() int { return p.attempts() }

// SleepCtx pauses for d unless ctx finishes first — exported alongside
// Backoff so retry loops outside this package pause identically.
func SleepCtx(ctx context.Context, d time.Duration) { sleepCtx(ctx, d) }

// Retryable classifies an error from one grade attempt: true for the
// transient-capable typed failures (stage and resource errors), false
// for terminal ones (key-file damage, unknown errors). Classification is
// errors.Is/As-based, so it survives any number of %w wrapping layers.
func Retryable(err error) bool {
	var kfe *wm.KeyFileError
	if errors.As(err, &kfe) {
		return false
	}
	var re *vm.ResourceError
	var se *wm.StageError
	return errors.As(err, &re) || errors.As(err, &se)
}

// sleepCtx pauses for d unless ctx finishes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
