package jobs

import (
	"context"
	"math/big"
	"reflect"
	"sync"
	"testing"

	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

// The shared corpus fixture: six suspects (five fingerprinted copies of
// one host plus the unmarked host itself) against three candidate keys
// (the fleet's real key, a wrong-cipher decoy, and a wrong-input decoy).
// Built once per test binary — embedding is the expensive part.
var (
	fixOnce     sync.Once
	fixErr      error
	fixSuspects []*vm.Program
	fixKeys     []*wm.Key
	fixWs       []*big.Int
)

func fixture(t testing.TB) ([]*vm.Program, []*wm.Key, []*big.Int) {
	t.Helper()
	fixOnce.Do(func() {
		host := workloads.RandomProgram(workloads.RandProgOptions{Seed: 9100})
		real, err := wm.NewKey(nil, feistel.KeyFromUint64(11, 22), 64)
		if err != nil {
			fixErr = err
			return
		}
		for i := 0; i < 5; i++ {
			fixWs = append(fixWs, wm.RandomWatermark(64, uint64(2000+i)))
		}
		copies, err := wm.EmbedBatch(host, fixWs, real, wm.BatchOptions{
			EmbedOptions: wm.EmbedOptions{Seed: 17},
		})
		if err != nil {
			fixErr = err
			return
		}
		for _, c := range copies {
			fixSuspects = append(fixSuspects, c.Program)
		}
		fixSuspects = append(fixSuspects, host)

		decoyCipher, err := wm.NewKey(nil, feistel.KeyFromUint64(99, 7), 64)
		if err != nil {
			fixErr = err
			return
		}
		decoyInput, err := wm.NewKey([]int64{5, 6}, feistel.KeyFromUint64(11, 22), 64)
		if err != nil {
			fixErr = err
			return
		}
		fixKeys = []*wm.Key{real, decoyCipher, decoyInput}
	})
	if fixErr != nil {
		t.Fatalf("building corpus fixture: %v", fixErr)
	}
	return fixSuspects, fixKeys, fixWs
}

// baseSpec returns a fresh spec over the fixture with fast test options
// (no fsync, serial scans).
func baseSpec(t testing.TB) Spec {
	suspects, keys, _ := fixture(t)
	return Spec{Suspects: suspects, Keys: keys, Opts: Options{NoSync: true}}
}

// mustEncode encodes a result or fails the test.
func mustEncode(t testing.TB, r *Result) []byte {
	t.Helper()
	b, err := EncodeResult(r)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	return b
}

// mustExecute runs a job end to end in dir.
func mustExecute(t testing.TB, dir string, spec Spec) *Result {
	t.Helper()
	res, err := Execute(context.Background(), dir, spec)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

// sameRec compares two recognitions via their canonical serialized form.
func sameRec(a, b *wm.Recognition) bool {
	return reflect.DeepEqual(encodeRecognition(a), encodeRecognition(b))
}
