package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"pathmark/internal/iofault"
)

// Corruption quarantine. When replay proves a job's log is corrupt
// mid-stream (see iofault.CorruptError) the daemon must neither resume
// over the rotten state nor refuse to start: the job directory is moved
// aside into quarantine/ under the serve root with a reason record, and
// everything else keeps serving. A quarantined directory is inert —
// nothing reads it again until an operator inspects it — but nothing in
// it is deleted: the corrupt log is the evidence.

// QuarantineDir names the quarantine area under a serve root.
func QuarantineDir(root string) string { return filepath.Join(root, "quarantine") }

// quarantineReason is the reason.json dropped inside a quarantined
// directory.
type quarantineReason struct {
	Dir    string `json:"dir"`    // original directory (absolute or as given)
	Reason string `json:"reason"` // the error that condemned it
}

// Quarantine moves dir into root's quarantine area with a reason record
// and returns the destination. The move is a rename (same filesystem, so
// atomic) followed by a parent-dir fsync on both ends; name collisions
// from repeated quarantines of same-named jobs get a numeric suffix.
func Quarantine(fs iofault.FS, root, dir string, reason error) (string, error) {
	if fs == nil {
		fs = iofault.OS
	}
	qdir := QuarantineDir(root)
	if err := fs.MkdirAll(qdir, 0o755); err != nil {
		return "", fmt.Errorf("jobs: create quarantine dir: %w", err)
	}
	base := filepath.Base(dir)
	dst := filepath.Join(qdir, base)
	for n := 1; ; n++ {
		if _, err := fs.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s-%d", base, n))
	}
	if err := fs.Rename(dir, dst); err != nil {
		return "", fmt.Errorf("jobs: quarantine %s: %w", dir, err)
	}
	if err := fs.SyncDir(filepath.Dir(dir)); err != nil {
		return dst, fmt.Errorf("jobs: quarantine %s: sync dir: %w", dir, err)
	}
	msg := ""
	if reason != nil {
		msg = reason.Error()
	}
	b, err := json.MarshalIndent(quarantineReason{Dir: dir, Reason: msg}, "", "  ")
	if err != nil {
		return dst, fmt.Errorf("jobs: encode quarantine reason: %w", err)
	}
	if err := iofault.WriteFileAtomic(fs, filepath.Join(dst, "reason.json"), append(b, '\n')); err != nil {
		return dst, fmt.Errorf("jobs: write quarantine reason: %w", err)
	}
	return dst, nil
}
