package jobs

import "fmt"

// The circuit breaker protects a corpus job from a poisoned candidate
// key — one whose grades fail hard against suspect after suspect (a key
// file pointing at the wrong secret input makes every trace blow its
// step budget, at full trace cost each time). After Threshold
// consecutive hard failures the key's breaker opens and its remaining
// grades are recorded as skips instead of executed.
//
// Determinism is the delicate part: "consecutive" must not depend on the
// execution schedule, or results would vary with the worker count and a
// resumed run could disagree with an uninterrupted one. The runner
// therefore processes suspects in fixed-size waves: grades within a wave
// run fully parallel, and breaker state advances only at wave
// boundaries, from completed outcomes walked in suspect order. Skip
// decisions for wave w are a pure function of waves < w — identical at
// any worker count and across crash/resume.

// BreakerPolicy configures the per-key circuit breaker.
type BreakerPolicy struct {
	// Threshold is the consecutive hard-failure count that opens a key's
	// breaker: 0 means DefaultBreakerThreshold, < 0 disables the breaker.
	Threshold int
	// Wave is the number of suspects graded between breaker evaluations:
	// 0 means DefaultBreakerWave. Smaller waves react faster but cap the
	// suspect-level parallelism per barrier.
	Wave int
}

// DefaultBreakerThreshold and DefaultBreakerWave are the policy values
// used when BreakerPolicy leaves them zero.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerWave      = 8
)

func (p BreakerPolicy) threshold() int {
	if p.Threshold == 0 {
		return DefaultBreakerThreshold
	}
	return p.Threshold
}

func (p BreakerPolicy) wave() int {
	if p.Wave <= 0 {
		return DefaultBreakerWave
	}
	return p.Wave
}

// BreakerOpenError marks a grade that was skipped because its key's
// circuit breaker had tripped. It lands in the result's Errors matrix
// (and, as a string, in the journal), so skips are first-class recorded
// outcomes, not holes.
type BreakerOpenError struct {
	// Key is the candidate-key index whose breaker was open.
	Key int
	// Failures is the consecutive hard-failure count that tripped it.
	Failures int
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("jobs: key %d skipped: circuit breaker open after %d consecutive hard failures", e.Key, e.Failures)
}

// breaker tracks per-key consecutive hard failures. Not safe for
// concurrent use; the runner touches it only between waves.
type breaker struct {
	threshold int   // <= 0: disabled
	consec    []int // consecutive hard failures, per key
	open      []bool
	trips     int
}

func newBreaker(keys int, p BreakerPolicy) *breaker {
	t := p.threshold()
	if t < 0 {
		t = 0
	}
	return &breaker{threshold: t, consec: make([]int, keys), open: make([]bool, keys)}
}

// observe folds the outcomes of suspects [lo, hi) into the breaker
// state, walking suspects in index order. A hard failure (no
// recognition, not a skip) increments the key's run; a completed grade —
// even a degraded one — resets it; skips leave it untouched (they are
// consequences of the breaker, not evidence for it).
func (b *breaker) observe(outcomes [][]*outcome, lo, hi int) {
	if b.threshold <= 0 {
		return
	}
	for s := lo; s < hi; s++ {
		for k, o := range outcomes[s] {
			if o == nil || o.skipped {
				continue
			}
			if o.rec == nil && o.errStr != "" {
				b.consec[k]++
				if !b.open[k] && b.consec[k] >= b.threshold {
					b.open[k] = true
					b.trips++
				}
			} else {
				b.consec[k] = 0
			}
		}
	}
}

// skip returns the typed error for a grade skipped by key k's open
// breaker, or nil when the breaker is closed.
func (b *breaker) skip(k int) *BreakerOpenError {
	if !b.open[k] {
		return nil
	}
	return &BreakerOpenError{Key: k, Failures: b.consec[k]}
}
