package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pathmark/internal/cache"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

func transientErr() error {
	return &wm.StageError{Stage: "trace", Worker: -1,
		Cause: &vm.ResourceError{Resource: "steps", Limit: 10, Used: 10, Cause: vm.ErrStepLimit}}
}

// TestRetryTransientFaultRecovers: a grade that fails its first attempts
// with a retryable error and then succeeds ends up clean — and the
// manifest is byte-identical to a run that never faulted, because
// attempt counts are journal-only bookkeeping.
func TestRetryTransientFaultRecovers(t *testing.T) {
	cleanBytes := mustEncode(t, mustExecute(t, t.TempDir(), baseSpec(t)))

	reg := obs.NewRegistry()
	spec := baseSpec(t)
	spec.Opts.Obs = reg
	spec.Opts.Retry = RetryPolicy{MaxAttempts: 3}
	spec.Opts.gradeHook = func(s, k, attempt int) error {
		if s == 0 && k == 0 && attempt < 3 {
			return transientErr()
		}
		return nil
	}
	res := mustExecute(t, t.TempDir(), spec)

	if res.Attempts[0][0] != 3 {
		t.Errorf("Attempts[0][0] = %d, want 3", res.Attempts[0][0])
	}
	if res.Corpus.Recognitions[0][0] == nil || res.Corpus.Errors[0][0] != nil {
		t.Errorf("transient fault not cleared: rec=%v err=%v",
			res.Corpus.Recognitions[0][0], res.Corpus.Errors[0][0])
	}
	if retries := reg.Counter("jobs.retries").Value(); retries != 2 {
		t.Errorf("jobs.retries = %d, want 2", retries)
	}
	if got := mustEncode(t, res); !bytes.Equal(got, cleanBytes) {
		t.Error("recovered run's manifest differs from a never-faulted run")
	}
}

// TestRetryExhaustion: a persistently failing grade stops at MaxAttempts
// and records the final failure.
func TestRetryExhaustion(t *testing.T) {
	reg := obs.NewRegistry()
	spec := baseSpec(t)
	spec.Opts.Obs = reg
	spec.Opts.Retry = RetryPolicy{MaxAttempts: 4}
	spec.Opts.Breaker = BreakerPolicy{Threshold: -1}
	spec.Opts.gradeHook = func(s, k, attempt int) error {
		if s == 0 && k == 0 {
			return transientErr()
		}
		return nil
	}
	res := mustExecute(t, t.TempDir(), spec)
	if res.Attempts[0][0] != 4 {
		t.Errorf("Attempts[0][0] = %d, want 4", res.Attempts[0][0])
	}
	if !errors.Is(res.Corpus.Errors[0][0], vm.ErrStepLimit) {
		t.Errorf("final failure lost its typed cause: %v", res.Corpus.Errors[0][0])
	}
	if res.Failed != 1 {
		t.Errorf("Failed = %d, want 1", res.Failed)
	}
	if retries := reg.Counter("jobs.retries").Value(); retries != 3 {
		t.Errorf("jobs.retries = %d, want 3", retries)
	}
}

// TestTerminalErrorsNotRetried: key-file damage and unknown errors are
// terminal — one attempt, no retries.
func TestTerminalErrorsNotRetried(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"key file error", &wm.KeyFileError{Field: "primes", Offset: 3, Msg: "invalid basis"}},
		{"wrapped key file error", fmt.Errorf("layer: %w", &wm.KeyFileError{Offset: -1, Msg: "truncated"})},
		{"unknown error", errors.New("some unclassified explosion")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			spec := baseSpec(t)
			spec.Opts.Obs = reg
			spec.Opts.Retry = RetryPolicy{MaxAttempts: 5}
			spec.Opts.Breaker = BreakerPolicy{Threshold: -1}
			spec.Opts.gradeHook = func(s, k, attempt int) error {
				if s == 1 && k == 2 {
					return tc.err
				}
				return nil
			}
			res := mustExecute(t, t.TempDir(), spec)
			if res.Attempts[1][2] != 1 {
				t.Errorf("Attempts[1][2] = %d, want 1 (terminal errors must not retry)", res.Attempts[1][2])
			}
			if retries := reg.Counter("jobs.retries").Value(); retries != 0 {
				t.Errorf("jobs.retries = %d, want 0", retries)
			}
		})
	}
}

// TestRetryRetracesRealFailures drives a real resource failure (no
// hook): with StepLimit 1 every trace dies, and each retry must actually
// retrace — the cached failure is forgotten first — rather than replay
// the memo. Trace-cache misses prove it.
func TestRetryRetracesRealFailures(t *testing.T) {
	spec := baseSpec(t)
	spec.Opts.StepLimit = 1
	spec.Opts.Workers = 1
	spec.Opts.Retry = RetryPolicy{MaxAttempts: 2}
	spec.Opts.Breaker = BreakerPolicy{Threshold: -1}
	res := mustExecute(t, t.TempDir(), spec)

	total := res.Suspects * res.Keys
	if res.Failed != total {
		t.Fatalf("Failed = %d, want %d (every trace is starved)", res.Failed, total)
	}
	for s := 0; s < res.Suspects; s++ {
		for k := 0; k < res.Keys; k++ {
			if res.Attempts[s][k] != 2 {
				t.Errorf("Attempts[%d][%d] = %d, want 2", s, k, res.Attempts[s][k])
			}
			if !errors.Is(res.Corpus.Errors[s][k], vm.ErrStepLimit) {
				t.Errorf("cell (%d,%d): lost typed cause: %v", s, k, res.Corpus.Errors[s][k])
			}
		}
	}
	// Without ForgetTrace, misses would stop at the distinct (suspect,
	// input) count; with it, every retry is a fresh trace. Exact count:
	// each grade's final attempt recomputes (first attempts may hit the
	// previous grade's memoized failure), so misses >= total.
	if misses := res.Corpus.TraceStats.Misses; misses < int64(total) {
		t.Errorf("trace misses = %d for %d grades with retries — retries replayed the memoized failure", misses, total)
	}
}

func TestRetryableClassification(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("a: %w", fmt.Errorf("b: %w", err)) }
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"stage error", &wm.StageError{Stage: "scan", Worker: 1, Cause: errors.New("x")}, true},
		{"resource error", &vm.ResourceError{Resource: "heap", Limit: 1, Used: 2, Cause: vm.ErrHeapLimit}, true},
		{"wrapped stage+resource", wrap(transientErr()), true},
		{"key file error", &wm.KeyFileError{Msg: "bad"}, false},
		{"key file inside stage error", &wm.StageError{Stage: "trace", Worker: -1, Cause: &wm.KeyFileError{Msg: "bad"}}, false},
		{"plain error", errors.New("nope"), false},
		{"wrapped plain error", wrap(errors.New("nope")), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("%s: Retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestBackoffDeterministic: the jittered backoff is a pure function of
// (policy, job, cell, attempt), grows exponentially, and respects the
// cap and the ±25% jitter band.
func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	job := cache.DigestBytes([]byte("job"))

	var prevLo time.Duration
	for attempt := 1; attempt <= 8; attempt++ {
		d1 := p.backoff(job, 2, 3, attempt)
		d2 := p.backoff(job, 2, 3, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		base := p.BaseDelay << uint(attempt-1)
		if base > p.MaxDelay {
			base = p.MaxDelay
		}
		lo, hi := base-base/4, base+base/4
		if d1 < lo || d1 > hi {
			t.Errorf("attempt %d: backoff %v outside jitter band [%v, %v]", attempt, d1, lo, hi)
		}
		if lo < prevLo {
			t.Errorf("attempt %d: backoff band shrank", attempt)
		}
		prevLo = lo
	}
	if d := p.backoff(job, 0, 0, 1); d == p.backoff(job, 0, 1, 1) && d == p.backoff(job, 1, 0, 1) {
		t.Error("jitter identical across cells — hash is ignoring coordinates")
	}
	if (RetryPolicy{}).backoff(job, 0, 0, 1) != 0 {
		t.Error("zero BaseDelay must not sleep")
	}
}

// TestGradeTimeout: a per-grade deadline turns a hung grade into a
// retryable failure instead of wedging the job.
func TestGradeTimeout(t *testing.T) {
	spec := baseSpec(t)
	spec.Opts.Workers = 1
	spec.Opts.Retry = RetryPolicy{MaxAttempts: 1}
	spec.Opts.Breaker = BreakerPolicy{Threshold: -1}
	spec.Opts.GradeTimeout = time.Nanosecond
	res, err := Execute(context.Background(), t.TempDir(), spec)
	if err != nil {
		t.Fatalf("Execute: %v (per-grade timeouts must not abort the job)", err)
	}
	if res.Failed != res.Suspects*res.Keys {
		t.Errorf("Failed = %d, want all %d", res.Failed, res.Suspects*res.Keys)
	}
	cellErr := res.Corpus.Errors[0][0]
	if !errors.Is(cellErr, context.DeadlineExceeded) {
		t.Errorf("timed-out grade: want DeadlineExceeded in chain, got %v", cellErr)
	}
	if !Retryable(cellErr) {
		t.Errorf("timed-out grade not classified retryable: %v", cellErr)
	}
}
