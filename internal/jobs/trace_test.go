package jobs

import (
	"context"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"pathmark/internal/obs"
)

func readTrace(t *testing.T, dir string) []obs.TraceEvent {
	t.Helper()
	data, err := os.ReadFile(TracePath(dir))
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	return obs.DecodeTraceEvents(data)
}

// TestJobTrace: a run writes trace.jsonl next to the journal with the
// job ID as trace ID and the full stage ladder for every executed grade.
func TestJobTrace(t *testing.T) {
	spec := baseSpec(t)
	dir := t.TempDir()
	mustExecute(t, dir, spec)

	id, err := SpecID(spec)
	if err != nil {
		t.Fatal(err)
	}
	evs := readTrace(t, dir)
	if len(evs) == 0 {
		t.Fatal("empty trace")
	}
	byEvent := map[string]int{}
	for _, ev := range evs {
		if ev.Trace != id {
			t.Fatalf("event %q has trace %q, want job ID %q", ev.Event, ev.Trace, id)
		}
		byEvent[ev.Event]++
	}
	M, K := len(spec.Suspects), len(spec.Keys)
	cells := M * K
	if byEvent["job.open"] != 1 || byEvent["job.done"] != 1 {
		t.Errorf("lifecycle events = %v, want one job.open and one job.done", byEvent)
	}
	for _, stage := range []string{"grade.trace", "grade.scan", "grade.vote", "grade.done"} {
		if byEvent[stage] != cells {
			t.Errorf("%s events = %d, want %d (one per grade)", stage, byEvent[stage], cells)
		}
	}
	if byEvent["job.caches"] != 1 {
		t.Errorf("job.caches events = %d, want 1 in non-deterministic mode", byEvent["job.caches"])
	}
	// Scan events carry the per-layer reject breakdown.
	for _, ev := range evs {
		if ev.Event != "grade.scan" {
			continue
		}
		for _, a := range []string{"windows", "decrypted", "valid",
			"reject_popcount", "reject_transitions", "reject_phase", "reject_framing"} {
			if _, ok := ev.Attrs[a]; !ok {
				t.Fatalf("grade.scan missing attr %q: %+v", a, ev)
			}
		}
		break
	}
}

// TestJobTraceDeterministicAcrossWorkers is the contract the CI diff
// step relies on: with DeterministicTrace, the sorted trace lines of the
// same spec are byte-identical at any worker count.
func TestJobTraceDeterministicAcrossWorkers(t *testing.T) {
	sortedTrace := func(workers int) string {
		spec := baseSpec(t)
		spec.Opts.Workers = workers
		spec.Opts.DeterministicTrace = true
		dir := t.TempDir()
		mustExecute(t, dir, spec)
		data, err := os.ReadFile(TracePath(dir))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	a, b := sortedTrace(1), sortedTrace(4)
	if a != b {
		t.Errorf("deterministic traces differ between worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", a, b)
	}
	if strings.Contains(a, "job.caches") {
		t.Error("deterministic trace contains the schedule-dependent cache event")
	}
	if strings.Contains(a, `"seq"`) || strings.Contains(a, "ts_us") {
		t.Error("deterministic trace carries seq/timestamp stampings")
	}
}

// TestJobTraceResume: a second process lifetime appends to the same
// stream under the same trace ID, and restored grades do not re-emit.
func TestJobTraceResume(t *testing.T) {
	spec := baseSpec(t)
	spec.Opts.Workers = 1
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec.Opts.OnGrade = func(completed int) {
		if completed >= 4 {
			cancel() // synchronous: the serial worker sees it before the next grade
		}
	}
	if _, err := Execute(ctx, dir, spec); err == nil {
		t.Fatal("interrupted run reported success")
	}

	spec2 := baseSpec(t)
	spec2.Opts.Workers = 1
	mustExecute(t, dir, spec2)

	evs := readTrace(t, dir)
	ids := map[string]bool{}
	opens, dones, gradeDones := 0, 0, 0
	for _, ev := range evs {
		ids[ev.Trace] = true
		switch ev.Event {
		case "job.open":
			opens++
		case "job.done":
			dones++
		case "grade.done":
			gradeDones++
		}
	}
	if len(ids) != 1 {
		t.Errorf("trace IDs across lifetimes = %v, want exactly one", ids)
	}
	if opens != 2 || dones != 1 {
		t.Errorf("opens=%d dones=%d, want 2 opens (both lifetimes) and 1 done", opens, dones)
	}
	cells := len(spec.Suspects) * len(spec.Keys)
	if gradeDones != cells {
		t.Errorf("grade.done events = %d, want %d (restored grades must not re-emit)", gradeDones, cells)
	}
	// The resumed lifetime's job.open records how much it inherited.
	var resumed int64 = -1
	for _, ev := range evs {
		if ev.Event == "job.open" && ev.Attrs["resumed"] > 0 {
			resumed = ev.Attrs["resumed"]
		}
	}
	if resumed < 4 {
		t.Errorf("no job.open recorded resumed >= 4 (got %d)", resumed)
	}
}

// TestJobNoTrace: NoTrace suppresses the file entirely.
func TestJobNoTrace(t *testing.T) {
	spec := baseSpec(t)
	spec.Opts.NoTrace = true
	dir := t.TempDir()
	mustExecute(t, dir, spec)
	if _, err := os.Stat(TracePath(dir)); !os.IsNotExist(err) {
		t.Errorf("trace.jsonl exists despite NoTrace (stat err = %v)", err)
	}
}

// TestJobOnEventAndScanCounters: the OnEvent callback fires once per
// settled grade with the recognition attached, and the scan-layer
// counters land in the job registry (GradePair itself runs without one).
func TestJobOnEventAndScanCounters(t *testing.T) {
	spec := baseSpec(t)
	reg := obs.NewRegistry()
	spec.Opts.Obs = reg
	var mu sync.Mutex
	events := 0
	withRec := 0
	spec.Opts.OnEvent = func(ev GradeEvent) {
		mu.Lock()
		defer mu.Unlock()
		events++
		if ev.Rec != nil {
			withRec++
		}
	}
	res := mustExecute(t, t.TempDir(), spec)

	cells := len(spec.Suspects) * len(spec.Keys)
	if events != cells {
		t.Errorf("OnEvent fired %d times, want %d", events, cells)
	}
	if withRec != cells-res.Failed {
		t.Errorf("OnEvent recognitions = %d, want %d", withRec, cells-res.Failed)
	}
	var wantWindows, wantPop int64
	for s := range res.Corpus.Recognitions {
		for _, rec := range res.Corpus.Recognitions[s] {
			if rec != nil {
				wantWindows += int64(rec.Windows)
				wantPop += int64(rec.RejectedByLayer.Popcount)
			}
		}
	}
	if got := reg.Counter("recognize.windows_total").Value(); got != wantWindows {
		t.Errorf("recognize.windows_total = %d, want %d", got, wantWindows)
	}
	if got := reg.Counter("scan.reject.popcount").Value(); got != wantPop {
		t.Errorf("scan.reject.popcount = %d, want %d", got, wantPop)
	}
	// The metrics endpoint contract: the counters exist even at zero.
	snap := reg.Snapshot()
	names := map[string]bool{}
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, n := range []string{"scan.reject.transitions", "scan.reject.phase", "scan.reject.framing", "scan.decrypted"} {
		if !names[n] {
			t.Errorf("counter %s not registered", n)
		}
	}
}
