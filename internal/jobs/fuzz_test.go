package jobs

import (
	"bytes"
	"os"
	"testing"

	"pathmark/internal/iofault"
)

// fuzzSeedJournal builds the canonical framed v2 journal the fuzz corpus
// seeds from.
func fuzzSeedJournal() []byte {
	var b []byte
	for _, payload := range []string{
		`{"v":2,"type":"header","job":"abc123","suspects":3,"keys":2}`,
		`{"type":"grade","s":0,"k":0,"attempts":1,"rec":{"watermark":"12345","modulus":"99991","full_coverage":true,"windows":10,"confidence":1}}`,
		`{"type":"grade","s":0,"k":1,"attempts":3,"err":"wm: trace stage: boom"}`,
		`{"type":"grade","s":2,"k":1,"skipped":true,"err":"jobs: key 1 skipped: circuit breaker open after 2 consecutive hard failures"}`,
	} {
		b = iofault.AppendFrame(b, []byte(payload))
	}
	return b
}

// FuzzJournalDecode is the resilience contract of journal recovery: for
// ANY byte sequence — truncated mid-record, bit-flipped, concatenated
// garbage — decodeJournal must return without panicking, report a valid
// prefix length, and behave as a fixpoint (re-decoding the valid prefix
// yields the same header and records, cleanly). Corruption proven
// mid-log surfaces as a typed error, but the prefix before it is still
// valid resumable state. Partial data means partial resume, never a
// crash.
func FuzzJournalDecode(f *testing.F) {
	// Seed with a realistic journal...
	valid := fuzzSeedJournal()
	f.Add(valid)
	// ...its truncations...
	for cut := 0; cut < len(valid); cut += 17 {
		f.Add(valid[:cut])
	}
	// ...corruptions (frame bytes, payload bytes, tail)...
	for _, i := range []int{5, 61, 80, len(valid) - 3} {
		c := append([]byte(nil), valid...)
		c[i] ^= 0x40
		f.Add(c)
	}
	// ...and structural edge cases, framed and raw.
	f.Add([]byte(""))
	f.Add([]byte("\n"))
	f.Add([]byte("{}\n"))
	f.Add(iofault.Frame([]byte("{}")))
	f.Add([]byte(`{"v":1,"type":"header","job":"x","suspects":1,"keys":1}` + "\n"))
	f.Add(iofault.Frame([]byte(`{"v":2,"type":"header","job":"x","suspects":1000000000000,"keys":1}`)))
	f.Add(append(
		iofault.Frame([]byte(`{"v":2,"type":"header","job":"x","suspects":1,"keys":1}`)),
		iofault.Frame([]byte(`{"type":"grade","s":5,"k":5}`))...))
	f.Add(bytes.Repeat([]byte(`{"type":"grade"}`), 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, recs, good, err := decodeJournal(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good=%d outside [0,%d]", good, len(data))
		}
		if err != nil && (!iofault.IsCorrupt(err) || good == 0) {
			return // unusable header (or corrupt one): no state to validate
		}
		// A corruption verdict still returns the valid prefix before the
		// damage; everything below must hold for it too.
		if h.Suspects <= 0 || h.Suspects > maxJournalDim || h.Keys <= 0 || h.Keys > maxJournalDim {
			t.Fatalf("accepted header with out-of-range dims: %+v", h)
		}
		for i, r := range recs {
			if r.S < 0 || r.S >= h.Suspects || r.K < 0 || r.K >= h.Keys {
				t.Fatalf("record %d out of the header's range: %+v vs %+v", i, r, h)
			}
			// Recognition payloads must decode (or fail) without panic.
			decodeRecognition(r.Rec)
		}
		// Fixpoint: the valid prefix re-decodes cleanly to the same state —
		// this is exactly what a resume after tail truncation sees.
		h2, recs2, good2, err2 := decodeJournal(data[:good])
		if err2 != nil {
			t.Fatalf("valid prefix no longer decodes: %v", err2)
		}
		if h2 != h || len(recs2) != len(recs) || good2 != good {
			t.Fatalf("prefix decode differs: header %+v vs %+v, %d vs %d records, good %d vs %d",
				h2, h, len(recs2), len(recs), good2, good)
		}
	})
}

// TestFuzzSeedsPass runs the seed corpus through the fuzz body once in
// normal test mode, so the contract is exercised even when the fuzz
// engine is not.
func TestFuzzSeedsPass(t *testing.T) {
	// A quick structural check on the canonical seed: it decodes fully.
	valid := fuzzSeedJournal()
	h, recs, good, err := decodeJournal(valid)
	if err != nil || h.Suspects != 3 || len(recs) != 3 || good != int64(len(valid)) {
		t.Fatalf("canonical journal did not decode: h=%+v recs=%d good=%d err=%v", h, len(recs), good, err)
	}
	// A v1 (unframed) journal is refused outright, not half-read.
	legacy := []byte(`{"v":1,"type":"header","job":"abc123","suspects":3,"keys":2}` + "\n")
	if _, _, _, err := decodeJournal(legacy); err == nil {
		t.Fatal("unframed v1 journal accepted")
	}
	if _, err := os.Stat("testdata"); err == nil {
		t.Log("fuzz corpus present")
	}
}
