package jobs

import (
	"bytes"
	"testing"

	"pathmark/internal/wm"
)

// TestSingleSuspectSharding pins the intra-suspect sharding contract:
// when a wave has fewer pending grades than pool workers, Run boosts the
// per-grade scan parallelism (workers / pending) — and that boost must
// be invisible in the output. A one-suspect, one-key job graded with a
// wide worker pool produces a result manifest byte-identical to the
// fully serial run, for both kernels.
func TestSingleSuspectSharding(t *testing.T) {
	suspects, keys, _ := fixture(t)
	for _, kernel := range []wm.ScanKernel{wm.KernelScalar, wm.KernelBatched} {
		spec := Spec{
			Suspects: suspects[:1],
			Keys:     keys[:1],
			Opts:     Options{NoSync: true, Workers: 1, Kernel: kernel},
		}
		want := mustEncode(t, mustExecute(t, t.TempDir(), spec))
		for _, workers := range []int{4, 8} {
			spec.Opts.Workers = workers
			got := mustEncode(t, mustExecute(t, t.TempDir(), spec))
			if !bytes.Equal(got, want) {
				t.Errorf("kernel=%d workers=%d: sharded manifest diverged from serial run",
					kernel, workers)
			}
		}
	}
}

// TestShardingTailWave checks the boost in its natural habitat: a corpus
// whose final wave is smaller than the pool, so late grades run with
// boosted scan workers while early ones ran 1-wide. The full-corpus
// manifest must still match the serial one exactly.
func TestShardingTailWave(t *testing.T) {
	suspects, keys, _ := fixture(t)
	spec := Spec{
		// 3 suspects x 1 key with 8 workers: every wave is smaller than
		// the pool, so each grade gets a different boost factor.
		Suspects: suspects[:3],
		Keys:     keys[:1],
		Opts:     Options{NoSync: true, Workers: 1},
	}
	want := mustEncode(t, mustExecute(t, t.TempDir(), spec))
	spec.Opts.Workers = 8
	got := mustEncode(t, mustExecute(t, t.TempDir(), spec))
	if !bytes.Equal(got, want) {
		t.Error("tail-wave sharded manifest diverged from serial run")
	}
}

// TestShardingExplicitScanWorkers verifies ScanWorkers acts as a floor:
// setting it above the boost the wave would compute changes nothing in
// the result, only in how the scan is split.
func TestShardingExplicitScanWorkers(t *testing.T) {
	suspects, keys, _ := fixture(t)
	spec := Spec{
		Suspects: suspects[:1],
		Keys:     keys[:1],
		Opts:     Options{NoSync: true, Workers: 1},
	}
	want := mustEncode(t, mustExecute(t, t.TempDir(), spec))
	spec.Opts.ScanWorkers = 6
	got := mustEncode(t, mustExecute(t, t.TempDir(), spec))
	if !bytes.Equal(got, want) {
		t.Error("explicit ScanWorkers manifest diverged from serial run")
	}
}
