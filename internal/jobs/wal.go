package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// WAL is the reusable append side of a line-oriented JSONL write-ahead
// log: one JSON object per line, a header line first, records fsync'd as
// they are appended. It is the storage layer under the jobs grade journal,
// exported so other campaign engines (the tournament's cell journal)
// inherit the same crash-safety contract — header-first creation,
// torn-tail truncation before reopening for append, record-granularity
// interleaving under concurrent writers. Decoding stays with the caller
// (record schemas differ per engine); CutLine is the shared line splitter
// with the torn-tail convention.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	sync    bool
	bytes   int64
	records int64
}

// CreateWAL starts a fresh log at path (which must not exist) whose first
// line is header, synced before the first record can be appended — a log
// on disk always identifies its owner.
func CreateWAL(path string, header any, syncEach bool) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: create journal: %w", err)
	}
	w := &WAL{f: f, sync: syncEach}
	if err := w.appendLine(header); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: sync journal header: %w", err)
	}
	return w, nil
}

// OpenWAL reopens an existing log for append after the caller has decoded
// and replayed its contents: good is the byte length of the valid prefix
// and records the number of records replayed from it. Any torn tail beyond
// good is truncated away first, so new records never concatenate onto a
// partial line.
func OpenWAL(path string, good, records int64, syncEach bool) (*WAL, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("jobs: reopen journal: %w", err)
	}
	if good < info.Size() {
		if err := os.Truncate(path, good); err != nil {
			return nil, fmt.Errorf("jobs: truncate torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: reopen journal: %w", err)
	}
	return &WAL{f: f, sync: syncEach, bytes: good, records: records}, nil
}

// Append journals one record, fsync'ing before returning (unless the log
// was opened with sync off). Once Append returns, the record survives
// kill -9. Concurrent appenders interleave at record granularity, never
// mid-line.
func (w *WAL) Append(v any) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.appendLine(v); err != nil {
		return err
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("jobs: sync journal: %w", err)
		}
	}
	w.records++
	return nil
}

func (w *WAL) appendLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("jobs: encode journal record: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("jobs: append journal record: %w", err)
	}
	w.bytes += int64(len(b))
	return nil
}

// Bytes and Records report the log's current size, for the *.journal.*
// observability counters.
func (w *WAL) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// CutLine splits data at the first newline; ok is false when no complete
// (newline-terminated) line remains — the torn-tail convention every WAL
// decoder shares.
func CutLine(data []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil, nil, false
	}
	return data[:i], data[i+1:], true
}
