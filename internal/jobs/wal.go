package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"pathmark/internal/iofault"
)

// WAL is the reusable append side of a checksum-framed JSONL write-ahead
// log: one CRC32C-framed JSON object per line (see iofault.AppendFrame),
// a header line first, records fsync'd as they are appended. It is the
// storage layer under the jobs grade journal, exported so other campaign
// engines (the tournament's cell journal) inherit the same crash-safety
// contract — header-first creation, torn-tail truncation before
// reopening for append, record-granularity interleaving under concurrent
// writers, and fail-stop sync semantics: after any write or sync
// failure the handle is closed and marked broken, and the next Append
// reopens the file, truncates it back to the last committed byte, and
// verifies the size before writing again. Decoding stays with the caller
// (record schemas differ per engine); iofault.LogScanner is the shared
// line walker with the torn-vs-corrupt convention.
type WAL struct {
	mu      sync.Mutex
	fs      iofault.FS
	path    string
	f       iofault.File
	sync    bool
	bytes   int64 // committed bytes: advanced only after write+sync succeed
	records int64
	broken  bool
}

// CreateWAL starts a fresh log at path (which must not exist) whose first
// line is header, synced before the first record can be appended — a log
// on disk always identifies its owner.
func CreateWAL(fs iofault.FS, path string, header any, syncEach bool) (*WAL, error) {
	if fs == nil {
		fs = iofault.OS
	}
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: create journal: %w", err)
	}
	w := &WAL{fs: fs, path: path, f: f, sync: syncEach}
	if err := w.appendLocked(header, true); err != nil {
		_ = f.Close()
		_ = fs.Remove(path)
		return nil, err
	}
	w.records = 0 // the header is not a record
	return w, nil
}

// OpenWAL reopens an existing log for append after the caller has decoded
// and replayed its contents: good is the byte length of the valid prefix
// and records the number of records replayed from it. Any torn tail beyond
// good is truncated away first, so new records never concatenate onto a
// partial line.
func OpenWAL(fs iofault.FS, path string, good, records int64, syncEach bool) (*WAL, error) {
	if fs == nil {
		fs = iofault.OS
	}
	w := &WAL{fs: fs, path: path, sync: syncEach, bytes: good, records: records, broken: true}
	if err := w.reopenLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// reopenLocked (re)establishes a verified append handle: truncate any
// bytes past the committed prefix, open for append, and confirm the file
// is exactly the committed length. Used both for the initial open and
// for recovery after a fail-stop.
func (w *WAL) reopenLocked() error {
	info, err := w.fs.Stat(w.path)
	if err != nil {
		return fmt.Errorf("jobs: reopen journal: %w", err)
	}
	if w.bytes < info.Size() {
		if err := w.fs.Truncate(w.path, w.bytes); err != nil {
			return fmt.Errorf("jobs: truncate torn journal tail: %w", err)
		}
	} else if w.bytes > info.Size() {
		return fmt.Errorf("jobs: journal %s shorter than committed prefix (%d < %d)", w.path, info.Size(), w.bytes)
	}
	f, err := w.fs.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: reopen journal: %w", err)
	}
	if info, err := w.fs.Stat(w.path); err != nil || info.Size() != w.bytes {
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("jobs: verify reopened journal: %w", err)
		}
		return fmt.Errorf("jobs: reopened journal %s is %d bytes, want %d", w.path, info.Size(), w.bytes)
	}
	w.f = f
	w.broken = false
	return nil
}

// failLocked is the fail-stop transition: close and drop the handle so no
// further append can report success against a poisoned file descriptor.
// The committed counters are not advanced; the next Append reopens and
// verifies before writing.
func (w *WAL) failLocked() {
	if w.f != nil {
		_ = w.f.Close()
		w.f = nil
	}
	w.broken = true
}

// Append journals one record, fsync'ing before returning (unless the log
// was opened with sync off). Once Append returns nil, the record survives
// kill -9. On error the WAL fail-stops: the handle is closed, nothing is
// counted as committed, and the next Append transparently reopens the
// file truncated back to the committed prefix.
func (w *WAL) Append(v any) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken || w.f == nil {
		if w.f == nil && !w.broken {
			return fmt.Errorf("jobs: append to closed journal %s", w.path)
		}
		if err := w.reopenLocked(); err != nil {
			return fmt.Errorf("jobs: journal %s broken: %w", w.path, err)
		}
	}
	return w.appendLocked(v, w.sync)
}

func (w *WAL) appendLocked(v any, syncNow bool) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("jobs: encode journal record: %w", err)
	}
	line := iofault.Frame(b)
	if _, err := w.f.Write(line); err != nil {
		w.failLocked()
		return fmt.Errorf("jobs: append journal record: %w", err)
	}
	if syncNow {
		if err := w.f.Sync(); err != nil {
			w.failLocked()
			return fmt.Errorf("jobs: sync journal: %w", err)
		}
	}
	w.bytes += int64(len(line))
	w.records++
	return nil
}

// Bytes and Records report the log's committed size, for the *.journal.*
// observability counters.
func (w *WAL) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

func (w *WAL) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// CutLine splits data at the first newline; ok is false when no complete
// (newline-terminated) line remains. Framed logs should be walked with
// iofault.LogScanner instead; CutLine remains for raw ndjson streams
// (HTTP-relayed traces) that carry no frame.
func CutLine(data []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil, nil, false
	}
	return data[:i], data[i+1:], true
}
