package feistel

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	c := New(KeyFromUint64(0x0123456789abcdef, 0xfedcba9876543210))
	f := func(block uint64) bool {
		return c.Decrypt(c.Encrypt(block)) == block
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripAllKeysProperty(t *testing.T) {
	f := func(k0, k1, block uint64) bool {
		c := New(KeyFromUint64(k0, k1))
		return c.Decrypt(c.Encrypt(block)) == block
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncryptIsPermutationSample(t *testing.T) {
	c := New(KeyFromUint64(1, 2))
	seen := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		p := rng.Uint64()
		ct := c.Encrypt(p)
		if prev, ok := seen[ct]; ok && prev != p {
			t.Fatalf("collision: Encrypt(%#x) == Encrypt(%#x)", prev, p)
		}
		seen[ct] = p
	}
}

func TestKeySensitivity(t *testing.T) {
	c1 := New(KeyFromUint64(0, 0))
	c2 := New(KeyFromUint64(1, 0))
	if c1.Encrypt(42) == c2.Encrypt(42) {
		t.Error("different keys produced identical ciphertexts")
	}
}

func TestAvalanchePlaintext(t *testing.T) {
	// Flipping one plaintext bit should flip roughly half the ciphertext
	// bits on average. Allow a generous band: [20, 44] of 64.
	c := New(KeyFromUint64(0xdeadbeef, 0xcafebabe))
	rng := rand.New(rand.NewSource(3))
	var total, samples int
	for i := 0; i < 500; i++ {
		p := rng.Uint64()
		bit := uint(rng.Intn(64))
		d := c.Encrypt(p) ^ c.Encrypt(p^(1<<bit))
		total += bits.OnesCount64(d)
		samples++
	}
	avg := float64(total) / float64(samples)
	if avg < 20 || avg > 44 {
		t.Errorf("avalanche average = %.2f bits, want within [20,44]", avg)
	}
}

func TestAvalancheKey(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var total, samples int
	for i := 0; i < 200; i++ {
		k0, k1 := rng.Uint64(), rng.Uint64()
		bit := uint(rng.Intn(64))
		a := New(KeyFromUint64(k0, k1))
		b := New(KeyFromUint64(k0^(1<<bit), k1))
		d := a.Encrypt(12345) ^ b.Encrypt(12345)
		total += bits.OnesCount64(d)
		samples++
	}
	avg := float64(total) / float64(samples)
	if avg < 20 || avg > 44 {
		t.Errorf("key avalanche average = %.2f bits, want within [20,44]", avg)
	}
}

func TestDeterministic(t *testing.T) {
	a := New(KeyFromUint64(5, 6))
	b := New(KeyFromUint64(5, 6))
	for _, p := range []uint64{0, 1, ^uint64(0), 0x8000000000000000} {
		if a.Encrypt(p) != b.Encrypt(p) {
			t.Errorf("nondeterministic encryption of %#x", p)
		}
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c := New(KeyFromUint64(1, 2))
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= c.Encrypt(uint64(i))
	}
	_ = acc
}
