package feistel

// Batched decryption for the recognizer's scan kernel: the sliding-window
// scan gathers the windows that survive its prefilters into contiguous
// []uint64 buffers and decrypts them in one call, instead of one
// bound-method call per window. The win is mechanical — no per-call
// dispatch, subkeys hot in registers, and four (or, with AVX2, sixteen)
// independent Feistel chains in flight at once to hide the round
// function's add/xor latency.

// DecryptBlocks decrypts src[i] into dst[i] for every i, exactly as if
// each block had gone through Decrypt individually. dst must be at least
// as long as src; dst and src may be the same slice (each block is read
// before its slot is written), but must not otherwise overlap.
//
// On amd64 with AVX2 the bulk of the batch runs through a vectorized
// kernel (16 blocks per iteration, two 8-block register groups); the
// remainder — and every other platform — takes the portable batch loop.
func (c *Cipher) DecryptBlocks(dst, src []uint64) {
	if len(dst) < len(src) {
		panic("feistel: DecryptBlocks dst shorter than src")
	}
	decryptBlocks(c, dst[:len(src)], src)
}

// decryptBlocksGeneric is the portable batch path: four independent
// blocks interleaved per iteration (the chains have no data dependencies,
// so the CPU overlaps their round latencies) with a specialized inner
// loop unrolled four rounds deep (rounds == 32 is a multiple of 4).
func decryptBlocksGeneric(c *Cipher, dst, src []uint64) {
	k := &c.subkeys
	n := len(src)
	i := 0
	for ; i+4 <= n; i += 4 {
		b0, b1, b2, b3 := src[i], src[i+1], src[i+2], src[i+3]
		l0, r0 := uint32(b0>>32), uint32(b0)
		l1, r1 := uint32(b1>>32), uint32(b1)
		l2, r2 := uint32(b2>>32), uint32(b2)
		l3, r3 := uint32(b3>>32), uint32(b3)
		for j := rounds - 1; j >= 3; j -= 4 {
			ka, kb, kc, kd := k[j], k[j-1], k[j-2], k[j-3]
			l0, r0 = r0^round(l0, ka), l0
			l1, r1 = r1^round(l1, ka), l1
			l2, r2 = r2^round(l2, ka), l2
			l3, r3 = r3^round(l3, ka), l3
			l0, r0 = r0^round(l0, kb), l0
			l1, r1 = r1^round(l1, kb), l1
			l2, r2 = r2^round(l2, kb), l2
			l3, r3 = r3^round(l3, kb), l3
			l0, r0 = r0^round(l0, kc), l0
			l1, r1 = r1^round(l1, kc), l1
			l2, r2 = r2^round(l2, kc), l2
			l3, r3 = r3^round(l3, kc), l3
			l0, r0 = r0^round(l0, kd), l0
			l1, r1 = r1^round(l1, kd), l1
			l2, r2 = r2^round(l2, kd), l2
			l3, r3 = r3^round(l3, kd), l3
		}
		dst[i] = uint64(l0)<<32 | uint64(r0)
		dst[i+1] = uint64(l1)<<32 | uint64(r1)
		dst[i+2] = uint64(l2)<<32 | uint64(r2)
		dst[i+3] = uint64(l3)<<32 | uint64(r3)
	}
	for ; i < n; i++ {
		dst[i] = c.Decrypt(src[i])
	}
}
