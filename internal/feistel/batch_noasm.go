//go:build !amd64 || purego

package feistel

func decryptBlocks(c *Cipher, dst, src []uint64) {
	decryptBlocksGeneric(c, dst, src)
}

// HasAVX2 reports whether the AVX2 batch kernels are usable; never on
// non-amd64 or purego builds.
func HasAVX2() bool { return false }
