//go:build amd64 && !purego

#include "textflag.h"

// AVX2 batch decryption.
//
// A block is uint64(l)<<32 | uint64(r), so in (little-endian) memory each
// block is the dword pair [r, l]. Four ymm loads pick up 8 blocks; two
// VSHUFPS passes split them into an R vector and an L vector of 8 dwords
// each. The lane order after the shuffle is scrambled (per 128-bit lane),
// but the round function is elementwise, so the scramble is harmless —
// and VPUNPCKL/HDQ on the scrambled R/L pair happens to reassemble the
// blocks in their original order, so no permute is needed on either side.
//
// Per decrypt round (subkeys walked 31..0):
//
//	F    = (((L << 4) ^ (L >> 5)) + L) ^ subkey
//	L, R = R ^ F, L
//
// All operations are 32-bit lanewise (VPSLLD/VPSRLD/VPADDD/VPXOR) with
// the subkey broadcast to every lane. The round function's ~5-cycle
// dependency chain makes a single 8-block group latency-bound, so four
// independent groups (32 blocks) are kept in flight per iteration —
// enough chains to cover the latency — with a two-group (16-block)
// variant for the tail. Scratch registers are shared between groups;
// register renaming untangles them. The register swap implied by
// "L, R = R^F, L" is folded into a two-round unroll that alternates
// the roles of the L and R registers (32 rounds = 16 double-rounds, so
// the halves end up back in their home registers).

// ROUND computes R ^= F(L, K): after it, R holds the next round's L and
// L holds the next round's R. T and U are scratch.
#define ROUND(L, R, K, T, U) \
	VPSLLD $4, L, T  \
	VPSRLD $5, L, U  \
	VPXOR  U, T, T   \
	VPADDD L, T, T   \
	VPXOR  K, T, T   \
	VPXOR  T, R, R

// func decryptBlocksAVX2(subkeys *[32]uint32, dst, src *uint64, n int)
// n must be a positive multiple of 16.
TEXT ·decryptBlocksAVX2(SB), NOSPLIT, $0-32
	MOVQ subkeys+0(FP), DX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX

	CMPQ CX, $32
	JL   blocks16

blocks32:
	// Load 32 blocks and deinterleave into four (R, L) pairs.
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VSHUFPS $0x88, Y1, Y0, Y4  // R group 0
	VSHUFPS $0xDD, Y1, Y0, Y5  // L group 0
	VSHUFPS $0x88, Y3, Y2, Y6  // R group 1
	VSHUFPS $0xDD, Y3, Y2, Y7  // L group 1
	VMOVDQU 128(SI), Y0
	VMOVDQU 160(SI), Y1
	VMOVDQU 192(SI), Y2
	VMOVDQU 224(SI), Y3
	VSHUFPS $0x88, Y1, Y0, Y8  // R group 2
	VSHUFPS $0xDD, Y1, Y0, Y9  // L group 2
	VSHUFPS $0x88, Y3, Y2, Y10 // R group 3
	VSHUFPS $0xDD, Y3, Y2, Y11 // L group 3

	LEAQ 124(DX), R8 // &subkeys[31]
	MOVQ $16, BX

rounds4x2:
	VPBROADCASTD (R8), Y12
	ROUND(Y5, Y4, Y12, Y13, Y14)
	ROUND(Y7, Y6, Y12, Y13, Y14)
	ROUND(Y9, Y8, Y12, Y13, Y14)
	ROUND(Y11, Y10, Y12, Y13, Y14)
	VPBROADCASTD -4(R8), Y12
	ROUND(Y4, Y5, Y12, Y13, Y14)
	ROUND(Y6, Y7, Y12, Y13, Y14)
	ROUND(Y8, Y9, Y12, Y13, Y14)
	ROUND(Y10, Y11, Y12, Y13, Y14)
	SUBQ $8, R8
	DECQ BX
	JNZ  rounds4x2

	VPUNPCKLDQ Y5, Y4, Y0
	VPUNPCKHDQ Y5, Y4, Y1
	VPUNPCKLDQ Y7, Y6, Y2
	VPUNPCKHDQ Y7, Y6, Y3
	VMOVDQU    Y0, (DI)
	VMOVDQU    Y1, 32(DI)
	VMOVDQU    Y2, 64(DI)
	VMOVDQU    Y3, 96(DI)
	VPUNPCKLDQ Y9, Y8, Y0
	VPUNPCKHDQ Y9, Y8, Y1
	VPUNPCKLDQ Y11, Y10, Y2
	VPUNPCKHDQ Y11, Y10, Y3
	VMOVDQU    Y0, 128(DI)
	VMOVDQU    Y1, 160(DI)
	VMOVDQU    Y2, 192(DI)
	VMOVDQU    Y3, 224(DI)

	ADDQ $256, SI
	ADDQ $256, DI
	SUBQ $32, CX
	CMPQ CX, $32
	JGE  blocks32
	TESTQ CX, CX
	JZ   done

blocks16:
	// Load 16 blocks and deinterleave into two (R, L) dword-vector pairs.
	VMOVDQU (SI), Y0
	VMOVDQU 32(SI), Y1
	VMOVDQU 64(SI), Y2
	VMOVDQU 96(SI), Y3
	VSHUFPS $0x88, Y1, Y0, Y4 // R group 0 (even dwords)
	VSHUFPS $0xDD, Y1, Y0, Y5 // L group 0 (odd dwords)
	VSHUFPS $0x88, Y3, Y2, Y6 // R group 1
	VSHUFPS $0xDD, Y3, Y2, Y7 // L group 1

	// 32 rounds, subkeys high to low, two rounds per iteration.
	LEAQ 124(DX), R8 // &subkeys[31]
	MOVQ $16, BX

rounds2:
	VPBROADCASTD (R8), Y8
	ROUND(Y5, Y4, Y8, Y10, Y11)
	ROUND(Y7, Y6, Y8, Y12, Y13)
	VPBROADCASTD -4(R8), Y8
	ROUND(Y4, Y5, Y8, Y10, Y11)
	ROUND(Y6, Y7, Y8, Y12, Y13)
	SUBQ $8, R8
	DECQ BX
	JNZ  rounds2

	// Reinterleave [r, l] dword pairs and store; the unpack of the
	// VSHUFPS-scrambled vectors restores the original block order.
	VPUNPCKLDQ Y5, Y4, Y0
	VPUNPCKHDQ Y5, Y4, Y1
	VPUNPCKLDQ Y7, Y6, Y2
	VPUNPCKHDQ Y7, Y6, Y3
	VMOVDQU    Y0, (DI)
	VMOVDQU    Y1, 32(DI)
	VMOVDQU    Y2, 64(DI)
	VMOVDQU    Y3, 96(DI)

	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $16, CX
	JNZ  blocks16

done:
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
