// Package feistel implements a 64-bit block cipher used to encrypt
// watermark pieces before embedding (paper §3.2 step 3). Encrypting each
// piece lets the recognizer treat corrupted or unrelated trace windows as
// uniformly random data, which is what makes the enumeration-range filter
// and the voting step effective.
//
// The cipher is a 32-round balanced Feistel network over two 32-bit halves
// with an XTEA-style round function, implemented from scratch on the
// standard library only. It is keyed by a 128-bit key expanded into
// per-round subkeys. The design goal is diffusion (a one-bit plaintext or
// key change flips about half the ciphertext bits), not resistance to
// modern cryptanalysis; the paper's threat model only needs the former.
package feistel

const (
	rounds = 32
	delta  = 0x9e3779b9 // golden-ratio constant, as in TEA/XTEA
)

// Cipher is a 64-bit block cipher instance. The zero value is not usable;
// construct with New.
type Cipher struct {
	subkeys [rounds]uint32
}

// Key is the 128-bit cipher key.
type Key [4]uint32

// KeyFromUint64 derives a Key from two 64-bit words, convenient for
// CLI-supplied keys.
func KeyFromUint64(a, b uint64) Key {
	return Key{uint32(a), uint32(a >> 32), uint32(b), uint32(b >> 32)}
}

// New expands key into a cipher instance.
func New(key Key) *Cipher {
	c := &Cipher{}
	var sum uint32
	for i := 0; i < rounds; i++ {
		// XTEA-style schedule: alternate key words selected by the
		// low and shifted bits of the running sum.
		c.subkeys[i] = sum + key[(sum>>((uint(i)%2)*11))&3]
		sum += delta
	}
	return c
}

func round(half, subkey uint32) uint32 {
	return ((half<<4 ^ half>>5) + half) ^ subkey
}

// Encrypt enciphers one 64-bit block.
func (c *Cipher) Encrypt(block uint64) uint64 {
	l, r := uint32(block>>32), uint32(block)
	for i := 0; i < rounds; i++ {
		l, r = r, l^round(r, c.subkeys[i])
	}
	return uint64(l)<<32 | uint64(r)
}

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(block uint64) uint64 {
	l, r := uint32(block>>32), uint32(block)
	for i := rounds - 1; i >= 0; i-- {
		l, r = r^round(l, c.subkeys[i]), l
	}
	return uint64(l)<<32 | uint64(r)
}
