package feistel

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// batchTestKeys covers degenerate and representative key material.
func batchTestKeys() []Key {
	return []Key{
		{},
		{1, 0, 0, 0},
		{0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff},
		KeyFromUint64(21, 34),
		KeyFromUint64(0x6b72616d68746170, 0x504c444932303034),
		KeyFromUint64(0xdeadbeefcafebabe, 0x0123456789abcdef),
	}
}

// TestDecryptBlocksMatchesScalar checks the batch path (whatever
// dispatch picks on this machine) against per-block Decrypt across batch
// lengths that exercise the vector kernel, its tail, and the
// shorter-than-one-group cases.
func TestDecryptBlocksMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, key := range batchTestKeys() {
		c := New(key)
		for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 48, 63, 64, 100, 257} {
			src := make([]uint64, n)
			for i := range src {
				src[i] = rng.Uint64()
			}
			// Structured blocks too: the scan feeds low-entropy windows.
			if n > 2 {
				src[0] = 0
				src[1] = ^uint64(0)
				src[2] = 0x5555555555555555
			}
			dst := make([]uint64, n)
			c.DecryptBlocks(dst, src)
			for i := range src {
				if want := c.Decrypt(src[i]); dst[i] != want {
					t.Fatalf("key %v n=%d block %d: DecryptBlocks %#x, Decrypt %#x (src %#x)",
						key, n, i, dst[i], want, src[i])
				}
			}
		}
	}
}

// TestDecryptBlocksGenericMatchesScalar pins the portable batch loop
// independently of what decryptBlocks dispatches to, so the fallback is
// covered even on machines where the vector kernel runs.
func TestDecryptBlocksGenericMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := New(KeyFromUint64(99, 1234))
	for _, n := range []int{0, 1, 3, 4, 5, 9, 64} {
		src := make([]uint64, n)
		for i := range src {
			src[i] = rng.Uint64()
		}
		dst := make([]uint64, n)
		decryptBlocksGeneric(c, dst, src)
		for i := range src {
			if want := c.Decrypt(src[i]); dst[i] != want {
				t.Fatalf("n=%d block %d: generic %#x, Decrypt %#x", n, i, dst[i], want)
			}
		}
	}
}

// TestDecryptBlocksInPlace checks the documented dst == src aliasing.
func TestDecryptBlocksInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := New(KeyFromUint64(5, 8))
	buf := make([]uint64, 53)
	want := make([]uint64, len(buf))
	for i := range buf {
		buf[i] = rng.Uint64()
		want[i] = c.Decrypt(buf[i])
	}
	c.DecryptBlocks(buf, buf)
	for i := range buf {
		if buf[i] != want[i] {
			t.Fatalf("in-place block %d: got %#x, want %#x", i, buf[i], want[i])
		}
	}
}

// TestDecryptBlocksRoundTrip confirms batch decryption inverts Encrypt.
func TestDecryptBlocksRoundTrip(t *testing.T) {
	c := New(KeyFromUint64(42, 77))
	src := make([]uint64, 40)
	plain := make([]uint64, len(src))
	for i := range src {
		plain[i] = uint64(i) * 0x9e3779b97f4a7c15
		src[i] = c.Encrypt(plain[i])
	}
	dst := make([]uint64, len(src))
	c.DecryptBlocks(dst, src)
	for i := range dst {
		if dst[i] != plain[i] {
			t.Fatalf("block %d: round trip %#x, want %#x", i, dst[i], plain[i])
		}
	}
}

func TestDecryptBlocksShortDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short dst")
		}
	}()
	c := New(KeyFromUint64(1, 2))
	c.DecryptBlocks(make([]uint64, 1), make([]uint64, 2))
}

// FuzzDecryptBlocks drives arbitrary block material through both the
// dispatch path and the portable loop and demands agreement with the
// scalar cipher — the batch kernels must be drop-in replacements.
func FuzzDecryptBlocks(f *testing.F) {
	f.Add(uint64(21), uint64(34), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint64(0), uint64(0), make([]byte, 8*20))
	f.Add(^uint64(0), uint64(1), []byte{0xff})
	f.Fuzz(func(t *testing.T, ka, kb uint64, raw []byte) {
		if len(raw) > 8*1024 {
			raw = raw[:8*1024]
		}
		src := make([]uint64, (len(raw)+7)/8)
		for i := range src {
			var block [8]byte
			copy(block[:], raw[i*8:])
			src[i] = binary.LittleEndian.Uint64(block[:])
		}
		c := New(KeyFromUint64(ka, kb))
		dst := make([]uint64, len(src))
		gen := make([]uint64, len(src))
		c.DecryptBlocks(dst, src)
		decryptBlocksGeneric(c, gen, src)
		for i := range src {
			want := c.Decrypt(src[i])
			if dst[i] != want {
				t.Fatalf("dispatch block %d: %#x vs scalar %#x", i, dst[i], want)
			}
			if gen[i] != want {
				t.Fatalf("generic block %d: %#x vs scalar %#x", i, gen[i], want)
			}
		}
	})
}

func BenchmarkDecryptScalar(b *testing.B) {
	c := New(KeyFromUint64(21, 34))
	src := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = rng.Uint64()
	}
	b.SetBytes(8 * int64(len(src)))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for _, w := range src {
			sink ^= c.Decrypt(w)
		}
	}
	_ = sink
}

func BenchmarkDecryptBlocks(b *testing.B) {
	c := New(KeyFromUint64(21, 34))
	src := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = rng.Uint64()
	}
	dst := make([]uint64, len(src))
	b.SetBytes(8 * int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecryptBlocks(dst, src)
	}
}

func BenchmarkDecryptBlocksGeneric(b *testing.B) {
	c := New(KeyFromUint64(21, 34))
	src := make([]uint64, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := range src {
		src[i] = rng.Uint64()
	}
	dst := make([]uint64, len(src))
	b.SetBytes(8 * int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decryptBlocksGeneric(c, dst, src)
	}
}
