//go:build amd64 && !purego

package feistel

// The AVX2 batch kernel works on 16 blocks per iteration and is only
// profitable once the deinterleave/reinterleave shuffles amortize, so
// short batches and tails take the portable loop.
const avx2BatchBlocks = 16

// The assembly hardcodes the round count (16 two-round iterations) and
// the subkey array layout; fail the build rather than corrupt ciphertext
// if either ever changes.
var _ [rounds - 32]byte
var _ [32 - rounds]byte

var hasAVX2 = detectAVX2()

// HasAVX2 reports whether the AVX2 batch kernels are usable on this
// machine (CPU and OS support). Exported because it is the repo's one
// CPU-feature probe: other packages with AVX2 kernels (the scan gather
// filter in internal/wm) share this detection instead of redoing CPUID.
func HasAVX2() bool { return hasAVX2 }

func decryptBlocks(c *Cipher, dst, src []uint64) {
	if hasAVX2 && len(src) >= avx2BatchBlocks {
		n := len(src) &^ (avx2BatchBlocks - 1)
		decryptBlocksAVX2(&c.subkeys, &dst[0], &src[0], n)
		dst, src = dst[n:], src[n:]
	}
	decryptBlocksGeneric(c, dst, src)
}

// decryptBlocksAVX2 decrypts n blocks (n a positive multiple of 16) from
// src into dst. Implemented in batch_amd64.s.
//
//go:noescape
func decryptBlocksAVX2(subkeys *[rounds]uint32, dst, src *uint64, n int)

// cpuid and xgetbv are tiny assembly shims (batch_amd64.s); the standard
// library's feature flags live in internal/cpu, which external packages
// cannot import, so detection is done here from scratch.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// detectAVX2 reports whether both the CPU and the OS support AVX2:
// CPUID.1 must advertise OSXSAVE+AVX, XCR0 must show the OS saves
// XMM+YMM state on context switches, and CPUID.7 must advertise AVX2.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveAndAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAndAVX != osxsaveAndAVX {
		return false
	}
	if xcr0, _ := xgetbv(); xcr0&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}
