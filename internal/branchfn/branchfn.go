// Package branchfn synthesizes branch functions (paper §4.1, Figure 7)
// for the native substrate: a function that is called normally but
// rewrites its own stacked return address through a perfect-hash-indexed
// XOR table in the data section, so that "returning" transfers control to
// an address unrelated to the call site. The package also implements the
// §4.3 tamper-proofing slots: each branch-function invocation additionally
// fixes up one indirect-jump cell M elsewhere in memory, making the branch
// function's execution essential to the program.
//
// Construction is two-phase, because the table contents depend on final
// code addresses while the code must be emitted before assembly:
//
//  1. Reserve appends the branch-function code (with fresh labels) and
//     reserves data-section space sized for n call sites.
//  2. After the final instruction stream is frozen, PatchAddrs rewrites
//     the data-section base addresses baked into the emitted code, the
//     unit is assembled, and Finalize fills the seed words, displacement
//     table, XOR table and tamper slots using the now-known addresses.
package branchfn

import (
	"fmt"
	"math/rand"

	"pathmark/internal/isa"
	"pathmark/internal/perfecthash"
)

// CallLen is the encoded size of a call instruction; a call site's hash
// key (the return address it pushes) is its own address plus CallLen.
const CallLen = 5

// Options configures synthesis.
type Options struct {
	// LabelPrefix makes the function's labels unique (required when a unit
	// carries several branch functions, e.g. after double watermarking).
	LabelPrefix string
	// HelperDepth inserts a chain of helper functions f -> f1 -> ... so
	// the return-address manipulation happens several frames deep
	// (§4.1's countermeasure against spotting functions that modify
	// their own return address). 0..4.
	HelperDepth int
	// Rng drives the randomized helper frame sizes.
	Rng *rand.Rand
}

// BranchFunc describes a reserved branch function awaiting finalization.
type BranchFunc struct {
	// Entry is the label call sites must target.
	Entry string
	// N is the call-site capacity.
	N int
	// NB is the first-level bucket count of the perfect hash.
	NB int

	opts Options
	// Data-section byte offsets.
	seed1Off, seed2Off, nbOff, nOff int
	dispOff, tableOff, slotsOff     int
	// retDepth is the byte offset from ESP to the stacked return address
	// inside the innermost helper.
	retDepth int
	// frame sizes per helper.
	frames []int
	// indices of emitted instructions that reference data addresses as
	// placeholder offsets (PatchAddrs rewrites them).
	patchIdx []int
}

// dataRefMarker tags immediates that hold data-section *offsets* until
// PatchAddrs converts them to absolute addresses.
const dataRefMarker = int64(1) << 40

// Reserve emits the branch-function code at the end of the unit and
// reserves its data. n is the number of call sites the function must
// dispatch (one XOR-table and tamper-slot entry each).
func Reserve(u *isa.Unit, n int, opts Options) (*BranchFunc, error) {
	if n <= 0 {
		return nil, fmt.Errorf("branchfn: need at least one call site, got %d", n)
	}
	if opts.Rng == nil {
		opts.Rng = rand.New(rand.NewSource(1))
	}
	if opts.HelperDepth < 0 || opts.HelperDepth > 4 {
		return nil, fmt.Errorf("branchfn: helper depth %d out of range [0,4]", opts.HelperDepth)
	}
	bf := &BranchFunc{
		Entry: opts.LabelPrefix + "bf_entry",
		N:     n,
		NB:    n/2 + 1,
		opts:  opts,
	}

	// Data reservations (all 32-bit words; displacements stored widened).
	alloc := func(words int) int {
		off := len(u.Data)
		u.Data = append(u.Data, make([]byte, 4*words)...)
		return off
	}
	bf.seed1Off = alloc(1)
	bf.seed2Off = alloc(1)
	bf.nbOff = alloc(1)
	bf.nOff = alloc(1)
	bf.dispOff = alloc(bf.NB)
	bf.tableOff = alloc(n)
	bf.slotsOff = alloc(2 * n) // {Maddr, xorval} pairs

	// 7 saved words (flags + eax..edx + esi + edi) above the return
	// address, plus 4 per helper frame return address, plus helper frames.
	bf.retDepth = 7 * 4
	for d := 0; d < opts.HelperDepth; d++ {
		frame := 4 * opts.Rng.Intn(5) // 0..16 bytes of random frame
		bf.frames = append(bf.frames, frame)
		bf.retDepth += 4 + frame
	}

	emit := func(in isa.Ins) {
		if in.Imm >= dataRefMarker {
			bf.patchIdx = append(bf.patchIdx, len(u.Instrs))
		}
		u.Instrs = append(u.Instrs, in)
	}
	dref := func(off int) int64 { return dataRefMarker + int64(off) }
	label := func(s string) string { return opts.LabelPrefix + s }

	// Entry: save registers and flags, then descend through the helpers.
	emit(isa.Ins{Op: isa.OPushF, Label: bf.Entry})
	for _, r := range []byte{isa.EAX, isa.EBX, isa.ECX, isa.EDX, isa.ESI, isa.EDI} {
		emit(isa.Ins{Op: isa.OPush, R1: r})
	}
	if opts.HelperDepth > 0 {
		emit(isa.Ins{Op: isa.OCall, Target: label("bf_h0")})
	} else {
		emit(isa.Ins{Op: isa.OCall, Target: label("bf_body")})
	}
	for _, r := range []byte{isa.EDI, isa.ESI, isa.EDX, isa.ECX, isa.EBX, isa.EAX} {
		emit(isa.Ins{Op: isa.OPop, R1: r})
	}
	emit(isa.Ins{Op: isa.OPopF})
	emit(isa.Ins{Op: isa.ORet})

	// Helper chain: each helper allocates a random frame and calls deeper.
	for d := 0; d < opts.HelperDepth; d++ {
		next := label("bf_body")
		if d+1 < opts.HelperDepth {
			next = label(fmt.Sprintf("bf_h%d", d+1))
		}
		emit(isa.Ins{Op: isa.OSubImm, R1: isa.ESP, Imm: int64(bf.frames[d]), Label: label(fmt.Sprintf("bf_h%d", d))})
		emit(isa.Ins{Op: isa.OCall, Target: next})
		emit(isa.Ins{Op: isa.OAddImm, R1: isa.ESP, Imm: int64(bf.frames[d])})
		emit(isa.Ins{Op: isa.ORet})
	}

	// Body: the original return address (the hash key) sits retDepth bytes
	// above the body's own return address, i.e. at [esp + retDepth + 4].
	depth := int64(bf.retDepth + 4)

	// eax := original return address (the hash key).
	emit(isa.Ins{Op: isa.OLoad, R1: isa.EAX, R2: isa.ESP, Imm: depth, Label: label("bf_body")})

	emitMix := func(dst byte, seedOff int) {
		// dst := mix(eax, mem[seed]) — clobbers ecx, edx.
		emit(isa.Ins{Op: isa.OLoadAbs, R1: isa.ECX, Imm: dref(seedOff)})
		emit(isa.Ins{Op: isa.OMovReg, R1: dst, R2: isa.EAX})
		emit(isa.Ins{Op: isa.OXor, R1: dst, R2: isa.ECX})
		emit(isa.Ins{Op: isa.OMovReg, R1: isa.EDX, R2: dst})
		emit(isa.Ins{Op: isa.OShrImm, R1: isa.EDX, Imm: 16})
		emit(isa.Ins{Op: isa.OXor, R1: dst, R2: isa.EDX})
		emit(isa.Ins{Op: isa.OMulImm, R1: dst, Imm: int64(uint32(0x85ebca6b))})
		emit(isa.Ins{Op: isa.OMovReg, R1: isa.EDX, R2: dst})
		emit(isa.Ins{Op: isa.OShrImm, R1: isa.EDX, Imm: 13})
		emit(isa.Ins{Op: isa.OXor, R1: dst, R2: isa.EDX})
		emit(isa.Ins{Op: isa.OMulImm, R1: dst, Imm: int64(uint32(0xc2b2ae35))})
		emit(isa.Ins{Op: isa.OMovReg, R1: isa.EDX, R2: dst})
		emit(isa.Ins{Op: isa.OShrImm, R1: isa.EDX, Imm: 16})
		emit(isa.Ins{Op: isa.OXor, R1: dst, R2: isa.EDX})
	}

	// esi := disp[mix(key, seed1) % nb]
	emitMix(isa.ESI, bf.seed1Off)
	emit(isa.Ins{Op: isa.OLoadAbs, R1: isa.ECX, Imm: dref(bf.nbOff)})
	emit(isa.Ins{Op: isa.OUMod, R1: isa.ESI, R2: isa.ECX})
	emit(isa.Ins{Op: isa.OLoadIdx, R1: isa.ESI, R2: isa.ESI, Scale: 4, Imm: dref(bf.dispOff)})
	// ebx := (mix(key, seed2) + esi) % n  — the perfect-hash index.
	emitMix(isa.EBX, bf.seed2Off)
	emit(isa.Ins{Op: isa.OAdd, R1: isa.EBX, R2: isa.ESI})
	emit(isa.Ins{Op: isa.OLoadAbs, R1: isa.ECX, Imm: dref(bf.nOff)})
	emit(isa.Ins{Op: isa.OUMod, R1: isa.EBX, R2: isa.ECX})
	// edx := T[ebx]; fix the stacked return address: ret ^= edx.
	emit(isa.Ins{Op: isa.OLoadIdx, R1: isa.EDX, R2: isa.EBX, Scale: 4, Imm: dref(bf.tableOff)})
	emit(isa.Ins{Op: isa.OLoad, R1: isa.ECX, R2: isa.ESP, Imm: depth})
	emit(isa.Ins{Op: isa.OXor, R1: isa.ECX, R2: isa.EDX})
	emit(isa.Ins{Op: isa.OStore, R1: isa.ESP, R2: isa.ECX, Imm: depth})
	// Tamper-proofing slot (Figure 7's "begin tamper-proofing"):
	//   ecx := slots[ebx].M; if ecx != 0 { *ecx ^= slots[ebx].val; slots[ebx].M = 0 }
	emit(isa.Ins{Op: isa.OLoadIdx, R1: isa.ECX, R2: isa.EBX, Scale: 8, Imm: dref(bf.slotsOff)})
	emit(isa.Ins{Op: isa.OCmpImm, R1: isa.ECX, Imm: 0})
	emit(isa.Ins{Op: isa.OJe, Target: label("bf_cleanup")})
	emit(isa.Ins{Op: isa.OLoadIdx, R1: isa.EDX, R2: isa.EBX, Scale: 8, Imm: dref(bf.slotsOff + 4)})
	emit(isa.Ins{Op: isa.OLoad, R1: isa.EDI, R2: isa.ECX, Imm: 0})
	emit(isa.Ins{Op: isa.OXor, R1: isa.EDI, R2: isa.EDX})
	emit(isa.Ins{Op: isa.OStore, R1: isa.ECX, R2: isa.EDI, Imm: 0})
	emit(isa.Ins{Op: isa.OMovImm, R1: isa.EDI, Imm: 0})
	emit(isa.Ins{Op: isa.OStoreIdx, R1: isa.EDI, R2: isa.EBX, Scale: 8, Imm: dref(bf.slotsOff)})
	emit(isa.Ins{Op: isa.ORet, Label: label("bf_cleanup")})

	return bf, nil
}

// PatchAddrs converts the data-offset placeholders baked into the emitted
// code to absolute data addresses. It must run after the unit's
// instruction stream is final (data addresses depend on total text size)
// and before assembly.
func (bf *BranchFunc) PatchAddrs(u *isa.Unit) {
	for _, idx := range bf.patchIdx {
		off := u.Instrs[idx].Imm - dataRefMarker
		u.Instrs[idx].Imm = int64(isa.DataAddr(u, int(off)))
	}
}

// TamperSlot assigns one §4.3 tamper-proofing slot: when the branch
// function handles the call site hashing to index Idx, it XORs Val into
// the word at M (fixing an indirect-jump cell), then clears the slot.
type TamperSlot struct {
	Idx  uint32
	M    uint32
	XVal uint32
}

// Finalize fills the branch function's data tables. keys[i] must be the
// return address of call site i (site address + CallLen) and targets[i]
// the address the branch function must transfer that call to.
func (bf *BranchFunc) Finalize(u *isa.Unit, keys, targets []uint32, slots []TamperSlot) error {
	if len(keys) != bf.N || len(targets) != bf.N {
		return fmt.Errorf("branchfn: got %d keys / %d targets, want %d", len(keys), len(targets), bf.N)
	}
	ph, err := perfecthash.Build(keys)
	if err != nil {
		return fmt.Errorf("branchfn: perfect hash: %w", err)
	}
	if err := ph.Verify(keys); err != nil {
		return err
	}
	if int(ph.N) != bf.N || len(ph.Displacements) != bf.NB {
		return fmt.Errorf("branchfn: hash shape mismatch (n=%d nb=%d, want %d/%d)",
			ph.N, len(ph.Displacements), bf.N, bf.NB)
	}
	putWord := func(off int, v uint32) {
		u.Data[off] = byte(v)
		u.Data[off+1] = byte(v >> 8)
		u.Data[off+2] = byte(v >> 16)
		u.Data[off+3] = byte(v >> 24)
	}
	putWord(bf.seed1Off, ph.Seed1)
	putWord(bf.seed2Off, ph.Seed2)
	putWord(bf.nbOff, uint32(bf.NB))
	putWord(bf.nOff, uint32(bf.N))
	for i, d := range ph.Displacements {
		putWord(bf.dispOff+4*i, uint32(d))
	}
	for i, key := range keys {
		idx := ph.Lookup(key)
		putWord(bf.tableOff+4*int(idx), key^targets[i])
	}
	for _, s := range slots {
		if int(s.Idx) >= bf.N {
			return fmt.Errorf("branchfn: tamper slot index %d out of range", s.Idx)
		}
		putWord(bf.slotsOff+8*int(s.Idx), s.M)
		putWord(bf.slotsOff+8*int(s.Idx)+4, s.XVal)
	}
	return nil
}

// Hash returns the perfect-hash index the finalized branch function will
// compute for a key; used by the embedder to map call sites to tamper
// slots. It must be called only after Finalize succeeded with these keys.
func Hash(keys []uint32, key uint32) (uint32, error) {
	ph, err := perfecthash.Build(keys)
	if err != nil {
		return 0, err
	}
	return ph.Lookup(key), nil
}
