package branchfn

import (
	"math/rand"
	"testing"

	"pathmark/internal/isa"
	"pathmark/internal/perfecthash"
)

// buildDispatchTest wires a branch function dispatching n chained call
// sites directly (without the watermark embedder) and checks control
// flows through the whole chain.
func buildDispatchTest(t *testing.T, n int, helperDepth int) {
	t.Helper()
	b := isa.NewBuilder()
	b.Jmp(siteLabel(0))
	// n call sites, each followed by an out marker that must NOT execute
	// (the branch function redirects around them).
	for i := 0; i < n; i++ {
		b.Label(siteLabel(i)).Raw(isa.Ins{Op: isa.OCall, Target: "bf_entry"})
	}
	b.Label("end").MovImm(isa.EAX, 42).Out(isa.EAX).Hlt()
	u := b.Unit()

	rng := rand.New(rand.NewSource(3))
	bf, err := Reserve(u, n, Options{HelperDepth: helperDepth, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	bf.PatchAddrs(u)
	img, err := isa.Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint32, n)
	targets := make([]uint32, n)
	for i := 0; i < n; i++ {
		keys[i] = img.Labels[siteLabel(i)] + CallLen
		if i+1 < n {
			targets[i] = img.Labels[siteLabel(i+1)]
		} else {
			targets[i] = img.Labels["end"]
		}
	}
	if err := bf.Finalize(u, keys, targets, nil); err != nil {
		t.Fatal(err)
	}
	res, err := isa.Execute(u, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 42 {
		t.Fatalf("chain output %v, want [42]", res.Output)
	}
}

func siteLabel(i int) string { return "site" + string(rune('A'+i%26)) + string(rune('0'+i/26)) }

func TestDispatchChainSizes(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17} {
		buildDispatchTest(t, n, 0)
	}
}

func TestDispatchHelperDepths(t *testing.T) {
	for depth := 0; depth <= 4; depth++ {
		buildDispatchTest(t, 4, depth)
	}
}

func TestReserveRejectsBadArgs(t *testing.T) {
	u := &isa.Unit{}
	if _, err := Reserve(u, 0, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Reserve(u, 3, Options{HelperDepth: 9}); err == nil {
		t.Error("helper depth 9 accepted")
	}
}

func TestFinalizeRejectsMismatchedArgs(t *testing.T) {
	u := &isa.Unit{}
	bf, err := Reserve(u, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.Finalize(u, []uint32{1, 2}, []uint32{3, 4}, nil); err == nil {
		t.Error("wrong key count accepted")
	}
	if err := bf.Finalize(u, []uint32{1, 2, 3}, []uint32{4, 5, 6},
		[]TamperSlot{{Idx: 99}}); err == nil {
		t.Error("out-of-range tamper slot accepted")
	}
}

func TestRegisterAndFlagPreservation(t *testing.T) {
	// The branch function must preserve every register and the flags.
	b := isa.NewBuilder()
	b.Jmp("start")
	b.Label("site").Raw(isa.Ins{Op: isa.OCall, Target: "bf_entry"})
	b.Label("start").MovImm(isa.EAX, 10).MovImm(isa.EBX, 20).MovImm(isa.ECX, 30)
	b.MovImm(isa.EDX, 40).MovImm(isa.ESI, 50).MovImm(isa.EDI, 60)
	b.CmpImm(isa.EAX, 10) // ZF set
	b.Jmp("site")         // enters the chain; returns to "after"
	b.Label("after").Je("zf_ok")
	b.MovImm(isa.EAX, 0).Out(isa.EAX).Hlt()
	b.Label("zf_ok").Out(isa.EAX).Out(isa.EBX).Out(isa.ECX).Out(isa.EDX).Out(isa.ESI).Out(isa.EDI).Hlt()
	u := b.Unit()

	// The jmp at "start"'s end (to site) is the edge; rewrite it by hand:
	// replace `jmp site` with nothing — instead make the site's call the
	// begin and its target "after".
	bf, err := Reserve(u, 1, Options{HelperDepth: 2, Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	bf.PatchAddrs(u)
	img, err := isa.Assemble(u)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint32{img.Labels["site"] + CallLen}
	targets := []uint32{img.Labels["after"]}
	if err := bf.Finalize(u, keys, targets, nil); err != nil {
		t.Fatal(err)
	}
	res, err := isa.Execute(u, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 30, 40, 50, 60}
	if len(res.Output) != len(want) {
		t.Fatalf("output %v, want %v (flags or registers clobbered)", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output %v, want %v", res.Output, want)
		}
	}
}

func TestHashMatchesPerfectHash(t *testing.T) {
	keys := []uint32{0x08048010, 0x08048022, 0x08048031, 0x08048047}
	ph, err := perfecthash.Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		got, err := Hash(keys, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != ph.Lookup(k) {
			t.Errorf("Hash(%#x) = %d, want %d", k, got, ph.Lookup(k))
		}
	}
}
