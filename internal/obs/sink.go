package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanStat is the exported snapshot of one finished span.
type SpanStat struct {
	Name     string           `json:"name"`
	Depth    int              `json:"depth"`
	WallNS   int64            `json:"wall_ns,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// CounterStat is the exported snapshot of one counter.
type CounterStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistStat is the exported snapshot of one histogram. Buckets maps the
// power-of-two bucket index (as a decimal string, to survive JSON) to its
// count; empty buckets are omitted.
type HistStat struct {
	Name    string           `json:"name"`
	Timing  bool             `json:"timing,omitempty"`
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Min     int64            `json:"min"`
	Max     int64            `json:"max"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of the registry, the payload every sink
// renders. Spans appear in start order; counters and histograms are
// sorted by name.
type Snapshot struct {
	Spans    []SpanStat    `json:"spans,omitempty"`
	Counters []CounterStat `json:"counters,omitempty"`
	Hists    []HistStat    `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current contents. Unfinished spans are
// included with WallNS 0 so that a mid-run snapshot (e.g. via expvar)
// still shows what is in flight.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	for _, s := range r.spans {
		st := SpanStat{Name: s.name, Depth: s.depth, Counters: copyCounters(s.counters)}
		if s.done {
			st.WallNS = int64(s.wall)
		}
		snap.Spans = append(snap.Spans, st)
	}
	for _, name := range sortedKeys(r.counters) {
		snap.Counters = append(snap.Counters, CounterStat{Name: name, Value: r.counters[name].v.Load()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		h.mu.Lock()
		hs := HistStat{Name: name, Timing: h.timing, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		for i, b := range h.buckets {
			if b != 0 {
				if hs.Buckets == nil {
					hs.Buckets = make(map[string]int64)
				}
				hs.Buckets[fmt.Sprintf("%d", i)] = b
			}
		}
		h.mu.Unlock()
		snap.Hists = append(snap.Hists, hs)
	}
	r.mu.Unlock()
	return snap
}

// JSONLOptions tunes the JSONL sink.
type JSONLOptions struct {
	// Deterministic omits every schedule-dependent record — span wall
	// times and timing histograms — leaving only input-derived metrics.
	// The resulting stream is byte-identical across runs, worker counts,
	// and machines for the same input and seed, which is what CI baselines
	// diff against.
	Deterministic bool
}

// WriteJSONL streams the registry as JSON Lines: one object per span (in
// start order), then one per counter and histogram (sorted by name). Every
// object carries a "type" field ("span", "counter", "hist"); map keys are
// emitted in sorted order by encoding/json, so equal registries produce
// byte-identical streams.
func (r *Registry) WriteJSONL(w io.Writer, opts JSONLOptions) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	enc := json.NewEncoder(w)
	for _, s := range snap.Spans {
		ev := map[string]any{"type": "span", "name": s.Name, "depth": s.Depth}
		if !opts.Deterministic && s.WallNS > 0 {
			ev["wall_ns"] = s.WallNS
		}
		if len(s.Counters) > 0 {
			ev["counters"] = s.Counters
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	for _, c := range snap.Counters {
		if err := enc.Encode(map[string]any{"type": "counter", "name": c.Name, "value": c.Value}); err != nil {
			return err
		}
	}
	for _, h := range snap.Hists {
		if opts.Deterministic && h.Timing {
			continue
		}
		ev := map[string]any{
			"type": "hist", "name": h.Name,
			"count": h.Count, "sum": h.Sum, "min": h.Min, "max": h.Max,
		}
		if h.Timing {
			ev["timing"] = true
		}
		if len(h.Buckets) > 0 {
			ev["buckets"] = h.Buckets
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// rateCounters names the span counters the summary sink derives a
// per-second throughput from (windows/s for the scan stage, instrs/s for
// interpreter runs). Rates are computed at render time from the span's
// wall clock, never stored, so the registry content stays deterministic.
var rateCounters = []string{"windows", "steps"}

// WriteSummary renders a human-readable report: the span tree (indented
// by nesting depth) with wall times, counters, and derived rates, then
// the counters and histogram statistics.
func (r *Registry) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	var sb strings.Builder
	sb.WriteString("== obs summary ==\n")
	if len(snap.Spans) > 0 {
		sb.WriteString("spans:\n")
		for _, s := range snap.Spans {
			fmt.Fprintf(&sb, "  %s%-*s %10s", strings.Repeat("  ", s.Depth),
				34-2*s.Depth, s.Name, fmtWall(s.WallNS))
			for _, k := range sortedKeys(s.Counters) {
				fmt.Fprintf(&sb, "  %s=%d", k, s.Counters[k])
			}
			for _, rc := range rateCounters {
				if v, ok := s.Counters[rc]; ok && s.WallNS > 0 {
					fmt.Fprintf(&sb, "  (%.2f M%s/s)", float64(v)*1e3/float64(s.WallNS), rc)
				}
			}
			sb.WriteByte('\n')
		}
	}
	if len(snap.Counters) > 0 {
		sb.WriteString("counters:\n")
		for _, c := range snap.Counters {
			fmt.Fprintf(&sb, "  %-36s %d\n", c.Name, c.Value)
		}
	}
	if len(snap.Hists) > 0 {
		sb.WriteString("histograms:\n")
		for _, h := range snap.Hists {
			mean := 0.0
			if h.Count > 0 {
				mean = float64(h.Sum) / float64(h.Count)
			}
			fmt.Fprintf(&sb, "  %-36s count=%d sum=%d min=%d max=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f\n",
				h.Name, h.Count, h.Sum, h.Min, h.Max, mean,
				h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func fmtWall(ns int64) string {
	if ns <= 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

// expvarRegs holds one swappable registry pointer per published expvar
// name. expvar.Publish panics on duplicate names and offers no
// unpublish, so the expvar.Func registered for a name closes over the
// pointer cell rather than a registry: re-publishing the same name
// swaps the cell, and /debug/vars immediately reflects the new
// registry. Without this indirection the second job/run in a process
// kept exporting the first run's (by then frozen) registry forever.
var (
	expvarMu   sync.Mutex
	expvarRegs = make(map[string]*atomic.Pointer[Registry])
)

// PublishExpvar exports the registry under the given expvar name as a
// live-snapshotting expvar.Func, so a process that serves /debug/vars (or
// any expvar dumper) sees current metrics. Publishing a name again swaps
// the visible registry instead of panicking or silently keeping the old
// one; names already claimed by foreign expvar values are left alone.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	cell := expvarRegs[name]
	if cell == nil {
		if expvar.Get(name) != nil {
			return // claimed outside obs; Publish would panic
		}
		cell = new(atomic.Pointer[Registry])
		expvarRegs[name] = cell
		expvar.Publish(name, expvar.Func(func() any { return cell.Load().Snapshot() }))
	}
	cell.Store(r)
}
