package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"

	"pathmark/internal/iofault"
)

// This file is the trace-context side of the observability layer: where
// registries aggregate (counters summed over a whole run), traces
// narrate — an append-only JSONL stream of discrete events, each stamped
// with the trace ID that ties every span, retry, breaker trip, and
// per-layer reject back to one job or request. The jobs engine persists
// one such stream per job as trace.jsonl next to journal.jsonl, and the
// serve daemon exposes it verbatim at GET /jobs/{id}/trace.
//
// Two properties mirror the registry design:
//
//   - Nil-safety. Every method on a nil *Trace is a no-op, so
//     instrumented call sites never guard the trace behind their own
//     flags.
//
//   - Deterministic content. Event attributes record input-derived
//     quantities (windows scanned, rejects per layer), and the
//     deterministic mode omits the two schedule-dependent stampings —
//     sequence numbers and wall-clock timestamps. The remaining event
//     *set* is then byte-identical across worker counts; only the line
//     order varies, so a sort-then-diff proves two runs saw the same
//     metrics.

// TraceEvent is one line of a trace stream. Attrs carries the numeric
// payload (always input-derived quantities), Labels the string payload
// (error messages, peer trace IDs). encoding/json emits map keys sorted,
// so an event's serialized form depends only on its content.
type TraceEvent struct {
	Trace  string            `json:"trace"`
	Seq    int64             `json:"seq,omitempty"`
	TSUS   int64             `json:"ts_us,omitempty"` // unix microseconds
	Event  string            `json:"event"`
	Attrs  map[string]int64  `json:"attrs,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
}

// Trace is an append-only event stream bound to one trace ID. All
// methods are safe for concurrent use and no-ops on a nil receiver.
// Write failures never propagate to the instrumented code path: the
// first error is retained (see Err) and later events are dropped —
// telemetry must not take down the pipeline it observes.
type Trace struct {
	id  string
	det bool

	mu     sync.Mutex
	w      io.Writer
	closer io.Closer
	seq    int64
	err    error
}

// NewTrace wraps an arbitrary writer as a trace stream. With
// deterministic set, events carry no sequence numbers or timestamps.
func NewTrace(w io.Writer, id string, deterministic bool) *Trace {
	return &Trace{id: id, det: deterministic, w: w}
}

// OpenTraceFile opens (or creates) a trace file in append mode, so a
// resumed job's second process lifetime continues the same stream under
// the same trace ID — the on-disk file then carries one ID across every
// lifetime that touched the job.
func OpenTraceFile(path, id string, deterministic bool) (*Trace, error) {
	return OpenTraceFileFS(iofault.OS, path, id, deterministic)
}

// OpenTraceFileFS is OpenTraceFile over an explicit filesystem, so the
// trace writer shares whatever fault-injecting FS its job runs on.
func OpenTraceFileFS(fs iofault.FS, path, id string, deterministic bool) (*Trace, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	t := NewTrace(f, id, deterministic)
	t.closer = f
	return t, nil
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Deterministic reports whether the stream omits schedule-dependent
// stampings.
func (t *Trace) Deterministic() bool { return t != nil && t.det }

// Event appends one event. attrs and labels may be nil; both are
// serialized with sorted keys. Events after a write failure are dropped.
func (t *Trace) Event(name string, attrs map[string]int64, labels map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil || t.w == nil {
		return
	}
	ev := TraceEvent{Trace: t.id, Event: name, Attrs: attrs, Labels: labels}
	if !t.det {
		t.seq++
		ev.Seq = t.seq
		ev.TSUS = time.Now().UnixMicro()
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	// Events are checksum-framed like every other log line (see
	// internal/iofault): the frame is a pure function of the payload, so
	// deterministic streams stay sort-comparable across worker counts.
	if _, err := t.w.Write(iofault.Frame(b)); err != nil {
		t.err = err
	}
}

// Err returns the first write or encode failure (nil while healthy).
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close releases the underlying file when the trace owns one and
// returns the first retained error. Idempotent; no-op on nil.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closer != nil {
		if cerr := t.closer.Close(); cerr != nil && t.err == nil {
			t.err = cerr
		}
		t.closer = nil
		t.w = nil
	} else {
		t.w = nil // drop further events after an explicit Close
	}
	return t.err
}

// scanTraceLines walks the stream's complete, well-formed event lines in
// order, calling fn (when non-nil) with each decoded event and its
// payload bytes (the line with any checksum frame stripped). It accepts
// both on-disk framed lines and bare ndjson — trace bytes relayed over
// HTTP arrive de-framed — and is the one place the torn-tail stopping
// rule lives: a malformed, unverified, or unterminated line — a writer
// caught mid-append — ends the walk, and everything before it stands.
func scanTraceLines(data []byte, fn func(TraceEvent, []byte)) {
	for {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			return
		}
		payload, err := iofault.Unframe(data[:i])
		if err != nil {
			payload = data[:i] // bare ndjson (HTTP-relayed)
		}
		var ev TraceEvent
		if json.Unmarshal(payload, &ev) != nil || ev.Event == "" {
			return
		}
		if fn != nil {
			fn(ev, payload)
		}
		data = data[i+1:]
	}
}

// DecodeTraceEvents parses a trace stream, tolerating a torn tail the
// way journal replay does: malformed or unterminated lines end the
// parse, everything before them is returned. A trace is telemetry, not
// ground truth, so there is no error to report — partial evidence is
// still evidence.
func DecodeTraceEvents(data []byte) []TraceEvent {
	var evs []TraceEvent
	scanTraceLines(data, func(ev TraceEvent, _ []byte) { evs = append(evs, ev) })
	return evs
}

// CompleteTraceLines renders the stream's complete, well-formed event
// lines as bare ndjson, checksum frames verified and stripped — the
// raw-bytes counterpart of DecodeTraceEvents for servers that relay a
// stream while its writer is still appending: the reader never sees the
// torn last line, and never sees the on-disk framing either.
func CompleteTraceLines(data []byte) []byte {
	out := make([]byte, 0, len(data))
	scanTraceLines(data, func(_ TraceEvent, payload []byte) {
		out = append(out, payload...)
		out = append(out, '\n')
	})
	return out
}
