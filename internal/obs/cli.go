package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// CLI bundles the standard observability flags every command in this
// repository exposes (-stats, -stats-json, -stats-deterministic,
// -cpuprofile, -memprofile) and their lifecycle: Register the flags,
// Begin after flag parsing to obtain the (possibly nil) registry and
// start profiling, Finish to stop profiles and flush the sinks.
//
// Finish is idempotent and safe to wire into both the happy path and an
// error-exit path, so partially collected metrics and CPU profiles
// survive failed runs.
type CLI struct {
	Stats         bool
	StatsJSON     string
	Deterministic bool
	CPUProfile    string
	MemProfile    string

	// SummaryTo receives the -stats summary (defaults to os.Stderr).
	SummaryTo io.Writer

	reg     *Registry
	cpuFile *os.File
	finish  sync.Once
}

// Register installs the observability flags on the flag set.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.Stats, "stats", false, "print a per-stage timing/counter summary to stderr")
	fs.StringVar(&c.StatsJSON, "stats-json", "", "write metrics as JSONL events to this file")
	fs.BoolVar(&c.Deterministic, "stats-deterministic", false,
		"omit wall times and timing histograms from -stats-json (byte-stable baselines)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file")
}

// Begin starts CPU profiling when requested and returns the registry to
// instrument with: non-nil only when -stats or -stats-json was given, so
// the disabled path stays a nil registry (and therefore free). The
// registry is also published under the expvar name for processes that
// serve /debug/vars.
func (c *CLI) Begin(expvarName string) (*Registry, error) {
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return nil, err
		}
		c.cpuFile = f
	}
	if c.Stats || c.StatsJSON != "" {
		c.reg = NewRegistry()
		c.reg.PublishExpvar(expvarName)
	}
	return c.reg, nil
}

// Registry returns the registry Begin created (nil when stats are off).
func (c *CLI) Registry() *Registry { return c.reg }

// Finish stops the CPU profile, writes the heap profile, and flushes the
// summary and JSONL sinks. Only the first call acts.
func (c *CLI) Finish() error {
	var err error
	c.finish.Do(func() { err = c.doFinish() })
	return err
}

func (c *CLI) doFinish() error {
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if e := c.cpuFile.Close(); e != nil {
			return e
		}
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if c.reg == nil {
		return nil
	}
	if c.Stats {
		out := c.SummaryTo
		if out == nil {
			out = os.Stderr
		}
		if err := c.reg.WriteSummary(out); err != nil {
			return err
		}
	}
	if c.StatsJSON != "" {
		f, err := os.Create(c.StatsJSON)
		if err != nil {
			return err
		}
		werr := c.reg.WriteJSONL(f, JSONLOptions{Deterministic: c.Deterministic})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing %s: %w", c.StatsJSON, werr)
		}
	}
	return nil
}
