package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pathmark/internal/iofault"
)

func TestTraceNil(t *testing.T) {
	var tr *Trace
	tr.Event("x", map[string]int64{"a": 1}, nil)
	if tr.ID() != "" {
		t.Errorf("nil ID = %q", tr.ID())
	}
	if tr.Deterministic() {
		t.Error("nil Deterministic = true")
	}
	if err := tr.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

func TestTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf, "job-1", false)
	tr.Event("job.open", map[string]int64{"suspects": 3}, nil)
	tr.Event("grade.done", map[string]int64{"s": 0, "k": 1}, map[string]string{"err": "timeout"})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	evs := DecodeTraceEvents(buf.Bytes())
	if len(evs) != 2 {
		t.Fatalf("decoded %d events, want 2", len(evs))
	}
	if evs[0].Trace != "job-1" || evs[0].Event != "job.open" || evs[0].Attrs["suspects"] != 3 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("seq = %d, %d, want 1, 2", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].TSUS == 0 {
		t.Error("non-deterministic event has no timestamp")
	}
	if evs[1].Labels["err"] != "timeout" {
		t.Errorf("event 1 labels = %v", evs[1].Labels)
	}
}

// TestTraceDeterministic: with the deterministic flag, an event's bytes
// depend only on its content — no seq, no timestamp — so two streams
// recording the same events in different orders are equal after a sort.
func TestTraceDeterministic(t *testing.T) {
	emit := func(order []int) []byte {
		var buf bytes.Buffer
		tr := NewTrace(&buf, "job-1", true)
		for _, i := range order {
			tr.Event("grade.done", map[string]int64{"s": int64(i)}, nil)
		}
		return buf.Bytes()
	}
	a, b := emit([]int{0, 1, 2}), emit([]int{2, 0, 1})
	sortLines := func(p []byte) string {
		lines := strings.Split(strings.TrimSpace(string(p)), "\n")
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				if lines[j] < lines[i] {
					lines[i], lines[j] = lines[j], lines[i]
				}
			}
		}
		return strings.Join(lines, "\n")
	}
	if sortLines(a) != sortLines(b) {
		t.Errorf("deterministic streams differ after sort:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(string(a), "seq") || strings.Contains(string(a), "ts_us") {
		t.Errorf("deterministic stream carries schedule stampings:\n%s", a)
	}
}

func TestTraceConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf, "job-c", false)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Event("tick", map[string]int64{"w": int64(w)}, nil)
			}
		}(w)
	}
	wg.Wait()
	evs := DecodeTraceEvents(buf.Bytes())
	if len(evs) != 400 {
		t.Fatalf("decoded %d events, want 400 (stream torn by concurrent writes?)", len(evs))
	}
	seen := make(map[int64]bool)
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// TestTraceFileAppend: reopening a trace file continues the stream, the
// resume-across-process-lifetimes behavior jobs rely on.
func TestTraceFileAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, err := OpenTraceFile(path, "job-f", false)
	if err != nil {
		t.Fatal(err)
	}
	tr.Event("job.open", nil, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	tr.Event("after.close", nil, nil) // dropped, must not panic
	tr2, err := OpenTraceFile(path, "job-f", false)
	if err != nil {
		t.Fatal(err)
	}
	tr2.Event("job.done", nil, nil)
	if err := tr2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs := DecodeTraceEvents(data)
	if len(evs) != 2 || evs[0].Event != "job.open" || evs[1].Event != "job.done" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Trace != evs[1].Trace {
		t.Errorf("trace ID changed across reopen: %q vs %q", evs[0].Trace, evs[1].Trace)
	}
}

// TestTraceTornTail: a truncated final line (torn write) must not poison
// the parse — everything before it decodes.
func TestTraceTornTail(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf, "job-t", false)
	tr.Event("a", nil, nil)
	tr.Event("b", nil, nil)
	whole := buf.Bytes()
	torn := whole[:len(whole)-5]
	evs := DecodeTraceEvents(torn)
	if len(evs) != 1 || evs[0].Event != "a" {
		t.Fatalf("torn-tail decode = %+v, want just event a", evs)
	}
	if evs := DecodeTraceEvents([]byte("not json\n")); len(evs) != 0 {
		t.Errorf("garbage decoded to %+v", evs)
	}
}

// TestCompleteTraceLines: the output must hold exactly the complete,
// well-formed lines — checksum frames verified and stripped — ending at
// the first torn or malformed line; the byte-level counterpart of the
// torn-tail decode rule, used by servers relaying a live stream.
func TestCompleteTraceLines(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf, "job-c", false)
	tr.Event("a", nil, nil)
	tr.Event("b", nil, nil)
	whole := append([]byte(nil), buf.Bytes()...)

	// deframe strips the 9-byte checksum prefix from each framed line.
	deframe := func(framed []byte) []byte {
		var out []byte
		for _, line := range bytes.SplitAfter(framed, []byte("\n")) {
			if len(line) > 9 {
				out = append(out, line[9:]...)
			}
		}
		return out
	}
	wholeNDJSON := deframe(whole)
	got := CompleteTraceLines(whole)
	if !bytes.Equal(got, wholeNDJSON) {
		t.Fatalf("complete stream = %q, want de-framed %q", got, wholeNDJSON)
	}
	if bytes.Contains(got, []byte(" {")) || !json.Valid(got[:bytes.IndexByte(got, '\n')]) {
		t.Fatalf("output is not bare ndjson: %q", got)
	}
	// The output is already bare ndjson, so relaying it through
	// CompleteTraceLines again is the identity — the serve daemon's trace
	// endpoint and pathmark top depend on this dual-accept.
	if again := CompleteTraceLines(got); !bytes.Equal(again, got) {
		t.Fatalf("relayed stream changed: %q vs %q", again, got)
	}
	// Torn tail: writer caught mid-append on the second line.
	firstLine := whole[:bytes.IndexByte(whole, '\n')+1]
	firstNDJSON := deframe(firstLine)
	torn := whole[:len(whole)-5]
	if got := CompleteTraceLines(torn); !bytes.Equal(got, firstNDJSON) {
		t.Fatalf("torn stream = %q, want first line only", got)
	}
	// A malformed middle line ends the valid prefix there, even though a
	// well-formed line follows — nothing past corruption is trusted.
	mixed := append(append([]byte(nil), firstLine...), []byte("not json\n")...)
	mixed = append(mixed, whole[len(firstLine):]...)
	if got := CompleteTraceLines(mixed); !bytes.Equal(got, firstNDJSON) {
		t.Fatalf("corrupt-middle stream = %q, want first line only", got)
	}
	if got := CompleteTraceLines(nil); len(got) != 0 {
		t.Fatalf("nil stream = %q, want empty", got)
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestTraceWriteErrorRetained(t *testing.T) {
	tr := NewTrace(&errWriter{n: 1}, "job-e", false)
	tr.Event("ok", nil, nil)
	tr.Event("fails", nil, nil)
	tr.Event("dropped", nil, nil) // after the failure: silently dropped
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Err = %v, want disk full", err)
	}
}

func TestTraceEventJSONShape(t *testing.T) {
	var buf bytes.Buffer
	NewTrace(&buf, "id", true).Event("e", map[string]int64{"b": 2, "a": 1}, map[string]string{"k": "v"})
	// Each line is checksum-framed on disk: verify the frame, then inspect
	// the JSON payload it protects.
	line := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
	payload, err := iofault.Unframe(line)
	if err != nil {
		t.Fatalf("trace line not checksum-framed: %v (%q)", err, line)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(payload, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"trace", "event", "attrs", "labels"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("serialized event missing %q: %s", key, payload)
		}
	}
	// Sorted map keys make the line content-deterministic.
	if s := string(payload); strings.Index(s, `"a"`) > strings.Index(s, `"b"`) {
		t.Errorf("attr keys not sorted: %s", s)
	}
}

// BenchmarkTraceEvent prices one stage event (the grade.scan shape, the
// largest in the vocabulary). Events are per-grade, never per-window, so
// this cost amortizes over the thousands of windows each grade scans.
func BenchmarkTraceEvent(b *testing.B) {
	tr := NewTrace(io.Discard, "bench", false)
	attrs := map[string]int64{
		"s": 1, "k": 2, "windows": 6565, "decrypted": 2456, "valid": 16,
		"reject_popcount": 2900, "reject_transitions": 460, "reject_phase": 730, "reject_framing": 2440,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event("grade.scan", attrs, nil)
	}
}
