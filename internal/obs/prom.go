package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4), which is what `pathmark serve` mounts at /metrics.
// The mapping is mechanical:
//
//   - counters become `# TYPE <name> counter` samples;
//   - power-of-two histograms become cumulative `_bucket{le="..."}`
//     series (bucket i covers [2^(i-1), 2^i), so its inclusive upper
//     bound — the `le` value — is 2^i - 1), plus `_sum`, `_count`, and
//     derived `_p50`/`_p99` gauges interpolated from the buckets;
//   - spans are skipped: they are per-run narrative, not time series,
//     and live in the summary/JSONL/trace sinks instead.
//
// ParsePrometheus is the matching validator, small enough to keep CI
// free of a promtool dependency: it checks TYPE lines, sample syntax,
// the metric-name charset, histogram bucket monotonicity, and the
// +Inf-equals-count invariant.

// Quantile estimates the q-th quantile (0 <= q <= 1) of the histogram
// by linear interpolation inside its power-of-two buckets. Bucket i
// spans [2^(i-1), 2^i - 1] (bucket 0 holds only zeros); the estimate
// walks the cumulative counts to the bucket containing rank q*Count and
// interpolates linearly within it, then clamps to the recorded
// [Min, Max] so single-valued histograms report exactly.
func (h HistStat) Quantile(q float64) float64 {
	if h.Count <= 0 {
		return 0
	}
	if q <= 0 {
		return float64(h.Min)
	}
	if q >= 1 {
		return float64(h.Max)
	}
	target := q * float64(h.Count)
	cum := 0.0
	for i := 0; i <= 64; i++ {
		b := h.Buckets[strconv.Itoa(i)]
		if b <= 0 {
			continue
		}
		if cum+float64(b) >= target {
			lo, hi := bucketBounds(i)
			v := lo + (target-cum)/float64(b)*(hi-lo)
			return math.Max(float64(h.Min), math.Min(float64(h.Max), v))
		}
		cum += float64(b)
	}
	return float64(h.Max)
}

// bucketBounds returns the inclusive value range of power-of-two bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	lo = math.Ldexp(1, i-1)
	hi = math.Ldexp(1, i) - 1
	return lo, hi
}

// bucketUpper renders bucket i's inclusive upper bound as the exact
// decimal Prometheus `le` label (2^i - 1; "0" for the zero bucket).
func bucketUpper(i int) string {
	if i == 0 {
		return "0"
	}
	if i >= 64 {
		return strconv.FormatUint(^uint64(0), 10)
	}
	return strconv.FormatUint(uint64(1)<<uint(i)-1, 10)
}

// promName sanitizes a dotted metric name into the Prometheus charset
// ([a-zA-Z0-9_:]) and prefixes the namespace, so "scan.reject.popcount"
// under namespace "pathmark" becomes "pathmark_scan_reject_popcount".
func promName(namespace, name string) string {
	var sb strings.Builder
	if namespace != "" {
		sb.WriteString(namespace)
		sb.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9' && sb.Len() > 0:
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Counters export as counters; histograms as cumulative-bucket
// histogram series with derived p50/p99 gauges; spans are omitted. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	var sb strings.Builder
	for _, c := range snap.Counters {
		n := promName(namespace, c.Name)
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, h := range snap.Hists {
		n := promName(namespace, h.Name)
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", n)
		cum := int64(0)
		for i := 0; i <= 64; i++ {
			b := h.Buckets[strconv.Itoa(i)]
			if b <= 0 {
				continue
			}
			cum += b
			fmt.Fprintf(&sb, "%s_bucket{le=\"%s\"} %d\n", n, bucketUpper(i), cum)
		}
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&sb, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(&sb, "%s_count %d\n", n, h.Count)
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"p50", 0.50}, {"p99", 0.99}} {
			qn := n + "_" + q.suffix
			fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %s\n", qn, qn, promFloat(h.Quantile(q.q)))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ParsePrometheus validates a text-exposition payload and returns its
// samples keyed by the sample identifier as written (metric name plus
// any label block, e.g. `http_duration_us_bucket{le="1023"}`). It
// enforces the invariants a scraper relies on: names match the
// Prometheus charset, every sample parses as a float, TYPE lines name a
// known type, histogram bucket series are cumulative (non-decreasing),
// and the `+Inf` bucket equals the `_count` sample.
func ParsePrometheus(data []byte) (map[string]float64, error) {
	samples := make(map[string]float64)
	type histCheck struct {
		last    float64
		inf     float64
		hasInf  bool
		ordered bool
	}
	hists := make(map[string]*histCheck)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("prom: line %d: malformed TYPE line", ln+1)
				}
				if !validPromName(fields[2]) {
					return nil, fmt.Errorf("prom: line %d: bad metric name %q", ln+1, fields[2])
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom: line %d: unknown type %q", ln+1, fields[3])
				}
			}
			continue // HELP and free comments pass through
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", ln+1, err)
		}
		key := name + labels
		if _, dup := samples[key]; dup {
			return nil, fmt.Errorf("prom: line %d: duplicate sample %s", ln+1, key)
		}
		samples[key] = value
		if base, ok := strings.CutSuffix(name, "_bucket"); ok && strings.Contains(labels, "le=") {
			hc := hists[base]
			if hc == nil {
				hc = &histCheck{ordered: true}
				hists[base] = hc
			}
			if strings.Contains(labels, `le="+Inf"`) {
				hc.inf, hc.hasInf = value, true
			} else {
				if value < hc.last {
					hc.ordered = false
				}
				hc.last = value
			}
		}
	}
	for base, hc := range hists {
		if !hc.ordered {
			return nil, fmt.Errorf("prom: histogram %s: bucket series not cumulative", base)
		}
		if !hc.hasInf {
			return nil, fmt.Errorf("prom: histogram %s: missing +Inf bucket", base)
		}
		if hc.inf < hc.last {
			return nil, fmt.Errorf("prom: histogram %s: +Inf bucket below last le bucket", base)
		}
		if count, ok := samples[base+"_count"]; ok && count != hc.inf {
			return nil, fmt.Errorf("prom: histogram %s: +Inf bucket %g != count %g", base, hc.inf, count)
		}
	}
	return samples, nil
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample splits one sample line into name, normalized label
// block (sorted, "" when absent), and value.
func parsePromSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced label braces")
		}
		name = rest[:i]
		raw := rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
		var pairs []string
		for _, p := range strings.Split(raw, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			k, v, found := strings.Cut(p, "=")
			if !found || !validPromName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", 0, fmt.Errorf("malformed label %q", p)
			}
			pairs = append(pairs, k+"="+v)
		}
		sort.Strings(pairs)
		labels = "{" + strings.Join(pairs, ",") + "}"
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("sample needs a name and a value")
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validPromName(name) {
		return "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", "", 0, fmt.Errorf("malformed value %q", rest)
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", "", 0, err
	}
	return name, labels, value, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}
