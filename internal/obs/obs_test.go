package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestSpanNesting checks that depth reflects the number of unfinished
// spans at Start time and that Finish ordering (including out-of-order
// and double Finish) never corrupts the registry.
func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	outer := r.Start("outer")
	inner := r.Start("inner")
	innermost := r.Start("innermost")
	innermost.Finish()
	inner.Finish()
	sibling := r.Start("sibling") // depth back to 1 after the two finishes
	sibling.Finish()
	outer.Finish()
	if d := outer.Finish(); d != outer.wall {
		t.Errorf("double Finish returned %v, want the recorded %v", d, outer.wall)
	}
	after := r.Start("after")
	after.Finish()

	snap := r.Snapshot()
	want := map[string]int{"outer": 0, "inner": 1, "innermost": 2, "sibling": 1, "after": 0}
	if len(snap.Spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(snap.Spans), len(want))
	}
	order := []string{"outer", "inner", "innermost", "sibling", "after"}
	for i, s := range snap.Spans {
		if s.Name != order[i] {
			t.Errorf("span %d = %q, want start-order %q", i, s.Name, order[i])
		}
		if s.Depth != want[s.Name] {
			t.Errorf("span %q depth = %d, want %d", s.Name, s.Depth, want[s.Name])
		}
		if s.WallNS <= 0 {
			t.Errorf("span %q has no wall time", s.Name)
		}
	}
}

// TestNilRegistry exercises every entry point on nil receivers: all must
// be no-ops (the disabled path of instrumented production code).
func TestNilRegistry(t *testing.T) {
	var r *Registry
	s := r.Start("x")
	s.Set("a", 1).Add("a", 2)
	if d := s.Finish(); d != 0 {
		t.Errorf("nil span Finish = %v, want 0", d)
	}
	r.Counter("c").Add(5)
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter Value = %d", v)
	}
	r.Histogram("h").Observe(3)
	r.TimingHistogram("t").Observe(3)
	r.Merge(NewRegistry())
	NewRegistry().Merge(r)
	r.PublishExpvar("nil-reg")
	if err := r.WriteJSONL(&bytes.Buffer{}, JSONLOptions{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
	if err := r.WriteSummary(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteSummary: %v", err)
	}
	if snap := r.Snapshot(); len(snap.Spans)+len(snap.Counters)+len(snap.Hists) != 0 {
		t.Errorf("nil Snapshot not empty: %+v", snap)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("hits").Value(); v != 8000 {
		t.Errorf("counter = %d, want 8000", v)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes")
	for _, v := range []int64{0, 1, 2, 3, 1024, -5} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Hists) != 1 {
		t.Fatalf("got %d histograms", len(snap.Hists))
	}
	hs := snap.Hists[0]
	if hs.Count != 6 || hs.Sum != 1030 || hs.Min != 0 || hs.Max != 1024 {
		t.Errorf("stats = count %d sum %d min %d max %d", hs.Count, hs.Sum, hs.Min, hs.Max)
	}
	// 0 and -5 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 1024 → bucket 11.
	want := map[string]int64{"0": 2, "1": 1, "2": 2, "11": 1}
	for k, v := range want {
		if hs.Buckets[k] != v {
			t.Errorf("bucket %s = %d, want %d", k, hs.Buckets[k], v)
		}
	}
}

// TestJSONLDeterministic checks the JSONL sink round-trips through
// encoding/json and that two registries with identical metric content but
// different wall clocks produce byte-identical deterministic streams.
func TestJSONLDeterministic(t *testing.T) {
	build := func(extraWork int) *Registry {
		r := NewRegistry()
		s := r.Start("stage")
		for i := 0; i < extraWork; i++ {
			_ = r.Counter("side").Value() // vary wall time only
		}
		s.Set("items", 42).Finish()
		r.Counter("calls").Add(1)
		r.Histogram("lens").Observe(7)
		r.TimingHistogram("point_us").Observe(int64(123 + extraWork))
		return r
	}
	a, b := build(10), build(100000)

	var bufA, bufB bytes.Buffer
	if err := a.WriteJSONL(&bufA, JSONLOptions{Deterministic: true}); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSONL(&bufB, JSONLOptions{Deterministic: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("deterministic streams differ:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
	if strings.Contains(bufA.String(), "wall_ns") {
		t.Error("deterministic stream contains wall_ns")
	}
	if strings.Contains(bufA.String(), "point_us") {
		t.Error("deterministic stream contains a timing histogram")
	}

	// The full stream must round-trip line by line.
	var full bytes.Buffer
	if err := a.WriteJSONL(&full, JSONLOptions{}); err != nil {
		t.Fatal(err)
	}
	sawWall := false
	for _, line := range strings.Split(strings.TrimSpace(full.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q does not parse: %v", line, err)
		}
		if ev["type"] == "" {
			t.Errorf("line %q has no type", line)
		}
		if _, ok := ev["wall_ns"]; ok {
			sawWall = true
		}
	}
	if !sawWall {
		t.Error("full stream has no wall_ns on any span")
	}
}

func TestSummary(t *testing.T) {
	r := NewRegistry()
	s := r.Start("scan")
	s.Set("windows", 1_000_000).Finish()
	r.Counter("calls").Add(3)
	r.Histogram("bits").Observe(64)
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"scan", "windows=1000000", "Mwindows/s", "calls", "bits", "mean=64.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("n").Add(1)
	b.Counter("n").Add(2)
	b.Counter("only-b").Add(7)
	a.Histogram("h").Observe(1)
	b.Histogram("h").Observe(100)
	sp := b.Start("worker")
	sp.Set("items", 5).Finish()
	b.Start("unfinished") // must not be merged

	a.Merge(b)
	if v := a.Counter("n").Value(); v != 3 {
		t.Errorf("merged n = %d, want 3", v)
	}
	if v := a.Counter("only-b").Value(); v != 7 {
		t.Errorf("merged only-b = %d, want 7", v)
	}
	snap := a.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "worker" || snap.Spans[0].Counters["items"] != 5 {
		t.Errorf("merged spans = %+v", snap.Spans)
	}
	var h *HistStat
	for i := range snap.Hists {
		if snap.Hists[i].Name == "h" {
			h = &snap.Hists[i]
		}
	}
	if h == nil || h.Count != 2 || h.Sum != 101 || h.Min != 1 || h.Max != 100 {
		t.Errorf("merged histogram = %+v", h)
	}
}

func TestExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(9)
	r.PublishExpvar("obs-test")
	r.PublishExpvar("obs-test") // duplicate publish must not panic
	v := expvar.Get("obs-test")
	if v == nil {
		t.Fatal("expvar not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value does not parse: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 9 {
		t.Errorf("expvar snapshot = %+v", snap)
	}
}

// TestCLILifecycle drives the flag bundle end to end: parse flags, Begin,
// record, Finish; the JSONL file must exist and parse, Finish must be
// idempotent.
func TestCLILifecycle(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "m.json")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")

	var c CLI
	var summary bytes.Buffer
	c.SummaryTo = &summary
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{
		"-stats", "-stats-json", jsonPath, "-cpuprofile", cpuPath, "-memprofile", memPath,
	}); err != nil {
		t.Fatal(err)
	}
	reg, err := c.Begin("obs-cli-test")
	if err != nil {
		t.Fatal(err)
	}
	if reg == nil {
		t.Fatal("Begin returned nil registry with -stats set")
	}
	reg.Start("work").Set("n", 1).Finish()
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := c.Finish(); err != nil {
		t.Fatalf("second Finish: %v", err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("JSONL line %q: %v", line, err)
		}
	}
	if !strings.Contains(summary.String(), "work") {
		t.Errorf("summary missing span: %s", summary.String())
	}
	for _, p := range []string{cpuPath, memPath} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

// TestCLIDisabled: with no flags set, Begin returns a nil registry and
// Finish writes nothing.
func TestCLIDisabled(t *testing.T) {
	var c CLI
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	reg, err := c.Begin("obs-cli-disabled")
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil {
		t.Error("Begin returned a registry with stats disabled")
	}
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
}
