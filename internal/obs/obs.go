// Package obs is the observability spine of the repository: lightweight
// wall-clock spans with attached counters, monotonic counters, simple
// power-of-two histograms, and pluggable sinks (human-readable summary,
// JSONL event stream, expvar export). Every pipeline stage — tracing,
// scanning, voting, embedding, the experiments sweeps — records into a
// *Registry that callers thread through options structs.
//
// Two properties shape the design:
//
//   - Zero cost when disabled. Every entry point is nil-safe: a nil
//     *Registry returns nil spans/counters/histograms whose methods are
//     no-ops, so instrumented hot paths pay exactly one pointer nil-check
//     when observability is off. Production call sites therefore never
//     need to guard instrumentation behind their own flags.
//
//   - Deterministic metrics. Span counters and plain histograms record
//     quantities derived from the *input* (windows scanned, statements
//     decoded), never from the execution schedule, so the metric content
//     of a run is byte-identical at any worker count. Wall times and
//     timing histograms are the only schedule-dependent records, and the
//     sinks can omit them (see JSONLOptions.Deterministic), which is what
//     makes metrics diffable across runs and machines.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry collects spans, counters, and histograms for one run. The zero
// value is not usable; call NewRegistry. All methods are safe for
// concurrent use, and all methods on a nil *Registry are no-ops.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	spans    []*Span
	depth    int // number of currently unfinished spans
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Span measures one pipeline stage: the wall time between Start and Finish
// plus any int64 counters attached along the way. Spans nest: the depth
// recorded at Start is the number of spans still unfinished, which the
// summary sink renders as indentation. All methods on a nil *Span are
// no-ops, so instrumented code never checks whether observability is on.
type Span struct {
	reg      *Registry
	name     string
	depth    int
	start    time.Time
	wall     time.Duration
	done     bool
	counters map[string]int64
}

// Start opens a span. The returned span must be closed with Finish;
// nesting is inferred from the number of unfinished spans at Start time.
func (r *Registry) Start(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{reg: r, name: name, start: time.Now()}
	r.mu.Lock()
	s.depth = r.depth
	r.depth++
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// Set records counter value v on the span, overwriting any prior value.
// It returns the span for chaining.
func (s *Span) Set(counter string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.reg.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[counter] = v
	s.reg.mu.Unlock()
	return s
}

// Add increments counter by delta on the span and returns the span.
func (s *Span) Add(counter string, delta int64) *Span {
	if s == nil {
		return nil
	}
	s.reg.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[counter] += delta
	s.reg.mu.Unlock()
	return s
}

// Finish closes the span, recording its wall time, and returns it. Finish
// is idempotent: the first call wins, later calls return the recorded
// duration without touching the registry.
func (s *Span) Finish() time.Duration {
	if s == nil {
		return 0
	}
	s.reg.mu.Lock()
	if !s.done {
		s.done = true
		s.wall = time.Since(s.start)
		if s.reg.depth > 0 {
			s.reg.depth--
		}
	}
	d := s.wall
	s.reg.mu.Unlock()
	return d
}

// Counter is a monotonic (well, add-only; deltas may be negative but the
// intended use is monotonic) process-wide counter. Add is a single atomic
// operation, safe to call from any goroutine.
type Counter struct {
	name string
	v    atomic.Int64
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a fixed-shape power-of-two histogram over non-negative
// int64 values: bucket i counts observations v with bits.Len64(v) == i
// (i.e. bucket 0 holds zeros, bucket i holds [2^(i-1), 2^i)). The shape
// needs no configuration, which keeps Observe allocation-free, and the
// exponential buckets match the quantities observed here (trace lengths,
// window counts, microsecond timings) which span orders of magnitude.
type Histogram struct {
	name   string
	timing bool

	mu       sync.Mutex
	count    int64
	sum      int64
	min, max int64
	buckets  [65]int64
}

// Histogram returns the named histogram, creating it on first use. Plain
// histograms record input-derived (deterministic) quantities; use
// TimingHistogram for wall-clock observations.
func (r *Registry) Histogram(name string) *Histogram {
	return r.histogram(name, false)
}

// TimingHistogram returns the named histogram marked as timing-valued.
// Timing histograms hold schedule-dependent observations (per-point wall
// times), so the deterministic JSONL mode omits them.
func (r *Registry) TimingHistogram(name string) *Histogram {
	return r.histogram(name, true)
}

func (r *Registry) histogram(name string, timing bool) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name, timing: timing}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return h
}

// Observe records one value; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bits.Len64(uint64(v))]++
	h.mu.Unlock()
}

// Merge folds other's counters and histograms into r (summing values and
// buckets) and appends other's finished spans at r's current nesting
// depth. It supports fan-out stages that give each worker a private
// registry and combine them at the join; the merge result is independent
// of merge order for counters and histograms.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	type histCopy struct {
		name    string
		timing  bool
		count   int64
		sum     int64
		min     int64
		max     int64
		buckets [65]int64
	}
	var counters []struct {
		name string
		v    int64
	}
	for name, c := range other.counters {
		counters = append(counters, struct {
			name string
			v    int64
		}{name, c.v.Load()})
	}
	var hists []histCopy
	for name, h := range other.hists {
		h.mu.Lock()
		hists = append(hists, histCopy{name, h.timing, h.count, h.sum, h.min, h.max, h.buckets})
		h.mu.Unlock()
	}
	spans := append([]*Span(nil), other.spans...)
	other.mu.Unlock()

	for _, c := range counters {
		r.Counter(c.name).Add(c.v)
	}
	for _, hc := range hists {
		h := r.histogram(hc.name, hc.timing)
		h.mu.Lock()
		if hc.count > 0 {
			if h.count == 0 || hc.min < h.min {
				h.min = hc.min
			}
			if h.count == 0 || hc.max > h.max {
				h.max = hc.max
			}
			h.count += hc.count
			h.sum += hc.sum
			for i, b := range hc.buckets {
				h.buckets[i] += b
			}
		}
		h.mu.Unlock()
	}
	r.mu.Lock()
	for _, s := range spans {
		if s.done {
			r.spans = append(r.spans, &Span{
				reg: r, name: s.name, depth: r.depth + s.depth,
				start: s.start, wall: s.wall, done: true,
				counters: copyCounters(s.counters),
			})
		}
	}
	r.mu.Unlock()
}

func copyCounters(m map[string]int64) map[string]int64 {
	if m == nil {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
