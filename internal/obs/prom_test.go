package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"flag"
	"math"
	"os"
	"strings"
	"testing"
)

// promPage is the CI serve-smoke hook: when set, TestParsePrometheusCI
// validates a live daemon's /metrics page with the repo's own parser
// (the same code the tests below pin) instead of requiring promtool.
var promPage = flag.String("prom-page", "", "exposition page file to validate (CI hook)")

func TestParsePrometheusCI(t *testing.T) {
	if *promPage == "" {
		t.Skip("no -prom-page given")
	}
	data, err := os.ReadFile(*promPage)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheus(data)
	if err != nil {
		t.Fatalf("page does not parse: %v", err)
	}
	found := false
	for name := range samples {
		if strings.HasPrefix(name, "pathmark_") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("page has no pathmark_ samples (got %d samples)", len(samples))
	}
}

func snapshotExpvar(t *testing.T, name string) Snapshot {
	t.Helper()
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar %q does not parse: %v", name, err)
	}
	return s
}

// TestQuantilePinned pins the power-of-two interpolation against exact
// hand-computed values.
func TestQuantilePinned(t *testing.T) {
	// Observations 1..8 land in buckets 1:{1} 2:{2,3} 3:{4..7} 4:{8}.
	// p50 rank = 0.5*8 = 4 → bucket 3 (cumulative 3 before it, 4 wide),
	// position (4-3)/4 = 0.25 of the way through [4,7] → 4 + 0.25*3 = 4.75.
	r := NewRegistry()
	h := r.Histogram("vals")
	for v := int64(1); v <= 8; v++ {
		h.Observe(v)
	}
	hs := r.Snapshot().Hists[0]
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 4.75},
		// p90 rank = 7.2 → bucket 4 ([8,15], 1 wide, cumulative 7 before):
		// 8 + 0.2*7 = 9.4, clamped to Max=8.
		{0.90, 8},
		{0.99, 8},
		// p12.5 rank = 1 → bucket 1 ([1,1]): exactly 1.
		{0.125, 1},
		{0, 1}, // q<=0 → Min
		{1, 8}, // q>=1 → Max
	}
	for _, c := range cases {
		if got := hs.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDegenerate(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("same")
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	z := r.Histogram("zeros")
	z.Observe(0)
	z.Observe(0)
	var empty HistStat
	for _, c := range []struct {
		hs   HistStat
		q    float64
		want float64
	}{
		{r.Snapshot().Hists[0], 0.5, 5}, // identical values clamp exactly
		{r.Snapshot().Hists[0], 0.99, 5},
		{r.Snapshot().Hists[1], 0.5, 0}, // zero bucket
		{empty, 0.5, 0},                 // empty histogram
	} {
		if got := c.hs.Quantile(c.q); got != c.want {
			t.Errorf("%s Quantile(%v) = %v, want %v", c.hs.Name, c.q, got, c.want)
		}
	}
}

// TestSummaryQuantiles: WriteSummary histogram lines carry the derived
// p50/p90/p99 estimates.
func TestSummaryQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vals")
	for v := int64(1); v <= 8; v++ {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p50=4.8", "p90=8.0", "p99=8.0"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, buf.String())
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("scan.reject.popcount").Add(42)
	r.Counter("jobs.retries").Add(3)
	h := r.Histogram("trace.bits")
	for _, v := range []int64{0, 1, 5, 1000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "pathmark"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	samples, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, out)
	}
	want := map[string]float64{
		"pathmark_scan_reject_popcount":           42,
		"pathmark_jobs_retries":                   3,
		"pathmark_trace_bits_count":               4,
		"pathmark_trace_bits_sum":                 1006,
		"pathmark_trace_bits_bucket{le=\"0\"}":    1,
		"pathmark_trace_bits_bucket{le=\"1\"}":    2,
		"pathmark_trace_bits_bucket{le=\"7\"}":    3, // 5 → bucket 3, le=2^3-1
		"pathmark_trace_bits_bucket{le=\"1023\"}": 4, // 1000 → bucket 10
		"pathmark_trace_bits_bucket{le=\"+Inf\"}": 4,
	}
	for k, v := range want {
		if got, ok := samples[k]; !ok || got != v {
			t.Errorf("sample %s = %v (present=%v), want %v\n%s", k, got, ok, v, out)
		}
	}
	if _, ok := samples["pathmark_trace_bits_p50"]; !ok {
		t.Errorf("missing derived p50 gauge:\n%s", out)
	}
	if _, ok := samples["pathmark_trace_bits_p99"]; !ok {
		t.Errorf("missing derived p99 gauge:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE pathmark_scan_reject_popcount counter") {
		t.Errorf("missing counter TYPE line:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE pathmark_trace_bits histogram") {
		t.Errorf("missing histogram TYPE line:\n%s", out)
	}
}

func TestWritePrometheusNil(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "x"); err != nil || buf.Len() != 0 {
		t.Errorf("nil WritePrometheus wrote %q, err %v", buf.String(), err)
	}
}

func TestParsePrometheusRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad name", "9metric 1\n"},
		{"no value", "metric\n"},
		{"bad value", "metric abc\n"},
		{"bad type", "# TYPE m widget\nm 1\n"},
		{"unbalanced braces", "m}{le=\"1\" 1\n"},
		{"malformed label", "m{le=1} 1\n"},
		{"duplicate sample", "m 1\nm 2\n"},
		{"non-cumulative buckets", "h_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n"},
		{"missing inf", "h_bucket{le=\"1\"} 5\nh_count 5\n"},
		{"inf-count mismatch", "h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 7\n"},
	}
	for _, c := range cases {
		if _, err := ParsePrometheus([]byte(c.in)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", c.name, c.in)
		}
	}
	good := "# HELP m something\n# TYPE m counter\nm 12\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 2\nh_count 2\n"
	samples, err := ParsePrometheus([]byte(good))
	if err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	if samples["m"] != 12 || samples["h_count"] != 2 {
		t.Errorf("samples = %v", samples)
	}
}

// TestExpvarSwap: re-publishing a name must swap the visible registry —
// the second run of a subcommand in one process replaces the first run's
// metrics under /debug/vars instead of being silently dropped.
func TestExpvarSwap(t *testing.T) {
	a := NewRegistry()
	a.Counter("x").Add(1)
	a.PublishExpvar("obs-swap-test")
	b := NewRegistry()
	b.Counter("x").Add(2)
	b.PublishExpvar("obs-swap-test")
	s := snapshotExpvar(t, "obs-swap-test")
	if len(s.Counters) != 1 || s.Counters[0].Value != 2 {
		t.Errorf("after swap, expvar shows %+v, want b's counter value 2", s)
	}
	// Live view: mutating the currently-published registry is visible.
	b.Counter("x").Add(10)
	if s := snapshotExpvar(t, "obs-swap-test"); s.Counters[0].Value != 12 {
		t.Errorf("expvar not live after swap: %+v", s)
	}
}
