package vm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// spin is an infinite loop; every budget test cuts it off one way or
// another.
const spinSrc = "method main 0 0\nspin:\n  goto spin\n"

func TestStepLimitResourceError(t *testing.T) {
	p := MustAssemble(spinSrc)
	_, err := Run(p, RunOptions{StepLimit: 1000})
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want *ResourceError, got %T: %v", err, err)
	}
	if re.Resource != "steps" || re.Limit != 1000 {
		t.Errorf("got resource %q limit %d, want steps/1000", re.Resource, re.Limit)
	}
	if !errors.Is(err, ErrStepLimit) {
		t.Error("step exhaustion should unwrap to ErrStepLimit")
	}
}

func TestHeapLimit(t *testing.T) {
	// Allocate 100-cell arrays forever; a 250-cell budget dies on the
	// third allocation.
	src := `
method main 0 0
loop:
  const 100
  newarr
  pop
  goto loop
`
	p := MustAssemble(src)
	_, err := Run(p, RunOptions{MaxHeap: 250})
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("want *ResourceError, got %T: %v", err, err)
	}
	if re.Resource != "heap" || !errors.Is(err, ErrHeapLimit) {
		t.Errorf("got resource %q (%v), want heap wrapping ErrHeapLimit", re.Resource, err)
	}
	if re.Used != 300 || re.Limit != 250 {
		t.Errorf("got used %d limit %d, want 300/250", re.Used, re.Limit)
	}
	// Within budget the same program bounded by steps still allocates.
	if _, err := Run(p, RunOptions{MaxHeap: 1 << 20, StepLimit: 100}); !errors.Is(err, ErrStepLimit) {
		t.Errorf("want step exhaustion with a big heap budget, got %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	p := MustAssemble(spinSrc)

	t.Run("pre-cancelled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		_, err := Run(p, RunOptions{Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		var re *ResourceError
		if !errors.As(err, &re) || re.Resource != "context" {
			t.Errorf("want *ResourceError{Resource: context}, got %v", err)
		}
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Errorf("cancellation took %v, want prompt return", elapsed)
		}
	})

	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		_, err := Run(p, RunOptions{Ctx: ctx, StepLimit: 1 << 62})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want context.DeadlineExceeded, got %v", err)
		}
	})

	t.Run("no-interference", func(t *testing.T) {
		// A live context must not perturb a normal run.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		q := MustAssemble("method main 0 0\n  const 7\n  ret\n")
		res, err := Run(q, RunOptions{Ctx: ctx})
		if err != nil || res.Return != 7 {
			t.Errorf("got %v, %v; want return 7", res, err)
		}
	})
}

func TestCollectWithPropagatesBudgets(t *testing.T) {
	p := MustAssemble(spinSrc)
	_, _, err := CollectWith(p, RunOptions{StepLimit: 500})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit through CollectWith, got %v", err)
	}
	var re *ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("ResourceError should survive CollectWith's wrapping: %v", err)
	}
}
