package vm

import "testing"

const nestedLoopSrc = `
method main 0 3
  const 3
  store 0
outer:
  load 0
  ifle done
  const 2
  store 1
inner:
  load 1
  ifle outer_dec
  load 2
  const 1
  add
  store 2
  load 1
  const 1
  sub
  store 1
  goto inner
outer_dec:
  load 0
  const 1
  sub
  store 0
  goto outer
done:
  load 2
  ret
`

func TestDominatorsBasics(t *testing.T) {
	p := MustAssemble(nestedLoopSrc)
	cfg := BuildCFG(p.Methods[0])
	dom := cfg.Dominators()
	// Entry dominates everything.
	for b := range cfg.Blocks {
		if !dom[b][0] {
			t.Errorf("entry does not dominate block %d", b)
		}
		if !dom[b][b] {
			t.Errorf("block %d does not dominate itself", b)
		}
	}
	// The outer loop header dominates the inner loop header.
	loops := cfg.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	outer, inner := loops[0], loops[1]
	if outer.Header > inner.Header {
		outer, inner = inner, outer
	}
	if !dom[inner.Header][outer.Header] {
		t.Error("outer loop header does not dominate inner header")
	}
	// The inner loop body is contained in the outer loop body.
	outerSet := map[int]bool{}
	for _, b := range outer.Blocks {
		outerSet[b] = true
	}
	for _, b := range inner.Blocks {
		if !outerSet[b] {
			t.Errorf("inner loop block %d escapes the outer loop", b)
		}
	}
}

func TestInLoopFlags(t *testing.T) {
	p := MustAssemble(nestedLoopSrc)
	cfg := BuildCFG(p.Methods[0])
	inLoop := cfg.InLoop()
	// The return block is not in any loop.
	retBlock := cfg.BlockOf(len(p.Methods[0].Code) - 1)
	if inLoop[retBlock] {
		t.Error("return block flagged as in a loop")
	}
	// At least three blocks (outer header, inner header, inner body) are.
	n := 0
	for _, in := range inLoop {
		if in {
			n++
		}
	}
	if n < 3 {
		t.Errorf("only %d blocks in loops, want >= 3", n)
	}
}

func TestLoopFreeMethodHasNoLoops(t *testing.T) {
	p := MustAssemble(`
method main 0 1
  const 1
  ifeq a
  const 2
  store 0
a:
  load 0
  ret
`)
	cfg := BuildCFG(p.Methods[0])
	if loops := cfg.NaturalLoops(); len(loops) != 0 {
		t.Errorf("loop-free method reported %d loops", len(loops))
	}
}
