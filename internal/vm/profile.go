package vm

import "sort"

// Profile accumulates interpreter-level execution statistics: the dynamic
// opcode mix and per-block execution counts ("hot blocks"), plus call and
// depth accounting. Attach one via RunOptions.Profile; a nil *Profile
// disables collection entirely, and the interpreter's hot loop pays only
// a hoisted pointer nil-check per dispatched instruction on the disabled
// path (measured at well under 1% on the recognition benchmarks — see
// EXPERIMENTS.md "Instrumentation overhead").
//
// Profile is not safe for concurrent use; give each Run its own and
// combine results with Merge.
type Profile struct {
	// Steps counts dispatched instructions (mirrors Result.Steps).
	Steps int64
	// OpCount is the dynamic opcode mix, indexed by Op.
	OpCount [opCount]int64
	// BlockCount counts entries per basic block (the hot-block profile).
	BlockCount map[BlockKey]int64
	// Calls counts OpCall dispatches; MaxObservedDepth is the deepest
	// call stack seen.
	Calls            int64
	MaxObservedDepth int
}

// NewProfile returns an empty profile ready to attach to RunOptions.
func NewProfile() *Profile {
	return &Profile{BlockCount: make(map[BlockKey]int64)}
}

func (p *Profile) enterBlock(mi, bi int) {
	p.BlockCount[BlockKey{Method: mi, Block: bi}]++
}

// Merge adds other's counts into p.
func (p *Profile) Merge(other *Profile) {
	if p == nil || other == nil {
		return
	}
	p.Steps += other.Steps
	p.Calls += other.Calls
	for i := range p.OpCount {
		p.OpCount[i] += other.OpCount[i]
	}
	if p.BlockCount == nil {
		p.BlockCount = make(map[BlockKey]int64)
	}
	for k, v := range other.BlockCount {
		p.BlockCount[k] += v
	}
	if other.MaxObservedDepth > p.MaxObservedDepth {
		p.MaxObservedDepth = other.MaxObservedDepth
	}
}

// OpCountEntry is one row of the dynamic opcode mix.
type OpCountEntry struct {
	Op    Op
	Count int64
}

// OpMix returns the executed opcodes sorted by descending count (ties by
// opcode), omitting never-executed opcodes.
func (p *Profile) OpMix() []OpCountEntry {
	if p == nil {
		return nil
	}
	var out []OpCountEntry
	for op, c := range p.OpCount {
		if c > 0 {
			out = append(out, OpCountEntry{Op: Op(op), Count: c})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Op < out[b].Op
	})
	return out
}

// BlockCountEntry is one row of the hot-block profile.
type BlockCountEntry struct {
	Key   BlockKey
	Count int64
}

// TopBlocks returns the n most-executed basic blocks, sorted by
// descending count (ties by method then block index, so the order is
// deterministic).
func (p *Profile) TopBlocks(n int) []BlockCountEntry {
	if p == nil {
		return nil
	}
	out := make([]BlockCountEntry, 0, len(p.BlockCount))
	for k, v := range p.BlockCount {
		out = append(out, BlockCountEntry{Key: k, Count: v})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		if out[a].Key.Method != out[b].Key.Method {
			return out[a].Key.Method < out[b].Key.Method
		}
		return out[a].Key.Block < out[b].Key.Block
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
