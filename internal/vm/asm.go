package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly format into a Program. The format:
//
//	; comment (also after instructions)
//	statics 3
//	entry main
//	method main 0 2        ; name nargs nlocals
//	  const 25
//	  store 0
//	loop:
//	  load 0
//	  ifeq done
//	  call helper          ; methods are referenced by name
//	  goto loop
//	done:
//	  const 0
//	  ret
//
// Labels are local to a method. Immediates are decimal or 0x-hex.
func Assemble(src string) (*Program, error) {
	p := &Program{Entry: -1}
	var cur *Method
	type fixup struct {
		method *Method
		pc     int
		label  string
		line   int
	}
	type callFixup struct {
		method *Method
		pc     int
		callee string
		line   int
	}
	var fixups []fixup
	var callFixups []callFixup
	labels := make(map[string]int) // labels of the current method
	entryName := ""

	finishMethod := func() error {
		if cur == nil {
			return nil
		}
		for _, fx := range fixups {
			t, ok := labels[fx.label]
			if !ok {
				return fmt.Errorf("line %d: undefined label %q in method %s", fx.line, fx.label, fx.method.Name)
			}
			fx.method.Code[fx.pc].Target = t
		}
		fixups = fixups[:0]
		labels = make(map[string]int)
		return nil
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "statics":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: statics wants one operand", lineNo+1)
			}
			n, err := parseInt(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("line %d: bad statics count %q", lineNo+1, fields[1])
			}
			p.NStatics = int(n)
			continue
		case "entry":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: entry wants a method name", lineNo+1)
			}
			entryName = fields[1]
			continue
		case "method":
			if err := finishMethod(); err != nil {
				return nil, err
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("line %d: method wants name nargs nlocals", lineNo+1)
			}
			nargs, err1 := parseInt(fields[2])
			nlocals, err2 := parseInt(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad method header", lineNo+1)
			}
			cur = &Method{Name: fields[1], NArgs: int(nargs), NLocals: int(nlocals)}
			p.Methods = append(p.Methods, cur)
			continue
		}
		if strings.HasSuffix(fields[0], ":") && len(fields) == 1 {
			if cur == nil {
				return nil, fmt.Errorf("line %d: label outside method", lineNo+1)
			}
			name := strings.TrimSuffix(fields[0], ":")
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(cur.Code)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: instruction outside method", lineNo+1)
		}
		op, ok := opByName(fields[0])
		if !ok {
			return nil, fmt.Errorf("line %d: unknown mnemonic %q", lineNo+1, fields[0])
		}
		in := Instr{Op: op}
		switch {
		case op.IsBranch():
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: %s wants a label", lineNo+1, op)
			}
			fixups = append(fixups, fixup{cur, len(cur.Code), fields[1], lineNo + 1})
		case op == OpCall:
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: call wants a method name", lineNo+1)
			}
			callFixups = append(callFixups, callFixup{cur, len(cur.Code), fields[1], lineNo + 1})
		case op == OpConst || op == OpLoad || op == OpStore || op == OpGetStatic || op == OpPutStatic:
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: %s wants an operand", lineNo+1, op)
			}
			v, err := parseInt(fields[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: bad operand %q", lineNo+1, fields[1])
			}
			in.A = v
		default:
			if len(fields) != 1 {
				return nil, fmt.Errorf("line %d: %s takes no operand", lineNo+1, op)
			}
		}
		cur.Code = append(cur.Code, in)
	}
	if err := finishMethod(); err != nil {
		return nil, err
	}
	for _, cf := range callFixups {
		mi := p.MethodIndex(cf.callee)
		if mi < 0 {
			return nil, fmt.Errorf("line %d: call to undefined method %q", cf.line, cf.callee)
		}
		cf.method.Code[cf.pc].A = int64(mi)
	}
	if entryName == "" {
		entryName = "main"
	}
	p.Entry = p.MethodIndex(entryName)
	if p.Entry < 0 {
		return nil, fmt.Errorf("entry method %q not defined", entryName)
	}
	if err := Verify(p); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble is Assemble for tests and built-in workloads; it panics on
// error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

var nameToOp = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for o := Op(0); o < opCount; o++ {
		m[o.String()] = o
	}
	return m
}()

func opByName(name string) (Op, bool) {
	o, ok := nameToOp[name]
	return o, ok
}

// Dump renders the program in re-assemblable form, synthesizing labels for
// branch targets.
func Dump(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "statics %d\n", p.NStatics)
	fmt.Fprintf(&sb, "entry %s\n", p.Methods[p.Entry].Name)
	for _, m := range p.Methods {
		fmt.Fprintf(&sb, "method %s %d %d\n", m.Name, m.NArgs, m.NLocals)
		targets := make(map[int]string)
		for _, in := range m.Code {
			if in.Op.IsBranch() {
				if _, ok := targets[in.Target]; !ok {
					targets[in.Target] = fmt.Sprintf("L%d", in.Target)
				}
			}
		}
		for pc, in := range m.Code {
			if lbl, ok := targets[pc]; ok {
				fmt.Fprintf(&sb, "%s:\n", lbl)
			}
			switch {
			case in.Op.IsBranch():
				fmt.Fprintf(&sb, "  %s %s\n", in.Op, targets[in.Target])
			case in.Op == OpCall:
				fmt.Fprintf(&sb, "  call %s\n", p.Methods[in.A].Name)
			case in.Op == OpConst || in.Op == OpLoad || in.Op == OpStore ||
				in.Op == OpGetStatic || in.Op == OpPutStatic:
				fmt.Fprintf(&sb, "  %s %d\n", in.Op, in.A)
			default:
				fmt.Fprintf(&sb, "  %s\n", in.Op)
			}
		}
	}
	return sb.String()
}
