package vm

import (
	"testing"
)

// profileTestProgram: a loop calling a helper, so the profile sees
// branches, calls, and more than one hot block.
const profileTestSrc = `
method main 0 2
	const 0
	store 0
loop:
	load 0
	const 10
	ifcmpge done
	load 0
	call double
	store 1
	load 0
	const 1
	add
	store 0
	goto loop
done:
	load 1
	ret

method double 1 1
	load 0
	const 2
	mul
	ret
`

func TestProfileCounts(t *testing.T) {
	p, err := Assemble(profileTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	prof := NewProfile()
	res, err := Run(p, RunOptions{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Steps != res.Steps {
		t.Errorf("Profile.Steps = %d, Result.Steps = %d", prof.Steps, res.Steps)
	}
	var opSum int64
	for _, c := range prof.OpCount {
		opSum += c
	}
	if opSum != res.Steps {
		t.Errorf("opcode mix sums to %d, want %d", opSum, res.Steps)
	}
	if prof.Calls != 10 {
		t.Errorf("Calls = %d, want 10", prof.Calls)
	}
	if prof.OpCount[OpCall] != 10 || prof.OpCount[OpMul] != 10 {
		t.Errorf("OpCount[call]=%d OpCount[mul]=%d, want 10 each",
			prof.OpCount[OpCall], prof.OpCount[OpMul])
	}
	if prof.MaxObservedDepth != 2 {
		t.Errorf("MaxObservedDepth = %d, want 2", prof.MaxObservedDepth)
	}
	if len(prof.BlockCount) == 0 {
		t.Fatal("no blocks counted")
	}

	mix := prof.OpMix()
	for i := 1; i < len(mix); i++ {
		if mix[i].Count > mix[i-1].Count {
			t.Errorf("OpMix not sorted: %v before %v", mix[i-1], mix[i])
		}
	}
	top := prof.TopBlocks(2)
	if len(top) != 2 || top[0].Count < top[1].Count {
		t.Errorf("TopBlocks(2) = %v", top)
	}
	// The loop-body block executes 10 times; it must appear in the top 2.
	found := false
	for _, b := range top {
		if b.Count >= 10 {
			found = true
		}
	}
	if !found {
		t.Errorf("no hot block with >=10 entries in %v", top)
	}
}

// TestProfileDoesNotPerturb: attaching a profile must not change the run
// result, and profiling alongside a trace must count the same block
// entries the trace records.
func TestProfileDoesNotPerturb(t *testing.T) {
	p, err := Assemble(profileTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(p, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prof := NewProfile()
	tr := NewTrace()
	profiled, err := Run(p, RunOptions{Profile: prof, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !SameBehavior(plain, profiled) || plain.Steps != profiled.Steps {
		t.Errorf("profile changed the run: %+v vs %+v", plain, profiled)
	}
	for k, c := range tr.BlockCount {
		if prof.BlockCount[k] != c {
			t.Errorf("block %v: profile %d vs trace %d", k, prof.BlockCount[k], c)
		}
	}
	if len(prof.BlockCount) != len(tr.BlockCount) {
		t.Errorf("profile has %d blocks, trace %d", len(prof.BlockCount), len(tr.BlockCount))
	}
}

func TestProfileMerge(t *testing.T) {
	p, err := Assemble(profileTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewProfile(), NewProfile()
	if _, err := Run(p, RunOptions{Profile: a}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, RunOptions{Profile: b}); err != nil {
		t.Fatal(err)
	}
	steps := a.Steps
	a.Merge(b)
	if a.Steps != 2*steps || a.Calls != 20 {
		t.Errorf("merged Steps=%d Calls=%d, want %d/20", a.Steps, a.Calls, 2*steps)
	}
	var nilProf *Profile
	nilProf.Merge(a) // must not panic
	a.Merge(nil)
}
