package vm

// Dominance and natural-loop analysis over method CFGs. The embedder's
// native counterpart uses dominators for tamper-proofing candidates; on
// the VM side the analysis backs transformation passes and tooling (e.g.
// identifying loop structure before peeling or reporting hot paths).

// Dominators computes, for every block, the set of blocks that dominate
// it, using the standard iterative data-flow algorithm. dom[b][a] reports
// whether block a dominates block b. Blocks unreachable from the entry
// keep the conventional "dominated by everything" solution.
func (c *CFG) Dominators() [][]bool {
	nb := len(c.Blocks)
	preds := make([][]int, nb)
	for b, succs := range c.Succs {
		for _, s := range succs {
			preds[s] = append(preds[s], b)
		}
	}
	dom := make([][]bool, nb)
	for i := range dom {
		dom[i] = make([]bool, nb)
		for j := range dom[i] {
			dom[i][j] = true
		}
	}
	if nb == 0 {
		return dom
	}
	for j := range dom[0] {
		dom[0][j] = j == 0
	}
	changed := true
	for changed {
		changed = false
		for b := 1; b < nb; b++ {
			if len(preds[b]) == 0 {
				continue
			}
			next := make([]bool, nb)
			for j := range next {
				next[j] = true
			}
			for _, p := range preds[b] {
				for j := range next {
					next[j] = next[j] && dom[p][j]
				}
			}
			next[b] = true
			for j := range next {
				if next[j] != dom[b][j] {
					dom[b] = next
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// Loop describes one natural loop: the header block and the set of blocks
// in the loop body (including the header).
type Loop struct {
	Header int
	Blocks []int
}

// NaturalLoops finds the method's natural loops: for every back edge
// t -> h where h dominates t, the loop body is h plus every block that
// reaches t without passing through h. Loops sharing a header are merged.
func (c *CFG) NaturalLoops() []Loop {
	dom := c.Dominators()
	preds := make([][]int, len(c.Blocks))
	for b, succs := range c.Succs {
		for _, s := range succs {
			preds[s] = append(preds[s], b)
		}
	}
	bodies := make(map[int]map[int]bool) // header -> block set
	for t, succs := range c.Succs {
		for _, h := range succs {
			if !dom[t][h] {
				continue // not a back edge
			}
			body := bodies[h]
			if body == nil {
				body = map[int]bool{h: true}
				bodies[h] = body
			}
			// Walk predecessors from t, stopping at h.
			stack := []int{t}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[b] {
					continue
				}
				body[b] = true
				stack = append(stack, preds[b]...)
			}
		}
	}
	var out []Loop
	for h, body := range bodies {
		l := Loop{Header: h}
		for b := range body {
			l.Blocks = append(l.Blocks, b)
		}
		sortInts(l.Blocks)
		out = append(out, l)
	}
	sortLoops(out)
	return out
}

// InLoop returns, per block, whether it belongs to any natural loop.
func (c *CFG) InLoop() []bool {
	out := make([]bool, len(c.Blocks))
	for _, l := range c.NaturalLoops() {
		for _, b := range l.Blocks {
			out[b] = true
		}
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortLoops(ls []Loop) {
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].Header < ls[j-1].Header; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
