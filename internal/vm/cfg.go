package vm

// Block is a basic block: a maximal straight-line instruction sequence
// [Start, End) within one method. Blocks are numbered densely in method
// order; the interpreter's tracer reports block entries by (method, block)
// index pairs.
type Block struct {
	Index int
	Start int // pc of the leader instruction
	End   int // pc one past the last instruction
}

// CFG is the per-method control flow graph.
type CFG struct {
	Blocks []Block
	// blockOf maps each pc to the index of its containing block.
	blockOf []int
	// Succs[i] lists the block indices reachable from block i by a direct
	// control transfer (fall-through, branch, or both); returns have none.
	Succs [][]int
}

// BuildCFG computes the method's basic blocks and successor lists.
// Leaders are: pc 0, every branch target, and every instruction following
// a block-ending instruction (branch or ret). Calls do not end blocks —
// as in JVM bytecode, an invoke is an ordinary block-internal instruction.
func BuildCFG(m *Method) *CFG {
	n := len(m.Code)
	leader := make([]bool, n+1)
	if n > 0 {
		leader[0] = true
	}
	for pc, in := range m.Code {
		if in.Op.IsBranch() {
			if in.Target >= 0 && in.Target < n {
				leader[in.Target] = true
			}
		}
		if in.Op.IsBlockEnd() && pc+1 < n {
			leader[pc+1] = true
		}
	}
	cfg := &CFG{blockOf: make([]int, n)}
	start := -1
	for pc := 0; pc <= n; pc++ {
		if pc == n || leader[pc] {
			if start >= 0 {
				cfg.Blocks = append(cfg.Blocks, Block{Index: len(cfg.Blocks), Start: start, End: pc})
			}
			start = pc
		}
	}
	for bi, b := range cfg.Blocks {
		for pc := b.Start; pc < b.End; pc++ {
			cfg.blockOf[pc] = bi
		}
	}
	cfg.Succs = make([][]int, len(cfg.Blocks))
	for bi, b := range cfg.Blocks {
		if b.End == 0 {
			continue
		}
		last := m.Code[b.End-1]
		switch {
		case last.Op == OpRet:
			// no successors
		case last.Op == OpGoto:
			cfg.Succs[bi] = append(cfg.Succs[bi], cfg.blockOf[last.Target])
		case last.Op.IsCondBranch():
			cfg.Succs[bi] = append(cfg.Succs[bi], cfg.blockOf[last.Target])
			if b.End < n {
				cfg.Succs[bi] = append(cfg.Succs[bi], cfg.BlockOf(b.End))
			}
		default:
			if b.End < n {
				cfg.Succs[bi] = append(cfg.Succs[bi], cfg.BlockOf(b.End))
			}
		}
	}
	return cfg
}

// BlockOf returns the index of the block containing pc.
func (c *CFG) BlockOf(pc int) int { return c.blockOf[pc] }

// NumBlocks returns the block count.
func (c *CFG) NumBlocks() int { return len(c.Blocks) }

// EndsWithCondBranch reports whether block bi's final instruction is a
// conditional branch — the blocks whose trace events carry watermark bits.
func (c *CFG) EndsWithCondBranch(m *Method, bi int) bool {
	b := c.Blocks[bi]
	return b.End > b.Start && m.Code[b.End-1].Op.IsCondBranch()
}

// ProgramCFG caches the CFG of every method.
type ProgramCFG struct {
	Methods []*CFG
}

// BuildProgramCFG computes CFGs for every method of p.
func BuildProgramCFG(p *Program) *ProgramCFG {
	pc := &ProgramCFG{Methods: make([]*CFG, len(p.Methods))}
	for i, m := range p.Methods {
		pc.Methods[i] = BuildCFG(m)
	}
	return pc
}
