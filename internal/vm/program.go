package vm

import (
	"fmt"
	"strings"
)

// Instr is a single instruction. A carries the immediate operand (constant
// value, local index, static index, or callee method index); Target is the
// branch destination as an instruction index within the same method.
type Instr struct {
	Op     Op
	A      int64
	Target int
}

func (in Instr) String() string {
	switch {
	case in.Op.IsBranch():
		return fmt.Sprintf("%s -> %d", in.Op, in.Target)
	case in.Op == OpConst || in.Op == OpLoad || in.Op == OpStore ||
		in.Op == OpGetStatic || in.Op == OpPutStatic || in.Op == OpCall:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	default:
		return in.Op.String()
	}
}

// Method is a unit of code. Arguments arrive in locals[0..NArgs-1]; every
// method returns exactly one value via ret.
type Method struct {
	Name    string
	NArgs   int
	NLocals int
	Code    []Instr
}

// Program is a complete executable: methods, a designated entry point, and
// a static field area shared by all methods (the analog of the static and
// instance fields SandMark snapshots during tracing).
type Program struct {
	Methods  []*Method
	Entry    int // index of the entry method, invoked with NArgs zeros
	NStatics int
}

// Clone returns a deep copy of the method.
func (m *Method) Clone() *Method {
	return &Method{Name: m.Name, NArgs: m.NArgs, NLocals: m.NLocals,
		Code: append([]Instr(nil), m.Code...)}
}

// Clone returns a deep copy of the program; transformations and the
// embedder never mutate the caller's copy.
func (p *Program) Clone() *Program {
	q := &Program{Entry: p.Entry, NStatics: p.NStatics}
	for _, m := range p.Methods {
		q.Methods = append(q.Methods, m.Clone())
	}
	return q
}

// CloneShared returns a copy-on-write clone: a fresh Program struct (own
// Methods slice, Entry, NStatics) whose method objects still alias the
// receiver's. Mutating a shared method corrupts both programs — callers
// must swap in a Method.Clone() before touching one (see wm's batch
// embedder, which deep-copies only the handful of methods it modifies).
func (p *Program) CloneShared() *Program {
	return &Program{
		Methods:  append([]*Method(nil), p.Methods...),
		Entry:    p.Entry,
		NStatics: p.NStatics,
	}
}

// MethodByName returns the first method with the given name, or nil.
func (p *Program) MethodByName(name string) *Method {
	for _, m := range p.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// MethodIndex returns the index of the named method, or -1.
func (p *Program) MethodIndex(name string) int {
	for i, m := range p.Methods {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// CodeSize returns the total instruction count across all methods — the
// program-size metric used by the Figure 8(b) experiment. One instruction
// is the unit; DESIGN.md documents the bytes-per-instruction convention.
func (p *Program) CodeSize() int {
	n := 0
	for _, m := range p.Methods {
		n += len(m.Code)
	}
	return n
}

// CountCondBranches returns the number of static conditional branch
// instructions, the denominator of Figure 8(c)'s branch-increase metric.
func (p *Program) CountCondBranches() int {
	n := 0
	for _, m := range p.Methods {
		for _, in := range m.Code {
			if in.Op.IsCondBranch() {
				n++
			}
		}
	}
	return n
}

// AllocStatic grows the static area by one slot and returns its index.
func (p *Program) AllocStatic() int {
	p.NStatics++
	return p.NStatics - 1
}

// InsertAt splices instrs into the method immediately before instruction
// index at (0 <= at <= len(Code)), rewriting every branch target so that
// program semantics are preserved and control reaching `at` now executes
// the inserted code first. Branch targets inside instrs must already be
// method-relative (i.e. relative to the method after insertion).
//
// Target adjustment rule: a pre-existing target t moves to t+len(instrs)
// when t >= at is false only for t < at; targets exactly at `at` stay,
// so loops whose body begins at `at` re-execute the inserted code on every
// iteration — which is exactly what the condition code generator needs.
func (m *Method) InsertAt(at int, instrs []Instr) {
	if at < 0 || at > len(m.Code) {
		panic(fmt.Sprintf("vm: InsertAt(%d) out of range [0,%d]", at, len(m.Code)))
	}
	n := len(instrs)
	for i := range m.Code {
		// Targets strictly past the insertion point shift; targets equal
		// to `at` keep pointing at the insertion so the inserted prologue
		// runs on every entry (loops re-execute it each iteration).
		if m.Code[i].Op.IsBranch() && m.Code[i].Target > at {
			m.Code[i].Target += n
		}
	}
	newCode := make([]Instr, 0, len(m.Code)+n)
	newCode = append(newCode, m.Code[:at]...)
	newCode = append(newCode, instrs...)
	newCode = append(newCode, m.Code[at:]...)
	m.Code = newCode
}

// InsertAfter splices instrs so they execute after instruction index `at`
// on the fall-through path; branch targets equal to at+1 are redirected
// past the insertion (they did not previously execute instruction at).
func (m *Method) InsertAfter(at int, instrs []Instr) {
	pos := at + 1
	if pos < 0 || pos > len(m.Code) {
		panic(fmt.Sprintf("vm: InsertAfter(%d) out of range", at))
	}
	n := len(instrs)
	for i := range m.Code {
		if m.Code[i].Op.IsBranch() && m.Code[i].Target >= pos {
			m.Code[i].Target += n
		}
	}
	newCode := make([]Instr, 0, len(m.Code)+n)
	newCode = append(newCode, m.Code[:pos]...)
	newCode = append(newCode, instrs...)
	newCode = append(newCode, m.Code[pos:]...)
	m.Code = newCode
}

// AllocLocal grows the method's local area by one slot and returns its
// index.
func (m *Method) AllocLocal() int {
	m.NLocals++
	return m.NLocals - 1
}

// String disassembles the program.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; entry=%s statics=%d\n", p.Methods[p.Entry].Name, p.NStatics)
	for _, m := range p.Methods {
		fmt.Fprintf(&sb, "method %s %d %d\n", m.Name, m.NArgs, m.NLocals)
		for pc, in := range m.Code {
			if in.Op == OpCall {
				callee := "?"
				if in.A >= 0 && int(in.A) < len(p.Methods) {
					callee = p.Methods[in.A].Name
				}
				fmt.Fprintf(&sb, "  %4d: call %s\n", pc, callee)
				continue
			}
			fmt.Fprintf(&sb, "  %4d: %s\n", pc, in)
		}
	}
	return sb.String()
}
