// Package vm implements the Java-bytecode-like stack virtual machine that
// plays the role of the JVM in this reproduction (paper §3). It provides:
//
//   - an integer stack ISA with locals, static fields, arrays, method
//     calls, and the conditional branches the watermark lives in,
//   - a program/method model designed for code insertion (the embedder) and
//     semantics-preserving transformation (the attack suite),
//   - a textual assembler and disassembler,
//   - a structural + stack-discipline verifier,
//   - basic-block CFGs,
//   - an interpreter with step accounting and an execution tracer that
//     records block entries, conditional-branch executions, and variable
//     snapshots (the information SandMark's tracing phase collects).
package vm

import "fmt"

// Op is an instruction opcode.
type Op uint8

// The instruction set. Conditional branches pop one value (IfXX) or two
// values (IfCmpXX, comparing a OP b where b is on top) and transfer to
// Instr.Target when the condition holds; execution otherwise falls through.
const (
	OpNop Op = iota

	// Stack and data movement.
	OpConst     // push A
	OpLoad      // push locals[A]
	OpStore     // locals[A] = pop
	OpGetStatic // push statics[A]
	OpPutStatic // statics[A] = pop
	OpDup       // duplicate top of stack
	OpPop       // discard top of stack
	OpSwap      // swap the two topmost values

	// Arithmetic and logic. Binary ops pop b then a, push a OP b.
	OpAdd
	OpSub
	OpMul
	OpDiv // traps on division by zero
	OpRem // traps on division by zero
	OpNeg // unary negate
	OpAnd
	OpOr
	OpXor
	OpShl // a << (b & 63)
	OpShr // arithmetic a >> (b & 63)

	// Single-operand conditional branches: pop v, branch if v OP 0.
	OpIfEq
	OpIfNe
	OpIfLt
	OpIfGe
	OpIfGt
	OpIfLe

	// Two-operand conditional branches: pop b, pop a, branch if a OP b.
	OpIfCmpEq
	OpIfCmpNe
	OpIfCmpLt
	OpIfCmpGe
	OpIfCmpGt
	OpIfCmpLe

	// Unconditional control flow.
	OpGoto
	OpCall // invoke method A: pops NArgs arguments (last on top), pushes the return value
	OpRet  // return pop() to the caller

	// Arrays. References are opaque non-zero handles; index errors trap.
	OpNewArr // pop n, allocate array of n zeros, push ref
	OpALoad  // pop i, pop ref, push ref[i]
	OpAStore // pop v, pop i, pop ref, ref[i] = v
	OpArrLen // pop ref, push length

	// Environment.
	OpIn    // push the next value of the (secret) input sequence; 0 when exhausted
	OpPrint // pop v, append v to the program output

	opCount // sentinel
)

var opNames = [...]string{
	OpNop:       "nop",
	OpConst:     "const",
	OpLoad:      "load",
	OpStore:     "store",
	OpGetStatic: "getstatic",
	OpPutStatic: "putstatic",
	OpDup:       "dup",
	OpPop:       "pop",
	OpSwap:      "swap",
	OpAdd:       "add",
	OpSub:       "sub",
	OpMul:       "mul",
	OpDiv:       "div",
	OpRem:       "rem",
	OpNeg:       "neg",
	OpAnd:       "and",
	OpOr:        "or",
	OpXor:       "xor",
	OpShl:       "shl",
	OpShr:       "shr",
	OpIfEq:      "ifeq",
	OpIfNe:      "ifne",
	OpIfLt:      "iflt",
	OpIfGe:      "ifge",
	OpIfGt:      "ifgt",
	OpIfLe:      "ifle",
	OpIfCmpEq:   "ifcmpeq",
	OpIfCmpNe:   "ifcmpne",
	OpIfCmpLt:   "ifcmplt",
	OpIfCmpGe:   "ifcmpge",
	OpIfCmpGt:   "ifcmpgt",
	OpIfCmpLe:   "ifcmple",
	OpGoto:      "goto",
	OpCall:      "call",
	OpRet:       "ret",
	OpNewArr:    "newarr",
	OpALoad:     "aload",
	OpAStore:    "astore",
	OpArrLen:    "arrlen",
	OpIn:        "in",
	OpPrint:     "print",
}

// String returns the assembler mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsCondBranch reports whether the opcode is a conditional branch — the
// instructions whose dynamic behavior carries the watermark.
func (o Op) IsCondBranch() bool {
	return o >= OpIfEq && o <= OpIfCmpLe
}

// IsBranch reports whether the opcode transfers control via Instr.Target.
func (o Op) IsBranch() bool { return o.IsCondBranch() || o == OpGoto }

// IsBlockEnd reports whether the opcode terminates a basic block.
func (o Op) IsBlockEnd() bool { return o.IsBranch() || o == OpRet }

// NegateCond returns the conditional branch with the opposite condition
// (ifeq <-> ifne, iflt <-> ifge, ...). It panics for non-conditional ops.
func NegateCond(o Op) Op {
	switch o {
	case OpIfEq:
		return OpIfNe
	case OpIfNe:
		return OpIfEq
	case OpIfLt:
		return OpIfGe
	case OpIfGe:
		return OpIfLt
	case OpIfGt:
		return OpIfLe
	case OpIfLe:
		return OpIfGt
	case OpIfCmpEq:
		return OpIfCmpNe
	case OpIfCmpNe:
		return OpIfCmpEq
	case OpIfCmpLt:
		return OpIfCmpGe
	case OpIfCmpGe:
		return OpIfCmpLt
	case OpIfCmpGt:
		return OpIfCmpLe
	case OpIfCmpLe:
		return OpIfCmpGt
	}
	panic(fmt.Sprintf("vm: NegateCond(%v) on non-conditional opcode", o))
}

// StackEffect returns the (pops, pushes) stack effect of an opcode. OpCall
// is the one opcode whose pop count depends on context (the callee's
// NArgs); for it this function reports the push count only and 0 pops.
// Exported for transformation passes that do their own stack analysis.
func StackEffect(o Op) (pops, pushes int) {
	if o == OpCall {
		return 0, 1
	}
	return stackEffect(o)
}

// stackEffect returns (pops, pushes) for the opcode, with call handled
// separately by the verifier.
func stackEffect(o Op) (pops, pushes int) {
	switch o {
	case OpNop, OpGoto:
		return 0, 0
	case OpConst, OpLoad, OpGetStatic, OpIn:
		return 0, 1
	case OpStore, OpPutStatic, OpPop, OpPrint, OpRet:
		return 1, 0
	case OpDup:
		return 1, 2
	case OpSwap:
		return 2, 2
	case OpNeg, OpNewArr, OpArrLen:
		return 1, 1
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpALoad:
		return 2, 1
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe:
		return 1, 0
	case OpIfCmpEq, OpIfCmpNe, OpIfCmpLt, OpIfCmpGe, OpIfCmpGt, OpIfCmpLe:
		return 2, 0
	case OpAStore:
		return 3, 0
	}
	panic(fmt.Sprintf("vm: stackEffect(%v) unhandled", o))
}
