package vm

import (
	"strings"
	"testing"
)

// FuzzAssemble checks the assembler never panics and that everything it
// accepts verifies and can be dumped and re-assembled to an equivalent
// program.
func FuzzAssemble(f *testing.F) {
	f.Add(gcdSrc)
	f.Add("method main 0 0\n  const 1\n  ret\n")
	f.Add("statics 2\nentry m\nmethod m 0 1\nL:\n  load 0\n  ifeq L\n  const 0\n  ret\n")
	f.Add("method main 0 0\n  call main\n  ret\n")
	f.Add("junk line")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		if err := Verify(p); err != nil {
			t.Fatalf("Assemble accepted a program Verify rejects: %v", err)
		}
		p2, err := Assemble(Dump(p))
		if err != nil {
			t.Fatalf("Dump output does not reassemble: %v", err)
		}
		r1, err1 := Run(p, RunOptions{StepLimit: 50_000})
		r2, err2 := Run(p2, RunOptions{StepLimit: 50_000})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("round trip changed fate: %v vs %v", err1, err2)
		}
		if err1 == nil && !SameBehavior(r1, r2) {
			t.Fatal("round trip changed behavior")
		}
	})
}

// FuzzInterpreterRobustness runs structurally valid but adversarial
// programs: the interpreter must always terminate with a result or a
// RuntimeError, never panic.
func FuzzInterpreterRobustness(f *testing.F) {
	f.Add(int64(1), uint8(10))
	f.Add(int64(99), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8) {
		// Build a random but verifiable straight-line-with-branches
		// program directly from the fuzz input bytes.
		var sb strings.Builder
		sb.WriteString("statics 1\nmethod main 0 2\n  const 0\n  store 0\n  const 0\n  store 1\n")
		x := seed
		n := int(nRaw)%40 + 1
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			switch uint64(x) % 7 {
			case 0:
				sb.WriteString("  load 0\n  const 3\n  add\n  store 0\n")
			case 1:
				sb.WriteString("  load 0\n  load 1\n  xor\n  store 1\n")
			case 2:
				sb.WriteString("  load 0\n  print\n")
			case 3:
				sb.WriteString("  load 1\n  const 7\n  and\n  const 1\n  add\n  store 1\n")
			case 4:
				sb.WriteString("  load 0\n  load 1\n  div\n  store 0\n") // may trap: local1 could be 0
			case 5:
				sb.WriteString("  const 4\n  newarr\n  pop\n")
			default:
				sb.WriteString("  load 0\n  neg\n  store 0\n")
			}
		}
		sb.WriteString("  load 0\n  ret\n")
		p, err := Assemble(sb.String())
		if err != nil {
			t.Fatalf("generated source failed to assemble: %v", err)
		}
		// Must either complete or fault cleanly.
		if _, err := Run(p, RunOptions{StepLimit: 100_000}); err != nil {
			var re *RuntimeError
			if !errorsAs(err, &re) {
				t.Fatalf("non-RuntimeError failure: %v", err)
			}
		}
	})
}

func errorsAs(err error, target **RuntimeError) bool {
	for err != nil {
		if re, ok := err.(*RuntimeError); ok {
			*target = re
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
