package vm

import (
	"fmt"

	"pathmark/internal/bitstring"
)

// EventKind distinguishes trace events.
type EventKind uint8

const (
	// EvBlockEnter records control entering a basic block.
	EvBlockEnter EventKind = iota
	// EvBranchExec records the execution of a conditional branch, emitted
	// immediately before control transfers to the successor block. The
	// next EvBlockEnter event is the branch's dynamic successor.
	EvBranchExec
)

// Event is a single trace record. For EvBlockEnter, Loc is the block index
// within the method; for EvBranchExec it is the pc of the branch and Taken
// records the direction (used only by the naive decode-rule ablation; the
// paper's rule deliberately ignores it).
type Event struct {
	Kind   EventKind
	Taken  bool
	Method int32
	Loc    int32
}

// BlockKey identifies a basic block program-wide.
type BlockKey struct {
	Method int
	Block  int
}

// BranchKey identifies a static conditional branch program-wide.
type BranchKey struct {
	Method int
	PC     int
}

// Snapshot captures the variable environment at a block entry: the
// containing frame's locals and the program statics (the data SandMark's
// tracing phase stores at each trace point, §3.1).
type Snapshot struct {
	Locals  []int64
	Statics []int64
}

// Trace accumulates the dynamic behavior of one run on the secret input.
type Trace struct {
	Events []Event
	// BlockCount is the execution frequency of each block, used for the
	// inverse-frequency insertion weighting of §3.2.
	BlockCount map[BlockKey]int64
	// Snapshots stores up to the per-run snapshot limit of environments
	// per block, in execution order (index 0 = first execution).
	Snapshots map[BlockKey][]Snapshot
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{
		BlockCount: make(map[BlockKey]int64),
		Snapshots:  make(map[BlockKey][]Snapshot),
	}
}

func (t *Trace) addBlockEnter(mi, bi int, locals, statics []int64, snapLimit int) {
	t.Events = append(t.Events, Event{Kind: EvBlockEnter, Method: int32(mi), Loc: int32(bi)})
	k := BlockKey{Method: mi, Block: bi}
	t.BlockCount[k]++
	if len(t.Snapshots[k]) < snapLimit {
		t.Snapshots[k] = append(t.Snapshots[k], Snapshot{
			Locals:  append([]int64(nil), locals...),
			Statics: append([]int64(nil), statics...),
		})
	}
}

func (t *Trace) addBranchExec(mi, pc int, taken bool) {
	t.Events = append(t.Events, Event{Kind: EvBranchExec, Taken: taken, Method: int32(mi), Loc: int32(pc)})
}

// NumBranchExecs counts dynamic conditional-branch executions.
func (t *Trace) NumBranchExecs() int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == EvBranchExec {
			n++
		}
	}
	return n
}

// Collect runs the program on the secret input with tracing enabled and
// returns the trace (the paper's tracing phase). The run must succeed.
func Collect(p *Program, input []int64, snapshotLimit int) (*Trace, *Result, error) {
	return CollectWith(p, RunOptions{Input: input, SnapshotLimit: snapshotLimit})
}

// CollectWith is Collect with full control over the run: callers use it to
// bound the tracing run with a step budget, heap budget, or cancellable
// context (opts.Trace is overwritten with a fresh trace). A *ResourceError
// from the run propagates unwrapped-able through the returned error so
// callers can distinguish fuel exhaustion from a genuinely faulting
// program.
func CollectWith(p *Program, opts RunOptions) (*Trace, *Result, error) {
	tr := NewTrace()
	opts.Trace = tr
	res, err := Run(p, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("vm: tracing run failed: %w", err)
	}
	return tr, res, nil
}

// DecodeBits converts a trace into its bit-string per §3.1's rule:
//
//	For each conditional branch instruction i that occurs in the trace,
//	find its first occurrence and the block j that immediately follows it.
//	Scan the trace writing 0 whenever a conditional branch is immediately
//	followed by the block by which its first occurrence was followed, and
//	1 otherwise.
//
// Every branch's first dynamic occurrence therefore contributes a 0. The
// resulting string is invariant under block reordering, branch-sense
// inversion, and insertion or deletion of non-branch instructions; adding
// or removing branches perturbs it only locally.
func (t *Trace) DecodeBits() *bitstring.Bits {
	bits := bitstring.New(len(t.Events) / 2)
	first := make(map[BranchKey]BlockKey)
	for i, e := range t.Events {
		if e.Kind != EvBranchExec {
			continue
		}
		succ, ok := t.nextBlockEnter(i)
		if !ok {
			// Trace ended at this branch (e.g. the run was truncated);
			// no successor, no bit.
			continue
		}
		bk := BranchKey{Method: int(e.Method), PC: int(e.Loc)}
		if f, seen := first[bk]; seen {
			bits.Append(f != succ)
		} else {
			first[bk] = succ
			bits.Append(false)
		}
	}
	return bits
}

// DecodeBitsBranchSense is the naive bit-string definition §3.1 rejects:
// write 1 for every taken conditional branch and 0 otherwise. It exists as
// the ablation baseline — an attacker can toggle its bits at will by
// negating predicates and exchanging branch targets, which the test suite
// demonstrates (the paper's first-successor rule is invariant under the
// same transformation).
func (t *Trace) DecodeBitsBranchSense() *bitstring.Bits {
	bits := bitstring.New(len(t.Events) / 2)
	for _, e := range t.Events {
		if e.Kind == EvBranchExec {
			bits.Append(e.Taken)
		}
	}
	return bits
}

func (t *Trace) nextBlockEnter(i int) (BlockKey, bool) {
	for j := i + 1; j < len(t.Events); j++ {
		if t.Events[j].Kind == EvBlockEnter {
			return BlockKey{Method: int(t.Events[j].Method), Block: int(t.Events[j].Loc)}, true
		}
	}
	return BlockKey{}, false
}
