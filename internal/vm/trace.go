package vm

import (
	"fmt"

	"pathmark/internal/bitstring"
)

// EventKind distinguishes trace events.
type EventKind uint8

const (
	// EvBlockEnter records control entering a basic block.
	EvBlockEnter EventKind = iota
	// EvBranchExec records the execution of a conditional branch, emitted
	// immediately before control transfers to the successor block. The
	// next EvBlockEnter event is the branch's dynamic successor.
	EvBranchExec
)

// Event is a single trace record. For EvBlockEnter, Loc is the block index
// within the method; for EvBranchExec it is the pc of the branch and Taken
// records the direction (used only by the naive decode-rule ablation; the
// paper's rule deliberately ignores it).
type Event struct {
	Kind   EventKind
	Taken  bool
	Method int32
	Loc    int32
}

// BlockKey identifies a basic block program-wide.
type BlockKey struct {
	Method int
	Block  int
}

// BranchKey identifies a static conditional branch program-wide.
type BranchKey struct {
	Method int
	PC     int
}

// Snapshot captures the variable environment at a block entry: the
// containing frame's locals and the program statics (the data SandMark's
// tracing phase stores at each trace point, §3.1).
type Snapshot struct {
	Locals  []int64
	Statics []int64
}

// Trace accumulates the dynamic behavior of one run on the secret input.
type Trace struct {
	Events []Event
	// BlockCount is the execution frequency of each block, used for the
	// inverse-frequency insertion weighting of §3.2.
	BlockCount map[BlockKey]int64
	// Snapshots stores up to the per-run snapshot limit of environments
	// per block, in execution order (index 0 = first execution).
	Snapshots map[BlockKey][]Snapshot
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{
		BlockCount: make(map[BlockKey]int64),
		Snapshots:  make(map[BlockKey][]Snapshot),
	}
}

func (t *Trace) addBlockEnter(mi, bi int, locals, statics []int64, snapLimit int) {
	t.Events = append(t.Events, Event{Kind: EvBlockEnter, Method: int32(mi), Loc: int32(bi)})
	k := BlockKey{Method: mi, Block: bi}
	t.BlockCount[k]++
	if len(t.Snapshots[k]) < snapLimit {
		t.Snapshots[k] = append(t.Snapshots[k], Snapshot{
			Locals:  append([]int64(nil), locals...),
			Statics: append([]int64(nil), statics...),
		})
	}
}

func (t *Trace) addBranchExec(mi, pc int, taken bool) {
	t.Events = append(t.Events, Event{Kind: EvBranchExec, Taken: taken, Method: int32(mi), Loc: int32(pc)})
}

// NumBranchExecs counts dynamic conditional-branch executions.
func (t *Trace) NumBranchExecs() int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == EvBranchExec {
			n++
		}
	}
	return n
}

// Collect runs the program on the secret input with tracing enabled and
// returns the trace (the paper's tracing phase). The run must succeed.
func Collect(p *Program, input []int64, snapshotLimit int) (*Trace, *Result, error) {
	return CollectWith(p, RunOptions{Input: input, SnapshotLimit: snapshotLimit})
}

// CollectWith is Collect with full control over the run: callers use it to
// bound the tracing run with a step budget, heap budget, or cancellable
// context (opts.Trace is overwritten with a fresh trace). A *ResourceError
// from the run propagates unwrapped-able through the returned error so
// callers can distinguish fuel exhaustion from a genuinely faulting
// program.
func CollectWith(p *Program, opts RunOptions) (*Trace, *Result, error) {
	tr := NewTrace()
	opts.Trace = tr
	res, err := Run(p, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("vm: tracing run failed: %w", err)
	}
	return tr, res, nil
}

// DecodeBits converts a trace into its bit-string per §3.1's rule:
//
//	For each conditional branch instruction i that occurs in the trace,
//	find its first occurrence and the block j that immediately follows it.
//	Scan the trace writing 0 whenever a conditional branch is immediately
//	followed by the block by which its first occurrence was followed, and
//	1 otherwise.
//
// Every branch's first dynamic occurrence therefore contributes a 0. The
// resulting string is invariant under block reordering, branch-sense
// inversion, and insertion or deletion of non-branch instructions; adding
// or removing branches perturbs it only locally.
//
// A branch with no successor block in the trace (the run was truncated
// mid-transfer) contributes no bit. Callers holding the continuation of
// such a trace must not decode the halves independently — the cut branch
// would be dropped and every later first-occurrence would be mis-seeded.
// StreamDecoder is the chunk-safe form of this rule.
func (t *Trace) DecodeBits() *bitstring.Bits {
	return NewStreamDecoder().Feed(bitstring.New(len(t.Events)/2), t.Events...)
}

// StreamDecoder is the incremental form of DecodeBits: feed it trace
// events chunk by chunk and it appends the decoded bits as they become
// determined. Two pieces of state persist across chunks, which is what
// makes split traces decode identically to unsplit ones:
//
//   - the first-successor map (a branch first executed in chunk 1 keeps
//     seeding comparisons in chunk 100), and
//   - the pending branches — branch events whose successor block has not
//     arrived yet. A branch event split from its successor by a chunk
//     boundary (or by trace truncation) emits no bit until the successor
//     shows up in a later chunk; DecodeBits over a complete trace never
//     leaves one behind.
//
// State is O(static branches + in-flight branches), independent of trace
// length.
type StreamDecoder struct {
	first   map[BranchKey]BlockKey
	pending []BranchKey
}

// NewStreamDecoder returns a decoder with empty first-successor state.
func NewStreamDecoder() *StreamDecoder {
	return &StreamDecoder{first: make(map[BranchKey]BlockKey)}
}

// Feed decodes a chunk of events, appending every bit it determines to
// dst (allocated when nil) and returning dst. Feeding a trace's chunks in
// order produces exactly the bits DecodeBits produces on the whole trace,
// regardless of where the chunk boundaries fall.
func (d *StreamDecoder) Feed(dst *bitstring.Bits, events ...Event) *bitstring.Bits {
	if dst == nil {
		dst = bitstring.New(len(events) / 2)
	}
	for _, e := range events {
		switch e.Kind {
		case EvBranchExec:
			d.pending = append(d.pending, BranchKey{Method: int(e.Method), PC: int(e.Loc)})
		case EvBlockEnter:
			if len(d.pending) == 0 {
				continue
			}
			// This block is the dynamic successor of every branch executed
			// since the last block entry (consecutive branch events share
			// the next entered block, matching the batch rule).
			succ := BlockKey{Method: int(e.Method), Block: int(e.Loc)}
			for _, bk := range d.pending {
				if f, seen := d.first[bk]; seen {
					dst.Append(f != succ)
				} else {
					d.first[bk] = succ
					dst.Append(false)
				}
			}
			d.pending = d.pending[:0]
		}
	}
	return dst
}

// Pending reports how many branch events are waiting for their successor
// block — nonzero exactly when the events fed so far end in branches
// whose transfer target has not arrived yet.
func (d *StreamDecoder) Pending() int { return len(d.pending) }

// DecodeBitsBranchSense is the naive bit-string definition §3.1 rejects:
// write 1 for every taken conditional branch and 0 otherwise. It exists as
// the ablation baseline — an attacker can toggle its bits at will by
// negating predicates and exchanging branch targets, which the test suite
// demonstrates (the paper's first-successor rule is invariant under the
// same transformation).
func (t *Trace) DecodeBitsBranchSense() *bitstring.Bits {
	bits := bitstring.New(len(t.Events) / 2)
	for _, e := range t.Events {
		if e.Kind == EvBranchExec {
			bits.Append(e.Taken)
		}
	}
	return bits
}
