package vm

import (
	"strings"
	"testing"
)

const gcdSrc = `
; Figure 2's greatest-common-divisor program: gcd(25, 10) = 5.
statics 0
entry main
method main 0 2
  const 25
  store 0
  const 10
  store 1
loop:
  load 0
  load 1
  rem
  ifeq done
  load 1
  load 0
  load 1
  rem
  store 1
  store 0
  goto loop
done:
  load 1
  print
  load 1
  ret
`

func mustRun(t testing.TB, p *Program, input []int64) *Result {
	t.Helper()
	res, err := Run(p, RunOptions{Input: input})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGCD(t *testing.T) {
	p := MustAssemble(gcdSrc)
	res := mustRun(t, p, nil)
	if res.Return != 5 {
		t.Errorf("gcd(25,10) = %d, want 5", res.Return)
	}
	if len(res.Output) != 1 || res.Output[0] != 5 {
		t.Errorf("output = %v, want [5]", res.Output)
	}
}

func TestArithmeticOps(t *testing.T) {
	cases := []struct {
		body string
		want int64
	}{
		{"const 7\n const 3\n add\n ret", 10},
		{"const 7\n const 3\n sub\n ret", 4},
		{"const 7\n const 3\n mul\n ret", 21},
		{"const 7\n const 3\n div\n ret", 2},
		{"const 7\n const 3\n rem\n ret", 1},
		{"const -7\n const 3\n div\n ret", -2},
		{"const 7\n neg\n ret", -7},
		{"const 12\n const 10\n and\n ret", 8},
		{"const 12\n const 10\n or\n ret", 14},
		{"const 12\n const 10\n xor\n ret", 6},
		{"const 1\n const 4\n shl\n ret", 16},
		{"const -16\n const 2\n shr\n ret", -4},
		{"const 5\n dup\n add\n ret", 10},
		{"const 5\n const 9\n swap\n sub\n ret", 4},
		{"const 5\n const 9\n pop\n ret", 5},
	}
	for _, c := range cases {
		src := "method main 0 0\n " + c.body + "\n"
		p, err := Assemble(src)
		if err != nil {
			t.Fatalf("assemble %q: %v", c.body, err)
		}
		res := mustRun(t, p, nil)
		if res.Return != c.want {
			t.Errorf("%q = %d, want %d", c.body, res.Return, c.want)
		}
	}
}

func TestConditionalBranches(t *testing.T) {
	// For each branch kind, check taken and not-taken.
	cases := []struct {
		op   string
		v    int64
		take bool
	}{
		{"ifeq", 0, true}, {"ifeq", 1, false},
		{"ifne", 0, false}, {"ifne", -2, true},
		{"iflt", -1, true}, {"iflt", 0, false},
		{"ifge", 0, true}, {"ifge", -1, false},
		{"ifgt", 1, true}, {"ifgt", 0, false},
		{"ifle", 0, true}, {"ifle", 1, false},
	}
	for _, c := range cases {
		src := `
method main 0 0
  const ` + itoa(c.v) + `
  ` + c.op + ` yes
  const 0
  ret
yes:
  const 1
  ret
`
		p := MustAssemble(src)
		res := mustRun(t, p, nil)
		want := int64(0)
		if c.take {
			want = 1
		}
		if res.Return != want {
			t.Errorf("%s(%d): taken=%d, want %d", c.op, c.v, res.Return, want)
		}
	}
	cmpCases := []struct {
		op   string
		a, b int64
		take bool
	}{
		{"ifcmpeq", 3, 3, true}, {"ifcmpeq", 3, 4, false},
		{"ifcmpne", 3, 4, true}, {"ifcmpne", 3, 3, false},
		{"ifcmplt", 3, 4, true}, {"ifcmplt", 4, 4, false},
		{"ifcmpge", 4, 4, true}, {"ifcmpge", 3, 4, false},
		{"ifcmpgt", 5, 4, true}, {"ifcmpgt", 4, 4, false},
		{"ifcmple", 4, 4, true}, {"ifcmple", 5, 4, false},
	}
	for _, c := range cmpCases {
		src := `
method main 0 0
  const ` + itoa(c.a) + `
  const ` + itoa(c.b) + `
  ` + c.op + ` yes
  const 0
  ret
yes:
  const 1
  ret
`
		p := MustAssemble(src)
		res := mustRun(t, p, nil)
		want := int64(0)
		if c.take {
			want = 1
		}
		if res.Return != want {
			t.Errorf("%s(%d,%d): taken=%d, want %d", c.op, c.a, c.b, res.Return, want)
		}
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func TestMethodCalls(t *testing.T) {
	src := `
method main 0 0
  const 6
  const 7
  call mulxy
  ret
method mulxy 2 2
  load 0
  load 1
  mul
  ret
`
	p := MustAssemble(src)
	if res := mustRun(t, p, nil); res.Return != 42 {
		t.Errorf("mulxy(6,7) = %d, want 42", res.Return)
	}
}

func TestRecursion(t *testing.T) {
	src := `
method main 0 0
  const 10
  call fib
  ret
method fib 1 1
  load 0
  const 2
  ifcmplt base
  load 0
  const 1
  sub
  call fib
  load 0
  const 2
  sub
  call fib
  add
  ret
base:
  load 0
  ret
`
	p := MustAssemble(src)
	if res := mustRun(t, p, nil); res.Return != 55 {
		t.Errorf("fib(10) = %d, want 55", res.Return)
	}
}

func TestStaticsAndArrays(t *testing.T) {
	src := `
statics 2
method main 0 1
  const 5
  newarr
  store 0
  load 0
  const 2
  const 99
  astore
  load 0
  const 2
  aload
  putstatic 0
  getstatic 0
  load 0
  arrlen
  add
  ret
`
	p := MustAssemble(src)
	if res := mustRun(t, p, nil); res.Return != 104 {
		t.Errorf("got %d, want 104", res.Return)
	}
}

func TestInputSequence(t *testing.T) {
	src := `
method main 0 0
  in
  in
  add
  in
  add
  ret
`
	p := MustAssemble(src)
	res := mustRun(t, p, []int64{10, 20, 30})
	if res.Return != 60 {
		t.Errorf("sum of inputs = %d, want 60", res.Return)
	}
	// Exhausted input yields zeros.
	res = mustRun(t, p, []int64{10})
	if res.Return != 10 {
		t.Errorf("sum with exhausted input = %d, want 10", res.Return)
	}
}

func TestRuntimeFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"div by zero", "method main 0 0\n const 1\n const 0\n div\n ret\n"},
		{"rem by zero", "method main 0 0\n const 1\n const 0\n rem\n ret\n"},
		{"array oob", "method main 0 0\n const 1\n newarr\n const 5\n aload\n ret\n"},
		{"bad ref", "method main 0 0\n const 77\n const 0\n aload\n ret\n"},
		{"neg array size", "method main 0 0\n const -1\n newarr\n ret\n"},
	}
	for _, c := range cases {
		p, err := Assemble(c.src)
		if err != nil {
			t.Fatalf("%s: assemble: %v", c.name, err)
		}
		if _, err := Run(p, RunOptions{}); err == nil {
			t.Errorf("%s: expected runtime error", c.name)
		}
	}
}

func TestStepLimit(t *testing.T) {
	src := "method main 0 0\nspin:\n  goto spin\n"
	p := MustAssemble(src)
	_, err := Run(p, RunOptions{StepLimit: 1000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("expected step-limit error, got %v", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	src := `
method main 0 0
  call main
  ret
`
	p := MustAssemble(src)
	if _, err := Run(p, RunOptions{MaxDepth: 50}); err == nil {
		t.Error("expected call depth error")
	}
}

func TestVerifyRejects(t *testing.T) {
	bad := []*Program{
		{Methods: []*Method{{Name: "m", Code: []Instr{{Op: OpRet}}}}},                                                                        // ret underflow? ret pops 1 from empty
		{Methods: []*Method{{Name: "m", Code: []Instr{{Op: OpConst}, {Op: OpRet}}}}, Entry: 5},                                               // bad entry
		{Methods: []*Method{{Name: "m", Code: []Instr{{Op: OpLoad, A: 3}, {Op: OpRet}}}}},                                                    // local oob
		{Methods: []*Method{{Name: "m", Code: []Instr{{Op: OpConst}, {Op: OpGoto, Target: 9}}}}},                                             // target oob
		{Methods: []*Method{{Name: "m", Code: []Instr{{Op: OpConst}}}}},                                                                      // falls off end
		{Methods: []*Method{{Name: "m", Code: []Instr{{Op: OpGetStatic, A: 0}, {Op: OpRet}}}}},                                               // static oob
		{Methods: []*Method{{Name: "m", Code: []Instr{{Op: OpCall, A: 4}, {Op: OpRet}}}}},                                                    // callee oob
		{Methods: []*Method{{Name: "m", Code: []Instr{{Op: OpAdd}, {Op: OpConst}, {Op: OpRet}}}}},                                            // add underflow
		{Methods: []*Method{{Name: "a", Code: []Instr{{Op: OpConst}, {Op: OpRet}}}, {Name: "a", Code: []Instr{{Op: OpConst}, {Op: OpRet}}}}}, // dup name
	}
	for i, p := range bad {
		if err := Verify(p); err == nil {
			t.Errorf("case %d: Verify accepted invalid program", i)
		}
	}
}

func TestVerifyInconsistentStackHeights(t *testing.T) {
	// Join point reached with heights 1 and 2.
	src := `
method main 0 0
  const 1
  ifeq join
  const 9
join:
  const 0
  ret
`
	if _, err := Assemble(src); err == nil {
		t.Error("expected stack-height inconsistency error")
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"method main 0 0\n  bogus\n  ret\n",
		"method main 0 0\n  goto nowhere\n  const 0\n  ret\n",
		"method main 0 0\n  call nothing\n  ret\n",
		"entry missing\nmethod main 0 0\n  const 0\n  ret\n",
		"method main 0 0\nL:\nL:\n  const 0\n  ret\n",
		"  const 1\n",
		"method main 0 0\n  const\n  ret\n",
	}
	for i, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("case %d: Assemble accepted bad source", i)
		}
	}
}

func TestDumpRoundTrip(t *testing.T) {
	p := MustAssemble(gcdSrc)
	dumped := Dump(p)
	p2, err := Assemble(dumped)
	if err != nil {
		t.Fatalf("reassemble dump: %v\n%s", err, dumped)
	}
	r1 := mustRun(t, p, nil)
	r2 := mustRun(t, p2, nil)
	if !SameBehavior(r1, r2) {
		t.Error("dump/reassemble changed behavior")
	}
}

func TestCFGStructure(t *testing.T) {
	p := MustAssemble(gcdSrc)
	cfg := BuildCFG(p.Methods[0])
	if cfg.NumBlocks() < 3 {
		t.Fatalf("gcd CFG has %d blocks, want >= 3", cfg.NumBlocks())
	}
	// Every pc belongs to exactly one block and blocks tile the code.
	covered := 0
	for _, b := range cfg.Blocks {
		if b.End <= b.Start {
			t.Errorf("empty block %+v", b)
		}
		covered += b.End - b.Start
		for pc := b.Start; pc < b.End; pc++ {
			if cfg.BlockOf(pc) != b.Index {
				t.Errorf("BlockOf(%d) = %d, want %d", pc, cfg.BlockOf(pc), b.Index)
			}
		}
	}
	if covered != len(p.Methods[0].Code) {
		t.Errorf("blocks cover %d instructions, want %d", covered, len(p.Methods[0].Code))
	}
	// The loop-condition block must have two successors.
	found2 := false
	for bi := range cfg.Blocks {
		if len(cfg.Succs[bi]) == 2 {
			found2 = true
		}
	}
	if !found2 {
		t.Error("no block with two successors in gcd CFG")
	}
}

func TestTraceBlockEventsAndCounts(t *testing.T) {
	p := MustAssemble(gcdSrc)
	tr, res, err := Collect(p, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Return != 5 {
		t.Fatalf("traced run returned %d", res.Return)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no trace events")
	}
	if tr.Events[0].Kind != EvBlockEnter {
		t.Error("trace does not start with a block entry")
	}
	// gcd(25,10): loop condition evaluated until remainder 0; branch execs > 1.
	if n := tr.NumBranchExecs(); n < 2 {
		t.Errorf("branch execs = %d, want >= 2", n)
	}
	// Loop head must be counted more than once.
	maxCount := int64(0)
	for _, c := range tr.BlockCount {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 2 {
		t.Errorf("hottest block count = %d, want >= 2", maxCount)
	}
}

func TestTraceSnapshotLimit(t *testing.T) {
	p := MustAssemble(gcdSrc)
	tr, _, err := Collect(p, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k, snaps := range tr.Snapshots {
		if len(snaps) > 2 {
			t.Errorf("block %+v has %d snapshots, want <= 2", k, len(snaps))
		}
		for _, s := range snaps {
			if len(s.Locals) != p.Methods[k.Method].NLocals {
				t.Errorf("snapshot locals len %d, want %d", len(s.Locals), p.Methods[k.Method].NLocals)
			}
		}
	}
}

func TestDecodeBitsFirstOccurrenceIsZero(t *testing.T) {
	p := MustAssemble(gcdSrc)
	tr, _, err := Collect(p, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	bits := tr.DecodeBits()
	if bits.Len() == 0 {
		t.Fatal("decoded bit-string is empty")
	}
	if bits.Bit(0) {
		t.Error("first decoded bit is 1; first occurrences must decode to 0")
	}
}

func TestDecodeBitsInvariantUnderBranchSenseInversion(t *testing.T) {
	// Manually flip the sense of the gcd loop branch and swap code so
	// semantics are preserved; the decoded bit-string must not change.
	src1 := `
method main 0 1
  const 3
  store 0
loop:
  load 0
  ifeq done
  load 0
  const 1
  sub
  store 0
  goto loop
done:
  const 0
  ret
`
	src2 := `
method main 0 1
  const 3
  store 0
loop:
  load 0
  ifne body
  goto done
body:
  load 0
  const 1
  sub
  store 0
  goto loop
done:
  const 0
  ret
`
	p1, p2 := MustAssemble(src1), MustAssemble(src2)
	t1, _, err := Collect(p1, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := Collect(p2, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := t1.DecodeBits(), t2.DecodeBits()
	if b1.String() != b2.String() {
		t.Errorf("bit-strings differ under branch-sense inversion:\n%s\n%s", b1, b2)
	}
}

func TestDecodeBitsLoopPattern(t *testing.T) {
	// A loop running n times emits, for its condition branch: first
	// occurrence 0, then 0 for every same-direction repeat, then 1 on exit.
	src := `
method main 0 1
  const 4
  store 0
loop:
  load 0
  ifeq done
  load 0
  const 1
  sub
  store 0
  goto loop
done:
  const 0
  ret
`
	p := MustAssemble(src)
	tr, _, err := Collect(p, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.DecodeBits().String()
	want := "00001" // 4 not-taken iterations (first is priming 0) + exit 1
	if got != want {
		t.Errorf("decoded = %q, want %q", got, want)
	}
}

func TestInsertAtPreservesSemanticsAndLoops(t *testing.T) {
	p := MustAssemble(gcdSrc)
	before := mustRun(t, p, nil)
	m := p.Methods[0]
	// Insert stack-neutral code at the loop head (pc 4 = "load 0" of loop).
	m.InsertAt(4, []Instr{{Op: OpConst, A: 1}, {Op: OpPop}})
	if err := Verify(p); err != nil {
		t.Fatalf("verify after InsertAt: %v", err)
	}
	after := mustRun(t, p, nil)
	if !SameBehavior(before, after) {
		t.Error("InsertAt changed behavior")
	}
	if after.Steps <= before.Steps+2 {
		t.Errorf("inserted loop-head code did not execute per iteration: steps %d vs %d", after.Steps, before.Steps)
	}
}

func TestInsertAfterSkipsBranchTargets(t *testing.T) {
	src := `
method main 0 1
  const 2
  store 0
loop:
  load 0
  ifeq done
  load 0
  const 1
  sub
  store 0
  goto loop
done:
  const 7
  ret
`
	p := MustAssemble(src)
	before := mustRun(t, p, nil)
	m := p.Methods[0]
	// Insert after the "ifeq done" branch (pc 3): only on fall-through.
	m.InsertAfter(3, []Instr{{Op: OpConst, A: 5}, {Op: OpPop}})
	if err := Verify(p); err != nil {
		t.Fatalf("verify after InsertAfter: %v", err)
	}
	after := mustRun(t, p, nil)
	if !SameBehavior(before, after) {
		t.Error("InsertAfter changed behavior")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := MustAssemble(gcdSrc)
	q := p.Clone()
	q.Methods[0].Code[0].A = 999
	q.NStatics = 55
	if p.Methods[0].Code[0].A == 999 || p.NStatics == 55 {
		t.Error("Clone shares state with original")
	}
}

func TestNegateCond(t *testing.T) {
	conds := []Op{OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe,
		OpIfCmpEq, OpIfCmpNe, OpIfCmpLt, OpIfCmpGe, OpIfCmpGt, OpIfCmpLe}
	for _, o := range conds {
		if NegateCond(NegateCond(o)) != o {
			t.Errorf("NegateCond not involutive for %v", o)
		}
	}
}

func TestProgramMetrics(t *testing.T) {
	p := MustAssemble(gcdSrc)
	if p.CodeSize() != len(p.Methods[0].Code) {
		t.Error("CodeSize mismatch")
	}
	if p.CountCondBranches() != 1 {
		t.Errorf("CountCondBranches = %d, want 1", p.CountCondBranches())
	}
}

func TestDecodeRuleAblationBranchSense(t *testing.T) {
	// The §3.1 argument: the naive taken/not-taken bit-string flips under
	// branch-sense inversion, while the paper's first-successor rule is
	// invariant. Invert the sense of the gcd loop branch by hand.
	orig := MustAssemble(`
method main 0 1
  const 3
  store 0
loop:
  load 0
  ifeq done
  load 0
  const 1
  sub
  store 0
  goto loop
done:
  const 0
  ret
`)
	inverted := MustAssemble(`
method main 0 1
  const 3
  store 0
loop:
  load 0
  ifne body
  goto done
body:
  load 0
  const 1
  sub
  store 0
  goto loop
done:
  const 0
  ret
`)
	t1, _, err := Collect(orig, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := Collect(inverted, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t1.DecodeBits().String() != t2.DecodeBits().String() {
		t.Error("paper's decode rule changed under branch-sense inversion")
	}
	if t1.DecodeBitsBranchSense().String() == t2.DecodeBitsBranchSense().String() {
		t.Error("naive branch-sense rule unexpectedly invariant; ablation baseline broken")
	}
}
