package vm

import "fmt"

// Verify checks structural well-formedness and stack discipline of every
// method, in the spirit of the JVM bytecode verifier:
//
//   - operand indices (locals, statics, callees, branch targets) in range,
//   - no fall-through off the end of a method,
//   - every instruction reachable with a single consistent stack height,
//   - no operand-stack underflow,
//   - ret with exactly one value available.
//
// Both the embedder's code generators and every attack transformation must
// produce programs that pass Verify; the property tests rely on this.
func Verify(p *Program) error {
	if len(p.Methods) == 0 {
		return fmt.Errorf("vm: program has no methods")
	}
	if p.Entry < 0 || p.Entry >= len(p.Methods) {
		return fmt.Errorf("vm: entry index %d out of range", p.Entry)
	}
	names := make(map[string]bool, len(p.Methods))
	for _, m := range p.Methods {
		if names[m.Name] {
			return fmt.Errorf("vm: duplicate method name %q", m.Name)
		}
		names[m.Name] = true
		if err := verifyMethod(p, m); err != nil {
			return fmt.Errorf("vm: method %s: %w", m.Name, err)
		}
	}
	return nil
}

// VerifyMethod re-checks a single method against the program's current
// tables (statics, callees). It is the incremental counterpart of Verify
// for transformations that modify only a few methods of an
// already-verified program: statics and methods only ever grow, so
// untouched methods stay valid and need no re-verification.
func VerifyMethod(p *Program, i int) error {
	if i < 0 || i >= len(p.Methods) {
		return fmt.Errorf("vm: method index %d out of range", i)
	}
	if err := verifyMethod(p, p.Methods[i]); err != nil {
		return fmt.Errorf("vm: method %s: %w", p.Methods[i].Name, err)
	}
	return nil
}

func verifyMethod(p *Program, m *Method) error {
	n := len(m.Code)
	if n == 0 {
		return fmt.Errorf("empty code")
	}
	if m.NArgs < 0 || m.NLocals < m.NArgs {
		return fmt.Errorf("NLocals %d < NArgs %d", m.NLocals, m.NArgs)
	}
	for pc, in := range m.Code {
		if in.Op >= opCount {
			return fmt.Errorf("pc %d: invalid opcode %d", pc, in.Op)
		}
		switch in.Op {
		case OpLoad, OpStore:
			if in.A < 0 || in.A >= int64(m.NLocals) {
				return fmt.Errorf("pc %d: local %d out of range [0,%d)", pc, in.A, m.NLocals)
			}
		case OpGetStatic, OpPutStatic:
			if in.A < 0 || in.A >= int64(p.NStatics) {
				return fmt.Errorf("pc %d: static %d out of range [0,%d)", pc, in.A, p.NStatics)
			}
		case OpCall:
			if in.A < 0 || in.A >= int64(len(p.Methods)) {
				return fmt.Errorf("pc %d: callee %d out of range", pc, in.A)
			}
		}
		if in.Op.IsBranch() && (in.Target < 0 || in.Target >= n) {
			return fmt.Errorf("pc %d: branch target %d out of range [0,%d)", pc, in.Target, n)
		}
	}
	last := m.Code[n-1].Op
	if last != OpRet && last != OpGoto {
		return fmt.Errorf("pc %d: method may fall off the end (last op %v)", n-1, last)
	}
	return verifyStack(p, m)
}

// verifyStack abstractly interprets the method, assigning each reachable
// pc a stack height and rejecting inconsistencies and underflow.
func verifyStack(p *Program, m *Method) error {
	const unknown = -1
	height := make([]int, len(m.Code))
	for i := range height {
		height[i] = unknown
	}
	type workItem struct{ pc, h int }
	work := []workItem{{0, 0}}
	push := func(pc, h int) error {
		if h > 4096 {
			return fmt.Errorf("pc %d: operand stack exceeds limit", pc)
		}
		if height[pc] == unknown {
			height[pc] = h
			work = append(work, workItem{pc, h})
			return nil
		}
		if height[pc] != h {
			return fmt.Errorf("pc %d: inconsistent stack height %d vs %d", pc, height[pc], h)
		}
		return nil
	}
	height[0] = 0
	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		pc, h := item.pc, item.h
		in := m.Code[pc]
		var pops, pushes int
		if in.Op == OpCall {
			pops, pushes = p.Methods[in.A].NArgs, 1
		} else {
			pops, pushes = stackEffect(in.Op)
		}
		if h < pops {
			return fmt.Errorf("pc %d: stack underflow (%v needs %d, has %d)", pc, in.Op, pops, h)
		}
		next := h - pops + pushes
		switch {
		case in.Op == OpRet:
			// next is the height after consuming the return value; any
			// residue is tolerated (like the JVM, we allow dead operands).
		case in.Op == OpGoto:
			if err := push(in.Target, next); err != nil {
				return err
			}
		case in.Op.IsCondBranch():
			if err := push(in.Target, next); err != nil {
				return err
			}
			if pc+1 < len(m.Code) {
				if err := push(pc+1, next); err != nil {
					return err
				}
			}
		default:
			if pc+1 < len(m.Code) {
				if err := push(pc+1, next); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
