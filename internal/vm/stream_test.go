package vm

import (
	"math/rand"
	"testing"
)

// synthTrace builds an event sequence exercising every decoder shape:
// repeated branches, consecutive branches sharing one successor, blocks
// with no preceding branch, and (when cut) trailing branches.
func synthTrace(seed int64, n int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := NewTrace()
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			t.Events = append(t.Events, Event{Kind: EvBlockEnter,
				Method: int32(rng.Intn(3)), Loc: int32(rng.Intn(5))})
		default:
			t.Events = append(t.Events, Event{Kind: EvBranchExec, Taken: rng.Intn(2) == 0,
				Method: int32(rng.Intn(3)), Loc: int32(rng.Intn(7))})
		}
	}
	return t
}

// TestStreamDecoderMatchesBatchAtEveryCut feeds a trace through the
// incremental decoder split at every possible boundary and requires the
// concatenated output to equal the batch decode of the unsplit trace —
// including cuts that separate a branch event from its successor block,
// the shape the old per-chunk DecodeBits silently dropped.
func TestStreamDecoderMatchesBatchAtEveryCut(t *testing.T) {
	tr := synthTrace(1, 200)
	want := tr.DecodeBits().String()
	for cut := 0; cut <= len(tr.Events); cut++ {
		d := NewStreamDecoder()
		bits := d.Feed(nil, tr.Events[:cut]...)
		bits = d.Feed(bits, tr.Events[cut:]...)
		if got := bits.String(); got != want {
			t.Fatalf("cut at %d: split decode %q, batch %q", cut, got, want)
		}
	}
}

// TestStreamDecoderBranchThenCutContinuation is the regression pinned by
// the bugfix: a trace cut immediately after a branch event decodes, once
// its continuation arrives, to exactly the unsplit trace's bits. Decoding
// the halves through two independent decoders (the old behavior) must
// demonstrably lose the cut branch's bit.
func TestStreamDecoderBranchThenCutContinuation(t *testing.T) {
	tr := NewTrace()
	ev := func(kind EventKind, m, loc int32) Event { return Event{Kind: kind, Method: m, Loc: loc} }
	tr.Events = []Event{
		ev(EvBlockEnter, 0, 0),
		ev(EvBranchExec, 0, 4), // first occurrence -> 0, successor block 1
		ev(EvBlockEnter, 0, 1),
		ev(EvBranchExec, 0, 4), // same successor -> 0
		ev(EvBlockEnter, 0, 1),
		ev(EvBranchExec, 0, 4), // CUT HERE: successor (block 2) is in the next chunk
		ev(EvBlockEnter, 0, 2), // different successor -> 1
		ev(EvBranchExec, 0, 4),
		ev(EvBlockEnter, 0, 1), // first successor again -> 0
	}
	cut := 6 // chunk 1 ends with the third EvBranchExec
	want := tr.DecodeBits().String()
	if want != "0010" {
		t.Fatalf("batch decode = %q, want 0010 (test premise)", want)
	}

	d := NewStreamDecoder()
	bits := d.Feed(nil, tr.Events[:cut]...)
	if d.Pending() != 1 {
		t.Fatalf("after branch-then-cut chunk: pending = %d, want 1", d.Pending())
	}
	bits = d.Feed(bits, tr.Events[cut:]...)
	if got := bits.String(); got != want {
		t.Fatalf("carried-over decode %q, want %q", got, want)
	}

	// The broken shape: two independent decoders drop the cut branch's bit
	// and re-seed the first-successor map in the second half.
	half1 := NewTrace()
	half1.Events = tr.Events[:cut]
	half2 := NewTrace()
	half2.Events = tr.Events[cut:]
	if naive := half1.DecodeBits().String() + half2.DecodeBits().String(); naive == want {
		t.Fatalf("independent per-chunk decode unexpectedly matched (%q); regression premise gone", naive)
	}
}

// TestDecodeBitsTruncatedTraceDropsTrailingBranch pins the batch
// contract on truncated traces: a trailing branch with no successor
// contributes no bit, and the decoder reports it as pending.
func TestDecodeBitsTruncatedTraceDropsTrailingBranch(t *testing.T) {
	tr := NewTrace()
	tr.Events = []Event{
		{Kind: EvBlockEnter, Method: 0, Loc: 0},
		{Kind: EvBranchExec, Method: 0, Loc: 3},
		{Kind: EvBlockEnter, Method: 0, Loc: 1},
		{Kind: EvBranchExec, Method: 0, Loc: 3}, // truncated here
	}
	if got := tr.DecodeBits().Len(); got != 1 {
		t.Fatalf("truncated trace decoded %d bits, want 1", got)
	}
	d := NewStreamDecoder()
	d.Feed(nil, tr.Events...)
	if d.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", d.Pending())
	}
}

// TestStreamDecoderSingleEventFeeds drives the decoder one event at a
// time — the worst-case chunking — over a larger random trace.
func TestStreamDecoderSingleEventFeeds(t *testing.T) {
	tr := synthTrace(7, 500)
	want := tr.DecodeBits().String()
	d := NewStreamDecoder()
	var bits = d.Feed(nil)
	for _, e := range tr.Events {
		bits = d.Feed(bits, e)
	}
	if got := bits.String(); got != want {
		t.Fatalf("per-event decode diverged from batch")
	}
}
