package vm

import (
	"context"
	"errors"
	"fmt"
)

// RuntimeError describes a trapped execution fault (division by zero, bad
// array access, call-depth overflow). Attacked programs that fault are
// classified as "broken" by the resilience experiments.
type RuntimeError struct {
	Method string
	PC     int
	Msg    string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("vm: runtime error in %s at pc %d: %s", e.Method, e.PC, e.Msg)
}

// ErrStepLimit is wrapped by the ResourceError produced when execution
// exceeds RunOptions.StepLimit.
var ErrStepLimit = errors.New("step limit exceeded")

// ErrHeapLimit is wrapped by the ResourceError produced when cumulative
// array allocation exceeds RunOptions.MaxHeap.
var ErrHeapLimit = errors.New("heap limit exceeded")

// ResourceError reports fuel exhaustion: the run was aborted not because
// the program faulted but because it outran a budget (steps, heap cells)
// or its context was cancelled. It is the graceful-degradation boundary
// for runaway or adversarial programs: callers distinguish it from
// RuntimeError to tell "the program is broken" from "the program was cut
// off".
type ResourceError struct {
	// Resource names the exhausted budget: "steps", "heap", or "context".
	Resource string
	// Limit is the configured budget; Used the consumption at abort time.
	Limit, Used int64
	// Method/PC locate the instruction about to execute at the abort.
	Method string
	PC     int
	// Cause is the sentinel (ErrStepLimit, ErrHeapLimit) or the context's
	// error; errors.Is/As unwrap to it.
	Cause error
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("vm: %v in %s at pc %d (used %d of %d)",
		e.Cause, e.Method, e.PC, e.Used, e.Limit)
}

func (e *ResourceError) Unwrap() error { return e.Cause }

// ctxCheckInterval is how many instructions execute between context
// cancellation checks: frequent enough that cancellation is prompt (a few
// microseconds of VM work), rare enough that the per-step cost is one
// counter mask.
const ctxCheckInterval = 4096

// RunOptions controls execution.
type RunOptions struct {
	// Input is the secret input sequence; OpIn consumes it in order and
	// yields 0 once exhausted.
	Input []int64
	// StepLimit bounds executed instructions (0 means the 100M default).
	// Exhaustion returns a *ResourceError wrapping ErrStepLimit.
	StepLimit int64
	// MaxHeap bounds the cumulative number of array cells allocated over
	// the run (0 means the 64M default). Exhaustion returns a
	// *ResourceError wrapping ErrHeapLimit.
	MaxHeap int64
	// Ctx, when non-nil, aborts the run with a *ResourceError wrapping the
	// context's error once the context is done. Checked every
	// ctxCheckInterval instructions.
	Ctx context.Context
	// MaxDepth bounds the call stack (0 means the 10k default).
	MaxDepth int
	// Trace, when non-nil, receives block-entry and branch events.
	Trace *Trace
	// SnapshotLimit caps, per basic block, how many variable snapshots the
	// trace stores (0 means the default of 2 — enough for the condition
	// code generator's priming + first payload execution). Snapshots are
	// only taken when Trace is non-nil.
	SnapshotLimit int
	// Profile, when non-nil, accumulates the dynamic opcode mix and
	// per-block execution counts. Disabled (nil) it costs one hoisted
	// nil-check per instruction.
	Profile *Profile
}

// Result is the outcome of a successful run.
type Result struct {
	Return int64   // entry method's return value
	Output []int64 // values printed with OpPrint, in order
	Steps  int64   // instructions executed — the deterministic time metric
}

// frame is one activation record.
type frame struct {
	method *Method
	mi     int
	cfg    *CFG
	locals []int64
	stack  []int64
	pc     int
}

// Run executes the program's entry method with zero-valued arguments and
// returns its result. When opts.Trace is set, trace events are appended to
// it as execution proceeds.
func Run(p *Program, opts RunOptions) (*Result, error) {
	stepLimit := opts.StepLimit
	if stepLimit == 0 {
		stepLimit = 100_000_000
	}
	maxHeap := opts.MaxHeap
	if maxHeap == 0 {
		maxHeap = 64 << 20
	}
	maxDepth := opts.MaxDepth
	if maxDepth == 0 {
		maxDepth = 10_000
	}
	snapLimit := opts.SnapshotLimit
	if snapLimit == 0 {
		snapLimit = 2
	}
	prof := opts.Profile
	if prof != nil && prof.BlockCount == nil {
		prof.BlockCount = make(map[BlockKey]int64)
	}

	cfgs := make([]*CFG, len(p.Methods))
	cfgOf := func(mi int) *CFG {
		if cfgs[mi] == nil {
			cfgs[mi] = BuildCFG(p.Methods[mi])
		}
		return cfgs[mi]
	}

	statics := make([]int64, p.NStatics)
	var heap [][]int64 // array handle v refers to heap[v-1]
	var heapCells int64
	input := opts.Input
	inPos := 0
	res := &Result{}
	var ctxDone <-chan struct{}
	if opts.Ctx != nil {
		ctxDone = opts.Ctx.Done()
	}

	entry := p.Methods[p.Entry]
	frames := []*frame{{
		method: entry, mi: p.Entry, cfg: cfgOf(p.Entry),
		locals: make([]int64, entry.NLocals),
	}}

	fault := func(f *frame, msg string) error {
		return &RuntimeError{Method: f.method.Name, PC: f.pc, Msg: msg}
	}

	enterBlock := func(f *frame, bi int) {
		if prof != nil {
			prof.enterBlock(f.mi, bi)
		}
		if opts.Trace == nil {
			return
		}
		opts.Trace.addBlockEnter(f.mi, bi, f.locals, statics, snapLimit)
	}

	// Enter the entry block of the entry method.
	enterBlock(frames[0], 0)

	for {
		f := frames[len(frames)-1]
		if f.pc >= len(f.method.Code) {
			return nil, fault(f, "fell off end of method")
		}
		if res.Steps >= stepLimit {
			return nil, &ResourceError{
				Resource: "steps", Limit: stepLimit, Used: res.Steps,
				Method: f.method.Name, PC: f.pc, Cause: ErrStepLimit,
			}
		}
		if ctxDone != nil && res.Steps%ctxCheckInterval == 0 {
			select {
			case <-ctxDone:
				return nil, &ResourceError{
					Resource: "context", Limit: stepLimit, Used: res.Steps,
					Method: f.method.Name, PC: f.pc, Cause: opts.Ctx.Err(),
				}
			default:
			}
		}
		res.Steps++
		in := f.method.Code[f.pc]
		if prof != nil {
			prof.Steps++
			if int(in.Op) < len(prof.OpCount) {
				prof.OpCount[in.Op]++
			}
		}

		pop := func() int64 {
			v := f.stack[len(f.stack)-1]
			f.stack = f.stack[:len(f.stack)-1]
			return v
		}
		pushv := func(v int64) { f.stack = append(f.stack, v) }

		// The verifier guarantees stack discipline for verified programs;
		// guard anyway so unverified/attacked programs fault cleanly.
		pops := 0
		if in.Op == OpCall {
			pops = p.Methods[in.A].NArgs
		} else {
			pops, _ = stackEffect(in.Op)
		}
		if len(f.stack) < pops {
			return nil, fault(f, fmt.Sprintf("stack underflow executing %v", in.Op))
		}

		advance := func(target int) {
			f.pc = target
			if bi := f.cfg.BlockOf(target); f.cfg.Blocks[bi].Start == target {
				enterBlock(f, bi)
			}
		}
		// next moves to the fall-through instruction, emitting a block
		// entry when it crosses into a leader (e.g. falling through into
		// a branch target).
		next := func() {
			f.pc++
			if (opts.Trace != nil || prof != nil) && f.pc < len(f.method.Code) {
				if bi := f.cfg.BlockOf(f.pc); f.cfg.Blocks[bi].Start == f.pc {
					enterBlock(f, bi)
				}
			}
		}

		switch in.Op {
		case OpNop:
			next()
		case OpConst:
			pushv(in.A)
			next()
		case OpLoad:
			if in.A < 0 || in.A >= int64(len(f.locals)) {
				return nil, fault(f, "local index out of range")
			}
			pushv(f.locals[in.A])
			next()
		case OpStore:
			if in.A < 0 || in.A >= int64(len(f.locals)) {
				return nil, fault(f, "local index out of range")
			}
			f.locals[in.A] = pop()
			next()
		case OpGetStatic:
			if in.A < 0 || in.A >= int64(len(statics)) {
				return nil, fault(f, "static index out of range")
			}
			pushv(statics[in.A])
			next()
		case OpPutStatic:
			if in.A < 0 || in.A >= int64(len(statics)) {
				return nil, fault(f, "static index out of range")
			}
			statics[in.A] = pop()
			next()
		case OpDup:
			v := pop()
			pushv(v)
			pushv(v)
			next()
		case OpPop:
			pop()
			next()
		case OpSwap:
			b, a := pop(), pop()
			pushv(b)
			pushv(a)
			next()
		case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr:
			b, a := pop(), pop()
			var v int64
			switch in.Op {
			case OpAdd:
				v = a + b
			case OpSub:
				v = a - b
			case OpMul:
				v = a * b
			case OpDiv:
				if b == 0 {
					return nil, fault(f, "division by zero")
				}
				v = a / b
			case OpRem:
				if b == 0 {
					return nil, fault(f, "division by zero")
				}
				v = a % b
			case OpAnd:
				v = a & b
			case OpOr:
				v = a | b
			case OpXor:
				v = a ^ b
			case OpShl:
				v = a << (uint64(b) & 63)
			case OpShr:
				v = a >> (uint64(b) & 63)
			}
			pushv(v)
			next()
		case OpNeg:
			pushv(-pop())
			next()
		case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpIfGt, OpIfLe:
			v := pop()
			taken := false
			switch in.Op {
			case OpIfEq:
				taken = v == 0
			case OpIfNe:
				taken = v != 0
			case OpIfLt:
				taken = v < 0
			case OpIfGe:
				taken = v >= 0
			case OpIfGt:
				taken = v > 0
			case OpIfLe:
				taken = v <= 0
			}
			if opts.Trace != nil {
				opts.Trace.addBranchExec(f.mi, f.pc, taken)
			}
			if taken {
				advance(in.Target)
			} else {
				advance(f.pc + 1)
			}
		case OpIfCmpEq, OpIfCmpNe, OpIfCmpLt, OpIfCmpGe, OpIfCmpGt, OpIfCmpLe:
			b, a := pop(), pop()
			taken := false
			switch in.Op {
			case OpIfCmpEq:
				taken = a == b
			case OpIfCmpNe:
				taken = a != b
			case OpIfCmpLt:
				taken = a < b
			case OpIfCmpGe:
				taken = a >= b
			case OpIfCmpGt:
				taken = a > b
			case OpIfCmpLe:
				taken = a <= b
			}
			if opts.Trace != nil {
				opts.Trace.addBranchExec(f.mi, f.pc, taken)
			}
			if taken {
				advance(in.Target)
			} else {
				advance(f.pc + 1)
			}
		case OpGoto:
			advance(in.Target)
		case OpCall:
			if in.A < 0 || in.A >= int64(len(p.Methods)) {
				return nil, fault(f, "callee index out of range")
			}
			if len(frames) >= maxDepth {
				return nil, fault(f, "call depth exceeded")
			}
			callee := p.Methods[in.A]
			nf := &frame{
				method: callee, mi: int(in.A), cfg: cfgOf(int(in.A)),
				locals: make([]int64, callee.NLocals),
			}
			for i := callee.NArgs - 1; i >= 0; i-- {
				nf.locals[i] = pop()
			}
			frames = append(frames, nf)
			if prof != nil {
				prof.Calls++
				if len(frames) > prof.MaxObservedDepth {
					prof.MaxObservedDepth = len(frames)
				}
			}
			enterBlock(nf, 0)
		case OpRet:
			v := pop()
			frames = frames[:len(frames)-1]
			if len(frames) == 0 {
				res.Return = v
				return res, nil
			}
			caller := frames[len(frames)-1]
			caller.stack = append(caller.stack, v)
			// Resume after the call; entering a new block here is a
			// block *continuation*, not an entry, unless the next pc
			// happens to start a block (call was block-final is
			// impossible: calls never end blocks).
			caller.pc++
			if bi := caller.cfg.BlockOf(caller.pc); caller.cfg.Blocks[bi].Start == caller.pc {
				enterBlock(caller, bi)
			}
		case OpNewArr:
			nv := pop()
			if nv < 0 || nv > 1<<24 {
				return nil, fault(f, fmt.Sprintf("bad array size %d", nv))
			}
			if heapCells+nv > maxHeap {
				return nil, &ResourceError{
					Resource: "heap", Limit: maxHeap, Used: heapCells + nv,
					Method: f.method.Name, PC: f.pc, Cause: ErrHeapLimit,
				}
			}
			heapCells += nv
			heap = append(heap, make([]int64, nv))
			pushv(int64(len(heap)))
			next()
		case OpALoad:
			i, ref := pop(), pop()
			arr, err := heapArr(heap, ref)
			if err != nil {
				return nil, fault(f, err.Error())
			}
			if i < 0 || i >= int64(len(arr)) {
				return nil, fault(f, fmt.Sprintf("array index %d out of range [0,%d)", i, len(arr)))
			}
			pushv(arr[i])
			next()
		case OpAStore:
			v, i, ref := pop(), pop(), pop()
			arr, err := heapArr(heap, ref)
			if err != nil {
				return nil, fault(f, err.Error())
			}
			if i < 0 || i >= int64(len(arr)) {
				return nil, fault(f, fmt.Sprintf("array index %d out of range [0,%d)", i, len(arr)))
			}
			arr[i] = v
			next()
		case OpArrLen:
			ref := pop()
			arr, err := heapArr(heap, ref)
			if err != nil {
				return nil, fault(f, err.Error())
			}
			pushv(int64(len(arr)))
			next()
		case OpIn:
			if inPos < len(input) {
				pushv(input[inPos])
				inPos++
			} else {
				pushv(0)
			}
			next()
		case OpPrint:
			res.Output = append(res.Output, pop())
			next()
		default:
			return nil, fault(f, fmt.Sprintf("invalid opcode %d", in.Op))
		}
	}
}

func heapArr(heap [][]int64, ref int64) ([]int64, error) {
	if ref < 1 || ref > int64(len(heap)) {
		return nil, fmt.Errorf("bad array reference %d", ref)
	}
	return heap[ref-1], nil
}

// SameBehavior reports whether two run results are observationally
// identical (return value and printed output); it is the semantic
// equivalence check used by the attack harness.
func SameBehavior(a, b *Result) bool {
	if a.Return != b.Return || len(a.Output) != len(b.Output) {
		return false
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			return false
		}
	}
	return true
}
