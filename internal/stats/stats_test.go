package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoundaries(t *testing.T) {
	if got := NoIsolatedNodeProbability(5, 0); got != 1 {
		t.Errorf("q=0: got %v, want 1", got)
	}
	if got := NoIsolatedNodeProbability(5, 1); got != 0 {
		t.Errorf("q=1: got %v, want 0", got)
	}
	if got := NoIsolatedNodeProbability(0, 0.5); got != 1 {
		t.Errorf("n=0: got %v, want 1", got)
	}
}

func TestTwoNodesClosedForm(t *testing.T) {
	// K_2 has one edge; no isolated node iff the edge survives: P = 1-q.
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		got := NoIsolatedNodeProbability(2, q)
		want := 1 - q
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("n=2 q=%v: got %v, want %v", q, got, want)
		}
	}
}

func TestThreeNodesClosedForm(t *testing.T) {
	// K_3: P(no isolated) = 1 - 3q^2 + 2q^3 (from inclusion-exclusion).
	for _, q := range []float64{0.2, 0.5, 0.8} {
		got := NoIsolatedNodeProbability(3, q)
		want := 1 - 3*q*q + 2*q*q*q
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("n=3 q=%v: got %v, want %v", q, got, want)
		}
	}
}

func TestMonotoneInQ(t *testing.T) {
	for n := 2; n <= 12; n++ {
		prev := 1.1
		for q := 0.0; q <= 1.0; q += 0.05 {
			p := NoIsolatedNodeProbability(n, q)
			if p > prev+1e-9 {
				t.Errorf("n=%d: probability increased from %v to %v at q=%v", n, prev, p, q)
			}
			prev = p
		}
	}
}

func TestAgainstMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		n int
		q float64
	}{{4, 0.3}, {5, 0.5}, {6, 0.7}, {8, 0.6}} {
		const trials = 20000
		hits := 0
		for trial := 0; trial < trials; trial++ {
			deg := make([]int, tc.n)
			for i := 0; i < tc.n; i++ {
				for j := i + 1; j < tc.n; j++ {
					if rng.Float64() >= tc.q {
						deg[i]++
						deg[j]++
					}
				}
			}
			ok := true
			for _, d := range deg {
				if d == 0 {
					ok = false
					break
				}
			}
			if ok {
				hits++
			}
		}
		emp := float64(hits) / trials
		ana := NoIsolatedNodeProbability(tc.n, tc.q)
		if math.Abs(emp-ana) > 0.02 {
			t.Errorf("n=%d q=%v: empirical %v vs analytic %v", tc.n, tc.q, emp, ana)
		}
	}
}

func TestRecoveryProbabilityEndpoints(t *testing.T) {
	if got := RecoveryProbability(5, 0); got != 0 {
		t.Errorf("intact=0: got %v, want 0", got)
	}
	if got := RecoveryProbability(5, 10); got != 1 {
		t.Errorf("intact=all: got %v, want 1", got)
	}
	mid := RecoveryProbability(5, 5)
	if mid <= 0 || mid >= 1 {
		t.Errorf("intact=half: got %v, want in (0,1)", mid)
	}
}

func TestRecoveryProbabilityMonotone(t *testing.T) {
	n := 8
	total := n * (n - 1) / 2
	prev := -0.1
	for intact := 0; intact <= total; intact++ {
		p := RecoveryProbability(n, intact)
		if p < prev-1e-9 {
			t.Errorf("recovery probability decreased at intact=%d", intact)
		}
		prev = p
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {3, 4, 0}, {3, -1, 0}}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}
