// Package stats implements the paper's analytical model for watermark
// recovery (formula (1) and Figure 5).
//
// Model: the r primes are the nodes of a complete graph K_r; each statement
// W ≡ x (mod p_i·p_j) is the edge (i,j). Attacks delete edges independently
// with probability q. Reconstruction needs W mod p_i for every i, which
// holds exactly when every node retains at least one incident edge; the
// paper uses that event's probability as the approximation of successful
// recovery.
package stats

import "math"

// NoIsolatedNodeProbability evaluates formula (1): the probability that a
// complete graph on n nodes, with each edge independently deleted with
// probability q, has no isolated node. By inclusion-exclusion over the set
// of isolated nodes,
//
//	P = Σ_{j=0}^{n} (-1)^j C(n,j) q^{j(n-j) + j(j-1)/2}
//
// because isolating a fixed set of j nodes requires deleting the j(n-j)
// edges to the rest plus the C(j,2) edges inside the set.
func NoIsolatedNodeProbability(n int, q float64) float64 {
	if n <= 0 {
		return 1
	}
	if q < 0 || q > 1 {
		panic("stats: q must be in [0,1]")
	}
	p := 0.0
	for j := 0; j <= n; j++ {
		exp := float64(j*(n-j)) + float64(j*(j-1))/2
		term := binomial(n, j) * math.Pow(q, exp)
		if j%2 == 0 {
			p += term
		} else {
			p -= term
		}
	}
	// Numerical cancellation can push the value a hair outside [0,1].
	return math.Min(1, math.Max(0, p))
}

// RecoveryProbability expresses the same quantity in Figure 5's terms: the
// probability of recovering W when `intact` of the C(n,2) pieces survive,
// assuming each subset of surviving pieces is equally likely. It is
// evaluated by exact dynamic programming over the number of edge subsets of
// size `intact` leaving no node isolated, when feasible, and otherwise via
// the q-approximation with q = 1 - intact/C(n,2).
func RecoveryProbability(n, intact int) float64 {
	total := n * (n - 1) / 2
	if intact <= 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	if intact >= total {
		return 1
	}
	q := 1 - float64(intact)/float64(total)
	return NoIsolatedNodeProbability(n, q)
}

func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

// Binomial exposes C(n,k) as a float64 for the experiment harness.
func Binomial(n, k int) float64 { return binomial(n, k) }
