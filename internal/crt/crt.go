// Package crt implements the number-theoretic core of the Java-side
// watermark (paper §3.2 step 1-2 and §3.3 step D):
//
//   - splitting a watermark integer W into redundant statements of the form
//     W ≡ x (mod p_i·p_j) over pairwise relatively prime p_1..p_r,
//   - the enumeration scheme that packs each statement into a single 64-bit
//     integer (and its inverse, which doubles as the recognizer's garbage
//     filter: a random 64-bit value decodes to a valid statement only with
//     probability capacity/2^64),
//   - merging consistent congruences with the Generalized Chinese Remainder
//     Theorem (moduli p_i·p_j are *not* pairwise coprime across statements,
//     so the general gcd-aware merge is required).
package crt

import (
	"errors"
	"fmt"
	"math/big"
	mathbits "math/bits"
	"sort"
)

// Statement records "W ≡ X (mod Primes[I]*Primes[J])" with I < J.
type Statement struct {
	I, J int
	X    uint64
}

// Params fixes the prime basis of a watermark key. The same Params must be
// used for embedding and recognition.
type Params struct {
	primes  []uint64
	offsets []uint64 // offsets[k] = Σ of p_i*p_j over the first k pairs
	pairs   [][2]int // lexicographic pair order: (0,1),(0,2),...,(r-2,r-1)

	// Framing constants, fixed by the capacity and memoized here because
	// Unframe runs on every decrypted window in the scan hot loop (see
	// framing.go).
	frameShift     uint   // payload width = bits.Len64(Capacity()-1)
	framePayload   uint64 // low-bit mask selecting the payload field
	frameCheckMask uint64 // check field truncated to the available headroom
	frameCap       uint64 // Capacity(), denormalized out of the offsets slice
}

// NewParams validates the prime basis: at least two moduli, each > 1,
// pairwise relatively prime, and a total enumeration capacity that fits in
// 63 bits (so every encoded statement occupies a single 64-bit cipher
// block with headroom).
func NewParams(primes []uint64) (*Params, error) {
	if len(primes) < 2 {
		return nil, errors.New("crt: need at least two moduli")
	}
	for i, p := range primes {
		if p < 2 {
			return nil, fmt.Errorf("crt: modulus %d at index %d must be >= 2", p, i)
		}
		for j := 0; j < i; j++ {
			if gcd64(p, primes[j]) != 1 {
				return nil, fmt.Errorf("crt: moduli %d and %d are not relatively prime", primes[j], p)
			}
		}
	}
	pr := &Params{primes: append([]uint64(nil), primes...)}
	var total uint64
	for i := 0; i < len(primes); i++ {
		for j := i + 1; j < len(primes); j++ {
			prod := primes[i] * primes[j]
			if primes[i] != 0 && prod/primes[i] != primes[j] {
				return nil, fmt.Errorf("crt: modulus product %d*%d overflows", primes[i], primes[j])
			}
			pr.pairs = append(pr.pairs, [2]int{i, j})
			pr.offsets = append(pr.offsets, total)
			if total+prod < total {
				return nil, errors.New("crt: enumeration capacity overflows uint64")
			}
			total += prod
		}
	}
	if total >= 1<<63 {
		return nil, errors.New("crt: enumeration capacity exceeds 63 bits")
	}
	pr.offsets = append(pr.offsets, total)
	pr.frameCap = total
	pr.frameShift = uint(mathbits.Len64(total - 1))
	pr.framePayload = 1<<pr.frameShift - 1
	pr.frameCheckMask = 0xffff
	if headroom := 64 - pr.frameShift; headroom < 16 {
		pr.frameCheckMask = 1<<headroom - 1
	}
	return pr, nil
}

// DefaultPrimes returns n deterministic primes of roughly the given bit
// size, suitable for NewParams. Primes are consecutive primes starting just
// above 2^(bits-1).
func DefaultPrimes(n, bits int) []uint64 {
	if bits < 2 || bits > 30 {
		panic(fmt.Sprintf("crt: DefaultPrimes bits %d out of range [2,30]", bits))
	}
	out := make([]uint64, 0, n)
	for cand := uint64(1)<<uint(bits-1) + 1; len(out) < n; cand += 2 {
		if isPrime(cand) {
			out = append(out, cand)
		}
	}
	return out
}

func isPrime(v uint64) bool {
	if v < 2 {
		return false
	}
	if v%2 == 0 {
		return v == 2
	}
	for d := uint64(3); d*d <= v; d += 2 {
		if v%d == 0 {
			return false
		}
	}
	return true
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Primes returns a copy of the prime basis.
func (p *Params) Primes() []uint64 { return append([]uint64(nil), p.primes...) }

// NumPairs reports the number of distinct (i,j) pairs, the maximum number of
// distinct pieces (r(r-1)/2 in the paper).
func (p *Params) NumPairs() int { return len(p.pairs) }

// Capacity reports the total number of valid statement encodings; every
// encoded statement is < Capacity().
func (p *Params) Capacity() uint64 { return p.offsets[len(p.offsets)-1] }

// MaxWatermark returns the exclusive upper bound Π p_k on representable
// watermark values.
func (p *Params) MaxWatermark() *big.Int {
	prod := big.NewInt(1)
	for _, q := range p.primes {
		prod.Mul(prod, new(big.Int).SetUint64(q))
	}
	return prod
}

// Pair returns the k-th pair in enumeration order.
func (p *Params) Pair(k int) (i, j int) {
	return p.pairs[k][0], p.pairs[k][1]
}

// pairIndex returns the enumeration index of pair (i,j), i < j.
func (p *Params) pairIndex(i, j int) int {
	// Pairs are ordered (0,1),(0,2),..,(0,r-1),(1,2),.. so the index is
	// Σ_{n<i}(r-1-n) + (j-i-1).
	r := len(p.primes)
	return i*r - i*(i+1)/2 + (j - i - 1)
}

// Split decomposes W into one statement per pair, in enumeration order.
// It returns an error if W is negative or too large for the basis.
func (p *Params) Split(w *big.Int) ([]Statement, error) {
	if w.Sign() < 0 {
		return nil, errors.New("crt: watermark must be non-negative")
	}
	if w.Cmp(p.MaxWatermark()) >= 0 {
		return nil, fmt.Errorf("crt: watermark needs more than %d prime moduli", len(p.primes))
	}
	stmts := make([]Statement, 0, len(p.pairs))
	var mod, rem big.Int
	for _, pair := range p.pairs {
		m := p.primes[pair[0]] * p.primes[pair[1]]
		mod.SetUint64(m)
		rem.Mod(w, &mod)
		stmts = append(stmts, Statement{I: pair[0], J: pair[1], X: rem.Uint64()})
	}
	return stmts, nil
}

// Encode packs a statement into a single integer < Capacity() using the
// paper's enumeration scheme: the offset of all pairs before (I,J), plus X.
func (p *Params) Encode(s Statement) (uint64, error) {
	if s.I < 0 || s.J <= s.I || s.J >= len(p.primes) {
		return 0, fmt.Errorf("crt: invalid pair (%d,%d)", s.I, s.J)
	}
	m := p.primes[s.I] * p.primes[s.J]
	if s.X >= m {
		return 0, fmt.Errorf("crt: residue %d out of range for modulus %d", s.X, m)
	}
	return p.offsets[p.pairIndex(s.I, s.J)] + s.X, nil
}

// Decode inverts Encode. ok is false when w is not a valid statement
// encoding (w >= Capacity()); during recognition this rejects the vast
// majority of garbage cipher blocks.
func (p *Params) Decode(w uint64) (s Statement, ok bool) {
	if w >= p.Capacity() {
		return Statement{}, false
	}
	// offsets is sorted; find the last offset <= w.
	k := sort.Search(len(p.pairs), func(k int) bool { return p.offsets[k+1] > w })
	pair := p.pairs[k]
	return Statement{I: pair[0], J: pair[1], X: w - p.offsets[k]}, true
}

// Modulus returns p_I * p_J for the statement.
func (p *Params) Modulus(s Statement) uint64 {
	return p.primes[s.I] * p.primes[s.J]
}

// Consistent reports whether two statements can simultaneously hold for
// some W: their residues must agree modulo the gcd of their moduli.
func (p *Params) Consistent(a, b Statement) bool {
	g := gcd64(p.Modulus(a), p.Modulus(b))
	return a.X%g == b.X%g
}

// SharePrime reports whether two statements share a prime index and agree
// on the residue modulo every shared prime. This is adjacency in the
// recognizer's graph H: agreement that is *not* explained by the Chinese
// Remainder Theorem alone and therefore unlikely for garbage statements.
func (p *Params) SharePrime(a, b Statement) bool {
	shared := false
	for _, i := range []int{a.I, a.J} {
		if i == b.I || i == b.J {
			shared = true
			q := p.primes[i]
			if a.X%q != b.X%q {
				return false
			}
		}
	}
	return shared
}

// Reconstruct merges statements with the Generalized Chinese Remainder
// Theorem. On success it returns the combined value W mod M and the
// combined modulus M (the product of all primes covered by the
// statements). It returns an error if any two statements are inconsistent.
//
// The caller decides whether M is large enough: recovery of the original
// watermark requires M > W, which in the paper's terms means every prime
// node of the statement graph retains at least one incident edge.
func (p *Params) Reconstruct(stmts []Statement) (value, modulus *big.Int, err error) {
	if len(stmts) == 0 {
		return nil, nil, errors.New("crt: no statements to reconstruct from")
	}
	value = new(big.Int).SetUint64(stmts[0].X)
	modulus = new(big.Int).SetUint64(p.Modulus(stmts[0]))
	for _, s := range stmts[1:] {
		value, modulus, err = mergeCongruence(value, modulus, new(big.Int).SetUint64(s.X), new(big.Int).SetUint64(p.Modulus(s)))
		if err != nil {
			return nil, nil, err
		}
	}
	return value, modulus, nil
}

// mergeCongruence combines x ≡ a (mod m) and x ≡ b (mod n) into
// x ≡ c (mod lcm(m,n)), failing when a ≢ b (mod gcd(m,n)).
func mergeCongruence(a, m, b, n *big.Int) (c, l *big.Int, err error) {
	g := new(big.Int).GCD(nil, nil, m, n)
	diff := new(big.Int).Sub(b, a)
	rem := new(big.Int).Mod(diff, g)
	if rem.Sign() != 0 {
		return nil, nil, fmt.Errorf("crt: inconsistent congruences (%v mod %v) vs (%v mod %v)", a, m, b, n)
	}
	// l = lcm(m,n); solve a + m*t ≡ b (mod n)  =>  t ≡ (b-a)/g * inv(m/g) (mod n/g).
	l = new(big.Int).Div(m, g)
	l.Mul(l, n)
	mg := new(big.Int).Div(m, g)
	ng := new(big.Int).Div(n, g)
	inv := new(big.Int).ModInverse(mg, ng)
	if inv == nil {
		// Cannot happen: m/g and n/g are coprime by construction.
		return nil, nil, errors.New("crt: internal error computing modular inverse")
	}
	t := new(big.Int).Div(diff, g)
	t.Mul(t, inv)
	t.Mod(t, ng)
	c = new(big.Int).Mul(m, t)
	c.Add(c, a)
	c.Mod(c, l)
	return c, l, nil
}

// CoveredPrimes returns the set of prime indices mentioned by the
// statements, as a sorted slice. Full coverage (len == r) is necessary for
// the combined modulus to reach Π p_k.
func (p *Params) CoveredPrimes(stmts []Statement) []int {
	seen := make(map[int]bool)
	for _, s := range stmts {
		seen[s.I] = true
		seen[s.J] = true
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}
