package crt

import (
	"math/rand"
	"testing"
)

func framingParams(t testing.TB, primes ...uint64) *Params {
	t.Helper()
	p, err := NewParams(primes)
	if err != nil {
		t.Fatalf("NewParams(%v): %v", primes, err)
	}
	return p
}

// TestFrameRoundTripExhaustive checks the lossless contract over the
// entire capacity of a small basis: every encoding frames and unframes
// to itself.
func TestFrameRoundTripExhaustive(t *testing.T) {
	p := framingParams(t, 3, 5, 7, 11)
	for enc := uint64(0); enc < p.Capacity(); enc++ {
		got, ok := p.Unframe(p.Frame(enc))
		if !ok || got != enc {
			t.Fatalf("Unframe(Frame(%d)) = %d, %v; want %d, true", enc, got, ok, enc)
		}
	}
}

// TestFrameRoundTripSampled covers a realistic 16-bit-prime basis, where
// the capacity is too large to enumerate, with random and boundary
// encodings.
func TestFrameRoundTripSampled(t *testing.T) {
	p := framingParams(t, DefaultPrimes(6, 16)...)
	rng := rand.New(rand.NewSource(1))
	encs := []uint64{0, 1, p.Capacity() - 1, p.Capacity() / 2}
	for i := 0; i < 10000; i++ {
		encs = append(encs, rng.Uint64()%p.Capacity())
	}
	for _, enc := range encs {
		got, ok := p.Unframe(p.Frame(enc))
		if !ok || got != enc {
			t.Fatalf("Unframe(Frame(%d)) = %d, %v; want %d, true", enc, got, ok, enc)
		}
	}
}

// TestUnframeRejects pins the reject half: payloads at or above capacity
// and any corruption of the check field must fail, and every accepted
// word must be exactly the framing of its payload (no two distinct words
// unframe to the same encoding).
func TestUnframeRejects(t *testing.T) {
	p := framingParams(t, DefaultPrimes(6, 16)...)
	shift := p.framePayloadBits()

	// Payload >= capacity, even with a self-consistent check field, is
	// out of the enumeration range.
	for _, enc := range []uint64{p.Capacity(), p.Capacity() + 1, 1<<shift - 1} {
		w := enc | p.frameCheck(enc)<<shift
		if _, ok := p.Unframe(w); ok {
			t.Fatalf("Unframe accepted out-of-range payload %d", enc)
		}
	}

	// Flipping any single check bit of a valid frame must reject.
	enc := p.Capacity() - 2
	w := p.Frame(enc)
	for b := shift; b < 64; b++ {
		if _, ok := p.Unframe(w ^ 1<<b); ok {
			t.Fatalf("Unframe accepted frame with check bit %d flipped", b)
		}
	}
}

// TestFrameCheckBits sanity-checks the advertised rejection power: all
// bits above the payload are constrained, and a random word passes with
// empirical probability near capacity/2^64 — for a 16-bit-prime basis,
// essentially never.
func TestFrameCheckBits(t *testing.T) {
	p := framingParams(t, DefaultPrimes(6, 16)...)
	if got, want := p.FrameCheckBits(), 64-int(p.framePayloadBits()); got != want {
		t.Fatalf("FrameCheckBits = %d, want %d", got, want)
	}
	if p.FrameCheckBits() < 1 {
		t.Fatalf("FrameCheckBits = %d, want >= 1 (capacity < 2^63)", p.FrameCheckBits())
	}
	rng := rand.New(rand.NewSource(2))
	accepted := 0
	for i := 0; i < 1<<20; i++ {
		if _, ok := p.Unframe(rng.Uint64()); ok {
			accepted++
		}
	}
	// Expected acceptance is capacity/2^64 ~ 2^-28 for this basis; even a
	// handful of hits in 2^20 trials would signal a broken check.
	if accepted > 2 {
		t.Fatalf("random words accepted %d/2^20 times; framing check too weak", accepted)
	}
}

// FuzzFramingLossless pins the filter contract the scan kernel depends
// on: framing may never reject a genuinely embedded piece. For every
// in-range encoding, Unframe(Frame(enc)) must return (enc, true); and
// whenever Unframe accepts an arbitrary word, that word must be exactly
// the canonical frame of its payload (accept set == image of Frame).
// Seeds mirror the shapes in nativewm's FuzzFramingDecode corpus: empty,
// magic-like repetition, counting bytes, and all-ones.
func FuzzFramingLossless(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0xA5C3A5C3A5C3A5C3), uint64(0xA5C3))
	f.Add(uint64(0x0102030405060708), uint64(0x0807060504030201))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(0x9d57)<<48, uint64(1))

	p, err := NewParams(DefaultPrimes(6, 16))
	if err != nil {
		f.Fatal(err)
	}
	small, err := NewParams([]uint64{3, 5, 7, 11, 13})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, enc, w uint64) {
		for _, params := range []*Params{p, small} {
			e := enc % params.Capacity()
			got, ok := params.Unframe(params.Frame(e))
			if !ok || got != e {
				t.Fatalf("lossless contract violated: Unframe(Frame(%d)) = %d, %v", e, got, ok)
			}
			if payload, ok := params.Unframe(w); ok {
				if payload >= params.Capacity() {
					t.Fatalf("Unframe(%#x) accepted out-of-range payload %d", w, payload)
				}
				if params.Frame(payload) != w {
					t.Fatalf("Unframe(%#x) accepted non-canonical frame of %d", w, payload)
				}
			}
		}
	})
}
