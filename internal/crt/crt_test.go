package crt

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustParams(t testing.TB, primes []uint64) *Params {
	t.Helper()
	p, err := NewParams(primes)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewParamsRejectsBadInput(t *testing.T) {
	cases := [][]uint64{
		{},            // empty
		{7},           // single modulus
		{4, 6},        // share factor 2
		{3, 9},        // share factor 3
		{0, 3},        // < 2
		{1, 3},        // < 2
		{2, 3, 5, 10}, // 10 shares factors with 2 and 5
	}
	for _, primes := range cases {
		if _, err := NewParams(primes); err == nil {
			t.Errorf("NewParams(%v) accepted invalid basis", primes)
		}
	}
}

func TestPaperFigure3(t *testing.T) {
	// Figure 3: W = 17 with p1=2, p2=3, p3=5:
	// W ≡ 5 (mod 6), W ≡ 7 (mod 10), W ≡ 2 (mod 15).
	p := mustParams(t, []uint64{2, 3, 5})
	stmts, err := p.Split(big.NewInt(17))
	if err != nil {
		t.Fatal(err)
	}
	want := []Statement{{0, 1, 5}, {0, 2, 7}, {1, 2, 2}}
	if len(stmts) != len(want) {
		t.Fatalf("Split produced %d statements, want %d", len(stmts), len(want))
	}
	for i, s := range stmts {
		if s != want[i] {
			t.Errorf("statement %d = %+v, want %+v", i, s, want[i])
		}
	}
	// Figure 3's enumeration: 5 -> 5, 7 -> p1p2+7 = 13, 2 -> p1p2+p1p3+2 = 18.
	wantEnc := []uint64{5, 13, 18}
	for i, s := range stmts {
		enc, err := p.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		if enc != wantEnc[i] {
			t.Errorf("Encode(%+v) = %d, want %d", s, enc, wantEnc[i])
		}
	}
	v, m, err := p.Reconstruct(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cmp(big.NewInt(30)) != 0 || v.Cmp(big.NewInt(17)) != 0 {
		t.Errorf("Reconstruct = %v mod %v, want 17 mod 30", v, m)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := mustParams(t, DefaultPrimes(6, 8))
	for k := 0; k < p.NumPairs(); k++ {
		i, j := p.Pair(k)
		for _, x := range []uint64{0, 1, p.Modulus(Statement{I: i, J: j}) - 1} {
			s := Statement{I: i, J: j, X: x}
			enc, err := p.Encode(s)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := p.Decode(enc)
			if !ok || got != s {
				t.Errorf("Decode(Encode(%+v)) = %+v ok=%v", s, got, ok)
			}
		}
	}
}

func TestDecodeRejectsOutOfRange(t *testing.T) {
	p := mustParams(t, []uint64{2, 3, 5})
	if _, ok := p.Decode(p.Capacity()); ok {
		t.Error("Decode accepted value == Capacity")
	}
	if _, ok := p.Decode(1 << 62); ok {
		t.Error("Decode accepted huge value")
	}
	// Everything below capacity must decode.
	for w := uint64(0); w < p.Capacity(); w++ {
		if _, ok := p.Decode(w); !ok {
			t.Fatalf("Decode(%d) rejected in-range value", w)
		}
	}
}

func TestEncodeRejectsBadStatement(t *testing.T) {
	p := mustParams(t, []uint64{2, 3, 5})
	bad := []Statement{
		{I: 1, J: 0, X: 0}, // J <= I
		{I: 0, J: 3, X: 0}, // J out of range
		{I: 0, J: 1, X: 6}, // X >= 2*3
	}
	for _, s := range bad {
		if _, err := p.Encode(s); err == nil {
			t.Errorf("Encode(%+v) accepted invalid statement", s)
		}
	}
}

func TestSplitReconstructProperty(t *testing.T) {
	p := mustParams(t, DefaultPrimes(8, 12))
	maxW := p.MaxWatermark()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := new(big.Int).Rand(rng, maxW)
		stmts, err := p.Split(w)
		if err != nil {
			return false
		}
		v, m, err := p.Reconstruct(stmts)
		if err != nil {
			return false
		}
		return m.Cmp(maxW) == 0 && v.Cmp(w) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReconstructFromSubsetCoveringAllPrimes(t *testing.T) {
	// A spanning subset of pairs (a path over the prime nodes) already
	// determines W: the combined modulus is the full product.
	p := mustParams(t, DefaultPrimes(6, 10))
	w := big.NewInt(123456789)
	stmts, err := p.Split(w)
	if err != nil {
		t.Fatal(err)
	}
	var path []Statement
	for _, s := range stmts {
		if s.J == s.I+1 { // pairs (0,1),(1,2),...,(4,5): a spanning path
			path = append(path, s)
		}
	}
	if len(path) != 5 {
		t.Fatalf("picked %d path statements, want 5", len(path))
	}
	v, m, err := p.Reconstruct(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cmp(p.MaxWatermark()) != 0 {
		t.Errorf("modulus = %v, want full product %v", m, p.MaxWatermark())
	}
	if v.Cmp(w) != 0 {
		t.Errorf("value = %v, want %v", v, w)
	}
}

func TestReconstructDetectsInconsistency(t *testing.T) {
	p := mustParams(t, []uint64{2, 3, 5})
	stmts, _ := p.Split(big.NewInt(17))
	stmts[1].X = (stmts[1].X + 1) % p.Modulus(stmts[1]) // corrupt: now W ≡ 8 (mod 10), parity conflicts with 5 mod 6
	if _, _, err := p.Reconstruct(stmts); err == nil {
		t.Error("Reconstruct accepted inconsistent statements")
	}
}

func TestConsistentAndSharePrime(t *testing.T) {
	p := mustParams(t, []uint64{2, 3, 5, 7})
	stmts, _ := p.Split(big.NewInt(101))
	for i := range stmts {
		for j := range stmts {
			if !p.Consistent(stmts[i], stmts[j]) {
				t.Errorf("true statements %+v and %+v reported inconsistent", stmts[i], stmts[j])
			}
		}
	}
	// (0,1) and (0,2) share prime 0 and agree there.
	if !p.SharePrime(stmts[0], stmts[1]) {
		t.Error("SharePrime((0,1),(0,2)) = false, want true")
	}
	// (0,1) and (2,3) share nothing.
	var s23 Statement
	for _, s := range stmts {
		if s.I == 2 && s.J == 3 {
			s23 = s
		}
	}
	if p.SharePrime(stmts[0], s23) {
		t.Error("SharePrime((0,1),(2,3)) = true, want false")
	}
	// A corrupted residue that disagrees on the shared prime: flipping the
	// low bit changes the residue mod p1 = 2.
	bad := stmts[1]
	bad.X ^= 1
	if p.SharePrime(stmts[0], bad) {
		t.Error("SharePrime with disagreeing shared residue = true, want false")
	}
}

func TestDefaultPrimes(t *testing.T) {
	ps := DefaultPrimes(10, 13)
	if len(ps) != 10 {
		t.Fatalf("got %d primes", len(ps))
	}
	for i, p := range ps {
		if !isPrime(p) {
			t.Errorf("DefaultPrimes[%d] = %d not prime", i, p)
		}
		if p < 1<<12 || p > 1<<14 {
			t.Errorf("DefaultPrimes[%d] = %d not ~13 bits", i, p)
		}
		if i > 0 && ps[i-1] >= p {
			t.Errorf("primes not increasing at %d", i)
		}
	}
}

func TestSplitRejectsOversizeWatermark(t *testing.T) {
	p := mustParams(t, []uint64{2, 3, 5})
	if _, err := p.Split(big.NewInt(30)); err == nil {
		t.Error("Split accepted W == product of primes")
	}
	if _, err := p.Split(big.NewInt(-1)); err == nil {
		t.Error("Split accepted negative W")
	}
}

func TestCoveredPrimes(t *testing.T) {
	p := mustParams(t, []uint64{2, 3, 5, 7})
	got := p.CoveredPrimes([]Statement{{I: 0, J: 2}, {I: 2, J: 3}})
	want := []int{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("CoveredPrimes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CoveredPrimes = %v, want %v", got, want)
		}
	}
}

func TestCapacityMatchesPairSum(t *testing.T) {
	p := mustParams(t, []uint64{2, 3, 5})
	// 2*3 + 2*5 + 3*5 = 31
	if p.Capacity() != 31 {
		t.Errorf("Capacity = %d, want 31", p.Capacity())
	}
	if p.NumPairs() != 3 {
		t.Errorf("NumPairs = %d, want 3", p.NumPairs())
	}
}
