package crt

// Statement framing: a structural check field packed into the headroom
// bits of the 64-bit cipher block above the basis capacity.
//
// NewParams caps the enumeration capacity below 2^63, so every encoded
// statement leaves at least one — for realistic 16-bit-prime bases,
// twenty-plus — unused high bits in its block. Framing fills those bits
// with a deterministic function of the payload (a 16-bit magic constant
// mixed with a parity fold of the encoding, truncated to the available
// headroom), giving the recognizer a second structural rejection layer
// after decryption: a garbage window must now clear BOTH the capacity
// range check (~ capacity/2^payloadBits) and the check-field match
// (2^-(64-payloadBits)), i.e. pass with probability capacity/2^64 overall
// instead of capacity/2^payloadBits.
//
// The check is lossless by construction — Unframe(Frame(enc)) == enc for
// every enc < Capacity(), with no randomness anywhere — which is what
// lets the scan kernel apply it unconditionally: unlike the statistical
// popcount-style prefilters it can never reject a genuinely embedded
// piece. FuzzFramingLossless pins that contract.

// frameMagic is the 16-bit constant mixed into the check field; the fold
// of the payload is XORed in so the field also acts as a parity over the
// statement index and residue (a corrupted payload bit flips the fold
// with probability 1/2 per 16-bit column).
const frameMagic = 0x9d57

// frameFold16 collapses a payload to 16 parity bits (XOR of its four
// 16-bit columns).
func frameFold16(v uint64) uint64 {
	v ^= v >> 32
	v ^= v >> 16
	return v & 0xffff
}

// framePayloadBits returns the width of the payload field: the number of
// bits needed to represent every encoding in [0, Capacity()). Capacity is
// below 2^63 (enforced by NewParams), so at least one check bit exists.
// The value is fixed by the basis and memoized in NewParams: Unframe runs
// once per decrypted window, so this must stay a field load.
func (p *Params) framePayloadBits() uint {
	return p.frameShift
}

// frameCheck returns the expected check field for a payload: the magic ^
// parity fold, truncated to the headroom when fewer than 16 bits remain.
// When more than 16 bits of headroom exist the surplus high bits are
// simply required to be zero (the field is zero-extended), which the
// equality in Unframe enforces for free.
func (p *Params) frameCheck(enc uint64) uint64 {
	return (frameFold16(enc) ^ frameMagic) & p.frameCheckMask
}

// Frame packs an encoded statement into a full 64-bit block: the payload
// in the low bits, the check field in the headroom above it. The caller
// encrypts the framed block; Frame(Encode(s)) is the plaintext layout of
// every embedded piece.
func (p *Params) Frame(enc uint64) uint64 {
	return enc | p.frameCheck(enc)<<p.frameShift
}

// Unframe inverts Frame with validation: ok is false when the payload is
// outside the enumeration capacity or the check field does not match.
// During recognition this runs on every decrypted window before Decode
// and is the codec-level garbage filter; everything it touches is a
// memoized field, so the whole check is a handful of ALU ops.
func (p *Params) Unframe(w uint64) (enc uint64, ok bool) {
	enc = w & p.framePayload
	if enc >= p.frameCap || w>>p.frameShift != p.frameCheck(enc) {
		return 0, false
	}
	return enc, true
}

// FrameCheckBits reports how many high bits of a framed block are
// structurally constrained — the log2 rejection power framing adds on
// top of the capacity range check.
func (p *Params) FrameCheckBits() int {
	return 64 - int(p.framePayloadBits())
}

// FrameConsts is the flattened form of the framing check, published for
// vectorized Unframe implementations (the scan kernel's batched decode
// pass evaluates the check four windows at a time in AVX2). A window w
// passes iff w&Payload < Capacity and
// w>>Shift == (frameFold16(w&Payload) ^ Magic) & CheckMask — exactly
// Params.Unframe.
type FrameConsts struct {
	Shift                        uint64
	Payload, CheckMask, Capacity uint64
	Magic                        uint64
}

// FrameConstants returns the memoized framing constants; see FrameConsts.
func (p *Params) FrameConstants() FrameConsts {
	return FrameConsts{
		Shift:     uint64(p.frameShift),
		Payload:   p.framePayload,
		CheckMask: p.frameCheckMask,
		Capacity:  p.frameCap,
		Magic:     frameMagic,
	}
}
