package crt

import (
	"math/big"
	"testing"
	"testing/quick"
)

// TestConsistentMatchesBruteForce checks Consistent against the ground
// truth "some W satisfies both congruences" on a small basis where
// exhaustive search is feasible.
func TestConsistentMatchesBruteForce(t *testing.T) {
	p := mustParams(t, []uint64{2, 3, 5, 7})
	maxW := p.MaxWatermark().Int64() // 210
	stmts := func() []Statement {
		var out []Statement
		for k := 0; k < p.NumPairs(); k++ {
			i, j := p.Pair(k)
			m := p.Modulus(Statement{I: i, J: j})
			for x := uint64(0); x < m; x += 3 { // sample every 3rd residue
				out = append(out, Statement{I: i, J: j, X: x})
			}
		}
		return out
	}()
	satisfiable := func(a, b Statement) bool {
		ma, mb := int64(p.Modulus(a)), int64(p.Modulus(b))
		for w := int64(0); w < maxW; w++ {
			if w%ma == int64(a.X) && w%mb == int64(b.X) {
				return true
			}
		}
		return false
	}
	checked := 0
	for i := 0; i < len(stmts); i += 2 {
		for j := i; j < len(stmts); j += 3 {
			a, b := stmts[i], stmts[j]
			got := p.Consistent(a, b)
			want := satisfiable(a, b)
			if got != want {
				t.Fatalf("Consistent(%+v, %+v) = %v, brute force says %v", a, b, got, want)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

// TestEncodeDecodeBijection: the enumeration is a bijection between
// statements and [0, Capacity).
func TestEncodeDecodeBijection(t *testing.T) {
	p := mustParams(t, []uint64{3, 5, 7})
	seen := make(map[uint64]bool)
	for k := 0; k < p.NumPairs(); k++ {
		i, j := p.Pair(k)
		m := p.Modulus(Statement{I: i, J: j})
		for x := uint64(0); x < m; x++ {
			enc, err := p.Encode(Statement{I: i, J: j, X: x})
			if err != nil {
				t.Fatal(err)
			}
			if seen[enc] {
				t.Fatalf("encoding collision at %d", enc)
			}
			seen[enc] = true
		}
	}
	if uint64(len(seen)) != p.Capacity() {
		t.Fatalf("enumeration covers %d values, capacity %d", len(seen), p.Capacity())
	}
}

// TestReconstructAgreesWithModulo (quick): for random W, reconstruction
// from any subset containing a spanning set returns W.
func TestReconstructAgreesWithModulo(t *testing.T) {
	p := mustParams(t, DefaultPrimes(5, 10))
	maxW := p.MaxWatermark()
	f := func(seedA, seedB uint32) bool {
		w := new(big.Int).SetUint64(uint64(seedA)<<32 | uint64(seedB))
		w.Mod(w, maxW)
		stmts, err := p.Split(w)
		if err != nil {
			return false
		}
		// Drop statements deterministically but keep a spanning path.
		var subset []Statement
		for _, s := range stmts {
			if s.J == s.I+1 || (seedA+uint32(s.I*7+s.J))%3 == 0 {
				subset = append(subset, s)
			}
		}
		v, m, err := p.Reconstruct(subset)
		return err == nil && m.Cmp(maxW) == 0 && v.Cmp(w) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
