package iofault

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
)

// Per-record framing for the JSONL logs. Every line of a framed log —
// header included — is
//
//	crc32c(payload) as 8 lowercase hex chars, one space, payload, '\n'
//
// The checksum is CRC32C (Castagnoli) over the payload bytes only, so a
// record's frame depends on nothing but its content: framed logs stay
// sort-comparable across worker counts exactly like the unframed ones
// were. The frame is what lets replay tell a torn tail (the writer died
// mid-append; truncate and continue) from mid-log corruption (bytes
// rotted or were overwritten after they were synced; quarantine): a
// complete line that fails its checksum, followed by at least one later
// line that verifies, cannot be a torn tail.

// frameOverhead is the per-line cost of the frame: 8 hex digits + space.
const frameOverhead = 9

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends payload's framed wire form (checksum, space,
// payload, newline) to dst and returns the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	var sum [4]byte
	crc := crc32.Checksum(payload, castagnoli)
	sum[0], sum[1], sum[2], sum[3] = byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc)
	var hexSum [8]byte
	hex.Encode(hexSum[:], sum[:])
	dst = append(dst, hexSum[:]...)
	dst = append(dst, ' ')
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// Frame returns payload's framed wire form.
func Frame(payload []byte) []byte {
	return AppendFrame(make([]byte, 0, len(payload)+frameOverhead+1), payload)
}

// Unframe verifies one complete line (without its trailing newline) and
// returns the payload. The returned slice aliases line.
func Unframe(line []byte) ([]byte, error) {
	if len(line) < frameOverhead || line[8] != ' ' {
		return nil, errors.New("iofault: line carries no checksum frame")
	}
	var sum [4]byte
	if _, err := hex.Decode(sum[:], line[:8]); err != nil {
		return nil, errors.New("iofault: malformed checksum frame")
	}
	want := uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
	payload := line[frameOverhead:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("iofault: checksum mismatch: line carries %08x, payload sums to %08x", want, got)
	}
	return payload, nil
}

// CorruptError reports verified mid-log corruption: a complete record
// line failed its checksum while a later line verified, so the damage
// cannot be a torn tail. Replay surfaces it instead of truncating, and
// the serve daemon quarantines the job it belongs to.
type CorruptError struct {
	Path   string // log file, when known
	Offset int64  // byte offset of the corrupt line
	Line   int64  // 1-based line number of the corrupt line
	Reason string
}

func (e *CorruptError) Error() string {
	where := e.Path
	if where == "" {
		where = "log"
	}
	return fmt.Sprintf("iofault: %s corrupt at line %d (offset %d): %s", where, e.Line, e.Offset, e.Reason)
}

// IsCorrupt reports whether err wraps a *CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// LogScanner walks the complete, checksum-verified lines of a framed log
// buffer, one payload per Next. It stops at the first line that is
// unterminated (torn tail: Err stays nil, Good marks the valid prefix)
// or fails verification; a failed line followed by at least one later
// complete line that verifies is classified as mid-log corruption and
// reported through Err. Decoders for all four log schemas (grade
// journal, stream chunk journal, tournament cell journal, trace stream)
// share this walk, so the torn-vs-corrupt rule cannot drift between
// them.
type LogScanner struct {
	data []byte
	path string
	pos  int64
	line int64
	err  *CorruptError
	done bool
}

// NewLogScanner scans data; path is used only to attribute corruption.
func NewLogScanner(data []byte, path string) *LogScanner {
	return &LogScanner{data: data, path: path}
}

// Next returns the next verified payload. The returned slice aliases the
// scanned buffer. After it returns false, consult Err.
func (s *LogScanner) Next() ([]byte, bool) {
	if s.done {
		return nil, false
	}
	rest := s.data[s.pos:]
	i := bytes.IndexByte(rest, '\n')
	if i < 0 {
		s.done = true // torn or absent tail
		return nil, false
	}
	payload, err := Unframe(rest[:i])
	if err != nil {
		s.done = true
		// Torn-vs-corrupt: junk at the tail of a killed process can
		// contain newlines, so a bad complete line alone is still treated
		// as a torn tail. Only a later verifying line proves the log
		// continued past this one — then the damage is mid-log.
		la := rest[i+1:]
		for {
			j := bytes.IndexByte(la, '\n')
			if j < 0 {
				break
			}
			if _, lerr := Unframe(la[:j]); lerr == nil {
				s.err = &CorruptError{Path: s.path, Offset: s.pos, Line: s.line + 1, Reason: err.Error()}
				break
			}
			la = la[j+1:]
		}
		return nil, false
	}
	s.pos += int64(i) + 1
	s.line++
	return payload, true
}

// Good is the byte length of the verified prefix consumed so far — the
// offset replay truncates a torn log back to.
func (s *LogScanner) Good() int64 { return s.pos }

// Lines is the number of verified lines returned so far.
func (s *LogScanner) Lines() int64 { return s.line }

// Err returns the corruption verdict: nil after a clean walk or a torn
// tail, a *CorruptError when mid-log corruption was proven.
func (s *LogScanner) Err() error {
	if s.err == nil {
		return nil
	}
	return s.err
}
