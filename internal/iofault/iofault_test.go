package iofault

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"v":2,"type":"header"}`),
		[]byte(""),
		[]byte("x"),
		bytes.Repeat([]byte("a"), 4096),
	}
	for _, p := range payloads {
		line := Frame(p)
		if line[len(line)-1] != '\n' {
			t.Fatalf("framed line not newline-terminated: %q", line)
		}
		got, err := Unframe(line[:len(line)-1])
		if err != nil {
			t.Fatalf("Unframe(%q): %v", line, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round trip: got %q want %q", got, p)
		}
	}
}

func TestUnframeRejects(t *testing.T) {
	good := Frame([]byte(`{"a":1}`))
	good = good[:len(good)-1]
	cases := []struct {
		name string
		line []byte
	}{
		{"too short", []byte("abc")},
		{"no space", bytes.Replace(good, []byte(" "), []byte("x"), 1)},
		{"bad hex", append([]byte("zzzzzzzz "), good[9:]...)},
		{"flipped payload byte", func() []byte {
			c := append([]byte(nil), good...)
			c[len(c)-2] ^= 0x01
			return c
		}()},
		{"flipped checksum byte", func() []byte {
			c := append([]byte(nil), good...)
			c[0] = "0123456789abcdef"[(bytes.IndexByte([]byte("0123456789abcdef"), c[0])+1)%16]
			return c
		}()},
		{"unframed json", []byte(`{"a":1}`)},
	}
	for _, tc := range cases {
		if _, err := Unframe(tc.line); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.line)
		}
	}
}

func framedLog(payloads ...string) []byte {
	var b []byte
	for _, p := range payloads {
		b = AppendFrame(b, []byte(p))
	}
	return b
}

// TestLogScannerTornVsCorrupt pins the discrimination rule: a bad
// complete line is a torn tail unless a later complete line verifies.
func TestLogScannerTornVsCorrupt(t *testing.T) {
	l1, l2, l3 := `{"n":1}`, `{"n":2}`, `{"n":3}`
	clean := framedLog(l1, l2, l3)

	scanAll := func(data []byte) (lines []string, good int64, err error) {
		s := NewLogScanner(data, "test.jsonl")
		for {
			p, ok := s.Next()
			if !ok {
				return lines, s.Good(), s.Err()
			}
			lines = append(lines, string(p))
		}
	}

	// Clean log: every line, no error.
	lines, good, err := scanAll(clean)
	if err != nil || len(lines) != 3 || good != int64(len(clean)) {
		t.Fatalf("clean: lines=%v good=%d err=%v", lines, good, err)
	}

	// Unterminated tail: torn, no error.
	torn := clean[:len(clean)-3]
	lines, good, err = scanAll(torn)
	wantGood := int64(len(framedLog(l1, l2)))
	if err != nil || len(lines) != 2 || good != wantGood {
		t.Fatalf("torn: lines=%v good=%d err=%v", lines, good, err)
	}

	// Terminated junk at the tail (kill -9 splattered bytes with a
	// newline): still torn — nothing after it verifies.
	junkTail := append(append([]byte(nil), clean...), []byte("\x00garbage\n{more}\n")...)
	lines, good, err = scanAll(junkTail)
	if err != nil || len(lines) != 3 || good != int64(len(clean)) {
		t.Fatalf("junk tail: lines=%v good=%d err=%v", lines, good, err)
	}

	// A corrupted line with verified lines after it: mid-log corruption.
	mid := framedLog(l1)
	mid = append(mid, []byte("00000000 {rot}\n")...)
	mid = append(mid, framedLog(l3)...)
	lines, good, err = scanAll(mid)
	if !IsCorrupt(err) {
		t.Fatalf("mid-log corruption not detected: lines=%v err=%v", lines, err)
	}
	var ce *CorruptError
	errors.As(err, &ce)
	if ce.Line != 2 || ce.Offset != int64(len(framedLog(l1))) || ce.Path != "test.jsonl" {
		t.Fatalf("corrupt error coordinates: %+v", ce)
	}
	if len(lines) != 1 || good != int64(len(framedLog(l1))) {
		t.Fatalf("prefix before corruption: lines=%v good=%d", lines, good)
	}

	// A bit flip inside an otherwise intact log is also mid-log.
	flipped := append([]byte(nil), clean...)
	flipped[len(framedLog(l1))+12] ^= 0x20
	if _, _, err := scanAll(flipped); !IsCorrupt(err) {
		t.Fatalf("flipped byte not detected as corruption: %v", err)
	}
}

func TestWriteFileAtomicSyncsParentDir(t *testing.T) {
	dir := t.TempDir()
	rec := &recordingFS{FS: OS}
	path := filepath.Join(dir, "result.json")
	if err := WriteFileAtomic(rec, path, []byte("{}\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "{}\n" {
		t.Fatalf("published content: %q, %v", data, err)
	}
	// The regression this test exists for: the parent directory must be
	// fsynced after the rename, or the rename itself can be lost.
	wantTail := []string{"sync", "close", "rename", "syncdir:" + dir}
	if len(rec.ops) < len(wantTail) || !reflect.DeepEqual(rec.ops[len(rec.ops)-4:], wantTail) {
		t.Fatalf("op sequence %v, want tail %v", rec.ops, wantTail)
	}
}

func TestWriteFileAtomicFailedRenameKeepsOld(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "result.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS, []Fault{{Op: OpRename, Kind: KindTornRename}})
	err := WriteFileAtomic(ffs, path, []byte("new"))
	if !IsStorageFault(err) {
		t.Fatalf("torn rename surfaced as %v", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "old" {
		t.Fatalf("destination damaged by failed rename: %q", data)
	}
}

// recordingFS logs the op sequence flowing through an FS.
type recordingFS struct {
	FS
	ops []string
}

func (r *recordingFS) CreateTemp(dir, pattern string) (File, error) {
	r.ops = append(r.ops, "createtemp")
	f, err := r.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &recordingFile{File: f, rec: r}, nil
}

func (r *recordingFS) Rename(oldpath, newpath string) error {
	r.ops = append(r.ops, "rename")
	return r.FS.Rename(oldpath, newpath)
}

func (r *recordingFS) SyncDir(dir string) error {
	r.ops = append(r.ops, "syncdir:"+dir)
	return r.FS.SyncDir(dir)
}

type recordingFile struct {
	File
	rec *recordingFS
}

func (f *recordingFile) Write(p []byte) (int, error) {
	f.rec.ops = append(f.rec.ops, "write")
	return f.File.Write(p)
}

func (f *recordingFile) Sync() error {
	f.rec.ops = append(f.rec.ops, "sync")
	return f.File.Sync()
}

func (f *recordingFile) Close() error {
	f.rec.ops = append(f.rec.ops, "close")
	return f.File.Close()
}

func TestFaultFSSchedule(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS, []Fault{
		{Op: OpWrite, Kind: KindENOSPC, After: 1},
		{Op: OpSync, Kind: KindSyncFail},
	})
	f, err := ffs.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1 (before After): %v", err)
	}
	if _, err := f.Write([]byte("b")); !IsStorageFault(err) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2: %v, want injected ENOSPC", err)
	}
	// Spent: the third write succeeds again.
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("write 3 (fault spent): %v", err)
	}
	if err := f.Sync(); !IsStorageFault(err) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync: %v, want injected EIO", err)
	}
	if got := ffs.Fired(); len(got) != 2 {
		t.Fatalf("fired = %v", got)
	}
	ffs.Disarm()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after disarm: %v", err)
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	ffs := NewFaultFS(OS, []Fault{{Op: OpWrite, Kind: KindShortWrite}})
	f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !IsStorageFault(err) || n != 5 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "01234" {
		t.Fatalf("on-disk bytes after short write: %q", data)
	}
}

func TestFaultFSReadFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	content := framedLog(`{"n":1}`, `{"n":2}`)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS, []Fault{{Op: OpRead, Kind: KindReadFlip}})
	got1, err := ffs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got1, content) {
		t.Fatal("read flip changed nothing")
	}
	// On-disk bytes are untouched; only the read was corrupted.
	onDisk, _ := os.ReadFile(path)
	if !bytes.Equal(onDisk, content) {
		t.Fatal("read flip damaged the file itself")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a, b := Schedule(42, 6), Schedule(42, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	c := Schedule(43, 6)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds, identical schedules: %v", a)
	}
	for _, f := range a {
		if f.Op != OpWrite && f.Op != OpSync && f.Op != OpRename && f.Op != OpRead {
			t.Fatalf("schedule picked unexpected op %v", f.Op)
		}
	}
}

func TestIsStorageFault(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{syscall.ENOSPC, true},
		{fmt.Errorf("wrap: %w", syscall.EIO), true},
		{&InjectedError{Op: "write", Path: "x", Err: syscall.ENOSPC}, true},
		{fmt.Errorf("deep: %w", &InjectedError{Op: "sync", Path: "y", Err: syscall.EIO}), true},
		{&CorruptError{Path: "z", Line: 2}, false},
	}
	for _, tc := range cases {
		if got := IsStorageFault(tc.err); got != tc.want {
			t.Errorf("IsStorageFault(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
