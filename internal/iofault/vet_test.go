package iofault

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoUncheckedSyncOrClose is the durability vet: in the packages that
// write journaled state (internal/jobs, internal/obs, and this package),
// a `f.Sync()` or `f.Close()` whose error is discarded is a silent hole
// in the durability contract — a failed fsync means the bytes may not be
// on disk, and a failed close on a written file can surface the same.
// The vet walks the AST and fails on any bare expression-statement call
// to Sync or Close in non-test files. Deliberate best-effort discards
// must be spelled `_ = f.Close()` (visible intent) or deferred (cleanup
// on a path whose primary error is already decided).
func TestNoUncheckedSyncOrClose(t *testing.T) {
	for _, dir := range []string{".", "../jobs", "../obs"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			for _, v := range vetFile(t, path) {
				t.Errorf("%s: unchecked %s() — handle the error, or write `_ = x.%s()` to discard deliberately", v.pos, v.method, v.method)
			}
		}
	}
}

type vetHit struct {
	pos    string
	method string
}

func vetFile(t *testing.T, path string) []vetHit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	var hits []vetHit
	ast.Inspect(f, func(n ast.Node) bool {
		// Only bare expression statements discard the result; assignments,
		// returns, and defers (DeferStmt, a different node) are fine.
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if m := sel.Sel.Name; m == "Sync" || m == "Close" {
			hits = append(hits, vetHit{pos: fmt.Sprint(fset.Position(stmt.Pos())), method: m})
		}
		return true
	})
	return hits
}
