// Package iofault is the storage seam under every durable artifact in the
// repository: an injectable filesystem interface (FS), the CRC32C
// per-record framing every JSONL log shares, and a deterministic
// fault-injecting FS for storage-chaos testing. The jobs engine, the
// tournament engine, the obs trace writer and the serve daemon all write
// through an FS value, so a test (or the `pathmark inject -class storage`
// harness) can make any write, sync, rename or read fail on a seeded
// schedule and assert the recovery contract — byte-identical resume or
// explicit quarantine, never silent divergence.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// File is the writable-file surface the WAL and atomic writers need.
// *os.File satisfies it.
type File interface {
	io.Writer
	io.Closer
	Name() string
	Sync() error
}

// FS abstracts the filesystem operations durable state flows through.
// The default implementation is OS; FaultFS wraps any FS with a seeded
// fault schedule.
type FS interface {
	// OpenFile mirrors os.OpenFile for append/create paths.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp mirrors os.CreateTemp; atomic publishes stage here.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile mirrors os.ReadFile; replay and resume read through it so
	// read-side corruption (bit rot) is injectable too.
	ReadFile(name string) ([]byte, error)
	Stat(name string) (os.FileInfo, error)
	Truncate(name string, size int64) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making a previous rename in it durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)          { return os.ReadFile(name) }
func (osFS) Stat(name string) (os.FileInfo, error)         { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error        { return os.Truncate(name, size) }
func (osFS) Rename(oldpath, newpath string) error          { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                      { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error  { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFileAtomic publishes data at path so readers see either the old
// content or the new, never a torn mix: temp file in the destination
// directory, write, fsync, close, rename — then fsync the parent
// directory, without which the rename itself can be lost on a crash (the
// directory entry lives in the directory's own blocks). Every atomic
// save path in the repository (job results, stream results, tournament
// matrices, serve request records, keyfiles) funnels through this
// sequence.
func WriteFileAtomic(fs FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("iofault: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		_ = tmp.Close()
		fs.Remove(tmpName)
		return fmt.Errorf("iofault: atomic write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		fs.Remove(tmpName)
		return fmt.Errorf("iofault: atomic write %s: %w", path, err)
	}
	if err := fs.Rename(tmpName, path); err != nil {
		fs.Remove(tmpName)
		return fmt.Errorf("iofault: atomic write %s: %w", path, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("iofault: atomic write %s: sync dir: %w", path, err)
	}
	return nil
}

// IsStorageFault classifies an error as disk pressure or media failure —
// the conditions the serve daemon degrades to read-only mode on, as
// opposed to corruption (see IsCorrupt) or plain logic errors. Injected
// faults count, so chaos runs exercise the same degradation paths a real
// full disk would.
func IsStorageFault(err error) bool {
	if err == nil {
		return false
	}
	var ie *InjectedError
	if errors.As(err, &ie) {
		return true
	}
	return errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EIO) ||
		errors.Is(err, syscall.EROFS) ||
		errors.Is(err, syscall.EDQUOT)
}
