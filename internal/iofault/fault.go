package iofault

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Op names a filesystem operation a fault can target.
type Op uint8

const (
	OpOpen Op = iota
	OpWrite
	OpSync
	OpRename
	OpRead
	OpTruncate
	OpSyncDir
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRead:
		return "read"
	case OpTruncate:
		return "truncate"
	case OpSyncDir:
		return "syncdir"
	default:
		return "op?"
	}
}

// Kind is the failure mode a fault injects.
type Kind uint8

const (
	// KindENOSPC fails a write with syscall.ENOSPC after consuming none of
	// the buffer.
	KindENOSPC Kind = iota
	// KindShortWrite writes half the buffer, then fails with ENOSPC — the
	// torn-record case fail-stop recovery must truncate away.
	KindShortWrite
	// KindSyncFail fails Sync (or SyncDir) with EIO: the bytes may or may
	// not be durable, so the writer must treat the handle as poisoned.
	KindSyncFail
	// KindTornRename fails a rename with EIO without renaming — the
	// destination keeps its old content, the temp file stays.
	KindTornRename
	// KindReadFlip corrupts a ReadFile result by flipping one bit,
	// deterministically in the path and length — silent media rot, the
	// case per-record checksums exist for.
	KindReadFlip
	// KindOpenFail fails OpenFile/CreateTemp with ENOSPC.
	KindOpenFail
)

func (k Kind) String() string {
	switch k {
	case KindENOSPC:
		return "enospc"
	case KindShortWrite:
		return "short-write"
	case KindSyncFail:
		return "sync-fail"
	case KindTornRename:
		return "torn-rename"
	case KindReadFlip:
		return "read-flip"
	case KindOpenFail:
		return "open-fail"
	default:
		return "kind?"
	}
}

// Fault is one scheduled injection: the After+1-th matching call to Op
// (optionally filtered to paths containing Path) fails with Kind. Each
// fault fires at most once.
type Fault struct {
	Op    Op
	Kind  Kind
	After int
	Path  string // substring filter; "" matches every path
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s#%d:%s", f.Op, f.After, f.Kind)
	if f.Path != "" {
		s += "@" + f.Path
	}
	return s
}

// InjectedError marks an error as fault-injected. It wraps the errno a
// real failure of the same kind would carry (ENOSPC, EIO), so callers
// classifying with errors.Is see exactly what production would show
// them; IsStorageFault additionally recognizes the injection itself.
type InjectedError struct {
	Op   string
	Path string
	Err  error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("iofault: injected %s failure on %s: %v", e.Op, e.Path, e.Err)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// FaultFS wraps an inner FS with a deterministic fault schedule. It is
// safe for concurrent use; each scheduled fault fires exactly once, on
// the first matching call past its After count.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	faults []faultState
	fired  []Fault
	armed  bool
}

type faultState struct {
	Fault
	seen  int
	spent bool
}

// NewFaultFS builds a fault-injecting view of inner, armed immediately.
func NewFaultFS(inner FS, faults []Fault) *FaultFS {
	ffs := &FaultFS{inner: inner, armed: true}
	for _, f := range faults {
		ffs.faults = append(ffs.faults, faultState{Fault: f})
	}
	return ffs
}

// Disarm stops all further injection (recovery phases run on the real
// semantics); already-fired faults stay recorded.
func (f *FaultFS) Disarm() {
	f.mu.Lock()
	f.armed = false
	f.mu.Unlock()
}

// Arm re-enables injection after a Disarm.
func (f *FaultFS) Arm() {
	f.mu.Lock()
	f.armed = true
	f.mu.Unlock()
}

// Fired returns the faults that actually triggered, in firing order.
func (f *FaultFS) Fired() []Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Fault(nil), f.fired...)
}

// check advances the schedule for one (op, path) call and returns the
// fault to inject, if any.
func (f *FaultFS) check(op Op, path string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.armed {
		return nil
	}
	for i := range f.faults {
		st := &f.faults[i]
		if st.spent || st.Op != op {
			continue
		}
		if st.Path != "" && !strings.Contains(path, st.Path) {
			continue
		}
		st.seen++
		if st.seen > st.After {
			st.spent = true
			f.fired = append(f.fired, st.Fault)
			fault := st.Fault
			return &fault
		}
	}
	return nil
}

func injected(op Op, path string, errno error) error {
	return &InjectedError{Op: op.String(), Path: path, Err: errno}
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if ft := f.check(OpOpen, name); ft != nil {
		return nil, injected(OpOpen, name, syscall.ENOSPC)
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if ft := f.check(OpOpen, dir); ft != nil {
		return nil, injected(OpOpen, dir, syscall.ENOSPC)
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return data, err
	}
	if ft := f.check(OpRead, name); ft != nil && len(data) > 0 {
		// Deterministic rot: the flipped position depends only on the path
		// and content length, so the same schedule corrupts the same byte.
		flipped := append([]byte(nil), data...)
		i := int(crc32.Checksum([]byte(name), castagnoli)+uint32(len(data))) % len(flipped)
		flipped[i] ^= 0x40
		return flipped, nil
	}
	return data, err
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

func (f *FaultFS) Truncate(name string, size int64) error {
	if ft := f.check(OpTruncate, name); ft != nil {
		return injected(OpTruncate, name, syscall.EIO)
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if ft := f.check(OpRename, newpath); ft != nil {
		// Torn rename: nothing moved; the destination's previous content
		// (or absence) stands and the temp file is left for cleanup.
		return injected(OpRename, newpath, syscall.EIO)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error                     { return f.inner.Remove(name) }
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

func (f *FaultFS) SyncDir(dir string) error {
	if ft := f.check(OpSyncDir, dir); ft != nil {
		return injected(OpSyncDir, dir, syscall.EIO)
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads Write and Sync back through the schedule.
type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ft := ff.fs.check(OpWrite, ff.Name()); ft != nil {
		switch ft.Kind {
		case KindShortWrite:
			n, _ := ff.File.Write(p[:len(p)/2])
			return n, injected(OpWrite, ff.Name(), syscall.ENOSPC)
		default:
			return 0, injected(OpWrite, ff.Name(), syscall.ENOSPC)
		}
	}
	return ff.File.Write(p)
}

func (ff *faultFile) Sync() error {
	if ft := ff.fs.check(OpSync, ff.Name()); ft != nil {
		return injected(OpSync, ff.Name(), syscall.EIO)
	}
	return ff.File.Sync()
}

// Schedule derives n faults deterministically from seed, spread over the
// write, sync, rename and read operations with small After counts — the
// randomized leg of the storage chaos harness. The same seed always
// yields the same schedule.
func Schedule(seed int64, n int) []Fault {
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, 0, n)
	for i := 0; i < n; i++ {
		var f Fault
		switch rng.Intn(5) {
		case 0:
			f = Fault{Op: OpWrite, Kind: KindENOSPC}
		case 1:
			f = Fault{Op: OpWrite, Kind: KindShortWrite}
		case 2:
			f = Fault{Op: OpSync, Kind: KindSyncFail}
		case 3:
			f = Fault{Op: OpRename, Kind: KindTornRename}
		case 4:
			f = Fault{Op: OpRead, Kind: KindReadFlip}
		}
		f.After = rng.Intn(8)
		faults = append(faults, f)
	}
	return faults
}
