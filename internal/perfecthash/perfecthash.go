// Package perfecthash constructs minimal perfect hash functions over small
// sets of 32-bit keys (return addresses of branch-function call sites,
// paper §4.1). The branch function uses the hash to index the XOR table
// T[h(a)] = a ⊕ b stored in the binary's data section, so lookups must be
// collision-free, O(1), and expressible as a short fixed instruction
// sequence in the simulated ISA.
//
// The construction is hash-and-displace: keys are bucketed by a first-level
// hash, buckets are placed largest-first, and each bucket searches for a
// 16-bit displacement that maps all of its keys onto free slots of the
// output table. The function is described by the displacement array plus
// two mixing seeds, which the branch-function code generator materializes
// into data-section tables and straight-line arithmetic.
package perfecthash

import (
	"errors"
	"fmt"
	"sort"
)

// Func is a minimal perfect hash function over the key set it was built
// from: Lookup maps each key to a distinct index in [0, N).
type Func struct {
	Seed1, Seed2  uint32
	Displacements []uint16 // indexed by first-level bucket
	N             uint32   // number of keys == table size
}

// mix is the shared scrambling primitive; it must stay in lockstep with the
// instruction sequence emitted by the branch-function code generator.
func mix(key, seed uint32) uint32 {
	h := key ^ seed
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// Bucket returns the first-level bucket of key.
func (f *Func) Bucket(key uint32) uint32 {
	return mix(key, f.Seed1) % uint32(len(f.Displacements))
}

// Lookup returns the perfect-hash index of key in [0, N). For keys outside
// the construction set the result is an arbitrary in-range index.
func (f *Func) Lookup(key uint32) uint32 {
	d := uint32(f.Displacements[f.Bucket(key)])
	return (mix(key, f.Seed2) + d) % f.N
}

// maxDisplacement bounds the per-bucket displacement search; the
// displacement table stores uint16 values.
const maxDisplacement = 1 << 16

// Build constructs a minimal perfect hash over keys. Keys must be distinct
// and non-empty. The construction is deterministic for a given key set.
func Build(keys []uint32) (*Func, error) {
	n := uint32(len(keys))
	if n == 0 {
		return nil, errors.New("perfecthash: empty key set")
	}
	seen := make(map[uint32]bool, n)
	for _, k := range keys {
		if seen[k] {
			return nil, fmt.Errorf("perfecthash: duplicate key %#x", k)
		}
		seen[k] = true
	}
	// Bucket count ~ n/2 keeps buckets small while the displacement table
	// stays compact; at least 1.
	nb := n/2 + 1
	for seed1 := uint32(1); seed1 < 64; seed1++ {
		f, ok := tryBuild(keys, nb, seed1)
		if ok {
			return f, nil
		}
	}
	return nil, errors.New("perfecthash: construction failed (pathological key set)")
}

func tryBuild(keys []uint32, nb, seed1 uint32) (*Func, bool) {
	n := uint32(len(keys))
	seed2 := seed1*0x9e3779b1 + 0x7f4a7c15
	buckets := make([][]uint32, nb)
	for _, k := range keys {
		b := mix(k, seed1) % nb
		buckets[b] = append(buckets[b], k)
	}
	order := make([]int, nb)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if len(buckets[order[a]]) != len(buckets[order[b]]) {
			return len(buckets[order[a]]) > len(buckets[order[b]])
		}
		return order[a] < order[b]
	})
	used := make([]bool, n)
	disp := make([]uint16, nb)
	for _, bi := range order {
		bucket := buckets[bi]
		if len(bucket) == 0 {
			continue
		}
		placed := false
	searchLoop:
		for d := 0; d < maxDisplacement; d++ {
			slots := make([]uint32, 0, len(bucket))
			for _, k := range bucket {
				s := (mix(k, seed2) + uint32(d)) % n
				if used[s] {
					continue searchLoop
				}
				for _, prev := range slots {
					if prev == s {
						continue searchLoop
					}
				}
				slots = append(slots, s)
			}
			for _, s := range slots {
				used[s] = true
			}
			disp[bi] = uint16(d)
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}
	return &Func{Seed1: seed1, Seed2: seed2, Displacements: disp, N: n}, true
}

// Verify checks that f is a bijection from keys onto [0, N); it is used by
// tests and by the branch-function builder as a post-condition.
func (f *Func) Verify(keys []uint32) error {
	if uint32(len(keys)) != f.N {
		return fmt.Errorf("perfecthash: %d keys but N=%d", len(keys), f.N)
	}
	hit := make([]bool, f.N)
	for _, k := range keys {
		i := f.Lookup(k)
		if i >= f.N {
			return fmt.Errorf("perfecthash: key %#x maps out of range: %d", k, i)
		}
		if hit[i] {
			return fmt.Errorf("perfecthash: collision at index %d (key %#x)", i, k)
		}
		hit[i] = true
	}
	return nil
}
