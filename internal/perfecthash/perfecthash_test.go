package perfecthash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildSmallSets(t *testing.T) {
	cases := [][]uint32{
		{42},
		{1, 2},
		{0x08048000, 0x08048005, 0x0804800a},
		{0, 1, 2, 3, 4, 5, 6, 7},
	}
	for _, keys := range cases {
		f, err := Build(keys)
		if err != nil {
			t.Fatalf("Build(%v): %v", keys, err)
		}
		if err := f.Verify(keys); err != nil {
			t.Errorf("Verify(%v): %v", keys, err)
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("Build(nil) succeeded")
	}
	if _, err := Build([]uint32{7, 7}); err == nil {
		t.Error("Build with duplicates succeeded")
	}
}

func TestBuildRandomSetsProperty(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		size := int(sizeRaw)%512 + 1
		rng := rand.New(rand.NewSource(seed))
		keySet := make(map[uint32]bool)
		for len(keySet) < size {
			keySet[rng.Uint32()] = true
		}
		keys := make([]uint32, 0, size)
		for k := range keySet {
			keys = append(keys, k)
		}
		ph, err := Build(keys)
		if err != nil {
			return false
		}
		return ph.Verify(keys) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuildClusteredAddresses(t *testing.T) {
	// Branch-function keys are return addresses: clustered, small strides.
	var keys []uint32
	addr := uint32(0x08048000)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 513; i++ {
		keys = append(keys, addr)
		addr += uint32(2 + rng.Intn(9))
	}
	f, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Verify(keys); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	keys := []uint32{10, 20, 30, 40, 50}
	a, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seed1 != b.Seed1 || a.Seed2 != b.Seed2 {
		t.Error("Build is not deterministic for identical key sets")
	}
	for _, k := range keys {
		if a.Lookup(k) != b.Lookup(k) {
			t.Errorf("Lookup(%d) differs between builds", k)
		}
	}
}

func TestLookupInRangeForForeignKeys(t *testing.T) {
	keys := []uint32{100, 200, 300}
	f, err := Build(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 1000; i++ {
		if got := f.Lookup(i); got >= f.N {
			t.Fatalf("Lookup(%d) = %d out of range", i, got)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keySet := make(map[uint32]bool)
	for len(keySet) < 512 {
		keySet[rng.Uint32()] = true
	}
	keys := make([]uint32, 0, 512)
	for k := range keySet {
		keys = append(keys, k)
	}
	f, err := Build(keys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var acc uint32
	for i := 0; i < b.N; i++ {
		acc ^= f.Lookup(keys[i%len(keys)])
	}
	_ = acc
}
