package bitstring

import (
	"bytes"
	"testing"
)

// FuzzWindows64 cross-checks the incremental window iterators — the
// recognizer's hot path — against the direct Word64/Stride reference on
// arbitrary bit vectors and (possibly nonsensical) range bounds. The
// iterators must never panic, must clamp ranges, and must produce exactly
// the windows the per-index reference produces.
func FuzzWindows64(f *testing.F) {
	f.Add([]byte{}, 0, 0, 0)
	f.Add([]byte{0xFF, 0x00, 0xAA}, 0, 100, 3)
	f.Add(bytes.Repeat([]byte{0x5A}, 20), 5, 60, 0)
	f.Add(bytes.Repeat([]byte{0xC3, 0x17}, 12), -4, 1<<20, 1)
	f.Fuzz(func(t *testing.T, data []byte, lo, hi, phase int) {
		b := New(len(data) * 8)
		for _, by := range data {
			for i := 0; i < 8; i++ {
				b.Append(by&(1<<i) != 0)
			}
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("built vector does not validate: %v", err)
		}

		// Raw windows: iterator vs Word64 reference.
		var got []uint64
		var starts []int
		b.Windows64Range(lo, hi, func(start int, w uint64) bool {
			got = append(got, w)
			starts = append(starts, start)
			return true
		})
		clo, chi := lo, hi
		if clo < 0 {
			clo = 0
		}
		if max := b.NumWindows64(); chi > max {
			chi = max
		}
		want := 0
		for s := clo; s < chi; s++ {
			ref, err := b.TryWord64(s)
			if err != nil {
				t.Fatalf("TryWord64(%d) inside clamped range failed: %v", s, err)
			}
			if want >= len(got) || got[want] != ref || starts[want] != s {
				t.Fatalf("window %d: iterator disagrees with Word64", s)
			}
			want++
		}
		if want != len(got) {
			t.Fatalf("iterator produced %d windows, reference %d", len(got), want)
		}

		// Stride-2 windows: zero-copy iterator vs materialized Stride.
		p := phase & 1
		ref := b.Stride(2, p)
		var sGot []uint64
		b.StrideWindows64Range(2, p, lo, hi, func(start int, w uint64) bool {
			sGot = append(sGot, w)
			return true
		})
		slo, shi := lo, hi
		if slo < 0 {
			slo = 0
		}
		if max := b.StrideNumWindows64(2, p); shi > max {
			shi = max
		}
		i := 0
		for s := slo; s < shi; s++ {
			rw, err := ref.TryWord64(s)
			if err != nil {
				t.Fatalf("stride reference TryWord64(%d): %v", s, err)
			}
			if i >= len(sGot) || sGot[i] != rw {
				t.Fatalf("stride window %d: iterator disagrees with materialized Stride", s)
			}
			i++
		}
		if i != len(sGot) {
			t.Fatalf("stride iterator produced %d windows, reference %d", len(sGot), i)
		}
	})
}
