package bitstring

// Stride-2 packing for the recognizer's batched scan kernel. The scalar
// scan walks the two stride-2 phases of a trace through
// StrideWindows64Range, gathering every window bit-by-bit; the batched
// kernel instead materializes each phase once as a contiguous bit vector
// (one word-parallel pass over the trace) and then scans it stride-1,
// which lets the same incremental window roll and block-gather code
// serve all three scan tasks.

// Words exposes the backing words of the vector: bit i of the vector is
// bit i%64 of Words()[i/64], and bits at or beyond Len() in the last
// word are zero (the package invariant). The slice is shared, not
// copied — callers must treat it as read-only. It exists for scan
// kernels that stream whole words instead of per-bit accessors.
func (b *Bits) Words() []uint64 { return b.words }

// compactEven compresses the 32 even-position bits of x (bits 0, 2, ...,
// 62) into the low 32 bits, preserving order — the classic parallel
// bit-extract ladder for the 0x5555... mask.
func compactEven(x uint64) uint64 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0f0f0f0f0f0f0f0f
	x = (x | x>>4) & 0x00ff00ff00ff00ff
	x = (x | x>>8) & 0x0000ffff0000ffff
	x = (x | x>>16) & 0x00000000ffffffff
	return x
}

// PackStride2 materializes the stride-2, phase-p subsequence as a new
// vector, equivalent to Stride(2, phase) but word-parallel: every output
// word packs the even-position bits of two input words (shifted by the
// phase), so the pass costs a few ALU ops per 64 trace bits instead of a
// per-bit Append. phase must be 0 or 1.
func (b *Bits) PackStride2(phase int) *Bits {
	return b.PackStride2Into(nil, phase)
}

// PackStride2Into is PackStride2 recycling dst's storage when its word
// capacity suffices (a nil dst allocates fresh). Every output word is
// fully overwritten, so a recycled vector carries no state from its
// previous contents; scan callers that repack phases per call pool the
// vectors through this to keep the pack pass allocation-free.
func (b *Bits) PackStride2Into(dst *Bits, phase int) *Bits {
	outN := b.StrideLen(2, phase) // panics on invalid phase
	nw := (outN + 63) / 64
	out := dst
	if out == nil {
		out = &Bits{}
	}
	if cap(out.words) < nw {
		out.words = make([]uint64, nw)
	}
	out.words = out.words[:nw]
	out.n = outN
	for k := range out.words {
		// Output bits 64k..64k+63 are input bits phase+2(64k)..phase+2(64k)+127,
		// i.e. the even positions of input words 2k and 2k+1 after the
		// phase shift.
		var w uint64
		if i := 2 * k; i < len(b.words) {
			w = compactEven(b.words[i] >> uint(phase))
		}
		if i := 2*k + 1; i < len(b.words) {
			w |= compactEven(b.words[i]>>uint(phase)) << 32
		}
		out.words[k] = w
	}
	// The zero-tail invariant already holds (input tails are zero), but
	// mask defensively so a future invariant change cannot leak bits.
	if off := uint(outN % 64); off != 0 {
		out.words[len(out.words)-1] &= (1 << off) - 1
	}
	return out
}
