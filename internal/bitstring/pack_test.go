package bitstring

import (
	"math/rand"
	"testing"
)

// TestPackStride2MatchesStride pins the word-parallel packing against the
// per-bit reference across lengths straddling word boundaries and both
// phases.
func TestPackStride2MatchesStride(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	lengths := []int{0, 1, 2, 3, 63, 64, 65, 127, 128, 129, 255, 256, 257, 1000, 4096, 4097}
	for _, n := range lengths {
		b := New(n)
		for i := 0; i < n; i++ {
			b.Append(rng.Intn(2) == 1)
		}
		for phase := 0; phase < 2; phase++ {
			if phase >= 1 && n == 0 {
				continue // StrideLen requires phase < k only; phase 1 of empty is fine
			}
			want := b.Stride(2, phase)
			got := b.PackStride2(phase)
			if got.Len() != want.Len() {
				t.Fatalf("n=%d phase=%d: PackStride2 len %d, Stride len %d", n, phase, got.Len(), want.Len())
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("n=%d phase=%d: packed vector invalid: %v", n, phase, err)
			}
			if got.String() != want.String() {
				t.Fatalf("n=%d phase=%d: packed bits differ\n got %s\nwant %s", n, phase, got, want)
			}
		}
	}
}

// TestPackStride2Windows checks the property the batched kernel actually
// relies on: scanning the packed phase stride-1 visits exactly the same
// windows as StrideWindows64 over the original trace.
func TestPackStride2Windows(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	b := New(777)
	for i := 0; i < 777; i++ {
		b.Append(rng.Intn(2) == 1)
	}
	for phase := 0; phase < 2; phase++ {
		packed := b.PackStride2(phase)
		if got, want := packed.NumWindows64(), b.StrideNumWindows64(2, phase); got != want {
			t.Fatalf("phase %d: packed has %d windows, stride view has %d", phase, got, want)
		}
		var wantWindows []uint64
		b.StrideWindows64(2, phase, func(start int, w uint64) bool {
			wantWindows = append(wantWindows, w)
			return true
		})
		i := 0
		packed.Windows64(func(start int, w uint64) bool {
			if w != wantWindows[i] {
				t.Fatalf("phase %d window %d: packed %#x, stride %#x", phase, i, w, wantWindows[i])
			}
			i++
			return true
		})
		if i != len(wantWindows) {
			t.Fatalf("phase %d: packed scan visited %d windows, want %d", phase, i, len(wantWindows))
		}
	}
}

// TestWordsAccessor checks the documented layout of the shared backing
// slice.
func TestWordsAccessor(t *testing.T) {
	b := New(100)
	for i := 0; i < 100; i++ {
		b.Append(i%3 == 0)
	}
	words := b.Words()
	if want := (b.Len() + 63) / 64; len(words) != want {
		t.Fatalf("Words returned %d words for %d bits, want %d", len(words), b.Len(), want)
	}
	for i := 0; i < b.Len(); i++ {
		if got := words[i/64]>>(uint(i)%64)&1 == 1; got != b.Bit(i) {
			t.Fatalf("bit %d: Words says %v, Bit says %v", i, got, b.Bit(i))
		}
	}
	if tail := words[len(words)-1] >> uint(b.Len()%64); tail != 0 {
		t.Fatalf("nonzero tail bits %#x beyond Len", tail)
	}
}

func TestPackStride2InvalidPhase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for phase 2")
		}
	}()
	New(10).PackStride2(2)
}

func BenchmarkPackStride2(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	bits := New(1 << 20)
	for i := 0; i < 1<<20; i++ {
		bits.Append(rng.Intn(2) == 1)
	}
	b.SetBytes(1 << 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bits.PackStride2(i & 1)
	}
}

func BenchmarkStrideReference(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	bits := New(1 << 20)
	for i := 0; i < 1<<20; i++ {
		bits.Append(rng.Intn(2) == 1)
	}
	b.SetBytes(1 << 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bits.Stride(2, i&1)
	}
}
