package bitstring

import (
	"strings"
	"testing"
)

func TestTryBit(t *testing.T) {
	b, _ := FromString("1011")
	for i, want := range []bool{true, false, true, true} {
		got, err := b.TryBit(i)
		if err != nil || got != want {
			t.Errorf("TryBit(%d) = %v, %v; want %v, nil", i, got, err, want)
		}
	}
	for _, i := range []int{-1, 4, 1 << 30} {
		if _, err := b.TryBit(i); err == nil {
			t.Errorf("TryBit(%d) should fail", i)
		}
	}
}

func TestTryWord64(t *testing.T) {
	b := FromUint64(0xDEADBEEFCAFEF00D)
	b.Append(true)
	v, err := b.TryWord64(1)
	if err != nil {
		t.Fatalf("TryWord64(1): %v", err)
	}
	if want := b.Word64(1); v != want {
		t.Errorf("TryWord64(1) = %#x, want %#x", v, want)
	}
	for _, i := range []int{-1, 2, 65} {
		if _, err := b.TryWord64(i); err == nil {
			t.Errorf("TryWord64(%d) should fail", i)
		}
	}
}

func TestFromWords(t *testing.T) {
	b, err := FromWords([]uint64{^uint64(0), ^uint64(0)}, 70)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 70 || b.Count() != 70 {
		t.Errorf("got len %d count %d, want 70/70 (tail must be masked)", b.Len(), b.Count())
	}
	if err := b.Validate(); err != nil {
		t.Errorf("FromWords result should validate: %v", err)
	}
	if _, err := FromWords([]uint64{1}, 70); err == nil {
		t.Error("short word slice should be rejected")
	}
	if _, err := FromWords([]uint64{1, 2}, 64); err == nil {
		t.Error("long word slice should be rejected")
	}
	if _, err := FromWords(nil, -1); err == nil {
		t.Error("negative length should be rejected")
	}
}

func TestValidate(t *testing.T) {
	var nilBits *Bits
	if err := nilBits.Validate(); err == nil {
		t.Error("nil vector should not validate")
	}
	good, _ := FromString(strings.Repeat("10", 100))
	if err := good.Validate(); err != nil {
		t.Errorf("API-built vector should validate: %v", err)
	}
	// Corrupt the shape the way a fault injector (or a decoding bug)
	// could: claim more bits than the backing words hold.
	bad := &Bits{words: []uint64{1}, n: 200}
	if err := bad.Validate(); err == nil {
		t.Error("under-backed vector should not validate")
	}
	tail := &Bits{words: []uint64{^uint64(0)}, n: 10}
	if err := tail.Validate(); err == nil {
		t.Error("nonzero tail bits should not validate")
	}
}

func TestTruncate(t *testing.T) {
	b, _ := FromString(strings.Repeat("1", 130))
	if err := b.Truncate(65); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 65 || b.Count() != 65 {
		t.Errorf("after Truncate(65): len %d count %d", b.Len(), b.Count())
	}
	if err := b.Validate(); err != nil {
		t.Errorf("truncated vector should validate: %v", err)
	}
	// Appending after truncation must not resurrect the cleared tail.
	b.Append(false)
	if b.Bit(65) {
		t.Error("appended bit should be 0")
	}
	if err := b.Truncate(200); err == nil {
		t.Error("growing via Truncate should fail")
	}
	if err := b.Truncate(-1); err == nil {
		t.Error("negative Truncate should fail")
	}
	if err := b.Truncate(0); err != nil || b.Len() != 0 {
		t.Errorf("Truncate(0): err %v len %d", err, b.Len())
	}
}
