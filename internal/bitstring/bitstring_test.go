package bitstring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAppendAndBit(t *testing.T) {
	b := New(0)
	pattern := []bool{true, false, true, true, false, false, true}
	for _, bit := range pattern {
		b.Append(bit)
	}
	if b.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(pattern))
	}
	for i, want := range pattern {
		if got := b.Bit(i); got != want {
			t.Errorf("Bit(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestFromString(t *testing.T) {
	b, err := FromString("01010110")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "01010110" {
		t.Errorf("String = %q, want %q", got, "01010110")
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
	if _, err := FromString("01x"); err == nil {
		t.Error("FromString accepted invalid rune")
	}
}

func TestWord64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := FromUint64(v)
		return b.Len() == 64 && b.Word64(0) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWord64UnalignedOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := New(0)
	var ref []bool
	for i := 0; i < 300; i++ {
		bit := rng.Intn(2) == 1
		b.Append(bit)
		ref = append(ref, bit)
	}
	for start := 0; start+64 <= len(ref); start++ {
		var want uint64
		for i := 0; i < 64; i++ {
			if ref[start+i] {
				want |= 1 << uint(i)
			}
		}
		if got := b.Word64(start); got != want {
			t.Fatalf("Word64(%d) = %#x, want %#x", start, got, want)
		}
	}
}

func TestWindows64Count(t *testing.T) {
	b := New(0)
	for i := 0; i < 100; i++ {
		b.Append(i%3 == 0)
	}
	var n int
	b.Windows64(func(start int, _ uint64) bool {
		if start != n {
			t.Fatalf("window start %d, want %d", start, n)
		}
		n++
		return true
	})
	if n != 100-64+1 {
		t.Errorf("windows = %d, want %d", n, 100-64+1)
	}
}

func TestWindows64EarlyStop(t *testing.T) {
	b := New(0)
	for i := 0; i < 200; i++ {
		b.Append(false)
	}
	var n int
	b.Windows64(func(int, uint64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop after %d windows, want 5", n)
	}
}

func TestIndexOfWord64(t *testing.T) {
	b := New(0)
	for i := 0; i < 17; i++ {
		b.Append(false)
	}
	const v = 0xdeadbeefcafef00d
	b.AppendWord64(v)
	for i := 0; i < 9; i++ {
		b.Append(true)
	}
	if got := b.IndexOfWord64(v); got != 17 {
		t.Errorf("IndexOfWord64 = %d, want 17", got)
	}
	if got := b.IndexOfWord64(0xffffffffffffffff); got != -1 {
		t.Errorf("IndexOfWord64(all ones) = %d, want -1", got)
	}
}

func TestSet(t *testing.T) {
	b := New(0)
	for i := 0; i < 70; i++ {
		b.Append(false)
	}
	b.Set(65, true)
	if !b.Bit(65) || b.Bit(64) || b.Bit(66) {
		t.Error("Set(65) did not flip exactly bit 65")
	}
	b.Set(65, false)
	if b.Count() != 0 {
		t.Error("Set(65,false) did not clear")
	}
}

func TestCloneIndependence(t *testing.T) {
	b, _ := FromString("1010")
	c := b.Clone()
	c.Set(0, false)
	c.Append(true)
	if b.String() != "1010" {
		t.Errorf("clone mutated original: %q", b.String())
	}
	if c.String() != "00101" {
		t.Errorf("clone = %q, want %q", c.String(), "00101")
	}
}

func TestAppendBits(t *testing.T) {
	a, _ := FromString("110")
	b, _ := FromString("01")
	a.AppendBits(b)
	if a.String() != "11001" {
		t.Errorf("AppendBits = %q, want %q", a.String(), "11001")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bit out of range did not panic")
		}
	}()
	b := New(0)
	b.Bit(0)
}

func TestStride(t *testing.T) {
	b, _ := FromString("0110101101")
	even := b.Stride(2, 0)
	odd := b.Stride(2, 1)
	if even.String() != "01110" {
		t.Errorf("Stride(2,0) = %q, want %q", even.String(), "01110")
	}
	if odd.String() != "10011" {
		t.Errorf("Stride(2,1) = %q, want %q", odd.String(), "10011")
	}
	if got := b.Stride(3, 2).String(); got != "100" {
		t.Errorf("Stride(3,2) = %q, want %q", got, "100")
	}
}

func TestStrideExactSizing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 63, 64, 65, 127, 128, 129, 300} {
		b := New(n)
		for i := 0; i < n; i++ {
			b.Append(rng.Intn(2) == 1)
		}
		for _, c := range []struct{ k, phase int }{{1, 0}, {2, 0}, {2, 1}, {3, 2}, {7, 5}} {
			s := b.Stride(c.k, c.phase)
			want := b.StrideLen(c.k, c.phase)
			if s.Len() != want {
				t.Fatalf("n=%d Stride(%d,%d).Len() = %d, want %d", n, c.k, c.phase, s.Len(), want)
			}
			// The pre-sized capacity must be exact: no over-allocation.
			if wantWords := (want + 63) / 64; cap(s.words) != wantWords {
				t.Errorf("n=%d Stride(%d,%d) allocated %d words, want %d",
					n, c.k, c.phase, cap(s.words), wantWords)
			}
		}
	}
}

// refWindows collects windows via per-index Word64 reassembly — the
// reference the rolling implementations must match.
func refWindows(b *Bits) map[int]uint64 {
	out := map[int]uint64{}
	for i := 0; i+64 <= b.Len(); i++ {
		out[i] = b.Word64(i)
	}
	return out
}

func TestWindows64RollingMatchesWord64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 63, 64, 65, 200, 513} {
		b := New(n)
		for i := 0; i < n; i++ {
			b.Append(rng.Intn(2) == 1)
		}
		want := refWindows(b)
		got := 0
		b.Windows64(func(start int, w uint64) bool {
			if want[start] != w {
				t.Fatalf("n=%d: window %d = %#x, want %#x", n, start, w, want[start])
			}
			got++
			return true
		})
		if got != len(want) || got != b.NumWindows64() {
			t.Errorf("n=%d: %d windows, want %d (NumWindows64=%d)", n, got, len(want), b.NumWindows64())
		}
	}
}

func TestWindows64RangeShardingCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := New(0)
	for i := 0; i < 500; i++ {
		b.Append(rng.Intn(2) == 1)
	}
	want := refWindows(b)
	// Shard the scan into uneven chunks; the union must equal the full scan.
	seen := map[int]uint64{}
	for _, r := range [][2]int{{-10, 100}, {100, 101}, {101, 350}, {350, 1 << 30}} {
		b.Windows64Range(r[0], r[1], func(start int, w uint64) bool {
			if _, dup := seen[start]; dup {
				t.Fatalf("window %d visited twice", start)
			}
			seen[start] = w
			return true
		})
	}
	if len(seen) != len(want) {
		t.Fatalf("sharded scan saw %d windows, want %d", len(seen), len(want))
	}
	for start, w := range want {
		if seen[start] != w {
			t.Errorf("window %d = %#x, want %#x", start, seen[start], w)
		}
	}
	// Empty and inverted ranges yield nothing.
	b.Windows64Range(10, 10, func(int, uint64) bool { t.Fatal("empty range"); return false })
	b.Windows64Range(20, 10, func(int, uint64) bool { t.Fatal("inverted range"); return false })
}

func TestStrideWindows64MatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 64, 127, 128, 129, 260, 401} {
		b := New(n)
		for i := 0; i < n; i++ {
			b.Append(rng.Intn(2) == 1)
		}
		for _, c := range []struct{ k, phase int }{{1, 0}, {2, 0}, {2, 1}, {3, 1}} {
			want := refWindows(b.Stride(c.k, c.phase))
			got := 0
			b.StrideWindows64(c.k, c.phase, func(start int, w uint64) bool {
				if want[start] != w {
					t.Fatalf("n=%d stride(%d,%d): window %d = %#x, want %#x",
						n, c.k, c.phase, start, w, want[start])
				}
				got++
				return true
			})
			if got != len(want) || got != b.StrideNumWindows64(c.k, c.phase) {
				t.Errorf("n=%d stride(%d,%d): %d windows, want %d", n, c.k, c.phase, got, len(want))
			}
		}
	}
}

func TestStrideWindows64RangeAndEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := New(0)
	for i := 0; i < 400; i++ {
		b.Append(rng.Intn(2) == 1)
	}
	want := refWindows(b.Stride(2, 1))
	seen := map[int]uint64{}
	for _, r := range [][2]int{{0, 50}, {50, 1 << 30}} {
		b.StrideWindows64Range(2, 1, r[0], r[1], func(start int, w uint64) bool {
			seen[start] = w
			return true
		})
	}
	if len(seen) != len(want) {
		t.Fatalf("sharded stride scan saw %d windows, want %d", len(seen), len(want))
	}
	for start, w := range want {
		if seen[start] != w {
			t.Errorf("stride window %d = %#x, want %#x", start, seen[start], w)
		}
	}
	n := 0
	b.StrideWindows64(2, 0, func(int, uint64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("stride early stop after %d windows, want 3", n)
	}
}

func TestStrideInterleavedWordRecovery(t *testing.T) {
	// The recognizer's use case: payload bits interleaved with constant
	// control bits at stride 2 must be recoverable as a contiguous word
	// in one phase.
	const v = 0x0123456789abcdef
	b := New(0)
	b.Append(true) // phase shift
	for i := 0; i < 64; i++ {
		b.Append(v&(1<<uint(i)) != 0)
		b.Append(false) // control bit
	}
	if b.Stride(2, 1).IndexOfWord64(v) < 0 {
		t.Error("interleaved payload not found in its stride-2 phase")
	}
	if b.IndexOfWord64(v) >= 0 {
		t.Error("interleaved payload unexpectedly contiguous at stride 1")
	}
}

func TestStridePanicsOnBadArgs(t *testing.T) {
	b, _ := FromString("0101")
	for _, c := range []struct{ k, phase int }{{0, 0}, {-1, 0}, {2, 2}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Stride(%d,%d) did not panic", c.k, c.phase)
				}
			}()
			b.Stride(c.k, c.phase)
		}()
	}
}

// randomBits builds a deterministic pseudo-random vector of n bits.
func randomBits(seed int64, n int) *Bits {
	rng := rand.New(rand.NewSource(seed))
	b := New(n)
	for i := 0; i < n; i++ {
		b.Append(rng.Intn(2) == 1)
	}
	return b
}

// collectWindows runs the ranged iterator and records (start, window)
// pairs.
func collectWindows(iter func(fn func(int, uint64) bool)) (starts []int, windows []uint64) {
	iter(func(start int, w uint64) bool {
		starts = append(starts, start)
		windows = append(windows, w)
		return true
	})
	return
}

// TestStrideWindows64RangeClamping is the boundary-safety contract of the
// ranged window iterators: out-of-range [lo, hi) arguments — negative lo,
// hi past the phase's window count, inverted or empty ranges — clamp to
// the valid span instead of panicking or fabricating windows, on
// odd-length strings at both stride-2 phases (where the two phases have
// different lengths, so an hi valid for phase 0 overruns phase 1).
func TestStrideWindows64RangeClamping(t *testing.T) {
	for _, n := range []int{127, 128, 129, 131, 191} {
		b := randomBits(int64(n), n)
		for phase := 0; phase < 2; phase++ {
			count := b.StrideNumWindows64(2, phase)
			wantStarts, wantWindows := collectWindows(func(fn func(int, uint64) bool) {
				b.StrideWindows64Range(2, phase, 0, count, fn)
			})
			if len(wantStarts) != count {
				t.Fatalf("n=%d phase=%d: full range yields %d windows, want %d",
					n, phase, len(wantStarts), count)
			}
			for _, bounds := range [][2]int{
				{-5, count},     // negative lo
				{0, count + 7},  // hi past the window count
				{-100, 1 << 30}, // both wild
				{-1, count + 1}, // one past each edge
				{0, count},      // exact
			} {
				gotStarts, gotWindows := collectWindows(func(fn func(int, uint64) bool) {
					b.StrideWindows64Range(2, phase, bounds[0], bounds[1], fn)
				})
				if len(gotStarts) != len(wantStarts) {
					t.Errorf("n=%d phase=%d range %v: %d windows, want %d",
						n, phase, bounds, len(gotStarts), len(wantStarts))
					continue
				}
				for i := range gotStarts {
					if gotStarts[i] != wantStarts[i] || gotWindows[i] != wantWindows[i] {
						t.Errorf("n=%d phase=%d range %v: window %d differs", n, phase, bounds, i)
						break
					}
				}
			}
			// Empty and inverted ranges visit nothing.
			for _, bounds := range [][2]int{{count, count + 10}, {5, 5}, {7, 3}, {count, 0}} {
				if starts, _ := collectWindows(func(fn func(int, uint64) bool) {
					b.StrideWindows64Range(2, phase, bounds[0], bounds[1], fn)
				}); len(starts) != 0 {
					t.Errorf("n=%d phase=%d range %v: visited %d windows, want none",
						n, phase, bounds, len(starts))
				}
			}
		}
		// The raw iterator shares the clamp.
		count := b.NumWindows64()
		full, _ := collectWindows(func(fn func(int, uint64) bool) { b.Windows64Range(0, count, fn) })
		wild, _ := collectWindows(func(fn func(int, uint64) bool) { b.Windows64Range(-9, count+9, fn) })
		if len(full) != count || len(wild) != count {
			t.Errorf("n=%d: raw clamp broken: %d / %d windows, want %d", n, len(full), len(wild), count)
		}
	}
}
