package bitstring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAppendAndBit(t *testing.T) {
	b := New(0)
	pattern := []bool{true, false, true, true, false, false, true}
	for _, bit := range pattern {
		b.Append(bit)
	}
	if b.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(pattern))
	}
	for i, want := range pattern {
		if got := b.Bit(i); got != want {
			t.Errorf("Bit(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestFromString(t *testing.T) {
	b, err := FromString("01010110")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "01010110" {
		t.Errorf("String = %q, want %q", got, "01010110")
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
	if _, err := FromString("01x"); err == nil {
		t.Error("FromString accepted invalid rune")
	}
}

func TestWord64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := FromUint64(v)
		return b.Len() == 64 && b.Word64(0) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWord64UnalignedOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := New(0)
	var ref []bool
	for i := 0; i < 300; i++ {
		bit := rng.Intn(2) == 1
		b.Append(bit)
		ref = append(ref, bit)
	}
	for start := 0; start+64 <= len(ref); start++ {
		var want uint64
		for i := 0; i < 64; i++ {
			if ref[start+i] {
				want |= 1 << uint(i)
			}
		}
		if got := b.Word64(start); got != want {
			t.Fatalf("Word64(%d) = %#x, want %#x", start, got, want)
		}
	}
}

func TestWindows64Count(t *testing.T) {
	b := New(0)
	for i := 0; i < 100; i++ {
		b.Append(i%3 == 0)
	}
	var n int
	b.Windows64(func(start int, _ uint64) bool {
		if start != n {
			t.Fatalf("window start %d, want %d", start, n)
		}
		n++
		return true
	})
	if n != 100-64+1 {
		t.Errorf("windows = %d, want %d", n, 100-64+1)
	}
}

func TestWindows64EarlyStop(t *testing.T) {
	b := New(0)
	for i := 0; i < 200; i++ {
		b.Append(false)
	}
	var n int
	b.Windows64(func(int, uint64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop after %d windows, want 5", n)
	}
}

func TestIndexOfWord64(t *testing.T) {
	b := New(0)
	for i := 0; i < 17; i++ {
		b.Append(false)
	}
	const v = 0xdeadbeefcafef00d
	b.AppendWord64(v)
	for i := 0; i < 9; i++ {
		b.Append(true)
	}
	if got := b.IndexOfWord64(v); got != 17 {
		t.Errorf("IndexOfWord64 = %d, want 17", got)
	}
	if got := b.IndexOfWord64(0xffffffffffffffff); got != -1 {
		t.Errorf("IndexOfWord64(all ones) = %d, want -1", got)
	}
}

func TestSet(t *testing.T) {
	b := New(0)
	for i := 0; i < 70; i++ {
		b.Append(false)
	}
	b.Set(65, true)
	if !b.Bit(65) || b.Bit(64) || b.Bit(66) {
		t.Error("Set(65) did not flip exactly bit 65")
	}
	b.Set(65, false)
	if b.Count() != 0 {
		t.Error("Set(65,false) did not clear")
	}
}

func TestCloneIndependence(t *testing.T) {
	b, _ := FromString("1010")
	c := b.Clone()
	c.Set(0, false)
	c.Append(true)
	if b.String() != "1010" {
		t.Errorf("clone mutated original: %q", b.String())
	}
	if c.String() != "00101" {
		t.Errorf("clone = %q, want %q", c.String(), "00101")
	}
}

func TestAppendBits(t *testing.T) {
	a, _ := FromString("110")
	b, _ := FromString("01")
	a.AppendBits(b)
	if a.String() != "11001" {
		t.Errorf("AppendBits = %q, want %q", a.String(), "11001")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bit out of range did not panic")
		}
	}()
	b := New(0)
	b.Bit(0)
}

func TestStride(t *testing.T) {
	b, _ := FromString("0110101101")
	even := b.Stride(2, 0)
	odd := b.Stride(2, 1)
	if even.String() != "01110" {
		t.Errorf("Stride(2,0) = %q, want %q", even.String(), "01110")
	}
	if odd.String() != "10011" {
		t.Errorf("Stride(2,1) = %q, want %q", odd.String(), "10011")
	}
	if got := b.Stride(3, 2).String(); got != "100" {
		t.Errorf("Stride(3,2) = %q, want %q", got, "100")
	}
}

func TestStrideInterleavedWordRecovery(t *testing.T) {
	// The recognizer's use case: payload bits interleaved with constant
	// control bits at stride 2 must be recoverable as a contiguous word
	// in one phase.
	const v = 0x0123456789abcdef
	b := New(0)
	b.Append(true) // phase shift
	for i := 0; i < 64; i++ {
		b.Append(v&(1<<uint(i)) != 0)
		b.Append(false) // control bit
	}
	if b.Stride(2, 1).IndexOfWord64(v) < 0 {
		t.Error("interleaved payload not found in its stride-2 phase")
	}
	if b.IndexOfWord64(v) >= 0 {
		t.Error("interleaved payload unexpectedly contiguous at stride 1")
	}
}

func TestStridePanicsOnBadArgs(t *testing.T) {
	b, _ := FromString("0101")
	for _, c := range []struct{ k, phase int }{{0, 0}, {-1, 0}, {2, 2}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Stride(%d,%d) did not panic", c.k, c.phase)
				}
			}()
			b.Stride(c.k, c.phase)
		}()
	}
}
