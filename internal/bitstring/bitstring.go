// Package bitstring provides compact bit-vector utilities shared by the
// trace decoder, the watermark piece codecs, and the recognizer's
// sliding-window scan.
//
// Bits are addressed from 0. Within the watermarking pipeline a "piece" is
// always a 64-bit block; Word64/PutWord64 convert between bit positions and
// uint64 values with bit 0 of the block stored at the lowest bit index
// (LSB-first, matching the loop code generator, which emits the least
// significant bit of a piece first).
package bitstring

import (
	"fmt"
	"strings"
)

// Bits is an append-only growable bit vector.
type Bits struct {
	words []uint64
	n     int
}

// New returns an empty bit vector with capacity for at least n bits.
func New(n int) *Bits {
	if n < 0 {
		n = 0
	}
	return &Bits{words: make([]uint64, 0, (n+63)/64)}
}

// FromString parses a string of '0' and '1' runes into a bit vector.
// Any other rune is rejected.
func FromString(s string) (*Bits, error) {
	b := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
			b.Append(false)
		case '1':
			b.Append(true)
		default:
			return nil, fmt.Errorf("bitstring: invalid rune %q at index %d", r, i)
		}
	}
	return b, nil
}

// FromUint64 returns a 64-bit vector holding v LSB-first.
func FromUint64(v uint64) *Bits {
	b := New(64)
	b.AppendWord64(v)
	return b
}

// FromWords builds a vector of exactly n bits over the given backing words,
// validating the shape instead of trusting the caller: len(words) must be
// ceil(n/64), and bits of the last word beyond n are cleared so the result
// satisfies the package invariant that unused tail bits are zero. The words
// slice is copied. This is the bounds-validating constructor adversarial
// inputs (deserialized or corrupted traces) must come through.
func FromWords(words []uint64, n int) (*Bits, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitstring: negative length %d", n)
	}
	if want := (n + 63) / 64; len(words) != want {
		return nil, fmt.Errorf("bitstring: %d bits need %d words, got %d", n, want, len(words))
	}
	b := &Bits{words: make([]uint64, len(words)), n: n}
	copy(b.words, words)
	if off := uint(n % 64); off != 0 {
		b.words[len(b.words)-1] &= (1 << off) - 1
	}
	return b, nil
}

// Len reports the number of bits stored.
func (b *Bits) Len() int { return b.n }

// Append adds one bit at the end.
func (b *Bits) Append(bit bool) {
	word, off := b.n/64, uint(b.n%64)
	if word == len(b.words) {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[word] |= 1 << off
	}
	b.n++
}

// AppendWord64 appends the 64 bits of v, least significant first.
func (b *Bits) AppendWord64(v uint64) {
	for i := 0; i < 64; i++ {
		b.Append(v&(1<<uint(i)) != 0)
	}
}

// AppendBits appends all bits of other, in order.
func (b *Bits) AppendBits(other *Bits) {
	for i := 0; i < other.n; i++ {
		b.Append(other.Bit(i))
	}
}

// Bit returns the bit at index i. It panics if i is out of range; code
// handling untrusted indices should use TryBit instead.
func (b *Bits) Bit(i int) bool {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitstring: index %d out of range [0,%d)", i, b.n))
	}
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

// TryBit is the checked form of Bit: out-of-range indices — including
// indices derived from attacked or corrupted traces — return an error
// instead of panicking.
func (b *Bits) TryBit(i int) (bool, error) {
	if i < 0 || i >= b.n {
		return false, fmt.Errorf("bitstring: index %d out of range [0,%d)", i, b.n)
	}
	return b.words[i/64]&(1<<uint(i%64)) != 0, nil
}

// Set assigns the bit at index i. It panics if i is out of range.
func (b *Bits) Set(i int, bit bool) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitstring: index %d out of range [0,%d)", i, b.n))
	}
	if bit {
		b.words[i/64] |= 1 << uint(i%64)
	} else {
		b.words[i/64] &^= 1 << uint(i%64)
	}
}

// Word64 extracts the 64 bits starting at index i as a uint64, LSB-first.
// It panics unless 0 <= i and i+64 <= Len().
func (b *Bits) Word64(i int) uint64 {
	if i < 0 || i+64 > b.n {
		panic(fmt.Sprintf("bitstring: window [%d,%d) out of range [0,%d)", i, i+64, b.n))
	}
	word, off := i/64, uint(i%64)
	v := b.words[word] >> off
	if off != 0 {
		v |= b.words[word+1] << (64 - off)
	}
	return v
}

// TryWord64 is the checked form of Word64: windows that fall outside the
// vector return an error instead of panicking.
func (b *Bits) TryWord64(i int) (uint64, error) {
	if i < 0 || i+64 > b.n {
		return 0, fmt.Errorf("bitstring: window [%d,%d) out of range [0,%d)", i, i+64, b.n)
	}
	return b.Word64(i), nil
}

// Validate checks the internal invariants that the window iterators rely
// on: a non-negative length, a backing array of exactly ceil(n/64) words,
// and zeroed tail bits beyond the length. Vectors built through the
// package API always validate; Validate exists so code paths fed by
// deserialized or fault-injected vectors can reject a corrupt shape with
// an error instead of panicking (or silently reading garbage) inside the
// scan loops.
func (b *Bits) Validate() error {
	if b == nil {
		return fmt.Errorf("bitstring: nil vector")
	}
	if b.n < 0 {
		return fmt.Errorf("bitstring: negative length %d", b.n)
	}
	if want := (b.n + 63) / 64; len(b.words) < want {
		return fmt.Errorf("bitstring: %d bits need %d backing words, have %d", b.n, want, len(b.words))
	}
	if off := uint(b.n % 64); off != 0 {
		if tail := b.words[b.n/64] &^ ((1 << off) - 1); tail != 0 {
			return fmt.Errorf("bitstring: nonzero tail bits %#x beyond length %d", tail, b.n)
		}
	}
	return nil
}

// Truncate shortens the vector to n bits, clearing the dropped tail so the
// zero-tail invariant holds. Truncating to more than Len() or to a
// negative length is an error.
func (b *Bits) Truncate(n int) error {
	if n < 0 || n > b.n {
		return fmt.Errorf("bitstring: cannot truncate %d-bit vector to %d bits", b.n, n)
	}
	b.n = n
	b.words = b.words[:(n+63)/64]
	if off := uint(n % 64); off != 0 {
		b.words[len(b.words)-1] &= (1 << off) - 1
	}
	return nil
}

// NumWindows64 returns the number of 64-bit windows in the vector:
// max(0, Len()-63). Window starts range over [0, NumWindows64()).
func (b *Bits) NumWindows64() int {
	if b.n < 64 {
		return 0
	}
	return b.n - 63
}

// Windows64 calls fn for every 64-bit window of the vector, in order of
// starting index, stopping early if fn returns false. This is the
// recognizer's sliding-window scan (B_0 = b_0..b_63, B_1 = b_1..b_64, ...).
func (b *Bits) Windows64(fn func(start int, window uint64) bool) {
	b.Windows64Range(0, b.NumWindows64(), fn)
}

// clampWindowRange clamps a [lo, hi) window-start range to the valid
// [0, max) range, reporting whether any windows remain. Every window
// iterator funnels its requested range through this single helper rather
// than trusting callers (or re-implementing the clamp per iterator):
// lo < 0 and hi beyond the window count — easy to produce when sharding a
// scan or probing a stride phase of an odd-length string — silently
// tighten to the valid span instead of panicking or reading past the
// subsequence.
func clampWindowRange(lo, hi, max int) (int, int, bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > max {
		hi = max
	}
	return lo, hi, lo < hi
}

// Windows64Range calls fn for every 64-bit window whose starting index lies
// in [lo, hi), clamped to the valid range, stopping early if fn returns
// false. The window is maintained incrementally (one shift+or per step
// instead of a per-index Word64 reassembly), and disjoint ranges make the
// scan shardable across workers.
func (b *Bits) Windows64Range(lo, hi int, fn func(start int, window uint64) bool) {
	lo, hi, ok := clampWindowRange(lo, hi, b.NumWindows64())
	if !ok {
		return
	}
	w := b.Word64(lo)
	for start := lo; ; {
		if !fn(start, w) {
			return
		}
		start++
		if start >= hi {
			return
		}
		// Roll: drop bit start-1, admit bit start+63 at the top.
		i := start + 63
		w >>= 1
		if b.words[i>>6]&(1<<uint(i&63)) != 0 {
			w |= 1 << 63
		}
	}
}

// StrideLen returns the length of the stride-k, phase-p subsequence that
// Stride would materialize, without building it.
func (b *Bits) StrideLen(k, phase int) int {
	if k <= 0 || phase < 0 || phase >= k {
		panic(fmt.Sprintf("bitstring: invalid stride %d phase %d", k, phase))
	}
	if phase >= b.n {
		return 0
	}
	return (b.n - phase + k - 1) / k
}

// StrideNumWindows64 returns the number of 64-bit windows of the stride-k,
// phase-p subsequence: max(0, StrideLen(k,phase)-63).
func (b *Bits) StrideNumWindows64(k, phase int) int {
	if n := b.StrideLen(k, phase); n >= 64 {
		return n - 63
	}
	return 0
}

// StrideWindows64 calls fn for every 64-bit window of the stride-k,
// phase-p subsequence, in order. It is equivalent to
// b.Stride(k, phase).Windows64(fn) but reads bits directly from the
// underlying words instead of materializing a new vector.
func (b *Bits) StrideWindows64(k, phase int, fn func(start int, window uint64) bool) {
	b.StrideWindows64Range(k, phase, 0, b.StrideNumWindows64(k, phase), fn)
}

// StrideWindows64Range is the [lo, hi)-clamped, shardable variant of
// StrideWindows64: window start indices are positions in the stride
// subsequence, so window j covers raw bits phase+k*j .. phase+k*(j+63).
func (b *Bits) StrideWindows64Range(k, phase, lo, hi int, fn func(start int, window uint64) bool) {
	lo, hi, ok := clampWindowRange(lo, hi, b.StrideNumWindows64(k, phase))
	if !ok {
		return
	}
	// Gather the first window bit-by-bit, then roll.
	var w uint64
	for j := 0; j < 64; j++ {
		i := phase + k*(lo+j)
		if b.words[i>>6]&(1<<uint(i&63)) != 0 {
			w |= 1 << uint(j)
		}
	}
	for start := lo; ; {
		if !fn(start, w) {
			return
		}
		start++
		if start >= hi {
			return
		}
		i := phase + k*(start+63)
		w >>= 1
		if b.words[i>>6]&(1<<uint(i&63)) != 0 {
			w |= 1 << 63
		}
	}
}

// Clone returns a deep copy.
func (b *Bits) Clone() *Bits {
	c := &Bits{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// String renders the vector as a '0'/'1' string, bit 0 first.
func (b *Bits) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Bit(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Count returns the number of set bits.
func (b *Bits) Count() int {
	c := 0
	for i := 0; i < b.n; i++ {
		if b.Bit(i) {
			c++
		}
	}
	return c
}

// Stride returns the subsequence of bits at indices phase, phase+k,
// phase+2k, ... — the de-interleaved view the recognizer scans in addition
// to the full string, because the rolled loop generator interleaves its
// constant loop-control bit with the payload at stride 2.
func (b *Bits) Stride(k, phase int) *Bits {
	out := New(b.StrideLen(k, phase))
	for i := phase; i < b.n; i += k {
		out.Append(b.Bit(i))
	}
	return out
}

// IndexOfWord64 returns the first starting index whose 64-bit window equals
// v, or -1 if no window matches.
func (b *Bits) IndexOfWord64(v uint64) int {
	found := -1
	b.Windows64(func(start int, w uint64) bool {
		if w == v {
			found = start
			return false
		}
		return true
	})
	return found
}
