package cache

import "testing"

// TestPeekPutAccounting checks that a Peek-miss/Put pair accounts like a
// GetOrCompute miss and later Peeks like hits, so mixing the batch API
// with GetOrCompute keeps the per-distinct-key invariants.
func TestPeekPutAccounting(t *testing.T) {
	c := NewCache64(0)
	if _, ok := c.Peek(7); ok {
		t.Fatal("Peek found a value in an empty cache")
	}
	if got := c.Stats(); got.Lookups() != 0 {
		t.Fatalf("Peek miss counted a lookup: %+v", got)
	}
	if got := c.Put(7, 70); got != 70 {
		t.Fatalf("Put returned %d, want 70", got)
	}
	if got := c.Stats(); got.Misses != 1 || got.Hits != 0 {
		t.Fatalf("after Put: %+v, want 1 miss", got)
	}
	if v, ok := c.Peek(7); !ok || v != 70 {
		t.Fatalf("Peek(7) = %d, %v; want 70, true", v, ok)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("Peek hit not counted: %+v", got)
	}
	// GetOrCompute must see the Put value without recomputing.
	v := c.GetOrCompute(7, func(uint64) uint64 {
		t.Fatal("GetOrCompute recomputed a Put key")
		return 0
	})
	if v != 70 {
		t.Fatalf("GetOrCompute(7) = %d, want 70", v)
	}
}

// TestPutDuplicateKeepsResident pins the duplicate semantics: the second
// Put of a key returns the resident value and counts a Hit, exactly like
// the second GetOrCompute of a key.
func TestPutDuplicateKeepsResident(t *testing.T) {
	c := NewCache64(0)
	c.Put(3, 30)
	if got := c.Put(3, 999); got != 30 {
		t.Fatalf("duplicate Put returned %d, want resident 30", got)
	}
	if got := c.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("after duplicate Put: %+v, want 1 hit + 1 miss", got)
	}
	if v, _ := c.Peek(3); v != 30 {
		t.Fatalf("resident value overwritten: %d", v)
	}
}

// TestPutEvictsAtCapacity checks Put honors the bound like GetOrCompute.
func TestPutEvictsAtCapacity(t *testing.T) {
	c := NewCache64(cache64Shards) // one entry per shard
	n := 4 * cache64Shards
	for i := 0; i < n; i++ {
		c.Put(uint64(i), uint64(i))
	}
	if got := c.Len(); got > cache64Shards {
		t.Fatalf("cache grew to %d entries, bound is %d", got, cache64Shards)
	}
	st := c.Stats()
	if st.Misses != int64(n) {
		t.Fatalf("stored %d keys, counted %d misses", n, st.Misses)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions counted past capacity")
	}
}

// TestPeekPutNil confirms the nil-receiver degradation.
func TestPeekPutNil(t *testing.T) {
	var c *Cache64
	if _, ok := c.Peek(1); ok {
		t.Fatal("nil cache Peek reported a value")
	}
	if got := c.Put(1, 11); got != 11 {
		t.Fatalf("nil cache Put returned %d, want 11", got)
	}
}
