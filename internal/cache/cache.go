// Package cache provides the shared caching layer under the fleet-scale
// fingerprinting paths: a sharded memo table for 64-bit window decryption
// (the recognizer's hot loop decrypts the same loop-generated window
// thousands of times per trace) and a content-addressed, singleflight
// keyed cache for decoded trace bit-strings (corpus recognition matches
// one suspect against many candidate keys, and every key sharing a secret
// input can reuse the same trace).
//
// Both caches are pure memo tables: GetOrCompute always returns exactly
// what the compute function would return, whether or not the result was
// (or could be) stored, so enabling a cache never changes results — only
// how often the underlying function runs. Both are safe for concurrent
// use and nil-safe (a nil cache degenerates to calling the function), so
// call sites need no flags around them.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Stats is a point-in-time snapshot of a cache's traffic counters.
type Stats struct {
	// Hits counts lookups answered from the table (including lookups
	// coalesced onto an in-flight computation, for the keyed cache).
	Hits int64
	// Misses counts lookups that ran the compute function and stored the
	// result.
	Misses int64
	// Bypassed counts lookups that ran the compute function WITHOUT
	// storing the result because the table was at capacity and held no
	// evictable entry (for the keyed cache, every resident entry still
	// in flight). A bypassed key may be computed again later; within
	// capacity every distinct key is computed at most once.
	Bypassed int64
	// Evictions counts resident entries discarded to make room for a new
	// key once the table reached capacity. An evicted key that returns
	// recomputes (a fresh miss), so beyond capacity the miss count is a
	// function of the access sequence — memory stays bounded and results
	// stay exact, only the amortization weakens.
	Evictions int64
}

// Lookups returns the total number of GetOrCompute calls the stats cover.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses + s.Bypassed }

// HitRate returns Hits / Lookups, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// Sub returns the delta s - prior, for attributing traffic to one
// pipeline phase of a long-lived cache.
func (s Stats) Sub(prior Stats) Stats {
	return Stats{
		Hits:      s.Hits - prior.Hits,
		Misses:    s.Misses - prior.Misses,
		Bypassed:  s.Bypassed - prior.Bypassed,
		Evictions: s.Evictions - prior.Evictions,
	}
}

// cache64Shards is the shard count of Cache64. Power of two so shard
// selection is a mask; 128 shards keep lock contention negligible at any
// realistic scan worker count.
const cache64Shards = 128

type cache64Shard struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

// Cache64 is a bounded, sharded, concurrency-safe memo table from uint64
// keys to uint64 values, built for the recognizer's per-key decrypt
// cache: key = 64-bit trace window, value = its decryption.
//
// The compute function runs while the key's shard lock is held, so within
// capacity each distinct key is computed AT MOST ONCE regardless of how
// many workers look it up concurrently — the property that makes
// "decrypts per distinct window" an invariant rather than a race. The
// compute function must therefore be fast (a block-cipher call, not I/O)
// and must not touch the cache reentrantly.
type Cache64 struct {
	shards      [cache64Shards]cache64Shard
	maxPerShard int
	hits        atomic.Int64
	misses      atomic.Int64
	bypassed    atomic.Int64
	evictions   atomic.Int64
}

// NewCache64 returns a Cache64 holding at most maxEntries values
// (rounded up to a multiple of the shard count); maxEntries <= 0 means
// unbounded. Once a shard is full, inserting a new key evicts an
// arbitrary resident entry (counted as an Eviction) — memory stays
// bounded for arbitrarily long-lived caches, results stay correct, and
// only the at-most-once guarantee is relinquished for keys that churn
// past capacity.
func NewCache64(maxEntries int) *Cache64 {
	c := &Cache64{}
	if maxEntries > 0 {
		c.maxPerShard = (maxEntries + cache64Shards - 1) / cache64Shards
	}
	return c
}

// mix64 is the splitmix64 finalizer: trace windows are highly structured
// (long runs, strided payloads), so shard selection needs real avalanche
// to spread them across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// GetOrCompute returns the cached value for k, computing and storing it
// via f on a miss. On a nil receiver it simply returns f(k).
func (c *Cache64) GetOrCompute(k uint64, f func(uint64) uint64) uint64 {
	if c == nil {
		return f(k)
	}
	s := &c.shards[mix64(k)&(cache64Shards-1)]
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.mu.Unlock()
		c.hits.Add(1)
		return v
	}
	// Compute under the shard lock: concurrent callers of the same key
	// block here and then hit, so the key is computed exactly once.
	v := f(k)
	evicted := int64(0)
	if c.maxPerShard > 0 && len(s.m) >= c.maxPerShard {
		// Evict an arbitrary resident key (map iteration order) so the
		// new, presumably hotter key gets cached. Loop in case the map
		// somehow overshot the bound; normally one deletion suffices.
		for victim := range s.m {
			delete(s.m, victim)
			evicted++
			if len(s.m) < c.maxPerShard {
				break
			}
		}
	}
	if s.m == nil {
		s.m = make(map[uint64]uint64)
	}
	s.m[k] = v
	s.mu.Unlock()
	c.misses.Add(1)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
	return v
}

// Peek returns the cached value for k without computing anything. A
// found key counts as a Hit; an absent key counts nothing — the caller
// is expected to follow up with Put after computing, which records the
// Miss, so a Peek-miss/Put pair accounts exactly like one GetOrCompute
// miss. Nil receivers never hold anything.
//
// Peek/Put exist for batch users (the block-decrypt scan kernel) that
// want to gather all missing keys first and compute them in one
// vectorized call instead of one compute closure per key.
func (c *Cache64) Peek(k uint64) (uint64, bool) {
	if c == nil {
		return 0, false
	}
	s := &c.shards[mix64(k)&(cache64Shards-1)]
	s.mu.Lock()
	v, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

// Put stores v for k, completing a Peek-miss. If the key is already
// resident (another worker computed it between Peek and Put, or the
// batch held a duplicate) the resident value is returned and the call
// counts as a Hit — mirroring GetOrCompute, where the second caller of a
// key hits; otherwise v is stored (evicting at capacity, like a miss in
// GetOrCompute) and returned, counting as a Miss. On a nil receiver Put
// just returns v.
func (c *Cache64) Put(k, v uint64) uint64 {
	if c == nil {
		return v
	}
	s := &c.shards[mix64(k)&(cache64Shards-1)]
	s.mu.Lock()
	if resident, ok := s.m[k]; ok {
		s.mu.Unlock()
		c.hits.Add(1)
		return resident
	}
	evicted := int64(0)
	if c.maxPerShard > 0 && len(s.m) >= c.maxPerShard {
		for victim := range s.m {
			delete(s.m, victim)
			evicted++
			if len(s.m) < c.maxPerShard {
				break
			}
		}
	}
	if s.m == nil {
		s.m = make(map[uint64]uint64)
	}
	s.m[k] = v
	s.mu.Unlock()
	c.misses.Add(1)
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
	return v
}

// Len returns the number of stored entries (0 on nil).
func (c *Cache64) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats snapshots the traffic counters (zero on nil).
func (c *Cache64) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Bypassed: c.bypassed.Load(), Evictions: c.evictions.Load(),
	}
}

// keyedEntry holds one Keyed value; Once gives singleflight semantics
// (concurrent callers of the same key block until the first compute
// finishes, then share its result). done flips to true after the compute
// finishes: only done entries are eviction candidates, so coalesced
// waiters can never lose the entry they are blocked on.
type keyedEntry[V any] struct {
	once sync.Once
	done atomic.Bool
	val  V
	err  error
}

// Keyed is a bounded, concurrency-safe, singleflight memo table from a
// comparable key to an arbitrary value — the shape of the trace cache,
// whose keys are (program digest, input digest) pairs and whose values
// are decoded bit-strings. Compute functions may fail; errors are cached
// alongside values (recomputing a deterministic failure would not change
// it). A nil *Keyed computes directly.
type Keyed[K comparable, V any] struct {
	mu         sync.Mutex
	m          map[K]*keyedEntry[V]
	maxEntries int
	hits       atomic.Int64
	misses     atomic.Int64
	bypassed   atomic.Int64
	evictions  atomic.Int64
}

// NewKeyed returns a Keyed cache holding at most maxEntries entries
// (<= 0 = unbounded). At capacity a new key evicts an arbitrary
// completed entry; when every resident entry is still being computed the
// new key computes without storing (Bypassed).
func NewKeyed[K comparable, V any](maxEntries int) *Keyed[K, V] {
	return &Keyed[K, V]{m: make(map[K]*keyedEntry[V]), maxEntries: maxEntries}
}

// GetOrCompute returns the value for k, computing it via f at most once
// per stored key. Concurrent callers of an absent key coalesce: one runs
// f, the rest block and share the outcome.
func (c *Keyed[K, V]) GetOrCompute(k K, f func() (V, error)) (V, error) {
	if c == nil {
		return f()
	}
	c.mu.Lock()
	e, ok := c.m[k]
	if !ok {
		if c.maxEntries > 0 && len(c.m) >= c.maxEntries {
			evicted := false
			for victim, ve := range c.m {
				if ve.done.Load() {
					delete(c.m, victim)
					evicted = true
					break
				}
			}
			if !evicted {
				// Every resident entry is mid-compute and must stay
				// reachable for its coalesced waiters: compute without
				// storing rather than grow past the bound.
				c.mu.Unlock()
				c.bypassed.Add(1)
				return f()
			}
			c.evictions.Add(1)
		}
		e = &keyedEntry[V]{}
		c.m[k] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		e.val, e.err = f()
		e.done.Store(true)
	})
	return e.val, e.err
}

// Forget drops k's entry so the next lookup recomputes, reporting
// whether an entry was present. It exists for retry loops: the keyed
// cache memoizes deterministic failures on purpose, so a caller that has
// reason to believe a failure was transient (a timeout, a fault
// injection) must explicitly invalidate before retrying. Coalesced
// waiters of an in-flight entry are unaffected — they hold the entry
// pointer and still receive its outcome; only the table forgets it.
func (c *Keyed[K, V]) Forget(k K) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; ok {
		delete(c.m, k)
		return true
	}
	return false
}

// Len returns the number of stored entries (0 on nil).
func (c *Keyed[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats snapshots the traffic counters (zero on nil).
func (c *Keyed[K, V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Bypassed: c.bypassed.Load(), Evictions: c.evictions.Load(),
	}
}

// Digest is the content-address used by the keyed caches: a SHA-256 hash.
type Digest [sha256.Size]byte

// DigestBytes hashes a sequence of byte slices into one Digest. Each part
// is length-prefixed, so part boundaries are unambiguous ("ab","c" and
// "a","bc" digest differently).
func DigestBytes(parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// DigestInt64s hashes an int64 sequence (e.g. a secret input vector).
func DigestInt64s(vs []int64) Digest {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(vs)))
	h.Write(buf[:])
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	var d Digest
	h.Sum(d[:0])
	return d
}
