package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCache64Memoizes(t *testing.T) {
	c := NewCache64(0)
	calls := 0
	f := func(k uint64) uint64 { calls++; return k * 3 }
	for i := 0; i < 4; i++ {
		if v := c.GetOrCompute(7, f); v != 21 {
			t.Fatalf("GetOrCompute(7) = %d, want 21", v)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 3 || st.Bypassed != 0 {
		t.Errorf("stats %+v, want 1 miss / 3 hits", st)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCache64NilComputesDirectly(t *testing.T) {
	var c *Cache64
	calls := 0
	f := func(k uint64) uint64 { calls++; return k + 1 }
	if v := c.GetOrCompute(9, f); v != 10 {
		t.Fatalf("nil cache returned %d, want 10", v)
	}
	c.GetOrCompute(9, f)
	if calls != 2 {
		t.Errorf("nil cache must compute every time, ran %d times", calls)
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Error("nil cache must report empty state")
	}
}

// TestCache64AtMostOncePerKey is the concurrency property the scan relies
// on: hammering the same key set from many goroutines computes each
// distinct key exactly once (within capacity).
func TestCache64AtMostOncePerKey(t *testing.T) {
	c := NewCache64(0)
	var computes atomic.Int64
	const keys = 512
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for k := uint64(0); k < keys; k++ {
					got := c.GetOrCompute(k, func(k uint64) uint64 {
						computes.Add(1)
						return k ^ 0xdeadbeef
					})
					if got != k^0xdeadbeef {
						t.Errorf("worker %d: wrong value for %d", w, k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := computes.Load(); n != keys {
		t.Errorf("computed %d times for %d distinct keys", n, keys)
	}
	st := c.Stats()
	if st.Misses != keys {
		t.Errorf("misses %d, want %d", st.Misses, keys)
	}
	if st.Lookups() != keys*workers*4 {
		t.Errorf("lookups %d, want %d", st.Lookups(), keys*workers*4)
	}
}

// TestCache64BoundedEviction checks the capacity contract: results stay
// correct beyond capacity, overflow inserts evict resident entries (and
// are counted), and the table never exceeds its (shard-rounded) bound.
func TestCache64BoundedEviction(t *testing.T) {
	c := NewCache64(cache64Shards) // one entry per shard
	const keys = 10_000
	for k := uint64(0); k < keys; k++ {
		if v := c.GetOrCompute(k, func(k uint64) uint64 { return k + 5 }); v != k+5 {
			t.Fatalf("key %d: wrong value %d", k, v)
		}
	}
	if c.Len() > cache64Shards {
		t.Errorf("Len %d exceeds capacity %d", c.Len(), cache64Shards)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions beyond capacity")
	}
	// Every distinct key computes (and stores) exactly once on this pass.
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d", st.Misses, keys)
	}
	if got := int64(c.Len()) + st.Evictions; got != keys {
		t.Errorf("Len+Evictions = %d, want %d (every stored key is resident or evicted)", got, keys)
	}
	// Rereads still return the right value whether resident or evicted.
	for k := uint64(0); k < keys; k++ {
		if v := c.GetOrCompute(k, func(k uint64) uint64 { return k + 5 }); v != k+5 {
			t.Fatalf("key %d: wrong value on reread: %d", k, v)
		}
	}
	if c.Len() > cache64Shards {
		t.Errorf("Len %d exceeds capacity %d after rereads", c.Len(), cache64Shards)
	}
}

func TestKeyedSingleflight(t *testing.T) {
	c := NewKeyed[string, int](0)
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.GetOrCompute("k", func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("got (%d, %v), want (42, nil)", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("computed %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 15 {
		t.Errorf("stats %+v, want 1 miss / 15 hits", st)
	}
}

func TestKeyedCachesErrors(t *testing.T) {
	c := NewKeyed[int, string](0)
	boom := errors.New("boom")
	calls := 0
	f := func() (string, error) { calls++; return "", boom }
	for i := 0; i < 3; i++ {
		if _, err := c.GetOrCompute(1, f); !errors.Is(err, boom) {
			t.Fatalf("want boom, got %v", err)
		}
	}
	if calls != 1 {
		t.Errorf("failing compute ran %d times, want 1 (errors are cached)", calls)
	}
}

func TestKeyedBoundedEviction(t *testing.T) {
	c := NewKeyed[int, int](2)
	for k := 0; k < 10; k++ {
		k := k
		v, err := c.GetOrCompute(k, func() (int, error) { return k * k, nil })
		if err != nil || v != k*k {
			t.Fatalf("key %d: got (%d, %v)", k, v, err)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if st := c.Stats(); st.Evictions != 8 || st.Misses != 10 || st.Bypassed != 0 {
		t.Errorf("stats %+v, want 10 misses / 8 evictions / 0 bypassed", st)
	}
	// An evicted key recomputes and is stored again (a fresh miss, with
	// another eviction to make room).
	if v, err := c.GetOrCompute(0, func() (int, error) { return 0, nil }); err != nil || v != 0 {
		t.Fatalf("evicted key reread: got (%d, %v)", v, err)
	}
}

// TestKeyedEvictionSparesInflight pins the singleflight-safety property:
// when every resident entry is still being computed, a new key bypasses
// instead of evicting the entry concurrent waiters are blocked on.
func TestKeyedEvictionSparesInflight(t *testing.T) {
	c := NewKeyed[int, int](1)
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := c.GetOrCompute(1, func() (int, error) {
			close(inFlight)
			<-release
			return 11, nil
		})
		done <- err
	}()
	<-inFlight
	// Key 2 arrives while key 1 (the only resident entry) is mid-compute:
	// it must bypass, not evict.
	if v, err := c.GetOrCompute(2, func() (int, error) { return 22, nil }); err != nil || v != 22 {
		t.Fatalf("got (%d, %v), want (22, nil)", v, err)
	}
	if st := c.Stats(); st.Bypassed != 1 || st.Evictions != 0 {
		t.Errorf("stats %+v, want 1 bypass / 0 evictions while sole entry is in flight", st)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight compute failed: %v", err)
	}
	// Key 1 finished and was stored; a reread hits.
	if v, err := c.GetOrCompute(1, func() (int, error) { return -1, nil }); err != nil || v != 11 {
		t.Fatalf("stored in-flight result lost: got (%d, %v)", v, err)
	}
}

func TestKeyedNil(t *testing.T) {
	var c *Keyed[int, int]
	calls := 0
	for i := 0; i < 2; i++ {
		v, err := c.GetOrCompute(3, func() (int, error) { calls++; return 8, nil })
		if err != nil || v != 8 {
			t.Fatalf("nil keyed cache: got (%d, %v)", v, err)
		}
	}
	if calls != 2 {
		t.Errorf("nil keyed cache must compute every time, ran %d", calls)
	}
}

func TestStatsArithmetic(t *testing.T) {
	s := Stats{Hits: 30, Misses: 10, Bypassed: 10}
	if s.Lookups() != 50 {
		t.Errorf("Lookups = %d", s.Lookups())
	}
	if s.HitRate() != 0.6 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
	d := s.Sub(Stats{Hits: 10, Misses: 5, Bypassed: 0})
	if d != (Stats{Hits: 20, Misses: 5, Bypassed: 10}) {
		t.Errorf("Sub = %+v", d)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty HitRate must be 0")
	}
}

func TestDigests(t *testing.T) {
	// Length prefixing: the same concatenation split differently must not
	// collide.
	a := DigestBytes([]byte("ab"), []byte("c"))
	b := DigestBytes([]byte("a"), []byte("bc"))
	if a == b {
		t.Error("part boundaries are ambiguous")
	}
	if DigestBytes([]byte("ab"), []byte("c")) != a {
		t.Error("DigestBytes not deterministic")
	}
	if DigestInt64s([]int64{1, 2}) == DigestInt64s([]int64{1, 2, 0}) {
		t.Error("DigestInt64s ignores length")
	}
	if DigestInt64s(nil) != DigestInt64s([]int64{}) {
		t.Error("nil and empty input must digest identically")
	}
}

func BenchmarkCache64Hit(b *testing.B) {
	c := NewCache64(0)
	f := func(k uint64) uint64 { return k * 2654435761 }
	for k := uint64(0); k < 1024; k++ {
		c.GetOrCompute(k, f)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		k := uint64(0)
		for pb.Next() {
			c.GetOrCompute(k&1023, f)
			k++
		}
	})
}

func FuzzCache64Consistency(f *testing.F) {
	f.Add(uint64(0), uint64(1), uint64(2))
	f.Fuzz(func(t *testing.T, a, b, c uint64) {
		cc := NewCache64(2)
		fn := func(k uint64) uint64 { return mix64(k) }
		for _, k := range []uint64{a, b, c, a, b, c} {
			if got := cc.GetOrCompute(k, fn); got != mix64(k) {
				t.Fatalf("key %d: got %d, want %d", k, got, mix64(k))
			}
		}
	})
}

func ExampleCache64() {
	c := NewCache64(1 << 20)
	decrypts := 0
	decrypt := func(w uint64) uint64 { decrypts++; return w ^ 0xf0f0f0f0 }
	for _, w := range []uint64{1, 2, 1, 1, 2} {
		c.GetOrCompute(w, decrypt)
	}
	fmt.Println(decrypts, "decrypts for 5 windows")
	// Output: 2 decrypts for 5 windows
}
