package attacks

import (
	"math/rand"
	"testing"

	"pathmark/internal/vm"
)

func TestLoopPeelingDuplicatesLoopBody(t *testing.T) {
	src := `
method main 0 2
  const 5
  store 0
loop:
  load 0
  ifle done
  load 1
  load 0
  add
  store 1
  load 0
  const 1
  sub
  store 0
  goto loop
done:
  load 1
  ret
`
	p := vm.MustAssemble(src)
	before, err := vm.Run(p, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	peeled := loopPeeling(p, rand.New(rand.NewSource(1)))
	if peeled.CodeSize() <= p.CodeSize() {
		t.Fatalf("peeling did not grow the code: %d vs %d", peeled.CodeSize(), p.CodeSize())
	}
	after, err := vm.Run(peeled, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !vm.SameBehavior(before, after) {
		t.Errorf("peeling changed behavior: %d vs %d", before.Return, after.Return)
	}
	if after.Return != 15 {
		t.Errorf("sum = %d, want 15", after.Return)
	}
}

func TestLoopPeelingPerturbsBranchIdentity(t *testing.T) {
	// The peeled copy's branches are new static branches, so the decoded
	// bit-string changes — peeling is a genuine distortive attack on the
	// trace, not a no-op.
	src := `
method main 0 1
  const 4
  store 0
loop:
  load 0
  ifle done
  load 0
  const 1
  sub
  store 0
  goto loop
done:
  const 0
  ret
`
	p := vm.MustAssemble(src)
	peeled := loopPeeling(p, rand.New(rand.NewSource(2)))
	t1, _, err := vm.Collect(p, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := vm.Collect(peeled, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t1.DecodeBits().String() == t2.DecodeBits().String() {
		t.Error("peeling left the decoded bit-string untouched")
	}
}

func TestPeepholeRemovesNopsAndFoldsConstants(t *testing.T) {
	src := `
method main 0 1
  nop
  const 2
  const 3
  add
  const 4
  mul
  store 0
  nop
  load 0
  ret
`
	p := vm.MustAssemble(src)
	before, err := vm.Run(p, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := peepholeOptimization(p, rand.New(rand.NewSource(1)))
	if opt.CodeSize() >= p.CodeSize() {
		t.Fatalf("peephole did not shrink: %d vs %d", opt.CodeSize(), p.CodeSize())
	}
	after, err := vm.Run(opt, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !vm.SameBehavior(before, after) || after.Return != 20 {
		t.Errorf("peephole broke semantics: %d, want 20", after.Return)
	}
	// The chained fold (2+3)*4 should collapse to one constant.
	m := opt.Methods[0]
	consts := 0
	for _, in := range m.Code {
		if in.Op == vm.OpConst {
			consts++
		}
	}
	if consts != 1 {
		t.Errorf("%d const instructions remain, want 1 (full fold)", consts)
	}
}

func TestPeepholePreservesBranchTargetsIntoPatterns(t *testing.T) {
	// A branch targeting the middle of a const-const-op pattern must
	// suppress the fold.
	src := `
method main 0 1
  const 1
  ifeq mid2
  const 7
mid:
  const 3
  add
  store 0
  load 0
  ret
mid2:
  const 100
  goto mid
`
	p := vm.MustAssemble(src)
	before, err := vm.Run(p, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt := peepholeOptimization(p, rand.New(rand.NewSource(1)))
	after, err := vm.Run(opt, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !vm.SameBehavior(before, after) {
		t.Errorf("fold across a branch target changed behavior: %d vs %d", before.Return, after.Return)
	}
}

func TestDeleteInstr(t *testing.T) {
	src := `
method main 0 1
  const 1
  ifeq skip
  nop
skip:
  const 9
  ret
`
	p := vm.MustAssemble(src)
	m := p.Methods[0]
	// Delete the nop at pc 2; the branch to pc 3 must retarget to pc 2.
	deleteInstr(m, 2)
	if err := vm.Verify(p); err != nil {
		t.Fatalf("verify after delete: %v", err)
	}
	res, err := vm.Run(p, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Return != 9 {
		t.Errorf("return %d, want 9", res.Return)
	}
}
