package attacks

import (
	"math/rand"
	"testing"

	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// multiSrc exercises calls, recursion, statics, arrays and input.
const multiSrc = `
statics 2
entry main
method main 0 3
  const 12
  call fib
  store 0
  const 30
  const 18
  call gcd
  store 1
  load 0
  load 1
  add
  putstatic 0
  in
  store 2
  load 2
  ifle skip
  getstatic 0
  load 2
  add
  putstatic 0
skip:
  getstatic 0
  print
  getstatic 0
  ret
method fib 1 1
  load 0
  const 2
  ifcmplt base
  load 0
  const 1
  sub
  call fib
  load 0
  const 2
  sub
  call fib
  add
  ret
base:
  load 0
  ret
method gcd 2 2
loop:
  load 0
  load 1
  rem
  ifeq done
  load 1
  load 0
  load 1
  rem
  store 1
  store 0
  goto loop
done:
  load 1
  ret
method sum3 3 4
  load 0
  load 1
  add
  load 2
  add
  store 3
  load 3
  ret
`

var testInputs = [][]int64{nil, {5}, {-3}, {100, 7}}

func checkSameBehavior(t *testing.T, name string, orig, attacked *vm.Program) {
	t.Helper()
	for _, input := range testInputs {
		r1, err := vm.Run(orig, vm.RunOptions{Input: input})
		if err != nil {
			t.Fatalf("%s: original run: %v", name, err)
		}
		r2, err := vm.Run(attacked, vm.RunOptions{Input: input})
		if err != nil {
			t.Fatalf("%s: attacked run failed on input %v: %v", name, input, err)
		}
		if !vm.SameBehavior(r1, r2) {
			t.Errorf("%s: behavior changed on input %v: (%d,%v) vs (%d,%v)",
				name, input, r1.Return, r1.Output, r2.Return, r2.Output)
		}
	}
}

func TestCatalogPreservesSemantics(t *testing.T) {
	progs := map[string]*vm.Program{
		"multi": vm.MustAssemble(multiSrc),
	}
	for name, p := range progs {
		for _, a := range Catalog() {
			for seed := int64(0); seed < 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				attacked := a.Apply(p, rng)
				if err := vm.Verify(attacked); err != nil {
					t.Fatalf("%s on %s (seed %d): verify: %v", a.Name, name, seed, err)
				}
				checkSameBehavior(t, a.Name, p, attacked)
			}
		}
	}
}

func TestCatalogPreservesSemanticsOnWatermarked(t *testing.T) {
	p := vm.MustAssemble(multiSrc)
	key, err := wm.NewKey([]int64{5}, testCipherKey(), 64)
	if err != nil {
		t.Fatal(err)
	}
	w := wm.RandomWatermark(64, 1)
	marked, _, err := wm.Embed(p, w, key, wm.EmbedOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Catalog() {
		rng := rand.New(rand.NewSource(7))
		attacked := a.Apply(marked, rng)
		checkSameBehavior(t, a.Name+"(marked)", marked, attacked)
	}
}

func TestCatalogDoesNotMutateInput(t *testing.T) {
	p := vm.MustAssemble(multiSrc)
	before := p.String()
	for _, a := range Catalog() {
		rng := rand.New(rand.NewSource(1))
		_ = a.Apply(p, rng)
		if p.String() != before {
			t.Fatalf("%s mutated its input program", a.Name)
		}
	}
}

func TestDistortiveAttacksSurvived(t *testing.T) {
	// The §5.1.2 claim: the watermark survives the distortive catalog.
	p := vm.MustAssemble(multiSrc)
	key, err := wm.NewKey([]int64{5}, testCipherKey(), 128)
	if err != nil {
		t.Fatal(err)
	}
	w := wm.RandomWatermark(128, 2)
	marked, _, err := wm.Embed(p, w, key, wm.EmbedOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Distortive() {
		rng := rand.New(rand.NewSource(11))
		attacked := a.Apply(marked, rng)
		rec, err := wm.Recognize(attacked, key)
		if err != nil {
			t.Fatalf("%s: recognize: %v", a.Name, err)
		}
		if !rec.Matches(w) {
			t.Errorf("%s: watermark destroyed by a distortive attack", a.Name)
		}
	}
}

func TestDestructiveAttacksDestroy(t *testing.T) {
	p := vm.MustAssemble(multiSrc)
	key, err := wm.NewKey([]int64{5}, testCipherKey(), 128)
	if err != nil {
		t.Fatal(err)
	}
	w := wm.RandomWatermark(128, 4)
	marked, _, err := wm.Embed(p, w, key, wm.EmbedOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Catalog() {
		if !a.Destroys {
			continue
		}
		rng := rand.New(rand.NewSource(13))
		attacked := a.Apply(marked, rng)
		rec, err := wm.Recognize(attacked, key)
		if err != nil {
			t.Fatalf("%s: recognize: %v", a.Name, err)
		}
		if rec.Matches(w) {
			t.Errorf("%s: expected to destroy the watermark but it survived", a.Name)
		}
	}
}

func TestInsertRandomBranchesGrowsBranchCount(t *testing.T) {
	p := vm.MustAssemble(multiSrc)
	rng := rand.New(rand.NewSource(1))
	before := p.CountCondBranches()
	attacked := InsertRandomBranches(p, rng, 1.0)
	after := attacked.CountCondBranches()
	if after < before+before {
		t.Errorf("branch count %d -> %d, want at least doubled", before, after)
	}
	checkSameBehavior(t, "branch-insert", p, attacked)
}

func TestInsertRandomBranchesZeroIncrease(t *testing.T) {
	p := vm.MustAssemble(multiSrc)
	rng := rand.New(rand.NewSource(1))
	attacked := InsertRandomBranches(p, rng, 0)
	if attacked.CodeSize() != p.CodeSize() {
		t.Error("zero increase changed the program")
	}
}

func TestFlatteningDistortsTrace(t *testing.T) {
	p := vm.MustAssemble(multiSrc)
	rng := rand.New(rand.NewSource(2))
	flat := controlFlowFlattening(p, rng)
	t1, _, err := vm.Collect(p, []int64{5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err2 := func() (*vm.Trace, error) {
		tr, _, err := vm.Collect(flat, []int64{5}, 1)
		return tr, err
	}()
	if err2 != nil {
		t.Fatal(err2)
	}
	if t2.NumBranchExecs() <= t1.NumBranchExecs() {
		t.Errorf("flattening did not add dispatch branches: %d vs %d",
			t2.NumBranchExecs(), t1.NumBranchExecs())
	}
}

func TestReplaceInstrAt(t *testing.T) {
	src := `
method main 0 1
  const 2
  store 0
loop:
  load 0
  ifeq done
  load 0
  const 1
  sub
  store 0
  goto loop
done:
  const 9
  ret
`
	p := vm.MustAssemble(src)
	before, err := vm.Run(p, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Replace "const 1" (pc 4... find it) with an equivalent sequence.
	m := p.Methods[0]
	for pc, in := range m.Code {
		if in.Op == vm.OpConst && in.A == 1 {
			replaceInstrAt(m, pc, []vm.Instr{
				{Op: vm.OpConst, A: 3},
				{Op: vm.OpConst, A: 2},
				{Op: vm.OpSub},
			})
			break
		}
	}
	if err := vm.Verify(p); err != nil {
		t.Fatal(err)
	}
	after, err := vm.Run(p, vm.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !vm.SameBehavior(before, after) {
		t.Error("replaceInstrAt changed behavior")
	}
}

func TestCatalogNamesUniqueAndComplete(t *testing.T) {
	seen := map[string]bool{}
	destroyers := 0
	for _, a := range Catalog() {
		if seen[a.Name] {
			t.Errorf("duplicate attack name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Destroys {
			destroyers++
		}
	}
	if destroyers != 2 {
		t.Errorf("catalog has %d destroying attacks, want 2 (branch insertion, class encryption analog)", destroyers)
	}
	if len(seen) < 20 {
		t.Errorf("catalog has only %d attacks", len(seen))
	}
}

func TestComposedAttacks(t *testing.T) {
	// Chains of distortive attacks must still preserve semantics.
	p := vm.MustAssemble(multiSrc)
	rng := rand.New(rand.NewSource(21))
	attacked := p
	for _, a := range Distortive() {
		attacked = a.Apply(attacked, rng)
	}
	checkSameBehavior(t, "composed", p, attacked)
}
