package attacks

import (
	"math/rand"

	"pathmark/internal/vm"
)

// replaceInstrAt substitutes the single instruction at pc with seq,
// adjusting branch targets: targets past pc shift by len(seq)-1, targets
// equal to pc keep pointing at the replacement's first instruction.
func replaceInstrAt(m *vm.Method, pc int, seq []vm.Instr) {
	delta := len(seq) - 1
	for i := range m.Code {
		if m.Code[i].Op.IsBranch() && m.Code[i].Target > pc {
			m.Code[i].Target += delta
		}
	}
	newCode := make([]vm.Instr, 0, len(m.Code)+delta)
	newCode = append(newCode, m.Code[:pc]...)
	newCode = append(newCode, seq...)
	newCode = append(newCode, m.Code[pc+1:]...)
	m.Code = newCode
}

// nopInsertion inserts no-ops before a random fraction of instructions.
func nopInsertion(fraction float64) func(*vm.Program, *rand.Rand) *vm.Program {
	return func(p *vm.Program, rng *rand.Rand) *vm.Program {
		q := p.Clone()
		for _, m := range q.Methods {
			var positions []int
			for pc := range m.Code {
				if rng.Float64() < fraction {
					positions = append(positions, pc)
				}
			}
			for i := len(positions) - 1; i >= 0; i-- {
				m.InsertAt(positions[i], []vm.Instr{{Op: vm.OpNop}})
			}
		}
		return mustVerify(q)
	}
}

// deadCodeInsertion inserts stack-neutral computations on fresh locals.
func deadCodeInsertion(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		scratch := int64(m.AllocLocal())
		var positions []int
		for pc := range m.Code {
			if rng.Float64() < 0.15 {
				positions = append(positions, pc)
			}
		}
		for i := len(positions) - 1; i >= 0; i-- {
			k := rng.Int63n(1000)
			m.InsertAt(positions[i], []vm.Instr{
				{Op: vm.OpConst, A: k},
				{Op: vm.OpStore, A: scratch},
				{Op: vm.OpLoad, A: scratch},
				{Op: vm.OpConst, A: k / 2},
				{Op: vm.OpAdd},
				{Op: vm.OpStore, A: scratch},
			})
		}
	}
	return mustVerify(q)
}

// blockSplit cuts basic blocks by inserting jumps to the next instruction.
func blockSplit(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		var positions []int
		for pc := 1; pc < len(m.Code); pc++ {
			if rng.Float64() < 0.1 {
				positions = append(positions, pc)
			}
		}
		for i := len(positions) - 1; i >= 0; i-- {
			pc := positions[i]
			// goto pc+1, where pc+1 is the original instruction at pc
			// after insertion.
			m.InsertAt(pc, []vm.Instr{{Op: vm.OpGoto, Target: pc + 1}})
		}
	}
	return mustVerify(q)
}

// gotoChaining reroutes branches through trampolines appended at the end
// of the method (the "branch chaining" transformation of §1).
func gotoChaining(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		n := len(m.Code)
		for pc := 0; pc < n; pc++ {
			in := m.Code[pc]
			if !in.Op.IsBranch() || rng.Float64() > 0.5 {
				continue
			}
			tramp := len(m.Code)
			m.Code = append(m.Code, vm.Instr{Op: vm.OpGoto, Target: in.Target})
			m.Code[pc].Target = tramp
		}
	}
	return mustVerify(q)
}

// branchSenseInversion negates conditional branches and restores semantics
// with a goto: `if c -> T; F:` becomes `if !c -> F; goto T; F:`.
func branchSenseInversion(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		var positions []int
		for pc, in := range m.Code {
			if in.Op.IsCondBranch() && rng.Float64() < 0.7 {
				positions = append(positions, pc)
			}
		}
		for i := len(positions) - 1; i >= 0; i-- {
			pc := positions[i]
			m.InsertAfter(pc, []vm.Instr{{Op: vm.OpGoto, Target: 0}}) // target patched below
			t := m.Code[pc].Target                                    // already adjusted by InsertAfter
			m.Code[pc+1].Target = t
			m.Code[pc].Op = vm.NegateCond(m.Code[pc].Op)
			m.Code[pc].Target = pc + 2
		}
	}
	return mustVerify(q)
}

// blockReordering permutes the basic blocks of every method, preserving
// flow with explicit jumps.
func blockReordering(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		reorderBlocks(m, rng)
	}
	return mustVerify(q)
}

func reorderBlocks(m *vm.Method, rng *rand.Rand) {
	cfg := vm.BuildCFG(m)
	nb := cfg.NumBlocks()
	if nb < 3 {
		return
	}
	order := rng.Perm(nb)
	var newCode []vm.Instr
	// Leading jump to the entry block's new home.
	newCode = append(newCode, vm.Instr{Op: vm.OpGoto})
	newStart := make([]int, nb)
	type fix struct {
		pos      int
		oldTgt   int // original target pc (a leader) — -1 when tgtBlock used
		tgtBlock int
	}
	var fixes []fix
	for _, bi := range order {
		b := cfg.Blocks[bi]
		newStart[bi] = len(newCode)
		for pc := b.Start; pc < b.End; pc++ {
			in := m.Code[pc]
			if in.Op.IsBranch() {
				fixes = append(fixes, fix{pos: len(newCode), oldTgt: in.Target, tgtBlock: -1})
			}
			newCode = append(newCode, in)
		}
		// Restore the fall-through edge with an explicit goto.
		last := m.Code[b.End-1]
		if last.Op != vm.OpGoto && last.Op != vm.OpRet && b.End < len(m.Code) {
			fixes = append(fixes, fix{pos: len(newCode), oldTgt: -1, tgtBlock: cfg.BlockOf(b.End)})
			newCode = append(newCode, vm.Instr{Op: vm.OpGoto})
		}
	}
	fixes = append(fixes, fix{pos: 0, oldTgt: -1, tgtBlock: 0})
	// The method must still end in ret or goto; the reordering may have
	// placed a fall-through block last, but we always appended a goto for
	// those, so only a cond-branch-final block could violate it — such
	// blocks also got a goto (b.End < len) or ended the method originally.
	for _, f := range fixes {
		tb := f.tgtBlock
		if tb < 0 {
			tb = cfg.BlockOf(f.oldTgt)
		}
		newCode[f.pos].Target = newStart[tb]
	}
	m.Code = newCode
}

// blockCopying duplicates blocks and redirects a subset of their incoming
// branches to the copy (SandMark's "basic block copying").
func blockCopying(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		cfg := vm.BuildCFG(m)
		if cfg.NumBlocks() < 2 {
			continue
		}
		// Copy up to 3 randomly chosen blocks per method.
		for c := 0; c < 3; c++ {
			bi := rng.Intn(cfg.NumBlocks())
			b := cfg.Blocks[bi]
			if b.Start == 0 {
				continue // entry block needs no incoming branch
			}
			// Find branches targeting the block leader.
			var preds []int
			for pc, in := range m.Code {
				if in.Op.IsBranch() && in.Target == b.Start {
					preds = append(preds, pc)
				}
			}
			if len(preds) == 0 {
				continue
			}
			copyStart := len(m.Code)
			for pc := b.Start; pc < b.End; pc++ {
				m.Code = append(m.Code, m.Code[pc])
			}
			last := m.Code[len(m.Code)-1]
			if last.Op != vm.OpGoto && last.Op != vm.OpRet {
				// Restore the fall-through edge (also for cond branches).
				m.Code = append(m.Code, vm.Instr{Op: vm.OpGoto, Target: b.End})
			}
			// Redirect one predecessor to the copy.
			m.Code[preds[rng.Intn(len(preds))]].Target = copyStart
			cfg = vm.BuildCFG(m)
		}
	}
	return mustVerify(q)
}

// statementReordering swaps adjacent independent const/store statement
// pairs: `const a; store i; const b; store j` with i != j.
func statementReordering(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		cfg := vm.BuildCFG(m)
		for pc := 0; pc+3 < len(m.Code); pc++ {
			i0, i1, i2, i3 := m.Code[pc], m.Code[pc+1], m.Code[pc+2], m.Code[pc+3]
			if i0.Op == vm.OpConst && i1.Op == vm.OpStore &&
				i2.Op == vm.OpConst && i3.Op == vm.OpStore &&
				i1.A != i3.A && rng.Float64() < 0.8 &&
				sameBlock(cfg, pc, pc+3) && noBranchInto(m, pc+1, pc+3) {
				m.Code[pc], m.Code[pc+1], m.Code[pc+2], m.Code[pc+3] = i2, i3, i0, i1
				pc += 3
			}
		}
	}
	return mustVerify(q)
}

func sameBlock(cfg *vm.CFG, a, b int) bool { return cfg.BlockOf(a) == cfg.BlockOf(b) }

func noBranchInto(m *vm.Method, lo, hi int) bool {
	for _, in := range m.Code {
		if in.Op.IsBranch() && in.Target > lo && in.Target <= hi {
			return false
		}
	}
	return true
}

// constantObfuscation rewrites `const k` as `const a; const b; xor`.
func constantObfuscation(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		var positions []int
		for pc, in := range m.Code {
			if in.Op == vm.OpConst && rng.Float64() < 0.3 {
				positions = append(positions, pc)
			}
		}
		for i := len(positions) - 1; i >= 0; i-- {
			pc := positions[i]
			k := m.Code[pc].A
			mask := rng.Int63()
			replaceInstrAt(m, pc, []vm.Instr{
				{Op: vm.OpConst, A: k ^ mask},
				{Op: vm.OpConst, A: mask},
				{Op: vm.OpXor},
			})
		}
	}
	return mustVerify(q)
}

// arithmeticIdentity appends neutral operations after loads: x+0, x^0.
func arithmeticIdentity(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	ident := [][]vm.Instr{
		{{Op: vm.OpConst, A: 0}, {Op: vm.OpAdd}},
		{{Op: vm.OpConst, A: 0}, {Op: vm.OpXor}},
		{{Op: vm.OpConst, A: 0}, {Op: vm.OpOr}},
		{{Op: vm.OpConst, A: 0}, {Op: vm.OpSub}},
	}
	for _, m := range q.Methods {
		var positions []int
		for pc, in := range m.Code {
			if in.Op == vm.OpLoad && rng.Float64() < 0.2 {
				positions = append(positions, pc)
			}
		}
		for i := len(positions) - 1; i >= 0; i-- {
			m.InsertAfter(positions[i], ident[rng.Intn(len(ident))])
		}
	}
	return mustVerify(q)
}

// strengthSubstitution replaces multiplications/divisions by powers of two
// with shifts where the pattern `const 2^k; mul` occurs.
func strengthSubstitution(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		for pc := 0; pc+1 < len(m.Code); pc++ {
			c, op := m.Code[pc], m.Code[pc+1]
			if c.Op != vm.OpConst || op.Op != vm.OpMul {
				continue
			}
			k := c.A
			if k <= 0 || k&(k-1) != 0 {
				continue
			}
			shift := int64(0)
			for v := k; v > 1; v >>= 1 {
				shift++
			}
			if noBranchInto(m, pc, pc+1) {
				m.Code[pc] = vm.Instr{Op: vm.OpConst, A: shift}
				m.Code[pc+1] = vm.Instr{Op: vm.OpShl}
			}
		}
	}
	return mustVerify(q)
}

// localRenumbering permutes non-argument local slots (the analog of
// register reallocation).
func localRenumbering(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		nFree := m.NLocals - m.NArgs
		if nFree < 2 {
			continue
		}
		perm := rng.Perm(nFree)
		remap := func(idx int64) int64 {
			if idx < int64(m.NArgs) {
				return idx
			}
			return int64(m.NArgs + perm[idx-int64(m.NArgs)])
		}
		for i := range m.Code {
			if m.Code[i].Op == vm.OpLoad || m.Code[i].Op == vm.OpStore {
				m.Code[i].A = remap(m.Code[i].A)
			}
		}
	}
	return mustVerify(q)
}

// staticRenumbering permutes the program's static slots.
func staticRenumbering(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	if q.NStatics < 2 {
		return mustVerify(q)
	}
	perm := rng.Perm(q.NStatics)
	for _, m := range q.Methods {
		for i := range m.Code {
			if m.Code[i].Op == vm.OpGetStatic || m.Code[i].Op == vm.OpPutStatic {
				m.Code[i].A = int64(perm[m.Code[i].A])
			}
		}
	}
	return mustVerify(q)
}

// methodReordering permutes the method table.
func methodReordering(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	n := len(q.Methods)
	if n < 2 {
		return mustVerify(q)
	}
	perm := rng.Perm(n) // perm[old] = new
	newMethods := make([]*vm.Method, n)
	for old, m := range q.Methods {
		newMethods[perm[old]] = m
	}
	q.Methods = newMethods
	q.Entry = perm[q.Entry]
	for _, m := range q.Methods {
		for i := range m.Code {
			if m.Code[i].Op == vm.OpCall {
				m.Code[i].A = int64(perm[m.Code[i].A])
			}
		}
	}
	return mustVerify(q)
}
