package attacks

import (
	"math/rand"

	"pathmark/internal/vm"
)

// InsertRandomBranches implements the paper's branch insertion attack
// (§5.1.2, Figures 8(c) and 8(d)): conditional branches guarded by the
// attacker's opaquely false predicate
//
//	if (x * (x - 1) % 2 != 0) x++;
//
// are inserted at random positions until the program's static conditional
// branch count has grown by `increase` (1.0 = +100%). Each inserted branch
// that lands inside a watermark piece's code corrupts that piece's bits;
// the watermark survives as long as enough redundant pieces stay intact.
//
// The returned program is semantics-preserving (the predicate is always
// false) and verified.
func InsertRandomBranches(p *vm.Program, rng *rand.Rand, increase float64) *vm.Program {
	q := p.Clone()
	targetNew := int(float64(q.CountCondBranches()) * increase)
	if targetNew <= 0 {
		return mustVerify(q)
	}

	// Weight methods by code size so positions are uniform program-wide.
	type insertPoint struct {
		method int
		pc     int
	}
	var points []insertPoint
	for i := 0; i < targetNew; i++ {
		mi := weightedMethod(q, rng)
		m := q.Methods[mi]
		points = append(points, insertPoint{method: mi, pc: rng.Intn(len(m.Code))})
	}
	// Apply in descending pc order per method.
	byMethod := make(map[int][]int)
	for _, pt := range points {
		byMethod[pt.method] = append(byMethod[pt.method], pt.pc)
	}
	for mi, pcs := range byMethod {
		m := q.Methods[mi]
		x := int64(m.AllocLocal())
		sortDesc(pcs)
		for _, pc := range pcs {
			m.InsertAt(pc, attackSnippet(x, pc))
		}
	}
	return mustVerify(q)
}

// attackSnippet emits `if (x*(x-1) % 2 != 0) x++` at method-relative
// position `at` (bitwise parity form, overflow-safe).
func attackSnippet(x int64, at int) []vm.Instr {
	// Layout: load x; dup; const 1; sub; mul; const 1; and; ifne DO;
	//         goto END; DO: x++ (4); END:
	seq := []vm.Instr{
		{Op: vm.OpLoad, A: x},
		{Op: vm.OpDup},
		{Op: vm.OpConst, A: 1},
		{Op: vm.OpSub},
		{Op: vm.OpMul},
		{Op: vm.OpConst, A: 1},
		{Op: vm.OpAnd},
		{Op: vm.OpIfNe}, // -> DO
		{Op: vm.OpGoto}, // -> END
		{Op: vm.OpLoad, A: x},
		{Op: vm.OpConst, A: 1},
		{Op: vm.OpAdd},
		{Op: vm.OpStore, A: x},
	}
	seq[7].Target = at + 9  // DO
	seq[8].Target = at + 13 // END = one past the snippet
	return seq
}

func weightedMethod(p *vm.Program, rng *rand.Rand) int {
	total := 0
	for _, m := range p.Methods {
		total += len(m.Code)
	}
	x := rng.Intn(total)
	for i, m := range p.Methods {
		x -= len(m.Code)
		if x < 0 {
			return i
		}
	}
	return len(p.Methods) - 1
}

func sortDesc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
