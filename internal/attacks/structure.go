package attacks

import (
	"fmt"
	"math/rand"

	"pathmark/internal/vm"
)

// methodWrapping replaces up to two non-entry methods with forwarder
// wrappers: callers now reach `m` through `m` (the wrapper) -> `m$impl`
// (the original body), SandMark's "method splitting" in its simplest form.
func methodWrapping(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	candidates := rng.Perm(len(q.Methods))
	wrapped := 0
	for _, mi := range candidates {
		if mi == q.Entry || wrapped >= 2 {
			continue
		}
		orig := q.Methods[mi]
		impl := &vm.Method{
			Name:    orig.Name + "$impl",
			NArgs:   orig.NArgs,
			NLocals: orig.NLocals,
			Code:    append([]vm.Instr(nil), orig.Code...),
		}
		implIdx := len(q.Methods)
		q.Methods = append(q.Methods, impl)
		var fwd []vm.Instr
		for i := 0; i < orig.NArgs; i++ {
			fwd = append(fwd, vm.Instr{Op: vm.OpLoad, A: int64(i)})
		}
		fwd = append(fwd, vm.Instr{Op: vm.OpCall, A: int64(implIdx)}, vm.Instr{Op: vm.OpRet})
		orig.Code = fwd
		if orig.NLocals < orig.NArgs {
			orig.NLocals = orig.NArgs
		}
		wrapped++
	}
	return mustVerify(q)
}

// callIndirection reroutes a fraction of call sites through fresh stub
// methods that simply forward to the original callee.
func callIndirection(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	stubFor := make(map[int]int)
	nOrig := len(q.Methods)
	for mi := 0; mi < nOrig; mi++ {
		m := q.Methods[mi]
		for pc := range m.Code {
			if m.Code[pc].Op != vm.OpCall || rng.Float64() > 0.5 {
				continue
			}
			callee := int(m.Code[pc].A)
			stub, ok := stubFor[callee]
			if !ok {
				target := q.Methods[callee]
				var code []vm.Instr
				for i := 0; i < target.NArgs; i++ {
					code = append(code, vm.Instr{Op: vm.OpLoad, A: int64(i)})
				}
				code = append(code, vm.Instr{Op: vm.OpCall, A: int64(callee)}, vm.Instr{Op: vm.OpRet})
				stub = len(q.Methods)
				q.Methods = append(q.Methods, &vm.Method{
					Name:    fmt.Sprintf("%s$stub", target.Name),
					NArgs:   target.NArgs,
					NLocals: target.NArgs,
					Code:    code,
				})
				stubFor[callee] = stub
			}
			m.Code[pc].A = int64(stub)
		}
	}
	return mustVerify(q)
}

// retHeightsUniform reports whether every OpRet in the method executes at
// abstract stack height exactly 1 and returns false for methods whose
// heights cannot be computed; required for inlining.
func retHeightsUniform(p *vm.Program, m *vm.Method) bool {
	const unknown = -1
	height := make([]int, len(m.Code))
	for i := range height {
		height[i] = unknown
	}
	type item struct{ pc, h int }
	work := []item{{0, 0}}
	height[0] = 0
	ok := true
	push := func(pc, h int) {
		if height[pc] == unknown {
			height[pc] = h
			work = append(work, item{pc, h})
		} else if height[pc] != h {
			ok = false
		}
	}
	for len(work) > 0 && ok {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		in := m.Code[it.pc]
		var pops, pushes int
		if in.Op == vm.OpCall {
			pops, pushes = p.Methods[in.A].NArgs, 1
		} else {
			pops, pushes = vm.StackEffect(in.Op)
		}
		if it.h < pops {
			return false
		}
		next := it.h - pops + pushes
		switch {
		case in.Op == vm.OpRet:
			if it.h != 1 {
				return false
			}
		case in.Op == vm.OpGoto:
			push(in.Target, next)
		case in.Op.IsCondBranch():
			push(in.Target, next)
			if it.pc+1 < len(m.Code) {
				push(it.pc+1, next)
			}
		default:
			if it.pc+1 < len(m.Code) {
				push(it.pc+1, next)
			}
		}
	}
	return ok
}

// methodInlining inlines small leaf methods (no calls, uniform return
// height) into their call sites.
func methodInlining(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	isLeaf := func(m *vm.Method) bool {
		if len(m.Code) > 60 {
			return false
		}
		for _, in := range m.Code {
			if in.Op == vm.OpCall {
				return false
			}
		}
		return retHeightsUniform(q, m)
	}
	for _, m := range q.Methods {
		for pc := 0; pc < len(m.Code); pc++ {
			in := m.Code[pc]
			if in.Op != vm.OpCall || rng.Float64() > 0.6 {
				continue
			}
			callee := q.Methods[in.A]
			if callee == m || !isLeaf(callee) {
				continue
			}
			base := int64(m.NLocals)
			m.NLocals += callee.NLocals
			var seq []vm.Instr
			// Pop arguments into the inlined locals (top of stack is the
			// last argument).
			for i := callee.NArgs - 1; i >= 0; i-- {
				seq = append(seq, vm.Instr{Op: vm.OpStore, A: base + int64(i)})
			}
			bodyStart := pc + len(seq)
			endTarget := bodyStart + len(callee.Code)
			for _, cin := range callee.Code {
				c := cin
				switch c.Op {
				case vm.OpLoad, vm.OpStore:
					c.A += base
				case vm.OpRet:
					// Return value stays on the stack; jump to the end.
					c = vm.Instr{Op: vm.OpGoto, Target: endTarget}
				default:
					if c.Op.IsBranch() {
						c.Target += bodyStart
					}
				}
				seq = append(seq, c)
			}
			replaceInstrAt(m, pc, seq)
			pc += len(seq) - 1
		}
	}
	return mustVerify(q)
}

// methodMerging merges two non-entry methods into one with a selector
// argument (SandMark's method merging). Call sites pad missing arguments
// with zeros and pass the selector.
func methodMerging(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	// Pick two distinct non-entry methods.
	var cands []int
	for i := range q.Methods {
		if i != q.Entry {
			cands = append(cands, i)
		}
	}
	if len(cands) < 2 {
		return mustVerify(q)
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	ai, bi := cands[0], cands[1]
	a, b := q.Methods[ai], q.Methods[bi]

	maxArgs := a.NArgs
	if b.NArgs > maxArgs {
		maxArgs = b.NArgs
	}
	sel := maxArgs // local index of the selector argument
	aExtra := a.NLocals - a.NArgs
	bExtra := b.NLocals - b.NArgs
	merged := &vm.Method{
		Name:    a.Name + "+" + b.Name,
		NArgs:   maxArgs + 1,
		NLocals: maxArgs + 1 + aExtra + bExtra,
	}
	remap := func(idx int64, nargs, extraBase int) int64 {
		if idx < int64(nargs) {
			return idx
		}
		return int64(maxArgs + 1 + extraBase + (int(idx) - nargs))
	}
	// Prologue: if sel != 0 goto bStart.
	prologue := []vm.Instr{
		{Op: vm.OpLoad, A: int64(sel)},
		{Op: vm.OpIfNe}, // target patched below
	}
	aStart := len(prologue)
	bStart := aStart + len(a.Code)
	prologue[1].Target = bStart
	merged.Code = append(merged.Code, prologue...)
	for _, in := range a.Code {
		c := in
		if c.Op == vm.OpLoad || c.Op == vm.OpStore {
			c.A = remap(c.A, a.NArgs, 0)
		}
		if c.Op.IsBranch() {
			c.Target += aStart
		}
		merged.Code = append(merged.Code, c)
	}
	for _, in := range b.Code {
		c := in
		if c.Op == vm.OpLoad || c.Op == vm.OpStore {
			c.A = remap(c.A, b.NArgs, aExtra)
		}
		if c.Op.IsBranch() {
			c.Target += bStart
		}
		merged.Code = append(merged.Code, c)
	}
	mergedIdx := len(q.Methods)
	q.Methods = append(q.Methods, merged)

	// Rewrite every call site (including within the merged body).
	rewrite := func(m *vm.Method) {
		for pc := 0; pc < len(m.Code); pc++ {
			in := m.Code[pc]
			if in.Op != vm.OpCall || (int(in.A) != ai && int(in.A) != bi) {
				continue
			}
			var nargs int
			var selVal int64
			if int(in.A) == ai {
				nargs, selVal = a.NArgs, 0
			} else {
				nargs, selVal = b.NArgs, 1
			}
			var seq []vm.Instr
			for i := nargs; i < maxArgs; i++ {
				seq = append(seq, vm.Instr{Op: vm.OpConst, A: 0})
			}
			seq = append(seq,
				vm.Instr{Op: vm.OpConst, A: selVal},
				vm.Instr{Op: vm.OpCall, A: int64(mergedIdx)})
			replaceInstrAt(m, pc, seq)
			pc += len(seq) - 1
		}
	}
	for _, m := range q.Methods {
		rewrite(m)
	}
	// Remove the merged-away methods, remapping call indices.
	newIndex := make([]int64, len(q.Methods))
	var kept []*vm.Method
	for i, m := range q.Methods {
		if i == ai || i == bi {
			newIndex[i] = -1
			continue
		}
		newIndex[i] = int64(len(kept))
		kept = append(kept, m)
	}
	for _, m := range kept {
		for pc := range m.Code {
			if m.Code[pc].Op == vm.OpCall {
				m.Code[pc].A = newIndex[m.Code[pc].A]
			}
		}
	}
	q.Entry = int(newIndex[q.Entry])
	q.Methods = kept
	return mustVerify(q)
}

// deadMethodInsertion appends unreachable decoy methods.
func deadMethodInsertion(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		q.Methods = append(q.Methods, &vm.Method{
			Name:    fmt.Sprintf("decoy%d_%d", i, rng.Intn(1<<20)),
			NArgs:   1,
			NLocals: 2,
			Code: []vm.Instr{
				{Op: vm.OpLoad, A: 0},
				{Op: vm.OpConst, A: rng.Int63n(100)},
				{Op: vm.OpAdd},
				{Op: vm.OpStore, A: 1},
				{Op: vm.OpLoad, A: 1},
				{Op: vm.OpRet},
			},
		})
	}
	return mustVerify(q)
}
