package attacks

import (
	"math/rand"
	"testing"

	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// TestCatalogPreservesSemanticsOnRandomPrograms is the package's central
// property test: every attack in the catalog must keep every generated
// program verified and observationally identical.
func TestCatalogPreservesSemanticsOnRandomPrograms(t *testing.T) {
	catalog := Catalog()
	for seed := int64(0); seed < 8; seed++ {
		p := workloads.RandomProgram(workloads.RandProgOptions{Seed: seed})
		ref, err := vm.Run(p, vm.RunOptions{StepLimit: 5_000_000})
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		for _, a := range catalog {
			rng := rand.New(rand.NewSource(seed * 31))
			attacked := a.Apply(p, rng)
			if err := vm.Verify(attacked); err != nil {
				t.Fatalf("seed %d, %s: verify: %v", seed, a.Name, err)
			}
			got, err := vm.Run(attacked, vm.RunOptions{StepLimit: 50_000_000})
			if err != nil {
				t.Fatalf("seed %d, %s: run: %v", seed, a.Name, err)
			}
			if !vm.SameBehavior(ref, got) {
				t.Errorf("seed %d, %s: behavior changed", seed, a.Name)
			}
		}
	}
}

// TestRandomAttackChainsOnRandomPrograms composes random attack chains —
// distortions must stack without breaking semantics.
func TestRandomAttackChainsOnRandomPrograms(t *testing.T) {
	distortive := Distortive()
	for seed := int64(0); seed < 5; seed++ {
		p := workloads.RandomProgram(workloads.RandProgOptions{Seed: seed + 100})
		ref, err := vm.Run(p, vm.RunOptions{StepLimit: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		attacked := p
		for i := 0; i < 5; i++ {
			a := distortive[rng.Intn(len(distortive))]
			attacked = a.Apply(attacked, rng)
		}
		got, err := vm.Run(attacked, vm.RunOptions{StepLimit: 100_000_000})
		if err != nil {
			t.Fatalf("seed %d: chained attacks: %v", seed, err)
		}
		if !vm.SameBehavior(ref, got) {
			t.Errorf("seed %d: chained attacks changed behavior", seed)
		}
	}
}
