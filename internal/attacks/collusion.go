package attacks

import (
	"math/rand"

	"pathmark/internal/vm"
)

// Collusion analysis (paper §5.1.2): an attacker holding two fingerprinted
// copies of the same program can diff them — everything the copies do NOT
// share is a watermark-code suspect that can be stripped. The paper's
// defense is to obfuscate each copy independently *before* watermarking,
// so the diff contains "much more than just the watermark code".
//
// CollusionSuspects quantifies the attack's leverage: the fraction of the
// first program's instructions that fall outside a per-method longest
// common subsequence with the second copy. Near 0 means the diff precisely
// localizes the watermark; large values mean stripping the diff would
// destroy the program itself.
func CollusionSuspects(a, b *vm.Program) float64 {
	totalA := 0
	common := 0
	for _, ma := range a.Methods {
		totalA += len(ma.Code)
		if mb := b.MethodByName(ma.Name); mb != nil {
			common += lcsLen(ma.Code, mb.Code)
		}
	}
	if totalA == 0 {
		return 0
	}
	return 1 - float64(common)/float64(totalA)
}

// lcsLen computes the longest-common-subsequence length over instruction
// sequences with two-row dynamic programming. Instructions match when
// their opcodes agree and, for non-branch opcodes, their immediates agree
// (branch targets legitimately shift between copies).
func lcsLen(a, b []vm.Instr) int {
	match := func(x, y vm.Instr) bool {
		if x.Op != y.Op {
			return false
		}
		if x.Op.IsBranch() {
			return true
		}
		return x.A == y.A
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			switch {
			case match(a[i-1], b[j-1]):
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// PreObfuscate applies a randomized chain of distortive transformations —
// the paper's collusion defense, producing a "highly diverse program
// population" so that per-customer copies differ everywhere, not only in
// their watermark code. Each copy must use its own seed.
func PreObfuscate(p *vm.Program, seed int64, rounds int) *vm.Program {
	rng := rand.New(rand.NewSource(seed))
	distortive := Distortive()
	out := p
	for i := 0; i < rounds; i++ {
		a := distortive[rng.Intn(len(distortive))]
		out = a.Apply(out, rng)
	}
	return mustVerify(out.Clone())
}
