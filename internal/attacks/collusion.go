package attacks

import (
	"errors"
	"fmt"
	"math/rand"

	"pathmark/internal/vm"
)

// Collusion analysis and attack (paper §5.1.2): an attacker holding two or
// more fingerprinted copies of the same program can diff them — everything
// the copies do NOT share is a watermark-code suspect that can be stripped
// or scrambled. The paper's defense is to obfuscate each copy
// independently *before* watermarking, so the diff contains "much more
// than just the watermark code"; wm.BatchOptions.Harden is the
// complementary defense of making the copies share everything *except* an
// unremovable kernel.
//
// CollusionSuspects quantifies the attack's leverage: the fraction of the
// first program's instructions that fall outside a per-method longest
// common subsequence with the second copy. Near 0 means the diff precisely
// localizes the watermark; large values mean stripping the diff would
// destroy the program itself.
func CollusionSuspects(a, b *vm.Program) float64 {
	totalA := 0
	common := 0
	for _, ma := range a.Methods {
		totalA += len(ma.Code)
		if mb := b.MethodByName(ma.Name); mb != nil {
			common += lcsLen(ma.Code, mb.Code)
		}
	}
	if totalA == 0 {
		return 0
	}
	return 1 - float64(common)/float64(totalA)
}

// instrMatch is the collusion diff's instruction equivalence: opcodes must
// agree and, for non-branch opcodes, immediates must agree (branch targets
// legitimately shift between copies). The relation is symmetric, so the
// LCS over it is too.
func instrMatch(x, y vm.Instr) bool {
	if x.Op != y.Op {
		return false
	}
	if x.Op.IsBranch() {
		return true
	}
	return x.A == y.A
}

// lcsLen computes the longest-common-subsequence length over instruction
// sequences in memory bounded by the *shorter* side: matching prefix and
// suffix are peeled off first (always optimal: when the first elements
// match, some maximal subsequence uses that pair), then two DP rows are
// allocated over the shorter remainder. Diffing a fleet's worth of large
// near-identical copies — the hardened-fleet case, where copies differ in
// a handful of constants — costs O(diff span) memory instead of
// O(method size).
func lcsLen(a, b []vm.Instr) int {
	common := 0
	for len(a) > 0 && len(b) > 0 && instrMatch(a[0], b[0]) {
		a, b = a[1:], b[1:]
		common++
	}
	for len(a) > 0 && len(b) > 0 && instrMatch(a[len(a)-1], b[len(b)-1]) {
		a, b = a[:len(a)-1], b[:len(b)-1]
		common++
	}
	if len(b) > len(a) {
		a, b = b, a
	}
	if len(b) == 0 {
		return common
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			switch {
			case instrMatch(a[i-1], b[j-1]):
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return common + prev[len(b)]
}

// lcsRow returns the final DP row f with f[j] = LCS(a, b[:j]).
func lcsRow(a, b []vm.Instr) []int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			switch {
			case instrMatch(a[i-1], b[j-1]):
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev
}

// lcsRowRev returns g with g[j] = LCS(a, b[j:]) — the mirror of lcsRow,
// used for Hirschberg's split search.
func lcsRowRev(a, b []vm.Instr) []int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := len(a) - 1; i >= 0; i-- {
		for j := len(b) - 1; j >= 0; j-- {
			switch {
			case instrMatch(a[i], b[j]):
				cur[j] = prev[j+1] + 1
			case prev[j] >= cur[j+1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j+1]
			}
		}
		prev, cur = cur, prev
	}
	return prev
}

// lcsMarks marks which instructions of a participate in one fixed
// maximum-length common subsequence with b, via Hirschberg's linear-space
// divide and conquer: O(len(a)·len(b)) time, O(len(b)) live rows. The
// unmarked positions are exactly the diff a colluding coalition sees.
func lcsMarks(a, b []vm.Instr) []bool {
	marks := make([]bool, len(a))
	hirschbergMark(a, b, 0, marks)
	return marks
}

func hirschbergMark(a, b []vm.Instr, aOff int, marks []bool) {
	if len(a) == 0 || len(b) == 0 {
		return
	}
	if len(a) == 1 {
		for _, y := range b {
			if instrMatch(a[0], y) {
				marks[aOff] = true
				return
			}
		}
		return
	}
	mid := len(a) / 2
	f := lcsRow(a[:mid], b)
	g := lcsRowRev(a[mid:], b)
	bestK, best := 0, -1
	for k := 0; k <= len(b); k++ {
		if f[k]+g[k] > best {
			best, bestK = f[k]+g[k], k
		}
	}
	hirschbergMark(a[:mid], b[:bestK], aOff, marks)
	hirschbergMark(a[mid:], b[bestK:], aOff+mid, marks)
}

// CollusionMode selects what the coalition does with the divergent sites
// its diff exposes.
type CollusionMode int

const (
	// CollusionStrip overwrites each divergent instruction run with no-ops
	// — the classic "delete what differs" fingerprint attack.
	CollusionStrip CollusionMode = iota
	// CollusionRandomize rewrites the constant immediates inside divergent
	// runs to random values, aiming to scramble embedded data without
	// perturbing control flow.
	CollusionRandomize
)

func (m CollusionMode) String() string {
	if m == CollusionRandomize {
		return "randomize"
	}
	return "strip"
}

// CollusionOptions tunes Collude.
type CollusionOptions struct {
	Mode CollusionMode
	// Probes are the input vectors of the coalition's behavior check: a
	// mutation that changes the victim's observable behavior (or breaks
	// verification) on any probe is rolled back — the attacker wants a
	// working program. nil uses DefaultProbes.
	Probes [][]int64
	// StepLimit bounds each reference probe run (0 = 10M steps); mutated
	// programs get 4× the reference run's step count, so a mutation that
	// introduces an unbounded loop is detected and rolled back.
	StepLimit int64
}

// DefaultProbes is the default behavior-check input set: the empty input
// plus two short token vectors (hosts in this codebase treat inputs
// defensively, so arbitrary tokens exercise real paths).
func DefaultProbes() [][]int64 {
	return [][]int64{nil, {1, 2, 3, 4}, {9, 0, 7}}
}

// CollusionReport summarizes one coalition attack.
type CollusionReport struct {
	// Colluders is the coalition size beyond the victim copy.
	Colluders int
	// TotalInstrs / SuspectInstrs: victim program size and how much of it
	// fell outside the coalition's common core.
	TotalInstrs   int
	SuspectInstrs int
	// Runs counts the contiguous divergent runs attacked; Mutated the runs
	// whose mutation stuck; RolledBack the runs reverted because the
	// mutation broke verification or probe behavior.
	Runs       int
	Mutated    int
	RolledBack int
}

// Collude mounts the coalition attack on copies[0]: every other copy is a
// colluder whose per-method instruction diff (Hirschberg LCS under
// instrMatch) narrows the victim's "common core". Instructions outside
// the core of ALL colluders are attacked in contiguous runs — stripped to
// no-ops or constant-randomized per opts.Mode — and each run's mutation is
// kept only if the program still verifies and behaves identically on the
// probe inputs. The victim copies are never mutated; the attacked clone is
// returned with a report of the coalition's leverage.
//
// The rollback rule is what the coalition-hardened embedder exploits:
// a watermark piece constant whose removal breaks stack discipline
// survives stripping even when the diff localizes it exactly.
func Collude(copies []*vm.Program, rng *rand.Rand, opts CollusionOptions) (*vm.Program, *CollusionReport, error) {
	if len(copies) == 0 {
		return nil, nil, errors.New("attacks: Collude needs at least the victim copy")
	}
	victim := copies[0]
	out := victim.Clone()
	rep := &CollusionReport{Colluders: len(copies) - 1, TotalInstrs: victim.CodeSize()}
	if len(copies) == 1 {
		return out, rep, nil // a coalition of one has no diff to attack
	}

	probes := opts.Probes
	if probes == nil {
		probes = DefaultProbes()
	}
	refLimit := opts.StepLimit
	if refLimit <= 0 {
		refLimit = 10_000_000
	}
	refs := make([]*vm.Result, len(probes))
	limits := make([]int64, len(probes))
	for i, in := range probes {
		ref, err := vm.Run(victim, vm.RunOptions{Input: in, StepLimit: refLimit})
		if err != nil {
			return nil, nil, fmt.Errorf("attacks: victim fails probe %d: %w", i, err)
		}
		refs[i] = ref
		limits[i] = ref.Steps*4 + 4096
	}
	stillBehaves := func() bool {
		for i, in := range probes {
			got, err := vm.Run(out, vm.RunOptions{Input: in, StepLimit: limits[i]})
			if err != nil || !vm.SameBehavior(refs[i], got) {
				return false
			}
		}
		return true
	}

	for mi, ma := range out.Methods {
		if len(ma.Code) == 0 {
			continue
		}
		core := make([]bool, len(ma.Code))
		for i := range core {
			core[i] = true
		}
		for _, c := range copies[1:] {
			mb := c.MethodByName(ma.Name)
			if mb == nil {
				for i := range core {
					core[i] = false
				}
				break
			}
			marks := lcsMarks(ma.Code, mb.Code)
			for i := range core {
				core[i] = core[i] && marks[i]
			}
		}
		for _, c := range core {
			if !c {
				rep.SuspectInstrs++
			}
		}
		// Attack each maximal divergent run. Mutations preserve the
		// instruction count, so branch targets (and the core indices of
		// later runs) stay valid whether or not a run is kept.
		for lo := 0; lo < len(ma.Code); {
			if core[lo] {
				lo++
				continue
			}
			hi := lo
			for hi < len(ma.Code) && !core[hi] {
				hi++
			}
			saved := append([]vm.Instr(nil), ma.Code[lo:hi]...)
			changed := false
			switch opts.Mode {
			case CollusionRandomize:
				for pc := lo; pc < hi; pc++ {
					if ma.Code[pc].Op == vm.OpConst {
						ma.Code[pc].A = rng.Int63()
						changed = true
					}
				}
			default:
				for pc := lo; pc < hi; pc++ {
					ma.Code[pc] = vm.Instr{Op: vm.OpNop}
				}
				changed = true
			}
			if changed {
				rep.Runs++
				if vm.VerifyMethod(out, mi) == nil && stillBehaves() {
					rep.Mutated++
				} else {
					copy(ma.Code[lo:hi], saved)
					rep.RolledBack++
				}
			}
			lo = hi
		}
	}
	return mustVerify(out), rep, nil
}

// PreObfuscate applies a randomized chain of distortive transformations —
// the paper's collusion defense, producing a "highly diverse program
// population" so that per-customer copies differ everywhere, not only in
// their watermark code. Each copy must use its own seed.
func PreObfuscate(p *vm.Program, seed int64, rounds int) *vm.Program {
	rng := rand.New(rand.NewSource(seed))
	distortive := Distortive()
	out := p
	for i := 0; i < rounds; i++ {
		a := distortive[rng.Intn(len(distortive))]
		out = a.Apply(out, rng)
	}
	return mustVerify(out.Clone())
}
