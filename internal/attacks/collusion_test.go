package attacks

import (
	"testing"

	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

func embedCopy(t *testing.T, host *vm.Program, key *wm.Key, fpSeed uint64, embedSeed int64) *vm.Program {
	t.Helper()
	w := wm.RandomWatermark(64, fpSeed)
	marked, _, err := wm.Embed(host, w, key, wm.EmbedOptions{Seed: embedSeed, Pieces: 8, Policy: wm.GenLoopOnly})
	if err != nil {
		t.Fatal(err)
	}
	return marked
}

func collusionHost() *vm.Program {
	return workloads.JessLike(workloads.JessLikeOptions{Seed: 5, Methods: 30, BlockSize: 100})
}

func TestCollusionSuspectsIdentical(t *testing.T) {
	p := workloads.CaffeineMark()
	if f := CollusionSuspects(p, p); f != 0 {
		t.Errorf("identical programs suspect fraction = %v, want 0", f)
	}
}

func TestCollusionLocalizesUnprotectedWatermarks(t *testing.T) {
	// Two fingerprinted copies of the same original: the diff pinpoints
	// the watermark code (§5.1.2's collusive attack) — the suspect
	// fraction is far below 1 but nonzero.
	host := collusionHost()
	key, err := wm.NewKey(nil, testCipherKey(), 64)
	if err != nil {
		t.Fatal(err)
	}
	copyA := embedCopy(t, host, key, 1, 100)
	copyB := embedCopy(t, host, key, 2, 200)
	f := CollusionSuspects(copyA, copyB)
	if f <= 0 {
		t.Fatal("different fingerprints produced identical copies")
	}
	if f > 0.4 {
		t.Errorf("suspect fraction %.2f: diff should localize the mark in unprotected copies", f)
	}
}

func TestPreObfuscationDefeatsCollusion(t *testing.T) {
	// The paper's defense: per-copy pre-obfuscation makes the two copies
	// differ broadly, so the diff no longer isolates the watermark.
	host := collusionHost()
	key, err := wm.NewKey(nil, testCipherKey(), 64)
	if err != nil {
		t.Fatal(err)
	}
	plainA := embedCopy(t, host, key, 1, 100)
	plainB := embedCopy(t, host, key, 2, 200)
	plainSuspects := CollusionSuspects(plainA, plainB)

	obfA := embedCopy(t, PreObfuscate(host, 11, 4), key, 1, 100)
	obfB := embedCopy(t, PreObfuscate(host, 22, 4), key, 2, 200)
	obfSuspects := CollusionSuspects(obfA, obfB)

	if obfSuspects <= plainSuspects {
		t.Errorf("pre-obfuscation did not widen the diff: %.3f vs %.3f", obfSuspects, plainSuspects)
	}

	// The defense must not hurt recognition or semantics.
	for i, c := range []*vm.Program{obfA, obfB} {
		ref, err := vm.Run(host, vm.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := vm.Run(c, vm.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !vm.SameBehavior(ref, got) {
			t.Errorf("obfuscated copy %d changed behavior", i)
		}
		rec, err := wm.Recognize(c, key)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Matches(wm.RandomWatermark(64, uint64(i)+1)) {
			t.Errorf("obfuscated copy %d lost its fingerprint", i)
		}
	}
}
