// Package attacks implements the semantics-preserving code transformations
// used to evaluate the Java-side watermark's resilience (paper §5.1.2).
// SandMark ships 40 distortive attacks; this package reimplements the
// catalog's representative families over internal/vm programs — block
// reordering and copying, branch-sense inversion, goto chaining, no-op and
// dead-code insertion, statement reordering, constant and instruction
// substitution, local/static/method renumbering, method splitting, merging
// and inlining — plus the two attacks the paper found destructive:
//
//   - random branch insertion (§5.1.2, Figures 8(c) and 8(d)), and
//   - a trace-destroying transformation standing in for class encryption:
//     control-flow flattening, which (like class encryption) defeats the
//     tracer by making the observed branch structure unrelated to the
//     original program's.
//
// Every attack returns a fresh program that passes vm.Verify and behaves
// identically on all inputs; the test suite enforces both properties.
//
// Beyond the single-copy catalog, Collude implements the coalition attack
// the paper never models: k customers diff their fingerprinted copies to
// localize and destroy the code that differs between them.
package attacks

import (
	"fmt"
	"math/rand"

	"pathmark/internal/vm"
)

// Attack is one catalog entry.
type Attack struct {
	// Name identifies the attack in reports and campaign manifests.
	Name string
	// Category groups the attack by the program aspect it distorts:
	// "layout" (instruction- and block-level shuffling), "data" (operand
	// and expression rewrites), "rename" (index permutations), "method"
	// (inter-procedural restructuring), "loop" (loop and peephole
	// rewrites), or "destructive" (expected to defeat the watermark).
	Category string
	// Destroys records whether the paper expects this attack to defeat
	// the watermark (true only for branch insertion and the class
	// encryption analog).
	Destroys bool
	// Knobs documents the strength parameters baked into this entry (the
	// tournament's additional knob — repeated application — is uniform
	// across the catalog and not listed here).
	Knobs []Knob
	// Apply transforms a copy of the program. Implementations never
	// mutate the argument and panic with a *AttackError if the transform
	// produces an invalid program; use Run to turn that into an error.
	Apply func(p *vm.Program, rng *rand.Rand) *vm.Program
}

// Knob documents one strength parameter baked into a catalog entry.
type Knob struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// AttackError reports a transformation that produced an invalid program —
// an attack bug, not a property of the watermark. Attack implementations
// panic with it (the transforms are deep call chains with no error
// plumbing); Run converts the panic into a returned error so a campaign
// can degrade the cell to "fail" instead of losing the worker.
type AttackError struct {
	// Attack is the catalog name when known ("" inside a bare Apply call).
	Attack string
	Cause  error
}

func (e *AttackError) Error() string {
	if e.Attack == "" {
		return fmt.Sprintf("attacks: transformation produced invalid program: %v", e.Cause)
	}
	return fmt.Sprintf("attacks: %s produced invalid program: %v", e.Attack, e.Cause)
}

func (e *AttackError) Unwrap() error { return e.Cause }

// Run applies the attack with per-call panic recovery: a transform that
// produces an unverifiable program (or panics outright) returns a typed
// *AttackError instead of unwinding the caller. This is the tournament's
// cell boundary — the same containment contract the recognizer gives scan
// chunks.
func Run(a Attack, p *vm.Program, rng *rand.Rand) (out *vm.Program, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		out = nil
		if ae, ok := r.(*AttackError); ok {
			if ae.Attack == "" {
				ae.Attack = a.Name
			}
			err = ae
			return
		}
		err = &AttackError{Attack: a.Name, Cause: fmt.Errorf("panic: %v", r)}
	}()
	return a.Apply(p, rng), nil
}

// Catalog returns the full attack catalog in a stable order.
func Catalog() []Attack {
	return []Attack{
		{Name: "nop-insertion-light", Category: "layout", Knobs: []Knob{{Name: "fraction", Value: 0.1}}, Apply: nopInsertion(0.1)},
		{Name: "nop-insertion-heavy", Category: "layout", Knobs: []Knob{{Name: "fraction", Value: 0.5}}, Apply: nopInsertion(0.5)},
		{Name: "dead-code-insertion", Category: "layout", Apply: deadCodeInsertion},
		{Name: "block-split", Category: "layout", Apply: blockSplit},
		{Name: "goto-chaining", Category: "layout", Apply: gotoChaining},
		{Name: "branch-sense-inversion", Category: "layout", Apply: branchSenseInversion},
		{Name: "block-reordering", Category: "layout", Apply: blockReordering},
		{Name: "block-copying", Category: "layout", Apply: blockCopying},
		{Name: "statement-reordering", Category: "data", Apply: statementReordering},
		{Name: "constant-obfuscation", Category: "data", Apply: constantObfuscation},
		{Name: "arithmetic-identity", Category: "data", Apply: arithmeticIdentity},
		{Name: "strength-substitution", Category: "data", Apply: strengthSubstitution},
		{Name: "local-renumbering", Category: "rename", Apply: localRenumbering},
		{Name: "static-renumbering", Category: "rename", Apply: staticRenumbering},
		{Name: "method-reordering", Category: "rename", Apply: methodReordering},
		{Name: "method-wrapping", Category: "method", Apply: methodWrapping},
		{Name: "call-indirection", Category: "method", Apply: callIndirection},
		{Name: "method-inlining", Category: "method", Apply: methodInlining},
		{Name: "method-merging", Category: "method", Apply: methodMerging},
		{Name: "dead-method-insertion", Category: "method", Apply: deadMethodInsertion},
		{Name: "loop-peeling", Category: "loop", Apply: loopPeeling},
		{Name: "peephole-optimization", Category: "loop", Apply: peepholeOptimization},
		{Name: "branch-insertion", Category: "destructive", Destroys: true,
			Knobs: []Knob{{Name: "increase", Value: 1.5}},
			Apply: func(p *vm.Program, rng *rand.Rand) *vm.Program {
				return InsertRandomBranches(p, rng, 1.5)
			}},
		{Name: "class-encryption(flattening)", Category: "destructive", Destroys: true, Apply: controlFlowFlattening},
	}
}

// ByName resolves a catalog entry, the lookup campaign manifests use so
// attack names cannot drift from the catalog.
func ByName(name string) (Attack, bool) {
	for _, a := range Catalog() {
		if a.Name == name {
			return a, true
		}
	}
	return Attack{}, false
}

// Distortive returns only the attacks the watermark is expected to survive.
func Distortive() []Attack {
	var out []Attack
	for _, a := range Catalog() {
		if !a.Destroys {
			out = append(out, a)
		}
	}
	return out
}

// mustVerify is the post-condition every attack enforces. It panics with a
// typed *AttackError (recovered by Run) so the failure is attributable and
// containable at the campaign-cell boundary.
func mustVerify(p *vm.Program) *vm.Program {
	if err := vm.Verify(p); err != nil {
		panic(&AttackError{Cause: err})
	}
	return p
}
