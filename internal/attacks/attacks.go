// Package attacks implements the semantics-preserving code transformations
// used to evaluate the Java-side watermark's resilience (paper §5.1.2).
// SandMark ships 40 distortive attacks; this package reimplements the
// catalog's representative families over internal/vm programs — block
// reordering and copying, branch-sense inversion, goto chaining, no-op and
// dead-code insertion, statement reordering, constant and instruction
// substitution, local/static/method renumbering, method splitting, merging
// and inlining — plus the two attacks the paper found destructive:
//
//   - random branch insertion (§5.1.2, Figures 8(c) and 8(d)), and
//   - a trace-destroying transformation standing in for class encryption:
//     control-flow flattening, which (like class encryption) defeats the
//     tracer by making the observed branch structure unrelated to the
//     original program's.
//
// Every attack returns a fresh program that passes vm.Verify and behaves
// identically on all inputs; the test suite enforces both properties.
package attacks

import (
	"math/rand"

	"pathmark/internal/vm"
)

// Attack is one catalog entry.
type Attack struct {
	// Name identifies the attack in reports.
	Name string
	// Destroys records whether the paper expects this attack to defeat
	// the watermark (true only for branch insertion and the class
	// encryption analog).
	Destroys bool
	// Apply transforms a copy of the program. Implementations never
	// mutate the argument.
	Apply func(p *vm.Program, rng *rand.Rand) *vm.Program
}

// Catalog returns the full attack catalog in a stable order.
func Catalog() []Attack {
	return []Attack{
		{Name: "nop-insertion-light", Apply: nopInsertion(0.1)},
		{Name: "nop-insertion-heavy", Apply: nopInsertion(0.5)},
		{Name: "dead-code-insertion", Apply: deadCodeInsertion},
		{Name: "block-split", Apply: blockSplit},
		{Name: "goto-chaining", Apply: gotoChaining},
		{Name: "branch-sense-inversion", Apply: branchSenseInversion},
		{Name: "block-reordering", Apply: blockReordering},
		{Name: "block-copying", Apply: blockCopying},
		{Name: "statement-reordering", Apply: statementReordering},
		{Name: "constant-obfuscation", Apply: constantObfuscation},
		{Name: "arithmetic-identity", Apply: arithmeticIdentity},
		{Name: "strength-substitution", Apply: strengthSubstitution},
		{Name: "local-renumbering", Apply: localRenumbering},
		{Name: "static-renumbering", Apply: staticRenumbering},
		{Name: "method-reordering", Apply: methodReordering},
		{Name: "method-wrapping", Apply: methodWrapping},
		{Name: "call-indirection", Apply: callIndirection},
		{Name: "method-inlining", Apply: methodInlining},
		{Name: "method-merging", Apply: methodMerging},
		{Name: "dead-method-insertion", Apply: deadMethodInsertion},
		{Name: "loop-peeling", Apply: loopPeeling},
		{Name: "peephole-optimization", Apply: peepholeOptimization},
		{Name: "branch-insertion", Destroys: true, Apply: func(p *vm.Program, rng *rand.Rand) *vm.Program {
			return InsertRandomBranches(p, rng, 1.5)
		}},
		{Name: "class-encryption(flattening)", Destroys: true, Apply: controlFlowFlattening},
	}
}

// Distortive returns only the attacks the watermark is expected to survive.
func Distortive() []Attack {
	var out []Attack
	for _, a := range Catalog() {
		if !a.Destroys {
			out = append(out, a)
		}
	}
	return out
}

// mustVerify is the post-condition every attack enforces.
func mustVerify(p *vm.Program) *vm.Program {
	if err := vm.Verify(p); err != nil {
		panic("attacks: transformation produced invalid program: " + err.Error())
	}
	return p
}
