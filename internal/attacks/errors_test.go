package attacks

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// TestRunRecoversAttackError: an attack that corrupts its output panics
// via mustVerify; Run must convert that into a typed *AttackError naming
// the attack, never propagate the panic.
func TestRunRecoversAttackError(t *testing.T) {
	bad := Attack{
		Name:     "test-corruptor",
		Category: "test",
		Apply: func(p *vm.Program, rng *rand.Rand) *vm.Program {
			out := p.Clone()
			// Push with no consumer: stack discipline breaks.
			out.Methods[0].Code = append([]vm.Instr{{Op: vm.OpConst, A: 1}}, out.Methods[0].Code...)
			return mustVerify(out)
		},
	}
	_, err := Run(bad, workloads.MiniCalc(), rand.New(rand.NewSource(1)))
	var ae *AttackError
	if !errors.As(err, &ae) {
		t.Fatalf("want *AttackError, got %v", err)
	}
	if ae.Attack != "test-corruptor" {
		t.Errorf("AttackError.Attack = %q, want the attack name", ae.Attack)
	}
	if ae.Unwrap() == nil {
		t.Error("AttackError should wrap the verifier error")
	}
}

// TestRunRecoversRawPanic: even a non-AttackError panic inside an attack
// becomes an error at the Run boundary.
func TestRunRecoversRawPanic(t *testing.T) {
	bad := Attack{
		Name: "test-panicker",
		Apply: func(p *vm.Program, rng *rand.Rand) *vm.Program {
			panic("boom")
		},
	}
	_, err := Run(bad, workloads.MiniCalc(), rand.New(rand.NewSource(1)))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want error mentioning panic value, got %v", err)
	}
	var ae *AttackError
	if !errors.As(err, &ae) || ae.Attack != "test-panicker" {
		t.Fatalf("raw panic not converted to named *AttackError: %v", err)
	}
}

// TestRunSucceedsOnCatalog: Run over a healthy catalog entry returns the
// attacked program with no error and leaves the input untouched.
func TestRunSucceedsOnCatalog(t *testing.T) {
	a, ok := ByName("nop-insertion-light")
	if !ok {
		t.Fatal("catalog entry missing")
	}
	p := workloads.MiniCalc()
	before := vm.Dump(p)
	out, err := Run(a, p, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("nil attacked program")
	}
	if vm.Dump(p) != before {
		t.Error("Run mutated its input program")
	}
}

// TestCatalogMetadata: every entry carries a category and the knob
// metadata matches what the closures actually use (spot-checked on the
// paired light/heavy entries).
func TestCatalogMetadata(t *testing.T) {
	for _, a := range Catalog() {
		if a.Category == "" {
			t.Errorf("%s: empty category", a.Name)
		}
		for _, k := range a.Knobs {
			if k.Name == "" {
				t.Errorf("%s: unnamed knob", a.Name)
			}
		}
	}
	light, _ := ByName("nop-insertion-light")
	heavy, _ := ByName("nop-insertion-heavy")
	if len(light.Knobs) == 0 || len(heavy.Knobs) == 0 {
		t.Fatal("nop insertion entries should expose their fraction knob")
	}
	if light.Knobs[0].Value >= heavy.Knobs[0].Value {
		t.Errorf("light knob %v not below heavy knob %v",
			light.Knobs[0].Value, heavy.Knobs[0].Value)
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName invented an attack")
	}
}

// TestCatalogDeterministicUnderSeed is the reproducibility property the
// tournament's byte-identical matrix rests on: every catalog entry, given
// the same rng seed, produces a byte-identical attacked program.
func TestCatalogDeterministicUnderSeed(t *testing.T) {
	progs := []*vm.Program{
		workloads.MiniCalc(),
		workloads.JessLike(workloads.JessLikeOptions{Seed: 3, Methods: 8, BlockSize: 30}),
	}
	for _, a := range Catalog() {
		for pi, p := range progs {
			run := func(seed int64) string {
				out, err := Run(a, p, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("%s on prog %d: %v", a.Name, pi, err)
				}
				return vm.Dump(out)
			}
			if run(7) != run(7) {
				t.Errorf("%s on prog %d: same seed, different output", a.Name, pi)
			}
		}
	}
}
