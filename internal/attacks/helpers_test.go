package attacks

import "pathmark/internal/feistel"

func testCipherKey() feistel.Key {
	return feistel.KeyFromUint64(0xa5a5a5a5a5a5a5a5, 0x5a5a5a5a5a5a5a5a)
}
