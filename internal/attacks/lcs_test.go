package attacks

import (
	"math/rand"
	"testing"

	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// randInstrs draws a random instruction sequence over a small alphabet so
// LCS structure is non-trivial (many ties, repeated symbols).
func randInstrs(rng *rand.Rand, n int) []vm.Instr {
	ops := []vm.Op{vm.OpConst, vm.OpAdd, vm.OpMul, vm.OpNop, vm.OpGoto, vm.OpLoad}
	out := make([]vm.Instr, n)
	for i := range out {
		in := vm.Instr{Op: ops[rng.Intn(len(ops))]}
		switch {
		case in.Op == vm.OpConst || in.Op == vm.OpLoad:
			in.A = int64(rng.Intn(4))
		case in.Op.IsBranch():
			in.Target = rng.Intn(8) // ignored by instrMatch, on purpose
		}
		out[i] = in
	}
	return out
}

// lcsLenNaive is the O(n·m) full-matrix reference implementation.
func lcsLenNaive(a, b []vm.Instr) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if instrMatch(a[i-1], b[j-1]) {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// TestLcsLenMatchesNaive: the trimmed two-row implementation must agree
// with the textbook matrix on random sequences and edge shapes.
func TestLcsLenMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		a := randInstrs(rng, rng.Intn(60))
		b := randInstrs(rng, rng.Intn(60))
		if got, want := lcsLen(a, b), lcsLenNaive(a, b); got != want {
			t.Fatalf("trial %d: lcsLen=%d naive=%d (|a|=%d |b|=%d)",
				trial, got, want, len(a), len(b))
		}
	}
	if lcsLen(nil, nil) != 0 {
		t.Error("empty/empty should be 0")
	}
	a := randInstrs(rng, 10)
	if lcsLen(a, a) != len(a) {
		t.Error("self LCS should be full length")
	}
}

// TestLcsMarksIsMaximal: Hirschberg marks must (a) mark exactly lcsLen
// positions, (b) mark only positions that actually pair up with b in
// order — checked by verifying the marked subsequence of a is a
// subsequence of b under instrMatch.
func TestLcsMarksIsMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		a := randInstrs(rng, rng.Intn(50))
		b := randInstrs(rng, rng.Intn(50))
		marks := lcsMarks(a, b)
		if len(marks) != len(a) {
			t.Fatalf("trial %d: %d marks for %d instructions", trial, len(marks), len(a))
		}
		count := 0
		var sub []vm.Instr
		for i, m := range marks {
			if m {
				count++
				sub = append(sub, a[i])
			}
		}
		if want := lcsLen(a, b); count != want {
			t.Fatalf("trial %d: marked %d, lcsLen %d", trial, count, want)
		}
		// The marked instructions must embed into b in order.
		j := 0
		for _, in := range sub {
			for j < len(b) && !instrMatch(in, b[j]) {
				j++
			}
			if j == len(b) {
				t.Fatalf("trial %d: marked subsequence does not embed into b", trial)
			}
			j++
		}
	}
}

// TestColludePreservesBehavior: whatever the coalition strips, the
// attacked program must verify and behave identically to the victim on
// the probe inputs — that is the attack's own correctness bar.
func TestColludePreservesBehavior(t *testing.T) {
	host := workloads.JessLike(workloads.JessLikeOptions{Seed: 11, Methods: 10, BlockSize: 30})
	// Two "fingerprinted" variants via divergent pre-obfuscation.
	copies := []*vm.Program{
		PreObfuscate(host, 1, 3),
		PreObfuscate(host, 2, 3),
	}
	for _, mode := range []CollusionMode{CollusionStrip, CollusionRandomize} {
		attacked, rep, err := Collude(copies, rand.New(rand.NewSource(9)), CollusionOptions{
			Mode:   mode,
			Probes: DefaultProbes(),
		})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := vm.Verify(attacked); err != nil {
			t.Fatalf("%v: attacked program fails verification: %v", mode, err)
		}
		if rep.Colluders != 1 || rep.TotalInstrs == 0 {
			t.Errorf("%v: implausible report %+v", mode, rep)
		}
		for _, probe := range DefaultProbes() {
			want, err := vm.Run(copies[0], vm.RunOptions{Input: probe})
			if err != nil {
				t.Fatalf("%v: victim run: %v", mode, err)
			}
			got, err := vm.Run(attacked, vm.RunOptions{Input: probe})
			if err != nil {
				t.Fatalf("%v: attacked run: %v", mode, err)
			}
			if !vm.SameBehavior(want, got) {
				t.Fatalf("%v: behavior diverged on probe %v", mode, probe)
			}
		}
	}
}

// TestColludeDegenerateCoalitions: an empty coalition errors; a coalition
// of one has no diff and must return the victim untouched.
func TestColludeDegenerateCoalitions(t *testing.T) {
	if _, _, err := Collude(nil, rand.New(rand.NewSource(1)), CollusionOptions{}); err == nil {
		t.Error("empty coalition accepted")
	}
	host := workloads.MiniCalc()
	out, rep, err := Collude([]*vm.Program{host}, rand.New(rand.NewSource(1)), CollusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Colluders != 0 || rep.Runs != 0 {
		t.Errorf("coalition of one reported work: %+v", rep)
	}
	if vm.Dump(out) != vm.Dump(host) {
		t.Error("coalition of one mutated the victim")
	}
}
