package attacks

import (
	"math/rand"

	"pathmark/internal/vm"
)

// controlFlowFlattening rewrites every eligible method into dispatch-loop
// form: a state variable selects the next basic block through a chain of
// comparisons, and every original control transfer becomes a state update
// plus a jump back to the dispatcher.
//
// This is the repository's analog of the paper's *class encryption* attack
// (§5.1.2): class encryption hides the real bytecode from the instrumenter
// so the collected trace no longer reflects the program's branching;
// flattening achieves the equivalent effect on our VM — the trace becomes
// dominated by dispatcher comparisons interleaved between all original
// branches, so no watermark piece survives contiguously. Like class
// encryption, it destroys the watermark while preserving semantics.
//
// Methods whose flattened form would not verify (e.g. a block boundary is
// reached with operands on the evaluation stack) are left unchanged.
func controlFlowFlattening(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		saved := append([]vm.Instr(nil), m.Code...)
		savedLocals := m.NLocals
		if !flattenMethod(m, rng) {
			continue
		}
		if vm.Verify(q) != nil {
			m.Code = saved
			m.NLocals = savedLocals
		}
	}
	return mustVerify(q)
}

// flattenMethod rewrites m in place; it reports false when the method is
// too small to bother with.
func flattenMethod(m *vm.Method, rng *rand.Rand) bool {
	cfg := vm.BuildCFG(m)
	nb := cfg.NumBlocks()
	if nb < 2 {
		return false
	}
	state := int64(m.AllocLocal())
	// Shuffle case order so the dispatcher does not reveal block order.
	order := rng.Perm(nb)

	var code []vm.Instr
	code = append(code,
		vm.Instr{Op: vm.OpConst, A: 0},
		vm.Instr{Op: vm.OpStore, A: state})
	dispatch := len(code)
	type patch struct {
		pos   int
		block int
	}
	var patches []patch
	for _, bi := range order {
		code = append(code, vm.Instr{Op: vm.OpLoad, A: state})
		code = append(code, vm.Instr{Op: vm.OpConst, A: int64(bi)})
		patches = append(patches, patch{pos: len(code), block: bi})
		code = append(code, vm.Instr{Op: vm.OpIfCmpEq})
	}
	// Fallback (unreachable in practice): spin on the dispatcher.
	code = append(code, vm.Instr{Op: vm.OpGoto, Target: dispatch})

	setStateAndDispatch := func(next int) []vm.Instr {
		return []vm.Instr{
			{Op: vm.OpConst, A: int64(next)},
			{Op: vm.OpStore, A: state},
			{Op: vm.OpGoto, Target: dispatch},
		}
	}

	blockStart := make([]int, nb)
	for _, bi := range order {
		b := cfg.Blocks[bi]
		blockStart[bi] = len(code)
		last := m.Code[b.End-1]
		bodyEnd := b.End
		if last.Op.IsBranch() {
			bodyEnd-- // the terminator is rewritten below
		}
		for pc := b.Start; pc < bodyEnd; pc++ {
			code = append(code, m.Code[pc])
		}
		switch {
		case last.Op == vm.OpRet:
			// Emitted with the body; blocks ending in ret need no rewrite.
		case last.Op == vm.OpGoto:
			code = append(code, setStateAndDispatch(cfg.BlockOf(last.Target))...)
		case last.Op.IsCondBranch():
			c := last
			takenPos := len(code) + 1 + 3 // cond, then 3-instr fallthrough arm
			c.Target = takenPos
			code = append(code, c)
			code = append(code, setStateAndDispatch(cfg.BlockOf(b.End))...)
			code = append(code, setStateAndDispatch(cfg.BlockOf(last.Target))...)
		default:
			code = append(code, setStateAndDispatch(cfg.BlockOf(b.End))...)
		}
	}
	for _, pt := range patches {
		code[pt.pos].Target = blockStart[pt.block]
	}
	m.Code = code
	return true
}
