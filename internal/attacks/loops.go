package attacks

import (
	"math/rand"

	"pathmark/internal/vm"
)

// loopPeeling implements the "loop unrolling" family of transformations
// the paper's introduction lists among the branch-structure-modifying
// attacks: `while(c){B}` becomes `if(c){B}; while(c){B}` by duplicating
// one loop body ahead of the loop. Peeling is unconditionally
// semantics-preserving and perturbs the dynamic branch identity of the
// peeled iteration — a watermark piece whose emission loop is peeled is
// damaged, and the redundancy of the remaining pieces must carry the mark.
//
// A region [head, back] qualifies when:
//   - the instruction at `back` is `goto head` with head < back,
//   - every branch inside the region targets inside [head, back+1] or the
//     region's exits, where "exit" is any target outside the region,
//   - no branch from outside the region targets strictly inside it
//     (entering mid-loop would bypass the peeled copy harmlessly, but we
//     keep the pattern simple and safe), and
//   - the region contains no ret (a peeled ret would duplicate returns,
//     which is fine semantically but complicates stack-height reasoning).
func loopPeeling(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		peelMethodLoops(m, rng, 3)
	}
	return mustVerify(q)
}

func peelMethodLoops(m *vm.Method, rng *rand.Rand, maxPeels int) {
	peeled := 0
	// Scan for backedges; after each peel the code shifts, so restart the
	// scan (bounded by maxPeels).
	for peeled < maxPeels {
		back := findPeelableLoop(m, rng)
		if back < 0 {
			return
		}
		head := m.Code[back].Target
		region := append([]vm.Instr(nil), m.Code[head:back+1]...)
		n := len(region)
		// Remap the copy's targets: intra-region targets move with the
		// copy (which will sit at [head, head+n)); the copy's backedge
		// must fall through into the original loop head (post-insertion
		// position head+n), so it becomes a goto there — equivalently,
		// retarget it to the shifted original head.
		for i := range region {
			if !region[i].Op.IsBranch() {
				continue
			}
			t := region[i].Target
			switch {
			case i == n-1: // the backedge: continue with the original loop
				region[i].Target = head + n
			case t >= head && t <= back:
				region[i].Target = t - head + head // same offset within the copy
			default:
				// Exit target: will be shifted by InsertAt along with the
				// original; compensate by pre-shifting when past head.
				if t > head {
					region[i].Target = t + n
				}
			}
		}
		m.InsertAt(head, region)
		peeled++
	}
}

// findPeelableLoop returns the index of a qualifying backedge, or -1.
func findPeelableLoop(m *vm.Method, rng *rand.Rand) int {
	var cands []int
	for back, in := range m.Code {
		if in.Op != vm.OpGoto || in.Target >= back {
			continue
		}
		head := in.Target
		if back-head > 400 || back-head < 2 {
			continue
		}
		ok := true
		for pc := head; pc <= back && ok; pc++ {
			if m.Code[pc].Op == vm.OpRet {
				ok = false
			}
		}
		// No external branch may enter the region's interior.
		for pc, other := range m.Code {
			if !ok {
				break
			}
			if !other.Op.IsBranch() || (pc >= head && pc <= back) {
				continue
			}
			if other.Target > head && other.Target <= back {
				ok = false
			}
		}
		// No interior branch may target the backedge-goto's interior
		// crossing weirdly; interior targets within [head, back+1] are
		// fine, as are exits.
		if ok {
			cands = append(cands, back)
		}
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[rng.Intn(len(cands))]
}

// peepholeOptimization models an optimizing binary rewriter (the paper
// cites link-time optimizers as the canonical distortive attack): it
// removes no-ops and folds constant arithmetic. Both rewrites preserve
// semantics exactly; the watermark must not depend on such artifacts.
func peepholeOptimization(p *vm.Program, rng *rand.Rand) *vm.Program {
	q := p.Clone()
	for _, m := range q.Methods {
		removeNops(m)
		foldConstants(m)
	}
	_ = rng
	return mustVerify(q)
}

// removeNops deletes OpNop instructions, fixing branch targets.
func removeNops(m *vm.Method) {
	for pc := len(m.Code) - 1; pc >= 0; pc-- {
		if m.Code[pc].Op != vm.OpNop {
			continue
		}
		// The final instruction must remain ret/goto; a trailing nop
		// cannot exist in verified code, but guard anyway.
		if pc == len(m.Code)-1 {
			continue
		}
		deleteInstr(m, pc)
	}
}

// deleteInstr removes the instruction at pc, retargeting branches: targets
// past pc shift down; targets at pc move to the following instruction.
func deleteInstr(m *vm.Method, pc int) {
	for i := range m.Code {
		if m.Code[i].Op.IsBranch() && m.Code[i].Target > pc {
			m.Code[i].Target--
		}
	}
	m.Code = append(m.Code[:pc], m.Code[pc+1:]...)
}

// foldConstants rewrites `const a; const b; <binop>` into a single const
// when no branch enters the middle of the pattern.
func foldConstants(m *vm.Method) {
	for pc := 0; pc+2 < len(m.Code); pc++ {
		a, b, op := m.Code[pc], m.Code[pc+1], m.Code[pc+2]
		if a.Op != vm.OpConst || b.Op != vm.OpConst {
			continue
		}
		var v int64
		switch op.Op {
		case vm.OpAdd:
			v = a.A + b.A
		case vm.OpSub:
			v = a.A - b.A
		case vm.OpMul:
			v = a.A * b.A
		case vm.OpAnd:
			v = a.A & b.A
		case vm.OpOr:
			v = a.A | b.A
		case vm.OpXor:
			v = a.A ^ b.A
		default:
			continue
		}
		if branchTargetsInto(m, pc+1, pc+2) {
			continue
		}
		m.Code[pc] = vm.Instr{Op: vm.OpConst, A: v}
		deleteInstr(m, pc+1)
		deleteInstr(m, pc+1)
		pc-- // the fold may enable another fold ending here
		if pc < -1 {
			pc = -1
		}
	}
}

func branchTargetsInto(m *vm.Method, lo, hi int) bool {
	for _, in := range m.Code {
		if in.Op.IsBranch() && in.Target >= lo && in.Target <= hi {
			return true
		}
	}
	return false
}
