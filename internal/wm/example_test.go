package wm_test

import (
	"fmt"
	"math/big"

	"pathmark/internal/feistel"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

// Example demonstrates the full embed/recognize cycle on the paper's
// Figure 2 GCD program.
func Example() {
	prog := workloads.GCD()
	key, err := wm.NewKey(
		[]int64{42}, // the secret input sequence
		feistel.KeyFromUint64(0x0123456789abcdef, 0xfedcba9876543210),
		64, // watermark size in bits
	)
	if err != nil {
		panic(err)
	}
	fingerprint := big.NewInt(0xC0FFEE)

	marked, _, err := wm.Embed(prog, fingerprint, key, wm.EmbedOptions{Seed: 7})
	if err != nil {
		panic(err)
	}
	rec, err := wm.Recognize(marked, key)
	if err != nil {
		panic(err)
	}
	fmt.Printf("recovered 0x%x, match=%v\n", rec.Watermark, rec.Matches(fingerprint))
	// Output: recovered 0xc0ffee, match=true
}

// ExampleRandomWatermark shows fingerprint generation for distributing
// distinct copies.
func ExampleRandomWatermark() {
	w1 := wm.RandomWatermark(128, 1)
	w2 := wm.RandomWatermark(128, 2)
	fmt.Println(w1.BitLen(), w2.BitLen(), w1.Cmp(w2) != 0)
	// Output: 128 128 true
}
