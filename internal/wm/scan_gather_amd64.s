//go:build amd64 && !purego

#include "textflag.h"

// AVX2 gather/filter kernel for the batched scan (pass 1).
//
// The portable rolling loop pays a loop-carried dependency per window:
// each window's statistics derive from the previous window's. This
// kernel breaks the chain by processing 32 consecutive windows per
// block and deriving all 32 statistic triples with byte-lane prefix
// sums of boundary-bit deltas:
//
//	pc(s+j) = pc(s) + Σ_{m<j} d_m        d_m = b[s+64+m] - b[s+m]
//	tr(s+j) = tr(s) + Σ_{m<j} e_m        e_m = t[s+63+m] - t[s+m]
//	ev(s+j) = ev(s)          + Σ_{m<j, m even} d_m   (j even)
//	          (pc(s)-ev(s))  + Σ_{m<j, m odd}  d_m   (j odd)
//
// where t[i] = b[i] ^ b[i+1] and ev counts the window's even positions
// (sliding by one swaps bit parity, so the odd-lane seed is the first
// window's odd-position count pc-ev). The three seeds come from three
// scalar POPCNTs on the block's base window; the deltas come from the
// low 32 bits of four 64-bit extractions (the base window, the window
// 64 bits later, and the two transition words they induce), expanded
// to 0x00/0xFF byte lanes. Exclusive prefix sums are the standard
// log-step VPSLLDQ/VPADDB ladder run per 128-bit lane, then made
// global by broadcasting each lane's inclusive total to its bytes
// (VPSHUFB of byte 15) and adding the low lane's total into the high
// lane only (VPERM2I128 $8 zeroes the low lane while routing the low
// lane's value high). The odd-lane chain is derived as
// (prefix of d) - (prefix of even-masked d), saving a third ladder.
//
// Band tests are unsigned byte range checks via the sign-bias trick:
// unsigned(v-lo) > range  <=>  ((v-lo)^0x80) >signed (range^0x80).
// Band bytes are broadcast once per call into stack slots. VPMOVMSKB
// turns the three reject masks into bitmasks and POPCNT accumulates the
// per-layer counters with the scalar kernel's short-circuit priority
// (popcount claims a window first, then transitions, then phase).
//
// Survivor extraction: marked regions pass most windows, so the
// extraction path is hot and must pay neither per-survivor shifts nor a
// serial bit-scan chain. When any window survives, all 32 windows of
// the block are materialized at once with variable-count vector shifts
// — four lanes of (w0 >> j) | (w64s << (63-j)) per YMM — and either
// stored straight to the output when the whole block survives (the
// common case inside a marked region) or spilled to a stack buffer
// for a branchless compress: every lane is stored to the output cursor
// unconditionally, advancing the cursor only when the lane's mask bit
// is set (a rejected lane's store is overwritten by the next lane).
// The compress may touch one slot past the final survivor, which the
// output buffer's n-window capacity always covers.

DATA shufdup<>+0(SB)/8, $0x0000000000000000 // lanes 0-7 <- byte 0
DATA shufdup<>+8(SB)/8, $0x0101010101010101 // lanes 8-15 <- byte 1
DATA shufdup<>+16(SB)/8, $0x0202020202020202 // lanes 16-23 <- byte 2
DATA shufdup<>+24(SB)/8, $0x0303030303030303 // lanes 24-31 <- byte 3
GLOBL shufdup<>(SB), RODATA|NOPTR, $32

DATA bitsel<>+0(SB)/8, $0x8040201008040201 // bit i selector in lane i%8
DATA bitsel<>+8(SB)/8, $0x8040201008040201
DATA bitsel<>+16(SB)/8, $0x8040201008040201
DATA bitsel<>+24(SB)/8, $0x8040201008040201
GLOBL bitsel<>(SB), RODATA|NOPTR, $32

DATA evenlane<>+0(SB)/8, $0x00ff00ff00ff00ff // 0xFF in even lanes
DATA evenlane<>+8(SB)/8, $0x00ff00ff00ff00ff
DATA evenlane<>+16(SB)/8, $0x00ff00ff00ff00ff
DATA evenlane<>+24(SB)/8, $0x00ff00ff00ff00ff
GLOBL evenlane<>(SB), RODATA|NOPTR, $32

DATA bias80<>+0(SB)/8, $0x8080808080808080
DATA bias80<>+8(SB)/8, $0x8080808080808080
DATA bias80<>+16(SB)/8, $0x8080808080808080
DATA bias80<>+24(SB)/8, $0x8080808080808080
GLOBL bias80<>(SB), RODATA|NOPTR, $32

DATA bcast15<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f // in-lane byte-15 broadcast
DATA bcast15<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA bcast15<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA bcast15<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL bcast15<>(SB), RODATA|NOPTR, $32

// Per-lane shift counts for window materialization: window s+j is
// (w0 >> j) | (w64s << (63-j)) with w64s = w64<<1.
DATA shiftj<>+0(SB)/8, $0
DATA shiftj<>+8(SB)/8, $1
DATA shiftj<>+16(SB)/8, $2
DATA shiftj<>+24(SB)/8, $3
DATA shiftj<>+32(SB)/8, $4
DATA shiftj<>+40(SB)/8, $5
DATA shiftj<>+48(SB)/8, $6
DATA shiftj<>+56(SB)/8, $7
DATA shiftj<>+64(SB)/8, $8
DATA shiftj<>+72(SB)/8, $9
DATA shiftj<>+80(SB)/8, $10
DATA shiftj<>+88(SB)/8, $11
DATA shiftj<>+96(SB)/8, $12
DATA shiftj<>+104(SB)/8, $13
DATA shiftj<>+112(SB)/8, $14
DATA shiftj<>+120(SB)/8, $15
DATA shiftj<>+128(SB)/8, $16
DATA shiftj<>+136(SB)/8, $17
DATA shiftj<>+144(SB)/8, $18
DATA shiftj<>+152(SB)/8, $19
DATA shiftj<>+160(SB)/8, $20
DATA shiftj<>+168(SB)/8, $21
DATA shiftj<>+176(SB)/8, $22
DATA shiftj<>+184(SB)/8, $23
DATA shiftj<>+192(SB)/8, $24
DATA shiftj<>+200(SB)/8, $25
DATA shiftj<>+208(SB)/8, $26
DATA shiftj<>+216(SB)/8, $27
DATA shiftj<>+224(SB)/8, $28
DATA shiftj<>+232(SB)/8, $29
DATA shiftj<>+240(SB)/8, $30
DATA shiftj<>+248(SB)/8, $31
GLOBL shiftj<>(SB), RODATA|NOPTR, $256

DATA shiftk<>+0(SB)/8, $63
DATA shiftk<>+8(SB)/8, $62
DATA shiftk<>+16(SB)/8, $61
DATA shiftk<>+24(SB)/8, $60
DATA shiftk<>+32(SB)/8, $59
DATA shiftk<>+40(SB)/8, $58
DATA shiftk<>+48(SB)/8, $57
DATA shiftk<>+56(SB)/8, $56
DATA shiftk<>+64(SB)/8, $55
DATA shiftk<>+72(SB)/8, $54
DATA shiftk<>+80(SB)/8, $53
DATA shiftk<>+88(SB)/8, $52
DATA shiftk<>+96(SB)/8, $51
DATA shiftk<>+104(SB)/8, $50
DATA shiftk<>+112(SB)/8, $49
DATA shiftk<>+120(SB)/8, $48
DATA shiftk<>+128(SB)/8, $47
DATA shiftk<>+136(SB)/8, $46
DATA shiftk<>+144(SB)/8, $45
DATA shiftk<>+152(SB)/8, $44
DATA shiftk<>+160(SB)/8, $43
DATA shiftk<>+168(SB)/8, $42
DATA shiftk<>+176(SB)/8, $41
DATA shiftk<>+184(SB)/8, $40
DATA shiftk<>+192(SB)/8, $39
DATA shiftk<>+200(SB)/8, $38
DATA shiftk<>+208(SB)/8, $37
DATA shiftk<>+216(SB)/8, $36
DATA shiftk<>+224(SB)/8, $35
DATA shiftk<>+232(SB)/8, $34
DATA shiftk<>+240(SB)/8, $33
DATA shiftk<>+248(SB)/8, $32
GLOBL shiftk<>(SB), RODATA|NOPTR, $256

// EXPAND broadcasts the low 32 bits of a GPR to 32 byte lanes as
// 0x00/0xFF masks: lane j = (bit j set ? 0xFF : 0x00).
#define EXPAND(SRC, XD, YD) \
	VMOVD        SRC, XD     \
	VPBROADCASTD XD, YD      \
	VPSHUFB      Y15, YD, YD \
	VPAND        Y14, YD, YD \
	VPCMPEQB     Y14, YD, YD

// PREFIX computes into YP the exclusive byte-lane prefix sum of YD
// (lane j = sum of lanes m < j), preserving YD and clobbering YT: the
// log-step ladder runs per 128-bit lane, then the low lane's inclusive
// total (byte 15, broadcast in-lane and routed high by VPERM2I128 $8,
// which zeroes the low lane) is added to the high lane.
#define PREFIX(YD, YP, YT) \
	VPSLLDQ    $1, YD, YP            \
	VPSLLDQ    $1, YP, YT            \
	VPADDB     YT, YP, YP            \
	VPSLLDQ    $2, YP, YT            \
	VPADDB     YT, YP, YP            \
	VPSLLDQ    $4, YP, YT            \
	VPADDB     YT, YP, YP            \
	VPSLLDQ    $8, YP, YT            \
	VPADDB     YT, YP, YP            \
	VPADDB     YD, YP, YT            \
	VPSHUFB    bcast15<>(SB), YT, YT \
	VPERM2I128 $8, YT, YT, YT        \
	VPADDB     YT, YP, YP

// BANDSLOT broadcasts one band byte (shifted into BX by the caller) to
// a 32-lane vector in a stack slot; ranges are pre-biased with 0x80.
#define BANDSLOT(OFF) \
	VMOVD        BX, X0     \
	VPBROADCASTB X0, Y0     \
	VMOVDQU      Y0, OFF(SP)

// CLANE compress-stores one materialized window (stack offset OFF from
// the buffer base at 208(SP)): store at the cursor, shift the next mask
// bit into CX, advance the cursor by 8 iff it is set.
#define CLANE(OFF) \
	MOVQ 208+OFF(SP), AX \
	MOVQ AX, (DI)        \
	MOVL BX, CX          \
	ANDL $1, CX          \
	SHRL $1, BX          \
	LEAQ (DI)(CX*8), DI

// func gatherFilterAVX2(words *uint64, lo, n int64, bands uint64, out *uint64, res *gatherCounts)
TEXT ·gatherFilterAVX2(SB), NOSPLIT, $464-48
	MOVQ words+0(FP), SI
	MOVQ lo+8(FP), R8
	MOVQ n+16(FP), R9
	MOVQ bands+24(FP), AX
	MOVQ out+32(FP), DI
	MOVQ DI, 192(SP) // original out, for the survivor count

	// Shared constants.
	VMOVDQU shufdup<>(SB), Y15
	VMOVDQU bitsel<>(SB), Y14
	VMOVDQU evenlane<>(SB), Y13
	VMOVDQU bias80<>(SB), Y12

	// Unpack the six band bytes (lo, range per filter) into broadcast
	// vectors: 0(SP) pcLo, 32(SP) pcRange^80, 64(SP) trLo,
	// 96(SP) trRange^80, 128(SP) phLo, 160(SP) phRange^80.
	MOVL AX, BX
	ANDL $0xFF, BX
	BANDSLOT(0)
	MOVQ AX, BX
	SHRQ $8, BX
	ANDL $0xFF, BX
	XORL $0x80, BX
	BANDSLOT(32)
	MOVQ AX, BX
	SHRQ $16, BX
	ANDL $0xFF, BX
	BANDSLOT(64)
	MOVQ AX, BX
	SHRQ $24, BX
	ANDL $0xFF, BX
	XORL $0x80, BX
	BANDSLOT(96)
	MOVQ AX, BX
	SHRQ $32, BX
	ANDL $0xFF, BX
	BANDSLOT(128)
	MOVQ AX, BX
	SHRQ $40, BX
	ANDL $0xFF, BX
	XORL $0x80, BX
	BANDSLOT(160)

	// Per-layer reject counters.
	XORQ R13, R13 // popcount
	XORQ R14, R14 // transitions
	XORQ R15, R15 // phase

block:
	// Load the three source words covering windows [s, s+32) and their
	// +64-bit partners, and extract w0 = bits[s..s+64) and
	// w64 = bits[s+64..s+128) with a funnel shift each.
	MOVQ R8, BX
	SHRQ $6, BX
	MOVQ R8, CX
	ANDQ $63, CX             // CL = off
	MOVQ (SI)(BX*8), R10     // A
	MOVQ 8(SI)(BX*8), R11    // B
	MOVQ 16(SI)(BX*8), R12   // C
	MOVQ R11, AX
	SHRQ CX, R10             // A >> off
	SHRQ CX, AX              // B >> off
	NEGQ CX
	ADDQ $63, CX             // CL = 63-off
	LEAQ (R11)(R11*1), R11
	SHLQ CX, R11             // (B<<1) << (63-off)
	LEAQ (R12)(R12*1), R12
	SHLQ CX, R12             // (C<<1) << (63-off)
	ORQ  R11, R10            // R10 = w0
	ORQ  R12, AX             // AX  = w64
	MOVQ AX, R11             // R11 = w64

	// Transition words: wt covers t[s..s+63) (bit 63 bogus, unused);
	// w63 = bits[s+63..s+127) feeds wt63 = t[s+63..s+95) in its low 32.
	MOVQ R10, BX
	SHRQ $1, BX
	XORQ R10, BX             // BX = wt
	MOVQ R10, DX
	SHRQ $63, DX
	LEAQ (R11)(R11*1), R12   // R12 = w64<<1, kept for extraction
	ORQ  R12, DX             // DX = w63
	MOVQ DX, CX
	SHRQ $1, CX
	XORQ DX, CX              // CX = wt63

	// Delta bit vectors from the low 32 bits of each.
	EXPAND(R10, X0, Y0)      // b[s+m]
	EXPAND(R11, X1, Y1)      // b[s+64+m]
	EXPAND(BX, X2, Y2)       // t[s+m]
	EXPAND(CX, X3, Y3)       // t[s+63+m]

	// Scalar seeds from the base window.
	POPCNTQ R10, AX          // pc0
	MOVQ    $0x5555555555555555, DX
	ANDQ    R10, DX
	POPCNTQ DX, DX           // ev0
	MOVQ    $0x7FFFFFFFFFFFFFFF, R11
	ANDQ    BX, R11
	POPCNTQ R11, R11         // tr0
	MOVL    AX, BX
	SUBL    DX, BX           // ev1 = pc0 - ev0 (the odd-lane seed)

	// Deltas as signed bytes (masks are -bit, so mask0 - mask64 =
	// bit64 - bit0) and their exclusive prefix sums.
	VPSUBB Y1, Y0, Y4        // d
	VPSUBB Y3, Y2, Y5        // e (transition deltas)
	VPAND  Y13, Y4, Y6       // d, even lanes only
	PREFIX(Y4, Y7, Y8)       // Y7 = prefix d
	PREFIX(Y5, Y4, Y8)       // Y4 = prefix e
	PREFIX(Y6, Y5, Y8)       // Y5 = prefix d_even
	VPSUBB Y5, Y7, Y6        // Y6 = prefix d_odd = prefix d - prefix d_even

	// Statistics per lane: seed + prefix.
	VMOVD        AX, X8
	VPBROADCASTB X8, Y8
	VPADDB       Y7, Y8, Y8  // pcV
	VMOVD        R11, X9
	VPBROADCASTB X9, Y9
	VPADDB       Y4, Y9, Y9  // trV
	VMOVD        DX, X10
	VPBROADCASTB X10, Y10
	VPADDB       Y5, Y10, Y10 // ev0 + prefix_even
	VMOVD        BX, X0
	VPBROADCASTB X0, Y0
	VPADDB       Y6, Y0, Y0  // ev1 + prefix_odd
	VPAND        Y13, Y10, Y10
	VPANDN       Y0, Y13, Y1
	VPOR         Y1, Y10, Y10 // evV, lane-parity blend

	// Band range checks -> 32-bit reject masks.
	VPSUBB    0(SP), Y8, Y1
	VPXOR     Y12, Y1, Y1
	VPCMPGTB  32(SP), Y1, Y1
	VPMOVMSKB Y1, AX         // mP
	VPSUBB    64(SP), Y9, Y2
	VPXOR     Y12, Y2, Y2
	VPCMPGTB  96(SP), Y2, Y2
	VPMOVMSKB Y2, BX         // mT
	VPSUBB    128(SP), Y10, Y3
	VPXOR     Y12, Y3, Y3
	VPCMPGTB  160(SP), Y3, Y3
	VPMOVMSKB Y3, DX         // mH

	// Short-circuit accounting: popcount claims first, then
	// transitions, then phase; the rest survive.
	POPCNTL AX, CX
	ADDQ    CX, R13
	MOVL    AX, R11
	NOTL    R11
	ANDL    BX, R11          // mT &^ mP
	POPCNTL R11, CX
	ADDQ    CX, R14
	ORL     AX, BX           // mP|mT
	MOVL    BX, R11
	NOTL    R11
	ANDL    DX, R11          // mH &^ (mP|mT)
	POPCNTL R11, CX
	ADDQ    CX, R15
	ORL     DX, BX
	NOTL    BX               // survivor mask (all 32 bits are lanes)

	// Materialize all 32 windows of the block — four variable-shift
	// lanes per YMM — then store them out: whole vectors directly to the
	// output when the block is all-survivors (the common case inside a
	// marked region), else via a stack buffer and a per-lane
	// compress-store against the survivor mask. Skipped entirely when
	// nothing survived.
	TESTL BX, BX
	JZ    nextblock
	VMOVQ        R10, X8
	VPBROADCASTQ X8, Y8      // w0 in all lanes
	VMOVQ        R12, X9
	VPBROADCASTQ X9, Y9      // w64s in all lanes
	VPSRLVQ      shiftj<>+0(SB), Y8, Y0
	VPSLLVQ      shiftk<>+0(SB), Y9, Y10
	VPOR         Y10, Y0, Y0
	VPSRLVQ      shiftj<>+32(SB), Y8, Y1
	VPSLLVQ      shiftk<>+32(SB), Y9, Y10
	VPOR         Y10, Y1, Y1
	VPSRLVQ      shiftj<>+64(SB), Y8, Y2
	VPSLLVQ      shiftk<>+64(SB), Y9, Y10
	VPOR         Y10, Y2, Y2
	VPSRLVQ      shiftj<>+96(SB), Y8, Y3
	VPSLLVQ      shiftk<>+96(SB), Y9, Y10
	VPOR         Y10, Y3, Y3
	VPSRLVQ      shiftj<>+128(SB), Y8, Y4
	VPSLLVQ      shiftk<>+128(SB), Y9, Y10
	VPOR         Y10, Y4, Y4
	VPSRLVQ      shiftj<>+160(SB), Y8, Y5
	VPSLLVQ      shiftk<>+160(SB), Y9, Y10
	VPOR         Y10, Y5, Y5
	VPSRLVQ      shiftj<>+192(SB), Y8, Y6
	VPSLLVQ      shiftk<>+192(SB), Y9, Y10
	VPOR         Y10, Y6, Y6
	VPSRLVQ      shiftj<>+224(SB), Y8, Y7
	VPSLLVQ      shiftk<>+224(SB), Y9, Y10
	VPOR         Y10, Y7, Y7
	CMPL BX, $-1
	JNE  compress
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	VMOVDQU Y4, 128(DI)
	VMOVDQU Y5, 160(DI)
	VMOVDQU Y6, 192(DI)
	VMOVDQU Y7, 224(DI)
	ADDQ    $256, DI
	JMP     nextblock

compress:
	VMOVDQU Y0, 208(SP)
	VMOVDQU Y1, 240(SP)
	VMOVDQU Y2, 272(SP)
	VMOVDQU Y3, 304(SP)
	VMOVDQU Y4, 336(SP)
	VMOVDQU Y5, 368(SP)
	VMOVDQU Y6, 400(SP)
	VMOVDQU Y7, 432(SP)
	CLANE(0)
	CLANE(8)
	CLANE(16)
	CLANE(24)
	CLANE(32)
	CLANE(40)
	CLANE(48)
	CLANE(56)
	CLANE(64)
	CLANE(72)
	CLANE(80)
	CLANE(88)
	CLANE(96)
	CLANE(104)
	CLANE(112)
	CLANE(120)
	CLANE(128)
	CLANE(136)
	CLANE(144)
	CLANE(152)
	CLANE(160)
	CLANE(168)
	CLANE(176)
	CLANE(184)
	CLANE(192)
	CLANE(200)
	CLANE(208)
	CLANE(216)
	CLANE(224)
	CLANE(232)
	CLANE(240)
	CLANE(248)

nextblock:
	ADDQ $32, R8
	SUBQ $32, R9
	JNZ  block

	// Results.
	MOVQ res+40(FP), AX
	MOVQ DI, BX
	SUBQ 192(SP), BX
	SHRQ $3, BX
	MOVQ BX, 0(AX)  // survivors written
	MOVQ R13, 8(AX) // popcount rejects
	MOVQ R14, 16(AX) // transition rejects
	MOVQ R15, 24(AX) // phase rejects
	VZEROUPPER
	RET

// Batched framing check for the decode pass (pass 3): evaluates
// crt.Params.Unframe's accept condition over four decrypted windows per
// iteration —
//
//	w & Payload < Capacity  &&
//	w >> Shift == (fold16(w & Payload) ^ Magic) & CheckMask
//
// — and writes the index of each passing window (rare: true pieces plus
// ~Capacity/2^64 noise) to passIdx. The caller re-runs the scalar
// Unframe on just those, so the kernel only has to agree on the
// accept/reject verdict, pinned by the differential test and fuzz
// target. The signed VPCMPGTQ is safe: Capacity < 2^63 (enforced by
// crt.NewParams) and the payload mask keeps enc below 2^63 too.

// func unframeScanAVX2(dec *uint64, n int64, fc *crt.FrameConsts, passIdx *int32) int64
TEXT ·unframeScanAVX2(SB), NOSPLIT, $0-40
	MOVQ dec+0(FP), SI
	MOVQ n+8(FP), R12
	MOVQ fc+16(FP), DX
	MOVQ passIdx+24(FP), DI

	VMOVQ        0(DX), X10  // shift, as a vector shift count
	VPBROADCASTQ 8(DX), Y11  // payload mask
	VPBROADCASTQ 16(DX), Y12 // check mask
	VPBROADCASTQ 24(DX), Y13 // capacity
	VPBROADCASTQ 32(DX), Y14 // magic
	MOVQ         $0xffff, AX
	VMOVQ        AX, X15
	VPBROADCASTQ X15, Y15

	XORQ R9, R9 // passing windows written
	XORQ R8, R8 // window index

	// Main loop: two independent 4-window chains per iteration, so the
	// fold/compare latency of one chain hides under the other's.
	LEAQ -8(R12), R10        // last index with 8 windows left
	CMPQ R8, R10
	JG   loop4

loop8:
	VMOVDQU   (SI)(R8*8), Y0
	VMOVDQU   32(SI)(R8*8), Y5
	VPAND     Y11, Y0, Y1    // enc, chain A
	VPAND     Y11, Y5, Y6    // enc, chain B
	VPSRLQ    X10, Y0, Y2    // stored check fields
	VPSRLQ    X10, Y5, Y7
	VPSRLQ    $32, Y1, Y3
	VPSRLQ    $32, Y6, Y8
	VPXOR     Y3, Y1, Y3
	VPXOR     Y8, Y6, Y8
	VPSRLQ    $16, Y3, Y4
	VPSRLQ    $16, Y8, Y9
	VPXOR     Y4, Y3, Y3
	VPXOR     Y9, Y8, Y8
	VPAND     Y15, Y3, Y3    // fold16(enc)
	VPAND     Y15, Y8, Y8
	VPXOR     Y14, Y3, Y3
	VPXOR     Y14, Y8, Y8
	VPAND     Y12, Y3, Y3    // expected check fields
	VPAND     Y12, Y8, Y8
	VPCMPEQQ  Y3, Y2, Y2
	VPCMPEQQ  Y8, Y7, Y7
	VPCMPGTQ  Y1, Y13, Y3    // capacity > enc
	VPCMPGTQ  Y6, Y13, Y8
	VPAND     Y3, Y2, Y2
	VPAND     Y8, Y7, Y7
	VPMOVMSKB Y2, AX
	VPMOVMSKB Y7, BX
	ORL       BX, AX
	JNZ       slow8          // rare: re-check each half precisely

cont8:
	ADDQ $8, R8
	CMPQ R8, R10
	JLE  loop8

loop4tail:
	CMPQ R8, R12
	JGE  done

loop4:
	VMOVDQU   (SI)(R8*8), Y0
	VPAND     Y11, Y0, Y1    // enc
	VPSRLQ    X10, Y0, Y2    // stored check field
	VPSRLQ    $32, Y1, Y3
	VPXOR     Y3, Y1, Y3
	VPSRLQ    $16, Y3, Y4
	VPXOR     Y4, Y3, Y3
	VPAND     Y15, Y3, Y3    // fold16(enc)
	VPXOR     Y14, Y3, Y3
	VPAND     Y12, Y3, Y3    // expected check field
	VPCMPEQQ  Y3, Y2, Y2
	VPCMPGTQ  Y1, Y13, Y3    // capacity > enc
	VPAND     Y3, Y2, Y2
	VPMOVMSKB Y2, AX
	TESTL     AX, AX
	JNZ       extract4

cont4:
	ADDQ $4, R8
	CMPQ R8, R12
	JL   loop4

done:
	MOVQ R9, ret+32(FP)
	VZEROUPPER
	RET

	// Rare path out of loop8: extract chain A's passers (mask still in
	// Y2), then chain B's at base R8+4, then resume the main loop.
slow8:
	VPMOVMSKB Y2, AX
	TESTL     AX, AX
	JZ        slow8b
	CALL      unframeExtract<>(SB)

slow8b:
	VPMOVMSKB Y7, AX
	TESTL     AX, AX
	JZ        cont8
	ADDQ      $4, R8
	CALL      unframeExtract<>(SB)
	SUBQ      $4, R8
	JMP       cont8

	// Rare path: record the index of each passing lane (lane j owns
	// byte j of the 32-bit VPMOVMSKB mask).
extract4:
	CALL unframeExtract<>(SB)
	JMP  cont4

// unframeExtract records base index R8 + lane for every set lane byte of
// the mask in AX, appending to (DI) at cursor R9. Internal helper with a
// bespoke register contract, only called from unframeScanAVX2.
TEXT unframeExtract<>(SB), NOSPLIT, $0-0
extractloop:
	BSFL AX, BX
	MOVL BX, CX
	ANDL $0xF8, CX
	MOVL $0xFF, R11
	SHLL CX, R11
	NOTL R11
	ANDL R11, AX             // clear the lane's byte
	SHRL $3, BX              // lane
	ADDQ R8, BX
	MOVL BX, (DI)(R9*4)
	INCQ R9
	TESTL AX, AX
	JNZ   extractloop
	RET
