package wm

import (
	mathbits "math/bits"

	"pathmark/internal/bitstring"
)

// The batched scan kernel. The scalar kernel pays, per window, a filter
// evaluation built from three fresh popcounts and — for survivors — one
// bound-method cipher call. The batched kernel restructures the chunk
// into three passes:
//
//  1. gather: slide the window over the source words, maintaining the
//     three filter statistics incrementally (O(1) shift/mask updates per
//     position instead of three popcounts), and append survivors to a
//     contiguous buffer;
//  2. decrypt: run the whole survivor buffer through
//     feistel.DecryptBlocks — with a decrypt cache, only the windows the
//     cache cannot answer (gathered via Peek, stored via Put) reach the
//     cipher;
//  3. decode: apply the framing check and statement codec to each
//     decrypted block.
//
// The passes preserve the scalar kernel's per-window decisions exactly —
// same filter order, same cache-accounting events, same decode — so a
// Recognition is bit-identical across kernels; only the grouping of work
// changes. Stride-2 tasks arrive pre-packed (bitstring.PackStride2), so
// every chunk scans a stride-1 window sequence.

// bandsPackable reports whether a filter stack fits the AVX2 kernel's
// byte arithmetic: each band's Lo in [0, 64] and width in [0, 127]. In
// that regime the byte-wrapped unsigned range check agrees with the
// int-width check in Band.rejects for every statistic value the scan
// can produce (popcount <= 64, transitions <= 63, phase <= 32). Every
// stack the package ships qualifies; a hand-built stack that does not
// simply runs the portable loop.
func bandsPackable(f FilterStack) bool {
	for _, b := range [...]Band{f.Popcount, f.Transitions, f.Phase} {
		if b.Lo < 0 || b.Lo > 64 || b.Hi < b.Lo || b.Hi-b.Lo > 127 {
			return false
		}
	}
	return true
}

// packBands encodes a packable stack as the six bytes the AVX2 kernel
// broadcasts: (lo, width) per band, popcount/transitions/phase order.
func packBands(f FilterStack) uint64 {
	return uint64(f.Popcount.Lo) | uint64(f.Popcount.Hi-f.Popcount.Lo)<<8 |
		uint64(f.Transitions.Lo)<<16 | uint64(f.Transitions.Hi-f.Transitions.Lo)<<24 |
		uint64(f.Phase.Lo)<<32 | uint64(f.Phase.Hi-f.Phase.Lo)<<40
}

// gatherRun evaluates the filter stack over windows [lo, hi) — a
// maximal run the word screen could not reject — appending survivors to
// wins and bumping the per-layer reject counters. The AVX2 kernel
// covers aligned blocks of 32 windows; the incremental rolling loop
// covers the tail, runs whose final words would take the kernel's
// three-word load out of bounds, and every non-amd64 build.
func (env *scanEnv) gatherRun(words []uint64, src *bitstring.Bits, lo, hi int, wins []uint64, rejPC, rejTR, rejPH *int) []uint64 {
	if env.useGather {
		asmHi := hi
		if limit := (len(words) - 2) << 6; asmHi > limit {
			asmHi = limit
		}
		if n := (asmHi - lo) &^ 31; n >= 32 {
			// Spare capacity is always sufficient: survivors so far plus
			// the n windows this call can add never exceed the chunk's
			// window count, and winBuf is sized to the chunk granularity.
			spare := wins[len(wins):cap(wins)]
			var res gatherCounts
			gatherFilterAVX2(&words[0], int64(lo), int64(n), env.gatherBands, &spare[0], &res)
			wins = wins[:len(wins)+int(res.n)]
			*rejPC += int(res.pc)
			*rejTR += int(res.tr)
			*rejPH += int(res.ph)
			lo += n
			if lo >= hi {
				return wins
			}
		}
	}

	// Portable rolling loop: dropping bit 0 and admitting a new bit 63
	// updates popcount, transition count, and even-phase count in a
	// handful of ALU ops. Shifting right by one swaps the parity of
	// every surviving bit, so the new even-phase count is the old
	// odd-phase count and the new odd count is the old even count minus
	// the dropped bit 0 plus the admitted bit.
	f := env.filters
	w := src.Word64(lo)
	pc, tr, ev := windowStats(w)
	od := pc - ev
	nPC, nTR, nPH := 0, 0, 0
	for start := lo; ; {
		switch {
		case f.Popcount.rejects(pc):
			nPC++
		case f.Transitions.rejects(tr):
			nTR++
		case f.Phase.rejects(ev):
			nPH++
		default:
			wins = append(wins, w)
		}
		start++
		if start >= hi {
			break
		}
		i := start + 63
		in := int(words[i>>6] >> (uint(i) & 63) & 1)
		b0 := int(w & 1)
		b1 := int(w >> 1 & 1)
		top := int(w >> 63)
		ev, od = od, ev-b0+in
		pc = ev + od
		tr += (top ^ in) - (b0 ^ b1)
		w = w>>1 | uint64(in)<<63
	}
	*rejPC += nPC
	*rejTR += nTR
	*rejPH += nPH
	return wins
}

// scanRangeBatched scans windows [lo, hi) of a stride-1 source using the
// gather/decrypt/decode structure. hi > lo and hi <= src.NumWindows64()
// are guaranteed by the chunk grid.
func (a *scanAccum) scanRangeBatched(src *bitstring.Bits, lo, hi int, env *scanEnv) {
	words := src.Words()
	f := env.filters

	// Pass 1: gather. The windows are walked one word-group at a time —
	// all starts inside source word k, whose windows lie entirely within
	// words k and k+1 — so a two-word popcount can prove, before looking
	// at any individual window, that every window in the group fails the
	// popcount band: a window's popcount is bounded by [sum2-64, sum2].
	// Popcount is the first filter in the short-circuit order, so the
	// whole group is rejected with exactly the per-window accounting the
	// scalar kernel would produce, at ~2 instructions per 64 windows.
	// Degenerate trace regions (constant runs from the generators'
	// priming passes) are precisely the ones this screen eats.
	//
	// Maximal runs of groups the screen cannot reject go to gatherRun,
	// which evaluates the filter stack per window: 32 windows per
	// iteration on the AVX2 kernel, an incremental rolling loop for
	// tails and portable builds.
	a.windows += hi - lo
	var rejPC, rejTR, rejPH int
	wins := env.winBuf[:0]
	runLo := -1
	for start := lo; start < hi; {
		k := start >> 6
		gEnd := (k + 1) << 6
		if gEnd > hi {
			gEnd = hi
		}
		sum2 := mathbits.OnesCount64(words[k])
		if k+1 < len(words) {
			sum2 += mathbits.OnesCount64(words[k+1])
		}
		if sum2 < f.Popcount.Lo || sum2-64 > f.Popcount.Hi {
			if runLo >= 0 {
				wins = env.gatherRun(words, src, runLo, start, wins, &rejPC, &rejTR, &rejPH)
				runLo = -1
			}
			rejPC += gEnd - start
			start = gEnd
			continue
		}
		if runLo < 0 {
			runLo = start
		}
		start = gEnd
	}
	if runLo >= 0 {
		wins = env.gatherRun(words, src, runLo, hi, wins, &rejPC, &rejTR, &rejPH)
	}
	a.rej.Popcount += rejPC
	a.rej.Transitions += rejTR
	a.rej.Phase += rejPH
	env.winBuf = wins // chunk <= cap, so the buffer never reallocates
	if len(wins) == 0 {
		return
	}
	a.decrypted += len(wins)

	// Pass 2: decrypt the survivor batch, zero-padded to the block
	// kernel's 16-block granularity so the scalar tail loop never runs
	// (the padding decryptions land beyond dec's live region and are
	// never read). The chunk granularity is itself a multiple of 16, so
	// padding always fits the scratch buffers.
	dec := env.decBuf[:len(wins)]
	if env.cache == nil {
		padded := (len(wins) + 15) &^ 15
		w := wins[:padded]
		for i := len(wins); i < padded; i++ {
			w[i] = 0
		}
		env.cipher.DecryptBlocks(env.decBuf[:padded], w)
	} else {
		// Split the batch into cache hits and misses; only misses run
		// the cipher, and Put makes their results visible to other
		// workers. Each window still produces exactly one accounting
		// event (Peek-hit, or Put's miss/duplicate-hit), matching the
		// scalar kernel's GetOrCompute traffic.
		miss := env.missIdx[:0]
		missW := env.missBuf[:0]
		for i, win := range wins {
			if v, ok := env.cache.Peek(win); ok {
				dec[i] = v
			} else {
				miss = append(miss, i)
				missW = append(missW, win)
			}
		}
		if len(miss) > 0 {
			padded := (len(missW) + 15) &^ 15
			mw := missW[:padded]
			for i := len(missW); i < padded; i++ {
				mw[i] = 0
			}
			env.cipher.DecryptBlocks(mw, mw)
			for j, i := range miss {
				dec[i] = env.cache.Put(wins[i], missW[j])
			}
		}
		env.missIdx = miss[:0]
		env.missBuf = missW[:0]
	}

	// Pass 3: decode. Same decisions as scanAccum.decode, with the
	// framing rejections — the overwhelmingly common outcome for windows
	// that survived the statistical filters — tallied in bulk. On AVX2
	// the framing check runs four windows per iteration and hands back
	// only the indices that pass (true pieces plus ~capacity/2^64
	// noise); those few re-run the scalar Unframe on their way into the
	// statement codec, so the kernel only decides accept/reject.
	framing := 0
	rest := dec
	if env.useUnframe {
		if n4 := len(dec) &^ 3; n4 >= 4 {
			npass := unframeScanAVX2(&dec[0], int64(n4), &env.frameConsts, &env.passBuf[0])
			framing += n4 - int(npass)
			for _, i := range env.passBuf[:npass] {
				a.decodeFramed(env, dec[i], &framing)
			}
			rest = dec[n4:]
		}
	}
	for _, d := range rest {
		a.decodeFramed(env, d, &framing)
	}
	a.rej.Framing += framing
}

// decodeFramed runs the scalar framing check and statement codec on one
// decrypted window, bumping *framing on a structural reject.
func (a *scanAccum) decodeFramed(env *scanEnv, d uint64, framing *int) {
	enc, ok := env.params.Unframe(d)
	if !ok {
		*framing++
		return
	}
	if st, ok := env.params.Decode(enc); ok {
		a.valid++
		a.counts[st]++
	}
}
