package wm

import "math/bits"

// The scan stage's stacked prefilters. A genuine watermark piece is the
// Feistel encryption of a framed CRT statement, i.e. computationally
// pseudorandom: its popcount concentrates around 32, its adjacent-bit
// transition count around 31.5, and the popcount of its even bit
// positions around 16, all with binomial tails. Trace garbage is the
// opposite — priming runs, loop-control interleavings, and counter
// patterns are heavily structured — so three cheap statistics reject the
// vast majority of windows before the 32-round cipher ever runs:
//
//	popcount    OnesCount64(w)                      ~ Bin(64, ½)
//	transitions OnesCount64((w ^ w>>1) low 63 bits) ~ Bin(63, ½)
//	phase       OnesCount64(w & 0x5555…)            ~ Bin(32, ½)
//
// All three statistics are maintained incrementally by the batched
// kernel (O(1) per slid window) and recomputed per window by the scalar
// kernel; both kernels apply them in the same order (popcount, then
// transitions, then phase) with short-circuiting, so the per-layer
// rejection counters are kernel- and worker-count-independent.
//
// The stack is lossy by construction, like the original popcount band:
// each band clips two binomial tails, and the default stack rejects a
// genuine encrypted piece with probability ~4e-5 — small against the
// redundancy of the embedding (every piece appears at multiple window
// positions and the statement basis is redundant), and recoverable by
// retrying with NoFilters. The post-decrypt framing check (see
// crt.Params.Unframe) is the lossless fourth layer: it never rejects a
// genuine piece.

// Band is an inclusive acceptance interval [Lo, Hi] for one window
// statistic; values outside it reject the window.
type Band struct {
	Lo, Hi int
}

// rejects reports whether the band drops a window whose statistic is v.
// Written branchless-friendly: one unsigned compare after normalization.
func (b Band) rejects(v int) bool { return uint(v-b.Lo) > uint(b.Hi-b.Lo) }

// PopcountBand is the historical name of Band, from when popcount was
// the only prefilter; the Prefilter options still speak it.
type PopcountBand = Band

// FilterStack is the full pre-decrypt filter configuration, one Band per
// statistic.
type FilterStack struct {
	// Popcount bounds OnesCount64(window).
	Popcount Band
	// Transitions bounds the number of adjacent bit positions that
	// differ (0 for constant runs, 63 for 0101… patterns — both
	// degenerate shapes real traces produce in bulk).
	Transitions Band
	// Phase bounds the popcount of the window's even bit positions,
	// which catches stride-patterned garbage (constant-in-one-phase
	// interleavings) that total popcount and transitions both miss.
	Phase Band
}

// DefaultFilters is the stack used when neither RecognizeOpts.Filters
// nor RecognizeOpts.Prefilter is set. The popcount band is the historic
// default; the transition and phase bands clip at ≈±3.9σ, adding ~3e-5
// to the false-reject probability while roughly quadrupling the
// rejection rate on structured trace garbage.
var DefaultFilters = FilterStack{
	Popcount:    Band{Lo: 8, Hi: 56},
	Transitions: Band{Lo: 13, Hi: 51},
	Phase:       Band{Lo: 5, Hi: 27},
}

// NoFilters accepts every window on every statistic; use it (or the
// legacy NoPrefilter) to rule the lossy filters out when hunting for
// lost pieces. The lossless framing check still applies.
var NoFilters = FilterStack{
	Popcount:    Band{Lo: 0, Hi: 64},
	Transitions: Band{Lo: 0, Hi: 63},
	Phase:       Band{Lo: 0, Hi: 32},
}

// DefaultPrefilter is the historical popcount-only default band,
// retained for callers of the legacy Prefilter option.
var DefaultPrefilter = Band{Lo: 8, Hi: 56}

// NoPrefilter accepts every popcount; as a Prefilter option it disables
// the whole lossy stack (legacy semantics: Prefilter configures the only
// lossy filter there was).
var NoPrefilter = Band{Lo: 0, Hi: 64}

// ResolveFilters merges the new and legacy filter options into the
// effective stack: an explicit FilterStack wins; otherwise a legacy
// popcount band runs alone (transitions and phase wide open), preserving
// the exact pre-stack behavior for existing callers; otherwise the
// default stack applies.
func ResolveFilters(filters *FilterStack, prefilter *PopcountBand) FilterStack {
	if filters != nil {
		return *filters
	}
	if prefilter != nil {
		f := NoFilters
		f.Popcount = *prefilter
		return f
	}
	return DefaultFilters
}

// LayerRejects breaks the scan's rejections down by filter layer. The
// first three layers run before decryption (their sum is
// Recognition.PrefilterRejected); Framing counts windows that were
// decrypted but failed the structural check of the statement codec.
// Every count is a sum over disjoint scan shards — identical at every
// worker count and for both kernels.
type LayerRejects struct {
	Popcount    int
	Transitions int
	Phase       int
	Framing     int
}

// preDecrypt returns the number of windows the lossy pre-decrypt layers
// dropped.
func (l LayerRejects) preDecrypt() int { return l.Popcount + l.Transitions + l.Phase }

func (l *LayerRejects) add(o LayerRejects) {
	l.Popcount += o.Popcount
	l.Transitions += o.Transitions
	l.Phase += o.Phase
	l.Framing += o.Framing
}

// ScanKernel selects the scan stage's inner loop implementation.
type ScanKernel int

const (
	// KernelAuto picks the batched kernel — the production path.
	KernelAuto ScanKernel = iota
	// KernelBatched gathers filter survivors into contiguous buffers,
	// decrypts them through feistel.DecryptBlocks, and scans stride-2
	// phases as packed bit vectors. The fast path.
	KernelBatched
	// KernelScalar is the reference kernel: one window, one filter
	// evaluation, one cipher call at a time. Kept for differential
	// testing and old-vs-new benchmarking; results are bit-identical to
	// the batched kernel.
	KernelScalar
)

// resolve maps KernelAuto to the concrete default.
func (k ScanKernel) resolve() ScanKernel {
	if k == KernelAuto {
		return KernelBatched
	}
	return k
}

// windowStats computes the three filter statistics of one window from
// scratch — the scalar kernel's per-window evaluation, and the batched
// kernel's seed values for its incremental updates.
func windowStats(w uint64) (pc, tr, ev int) {
	pc = bits.OnesCount64(w)
	tr = bits.OnesCount64((w ^ (w >> 1)) & (1<<63 - 1))
	ev = bits.OnesCount64(w & evenMask)
	return
}

const evenMask = 0x5555555555555555
