package wm

import (
	"testing"

	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

func TestAnalyzeStealthIdenticalPrograms(t *testing.T) {
	p := workloads.CaffeineMark()
	r := AnalyzeStealth(p, p)
	if r.OpcodeJSD != 0 {
		t.Errorf("JSD of identical programs = %v, want 0", r.OpcodeJSD)
	}
	if r.SizeRatio != 1 {
		t.Errorf("SizeRatio = %v, want 1", r.SizeRatio)
	}
	if r.BranchDensityBefore != r.BranchDensityAfter {
		t.Error("branch densities differ for identical programs")
	}
}

func TestAnalyzeStealthOfEmbedding(t *testing.T) {
	// On a large host, a modest embedding must barely move the opcode
	// statistics — the paper's stealth claim — while a blatant deviation
	// (all-nop padding) moves them a lot.
	host := workloads.JessLike(workloads.JessLikeOptions{Seed: 1})
	key := testKey(t, nil, 128)
	w := RandomWatermark(128, 3)
	marked, _, err := Embed(host, w, key, EmbedOptions{Seed: 1, Pieces: 16, Policy: GenLoopOnly})
	if err != nil {
		t.Fatal(err)
	}
	r := AnalyzeStealth(host, marked)
	if r.OpcodeJSD > 0.02 {
		t.Errorf("16 rolled pieces skew opcode stats by JSD %.4f, want < 0.02", r.OpcodeJSD)
	}
	if r.BranchDensityAfter < r.BranchDensityBefore {
		t.Error("embedding removed branches?")
	}

	// Contrast: obviously-unnatural padding.
	blatant := host.Clone()
	m := blatant.Methods[0]
	var nops []vm.Instr
	for i := 0; i < host.CodeSize()/2; i++ {
		nops = append(nops, vm.Instr{Op: vm.OpNop})
	}
	m.InsertAt(0, nops)
	r2 := AnalyzeStealth(host, blatant)
	if r2.OpcodeJSD <= r.OpcodeJSD*2 {
		t.Errorf("blatant padding JSD %.4f not clearly above embedding JSD %.4f", r2.OpcodeJSD, r.OpcodeJSD)
	}
}

func TestJensenShannonBounds(t *testing.T) {
	p := map[vm.Op]float64{vm.OpAdd: 1}
	q := map[vm.Op]float64{vm.OpSub: 1}
	if d := jensenShannon(p, q); d < 0.99 || d > 1.01 {
		t.Errorf("disjoint distributions JSD = %v, want 1", d)
	}
	if d := jensenShannon(p, p); d != 0 {
		t.Errorf("identical distributions JSD = %v, want 0", d)
	}
}
