package wm

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"pathmark/internal/vm"
)

// TestTypedErrorsSurviveWrapping is the retry-boundary contract: every
// typed error in the catalog must stay classifiable via errors.Is /
// errors.As after being wrapped in multiple fmt.Errorf("%w") layers — the
// exact shape the jobs retry loop produces ("grade attempt 2/3: ...").
// A typed error that loses its identity under wrapping silently turns a
// terminal failure into an infinitely-retried one (or vice versa).
func TestTypedErrorsSurviveWrapping(t *testing.T) {
	// rewrap buries err under three layers of the kinds of wrapping the
	// pipeline and the jobs layer apply.
	rewrap := func(err error) error {
		err = fmt.Errorf("corpus trace failed: %w", err)
		err = fmt.Errorf("jobs: grade (3,1) attempt 2/3: %w", err)
		return fmt.Errorf("jobs: job j-abc: %w", err)
	}

	stepErr := &vm.ResourceError{Resource: "steps", Limit: 100, Used: 100, Cause: vm.ErrStepLimit}
	heapErr := &vm.ResourceError{Resource: "heap", Limit: 16, Used: 17, Cause: vm.ErrHeapLimit}
	ctxErr := &vm.ResourceError{Resource: "context", Cause: context.DeadlineExceeded}

	cases := []struct {
		name string
		err  error
		// what errors.As must still find, and errors.Is sentinels that
		// must still hold, through the rewrap chain
		asStage    bool
		asResource bool
		asKeyFile  bool
		isSentinel error
	}{
		{
			name:       "stage wrapping step-limit resource error",
			err:        &StageError{Stage: "trace", Worker: -1, Cause: fmt.Errorf("recognition trace failed: %w", stepErr)},
			asStage:    true,
			asResource: true,
			isSentinel: vm.ErrStepLimit,
		},
		{
			name:       "stage wrapping heap-limit resource error",
			err:        &StageError{Stage: "trace", Worker: -1, Cause: heapErr},
			asStage:    true,
			asResource: true,
			isSentinel: vm.ErrHeapLimit,
		},
		{
			name:       "bare resource error (context deadline)",
			err:        ctxErr,
			asResource: true,
			isSentinel: context.DeadlineExceeded,
		},
		{
			name:       "stage wrapping cancelled context",
			err:        &StageError{Stage: "corpus", Worker: -1, Cause: context.Canceled},
			asStage:    true,
			isSentinel: context.Canceled,
		},
		{
			name:      "key file error with cause",
			err:       &KeyFileError{Field: "primes", Offset: 42, Msg: "invalid prime basis", Cause: errors.New("not prime")},
			asKeyFile: true,
		},
		{
			name:      "key file error without cause",
			err:       &KeyFileError{Offset: -1, Msg: "truncated"},
			asKeyFile: true,
		},
		{
			name:    "scan worker stage error",
			err:     &StageError{Stage: "scan", Worker: 3, Cause: errors.New("recovered scan panic on chunk 7: boom")},
			asStage: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wrapped := rewrap(tc.err)

			var se *StageError
			if got := errors.As(wrapped, &se); got != tc.asStage {
				t.Errorf("errors.As(*StageError) = %v, want %v (err: %v)", got, tc.asStage, wrapped)
			} else if got && se.Stage == "" {
				t.Errorf("recovered StageError lost its stage: %+v", se)
			}

			var re *vm.ResourceError
			if got := errors.As(wrapped, &re); got != tc.asResource {
				t.Errorf("errors.As(*vm.ResourceError) = %v, want %v (err: %v)", got, tc.asResource, wrapped)
			} else if got && re.Resource == "" {
				t.Errorf("recovered ResourceError lost its resource: %+v", re)
			}

			var kfe *KeyFileError
			if got := errors.As(wrapped, &kfe); got != tc.asKeyFile {
				t.Errorf("errors.As(*KeyFileError) = %v, want %v (err: %v)", got, tc.asKeyFile, wrapped)
			}

			if tc.isSentinel != nil && !errors.Is(wrapped, tc.isSentinel) {
				t.Errorf("errors.Is(%v) lost through wrapping: %v", tc.isSentinel, wrapped)
			}
		})
	}
}

// TestPipelineErrorsAreWrappedTyped drives the real pipeline into each
// failure mode and asserts the error that comes out the far end is still
// the typed one — no fmt.Errorf("%v") flattening anywhere on the path.
func TestPipelineErrorsAreWrappedTyped(t *testing.T) {
	host := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 64)

	t.Run("fuel exhaustion is StageError+ResourceError+ErrStepLimit", func(t *testing.T) {
		_, err := RecognizeWithOpts(host, key, RecognizeOpts{StepLimit: 1})
		if err == nil {
			t.Fatal("starved trace should fail")
		}
		err = fmt.Errorf("retry boundary: %w", err)
		var se *StageError
		var re *vm.ResourceError
		if !errors.As(err, &se) || se.Stage != "trace" {
			t.Errorf("want trace StageError, got %v", err)
		}
		if !errors.As(err, &re) || !errors.Is(err, vm.ErrStepLimit) {
			t.Errorf("want ResourceError wrapping ErrStepLimit, got %v", err)
		}
	})

	t.Run("cancelled corpus is StageError+context.Canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RecognizeCorpus([]*vm.Program{host}, []*Key{key}, CorpusOpts{Ctx: ctx})
		if err == nil {
			t.Fatal("cancelled corpus should fail")
		}
		err = fmt.Errorf("retry boundary: %w", err)
		var se *StageError
		if !errors.As(err, &se) || !errors.Is(err, context.Canceled) {
			t.Errorf("want StageError wrapping context.Canceled, got %v", err)
		}
	})

	t.Run("corpus trace failure lands typed in the Errors matrix", func(t *testing.T) {
		res, err := RecognizeCorpus([]*vm.Program{host}, []*Key{key}, CorpusOpts{StepLimit: 1})
		if err != nil {
			t.Fatalf("per-pair trace failures must not abort the corpus: %v", err)
		}
		cellErr := res.Errors[0][0]
		if cellErr == nil {
			t.Fatal("starved pair should carry an error")
		}
		cellErr = fmt.Errorf("retry boundary: %w", cellErr)
		var re *vm.ResourceError
		if !errors.As(cellErr, &re) || !errors.Is(cellErr, vm.ErrStepLimit) {
			t.Errorf("corpus cell error lost its ResourceError: %v", cellErr)
		}
	})
}
