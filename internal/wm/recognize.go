package wm

import (
	"context"
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pathmark/internal/bitstring"
	"pathmark/internal/cache"
	"pathmark/internal/crt"
	"pathmark/internal/feistel"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
)

// Recognition reports the outcome of the recognition phase (§3.3).
type Recognition struct {
	// Watermark is the recovered value mod Modulus; it equals the embedded
	// watermark when FullCoverage is true and enough uncorrupted pieces
	// survived.
	Watermark *big.Int
	// Modulus is the combined CRT modulus of the surviving statements.
	Modulus *big.Int
	// FullCoverage reports whether every prime of the key's basis is
	// covered, i.e. Modulus equals the key's MaxWatermark bound.
	FullCoverage bool

	Windows          int // 64-bit windows scanned
	ValidStatements  int // windows decoding to an in-range statement
	UniqueStatements int // distinct statements among those
	VotedOut         int // statements eliminated by the W mod p_i vote
	Survivors        int // statements surviving the consistency graphs
	TraceBits        int // length of the decoded bit-string
	// PrefilterRejected counts windows dropped by the lossy statistical
	// filter stack before decryption (see RecognizeOpts.Filters) — the
	// sum of the pre-decrypt layers of RejectedByLayer. A sum over
	// disjoint scan shards, hence identical at every worker count.
	PrefilterRejected int
	// RejectedByLayer breaks the rejections down by filter layer,
	// including the post-decrypt framing check; see LayerRejects.
	RejectedByLayer LayerRejects
	// Decrypted counts windows that survived every pre-decrypt filter
	// and were submitted to the cipher — the denominator of the framing
	// layer and the true unit of scan kernel work. (With a decrypt
	// cache, repeats of a window are answered from the memo table; this
	// counts submissions, not cipher executions.)
	Decrypted int

	// Surviving holds the CRT statements that survived the vote and
	// consistency graphs — the partial-recovery evidence. When the full
	// watermark cannot be reconstructed (damaged trace, lost pieces), the
	// survivors still pin W modulo their combined modulus.
	Surviving []crt.Statement
	// Confidence is the fraction of the key's prime basis covered by the
	// surviving statements: 1.0 means full coverage, 0 means nothing
	// survived. It is the graceful-degradation score — how much of the
	// watermark's residue system the damaged input still supports.
	Confidence float64
	// Degraded reports that the pipeline completed but lost something on
	// the way: a scan worker crashed, the vote stage was cut short, or the
	// survivors cover only part of the prime basis.
	Degraded bool
	// StageErrors records recovered per-stage failures (worker panics,
	// vote-stage cutoffs), capped at a small number; see the
	// recognize.scan_panics counter for the uncapped total.
	StageErrors []*StageError
}

// RecognizeOpts tunes the recognition pipeline.
type RecognizeOpts struct {
	// Workers is the number of goroutines the sliding-window scan fans out
	// over: 0 picks runtime.GOMAXPROCS(0), 1 forces the serial path. The
	// Recognition result is bit-for-bit identical at any worker count.
	Workers int
	// Ctx, when non-nil, cancels the pipeline: the tracing run, the scan
	// workers (checked per chunk), and the vote stage all return promptly
	// with a *StageError wrapping the context's error once it is done.
	Ctx context.Context
	// StepLimit bounds the tracing run (0 = interpreter default);
	// exhaustion surfaces as a trace StageError wrapping vm.ResourceError.
	StepLimit int64
	// MaxHeap bounds the tracing run's cumulative array allocation
	// (0 = interpreter default).
	MaxHeap int64
	// ScanHook, when non-nil, is called by the scan stage before every
	// chunk with the worker index and chunk index. It exists for fault
	// injection: a panicking hook simulates a worker crash, which the pool
	// converts into a StageError without losing other workers' counts.
	// Production callers leave it nil.
	ScanHook func(worker, chunk int)
	// Filters overrides the scan's lossy pre-decrypt filter stack
	// (nil = DefaultFilters unless the legacy Prefilter is set;
	// NoFilters disables the lossy layers). See ResolveFilters for the
	// precedence between Filters and Prefilter.
	Filters *FilterStack
	// Prefilter is the legacy popcount-only filter option: when set (and
	// Filters is nil) the scan runs exactly the historic popcount band,
	// with the newer transition and phase layers wide open. NoPrefilter
	// disables the lossy stack entirely.
	Prefilter *PopcountBand
	// Kernel selects the scan's inner-loop implementation. The zero
	// value (KernelAuto) picks the batched kernel; KernelScalar forces
	// the one-window-at-a-time reference kernel. Recognition results are
	// bit-identical across kernels — the knob exists for differential
	// tests and old-vs-new benchmarks.
	Kernel ScanKernel
	// DecryptCache, when non-nil, memoizes window decryption across the
	// scan: each distinct 64-bit window is run through the cipher at most
	// once (within the cache's capacity) and repeats are answered from the
	// table. Real traces are loop-heavy and repeat identical windows
	// thousands of times, so corpus recognition shares one cache per
	// candidate key across suspects (see FleetCaches). The cache is a pure
	// memo table — results are bit-identical with it on or off, at every
	// worker count.
	DecryptCache *cache.Cache64
	// Obs, when non-nil, receives per-stage spans (recognize.trace/scan/
	// vote) and pipeline counters/histograms. All recorded metric values
	// are input-derived — per-worker scan counters are summed over
	// disjoint shards at the join — so the registry content is identical
	// at every worker count; only span wall times differ. Degradation
	// events additionally land in recognize.degraded and
	// recognize.scan_panics.
	Obs *obs.Registry
}

// maxGraphVertices bounds the consistency-graph size; statements beyond
// the cap (rarest first) are dropped. Real traces produce few distinct
// valid statements, so the cap only guards against adversarial inputs.
const maxGraphVertices = 4096

// scanChunkWindows is the shard granularity of the scan: each work unit
// covers this many window positions. Small enough to balance load across
// workers on skewed traces and to make per-chunk cancellation checks
// prompt, large enough that the per-chunk dispatch overhead (one atomic
// add) is negligible against ~2k cipher decryptions per chunk.
const scanChunkWindows = 2048

// maxStageErrors caps how many recovered failures a Recognition retains;
// beyond it only the counters grow. A hook or corruption that poisons
// every chunk would otherwise allocate one error per chunk.
const maxStageErrors = 8

// countCap bounds per-statement multiplicity before the vote so that no
// single repetitive pattern can dominate it: self-similar host traces
// (recursion, loop nests) repeat identical high-entropy windows
// verbatim, so raw occurrence counts are not trustworthy evidence. A cap
// of 3 keeps redundancy useful (several *distinct* statements still
// outvote any single impostor residue) without letting one repeated
// pattern win. Applied identically by the batch pipeline and the
// streaming recognizer's probes and flush.
const countCap = 3

// Recognize re-traces the program on the key's secret input, decodes the
// trace into its bit-string, and recombines watermark pieces (§3.3). It is
// RecognizeWithOpts with automatic worker selection.
func Recognize(p *vm.Program, key *Key) (*Recognition, error) {
	return RecognizeWithOpts(p, key, RecognizeOpts{})
}

// RecognizeWithOpts runs the recognition pipeline in three stages:
//
//  1. trace: re-run the program on the key's secret input and decode the
//     trace into its bit-string (§3.1) — inherently serial;
//  2. scan: slide 64-bit windows over the bit-string plus its two stride-2
//     phases, decrypting and inverse-enumerating each window into a
//     candidate statement (§3.3 step A) — the dominant cost, fanned out
//     over opts.Workers goroutines on disjoint window ranges, each with a
//     private statement-count map merged (summed) afterward;
//  3. vote/graph: the W mod p_i vote, the inconsistency/agreement graphs,
//     greedy selection, and the Generalized-CRT merge (§3.3 steps B–D) —
//     serial on the handful of surviving statements.
//
// Window counts and per-statement occurrence counts are sums over disjoint
// shards, so the merged result — and everything derived from it — is
// identical at every worker count.
//
// Failure contract: a failing or cut-off tracing run returns (nil, error)
// where the error is a *StageError (wrapping vm.ResourceError for fuel
// exhaustion or the context error for cancellation). A crashed scan worker
// does NOT abort the pipeline: the panic is recovered, the remaining
// workers' counts survive, and the call returns a *partial* Recognition
// with Degraded set alongside the first *StageError. Callers that only
// check err therefore fail safe; callers that also look at the Recognition
// get everything the damaged run still supports.
func RecognizeWithOpts(p *vm.Program, key *Key, opts RecognizeOpts) (*Recognition, error) {
	total := opts.Obs.Start("recognize")
	defer total.Finish()
	opts.Obs.Counter("recognize.calls").Add(1)

	// Stage 1: trace.
	span := opts.Obs.Start("recognize.trace")
	tr, _, err := vm.CollectWith(p, vm.RunOptions{
		Input: key.Input, SnapshotLimit: 1,
		Ctx: opts.Ctx, StepLimit: opts.StepLimit, MaxHeap: opts.MaxHeap,
	})
	if err != nil {
		span.Finish()
		return nil, &StageError{Stage: "trace", Worker: -1,
			Cause: fmt.Errorf("recognition trace failed: %w", err)}
	}
	bits := tr.DecodeBits()
	span.Set("trace_events", int64(len(tr.Events))).
		Set("trace_bits", int64(bits.Len())).Finish()
	opts.Obs.Histogram("recognize.trace_bits").Observe(int64(bits.Len()))

	return RecognizeBits(bits, key, opts)
}

// RecognizeBits runs recognition stages 2–3 (scan, vote/graph) over an
// already-decoded trace bit-string. It is the entry point for callers that
// obtain — or corrupt — the bit-string themselves, such as the
// fault-injection harness, and for recognizing traces captured elsewhere.
// The vector is validated up front so adversarial shapes fail with an
// error rather than a panic in the scan loops. The Recognition's TraceBits
// field is taken from the vector's length.
func RecognizeBits(b *bitstring.Bits, key *Key, opts RecognizeOpts) (*Recognition, error) {
	if err := b.Validate(); err != nil {
		return nil, &StageError{Stage: "scan", Worker: -1,
			Cause: fmt.Errorf("invalid trace bit-string: %w", err)}
	}
	rec := &Recognition{TraceBits: b.Len()}

	// Stage 2: scan.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	span := opts.Obs.Start("recognize.scan")
	cacheBefore := opts.DecryptCache.Stats()
	acc, scanErrs, err := scanBits(opts.Ctx, b, key, workers, scanConfig{
		hook:         opts.ScanHook,
		filters:      ResolveFilters(opts.Filters, opts.Prefilter),
		kernel:       opts.Kernel.resolve(),
		decryptCache: opts.DecryptCache,
	})
	if err != nil {
		span.Finish()
		return nil, &StageError{Stage: "scan", Worker: -1, Cause: err}
	}
	if n := len(scanErrs); n > 0 {
		rec.Degraded = true
		rec.StageErrors = append(rec.StageErrors, scanErrs...)
		opts.Obs.Counter("recognize.scan_panics").Add(int64(acc.panics))
	}
	rec.Windows = acc.windows
	rec.ValidStatements = acc.valid
	rec.RejectedByLayer = acc.rej
	rec.PrefilterRejected = acc.rej.preDecrypt()
	rec.Decrypted = acc.decrypted
	span.Set("windows", int64(acc.windows)).
		Set("valid_statements", int64(acc.valid)).
		Set("recovered_panics", int64(acc.panics)).Finish()
	opts.Obs.Counter("recognize.windows_total").Add(int64(acc.windows))
	opts.Obs.Counter("recognize.valid_total").Add(int64(acc.valid))
	opts.Obs.Counter("scan.prefilter_rejected").Add(int64(rec.PrefilterRejected))
	opts.Obs.Counter("scan.reject.popcount").Add(int64(acc.rej.Popcount))
	opts.Obs.Counter("scan.reject.transitions").Add(int64(acc.rej.Transitions))
	opts.Obs.Counter("scan.reject.phase").Add(int64(acc.rej.Phase))
	opts.Obs.Counter("scan.reject.framing").Add(int64(acc.rej.Framing))
	opts.Obs.Counter("scan.decrypted").Add(int64(acc.decrypted))
	if opts.DecryptCache != nil {
		// Delta, not absolute: the cache typically outlives one call. The
		// hit/miss split is schedule-independent as long as the cache stays
		// within capacity and is not shared with concurrent scans (misses =
		// distinct windows, an input property); bypasses beyond capacity
		// are the one schedule-dependent count.
		d := opts.DecryptCache.Stats().Sub(cacheBefore)
		opts.Obs.Counter("cache.decrypt.hits").Add(d.Hits)
		opts.Obs.Counter("cache.decrypt.misses").Add(d.Misses)
		opts.Obs.Counter("cache.decrypt.bypassed").Add(d.Bypassed)
		opts.Obs.Counter("cache.decrypt.evictions").Add(d.Evictions)
	}
	if acc.windows > 0 {
		// Valid-statement hit rate in parts per million: integer-valued,
		// hence deterministic across worker counts and machines.
		opts.Obs.Histogram("recognize.valid_ppm").
			Observe(int64(acc.valid) * 1_000_000 / int64(acc.windows))
	}

	for st, c := range acc.counts {
		if c > countCap {
			acc.counts[st] = countCap
		}
	}
	if len(acc.counts) > 0 {
		// Stage 3: vote + consistency graphs + CRT merge.
		span = opts.Obs.Start("recognize.vote")
		resolveStatements(opts.Ctx, rec, acc.counts, key)
		span.Set("unique_statements", int64(rec.UniqueStatements)).
			Set("voted_out", int64(rec.VotedOut)).
			Set("survivors", int64(rec.Survivors)).
			Set("confidence_bp", int64(rec.Confidence*10_000)).Finish()
	}
	if rec.Degraded {
		opts.Obs.Counter("recognize.degraded").Add(1)
	}
	if len(rec.StageErrors) > 0 {
		return rec, rec.StageErrors[0]
	}
	return rec, nil
}

// scanTask describes one shardable window source of the scan stage. The
// raw bit-string is scanned alongside its two stride-2 phases: the rolled
// loop generator interleaves one constant control bit between payload
// bits, so its pieces are contiguous in a stride-2 phase rather than in
// the raw string. The scalar kernel reads the phases through the strided
// window iterator over the raw string (src = the trace, stride = 2); the
// batched kernel materializes each phase once (bitstring.PackStride2)
// and scans the packed vector stride-1 (src = the packed phase). Window
// counts and contents are identical either way.
type scanTask struct {
	src           *bitstring.Bits
	stride, phase int // stride=1: scan src directly
	numWindows    int
}

// statementCountHint pre-sizes a scan accumulator's statement-count map.
// A marked trace yields at most a few hundred distinct valid statements
// (bounded by the embedding's piece count plus coincidental decodes), and
// growing a struct-keyed map incrementally costs more than the scan's
// whole decode pass — rehashing showed up at ~7% of the batched kernel's
// profile before the hint.
const statementCountHint = 256

func newScanAccum() *scanAccum {
	return &scanAccum{counts: make(map[crt.Statement]int, statementCountHint)}
}

// scanAccum accumulates one worker's share of the scan.
type scanAccum struct {
	windows   int
	valid     int
	rej       LayerRejects // windows dropped, by filter layer
	decrypted int          // windows submitted to the decrypt layer
	panics    int
	counts    map[crt.Statement]int
}

// scanConfig bundles the scan stage's tuning knobs so scanBits keeps a
// stable signature as knobs accrue.
type scanConfig struct {
	hook         func(worker, chunk int)
	filters      FilterStack
	kernel       ScanKernel
	decryptCache *cache.Cache64
}

// scanEnv is one worker's per-goroutine scan state: its private cipher
// instance (expanded subkeys), the shared read-only decode parameters,
// the (shared, concurrency-safe) decrypt cache, and the batched kernel's
// reusable gather buffers.
type scanEnv struct {
	cipher  *feistel.Cipher
	decrypt func(uint64) uint64 // cipher.Decrypt, bound once
	params  *crt.Params
	filters FilterStack
	cache   *cache.Cache64
	// Batched-kernel scratch, sized to the chunk granularity and reused
	// across chunks so the gather loop never allocates.
	winBuf  []uint64 // filter survivors of the current chunk
	decBuf  []uint64 // their decryptions, same indexing
	missBuf []uint64 // cache misses, gathered contiguously
	missIdx []int    // winBuf index of each cache miss
	// AVX2 gather dispatch: set when the CPU has the kernel and the
	// stack's bands fit its byte arithmetic (see bandsPackable).
	useGather   bool
	gatherBands uint64
	// AVX2 framing-check dispatch for pass 3, with the flattened
	// framing constants and the passing-index scratch it needs.
	useUnframe  bool
	frameConsts crt.FrameConsts
	passBuf     []int32
	// bufs is the pooled backing of the scratch slices above; returned
	// to scanBufPool when the worker finishes (releaseBufs).
	bufs *scanEnvBufs
}

// scanEnvBufs bundles one worker's batched-kernel scratch so it can be
// recycled through scanBufPool: the buffers total ~70KB per worker, and
// fleet/bench callers run many scans per second, so allocating (and
// zeroing) them per scan shows up. The buffers are pure scratch —
// fully written before they are read within each chunk — so reuse
// cannot leak state between scans, keys, or workers.
type scanEnvBufs struct {
	win, dec, miss []uint64
	missIdx        []int
	pass           []int32
}

// packedPool recycles the batched kernel's stride-2 packed vectors
// (PackStride2Into overwrites every word, so reuse carries no state).
var packedPool = sync.Pool{New: func() any { return new(bitstring.Bits) }}

var scanBufPool = sync.Pool{New: func() any {
	return &scanEnvBufs{
		win:     make([]uint64, 0, scanChunkWindows),
		dec:     make([]uint64, scanChunkWindows),
		miss:    make([]uint64, 0, scanChunkWindows),
		missIdx: make([]int, 0, scanChunkWindows),
		pass:    make([]int32, scanChunkWindows),
	}
}}

// releaseBufs returns the worker's scratch to the pool; the env must
// not touch the buffers afterwards.
func (env *scanEnv) releaseBufs() {
	if env.bufs == nil {
		return
	}
	scanBufPool.Put(env.bufs)
	env.bufs = nil
	env.winBuf, env.decBuf, env.missBuf, env.missIdx, env.passBuf = nil, nil, nil, nil, nil
}

func newScanEnv(key *Key, cfg scanConfig) *scanEnv {
	c := feistel.New(key.Cipher)
	env := &scanEnv{
		cipher:  c,
		decrypt: c.Decrypt,
		params:  key.Params,
		filters: cfg.filters,
		cache:   cfg.decryptCache,
	}
	if cfg.kernel == KernelBatched {
		env.bufs = scanBufPool.Get().(*scanEnvBufs)
		env.winBuf = env.bufs.win
		env.decBuf = env.bufs.dec
		env.missBuf = env.bufs.miss
		env.missIdx = env.bufs.missIdx
		env.passBuf = env.bufs.pass
		if env.useGather = gatherAvailable && bandsPackable(cfg.filters); env.useGather {
			env.gatherBands = packBands(cfg.filters)
		}
		if env.useUnframe = gatherAvailable; env.useUnframe {
			env.frameConsts = key.Params.FrameConstants()
		}
	}
	return env
}

// decryptOne is the scalar kernel's single decryption path: through the
// memo table when a cache is configured (each distinct window runs the
// cipher at most once within capacity), directly otherwise.
func (env *scanEnv) decryptOne(w uint64) uint64 {
	if env.cache != nil {
		return env.cache.GetOrCompute(w, env.decrypt)
	}
	return env.decrypt(w)
}

// decode runs the post-decrypt layers on one decrypted window: the
// lossless framing check (structural reject, counted per layer) and the
// statement codec. Shared by both kernels — the kernels differ only in
// how windows are filtered and decrypted, never in what a decryption
// means.
func (a *scanAccum) decode(env *scanEnv, dec uint64) {
	enc, ok := env.params.Unframe(dec)
	if !ok {
		a.rej.Framing++
		return
	}
	if st, ok := env.params.Decode(enc); ok {
		a.valid++
		a.counts[st]++
	}
}

// scanRange is the scalar (reference) kernel: it scans windows [lo, hi)
// of one task, filtering, decrypting, and decoding one window at a time.
//
// Degenerate low-entropy windows (long constant runs, strided patterns —
// e.g. from the generators' priming passes) are dropped by the
// statistical filter stack before decryption — see FilterStack for the
// layers and their false-negative rates — and counted per layer, per
// shard, so the totals are deterministic. Windows that decrypt but fail
// the framing check are counted in the framing layer.
func (a *scanAccum) scanRange(b *bitstring.Bits, t scanTask, lo, hi int, env *scanEnv) {
	f := env.filters
	visit := func(_ int, w uint64) bool {
		a.windows++
		pc, tr, ev := windowStats(w)
		switch {
		case f.Popcount.rejects(pc):
			a.rej.Popcount++
		case f.Transitions.rejects(tr):
			a.rej.Transitions++
		case f.Phase.rejects(ev):
			a.rej.Phase++
		default:
			a.decrypted++
			a.decode(env, env.decryptOne(w))
		}
		return true
	}
	if t.stride == 1 {
		b.Windows64Range(lo, hi, visit)
	} else {
		b.StrideWindows64Range(t.stride, t.phase, lo, hi, visit)
	}
}

// scanChunk is one shard of the scan work list.
type scanChunk struct {
	task   scanTask
	lo, hi int
}

// runChunk processes one chunk with panic containment: a panic — from the
// fault-injection hook or from corrupted state — is recovered and reported
// as a *StageError instead of unwinding the worker, so one poisoned chunk
// costs at most its own partial counts.
func (a *scanAccum) runChunk(c scanChunk, worker, chunk int,
	env *scanEnv, cfg scanConfig) (serr *StageError) {
	defer func() {
		if r := recover(); r != nil {
			a.panics++
			serr = &StageError{Stage: "scan", Worker: worker,
				Cause: fmt.Errorf("recovered scan panic on chunk %d: %v", chunk, r)}
		}
	}()
	if cfg.hook != nil {
		cfg.hook(worker, chunk)
	}
	if cfg.kernel == KernelBatched {
		a.scanRangeBatched(c.task.src, c.lo, c.hi, env)
	} else {
		a.scanRange(c.task.src, c.task, c.lo, c.hi, env)
	}
	return nil
}

// scanBits runs the scan stage over the raw bit-string and its two
// stride-2 phases, sharded into fixed-size chunks processed by the given
// number of workers (1 = inline, no goroutines). The returned slice holds
// recovered per-chunk failures (capped at maxStageErrors; scanAccum.panics
// has the true count); the error is non-nil only for cancellation, in
// which case the scan is abandoned.
func scanBits(ctx context.Context, b *bitstring.Bits, key *Key, workers int,
	cfg scanConfig) (*scanAccum, []*StageError, error) {
	cfg.kernel = cfg.kernel.resolve()
	tasks := []scanTask{{src: b, stride: 1, numWindows: b.NumWindows64()}}
	if b.Len() >= 2 {
		if cfg.kernel == KernelBatched {
			// The batched kernel scans each stride-2 phase as a packed
			// contiguous vector (one word-parallel pass to build, then the
			// same stride-1 gather loop as the raw scan). Window counts and
			// contents match the strided iterator exactly, so the chunk
			// grid — and every merged counter — is kernel-independent.
			// The vectors are pooled scratch: private to this call while
			// workers run, recycled once every worker has joined.
			for phase := 0; phase < 2; phase++ {
				packed := b.PackStride2Into(packedPool.Get().(*bitstring.Bits), phase)
				defer packedPool.Put(packed)
				tasks = append(tasks, scanTask{
					src: packed, stride: 2, phase: phase,
					numWindows: packed.NumWindows64(),
				})
			}
		} else {
			tasks = append(tasks,
				scanTask{src: b, stride: 2, phase: 0, numWindows: b.StrideNumWindows64(2, 0)},
				scanTask{src: b, stride: 2, phase: 1, numWindows: b.StrideNumWindows64(2, 1)})
		}
	}

	// Chunk every task's window range into fixed-size shards. Scheduling
	// order is arbitrary but the merged counts are sums over disjoint
	// ranges, hence deterministic.
	var chunks []scanChunk
	for _, t := range tasks {
		for lo := 0; lo < t.numWindows; lo += scanChunkWindows {
			hi := lo + scanChunkWindows
			if hi > t.numWindows {
				hi = t.numWindows
			}
			chunks = append(chunks, scanChunk{t, lo, hi})
		}
	}
	if len(chunks) == 0 {
		return newScanAccum(), nil, nil
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}

	if workers <= 1 {
		acc := newScanAccum()
		env := newScanEnv(key, cfg)
		defer env.releaseBufs()
		var errs []*StageError
		for i, c := range chunks {
			if ctx != nil && ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			if serr := acc.runChunk(c, 0, i, env, cfg); serr != nil {
				if len(errs) < maxStageErrors {
					errs = append(errs, serr)
				}
			}
		}
		return acc, errs, nil
	}

	// Workers pull chunks off a shared atomic cursor; each keeps a private
	// accumulator and error list merged at the join.
	accs := make([]*scanAccum, workers)
	errLists := make([][]*StageError, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wi := wi
		acc := newScanAccum()
		accs[wi] = acc
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := newScanEnv(key, cfg)
			defer env.releaseBufs()
			for {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				if serr := acc.runChunk(chunks[i], wi, i, env, cfg); serr != nil {
					if len(errLists[wi]) < maxStageErrors {
						errLists[wi] = append(errLists[wi], serr)
					}
				}
			}
		}()
	}
	wg.Wait()
	if ctx != nil && ctx.Err() != nil {
		return nil, nil, ctx.Err()
	}

	merged := accs[0]
	for _, acc := range accs[1:] {
		merged.windows += acc.windows
		merged.valid += acc.valid
		merged.rej.add(acc.rej)
		merged.decrypted += acc.decrypted
		merged.panics += acc.panics
		for st, c := range acc.counts {
			merged.counts[st] += c
		}
	}
	var errs []*StageError
	for _, list := range errLists {
		for _, serr := range list {
			if len(errs) < maxStageErrors {
				errs = append(errs, serr)
			}
		}
	}
	return merged, errs, nil
}

// resolveStatements runs the serial tail of the pipeline on the merged
// statement counts: the W mod p_i vote, the consistency graphs, and the
// Generalized-CRT reconstruction, filling the remaining Recognition
// fields. The context bounds the greedy graph elimination, whose
// worst-case cost on adversarial inputs is cubic in the (capped) vertex
// count: on cancellation the stage stops early, records a vote
// StageError, and leaves whatever evidence it had — degraded, not hung.
func resolveStatements(ctx context.Context, rec *Recognition, counts map[crt.Statement]int, key *Key) {
	type cand struct {
		st    crt.Statement
		count int
	}
	cands := make([]cand, 0, len(counts))
	for st, c := range counts {
		cands = append(cands, cand{st, c})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].count != cands[b].count {
			return cands[a].count > cands[b].count
		}
		ea, _ := key.Params.Encode(cands[a].st)
		eb, _ := key.Params.Encode(cands[b].st)
		return ea < eb
	})
	if len(cands) > maxGraphVertices {
		cands = cands[:maxGraphVertices]
	}
	rec.UniqueStatements = len(cands)

	// Vote on W mod p_i (weighted by occurrence count); a clear winner —
	// strictly more than twice the runner-up — eliminates every statement
	// that contradicts it.
	primes := key.Params.Primes()
	winner := make([]int64, len(primes)) // -1 = no clear winner
	for i := range winner {
		winner[i] = -1
	}
	for pi, prime := range primes {
		tally := make(map[uint64]int)
		for _, c := range cands {
			if c.st.I == pi || c.st.J == pi {
				tally[c.st.X%prime] += c.count
			}
		}
		var first, second int
		var firstRes uint64
		for res, votes := range tally {
			if votes > first || (votes == first && res < firstRes) {
				second = first
				first, firstRes = votes, res
			} else if votes > second {
				second = votes
			}
		}
		if first > 2*second {
			winner[pi] = int64(firstRes)
		}
	}
	var filtered []cand
	for _, c := range cands {
		ok := true
		for _, pi := range []int{c.st.I, c.st.J} {
			if winner[pi] >= 0 && int64(c.st.X%primes[pi]) != winner[pi] {
				ok = false
			}
		}
		if ok {
			filtered = append(filtered, c)
		}
	}
	rec.VotedOut = len(cands) - len(filtered)
	if len(filtered) == 0 {
		return
	}

	// Graphs over the remaining statements: G connects inconsistent pairs,
	// H connects pairs that agree on a shared prime. Either relation can
	// only hold between statements whose prime pairs intersect — disjoint
	// moduli are coprime, so the CRT makes such statements vacuously
	// consistent and never H-adjacent. Instead of the all-pairs gcd test
	// (quadratic in n with modular arithmetic per pair, the dominant cost
	// of this stage on large scans), statements are bucketed by incident
	// prime and residues compared within buckets: a mismatch on any shared
	// prime is a G edge, agreement on every shared prime an H edge. A pair
	// sharing both primes meets in two buckets, so agreement is tentative
	// until all buckets are processed and G has claimed its pairs.
	n := len(filtered)
	gAdj := make([][]bool, n)
	hTent := make([][]bool, n)
	for i := range gAdj {
		gAdj[i] = make([]bool, n)
		hTent[i] = make([]bool, n)
	}
	type incidence struct {
		idx int
		res uint64
	}
	buckets := make([][]incidence, len(primes))
	for i, c := range filtered {
		buckets[c.st.I] = append(buckets[c.st.I], incidence{i, c.st.X % primes[c.st.I]})
		buckets[c.st.J] = append(buckets[c.st.J], incidence{i, c.st.X % primes[c.st.J]})
	}
	gEdges := 0
	for _, b := range buckets {
		for x := 0; x < len(b); x++ {
			for y := x + 1; y < len(b); y++ {
				i, j := b[x].idx, b[y].idx
				if b[x].res == b[y].res {
					hTent[i][j], hTent[j][i] = true, true
				} else if !gAdj[i][j] {
					gAdj[i][j], gAdj[j][i] = true, true
					gEdges++
				}
			}
		}
	}
	hDegIncident := make([][]int, n) // H adjacency lists
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if hTent[i][j] && !gAdj[i][j] {
				hDegIncident[i] = append(hDegIncident[i], j)
				hDegIncident[j] = append(hDegIncident[j], i)
			}
		}
	}

	// Greedy elimination (§3.3 step C): repeatedly presume the statement
	// with the highest H-degree true and delete its G-neighbors, until G
	// is edgeless.
	alive := make([]bool, n)
	inU := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	hDeg := func(i int) int {
		d := 0
		for _, j := range hDegIncident[i] {
			if alive[j] {
				d++
			}
		}
		return d
	}
	cutOff := false
	for gEdges > 0 {
		if ctx != nil && ctx.Err() != nil {
			cutOff = true
			break
		}
		best, bestDeg := -1, -1
		for i := 0; i < n; i++ {
			if alive[i] && !inU[i] {
				if d := hDeg(i); d > bestDeg {
					best, bestDeg = i, d
				}
			}
		}
		if best < 0 {
			// All live vertices are presumed true but G still has edges:
			// cannot happen (picking a vertex removes its G-neighbors),
			// guarded for robustness.
			break
		}
		inU[best] = true
		for j := 0; j < n; j++ {
			if alive[j] && gAdj[best][j] {
				alive[j] = false
				// Every G edge from j to a still-live vertex (including
				// the edge to best itself) disappears with j.
				for k := 0; k < n; k++ {
					if alive[k] && gAdj[j][k] {
						gEdges--
					}
				}
			}
		}
	}
	if cutOff {
		rec.Degraded = true
		if len(rec.StageErrors) < maxStageErrors {
			rec.StageErrors = append(rec.StageErrors, &StageError{
				Stage: "vote", Worker: -1,
				Cause: fmt.Errorf("graph elimination cut short: %w", ctx.Err()),
			})
		}
		// A cut-short G may still hold inconsistent pairs; reconstruction
		// over them would be wrong, so keep nothing.
		return
	}

	var survivors []crt.Statement
	for i := 0; i < n; i++ {
		if alive[i] {
			survivors = append(survivors, filtered[i].st)
		}
	}
	rec.Survivors = len(survivors)
	if len(survivors) == 0 {
		return
	}
	rec.Surviving = survivors

	// Degradation score: the fraction of the key's prime basis the
	// survivors still cover. Full coverage ⇒ 1.0.
	covered := make(map[int]bool)
	for _, s := range survivors {
		covered[s.I] = true
		covered[s.J] = true
	}
	rec.Confidence = float64(len(covered)) / float64(len(primes))

	value, modulus, err := key.Params.Reconstruct(survivors)
	if err != nil {
		// Pairwise consistency should guarantee a solution; treat failure
		// as degraded recognition (the surviving statements remain usable
		// evidence) rather than an error.
		rec.Degraded = true
		return
	}
	rec.Watermark = value
	rec.Modulus = modulus
	rec.FullCoverage = modulus.Cmp(key.MaxWatermark()) == 0
	if !rec.FullCoverage {
		rec.Degraded = true
	}
}

// Matches reports whether recognition fully recovered the given watermark.
func (r *Recognition) Matches(w *big.Int) bool {
	return r != nil && r.Watermark != nil && r.FullCoverage && r.Watermark.Cmp(w) == 0
}
