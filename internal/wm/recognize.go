package wm

import (
	"fmt"
	"math/big"
	"sort"

	"pathmark/internal/bitstring"
	"pathmark/internal/crt"
	"pathmark/internal/feistel"
	"pathmark/internal/vm"
)

// Recognition reports the outcome of the recognition phase (§3.3).
type Recognition struct {
	// Watermark is the recovered value mod Modulus; it equals the embedded
	// watermark when FullCoverage is true and enough uncorrupted pieces
	// survived.
	Watermark *big.Int
	// Modulus is the combined CRT modulus of the surviving statements.
	Modulus *big.Int
	// FullCoverage reports whether every prime of the key's basis is
	// covered, i.e. Modulus equals the key's MaxWatermark bound.
	FullCoverage bool

	Windows          int // 64-bit windows scanned
	ValidStatements  int // windows decoding to an in-range statement
	UniqueStatements int // distinct statements among those
	VotedOut         int // statements eliminated by the W mod p_i vote
	Survivors        int // statements surviving the consistency graphs
	TraceBits        int // length of the decoded bit-string
}

// maxGraphVertices bounds the consistency-graph size; statements beyond
// the cap (rarest first) are dropped. Real traces produce few distinct
// valid statements, so the cap only guards against adversarial inputs.
const maxGraphVertices = 4096

// Recognize re-traces the program on the key's secret input, decodes the
// trace into its bit-string, and recombines watermark pieces (§3.3):
// sliding 64-bit windows are decrypted and inverse-enumerated into
// statements; a vote on W mod p_i discards contradicted statements; the
// inconsistency graph G and agreement graph H drive the greedy selection;
// survivors merge via the Generalized CRT.
func Recognize(p *vm.Program, key *Key) (*Recognition, error) {
	tr, _, err := vm.Collect(p, key.Input, 1)
	if err != nil {
		return nil, fmt.Errorf("wm: recognition trace failed: %w", err)
	}
	bits := tr.DecodeBits()
	cipher := feistel.New(key.Cipher)

	rec := &Recognition{TraceBits: bits.Len()}
	counts := make(map[crt.Statement]int)
	// Scan the full bit-string plus its two stride-2 phases: the rolled
	// loop generator interleaves one constant control bit between payload
	// bits, so its pieces are contiguous in a stride-2 phase rather than
	// in the raw string.
	//
	// Degenerate low-entropy windows (long constant runs, e.g. from the
	// generators' priming passes) are skipped: a genuine cipher block is
	// pseudorandom and has balanced popcount except with negligible
	// probability, while a single repeated-run value would otherwise
	// decode at thousands of positions and hijack the W mod p_i vote.
	scan := func(b *bitstring.Bits) {
		b.Windows64(func(_ int, w uint64) bool {
			rec.Windows++
			if pc := bits64OnesCount(w); pc < 8 || pc > 56 {
				return true
			}
			if st, ok := key.Params.Decode(cipher.Decrypt(w)); ok {
				rec.ValidStatements++
				counts[st]++
			}
			return true
		})
	}
	scan(bits)
	if bits.Len() >= 2 {
		scan(bits.Stride(2, 0))
		scan(bits.Stride(2, 1))
	}
	// Cap per-statement multiplicity so that no single repetitive pattern
	// can dominate the vote: self-similar host traces (recursion, loop
	// nests) repeat identical high-entropy windows verbatim, so raw
	// occurrence counts are not trustworthy evidence. A cap of 3 keeps
	// redundancy useful (several *distinct* statements still outvote any
	// single impostor residue) without letting one repeated pattern win.
	const countCap = 3
	for st, c := range counts {
		if c > countCap {
			counts[st] = countCap
		}
	}
	if len(counts) == 0 {
		return rec, nil
	}

	type cand struct {
		st    crt.Statement
		count int
	}
	cands := make([]cand, 0, len(counts))
	for st, c := range counts {
		cands = append(cands, cand{st, c})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].count != cands[b].count {
			return cands[a].count > cands[b].count
		}
		ea, _ := key.Params.Encode(cands[a].st)
		eb, _ := key.Params.Encode(cands[b].st)
		return ea < eb
	})
	if len(cands) > maxGraphVertices {
		cands = cands[:maxGraphVertices]
	}
	rec.UniqueStatements = len(cands)

	// Vote on W mod p_i (weighted by occurrence count); a clear winner —
	// strictly more than twice the runner-up — eliminates every statement
	// that contradicts it.
	primes := key.Params.Primes()
	winner := make([]int64, len(primes)) // -1 = no clear winner
	for i := range winner {
		winner[i] = -1
	}
	for pi, prime := range primes {
		tally := make(map[uint64]int)
		for _, c := range cands {
			if c.st.I == pi || c.st.J == pi {
				tally[c.st.X%prime] += c.count
			}
		}
		var first, second int
		var firstRes uint64
		for res, votes := range tally {
			if votes > first || (votes == first && res < firstRes) {
				second = first
				first, firstRes = votes, res
			} else if votes > second {
				second = votes
			}
		}
		if first > 2*second {
			winner[pi] = int64(firstRes)
		}
	}
	var filtered []cand
	for _, c := range cands {
		ok := true
		for _, pi := range []int{c.st.I, c.st.J} {
			if winner[pi] >= 0 && int64(c.st.X%primes[pi]) != winner[pi] {
				ok = false
			}
		}
		if ok {
			filtered = append(filtered, c)
		}
	}
	rec.VotedOut = len(cands) - len(filtered)
	if len(filtered) == 0 {
		return rec, nil
	}

	// Graphs over the remaining statements: G connects inconsistent pairs,
	// H connects pairs that agree on a shared prime.
	n := len(filtered)
	gAdj := make([][]bool, n)
	hDegIncident := make([][]int, n) // H adjacency lists
	for i := range gAdj {
		gAdj[i] = make([]bool, n)
	}
	gEdges := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !key.Params.Consistent(filtered[i].st, filtered[j].st) {
				gAdj[i][j], gAdj[j][i] = true, true
				gEdges++
			} else if key.Params.SharePrime(filtered[i].st, filtered[j].st) {
				hDegIncident[i] = append(hDegIncident[i], j)
				hDegIncident[j] = append(hDegIncident[j], i)
			}
		}
	}

	// Greedy elimination (§3.3 step C): repeatedly presume the statement
	// with the highest H-degree true and delete its G-neighbors, until G
	// is edgeless.
	alive := make([]bool, n)
	inU := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	hDeg := func(i int) int {
		d := 0
		for _, j := range hDegIncident[i] {
			if alive[j] {
				d++
			}
		}
		return d
	}
	for gEdges > 0 {
		best, bestDeg := -1, -1
		for i := 0; i < n; i++ {
			if alive[i] && !inU[i] {
				if d := hDeg(i); d > bestDeg {
					best, bestDeg = i, d
				}
			}
		}
		if best < 0 {
			// All live vertices are presumed true but G still has edges:
			// cannot happen (picking a vertex removes its G-neighbors),
			// guarded for robustness.
			break
		}
		inU[best] = true
		for j := 0; j < n; j++ {
			if alive[j] && gAdj[best][j] {
				alive[j] = false
				// Every G edge from j to a still-live vertex (including
				// the edge to best itself) disappears with j.
				for k := 0; k < n; k++ {
					if alive[k] && gAdj[j][k] {
						gEdges--
					}
				}
			}
		}
	}

	var survivors []crt.Statement
	for i := 0; i < n; i++ {
		if alive[i] {
			survivors = append(survivors, filtered[i].st)
		}
	}
	rec.Survivors = len(survivors)
	if len(survivors) == 0 {
		return rec, nil
	}
	value, modulus, err := key.Params.Reconstruct(survivors)
	if err != nil {
		// Pairwise consistency should guarantee a solution; treat failure
		// as recognition failure rather than an error.
		return rec, nil
	}
	rec.Watermark = value
	rec.Modulus = modulus
	rec.FullCoverage = modulus.Cmp(key.MaxWatermark()) == 0
	return rec, nil
}

// Matches reports whether recognition fully recovered the given watermark.
func (r *Recognition) Matches(w *big.Int) bool {
	return r != nil && r.Watermark != nil && r.FullCoverage && r.Watermark.Cmp(w) == 0
}

func bits64OnesCount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}
