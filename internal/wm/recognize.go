package wm

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pathmark/internal/bitstring"
	"pathmark/internal/cache"
	"pathmark/internal/crt"
	"pathmark/internal/feistel"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
)

// Recognition reports the outcome of the recognition phase (§3.3).
type Recognition struct {
	// Watermark is the recovered value mod Modulus; it equals the embedded
	// watermark when FullCoverage is true and enough uncorrupted pieces
	// survived.
	Watermark *big.Int
	// Modulus is the combined CRT modulus of the surviving statements.
	Modulus *big.Int
	// FullCoverage reports whether every prime of the key's basis is
	// covered, i.e. Modulus equals the key's MaxWatermark bound.
	FullCoverage bool

	Windows          int // 64-bit windows scanned
	ValidStatements  int // windows decoding to an in-range statement
	UniqueStatements int // distinct statements among those
	VotedOut         int // statements eliminated by the W mod p_i vote
	Survivors        int // statements surviving the consistency graphs
	TraceBits        int // length of the decoded bit-string
	// PrefilterRejected counts windows dropped by the popcount prefilter
	// before decryption (see RecognizeOpts.Prefilter). A sum over disjoint
	// scan shards, hence identical at every worker count.
	PrefilterRejected int

	// Surviving holds the CRT statements that survived the vote and
	// consistency graphs — the partial-recovery evidence. When the full
	// watermark cannot be reconstructed (damaged trace, lost pieces), the
	// survivors still pin W modulo their combined modulus.
	Surviving []crt.Statement
	// Confidence is the fraction of the key's prime basis covered by the
	// surviving statements: 1.0 means full coverage, 0 means nothing
	// survived. It is the graceful-degradation score — how much of the
	// watermark's residue system the damaged input still supports.
	Confidence float64
	// Degraded reports that the pipeline completed but lost something on
	// the way: a scan worker crashed, the vote stage was cut short, or the
	// survivors cover only part of the prime basis.
	Degraded bool
	// StageErrors records recovered per-stage failures (worker panics,
	// vote-stage cutoffs), capped at a small number; see the
	// recognize.scan_panics counter for the uncapped total.
	StageErrors []*StageError
}

// PopcountBand is the scan stage's prefilter: a window is decrypted only
// when its popcount lies in [Lo, Hi] (inclusive on both edges). Degenerate
// low-entropy windows — long constant runs from the generators' priming
// passes — would otherwise decode at thousands of positions and hijack the
// W mod p_i vote, while a genuine cipher block is pseudorandom and sits
// near popcount 32 except with tiny probability. The filter is lossy by
// construction: with the default band a genuine encrypted piece is
// rejected with probability ~7.6e-11 (the two binomial tails), so a
// recognizer that comes up empty can retry with a wider band; rejected
// windows are counted in Recognition.PrefilterRejected and the
// scan.prefilter_rejected obs counter rather than dropped silently.
type PopcountBand struct {
	Lo, Hi int
}

// DefaultPrefilter is the band used when RecognizeOpts.Prefilter is nil.
var DefaultPrefilter = PopcountBand{Lo: 8, Hi: 56}

// NoPrefilter accepts every window (the band covers all 65 popcounts);
// use it to rule the prefilter out when hunting for lost pieces.
var NoPrefilter = PopcountBand{Lo: 0, Hi: 64}

// rejects reports whether the band drops a window with popcount pc.
func (b PopcountBand) rejects(pc int) bool { return pc < b.Lo || pc > b.Hi }

// RecognizeOpts tunes the recognition pipeline.
type RecognizeOpts struct {
	// Workers is the number of goroutines the sliding-window scan fans out
	// over: 0 picks runtime.GOMAXPROCS(0), 1 forces the serial path. The
	// Recognition result is bit-for-bit identical at any worker count.
	Workers int
	// Ctx, when non-nil, cancels the pipeline: the tracing run, the scan
	// workers (checked per chunk), and the vote stage all return promptly
	// with a *StageError wrapping the context's error once it is done.
	Ctx context.Context
	// StepLimit bounds the tracing run (0 = interpreter default);
	// exhaustion surfaces as a trace StageError wrapping vm.ResourceError.
	StepLimit int64
	// MaxHeap bounds the tracing run's cumulative array allocation
	// (0 = interpreter default).
	MaxHeap int64
	// ScanHook, when non-nil, is called by the scan stage before every
	// chunk with the worker index and chunk index. It exists for fault
	// injection: a panicking hook simulates a worker crash, which the pool
	// converts into a StageError without losing other workers' counts.
	// Production callers leave it nil.
	ScanHook func(worker, chunk int)
	// Prefilter overrides the scan's popcount band (nil = the
	// DefaultPrefilter band [8, 56]; NoPrefilter disables filtering).
	Prefilter *PopcountBand
	// DecryptCache, when non-nil, memoizes window decryption across the
	// scan: each distinct 64-bit window is run through the cipher at most
	// once (within the cache's capacity) and repeats are answered from the
	// table. Real traces are loop-heavy and repeat identical windows
	// thousands of times, so corpus recognition shares one cache per
	// candidate key across suspects (see FleetCaches). The cache is a pure
	// memo table — results are bit-identical with it on or off, at every
	// worker count.
	DecryptCache *cache.Cache64
	// Obs, when non-nil, receives per-stage spans (recognize.trace/scan/
	// vote) and pipeline counters/histograms. All recorded metric values
	// are input-derived — per-worker scan counters are summed over
	// disjoint shards at the join — so the registry content is identical
	// at every worker count; only span wall times differ. Degradation
	// events additionally land in recognize.degraded and
	// recognize.scan_panics.
	Obs *obs.Registry
}

// maxGraphVertices bounds the consistency-graph size; statements beyond
// the cap (rarest first) are dropped. Real traces produce few distinct
// valid statements, so the cap only guards against adversarial inputs.
const maxGraphVertices = 4096

// scanChunkWindows is the shard granularity of the scan: each work unit
// covers this many window positions. Small enough to balance load across
// workers on skewed traces and to make per-chunk cancellation checks
// prompt, large enough that the per-chunk dispatch overhead (one atomic
// add) is negligible against ~2k cipher decryptions per chunk.
const scanChunkWindows = 2048

// maxStageErrors caps how many recovered failures a Recognition retains;
// beyond it only the counters grow. A hook or corruption that poisons
// every chunk would otherwise allocate one error per chunk.
const maxStageErrors = 8

// Recognize re-traces the program on the key's secret input, decodes the
// trace into its bit-string, and recombines watermark pieces (§3.3). It is
// RecognizeWithOpts with automatic worker selection.
func Recognize(p *vm.Program, key *Key) (*Recognition, error) {
	return RecognizeWithOpts(p, key, RecognizeOpts{})
}

// RecognizeWithOpts runs the recognition pipeline in three stages:
//
//  1. trace: re-run the program on the key's secret input and decode the
//     trace into its bit-string (§3.1) — inherently serial;
//  2. scan: slide 64-bit windows over the bit-string plus its two stride-2
//     phases, decrypting and inverse-enumerating each window into a
//     candidate statement (§3.3 step A) — the dominant cost, fanned out
//     over opts.Workers goroutines on disjoint window ranges, each with a
//     private statement-count map merged (summed) afterward;
//  3. vote/graph: the W mod p_i vote, the inconsistency/agreement graphs,
//     greedy selection, and the Generalized-CRT merge (§3.3 steps B–D) —
//     serial on the handful of surviving statements.
//
// Window counts and per-statement occurrence counts are sums over disjoint
// shards, so the merged result — and everything derived from it — is
// identical at every worker count.
//
// Failure contract: a failing or cut-off tracing run returns (nil, error)
// where the error is a *StageError (wrapping vm.ResourceError for fuel
// exhaustion or the context error for cancellation). A crashed scan worker
// does NOT abort the pipeline: the panic is recovered, the remaining
// workers' counts survive, and the call returns a *partial* Recognition
// with Degraded set alongside the first *StageError. Callers that only
// check err therefore fail safe; callers that also look at the Recognition
// get everything the damaged run still supports.
func RecognizeWithOpts(p *vm.Program, key *Key, opts RecognizeOpts) (*Recognition, error) {
	total := opts.Obs.Start("recognize")
	defer total.Finish()
	opts.Obs.Counter("recognize.calls").Add(1)

	// Stage 1: trace.
	span := opts.Obs.Start("recognize.trace")
	tr, _, err := vm.CollectWith(p, vm.RunOptions{
		Input: key.Input, SnapshotLimit: 1,
		Ctx: opts.Ctx, StepLimit: opts.StepLimit, MaxHeap: opts.MaxHeap,
	})
	if err != nil {
		span.Finish()
		return nil, &StageError{Stage: "trace", Worker: -1,
			Cause: fmt.Errorf("recognition trace failed: %w", err)}
	}
	bits := tr.DecodeBits()
	span.Set("trace_events", int64(len(tr.Events))).
		Set("trace_bits", int64(bits.Len())).Finish()
	opts.Obs.Histogram("recognize.trace_bits").Observe(int64(bits.Len()))

	return RecognizeBits(bits, key, opts)
}

// RecognizeBits runs recognition stages 2–3 (scan, vote/graph) over an
// already-decoded trace bit-string. It is the entry point for callers that
// obtain — or corrupt — the bit-string themselves, such as the
// fault-injection harness, and for recognizing traces captured elsewhere.
// The vector is validated up front so adversarial shapes fail with an
// error rather than a panic in the scan loops. The Recognition's TraceBits
// field is taken from the vector's length.
func RecognizeBits(b *bitstring.Bits, key *Key, opts RecognizeOpts) (*Recognition, error) {
	if err := b.Validate(); err != nil {
		return nil, &StageError{Stage: "scan", Worker: -1,
			Cause: fmt.Errorf("invalid trace bit-string: %w", err)}
	}
	rec := &Recognition{TraceBits: b.Len()}

	// Stage 2: scan.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	band := DefaultPrefilter
	if opts.Prefilter != nil {
		band = *opts.Prefilter
	}
	span := opts.Obs.Start("recognize.scan")
	cacheBefore := opts.DecryptCache.Stats()
	acc, scanErrs, err := scanBits(opts.Ctx, b, key, workers, scanConfig{
		hook: opts.ScanHook, band: band, decryptCache: opts.DecryptCache,
	})
	if err != nil {
		span.Finish()
		return nil, &StageError{Stage: "scan", Worker: -1, Cause: err}
	}
	if n := len(scanErrs); n > 0 {
		rec.Degraded = true
		rec.StageErrors = append(rec.StageErrors, scanErrs...)
		opts.Obs.Counter("recognize.scan_panics").Add(int64(acc.panics))
	}
	rec.Windows = acc.windows
	rec.ValidStatements = acc.valid
	rec.PrefilterRejected = acc.rejected
	span.Set("windows", int64(acc.windows)).
		Set("valid_statements", int64(acc.valid)).
		Set("recovered_panics", int64(acc.panics)).Finish()
	opts.Obs.Counter("recognize.windows_total").Add(int64(acc.windows))
	opts.Obs.Counter("recognize.valid_total").Add(int64(acc.valid))
	opts.Obs.Counter("scan.prefilter_rejected").Add(int64(acc.rejected))
	if opts.DecryptCache != nil {
		// Delta, not absolute: the cache typically outlives one call. The
		// hit/miss split is schedule-independent as long as the cache stays
		// within capacity and is not shared with concurrent scans (misses =
		// distinct windows, an input property); bypasses beyond capacity
		// are the one schedule-dependent count.
		d := opts.DecryptCache.Stats().Sub(cacheBefore)
		opts.Obs.Counter("cache.decrypt.hits").Add(d.Hits)
		opts.Obs.Counter("cache.decrypt.misses").Add(d.Misses)
		opts.Obs.Counter("cache.decrypt.bypassed").Add(d.Bypassed)
		opts.Obs.Counter("cache.decrypt.evictions").Add(d.Evictions)
	}
	if acc.windows > 0 {
		// Valid-statement hit rate in parts per million: integer-valued,
		// hence deterministic across worker counts and machines.
		opts.Obs.Histogram("recognize.valid_ppm").
			Observe(int64(acc.valid) * 1_000_000 / int64(acc.windows))
	}

	// Cap per-statement multiplicity so that no single repetitive pattern
	// can dominate the vote: self-similar host traces (recursion, loop
	// nests) repeat identical high-entropy windows verbatim, so raw
	// occurrence counts are not trustworthy evidence. A cap of 3 keeps
	// redundancy useful (several *distinct* statements still outvote any
	// single impostor residue) without letting one repeated pattern win.
	const countCap = 3
	for st, c := range acc.counts {
		if c > countCap {
			acc.counts[st] = countCap
		}
	}
	if len(acc.counts) > 0 {
		// Stage 3: vote + consistency graphs + CRT merge.
		span = opts.Obs.Start("recognize.vote")
		resolveStatements(opts.Ctx, rec, acc.counts, key)
		span.Set("unique_statements", int64(rec.UniqueStatements)).
			Set("voted_out", int64(rec.VotedOut)).
			Set("survivors", int64(rec.Survivors)).
			Set("confidence_bp", int64(rec.Confidence*10_000)).Finish()
	}
	if rec.Degraded {
		opts.Obs.Counter("recognize.degraded").Add(1)
	}
	if len(rec.StageErrors) > 0 {
		return rec, rec.StageErrors[0]
	}
	return rec, nil
}

// scanTask describes one shardable window source of the scan stage. The
// raw bit-string is scanned alongside its two stride-2 phases: the rolled
// loop generator interleaves one constant control bit between payload
// bits, so its pieces are contiguous in a stride-2 phase rather than in
// the raw string.
type scanTask struct {
	stride, phase int // stride=1: raw scan
	numWindows    int
}

// scanAccum accumulates one worker's share of the scan.
type scanAccum struct {
	windows  int
	valid    int
	rejected int // windows dropped by the popcount prefilter
	panics   int
	counts   map[crt.Statement]int
}

// scanConfig bundles the scan stage's tuning knobs so scanBits keeps a
// stable signature as knobs accrue.
type scanConfig struct {
	hook         func(worker, chunk int)
	band         PopcountBand
	decryptCache *cache.Cache64
}

// scanEnv is one worker's per-goroutine scan state: its private cipher
// instance (expanded subkeys), the shared read-only decode parameters,
// and the (shared, concurrency-safe) decrypt cache.
type scanEnv struct {
	cipher  *feistel.Cipher
	decrypt func(uint64) uint64 // cipher.Decrypt as a bound method value
	params  *crt.Params
	band    PopcountBand
	cache   *cache.Cache64
}

func newScanEnv(key *Key, cfg scanConfig) *scanEnv {
	c := feistel.New(key.Cipher)
	return &scanEnv{
		cipher:  c,
		decrypt: c.Decrypt,
		params:  key.Params,
		band:    cfg.band,
		cache:   cfg.decryptCache,
	}
}

// scanRange scans windows [lo, hi) of one task, decrypting each candidate
// window and recording decoded statements.
//
// Degenerate low-entropy windows (long constant runs, e.g. from the
// generators' priming passes) are dropped by the popcount band before
// decryption — see PopcountBand for the filter's rationale and
// false-negative rate — and counted per shard so the total is
// deterministic. With a decrypt cache, each distinct surviving window
// runs through the cipher at most once; the memo value is the raw
// decryption, whose in-range check (params.Decode) is cheap enough to
// redo per occurrence.
func (a *scanAccum) scanRange(b *bitstring.Bits, t scanTask, lo, hi int, env *scanEnv) {
	visit := func(_ int, w uint64) bool {
		a.windows++
		if env.band.rejects(bits.OnesCount64(w)) {
			a.rejected++
			return true
		}
		var dec uint64
		if env.cache != nil {
			dec = env.cache.GetOrCompute(w, env.decrypt)
		} else {
			dec = env.cipher.Decrypt(w)
		}
		if st, ok := env.params.Decode(dec); ok {
			a.valid++
			a.counts[st]++
		}
		return true
	}
	if t.stride == 1 {
		b.Windows64Range(lo, hi, visit)
	} else {
		b.StrideWindows64Range(t.stride, t.phase, lo, hi, visit)
	}
}

// scanChunk is one shard of the scan work list.
type scanChunk struct {
	task   scanTask
	lo, hi int
}

// runChunk processes one chunk with panic containment: a panic — from the
// fault-injection hook or from corrupted state — is recovered and reported
// as a *StageError instead of unwinding the worker, so one poisoned chunk
// costs at most its own partial counts.
func (a *scanAccum) runChunk(b *bitstring.Bits, c scanChunk, worker, chunk int,
	env *scanEnv, hook func(worker, chunk int)) (serr *StageError) {
	defer func() {
		if r := recover(); r != nil {
			a.panics++
			serr = &StageError{Stage: "scan", Worker: worker,
				Cause: fmt.Errorf("recovered scan panic on chunk %d: %v", chunk, r)}
		}
	}()
	if hook != nil {
		hook(worker, chunk)
	}
	a.scanRange(b, c.task, c.lo, c.hi, env)
	return nil
}

// scanBits runs the scan stage over the raw bit-string and its two
// stride-2 phases, sharded into fixed-size chunks processed by the given
// number of workers (1 = inline, no goroutines). The returned slice holds
// recovered per-chunk failures (capped at maxStageErrors; scanAccum.panics
// has the true count); the error is non-nil only for cancellation, in
// which case the scan is abandoned.
func scanBits(ctx context.Context, b *bitstring.Bits, key *Key, workers int,
	cfg scanConfig) (*scanAccum, []*StageError, error) {
	tasks := []scanTask{{stride: 1, numWindows: b.NumWindows64()}}
	if b.Len() >= 2 {
		tasks = append(tasks,
			scanTask{stride: 2, phase: 0, numWindows: b.StrideNumWindows64(2, 0)},
			scanTask{stride: 2, phase: 1, numWindows: b.StrideNumWindows64(2, 1)})
	}

	// Chunk every task's window range into fixed-size shards. Scheduling
	// order is arbitrary but the merged counts are sums over disjoint
	// ranges, hence deterministic.
	var chunks []scanChunk
	for _, t := range tasks {
		for lo := 0; lo < t.numWindows; lo += scanChunkWindows {
			hi := lo + scanChunkWindows
			if hi > t.numWindows {
				hi = t.numWindows
			}
			chunks = append(chunks, scanChunk{t, lo, hi})
		}
	}
	if len(chunks) == 0 {
		return &scanAccum{counts: make(map[crt.Statement]int)}, nil, nil
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}

	if workers <= 1 {
		acc := &scanAccum{counts: make(map[crt.Statement]int)}
		env := newScanEnv(key, cfg)
		var errs []*StageError
		for i, c := range chunks {
			if ctx != nil && ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			if serr := acc.runChunk(b, c, 0, i, env, cfg.hook); serr != nil {
				if len(errs) < maxStageErrors {
					errs = append(errs, serr)
				}
			}
		}
		return acc, errs, nil
	}

	// Workers pull chunks off a shared atomic cursor; each keeps a private
	// accumulator and error list merged at the join.
	accs := make([]*scanAccum, workers)
	errLists := make([][]*StageError, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wi := wi
		acc := &scanAccum{counts: make(map[crt.Statement]int)}
		accs[wi] = acc
		wg.Add(1)
		go func() {
			defer wg.Done()
			env := newScanEnv(key, cfg)
			for {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				if serr := acc.runChunk(b, chunks[i], wi, i, env, cfg.hook); serr != nil {
					if len(errLists[wi]) < maxStageErrors {
						errLists[wi] = append(errLists[wi], serr)
					}
				}
			}
		}()
	}
	wg.Wait()
	if ctx != nil && ctx.Err() != nil {
		return nil, nil, ctx.Err()
	}

	merged := accs[0]
	for _, acc := range accs[1:] {
		merged.windows += acc.windows
		merged.valid += acc.valid
		merged.rejected += acc.rejected
		merged.panics += acc.panics
		for st, c := range acc.counts {
			merged.counts[st] += c
		}
	}
	var errs []*StageError
	for _, list := range errLists {
		for _, serr := range list {
			if len(errs) < maxStageErrors {
				errs = append(errs, serr)
			}
		}
	}
	return merged, errs, nil
}

// resolveStatements runs the serial tail of the pipeline on the merged
// statement counts: the W mod p_i vote, the consistency graphs, and the
// Generalized-CRT reconstruction, filling the remaining Recognition
// fields. The context bounds the greedy graph elimination, whose
// worst-case cost on adversarial inputs is cubic in the (capped) vertex
// count: on cancellation the stage stops early, records a vote
// StageError, and leaves whatever evidence it had — degraded, not hung.
func resolveStatements(ctx context.Context, rec *Recognition, counts map[crt.Statement]int, key *Key) {
	type cand struct {
		st    crt.Statement
		count int
	}
	cands := make([]cand, 0, len(counts))
	for st, c := range counts {
		cands = append(cands, cand{st, c})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].count != cands[b].count {
			return cands[a].count > cands[b].count
		}
		ea, _ := key.Params.Encode(cands[a].st)
		eb, _ := key.Params.Encode(cands[b].st)
		return ea < eb
	})
	if len(cands) > maxGraphVertices {
		cands = cands[:maxGraphVertices]
	}
	rec.UniqueStatements = len(cands)

	// Vote on W mod p_i (weighted by occurrence count); a clear winner —
	// strictly more than twice the runner-up — eliminates every statement
	// that contradicts it.
	primes := key.Params.Primes()
	winner := make([]int64, len(primes)) // -1 = no clear winner
	for i := range winner {
		winner[i] = -1
	}
	for pi, prime := range primes {
		tally := make(map[uint64]int)
		for _, c := range cands {
			if c.st.I == pi || c.st.J == pi {
				tally[c.st.X%prime] += c.count
			}
		}
		var first, second int
		var firstRes uint64
		for res, votes := range tally {
			if votes > first || (votes == first && res < firstRes) {
				second = first
				first, firstRes = votes, res
			} else if votes > second {
				second = votes
			}
		}
		if first > 2*second {
			winner[pi] = int64(firstRes)
		}
	}
	var filtered []cand
	for _, c := range cands {
		ok := true
		for _, pi := range []int{c.st.I, c.st.J} {
			if winner[pi] >= 0 && int64(c.st.X%primes[pi]) != winner[pi] {
				ok = false
			}
		}
		if ok {
			filtered = append(filtered, c)
		}
	}
	rec.VotedOut = len(cands) - len(filtered)
	if len(filtered) == 0 {
		return
	}

	// Graphs over the remaining statements: G connects inconsistent pairs,
	// H connects pairs that agree on a shared prime.
	n := len(filtered)
	gAdj := make([][]bool, n)
	hDegIncident := make([][]int, n) // H adjacency lists
	for i := range gAdj {
		gAdj[i] = make([]bool, n)
	}
	gEdges := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !key.Params.Consistent(filtered[i].st, filtered[j].st) {
				gAdj[i][j], gAdj[j][i] = true, true
				gEdges++
			} else if key.Params.SharePrime(filtered[i].st, filtered[j].st) {
				hDegIncident[i] = append(hDegIncident[i], j)
				hDegIncident[j] = append(hDegIncident[j], i)
			}
		}
	}

	// Greedy elimination (§3.3 step C): repeatedly presume the statement
	// with the highest H-degree true and delete its G-neighbors, until G
	// is edgeless.
	alive := make([]bool, n)
	inU := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	hDeg := func(i int) int {
		d := 0
		for _, j := range hDegIncident[i] {
			if alive[j] {
				d++
			}
		}
		return d
	}
	cutOff := false
	for gEdges > 0 {
		if ctx != nil && ctx.Err() != nil {
			cutOff = true
			break
		}
		best, bestDeg := -1, -1
		for i := 0; i < n; i++ {
			if alive[i] && !inU[i] {
				if d := hDeg(i); d > bestDeg {
					best, bestDeg = i, d
				}
			}
		}
		if best < 0 {
			// All live vertices are presumed true but G still has edges:
			// cannot happen (picking a vertex removes its G-neighbors),
			// guarded for robustness.
			break
		}
		inU[best] = true
		for j := 0; j < n; j++ {
			if alive[j] && gAdj[best][j] {
				alive[j] = false
				// Every G edge from j to a still-live vertex (including
				// the edge to best itself) disappears with j.
				for k := 0; k < n; k++ {
					if alive[k] && gAdj[j][k] {
						gEdges--
					}
				}
			}
		}
	}
	if cutOff {
		rec.Degraded = true
		if len(rec.StageErrors) < maxStageErrors {
			rec.StageErrors = append(rec.StageErrors, &StageError{
				Stage: "vote", Worker: -1,
				Cause: fmt.Errorf("graph elimination cut short: %w", ctx.Err()),
			})
		}
		// A cut-short G may still hold inconsistent pairs; reconstruction
		// over them would be wrong, so keep nothing.
		return
	}

	var survivors []crt.Statement
	for i := 0; i < n; i++ {
		if alive[i] {
			survivors = append(survivors, filtered[i].st)
		}
	}
	rec.Survivors = len(survivors)
	if len(survivors) == 0 {
		return
	}
	rec.Surviving = survivors

	// Degradation score: the fraction of the key's prime basis the
	// survivors still cover. Full coverage ⇒ 1.0.
	covered := make(map[int]bool)
	for _, s := range survivors {
		covered[s.I] = true
		covered[s.J] = true
	}
	rec.Confidence = float64(len(covered)) / float64(len(primes))

	value, modulus, err := key.Params.Reconstruct(survivors)
	if err != nil {
		// Pairwise consistency should guarantee a solution; treat failure
		// as degraded recognition (the surviving statements remain usable
		// evidence) rather than an error.
		rec.Degraded = true
		return
	}
	rec.Watermark = value
	rec.Modulus = modulus
	rec.FullCoverage = modulus.Cmp(key.MaxWatermark()) == 0
	if !rec.FullCoverage {
		rec.Degraded = true
	}
}

// Matches reports whether recognition fully recovered the given watermark.
func (r *Recognition) Matches(w *big.Int) bool {
	return r != nil && r.Watermark != nil && r.FullCoverage && r.Watermark.Cmp(w) == 0
}
