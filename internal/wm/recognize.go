package wm

import (
	"fmt"
	"math/big"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pathmark/internal/bitstring"
	"pathmark/internal/crt"
	"pathmark/internal/feistel"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
)

// Recognition reports the outcome of the recognition phase (§3.3).
type Recognition struct {
	// Watermark is the recovered value mod Modulus; it equals the embedded
	// watermark when FullCoverage is true and enough uncorrupted pieces
	// survived.
	Watermark *big.Int
	// Modulus is the combined CRT modulus of the surviving statements.
	Modulus *big.Int
	// FullCoverage reports whether every prime of the key's basis is
	// covered, i.e. Modulus equals the key's MaxWatermark bound.
	FullCoverage bool

	Windows          int // 64-bit windows scanned
	ValidStatements  int // windows decoding to an in-range statement
	UniqueStatements int // distinct statements among those
	VotedOut         int // statements eliminated by the W mod p_i vote
	Survivors        int // statements surviving the consistency graphs
	TraceBits        int // length of the decoded bit-string
}

// RecognizeOpts tunes the recognition pipeline.
type RecognizeOpts struct {
	// Workers is the number of goroutines the sliding-window scan fans out
	// over: 0 picks runtime.GOMAXPROCS(0), 1 forces the serial path. The
	// Recognition result is bit-for-bit identical at any worker count.
	Workers int
	// Obs, when non-nil, receives per-stage spans (recognize.trace/scan/
	// vote) and pipeline counters/histograms. All recorded metric values
	// are input-derived — per-worker scan counters are summed over
	// disjoint shards at the join — so the registry content is identical
	// at every worker count; only span wall times differ.
	Obs *obs.Registry
}

// maxGraphVertices bounds the consistency-graph size; statements beyond
// the cap (rarest first) are dropped. Real traces produce few distinct
// valid statements, so the cap only guards against adversarial inputs.
const maxGraphVertices = 4096

// scanChunkWindows is the shard granularity of the parallel scan: each
// work unit covers this many window positions. Small enough to balance
// load across workers on skewed traces, large enough that the per-chunk
// dispatch overhead (one atomic add) is negligible against ~2k cipher
// decryptions per chunk.
const scanChunkWindows = 2048

// Recognize re-traces the program on the key's secret input, decodes the
// trace into its bit-string, and recombines watermark pieces (§3.3). It is
// RecognizeWithOpts with automatic worker selection.
func Recognize(p *vm.Program, key *Key) (*Recognition, error) {
	return RecognizeWithOpts(p, key, RecognizeOpts{})
}

// RecognizeWithOpts runs the recognition pipeline in three stages:
//
//  1. trace: re-run the program on the key's secret input and decode the
//     trace into its bit-string (§3.1) — inherently serial;
//  2. scan: slide 64-bit windows over the bit-string plus its two stride-2
//     phases, decrypting and inverse-enumerating each window into a
//     candidate statement (§3.3 step A) — the dominant cost, fanned out
//     over opts.Workers goroutines on disjoint window ranges, each with a
//     private statement-count map merged (summed) afterward;
//  3. vote/graph: the W mod p_i vote, the inconsistency/agreement graphs,
//     greedy selection, and the Generalized-CRT merge (§3.3 steps B–D) —
//     serial on the handful of surviving statements.
//
// Window counts and per-statement occurrence counts are sums over disjoint
// shards, so the merged result — and everything derived from it — is
// identical at every worker count.
func RecognizeWithOpts(p *vm.Program, key *Key, opts RecognizeOpts) (*Recognition, error) {
	total := opts.Obs.Start("recognize")
	defer total.Finish()
	opts.Obs.Counter("recognize.calls").Add(1)

	// Stage 1: trace.
	span := opts.Obs.Start("recognize.trace")
	tr, _, err := vm.Collect(p, key.Input, 1)
	if err != nil {
		span.Finish()
		return nil, fmt.Errorf("wm: recognition trace failed: %w", err)
	}
	bits := tr.DecodeBits()
	span.Set("trace_events", int64(len(tr.Events))).
		Set("trace_bits", int64(bits.Len())).Finish()
	opts.Obs.Histogram("recognize.trace_bits").Observe(int64(bits.Len()))

	rec := &Recognition{TraceBits: bits.Len()}

	// Stage 2: scan.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	span = opts.Obs.Start("recognize.scan")
	acc := scanBits(bits, key, workers)
	rec.Windows = acc.windows
	rec.ValidStatements = acc.valid
	span.Set("windows", int64(acc.windows)).
		Set("valid_statements", int64(acc.valid)).Finish()
	opts.Obs.Counter("recognize.windows_total").Add(int64(acc.windows))
	opts.Obs.Counter("recognize.valid_total").Add(int64(acc.valid))
	if acc.windows > 0 {
		// Valid-statement hit rate in parts per million: integer-valued,
		// hence deterministic across worker counts and machines.
		opts.Obs.Histogram("recognize.valid_ppm").
			Observe(int64(acc.valid) * 1_000_000 / int64(acc.windows))
	}

	// Cap per-statement multiplicity so that no single repetitive pattern
	// can dominate the vote: self-similar host traces (recursion, loop
	// nests) repeat identical high-entropy windows verbatim, so raw
	// occurrence counts are not trustworthy evidence. A cap of 3 keeps
	// redundancy useful (several *distinct* statements still outvote any
	// single impostor residue) without letting one repeated pattern win.
	const countCap = 3
	for st, c := range acc.counts {
		if c > countCap {
			acc.counts[st] = countCap
		}
	}
	if len(acc.counts) == 0 {
		return rec, nil
	}

	// Stage 3: vote + consistency graphs + CRT merge.
	span = opts.Obs.Start("recognize.vote")
	resolveStatements(rec, acc.counts, key)
	span.Set("unique_statements", int64(rec.UniqueStatements)).
		Set("voted_out", int64(rec.VotedOut)).
		Set("survivors", int64(rec.Survivors)).Finish()
	return rec, nil
}

// scanTask describes one shardable window source of the scan stage. The
// raw bit-string is scanned alongside its two stride-2 phases: the rolled
// loop generator interleaves one constant control bit between payload
// bits, so its pieces are contiguous in a stride-2 phase rather than in
// the raw string.
type scanTask struct {
	stride, phase int // stride=1: raw scan
	numWindows    int
}

// scanAccum accumulates one worker's share of the scan.
type scanAccum struct {
	windows int
	valid   int
	counts  map[crt.Statement]int
}

// scanRange scans windows [lo, hi) of one task, decrypting each candidate
// window and recording decoded statements.
//
// Degenerate low-entropy windows (long constant runs, e.g. from the
// generators' priming passes) are skipped: a genuine cipher block is
// pseudorandom and has balanced popcount except with negligible
// probability, while a single repeated-run value would otherwise decode
// at thousands of positions and hijack the W mod p_i vote.
func (a *scanAccum) scanRange(b *bitstring.Bits, t scanTask, lo, hi int, cipher *feistel.Cipher, params *crt.Params) {
	visit := func(_ int, w uint64) bool {
		a.windows++
		if pc := bits.OnesCount64(w); pc < 8 || pc > 56 {
			return true
		}
		if st, ok := params.Decode(cipher.Decrypt(w)); ok {
			a.valid++
			a.counts[st]++
		}
		return true
	}
	if t.stride == 1 {
		b.Windows64Range(lo, hi, visit)
	} else {
		b.StrideWindows64Range(t.stride, t.phase, lo, hi, visit)
	}
}

// scanBits runs the scan stage over the raw bit-string and its two
// stride-2 phases, sharded across the given number of workers.
func scanBits(b *bitstring.Bits, key *Key, workers int) *scanAccum {
	tasks := []scanTask{{stride: 1, numWindows: b.NumWindows64()}}
	if b.Len() >= 2 {
		tasks = append(tasks,
			scanTask{stride: 2, phase: 0, numWindows: b.StrideNumWindows64(2, 0)},
			scanTask{stride: 2, phase: 1, numWindows: b.StrideNumWindows64(2, 1)})
	}

	if workers == 1 {
		acc := &scanAccum{counts: make(map[crt.Statement]int)}
		cipher := feistel.New(key.Cipher)
		for _, t := range tasks {
			acc.scanRange(b, t, 0, t.numWindows, cipher, key.Params)
		}
		return acc
	}

	// Chunk every task's window range into fixed-size shards; workers pull
	// shards off a shared atomic cursor. Scheduling order is arbitrary but
	// the merged counts are sums over disjoint ranges, hence deterministic.
	type chunk struct {
		task   scanTask
		lo, hi int
	}
	var chunks []chunk
	for _, t := range tasks {
		for lo := 0; lo < t.numWindows; lo += scanChunkWindows {
			hi := lo + scanChunkWindows
			if hi > t.numWindows {
				hi = t.numWindows
			}
			chunks = append(chunks, chunk{t, lo, hi})
		}
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if len(chunks) == 0 {
		return &scanAccum{counts: make(map[crt.Statement]int)}
	}

	accs := make([]*scanAccum, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		acc := &scanAccum{counts: make(map[crt.Statement]int)}
		accs[wi] = acc
		wg.Add(1)
		go func() {
			defer wg.Done()
			cipher := feistel.New(key.Cipher)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				c := chunks[i]
				acc.scanRange(b, c.task, c.lo, c.hi, cipher, key.Params)
			}
		}()
	}
	wg.Wait()

	merged := accs[0]
	for _, acc := range accs[1:] {
		merged.windows += acc.windows
		merged.valid += acc.valid
		for st, c := range acc.counts {
			merged.counts[st] += c
		}
	}
	return merged
}

// resolveStatements runs the serial tail of the pipeline on the merged
// statement counts: the W mod p_i vote, the consistency graphs, and the
// Generalized-CRT reconstruction, filling the remaining Recognition
// fields.
func resolveStatements(rec *Recognition, counts map[crt.Statement]int, key *Key) {
	type cand struct {
		st    crt.Statement
		count int
	}
	cands := make([]cand, 0, len(counts))
	for st, c := range counts {
		cands = append(cands, cand{st, c})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].count != cands[b].count {
			return cands[a].count > cands[b].count
		}
		ea, _ := key.Params.Encode(cands[a].st)
		eb, _ := key.Params.Encode(cands[b].st)
		return ea < eb
	})
	if len(cands) > maxGraphVertices {
		cands = cands[:maxGraphVertices]
	}
	rec.UniqueStatements = len(cands)

	// Vote on W mod p_i (weighted by occurrence count); a clear winner —
	// strictly more than twice the runner-up — eliminates every statement
	// that contradicts it.
	primes := key.Params.Primes()
	winner := make([]int64, len(primes)) // -1 = no clear winner
	for i := range winner {
		winner[i] = -1
	}
	for pi, prime := range primes {
		tally := make(map[uint64]int)
		for _, c := range cands {
			if c.st.I == pi || c.st.J == pi {
				tally[c.st.X%prime] += c.count
			}
		}
		var first, second int
		var firstRes uint64
		for res, votes := range tally {
			if votes > first || (votes == first && res < firstRes) {
				second = first
				first, firstRes = votes, res
			} else if votes > second {
				second = votes
			}
		}
		if first > 2*second {
			winner[pi] = int64(firstRes)
		}
	}
	var filtered []cand
	for _, c := range cands {
		ok := true
		for _, pi := range []int{c.st.I, c.st.J} {
			if winner[pi] >= 0 && int64(c.st.X%primes[pi]) != winner[pi] {
				ok = false
			}
		}
		if ok {
			filtered = append(filtered, c)
		}
	}
	rec.VotedOut = len(cands) - len(filtered)
	if len(filtered) == 0 {
		return
	}

	// Graphs over the remaining statements: G connects inconsistent pairs,
	// H connects pairs that agree on a shared prime.
	n := len(filtered)
	gAdj := make([][]bool, n)
	hDegIncident := make([][]int, n) // H adjacency lists
	for i := range gAdj {
		gAdj[i] = make([]bool, n)
	}
	gEdges := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !key.Params.Consistent(filtered[i].st, filtered[j].st) {
				gAdj[i][j], gAdj[j][i] = true, true
				gEdges++
			} else if key.Params.SharePrime(filtered[i].st, filtered[j].st) {
				hDegIncident[i] = append(hDegIncident[i], j)
				hDegIncident[j] = append(hDegIncident[j], i)
			}
		}
	}

	// Greedy elimination (§3.3 step C): repeatedly presume the statement
	// with the highest H-degree true and delete its G-neighbors, until G
	// is edgeless.
	alive := make([]bool, n)
	inU := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	hDeg := func(i int) int {
		d := 0
		for _, j := range hDegIncident[i] {
			if alive[j] {
				d++
			}
		}
		return d
	}
	for gEdges > 0 {
		best, bestDeg := -1, -1
		for i := 0; i < n; i++ {
			if alive[i] && !inU[i] {
				if d := hDeg(i); d > bestDeg {
					best, bestDeg = i, d
				}
			}
		}
		if best < 0 {
			// All live vertices are presumed true but G still has edges:
			// cannot happen (picking a vertex removes its G-neighbors),
			// guarded for robustness.
			break
		}
		inU[best] = true
		for j := 0; j < n; j++ {
			if alive[j] && gAdj[best][j] {
				alive[j] = false
				// Every G edge from j to a still-live vertex (including
				// the edge to best itself) disappears with j.
				for k := 0; k < n; k++ {
					if alive[k] && gAdj[j][k] {
						gEdges--
					}
				}
			}
		}
	}

	var survivors []crt.Statement
	for i := 0; i < n; i++ {
		if alive[i] {
			survivors = append(survivors, filtered[i].st)
		}
	}
	rec.Survivors = len(survivors)
	if len(survivors) == 0 {
		return
	}
	value, modulus, err := key.Params.Reconstruct(survivors)
	if err != nil {
		// Pairwise consistency should guarantee a solution; treat failure
		// as recognition failure rather than an error.
		return
	}
	rec.Watermark = value
	rec.Modulus = modulus
	rec.FullCoverage = modulus.Cmp(key.MaxWatermark()) == 0
}

// Matches reports whether recognition fully recovered the given watermark.
func (r *Recognition) Matches(w *big.Int) bool {
	return r != nil && r.Watermark != nil && r.FullCoverage && r.Watermark.Cmp(w) == 0
}
