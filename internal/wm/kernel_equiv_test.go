package wm

import (
	"math/rand"
	"reflect"
	"testing"

	"pathmark/internal/bitstring"
	"pathmark/internal/cache"
	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// equivTraces builds the bit-strings the kernel-equivalence tests scan:
// a genuinely watermarked trace (real structure, real pieces), a
// pseudorandom string (worst case for the prefilters), a heavily
// structured string (best case), and short edge-length strings.
func equivTraces(t testing.TB, key *Key) map[string]*bitstring.Bits {
	t.Helper()
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 3, Methods: 20, BlockSize: 80})
	w := RandomWatermark(64, 77)
	marked, _, err := Embed(prog, w, key, EmbedOptions{Pieces: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := vm.Collect(marked, key.Input, 1)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(41))
	randomBits := func(n int) *bitstring.Bits {
		words := make([]uint64, (n+63)/64)
		for i := range words {
			words[i] = rng.Uint64()
		}
		b, err := bitstring.FromWords(words, n)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	structured := bitstring.New(3000)
	for i := 0; i < 3000; i++ {
		structured.Append(i%2 == 0 || i%97 < 11)
	}
	return map[string]*bitstring.Bits{
		"marked-trace": tr.DecodeBits(),
		"random-5000":  randomBits(5000),
		"random-4097":  randomBits(4097),
		"structured":   structured,
		"len-64":       randomBits(64),
		"len-65":       randomBits(65),
		"len-129":      randomBits(129),
		"len-63":       randomBits(63), // below one window: scan is empty
	}
}

// TestKernelEquivalence is the scan rebuild's core property: the batched
// kernel (packed strides, incremental filters, block decryption, cache
// Peek/Put) produces a Recognition bit-identical to the scalar reference
// kernel, for every trace shape, filter configuration (including the
// legacy popcount-only band and no filtering at all), worker count, and
// cache mode.
func TestKernelEquivalence(t *testing.T) {
	key, err := NewKey(nil, feistel.KeyFromUint64(21, 34), 64)
	if err != nil {
		t.Fatal(err)
	}
	traces := equivTraces(t, key)

	narrow := Band{Lo: 24, Hi: 40}
	customStack := FilterStack{
		Popcount:    Band{Lo: 10, Hi: 54},
		Transitions: Band{Lo: 16, Hi: 48},
		Phase:       Band{Lo: 7, Hi: 25},
	}
	filterCases := []struct {
		name      string
		filters   *FilterStack
		prefilter *PopcountBand
	}{
		{"default", nil, nil},
		{"no-filters", &NoFilters, nil},
		{"legacy-no-prefilter", nil, &NoPrefilter},
		{"legacy-band", nil, &narrow},
		{"custom-stack", &customStack, nil},
	}

	for name, b := range traces {
		for _, fc := range filterCases {
			baseOpts := RecognizeOpts{
				Workers: 1, Kernel: KernelScalar,
				Filters: fc.filters, Prefilter: fc.prefilter,
			}
			want, wantErr := RecognizeBits(b, key, baseOpts)
			if wantErr != nil {
				t.Fatalf("%s/%s: scalar reference failed: %v", name, fc.name, wantErr)
			}
			for _, kernel := range []ScanKernel{KernelScalar, KernelBatched, KernelAuto} {
				for _, workers := range []int{1, 4, 8} {
					for _, cached := range []bool{false, true} {
						opts := baseOpts
						opts.Kernel = kernel
						opts.Workers = workers
						if cached {
							opts.DecryptCache = cache.NewCache64(0)
						}
						got, err := RecognizeBits(b, key, opts)
						if err != nil {
							t.Fatalf("%s/%s kernel=%d workers=%d cached=%v: %v",
								name, fc.name, kernel, workers, cached, err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Errorf("%s/%s kernel=%d workers=%d cached=%v: Recognition diverged\n got %+v\nwant %+v",
								name, fc.name, kernel, workers, cached, got, want)
						}
					}
				}
			}
		}
	}
}

// TestKernelEquivalenceSharedCache runs both kernels against the same
// long-lived cache (the fleet topology: many scans, one memo table per
// cipher) and checks results stay identical when the table is already
// warm — the memoized decryptions must be exactly what each kernel would
// compute.
func TestKernelEquivalenceSharedCache(t *testing.T) {
	key, err := NewKey(nil, feistel.KeyFromUint64(9, 2), 64)
	if err != nil {
		t.Fatal(err)
	}
	traces := equivTraces(t, key)
	c := cache.NewCache64(0)
	for name, b := range traces {
		scalar, err := RecognizeBits(b, key, RecognizeOpts{
			Workers: 2, Kernel: KernelScalar, DecryptCache: c})
		if err != nil {
			t.Fatalf("%s scalar: %v", name, err)
		}
		batched, err := RecognizeBits(b, key, RecognizeOpts{
			Workers: 2, Kernel: KernelBatched, DecryptCache: c})
		if err != nil {
			t.Fatalf("%s batched: %v", name, err)
		}
		if !reflect.DeepEqual(scalar, batched) {
			t.Errorf("%s: warm-cache divergence\n scalar %+v\nbatched %+v", name, scalar, batched)
		}
	}
}

// TestKernelEquivalenceBounded exercises the eviction path: a cache far
// smaller than the distinct-window count must still leave results
// bit-identical across kernels and worker counts (the memo table is pure
// amortization, never semantics).
func TestKernelEquivalenceBounded(t *testing.T) {
	key, err := NewKey(nil, feistel.KeyFromUint64(5, 6), 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	words := make([]uint64, 120)
	for i := range words {
		words[i] = rng.Uint64()
	}
	b, err := bitstring.FromWords(words, len(words)*64)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RecognizeBits(b, key, RecognizeOpts{Workers: 1, Kernel: KernelScalar})
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []ScanKernel{KernelScalar, KernelBatched} {
		for _, workers := range []int{1, 4} {
			got, err := RecognizeBits(b, key, RecognizeOpts{
				Workers: workers, Kernel: kernel,
				DecryptCache: cache.NewCache64(256),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("kernel=%d workers=%d bounded cache: Recognition diverged", kernel, workers)
			}
		}
	}
}

// TestEmbeddedPiecesSurviveFilters pins the lossless half of the filter
// contract end to end: every piece actually embedded by Embed passes the
// default filter stack and the framing check, so recognition with
// defaults recovers the watermark exactly (ValidStatements > 0, full
// coverage).
func TestEmbeddedPiecesSurviveFilters(t *testing.T) {
	key, err := NewKey(nil, feistel.KeyFromUint64(21, 34), 96)
	if err != nil {
		t.Fatal(err)
	}
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 12, Methods: 24, BlockSize: 90})
	w := RandomWatermark(96, 13)
	marked, _, err := Embed(prog, w, key, EmbedOptions{Pieces: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range []ScanKernel{KernelScalar, KernelBatched} {
		rec, err := RecognizeWithOpts(marked, key, RecognizeOpts{Kernel: kernel})
		if err != nil {
			t.Fatalf("kernel=%d: %v", kernel, err)
		}
		if !rec.Matches(w) {
			t.Fatalf("kernel=%d: watermark not recovered: %+v", kernel, rec)
		}
		if rec.ValidStatements == 0 || rec.Decrypted == 0 {
			t.Fatalf("kernel=%d: no statements decoded (valid=%d decrypted=%d)",
				kernel, rec.ValidStatements, rec.Decrypted)
		}
	}
}

// BenchmarkRecognizeKernels is the old-vs-new comparison at the
// RecognizeBits level: scalar kernel with the legacy popcount-only band
// (the pre-rebuild configuration) against the batched kernel with the
// default stack (the production configuration).
func BenchmarkRecognizeKernels(b *testing.B) {
	key, err := NewKey(nil, feistel.KeyFromUint64(21, 34), 128)
	if err != nil {
		b.Fatal(err)
	}
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 60, BlockSize: 150})
	w := RandomWatermark(128, 23)
	marked, _, err := Embed(prog, w, key, EmbedOptions{Pieces: 128, Seed: 11, Policy: GenLoopOnly})
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := vm.Collect(marked, key.Input, 1)
	if err != nil {
		b.Fatal(err)
	}
	bits := tr.DecodeBits()
	for _, bc := range []struct {
		name string
		opts RecognizeOpts
	}{
		{"legacy-scalar", RecognizeOpts{Workers: 1, Kernel: KernelScalar, Prefilter: &DefaultPrefilter}},
		{"batched-stack", RecognizeOpts{Workers: 1, Kernel: KernelBatched}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var windows int
			for i := 0; i < b.N; i++ {
				rec, err := RecognizeBits(bits, key, bc.opts)
				if err != nil {
					b.Fatal(err)
				}
				windows = rec.Windows
			}
			b.ReportMetric(float64(windows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mwindows/s")
		})
	}
}
