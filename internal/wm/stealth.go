package wm

import (
	"math"

	"pathmark/internal/vm"
)

// Stealth analysis (paper §2: "branches are ubiquitous in real programs,
// hopefully making path-based marks invulnerable to statistical attacks").
// An attacker without the key can still compare a suspect binary's static
// statistics against the expected profile of ordinary code; a watermark
// that visibly skews opcode or branch statistics is findable. StealthReport
// quantifies the skew an embedding introduces.

// StealthReport compares static statistics of an original and a
// watermarked program.
type StealthReport struct {
	// OpcodeJSD is the Jensen-Shannon divergence (base-2 logarithm, in
	// [0,1]) between the two programs' opcode distributions; 0 means
	// statistically indistinguishable opcode mixes.
	OpcodeJSD float64
	// BranchDensityBefore/After are static conditional branches per
	// instruction.
	BranchDensityBefore float64
	BranchDensityAfter  float64
	// SizeRatio is after/before instruction count.
	SizeRatio float64
}

// AnalyzeStealth computes the report for a program pair.
func AnalyzeStealth(original, marked *vm.Program) *StealthReport {
	p := opcodeHistogram(original)
	q := opcodeHistogram(marked)
	return &StealthReport{
		OpcodeJSD:           jensenShannon(p, q),
		BranchDensityBefore: branchDensity(original),
		BranchDensityAfter:  branchDensity(marked),
		SizeRatio:           float64(marked.CodeSize()) / float64(original.CodeSize()),
	}
}

func opcodeHistogram(p *vm.Program) map[vm.Op]float64 {
	counts := make(map[vm.Op]float64)
	total := 0.0
	for _, m := range p.Methods {
		for _, in := range m.Code {
			counts[in.Op]++
			total++
		}
	}
	for op := range counts {
		counts[op] /= total
	}
	return counts
}

func branchDensity(p *vm.Program) float64 {
	if p.CodeSize() == 0 {
		return 0
	}
	return float64(p.CountCondBranches()) / float64(p.CodeSize())
}

// jensenShannon computes the JS divergence between two distributions with
// base-2 logarithms, giving a value in [0, 1].
func jensenShannon(p, q map[vm.Op]float64) float64 {
	keys := make(map[vm.Op]bool)
	for k := range p {
		keys[k] = true
	}
	for k := range q {
		keys[k] = true
	}
	kl := func(a, b map[vm.Op]float64) float64 {
		sum := 0.0
		for k := range keys {
			pa := a[k]
			if pa == 0 {
				continue
			}
			mb := (a[k] + b[k]) / 2
			sum += pa * math.Log2(pa/mb)
		}
		return sum
	}
	return (kl(p, q) + kl(q, p)) / 2
}
