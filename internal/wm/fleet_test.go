package wm

import (
	"fmt"
	"math/big"
	mathbits "math/bits"
	"testing"

	"pathmark/internal/bitstring"
	"pathmark/internal/cache"
	"pathmark/internal/feistel"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// fleetWatermarks builds n distinct fingerprints for the key.
func fleetWatermarks(n, bits int) []*big.Int {
	ws := make([]*big.Int, n)
	for i := range ws {
		ws[i] = RandomWatermark(bits, uint64(1000+i))
	}
	return ws
}

// TestEmbedBatchMatchesEmbed is the batch-equivalence property: copy i of
// EmbedBatch is byte-identical (canonical disassembly) to a standalone
// Embed with seed base+i, at serial and parallel worker counts.
func TestEmbedBatchMatchesEmbed(t *testing.T) {
	p := workloads.RandomProgram(workloads.RandProgOptions{Seed: 7100})
	key := testKey(t, nil, 64)
	ws := fleetWatermarks(6, 64)
	const baseSeed = 33

	want := make([]string, len(ws))
	for i, w := range ws {
		prog, _, err := Embed(p, w, key, EmbedOptions{Seed: baseSeed + int64(i)})
		if err != nil {
			t.Fatalf("embed %d: %v", i, err)
		}
		want[i] = vm.Dump(prog)
	}
	for _, workers := range []int{1, 4, 0} {
		copies, err := EmbedBatch(p, ws, key, BatchOptions{
			EmbedOptions: EmbedOptions{Seed: baseSeed}, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: EmbedBatch: %v", workers, err)
		}
		if len(copies) != len(ws) {
			t.Fatalf("workers=%d: got %d copies, want %d", workers, len(copies), len(ws))
		}
		for i, c := range copies {
			if c.Index != i || c.Watermark.Cmp(ws[i]) != 0 {
				t.Errorf("workers=%d: copy %d mislabeled", workers, i)
			}
			if got := vm.Dump(c.Program); got != want[i] {
				t.Errorf("workers=%d: copy %d differs from standalone Embed(seed=%d)",
					workers, i, baseSeed+int64(i))
			}
			if rec, err := Recognize(c.Program, key); err != nil || !rec.Matches(ws[i]) {
				t.Errorf("workers=%d: copy %d does not recognize back (err=%v)", workers, i, err)
			}
		}
	}
}

// TestEmbedBatchAmortizesAnalysis proves the batch runs the tracing phase
// and site analysis exactly once, structurally rather than by wall-clock:
// the registry records one embed.trace and one embed.sites span for the
// whole batch.
func TestEmbedBatchAmortizesAnalysis(t *testing.T) {
	p := workloads.RandomProgram(workloads.RandProgOptions{Seed: 7200})
	key := testKey(t, nil, 64)
	reg := obs.NewRegistry()
	if _, err := EmbedBatch(p, fleetWatermarks(8, 64), key, BatchOptions{
		EmbedOptions: EmbedOptions{Seed: 5, Obs: reg}, Workers: 4,
	}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range reg.Snapshot().Spans {
		counts[s.Name]++
	}
	if counts["embed.trace"] != 1 || counts["embed.sites"] != 1 {
		t.Errorf("batch traced/analyzed more than once: %v", counts)
	}
	if counts["embed.batch"] != 1 {
		t.Errorf("missing embed.batch span: %v", counts)
	}
}

func TestEmbedBatchValidation(t *testing.T) {
	p := workloads.RandomProgram(workloads.RandProgOptions{Seed: 7300})
	key := testKey(t, nil, 64)
	if _, err := EmbedBatch(p, nil, key, BatchOptions{}); err == nil {
		t.Error("empty batch accepted")
	}
	tooBig := new(big.Int).Lsh(big.NewInt(1), 4096)
	ws := []*big.Int{RandomWatermark(64, 1), tooBig}
	if _, err := EmbedBatch(p, ws, key, BatchOptions{}); err == nil {
		t.Error("out-of-range watermark accepted")
	}
}

// corpusFixture builds a small fleet scenario: three suspects (two
// fingerprinted copies and the unmarked host) and three candidate keys —
// the fleet's real key, a decoy with a different cipher, and a decoy with
// a different secret input (sharing the real cipher, so its decrypt table
// is shared too).
func corpusFixture(t *testing.T) (suspects []*vm.Program, keys []*Key, ws []*big.Int) {
	t.Helper()
	host := workloads.RandomProgram(workloads.RandProgOptions{Seed: 7400})
	real := testKey(t, nil, 64)
	ws = fleetWatermarks(2, 64)
	copies, err := EmbedBatch(host, ws, real, BatchOptions{
		EmbedOptions: EmbedOptions{Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	decoyCipher, err := NewKey(nil, feistel.KeyFromUint64(1, 2), 64)
	if err != nil {
		t.Fatal(err)
	}
	decoyInput, err := NewKey([]int64{5, 6}, testCipher, 64)
	if err != nil {
		t.Fatal(err)
	}
	suspects = []*vm.Program{copies[0].Program, copies[1].Program, host}
	keys = []*Key{real, decoyCipher, decoyInput}
	return suspects, keys, ws
}

// TestRecognizeCorpusMatchesPerPair is the corpus-equivalence half of the
// acceptance criteria: every cell of the corpus matrix is bit-identical to
// a standalone RecognizeWithOpts on that pair (run without any cache), at
// serial and parallel corpus worker counts.
func TestRecognizeCorpusMatchesPerPair(t *testing.T) {
	suspects, keys, ws := corpusFixture(t)

	want := make([][]*Recognition, len(suspects))
	for s, p := range suspects {
		want[s] = make([]*Recognition, len(keys))
		for k, key := range keys {
			rec, err := RecognizeWithOpts(p, key, RecognizeOpts{Workers: 1})
			if err != nil {
				t.Fatalf("pair (%d,%d): %v", s, k, err)
			}
			want[s][k] = rec
		}
	}
	for _, workers := range []int{1, 4, 0} {
		res, err := RecognizeCorpus(suspects, keys, CorpusOpts{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for s := range suspects {
			for k := range keys {
				rec := res.Recognitions[s][k]
				if rec == nil {
					t.Fatalf("workers=%d: pair (%d,%d) missing: %v", workers, s, k, res.Errors[s][k])
				}
				if err := sameRecognition(want[s][k], rec); err != nil {
					t.Errorf("workers=%d: pair (%d,%d) diverges: %v", workers, s, k, err)
				}
				if rec.PrefilterRejected != want[s][k].PrefilterRejected {
					t.Errorf("workers=%d: pair (%d,%d) PrefilterRejected %d vs %d",
						workers, s, k, rec.PrefilterRejected, want[s][k].PrefilterRejected)
				}
			}
		}
		// Fleet identification: each fingerprinted copy resolves to its own
		// watermark under the real key and to nothing under the decoys; the
		// unmarked host matches nobody.
		expect := []*big.Int{ws[0], nil, nil}
		for s, wantW := range expect {
			rec := res.Recognitions[s][0]
			if s == 1 {
				wantW = ws[1]
			}
			if wantW != nil && !rec.Matches(wantW) {
				t.Errorf("workers=%d: suspect %d not identified by the real key", workers, s)
			}
			if s == 2 && (rec.Matches(ws[0]) || rec.Matches(ws[1])) {
				t.Errorf("workers=%d: unmarked host falsely identified", workers)
			}
			// The wrong-cipher decoy never matches. The wrong-input key
			// DOES match here: the host ignores its input, so the trace —
			// and with the shared cipher, everything downstream — is
			// identical. Input secrecy only bites on input-sensitive hosts.
			if res.Recognitions[s][1].Matches(ws[0]) || res.Recognitions[s][1].Matches(ws[1]) {
				t.Errorf("workers=%d: suspect %d matched the wrong-cipher decoy", workers, s)
			}
			if s < 2 && !res.Recognitions[s][2].Matches(ws[s]) {
				t.Errorf("workers=%d: input-insensitive host should match under the shared cipher", workers)
			}
		}
		// Trace amortization: 3 suspects × 2 distinct secret inputs = 6
		// traces for 9 pairs.
		if res.TraceStats.Misses != 6 {
			t.Errorf("workers=%d: ran %d traces, want 6", workers, res.TraceStats.Misses)
		}
		if res.TraceStats.Hits != 3 {
			t.Errorf("workers=%d: trace hits %d, want 3", workers, res.TraceStats.Hits)
		}
	}
}

// distinctInBand adds every filter-surviving window of b (raw scan plus
// both stride-2 phases — exactly the window sources scanBits visits) to
// set.
func distinctInBand(b *bitstring.Bits, f FilterStack, set map[uint64]bool) {
	visit := func(_ int, w uint64) bool {
		pc, tr, ev := windowStats(w)
		if !f.Popcount.rejects(pc) && !f.Transitions.rejects(tr) && !f.Phase.rejects(ev) {
			set[w] = true
		}
		return true
	}
	b.Windows64Range(0, b.NumWindows64(), visit)
	if b.Len() >= 2 {
		b.StrideWindows64Range(2, 0, 0, b.StrideNumWindows64(2, 0), visit)
		b.StrideWindows64Range(2, 1, 0, b.StrideNumWindows64(2, 1), visit)
	}
}

// TestCorpusDecryptAtMostOnce is the at-most-once half of the acceptance
// criteria: across a whole corpus, each candidate cipher decrypts each
// distinct (band-surviving) window exactly once — the per-cipher cache's
// miss count equals the independently-enumerated distinct-window count,
// with zero bypasses. A second corpus run over warm caches runs zero
// traces and zero decryptions.
func TestCorpusDecryptAtMostOnce(t *testing.T) {
	suspects, keys, _ := corpusFixture(t)
	fc := NewFleetCaches(0, 0)
	res, err := RecognizeCorpus(suspects, keys, CorpusOpts{Workers: 4, Caches: fc})
	if err != nil {
		t.Fatal(err)
	}

	// Independently enumerate the distinct in-band windows each cipher
	// key scanned: all (suspect, input) bit-strings of the keys sharing
	// that cipher. keys[0] and keys[2] share testCipher, so their decrypt
	// table is one and covers both secret inputs.
	bitsFor := func(p *vm.Program, input []int64) *bitstring.Bits {
		tr, _, err := vm.Collect(p, input, 1)
		if err != nil {
			t.Fatal(err)
		}
		return tr.DecodeBits()
	}
	wantDistinct := map[feistel.Key]map[uint64]bool{}
	for _, key := range keys {
		set, ok := wantDistinct[key.Cipher]
		if !ok {
			set = map[uint64]bool{}
			wantDistinct[key.Cipher] = set
		}
		for _, p := range suspects {
			distinctInBand(bitsFor(p, key.Input), DefaultFilters, set)
		}
	}
	var wantMisses int64
	for cipherKey, set := range wantDistinct {
		st := fc.DecryptCacheFor(cipherKey).Stats()
		if st.Misses != int64(len(set)) {
			t.Errorf("cipher %v: %d decryptions for %d distinct windows", cipherKey, st.Misses, len(set))
		}
		if st.Bypassed != 0 {
			t.Errorf("cipher %v: %d bypassed lookups in an unbounded cache", cipherKey, st.Bypassed)
		}
		wantMisses += int64(len(set))
	}
	if res.DecryptStats.Misses != wantMisses {
		t.Errorf("corpus decrypted %d distinct windows, want %d", res.DecryptStats.Misses, wantMisses)
	}

	// Warm rerun: everything is answered from the caches.
	res2, err := RecognizeCorpus(suspects, keys, CorpusOpts{Workers: 4, Caches: fc})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TraceStats.Misses != 0 || res2.DecryptStats.Misses != 0 {
		t.Errorf("warm corpus still computed: traces=%d decrypts=%d",
			res2.TraceStats.Misses, res2.DecryptStats.Misses)
	}
	for s := range suspects {
		for k := range keys {
			if err := sameRecognition(res.Recognitions[s][k], res2.Recognitions[s][k]); err != nil {
				t.Errorf("warm pair (%d,%d) diverges: %v", s, k, err)
			}
		}
	}
}

// TestRecognizeCorpusCappedCaches is the bounded-memory regression test:
// FleetCaches squeezed far below the working set (1 trace entry, 256
// decrypt windows) must churn — evictions observable via cache.Stats —
// while every cell of the CorpusResult stays bit-identical to the
// unbounded run. Eviction may only cost recomputation, never correctness.
func TestRecognizeCorpusCappedCaches(t *testing.T) {
	suspects, keys, _ := corpusFixture(t)
	base, err := RecognizeCorpus(suspects, keys, CorpusOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		fc := NewFleetCaches(1, 256)
		res, err := RecognizeCorpus(suspects, keys, CorpusOpts{Workers: workers, Caches: fc})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for s := range suspects {
			for k := range keys {
				if err := sameRecognition(base.Recognitions[s][k], res.Recognitions[s][k]); err != nil {
					t.Errorf("workers=%d: capped pair (%d,%d) diverges: %v", workers, s, k, err)
				}
			}
		}
		// The fixture has 6 distinct (suspect, input) traces churning
		// through a single-entry cache: evictions must show up, and the
		// resident count must respect the bound.
		if ts := fc.TraceStats(); ts.Evictions == 0 {
			t.Errorf("workers=%d: single-entry trace cache recorded no evictions: %+v", workers, ts)
		}
		if n := fc.traces.Len(); n > 1 {
			t.Errorf("workers=%d: capped trace cache holds %d entries", workers, n)
		}
		if ds := fc.DecryptStats(); ds.Evictions == 0 {
			t.Errorf("workers=%d: 256-window decrypt caches recorded no evictions: %+v", workers, ds)
		}
	}
}

// TestRecognizeCacheEquivalence is the cache-equivalence property of the
// satellite list: for random programs and keys, RecognizeWithOpts with the
// decrypt cache enabled and disabled yields identical Recognition results
// (all statement counts included) at 1, 4, and 8 workers, and the cache's
// traffic accounts for every window the prefilter let through.
func TestRecognizeCacheEquivalence(t *testing.T) {
	key := testKey(t, nil, 64)
	for seed := int64(0); seed < 3; seed++ {
		p := workloads.RandomProgram(workloads.RandProgOptions{Seed: seed + 7500})
		w := RandomWatermark(64, uint64(seed)+77)
		marked, _, err := Embed(p, w, key, EmbedOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: embed: %v", seed, err)
		}
		// The unmarked host exercises the no-valid-statements paths too.
		for name, prog := range map[string]*vm.Program{"marked": marked, "unmarked": p} {
			base, err := RecognizeWithOpts(prog, key, RecognizeOpts{Workers: 1})
			if err != nil {
				t.Fatalf("seed %d %s: baseline: %v", seed, name, err)
			}
			for _, workers := range []int{1, 4, 8} {
				for _, cached := range []bool{false, true} {
					var dc *cache.Cache64
					if cached {
						dc = cache.NewCache64(0)
					}
					rec, err := RecognizeWithOpts(prog, key, RecognizeOpts{Workers: workers, DecryptCache: dc})
					if err != nil {
						t.Fatalf("seed %d %s workers=%d cached=%v: %v", seed, name, workers, cached, err)
					}
					if err := sameRecognition(base, rec); err != nil {
						t.Errorf("seed %d %s workers=%d cached=%v diverges: %v", seed, name, workers, cached, err)
					}
					if rec.PrefilterRejected != base.PrefilterRejected {
						t.Errorf("seed %d %s workers=%d cached=%v: PrefilterRejected %d vs %d",
							seed, name, workers, cached, rec.PrefilterRejected, base.PrefilterRejected)
					}
					if cached {
						if got := dc.Stats().Lookups(); got != int64(rec.Windows-rec.PrefilterRejected) {
							t.Errorf("seed %d %s workers=%d: %d cache lookups for %d surviving windows",
								seed, name, workers, got, rec.Windows-rec.PrefilterRejected)
						}
					}
				}
			}
		}
	}
}

// TestPrefilterBandEdges is the regression test for the popcount
// prefilter: pieces whose ciphertexts sit exactly at the band edges are
// kept (the band is inclusive), tightening the band past an edge rejects
// them, and the rejection is visible in PrefilterRejected instead of
// silent. A band excluding every piece defeats recognition entirely.
func TestPrefilterBandEdges(t *testing.T) {
	p := workloads.RandomProgram(workloads.RandProgOptions{Seed: 7600})
	key := testKey(t, nil, 64)
	w := RandomWatermark(64, 55)
	marked, report, err := Embed(p, w, key, EmbedOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	minPc, maxPc := 64, 0
	for _, piece := range report.Pieces {
		pc := mathbits.OnesCount64(piece.Encrypted)
		if pc < minPc {
			minPc = pc
		}
		if pc > maxPc {
			maxPc = pc
		}
	}
	if minPc < DefaultPrefilter.Lo || maxPc > DefaultPrefilter.Hi {
		t.Fatalf("fixture pieces (popcounts %d..%d) escape the default band", minPc, maxPc)
	}

	recognize := func(band PopcountBand) *Recognition {
		t.Helper()
		rec, err := RecognizeWithOpts(marked, key, RecognizeOpts{Workers: 1, Prefilter: &band})
		if err != nil {
			t.Fatalf("band %+v: %v", band, err)
		}
		return rec
	}

	// Exact band: both edge pieces survive (edges are inclusive).
	exact := recognize(PopcountBand{Lo: minPc, Hi: maxPc})
	if !exact.Matches(w) {
		t.Errorf("band [%d,%d] hugging the pieces lost the watermark", minPc, maxPc)
	}
	// No filter: nothing rejected, still matches.
	open := recognize(NoPrefilter)
	if !open.Matches(w) || open.PrefilterRejected != 0 {
		t.Errorf("NoPrefilter: matches=%v rejected=%d", open.Matches(w), open.PrefilterRejected)
	}
	// Tightening past either edge rejects strictly more windows — the
	// edge pieces' occurrences among them — and the rejections are
	// counted, not silent.
	if minPc > 0 {
		tight := recognize(PopcountBand{Lo: minPc + 1, Hi: maxPc})
		if tight.PrefilterRejected <= exact.PrefilterRejected {
			t.Errorf("raising Lo past the lightest piece rejected nothing extra (%d vs %d)",
				tight.PrefilterRejected, exact.PrefilterRejected)
		}
	}
	if maxPc < 64 && maxPc > minPc {
		tight := recognize(PopcountBand{Lo: minPc, Hi: maxPc - 1})
		if tight.PrefilterRejected <= exact.PrefilterRejected {
			t.Errorf("lowering Hi past the heaviest piece rejected nothing extra (%d vs %d)",
				tight.PrefilterRejected, exact.PrefilterRejected)
		}
	}
	// A band excluding every piece defeats recognition and accounts for
	// the loss in the counter.
	none := recognize(PopcountBand{Lo: maxPc + 1, Hi: 64})
	if none.Matches(w) {
		t.Error("band excluding every piece still matched")
	}
	if none.PrefilterRejected == 0 {
		t.Error("band excluding every piece reported zero rejections")
	}

	// The counter reaches the obs registry under scan.prefilter_rejected.
	reg := obs.NewRegistry()
	band := PopcountBand{Lo: maxPc + 1, Hi: 64}
	if _, err := RecognizeWithOpts(marked, key, RecognizeOpts{Workers: 1, Prefilter: &band, Obs: reg}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "scan.prefilter_rejected" && c.Value == int64(none.PrefilterRejected) {
			found = true
		}
	}
	if !found {
		t.Errorf("scan.prefilter_rejected counter missing or wrong (want %d)", none.PrefilterRejected)
	}
}

// BenchmarkEmbedBatch quantifies the batch amortization the acceptance
// criteria demand: embedding 16 fingerprints in one batch versus 16
// standalone Embed calls (per-copy time reported for both). Two piece
// budgets are measured: the minimum prime-cover (r-1 pieces — the lean
// fingerprinting config, where the shared trace/analysis dominates and
// the batch must come in well under 4× a single Embed) and the default
// full pair redundancy (where per-copy codegen is the legitimate bulk of
// the work and amortization buys proportionally less).
func BenchmarkEmbedBatch(b *testing.B) {
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 60, BlockSize: 150})
	key, err := NewKey(nil, testCipher, 128)
	if err != nil {
		b.Fatal(err)
	}
	ws := fleetWatermarks(16, 128)
	minPieces := len(key.Params.Primes()) - 1
	for _, cfg := range []struct {
		name   string
		pieces int
	}{
		{fmt.Sprintf("pieces=%d", minPieces), minPieces},
		{"pieces=default", 0},
	} {
		opts := EmbedOptions{Seed: 11, Policy: GenLoopOnly, Pieces: cfg.pieces}
		b.Run(cfg.name+"/single-embed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Embed(prog, ws[0], key, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/batch16/workers=%d", cfg.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := EmbedBatch(prog, ws, key, BatchOptions{
						EmbedOptions: opts, Workers: workers,
					}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*len(ws))*1e3, "ms/copy")
			})
		}
	}
}

// BenchmarkRecognizeCorpus compares cold, warm, and cache-free corpus
// recognition on a small fleet.
func BenchmarkRecognizeCorpus(b *testing.B) {
	host := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 40, BlockSize: 120})
	key, err := NewKey(nil, testCipher, 128)
	if err != nil {
		b.Fatal(err)
	}
	ws := fleetWatermarks(4, 128)
	copies, err := EmbedBatch(host, ws, key, BatchOptions{
		EmbedOptions: EmbedOptions{Seed: 11, Policy: GenLoopOnly},
	})
	if err != nil {
		b.Fatal(err)
	}
	suspects := make([]*vm.Program, len(copies))
	for i, c := range copies {
		suspects[i] = c.Program
	}
	decoy, err := NewKey(nil, feistel.KeyFromUint64(3, 4), 128)
	if err != nil {
		b.Fatal(err)
	}
	keys := []*Key{key, decoy}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RecognizeCorpus(suspects, keys, CorpusOpts{Workers: 4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		fc := NewFleetCaches(0, 0)
		if _, err := RecognizeCorpus(suspects, keys, CorpusOpts{Workers: 4, Caches: fc}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RecognizeCorpus(suspects, keys, CorpusOpts{Workers: 4, Caches: fc}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
