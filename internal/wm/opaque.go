package wm

import (
	"math/rand"

	"pathmark/internal/vm"
)

// Opaque predicates (paper §3.2.1, citing Collberg-Thomborson-Low). An
// opaquely false predicate guards the never-executed live-variable update
// appended after each piece generator, defeating naive dead-code
// elimination without affecting semantics.
//
// Each template synthesizes an instruction sequence that *pushes a value
// that is always zero* for every possible int64 input, after which the
// caller branches with ifeq (always taken) around the guarded code. All
// templates are overflow-safe: they rely only on properties preserved by
// two's-complement wraparound (divisibility by powers of two).

// opaqueZero is one "always pushes 0" template. src yields instructions
// pushing the input value x.
type opaqueZero struct {
	name string
	gen  func(src []vm.Instr) []vm.Instr
}

var opaqueZeroTemplates = []opaqueZero{
	{
		// x*(x+1) is even: (x*(x+1)) & 1 == 0. The paper's example
		// predicate x(x-1) ≡ 0 (mod 2) in bitwise form.
		name: "consecutive-product-even",
		gen: func(src []vm.Instr) []vm.Instr {
			out := append([]vm.Instr{}, src...)
			out = append(out, vm.Instr{Op: vm.OpDup},
				vm.Instr{Op: vm.OpConst, A: 1}, vm.Instr{Op: vm.OpAdd},
				vm.Instr{Op: vm.OpMul},
				vm.Instr{Op: vm.OpConst, A: 1}, vm.Instr{Op: vm.OpAnd})
			return out
		},
	},
	{
		// x² mod 4 ∈ {0,1}: ((x*x) & 3) >> 1 == 0.
		name: "square-mod-four",
		gen: func(src []vm.Instr) []vm.Instr {
			out := append([]vm.Instr{}, src...)
			out = append(out, vm.Instr{Op: vm.OpDup}, vm.Instr{Op: vm.OpMul},
				vm.Instr{Op: vm.OpConst, A: 3}, vm.Instr{Op: vm.OpAnd},
				vm.Instr{Op: vm.OpConst, A: 1}, vm.Instr{Op: vm.OpShr})
			return out
		},
	},
	{
		// One of x, x+1 has a zero low bit: (x & 1) & ((x+1) & 1) == 0.
		name: "parity-pair",
		gen: func(src []vm.Instr) []vm.Instr {
			out := append([]vm.Instr{}, src...)
			out = append(out, vm.Instr{Op: vm.OpDup},
				vm.Instr{Op: vm.OpConst, A: 1}, vm.Instr{Op: vm.OpAnd},
				vm.Instr{Op: vm.OpSwap},
				vm.Instr{Op: vm.OpConst, A: 1}, vm.Instr{Op: vm.OpAdd},
				vm.Instr{Op: vm.OpConst, A: 1}, vm.Instr{Op: vm.OpAnd},
				vm.Instr{Op: vm.OpAnd})
			return out
		},
	},
	{
		// x²+x ≡ 0 (mod 2), via shifted mask: ((x*x + x) & 1) == 0.
		name: "square-plus-x-even",
		gen: func(src []vm.Instr) []vm.Instr {
			out := append([]vm.Instr{}, src...)
			out = append(out, vm.Instr{Op: vm.OpDup}, vm.Instr{Op: vm.OpDup},
				vm.Instr{Op: vm.OpMul}, vm.Instr{Op: vm.OpAdd},
				vm.Instr{Op: vm.OpConst, A: 1}, vm.Instr{Op: vm.OpAnd})
			return out
		},
	},
	{
		// With t = x*(x+1) (always even, t = 2m), t*(t+2) = 4m(m+1) is
		// divisible by 8, so (t*(t+2) & 4) >> 2 == 0 — and divisibility by
		// powers of two survives two's-complement wraparound.
		name: "even-product-chain",
		gen: func(src []vm.Instr) []vm.Instr {
			out := append([]vm.Instr{}, src...)
			out = append(out,
				vm.Instr{Op: vm.OpDup}, vm.Instr{Op: vm.OpConst, A: 1}, vm.Instr{Op: vm.OpAdd},
				vm.Instr{Op: vm.OpMul},
				vm.Instr{Op: vm.OpDup}, vm.Instr{Op: vm.OpConst, A: 2}, vm.Instr{Op: vm.OpAdd},
				vm.Instr{Op: vm.OpMul},
				vm.Instr{Op: vm.OpConst, A: 4}, vm.Instr{Op: vm.OpAnd},
				vm.Instr{Op: vm.OpConst, A: 2}, vm.Instr{Op: vm.OpShr})
			return out
		},
	},
}

// OpaqueFalseGuard emits instructions that evaluate an opaquely false
// predicate on the value produced by src and, when (never) true, execute
// the guarded instructions. Layout, with `at` the method-relative index of
// the first emitted instruction:
//
//	<zero-producing predicate over src>
//	ifeq END     ; always taken
//	<guarded>    ; never executed, defeats naive liveness-based removal
//	END:
//
// The ifeq is a conditional branch and therefore emits trace bits, but
// always in the same direction, contributing constant 0s after the piece.
func OpaqueFalseGuard(rng *rand.Rand, at int, src, guarded []vm.Instr) []vm.Instr {
	tmpl := opaqueZeroTemplates[rng.Intn(len(opaqueZeroTemplates))]
	pred := tmpl.gen(src)
	out := append([]vm.Instr{}, pred...)
	end := at + len(pred) + 1 + len(guarded)
	out = append(out, vm.Instr{Op: vm.OpIfEq, Target: end})
	out = append(out, guarded...)
	return out
}

// NumOpaqueTemplates reports how many distinct opaquely-false templates the
// library rotates through (used by stealth-oriented tests).
func NumOpaqueTemplates() int { return len(opaqueZeroTemplates) }

// opaqueZeroValue mirrors each template in Go for the property tests: the
// value the emitted code would push for input x. Kept in lockstep with
// opaqueZeroTemplates by index.
func opaqueZeroValue(template int, x int64) int64 {
	switch template {
	case 0:
		return (x * (x + 1)) & 1
	case 1:
		return ((x * x) & 3) >> 1
	case 2:
		return (x & 1) & ((x + 1) & 1)
	case 3:
		return (x*x + x) & 1
	case 4:
		t := x * (x + 1)
		return (t * (t + 2) & 4) >> 2
	default:
		panic("wm: unknown opaque template")
	}
}
