package wm

import (
	mathbits "math/bits"

	"pathmark/internal/bitstring"
	"pathmark/internal/feistel"
)

// The fleet benchmark's old/new scan legs. The repo's speedup claims are
// measured against the scan kernel as it shipped before the batched
// rework (PR 5): that kernel is gone from the production path, so a
// frozen replica lives here, used only as the benchmark baseline. The
// new leg is the production scan stage, callable without the trace and
// vote stages so the comparison isolates kernel throughput.

// ScanStats summarizes one scan-stage run for benchmarking and
// reporting: window positions visited, windows submitted to the
// decrypt layer, and windows decoding to an in-range statement.
type ScanStats struct {
	Windows   int
	Decrypted int
	Valid     int
	Rejected  LayerRejects
}

// ScanBaselinePR5 replays the pre-batching scan kernel exactly as it
// shipped: closure-driven window iteration over the raw bit-string and
// its two stride-2 phases, a fresh popcount per window against the
// historic [8, 56] band, one bound-method cipher call per surviving
// window, and the binary-search statement decode on every decrypted
// window — framing and the transition/phase filters did not exist yet,
// so every decryption paid the full codec. Serial, uncached, matching
// the original's single-worker path.
//
// The replica is the benchmark's control group and must stay frozen:
// improving it would silently deflate every recorded speedup, so it
// shares no code with the production kernels.
func ScanBaselinePR5(b *bitstring.Bits, key *Key) ScanStats {
	cipher := feistel.New(key.Cipher)
	decrypt := cipher.Decrypt
	params := key.Params
	band := DefaultPrefilter
	var st ScanStats
	visit := func(_ int, w uint64) bool {
		st.Windows++
		if band.rejects(mathbits.OnesCount64(w)) {
			st.Rejected.Popcount++
			return true
		}
		st.Decrypted++
		dec := decrypt(w)
		if _, ok := params.Decode(dec); ok {
			st.Valid++
		}
		return true
	}
	b.Windows64Range(0, b.NumWindows64(), visit)
	if b.Len() >= 2 {
		for phase := 0; phase < 2; phase++ {
			b.StrideWindows64Range(2, phase, 0, b.StrideNumWindows64(2, phase), visit)
		}
	}
	return st
}

// ScanOnly runs just the scan stage of RecognizeBits — the window
// filter/decrypt/decode pipeline over the bit-string and its stride-2
// phases — without the vote and CRT stages, so benchmarks can measure
// kernel throughput in isolation. Kernel, worker count, filters, and
// cache come from opts exactly as in RecognizeBits.
func ScanOnly(b *bitstring.Bits, key *Key, opts RecognizeOpts) (ScanStats, error) {
	if err := b.Validate(); err != nil {
		return ScanStats{}, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	acc, _, err := scanBits(opts.Ctx, b, key, workers, scanConfig{
		filters:      ResolveFilters(opts.Filters, opts.Prefilter),
		kernel:       opts.Kernel.resolve(),
		decryptCache: opts.DecryptCache,
	})
	if err != nil {
		return ScanStats{}, err
	}
	return ScanStats{
		Windows:   acc.windows,
		Decrypted: acc.decrypted,
		Valid:     acc.valid,
		Rejected:  acc.rej,
	}, nil
}
