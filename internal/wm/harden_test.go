package wm

import (
	"math/big"
	"math/rand"
	"testing"

	"pathmark/internal/attacks"
	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// hardenedFleet embeds a fleet over the small jesslike host used by the
// tournament demo grid, baseline or coalition-hardened.
func hardenedFleet(t *testing.T, n int, harden bool) ([]Fingerprint, []*big.Int, *Key) {
	t.Helper()
	p := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 12, BlockSize: 40})
	key := testKey(t, nil, 24)
	ws := make([]*big.Int, n)
	for i := range ws {
		seed := uint64(42)
		ws[i] = RandomWatermark(24, seed*0x9e3779b97f4a7c15+uint64(i))
	}
	copies, err := EmbedBatch(p, ws, key, BatchOptions{
		EmbedOptions: EmbedOptions{Seed: 42, Pieces: 2},
		Workers:      2,
		Harden:       harden,
	})
	if err != nil {
		t.Fatalf("EmbedBatch(harden=%v): %v", harden, err)
	}
	return copies, ws, key
}

// TestHardenedBatchMatchesEmbed: under Harden every copy must equal a
// standalone Embed with CoalitionSafe at the SAME seed — no per-copy
// placement shift, by design.
func TestHardenedBatchMatchesEmbed(t *testing.T) {
	copies, ws, key := hardenedFleet(t, 4, true)
	p := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 12, BlockSize: 40})
	for i, c := range copies {
		want, _, err := Embed(p, ws[i], key, EmbedOptions{
			Seed: 42, Pieces: 2, CoalitionSafe: true,
		})
		if err != nil {
			t.Fatalf("embed %d: %v", i, err)
		}
		if vm.Dump(c.Program) != vm.Dump(want) {
			t.Errorf("hardened copy %d differs from standalone CoalitionSafe embed at shared seed", i)
		}
	}
}

// TestHardenedCopiesDifferOnlyInConstants is the coalition-resistance
// invariant: any two hardened copies are instruction-identical except for
// OpConst immediates (the encrypted piece payloads). A differ therefore
// localizes exactly the sites whose removal breaks stack discipline.
func TestHardenedCopiesDifferOnlyInConstants(t *testing.T) {
	copies, _, _ := hardenedFleet(t, 4, true)
	diffs := 0
	for i := 0; i < len(copies); i++ {
		for j := i + 1; j < len(copies); j++ {
			a, b := copies[i].Program, copies[j].Program
			if len(a.Methods) != len(b.Methods) {
				t.Fatalf("copies %d,%d: method counts differ", i, j)
			}
			for mi := range a.Methods {
				ca, cb := a.Methods[mi].Code, b.Methods[mi].Code
				if len(ca) != len(cb) {
					t.Fatalf("copies %d,%d method %d: lengths differ (%d vs %d)",
						i, j, mi, len(ca), len(cb))
				}
				for k := range ca {
					if ca[k] == cb[k] {
						continue
					}
					diffs++
					if ca[k].Op != vm.OpConst || cb[k].Op != vm.OpConst ||
						ca[k].Target != cb[k].Target {
						t.Errorf("copies %d,%d method %d pc %d: non-constant divergence %v vs %v",
							i, j, mi, k, ca[k], cb[k])
					}
				}
			}
		}
	}
	if diffs == 0 {
		t.Fatal("hardened copies are identical — fingerprints missing")
	}
}

// TestHardenedFleetRecognizes: hardening must not cost identification —
// each copy still recognizes exactly its own watermark.
func TestHardenedFleetRecognizes(t *testing.T) {
	copies, ws, key := hardenedFleet(t, 4, true)
	for i, c := range copies {
		rec, err := Recognize(c.Program, key)
		if err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
		for j, w := range ws {
			if got := rec.Matches(w); got != (i == j) {
				t.Errorf("copy %d vs watermark %d: Matches=%v", i, j, got)
			}
		}
	}
}

// TestCoalitionSafeRejectsConditionOnly: the two options are contradictory
// and must fail loudly, not silently pick one.
func TestCoalitionSafeRejectsConditionOnly(t *testing.T) {
	p := workloads.MiniCalc()
	key := testKey(t, nil, 24)
	_, _, err := Embed(p, RandomWatermark(24, 9), key, EmbedOptions{
		Seed: 1, CoalitionSafe: true, Policy: GenConditionOnly,
	})
	if err == nil {
		t.Fatal("CoalitionSafe+GenConditionOnly accepted; want error")
	}
}

// TestCollusionThresholdRaisedByHardening is the library-level form of the
// tournament's flagship cell: a 2-colluder strip attack defeats the
// baseline fleet's victim copy and fails (rolls back) against the hardened
// fleet, leaving its watermark recognizable.
func TestCollusionThresholdRaisedByHardening(t *testing.T) {
	for _, tc := range []struct {
		name        string
		harden      bool
		wantSurvive bool
	}{
		{"baseline-defeated", false, false},
		{"hardened-survives", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			copies, ws, key := hardenedFleet(t, 2, tc.harden)
			progs := []*vm.Program{copies[0].Program, copies[1].Program}
			attacked, report, err := attacks.Collude(progs, rand.New(rand.NewSource(77)), attacks.CollusionOptions{
				Mode:   attacks.CollusionStrip,
				Probes: attacks.DefaultProbes(),
			})
			if err != nil {
				t.Fatalf("Collude: %v", err)
			}
			rec, err := Recognize(attacked, key)
			if err != nil {
				t.Fatalf("Recognize: %v", err)
			}
			if got := rec.Matches(ws[0]); got != tc.wantSurvive {
				t.Fatalf("victim Matches=%v, want %v (report %+v)", got, tc.wantSurvive, report)
			}
			if tc.wantSurvive && report.Mutated != 0 {
				t.Errorf("hardened fleet: %d mutations stuck (rolled back %d); expected full rollback",
					report.Mutated, report.RolledBack)
			}
			if !tc.wantSurvive && report.Mutated == 0 {
				t.Error("baseline fleet: no mutation stuck, yet watermark lost?")
			}
		})
	}
}
