package wm

import (
	"fmt"
	"runtime"
	"testing"

	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// BenchmarkScanStage isolates the scan stage of the recognition pipeline
// (window iteration + popcount filter + decrypt + inverse enumeration)
// from tracing and voting: the trace is decoded once, then scanBits runs
// per iteration at several worker counts. This is the stage the worker
// fan-out accelerates; windows/s is the throughput the EXPERIMENTS.md
// speedup table records.
func BenchmarkScanStage(b *testing.B) {
	key, err := NewKey(nil, feistel.KeyFromUint64(21, 34), 128)
	if err != nil {
		b.Fatal(err)
	}
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 60, BlockSize: 150})
	w := RandomWatermark(128, 23)
	marked, _, err := Embed(prog, w, key, EmbedOptions{Pieces: 128, Seed: 11, Policy: GenLoopOnly})
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := vm.Collect(marked, key.Input, 1)
	if err != nil {
		b.Fatal(err)
	}
	bits := tr.DecodeBits()
	serial, _, err := scanBits(nil, bits, key, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range scanBenchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc, _, err := scanBits(nil, bits, key, workers, nil)
				if err != nil {
					b.Fatal(err)
				}
				if acc.windows != serial.windows || acc.valid != serial.valid {
					b.Fatalf("worker count changed scan result: %d/%d vs %d/%d",
						acc.windows, acc.valid, serial.windows, serial.valid)
				}
			}
			b.ReportMetric(float64(serial.windows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mwindows/s")
		})
	}
}

func scanBenchWorkers() []int {
	ws := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		ws = append(ws, n)
	}
	return ws
}
